(** The downstream-user scenario: you own one Apollo module (perception)
    and want to know, per ASIL, which guidelines it already satisfies and
    what the remediation backlog looks like — the gap analysis the paper's
    conclusion calls for.

    Run with: [dune exec examples/certify_module.exe] *)

let () =
  (* Build a project containing only the perception module. *)
  let specs =
    List.filter
      (fun (s : Corpus.Apollo_profile.module_spec) ->
        s.Corpus.Apollo_profile.name = "perception")
      (List.map (Corpus.Apollo_profile.scale ~factor:0.25) Corpus.Apollo_profile.full)
  in
  let project = Corpus.Generator.generate ~seed:42 specs in
  let parsed = Cfront.Project.parse project in
  let metrics = Iso26262.Project_metrics.of_parsed parsed in

  Printf.printf "Module under assessment: perception (%d LOC, %d functions)\n\n"
    metrics.Iso26262.Project_metrics.total_loc
    metrics.Iso26262.Project_metrics.total_functions;

  let findings = Iso26262.Assess.assess_all metrics in

  (* Compliance per ASIL: guidelines bind progressively with criticality. *)
  List.iter
    (fun asil ->
      let passed, binding = Iso26262.Assess.compliance_at ~asil findings in
      Printf.printf "ASIL-%s: %2d/%2d binding guidelines satisfied\n"
        (Iso26262.Asil.to_string asil) passed binding)
    Iso26262.Asil.all;

  (* Remediation backlog, hardest first: the paper distinguishes items
     fixable "with limited effort" from those needing research (GPU). *)
  let effort (f : Iso26262.Assess.finding) =
    match (f.Iso26262.Assess.topic.Iso26262.Guidelines.table,
           f.Iso26262.Assess.topic.Iso26262.Guidelines.index) with
    | Iso26262.Guidelines.Coding, 2 -> "research (no GPU language subset exists)"
    | Iso26262.Guidelines.Unit_design, (2 | 6) ->
      "research (pointers/dynamic memory are intrinsic to CUDA; cf. Brook Auto)"
    | Iso26262.Guidelines.Coding, 1 -> "major redesign (complexity reduction)"
    | Iso26262.Guidelines.Architecture, 2 -> "major refactor (split components)"
    | _ -> "limited engineering effort"
  in
  Printf.printf "\nRemediation backlog for ASIL-D:\n";
  List.iter
    (fun (f : Iso26262.Assess.finding) ->
      if f.Iso26262.Assess.verdict <> Iso26262.Assess.Pass
         && f.Iso26262.Assess.verdict <> Iso26262.Assess.Not_applicable
         && Iso26262.Asil.binding f.Iso26262.Assess.topic.Iso26262.Guidelines.recs
              Iso26262.Asil.D
      then
        Printf.printf "  [%-60s] %s\n    evidence: %s\n"
          f.Iso26262.Assess.topic.Iso26262.Guidelines.title (effort f)
          f.Iso26262.Assess.evidence)
    findings;

  (* MISRA detail for the module: the worst rules to fix first. *)
  let report = metrics.Iso26262.Project_metrics.misra in
  let worst =
    List.filter (fun (_, vs) -> vs <> []) report.Misra.Registry.per_rule
    |> List.sort (fun (_, a) (_, b) -> compare (List.length b) (List.length a))
  in
  Printf.printf "\nTop MISRA-subset rule violations:\n";
  List.iteri
    (fun i ((r : Misra.Rule.t), vs) ->
      if i < 8 then
        Printf.printf "  %-8s %-50s %6d violations\n" r.Misra.Rule.id
          r.Misra.Rule.title (List.length vs))
    worst
