(** Figure 5 in detail: run the object-detection (YOLO) sources under the
    embedded real-scenario tests and drill into the coverage gaps — the
    functions and decisions that would need additional test cases to reach
    the 100% the standard's parent (IEC 61508) recommends.

    Run with: [dune exec examples/coverage_yolo.exe] *)

let () =
  let tus = Corpus.Yolo_src.parse_all () in
  let measured = List.map fst Corpus.Yolo_src.measured_files in
  let result = Cudasim.Runner.run ~entry:Corpus.Yolo_src.entry ~measured tus in
  (match result.Cudasim.Runner.exit_value with
   | Ok v -> Printf.printf "test driver exit: %s\n" (Coverage.Value.to_string v)
   | Error e -> failwith e);
  print_string result.Cudasim.Runner.output;
  print_newline ();
  print_string
    (Iso26262.Report.render_coverage ~title:"Figure 5: per-file coverage"
       result.Cudasim.Runner.files);

  (* Gap analysis: the per-function detail a verification engineer needs. *)
  Printf.printf "\nFunctions below 100%% statement coverage:\n";
  List.iter
    (fun (fc : Coverage.Collector.file_coverage) ->
      List.iter
        (fun (f : Coverage.Collector.func_coverage) ->
          if f.Coverage.Collector.stmts_hit < f.Coverage.Collector.stmts_total then
            Printf.printf "  %-28s %-24s %d/%d statements, %d/%d branches, %d/%d conditions\n"
              fc.Coverage.Collector.file
              f.Coverage.Collector.fp.Coverage.Instrument.fp_name
              f.Coverage.Collector.stmts_hit f.Coverage.Collector.stmts_total
              f.Coverage.Collector.branches_hit f.Coverage.Collector.branches_total
              f.Coverage.Collector.conditions_hit f.Coverage.Collector.conditions_total)
        fc.Coverage.Collector.functions)
    result.Cudasim.Runner.files;

  (* Functions the tests never reach at all (excluded, as in the paper). *)
  Printf.printf "\nFunctions never called by the scenarios (excluded from Figure 5):\n";
  List.iter
    (fun (tu : Cfront.Ast.tu) ->
      if List.mem tu.Cfront.Ast.tu_file measured then
        List.iter
          (fun (fp : Coverage.Instrument.func_points) ->
            let called =
              List.exists
                (fun (fc : Coverage.Collector.file_coverage) ->
                  List.exists
                    (fun (f : Coverage.Collector.func_coverage) ->
                      f.Coverage.Collector.fp.Coverage.Instrument.fp_name
                      = fp.Coverage.Instrument.fp_name)
                    fc.Coverage.Collector.functions)
                result.Cudasim.Runner.files
            in
            if not called then
              Printf.printf "  %-28s %s\n" tu.Cfront.Ast.tu_file
                fp.Coverage.Instrument.fp_name)
          (Coverage.Instrument.of_tu tu))
    tus
