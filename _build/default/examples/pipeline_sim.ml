(** The Figure 1 pipeline as a running system: a miniature
    perception→prediction→planning→control→CAN loop written in C,
    executed by the interpreter under coverage, then assessed with the
    same checkers the paper applies to Apollo — the whole toolkit on one
    closed-loop program.

    Run with: [dune exec examples/pipeline_sim.exe] *)

let () =
  let tus = Corpus.Pipeline_src.parse_all () in
  let measured = List.map fst Corpus.Pipeline_src.measured_files in

  (* 1. run the closed loop under coverage *)
  let result = Cudasim.Runner.run ~entry:Corpus.Pipeline_src.entry ~measured tus in
  (match result.Cudasim.Runner.exit_value with
   | Ok v ->
     Printf.printf "closed-loop run finished, collisions = %s\n"
       (Coverage.Value.to_string v)
   | Error e -> failwith e);
  print_string result.Cudasim.Runner.output;
  print_newline ();
  print_string
    (Iso26262.Report.render_coverage ~title:"pipeline coverage under the 12-tick scenario"
       result.Cudasim.Runner.files);

  (* 2. static assessment of the very same sources *)
  let files =
    List.map
      (fun (path, content) ->
        { Cfront.Project.path; modname = "mini"; header = false; content })
      Corpus.Pipeline_src.files
  in
  let project =
    Cfront.Project.make ~name:"mini-pipeline"
      [ { Cfront.Project.m_name = "mini"; m_files = files } ]
  in
  let parsed = Cfront.Project.parse project in
  let report = Misra.Registry.run_project parsed in
  Printf.printf "\nMISRA subset over the mini pipeline: %d violations, %d of %d rules broken\n"
    report.Misra.Registry.total_violations report.Misra.Registry.rules_violated
    report.Misra.Registry.rules_checked;
  List.iter
    (fun ((r : Misra.Rule.t), vs) ->
      if vs <> [] then
        Printf.printf "  [%-5s] %-50s %d\n" r.Misra.Rule.id r.Misra.Rule.title
          (List.length vs))
    report.Misra.Registry.per_rule;

  (* 3. WCET analyzability of the pipeline functions *)
  let fns = Cfront.Project.all_functions parsed in
  Printf.printf "\nWCET analyzability:\n";
  List.iter
    (fun (r : Metrics.Wcet.func_report) ->
      Printf.printf "  %-20s %-12s %s\n" r.Metrics.Wcet.fn
        (Metrics.Wcet.classification_name r.Metrics.Wcet.classification)
        r.Metrics.Wcet.wcet_expr)
    (Metrics.Wcet.of_functions fns);

  (* 4. and the schedulability story for the full-scale pipeline *)
  print_newline ();
  print_string
    (Iso26262.Scheduling.render
       (Iso26262.Scheduling.analyze (Iso26262.Scheduling.ad_task_set ())))
