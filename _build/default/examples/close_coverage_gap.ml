(** Observation 10 says additional test cases are required to reach the
    coverage the standard expects.  This example closes part of that gap
    automatically: it finds the reachable-by-construction coverage holes
    (uncalled scalar functions, parameter-driven switch clauses, one-sided
    comparisons), synthesizes C probes for them, and re-measures —
    then prints a gcov-style annotated listing of what is still cold.

    Run with: [dune exec examples/close_coverage_gap.exe] *)

let () =
  let tus = Corpus.Yolo_src.parse_all () in
  let measured = List.map fst Corpus.Yolo_src.measured_files in

  (* 1. synthesize probes for the gaps and re-measure *)
  let r = Coverage.Testgen.close_gaps ~entry:Corpus.Yolo_src.entry ~measured tus in
  Printf.printf "coverage before: %.1f%% statement / %.1f%% branch\n"
    r.Coverage.Testgen.before_stmt r.Coverage.Testgen.before_branch;
  Printf.printf "coverage after:  %.1f%% statement / %.1f%% branch\n\n"
    r.Coverage.Testgen.after_stmt r.Coverage.Testgen.after_branch;

  (* 2. show the synthesized driver — these are the "additional test
     cases" the paper calls for, ready to be reviewed and kept *)
  print_endline "synthesized driver:";
  print_endline r.Coverage.Testgen.driver;

  (* 3. annotated listing of the lowest-coverage file after the probes *)
  let collector = Coverage.Collector.create () in
  let env = Coverage.Interp.create ~hooks:(Coverage.Collector.hooks collector) () in
  let gap_tu =
    Cfront.Parser.parse_file ~file:"testgen/gap_driver.c" r.Coverage.Testgen.driver
  in
  let tus2 = tus @ [ gap_tu ] in
  (match Coverage.Interp.run env tus2 ~entry:Corpus.Yolo_src.entry ~args:[] with
   | Ok _ -> ()
   | Error e -> failwith e);
  let parser_tu =
    List.find (fun (tu : Cfront.Ast.tu) -> tu.Cfront.Ast.tu_file = "yolo/parser_cfg.c") tus
  in
  print_endline "annotated listing (before probes) of the coldest file:";
  print_string
    (Coverage.Annotate.render ~only_functions:[ "parse_learning_param" ] collector
       parser_tu);
  Printf.printf "\nlines still never executed in %s: %d\n"
    parser_tu.Cfront.Ast.tu_file
    (List.length (Coverage.Annotate.missed_lines collector parser_tu))
