(** The paper's whole pipeline in one program: generate the Apollo-profile
    corpus, assess every ISO 26262-6 guideline table, run the coverage
    experiments, and print the fourteen observations.

    Uses the reduced-scale corpus so it finishes in about a second; pass
    [--full] for the paper-scale 228k LOC corpus.

    Run with: [dune exec examples/audit_apollo.exe] *)

let () =
  let full = Array.exists (fun a -> a = "--full") Sys.argv in
  let specs =
    if full then Corpus.Apollo_profile.full else Corpus.Apollo_profile.small
  in
  let device = Gpuperf.Device.titan_v in
  let ratios =
    List.map (fun (l, r) -> (l, r)) (Gpuperf.Suites.gemm_comparison ~device)
    @ List.map (fun (l, _, r) -> (l, r)) (Gpuperf.Suites.conv_comparison ~device)
  in
  let audit = Iso26262.Audit.run ~specs ~open_vs_closed:ratios () in
  print_string (Iso26262.Audit.render audit);
  (* Downstream-user summary: what blocks an ASIL-D certification? *)
  let blockers =
    List.filter
      (fun (f : Iso26262.Assess.finding) ->
        f.Iso26262.Assess.verdict <> Iso26262.Assess.Pass
        && f.Iso26262.Assess.verdict <> Iso26262.Assess.Not_applicable
        && Iso26262.Asil.binding f.Iso26262.Assess.topic.Iso26262.Guidelines.recs
             Iso26262.Asil.D)
      (Iso26262.Audit.all_findings audit)
  in
  Printf.printf "\nASIL-D blockers (%d):\n" (List.length blockers);
  List.iter
    (fun (f : Iso26262.Assess.finding) ->
      Printf.printf "  - %s: %s\n" f.Iso26262.Assess.topic.Iso26262.Guidelines.title
        f.Iso26262.Assess.evidence)
    blockers
