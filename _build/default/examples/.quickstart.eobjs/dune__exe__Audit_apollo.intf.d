examples/audit_apollo.mli:
