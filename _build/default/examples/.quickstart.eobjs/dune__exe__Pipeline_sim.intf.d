examples/pipeline_sim.mli:
