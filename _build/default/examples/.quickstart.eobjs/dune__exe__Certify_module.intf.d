examples/certify_module.mli:
