examples/gpu_library_tradeoff.mli:
