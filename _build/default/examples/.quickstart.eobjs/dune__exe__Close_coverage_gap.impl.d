examples/close_coverage_gap.ml: Cfront Corpus Coverage List Printf
