examples/audit_apollo.ml: Array Corpus Gpuperf Iso26262 List Printf Sys
