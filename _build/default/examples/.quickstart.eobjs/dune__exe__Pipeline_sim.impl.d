examples/pipeline_sim.ml: Cfront Corpus Coverage Cudasim Iso26262 List Metrics Misra Printf
