examples/quickstart.ml: Cfront Coverage List Metrics Misra Printf
