examples/coverage_yolo.mli:
