examples/quickstart.mli:
