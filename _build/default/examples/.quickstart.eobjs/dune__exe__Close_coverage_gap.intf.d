examples/close_coverage_gap.mli:
