examples/gpu_library_tradeoff.ml: Dnn Gpuperf List Printf Util
