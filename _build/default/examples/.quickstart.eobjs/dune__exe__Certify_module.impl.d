examples/certify_module.ml: Cfront Corpus Iso26262 List Misra Printf
