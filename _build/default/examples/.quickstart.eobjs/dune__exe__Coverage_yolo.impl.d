examples/coverage_yolo.ml: Cfront Corpus Coverage Cudasim Iso26262 List Printf
