(** The Figure 7/8 trade-off, explored across hardware: can the AD stack
    replace certification-hostile closed-source CUDA libraries with
    open-source ones without losing the frame rate budget?

    Shows the comparison on the paper's workstation GPU, an older Pascal
    card, and the embedded automotive DRIVE PX2 target — plus a per-layer
    breakdown showing where YOLO's time actually goes.

    Run with: [dune exec examples/gpu_library_tradeoff.exe] *)

let frame_budget_ms = 100.0  (* 10 fps perception budget *)

let show_device gpu =
  Printf.printf "\n== %s ==\n" gpu.Gpuperf.Device.name;
  let rows = Gpuperf.Yolo_bench.run ~gpu ~cpu:Gpuperf.Device.xeon_e5 () in
  List.iter
    (fun (r : Gpuperf.Yolo_bench.row) ->
      Printf.printf "  %-10s %-7s %10.2f ms  %8.1f fps  %s\n"
        r.Gpuperf.Yolo_bench.impl
        (if r.Gpuperf.Yolo_bench.closed_source then "closed" else "open")
        r.Gpuperf.Yolo_bench.total_ms r.Gpuperf.Yolo_bench.fps
        (if r.Gpuperf.Yolo_bench.total_ms <= frame_budget_ms then "within budget"
         else "MISSES 100 ms budget"))
    rows;
  (* the open-vs-closed verdict on this device *)
  let time impl =
    match
      List.find_opt (fun r -> r.Gpuperf.Yolo_bench.impl = impl) rows
    with
    | Some r -> r.Gpuperf.Yolo_bench.total_ms
    | None -> nan
  in
  Printf.printf "  open-source penalty: ISAAC %.0f%%, CUTLASS %.0f%% vs cuDNN\n"
    ((time "ISAAC" /. time "cuDNN" -. 1.0) *. 100.0)
    ((time "CUTLASS" /. time "cuDNN" -. 1.0) *. 100.0)

let () =
  List.iter show_device
    [ Gpuperf.Device.titan_v; Gpuperf.Device.gtx_1080ti;
      Gpuperf.Device.drive_px2_gpu ];

  (* Per-layer breakdown on the embedded target under ISAAC. *)
  let gpu = Gpuperf.Device.drive_px2_gpu in
  let isaac = Gpuperf.Library_model.isaac gpu in
  Printf.printf "\nPer-layer time on %s under ISAAC:\n" gpu.Gpuperf.Device.name;
  let layers = Gpuperf.Yolo_bench.per_layer isaac Dnn.Yolo.yolov2 in
  let total = Util.Stats.sum_float (List.map snd layers) in
  List.iter
    (fun (name, ms) ->
      if ms > total /. 50.0 then
        Printf.printf "  %-34s %8.2f ms  %4.1f%%\n" name ms (100.0 *. ms /. total))
    layers;
  Printf.printf "  %-34s %8.2f ms\n" "TOTAL (layers above 2% shown)" total;

  (* The CPU fallback story: why Observation 12 matters. *)
  let cpu_rows =
    List.filter
      (fun (r : Gpuperf.Yolo_bench.row) ->
        not (Util.Strutil.contains_sub ~sub:"NVIDIA" r.Gpuperf.Yolo_bench.device_name))
      (Gpuperf.Yolo_bench.run ())
  in
  Printf.printf
    "\nCPU BLAS baselines confirm the two-orders-of-magnitude gap (paper Fig. 7):\n";
  List.iter
    (fun (r : Gpuperf.Yolo_bench.row) ->
      Printf.printf "  %-10s %10.2f ms (%.0fx slower than cuDNN on TITAN V)\n"
        r.Gpuperf.Yolo_bench.impl r.Gpuperf.Yolo_bench.total_ms
        r.Gpuperf.Yolo_bench.vs_baseline)
    cpu_rows
