(** Quickstart: parse a C/CUDA snippet, measure it, check it, run it.

    Run with: [dune exec examples/quickstart.exe] *)

let source =
  {|
// A snippet in the style of Apollo's object-detection post-processing.
int clamp_detection_count(int raw_count, int limit) {
  int clamped;
  if (raw_count > limit) {
    clamped = limit;
  } else {
    clamped = raw_count;
  }
  if (clamped < 0) {
    return 0;   // second exit point: ISO 26262-6 Table 8 item 1 violation
  }
  return clamped;
}

__global__ void scale_bias_gpu(float* output, float* biases, int n, int size) {
  int offset = blockIdx.x * blockDim.x + threadIdx.x;
  if (offset < size) {
    output[offset] = output[offset] * biases[offset % n];
  }
}

int main() {
  int kept = clamp_detection_count(12, 8);
  float* host = (float*)malloc(8 * sizeof(float));
  for (int i = 0; i < 8; i++) {
    host[i] = (float)i;
  }
  float* dev;
  cudaMalloc((void**)&dev, 8 * sizeof(float));
  cudaMemcpy(dev, host, 8 * sizeof(float), 1);
  scale_bias_gpu<<<1, 8>>>(dev, dev, 4, 8);
  cudaMemcpy(host, dev, 8 * sizeof(float), 2);
  printf("kept=%d first=%f\n", kept, host[0]);
  cudaFree(dev);
  free(host);
  return kept;
}
|}

let () =
  (* 1. Parse (preprocess, lex, build the AST). *)
  let tu = Cfront.Parser.parse_file ~file:"snippet.cu" source in
  assert (tu.Cfront.Ast.diags = []);
  Printf.printf "parsed %d functions\n\n" (List.length (Cfront.Ast.functions_of_tu tu));

  (* 2. Static metrics: cyclomatic complexity and exit points. *)
  List.iter
    (fun (c : Metrics.Complexity.func_cc) ->
      let shape = Metrics.Func_shape.of_func c.Metrics.Complexity.fn in
      Printf.printf "%-24s CC=%d  exits=%d\n"
        (Cfront.Ast.qualified_name c.Metrics.Complexity.fn)
        c.Metrics.Complexity.cc
        (match shape with Some s -> s.Metrics.Func_shape.returns | None -> 0))
    (Metrics.Complexity.of_functions (Cfront.Ast.functions_of_tu tu));

  (* 3. Rule checking: the MISRA subset plus the CUDA extension rules. *)
  let files =
    [ { Cfront.Project.file =
          { Cfront.Project.path = "snippet.cu"; modname = "demo"; header = false;
            content = source };
        tu } ]
  in
  let report = Misra.Registry.run (Misra.Rule.context_of_files files) in
  Printf.printf "\nMISRA subset: %d violations across %d rules\n"
    report.Misra.Registry.total_violations report.Misra.Registry.rules_checked;
  List.iter
    (fun ((r : Misra.Rule.t), vs) ->
      List.iter
        (fun (v : Misra.Rule.violation) ->
          Printf.printf "  [%s] %s\n" r.Misra.Rule.id v.Misra.Rule.message)
        vs)
    report.Misra.Registry.per_rule;

  (* 4. Execute under coverage: the CUDA kernel runs on the CPU. *)
  let collector = Coverage.Collector.create () in
  let env = Coverage.Interp.create ~hooks:(Coverage.Collector.hooks collector) () in
  (match Coverage.Interp.run env [ tu ] ~entry:"main" ~args:[] with
   | Ok v -> Printf.printf "\nprogram exited with %s\n" (Coverage.Value.to_string v)
   | Error e -> Printf.printf "\nexecution error: %s\n" e);
  print_string (Coverage.Interp.output env);
  let fc =
    Coverage.Collector.score_file collector ~file:"snippet.cu"
      (Coverage.Instrument.of_tu tu)
  in
  Printf.printf "coverage: %.0f%% statement, %.0f%% branch, %.0f%% MC/DC\n"
    fc.Coverage.Collector.stmt_pct fc.Coverage.Collector.branch_pct
    fc.Coverage.Collector.mcdc_pct
