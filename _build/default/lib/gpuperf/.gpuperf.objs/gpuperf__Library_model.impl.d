lib/gpuperf/library_model.ml: Device Dnn Hashtbl List Stdlib Util Workload
