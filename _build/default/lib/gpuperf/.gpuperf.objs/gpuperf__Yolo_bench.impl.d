lib/gpuperf/yolo_bench.ml: Device Dnn Library_model List Workload
