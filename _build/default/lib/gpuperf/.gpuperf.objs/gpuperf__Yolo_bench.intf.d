lib/gpuperf/yolo_bench.mli: Device Dnn Library_model
