lib/gpuperf/device.ml:
