lib/gpuperf/ablation.ml: Device Dnn Library_model List Stdlib Suites Util Workload
