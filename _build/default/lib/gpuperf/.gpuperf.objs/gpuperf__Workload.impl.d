lib/gpuperf/workload.ml: Dnn Printf
