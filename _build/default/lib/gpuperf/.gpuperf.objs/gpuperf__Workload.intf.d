lib/gpuperf/workload.mli: Dnn
