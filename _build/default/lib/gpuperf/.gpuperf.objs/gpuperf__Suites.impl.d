lib/gpuperf/suites.ml: Dnn Library_model List Workload
