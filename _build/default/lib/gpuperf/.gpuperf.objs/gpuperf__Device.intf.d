lib/gpuperf/device.mli:
