(** Figure 7: Apollo's object detection (YOLOv2) timed under each library
    implementation — closed-source baselines (cuDNN, cuBLAS), open-source
    alternatives (ISAAC, CUTLASS) and the CPU BLAS libraries. *)

type row = {
  impl : string;
  closed_source : bool;
  device_name : string;
  total_ms : float;
  fps : float;
  vs_baseline : float;  (** runtime relative to cuDNN; >1 means slower *)
}

(** The six implementations compared in Figure 7, on the given devices. *)
val implementations :
  gpu:Device.t -> cpu:Device.t -> Library_model.t list

(** Time the network under all six implementations.  Defaults: YOLOv2 on
    TITAN V vs the Xeon CPU baseline. *)
val run :
  ?net:Dnn.Layer.t list -> ?gpu:Device.t -> ?cpu:Device.t -> unit -> row list

(** Per-layer (name, milliseconds) breakdown under one library. *)
val per_layer : Library_model.t -> Dnn.Layer.t list -> (string * float) list
