(** Compute workloads: GEMM and convolution kernels with exact FLOP and
    traffic accounting.  Convolutions carry their geometry so library
    models can specialize (Winograd for 3x3/s1, implicit GEMM
    otherwise). *)

type gemm = { m : int; n : int; k : int }

type t =
  | Gemm of gemm
  | Conv of Dnn.Layer.conv

let gemm m n k = Gemm { m; n; k }

let of_conv c = Conv c

let name = function
  | Gemm g -> Printf.sprintf "GEMM %dx%dx%d" g.m g.n g.k
  | Conv c -> Dnn.Layer.name (Dnn.Layer.Conv c)

let flops = function
  | Gemm g -> 2.0 *. float_of_int g.m *. float_of_int g.n *. float_of_int g.k
  | Conv c -> float_of_int (Dnn.Layer.conv_flops c)

let bytes = function
  | Gemm g ->
    4.0 *. ((float_of_int g.m *. float_of_int g.k)
            +. (float_of_int g.k *. float_of_int g.n)
            +. (float_of_int g.m *. float_of_int g.n))
  | Conv c -> float_of_int (Dnn.Layer.conv_bytes c)

(** Arithmetic intensity in flops/byte. *)
let intensity w = flops w /. bytes w

(** Equivalent GEMM dimensions of any workload (conv via im2col). *)
let gemm_dims = function
  | Gemm g -> (g.m, g.n, g.k)
  | Conv c ->
    let m, k, n = Dnn.Layer.conv_gemm_dims c in
    (m, n, k)

let is_winograd_eligible = function
  | Conv c -> c.Dnn.Layer.ksize = 3 && c.Dnn.Layer.stride = 1
  | Gemm _ -> false
