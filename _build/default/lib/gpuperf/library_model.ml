(** Analytic performance models of the BLAS/DNN libraries compared in the
    paper (Figures 7 and 8): closed-source cuBLAS and cuDNN, open-source
    CUTLASS and ISAAC, and CPU ATLAS/OpenBLAS.

    The model is a roofline with three refinements that reproduce the
    published behaviour of these libraries:

    - {b tile quantization}: a GEMM is executed in TM x TN output tiles;
      partial tiles waste lanes, so utilization is (m*n) / (ceil tiles);
    - {b wave quantization}: tiles execute in waves over the SMs; a
      partial last wave stalls the whole device for its duration;
    - {b k-depth efficiency}: short accumulation depths cannot hide
      latency, modelled as k / (k + k_half).

    CUTLASS and ISAAC choose their tile from a menu (ISAAC's input-aware
    autotuner considers more shapes, which is exactly why it stays
    competitive on the odd layer geometries of detection networks), while
    cuBLAS/cuDNN use a fixed near-optimal tile plus a hand-tuned base
    efficiency advantage.  Deterministic per-shape noise (seeded by the
    workload dimensions) stands in for clock/driver variance. *)

type t = {
  lib_name : string;
  closed_source : bool;
  device : Device.t;
  time_ms : Workload.t -> float;
}

let launch_overhead_ms = 0.008  (* kernel launch + driver *)

let noise ~seed ~amplitude =
  let rng = Util.Rng.create seed in
  Util.Stats.clamp ~lo:(1.0 -. (2.0 *. amplitude)) ~hi:(1.0 +. (2.0 *. amplitude))
    (Util.Rng.gaussian rng ~mean:1.0 ~stddev:amplitude)

let shape_seed lib w =
  let m, n, k = Workload.gemm_dims w in
  Hashtbl.hash (lib, m, n, k)

(** Tile-quantized efficiency of executing an (m,n,k) GEMM with TM x TN
    tiles on [sms] multiprocessors. *)
let tile_efficiency ~tm ~tn ~k_half ~sms (m, n, k) =
  let fm = float_of_int m and fn = float_of_int n and fk = float_of_int k in
  let tiles_m = ceil (fm /. float_of_int tm) in
  let tiles_n = ceil (fn /. float_of_int tn) in
  let tile_util = (fm *. fn) /. (tiles_m *. float_of_int tm *. (tiles_n *. float_of_int tn)) in
  let waves = tiles_m *. tiles_n /. float_of_int sms in
  let wave_util = if waves <= 0.0 then 1.0 else waves /. ceil waves in
  (* small waves cannot fill the device even when exact *)
  let occupancy = Stdlib.min 1.0 (waves /. 4.0) in
  let k_eff = fk /. (fk +. float_of_int k_half) in
  tile_util *. (0.6 +. (0.4 *. wave_util)) *. (0.5 +. (0.5 *. occupancy)) *. k_eff

let roofline ~(device : Device.t) ~eff_compute ~eff_mem w =
  let t_compute =
    Workload.flops w /. (device.Device.peak_fp32_gflops *. 1e9 *. eff_compute)
  in
  let t_mem = Workload.bytes w /. (device.Device.mem_bw_gbs *. 1e9 *. eff_mem) in
  (Stdlib.max t_compute t_mem *. 1000.0) +. launch_overhead_ms

(* ------------------------------------------------------------------ *)
(* GPU GEMM libraries                                                   *)
(* ------------------------------------------------------------------ *)

let best_tile ~tiles ~k_half ~sms dims =
  List.fold_left
    (fun acc (tm, tn) -> Stdlib.max acc (tile_efficiency ~tm ~tn ~k_half ~sms dims))
    0.0 tiles

(* Both cuBLAS and CUTLASS ship large kernel zoos; what differs is the
   per-kernel quality (hand-tuned SASS vs C++ templates) and the software
   pipelining depth. *)
let gemm_tile_menu =
  [ (128, 128); (128, 64); (64, 128); (64, 64); (256, 64); (64, 256);
    (256, 128); (32, 64); (64, 32) ]

let cublas device =
  let time_ms w =
    let dims = Workload.gemm_dims w in
    let eff =
      0.93 *. best_tile ~tiles:gemm_tile_menu ~k_half:20 ~sms:device.Device.sm_count dims
    in
    roofline ~device ~eff_compute:(Stdlib.max 0.05 eff) ~eff_mem:0.85 w
    *. noise ~seed:(shape_seed "cublas" w) ~amplitude:0.02
  in
  { lib_name = "cuBLAS"; closed_source = true; device; time_ms }

let cutlass device =
  let time_ms w =
    let dims = Workload.gemm_dims w in
    (* template instantiations cover the same tile space; slightly lower
       per-kernel efficiency and shallower pipelining than tuned SASS *)
    let eff =
      0.88 *. best_tile ~tiles:gemm_tile_menu ~k_half:26 ~sms:device.Device.sm_count dims
    in
    roofline ~device ~eff_compute:(Stdlib.max 0.05 eff) ~eff_mem:0.82 w
    *. noise ~seed:(shape_seed "cutlass" w) ~amplitude:0.03
  in
  { lib_name = "CUTLASS"; closed_source = false; device; time_ms }

(* ------------------------------------------------------------------ *)
(* GPU convolution libraries                                            *)
(* ------------------------------------------------------------------ *)

let winograd_gain = 1.35  (* net speedup of F(2x2,3x3) after transform overheads *)

let cudnn device =
  let time_ms w =
    let dims = Workload.gemm_dims w in
    let base =
      0.90 *. best_tile ~tiles:gemm_tile_menu ~k_half:22 ~sms:device.Device.sm_count dims
    in
    let eff =
      if Workload.is_winograd_eligible w then
        Stdlib.min 0.97 (base *. winograd_gain)
      else base
    in
    roofline ~device ~eff_compute:(Stdlib.max 0.05 eff) ~eff_mem:0.85 w
    *. noise ~seed:(shape_seed "cudnn" w) ~amplitude:0.02
  in
  { lib_name = "cuDNN"; closed_source = true; device; time_ms }

(* ISAAC: input-aware autotuner — it generates PTX specialized for the
   *actual* input shape, choosing among tiles including skinny ones and a
   split-k depth that recovers latency-hiding on shallow accumulations.
   That is why it stays competitive on the odd geometries of detection
   networks even without Winograd. *)
let isaac_tiles =
  gemm_tile_menu @ [ (32, 128); (128, 32); (32, 32); (16, 128); (128, 16) ]

let isaac device =
  let time_ms w =
    let ((m, n, _k) as dims) = Workload.gemm_dims w in
    (* split-k: when the output tile grid cannot fill the device, the
       autotuner parallelizes the reduction dimension instead, improving
       k efficiency — detection-network layers (13x13, 26x26 maps) are the
       canonical beneficiaries *)
    let k_half = if m * n < 512 * 512 then 14 else 22 in
    let eff = 0.87 *. best_tile ~tiles:isaac_tiles ~k_half ~sms:device.Device.sm_count dims in
    roofline ~device ~eff_compute:(Stdlib.max 0.05 eff) ~eff_mem:0.84 w
    *. noise ~seed:(shape_seed "isaac" w) ~amplitude:0.04
  in
  { lib_name = "ISAAC"; closed_source = false; device; time_ms }

(* ------------------------------------------------------------------ *)
(* CPU BLAS                                                             *)
(* ------------------------------------------------------------------ *)

(* On CPUs the im2col expansion of convolutions does not fit in cache, so
   the GEMM runs memory-bound at a fraction of peak; measured end-to-end
   conv throughput of ATLAS/OpenBLAS on 2016-era Xeons is two orders of
   magnitude below a Volta.  [conv_factor] models the im2col + repack
   traffic blowup. *)
let cpu_blas ~name ~base_eff device =
  let time_ms w =
    let conv_penalty =
      match w with
      | Workload.Conv c -> if c.Dnn.Layer.ksize > 1 then 2.2 else 1.4
      | Workload.Gemm _ -> 1.0
    in
    let eff = base_eff /. conv_penalty in
    roofline ~device ~eff_compute:eff ~eff_mem:0.55 w
    *. noise ~seed:(shape_seed name w) ~amplitude:0.05
  in
  { lib_name = name; closed_source = false; device; time_ms }

let atlas device = cpu_blas ~name:"ATLAS" ~base_eff:0.14 device
let openblas device = cpu_blas ~name:"OpenBLAS" ~base_eff:0.27 device

(* ------------------------------------------------------------------ *)
(* Whole-network timing                                                 *)
(* ------------------------------------------------------------------ *)

(** Time a full layer stack: convolutions through the library, pooling and
    region layers as memory-bound elementwise passes. *)
let network_time_ms lib (net : Dnn.Layer.t list) =
  List.fold_left
    (fun acc layer ->
      match layer with
      | Dnn.Layer.Conv c -> acc +. lib.time_ms (Workload.of_conv c)
      | Dnn.Layer.Maxpool _ | Dnn.Layer.Region _ ->
        let fl = float_of_int (Dnn.Layer.flops layer) in
        let bytes = fl *. 8.0 in
        acc
        +. (bytes /. (lib.device.Device.mem_bw_gbs *. 1e9 *. 0.6) *. 1000.0)
        +. launch_overhead_ms)
    0.0 net
