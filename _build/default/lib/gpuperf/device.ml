(** Hardware models for the analytic performance simulator.

    Numbers are public datasheet figures for the platforms of the paper's
    era (2018/2019): an NVIDIA Volta-class discrete GPU for the
    CUDA-library comparisons and a server-class Xeon for the CPU BLAS
    baseline. *)

type kind = Gpu | Cpu

type t = {
  name : string;
  kind : kind;
  peak_fp32_gflops : float;
  peak_tensor_gflops : float option;  (** mixed-precision tensor cores *)
  mem_bw_gbs : float;  (** GB/s *)
  sm_count : int;  (** SMs for GPUs, cores for CPUs *)
  l2_kb : int;
}

let titan_v =
  {
    name = "NVIDIA TITAN V (Volta)";
    kind = Gpu;
    peak_fp32_gflops = 14900.0;
    peak_tensor_gflops = Some 110000.0;
    mem_bw_gbs = 652.0;
    sm_count = 80;
    l2_kb = 4608;
  }

let gtx_1080ti =
  {
    name = "NVIDIA GTX 1080 Ti (Pascal)";
    kind = Gpu;
    peak_fp32_gflops = 11340.0;
    peak_tensor_gflops = None;
    mem_bw_gbs = 484.0;
    sm_count = 28;
    l2_kb = 2816;
  }

let drive_px2_gpu =
  (* the embedded automotive target Apollo deploys on *)
  {
    name = "NVIDIA DRIVE PX2 (Parker iGPU)";
    kind = Gpu;
    peak_fp32_gflops = 1290.0;
    peak_tensor_gflops = None;
    mem_bw_gbs = 50.0;
    sm_count = 2;
    l2_kb = 512;
  }

let xeon_e5 =
  {
    name = "Intel Xeon E5-2630 v4 (10c, AVX2)";
    kind = Cpu;
    peak_fp32_gflops = 704.0;
    peak_tensor_gflops = None;
    mem_bw_gbs = 68.0;
    sm_count = 10;
    l2_kb = 2560;
  }

let all = [ titan_v; gtx_1080ti; drive_px2_gpu; xeon_e5 ]
