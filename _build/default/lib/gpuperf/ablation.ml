(** Ablation variants of the library performance models.

    Each variant removes one refinement the full model relies on, so the
    benchmark harness can show what each modelling choice contributes to
    the Figure 7/8 shapes:

    - [cublas_single_tile]: cuBLAS restricted to one 128x128 kernel
      (no kernel zoo) — shows why a tile menu is needed to track the
      real library's behaviour on odd shapes;
    - [cudnn_no_winograd]: disables the F(2x2,3x3) fast path — shows the
      3x3/s1 advantage cuDNN holds over ISAAC disappears;
    - [isaac_no_split_k]: removes the input-aware split-k depth choice —
      the autotuner's edge on skinny detection-network shapes vanishes;
    - [flat_roofline]: no quantization at all, a plain 90%-of-peak
      roofline — every library collapses to the same curve, demonstrating
      that quantization is what differentiates libraries in the model. *)

open Library_model

let cublas_single_tile device =
  let time_ms w =
    let dims = Workload.gemm_dims w in
    let eff =
      0.93 *. tile_efficiency ~tm:128 ~tn:128 ~k_half:20 ~sms:device.Device.sm_count dims
    in
    roofline ~device ~eff_compute:(Stdlib.max 0.05 eff) ~eff_mem:0.85 w
    *. noise ~seed:(shape_seed "cublas" w) ~amplitude:0.02
  in
  { lib_name = "cuBLAS(single-tile)"; closed_source = true; device; time_ms }

let cudnn_no_winograd device =
  let time_ms w =
    let dims = Workload.gemm_dims w in
    let eff =
      0.90 *. best_tile ~tiles:gemm_tile_menu ~k_half:22 ~sms:device.Device.sm_count dims
    in
    roofline ~device ~eff_compute:(Stdlib.max 0.05 eff) ~eff_mem:0.85 w
    *. noise ~seed:(shape_seed "cudnn" w) ~amplitude:0.02
  in
  { lib_name = "cuDNN(no-winograd)"; closed_source = true; device; time_ms }

let isaac_no_split_k device =
  let time_ms w =
    let dims = Workload.gemm_dims w in
    let eff =
      0.87 *. best_tile ~tiles:isaac_tiles ~k_half:22 ~sms:device.Device.sm_count dims
    in
    roofline ~device ~eff_compute:(Stdlib.max 0.05 eff) ~eff_mem:0.84 w
    *. noise ~seed:(shape_seed "isaac" w) ~amplitude:0.04
  in
  { lib_name = "ISAAC(no-split-k)"; closed_source = false; device; time_ms }

let flat_roofline ~name device =
  let time_ms w =
    roofline ~device ~eff_compute:0.9 ~eff_mem:0.85 w
  in
  { lib_name = name ^ "(flat)"; closed_source = false; device; time_ms }

(** Geometric-mean relative performance of [lib] vs [baseline] over the
    Figure 8 suites. *)
let geomean_ratio ~suite lib baseline =
  let ratios =
    List.map
      (fun w -> baseline.time_ms w /. lib.time_ms w)
      suite
  in
  Util.Stats.geomean ratios

let gemm_workloads () =
  List.map (fun (c : Suites.gemm_case) -> Workload.Gemm c.Suites.g) Suites.gemm_suite

let conv_workloads () =
  List.map (fun (c : Suites.conv_case) -> Workload.Conv c.Suites.c) Suites.conv_suite

type row = { label : string; fig8a_geomean : float option; fig8b_geomean : float option; yolo_ms : float }

(** The ablation table: each row is one model variant; columns show its
    effect on the Figure 8 geomeans (vs the *full* closed-source models)
    and on the Figure 7 YOLO total. *)
let run ~device =
  let gemms = gemm_workloads () and convs = conv_workloads () in
  let full_cublas = cublas device and full_cudnn = cudnn device in
  let yolo lib = network_time_ms lib Dnn.Yolo.yolov2 in
  [
    { label = "CUTLASS vs cuBLAS (full model)";
      fig8a_geomean = Some (geomean_ratio ~suite:gemms (cutlass device) full_cublas);
      fig8b_geomean = None;
      yolo_ms = yolo (cutlass device) };
    { label = "CUTLASS vs cuBLAS single-tile";
      fig8a_geomean =
        Some (geomean_ratio ~suite:gemms (cutlass device) (cublas_single_tile device));
      fig8b_geomean = None;
      yolo_ms = yolo (cublas_single_tile device) };
    { label = "ISAAC vs cuDNN (full model)";
      fig8a_geomean = None;
      fig8b_geomean = Some (geomean_ratio ~suite:convs (isaac device) full_cudnn);
      yolo_ms = yolo (isaac device) };
    { label = "ISAAC vs cuDNN no-winograd";
      fig8a_geomean = None;
      fig8b_geomean =
        Some (geomean_ratio ~suite:convs (isaac device) (cudnn_no_winograd device));
      yolo_ms = yolo (cudnn_no_winograd device) };
    { label = "ISAAC no-split-k vs cuDNN";
      fig8a_geomean = None;
      fig8b_geomean =
        Some (geomean_ratio ~suite:convs (isaac_no_split_k device) full_cudnn);
      yolo_ms = yolo (isaac_no_split_k device) };
    { label = "flat roofline (no quantization)";
      fig8a_geomean =
        Some (geomean_ratio ~suite:gemms (flat_roofline ~name:"open" device)
                (flat_roofline ~name:"closed" device));
      fig8b_geomean = None;
      yolo_ms = yolo (flat_roofline ~name:"any" device) };
  ]
