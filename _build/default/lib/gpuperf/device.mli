(** Hardware models for the analytic performance simulator: public
    datasheet figures for the platforms of the paper's era. *)

type kind = Gpu | Cpu

type t = {
  name : string;
  kind : kind;
  peak_fp32_gflops : float;
  peak_tensor_gflops : float option;  (** mixed-precision tensor cores *)
  mem_bw_gbs : float;
  sm_count : int;  (** SMs for GPUs, cores for CPUs *)
  l2_kb : int;
}

(** Volta workstation card (the paper's class of GPU). *)
val titan_v : t

(** Pascal consumer card. *)
val gtx_1080ti : t

(** The embedded automotive target Apollo deploys on. *)
val drive_px2_gpu : t

(** Server CPU for the ATLAS/OpenBLAS baselines. *)
val xeon_e5 : t

val all : t list
