(** Compute workloads: GEMM and convolution kernels with exact FLOP and
    traffic accounting. *)

type gemm = { m : int; n : int; k : int }

type t =
  | Gemm of gemm
  | Conv of Dnn.Layer.conv

val gemm : int -> int -> int -> t
val of_conv : Dnn.Layer.conv -> t
val name : t -> string

(** 2·M·N·K for GEMM; the im2col equivalent for convolutions. *)
val flops : t -> float

(** Roofline lower-bound traffic in bytes (fp32, single pass). *)
val bytes : t -> float

(** Arithmetic intensity, flops/byte. *)
val intensity : t -> float

(** Equivalent (M, N, K) GEMM dimensions (conv via im2col). *)
val gemm_dims : t -> int * int * int

(** 3x3 stride-1 convolutions qualify for Winograd F(2x2,3x3). *)
val is_winograd_eligible : t -> bool
