lib/misra/rules_extended.ml: Ast Callgraph Cfront Hashtbl List Metrics Option Project Rule
