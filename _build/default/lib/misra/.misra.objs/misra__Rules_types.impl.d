lib/misra/rules_types.ml: Ast Cfront List Metrics Project Rule String Token Util
