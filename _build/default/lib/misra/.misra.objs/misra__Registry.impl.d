lib/misra/registry.ml: List Option Rule Rules_control Rules_cuda Rules_extended Rules_functions Rules_preproc Rules_types Rules_wave3 Stdlib Table Util
