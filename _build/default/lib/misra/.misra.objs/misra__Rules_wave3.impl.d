lib/misra/rules_wave3.ml: Ast Cfront Hashtbl List Loc Metrics Project Rule String
