lib/misra/rule.mli: Cfront
