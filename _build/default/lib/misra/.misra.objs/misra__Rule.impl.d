lib/misra/rule.ml: Cfront List Printf
