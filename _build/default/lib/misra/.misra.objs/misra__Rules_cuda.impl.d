lib/misra/rules_cuda.ml: Ast Callgraph Cfront List Loc Metrics Project Rule
