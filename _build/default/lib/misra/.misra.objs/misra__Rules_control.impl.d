lib/misra/rules_control.ml: Ast Cfront Hashtbl List Loc Metrics Option Rule Util
