lib/misra/rules_preproc.ml: Ast Cfront List Loc Preproc Project Rule String Token Util
