lib/misra/rules_functions.ml: Ast Callgraph Cfront Hashtbl List Metrics Option Rule
