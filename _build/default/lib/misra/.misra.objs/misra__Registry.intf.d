lib/misra/registry.mli: Cfront Rule
