(** Second wave of MISRA C:2012 rules: essential-type rules, switch
    topology, exit-path completeness, pointer arithmetic, and banned
    library functions. *)

open Cfront

let each_func (ctx : Rule.context) f = List.concat_map f ctx.Rule.functions

(* 14.4: the controlling expression of if/while shall have essentially
   boolean type.  [if (n)] with an arithmetic n is flagged; comparisons,
   logical operators and bool-typed expressions pass. *)
let r14_4 =
  Rule.make ~id:"14.4" ~title:"controlling expressions shall be boolean"
    ~category:Rule.Required (fun ctx ->
      each_func ctx (fun fn ->
          match fn.Ast.f_body with
          | None -> []
          | Some body ->
            let env = Metrics.Casts.env_of_func fn in
            let acc = ref [] in
            let boolish (e : Ast.expr) =
              match e.Ast.e with
              | Ast.Binary ((Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge | Ast.Eq | Ast.Ne
                            | Ast.Land | Ast.Lor), _, _)
              | Ast.Unary (Ast.Lnot, _)
              | Ast.Bool_const _ -> true
              | _ -> Metrics.Casts.infer env e = Metrics.Casts.Kbool
            in
            Ast.iter_stmts
              (fun s ->
                let flag loc =
                  acc :=
                    Rule.v ~rule_id:"14.4" ~loc
                      "non-boolean controlling expression in %s"
                      (Ast.qualified_name fn)
                    :: !acc
                in
                match s.Ast.s with
                | Ast.Sif { cond; _ } when not (boolish cond) -> flag s.Ast.sloc
                | Ast.Swhile (c, _) when not (boolish c) -> flag s.Ast.sloc
                | Ast.Sdo_while (_, c) when not (boolish c) -> (
                    (* tolerate the do-while-zero idiom *)
                    match c.Ast.e with
                    | Ast.Int_const 0L -> ()
                    | _ -> flag s.Ast.sloc)
                | _ -> ())
              body;
            List.rev !acc))

(* 16.2: a case label shall only appear directly within the switch body. *)
let r16_2 =
  Rule.make ~id:"16.2" ~title:"case labels only at the top level of a switch"
    ~category:Rule.Required (fun ctx ->
      each_func ctx (fun fn ->
          match fn.Ast.f_body with
          | None -> []
          | Some body ->
            let acc = ref [] in
            (* walk: any Scase/Sdefault reached through a non-switch
               compound inside a switch body is nested *)
            let rec walk ~depth_in_switch (s : Ast.stmt) =
              match s.Ast.s with
              | Ast.Sswitch (_, sw_body) -> (
                  match sw_body.Ast.s with
                  | Ast.Sblock ss ->
                    List.iter
                      (fun t ->
                        match t.Ast.s with
                        | Ast.Scase _ | Ast.Sdefault -> ()
                        | _ -> walk ~depth_in_switch:true t)
                      ss
                  | _ -> walk ~depth_in_switch:true sw_body)
              | Ast.Scase _ | Ast.Sdefault when depth_in_switch ->
                acc :=
                  Rule.v ~rule_id:"16.2" ~loc:s.Ast.sloc
                    "nested case label in %s" (Ast.qualified_name fn)
                  :: !acc
              | Ast.Sblock ss -> List.iter (walk ~depth_in_switch) ss
              | Ast.Sif { then_; else_; _ } ->
                walk ~depth_in_switch then_;
                Option.iter (walk ~depth_in_switch) else_
              | Ast.Swhile (_, b) | Ast.Sdo_while (b, _) | Ast.Sfor { body = b; _ }
              | Ast.Slabel (_, b) ->
                walk ~depth_in_switch b
              | Ast.Stry { body = b; catches } ->
                walk ~depth_in_switch b;
                List.iter (fun (_, h) -> walk ~depth_in_switch h) catches
              | _ -> ()
            in
            walk ~depth_in_switch:false body;
            List.rev !acc))

(* 16.5: a default label shall appear as the first or the last switch
   clause. *)
let r16_5 =
  Rule.make ~id:"16.5" ~title:"default shall be first or last switch clause"
    ~category:Rule.Required (fun ctx ->
      each_func ctx (fun fn ->
          match fn.Ast.f_body with
          | None -> []
          | Some body ->
            let acc = ref [] in
            Ast.iter_stmts
              (fun s ->
                match s.Ast.s with
                | Ast.Sswitch (_, { s = Ast.Sblock stmts; _ }) ->
                  let labels =
                    List.filter_map
                      (fun t ->
                        match t.Ast.s with
                        | Ast.Scase _ -> Some (`Case, t.Ast.sloc)
                        | Ast.Sdefault -> Some (`Default, t.Ast.sloc)
                        | _ -> None)
                      stmts
                  in
                  (match labels with
                   | [] -> ()
                   | _ ->
                     List.iteri
                       (fun i (kind, loc) ->
                         if kind = `Default && i <> 0 && i <> List.length labels - 1
                         then
                           acc :=
                             Rule.v ~rule_id:"16.5" ~loc
                               "default label in the middle of a switch in %s"
                               (Ast.qualified_name fn)
                             :: !acc)
                       labels)
                | _ -> ())
              body;
            List.rev !acc))

(* 16.7: the switch expression shall not be essentially boolean. *)
let r16_7 =
  Rule.make ~id:"16.7" ~title:"switch expression shall not be boolean"
    ~category:Rule.Required (fun ctx ->
      each_func ctx (fun fn ->
          match fn.Ast.f_body with
          | None -> []
          | Some body ->
            let acc = ref [] in
            Ast.iter_stmts
              (fun s ->
                match s.Ast.s with
                | Ast.Sswitch (e, _) -> (
                    match e.Ast.e with
                    | Ast.Binary ((Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge | Ast.Eq | Ast.Ne
                                  | Ast.Land | Ast.Lor), _, _)
                    | Ast.Unary (Ast.Lnot, _)
                    | Ast.Bool_const _ ->
                      acc :=
                        Rule.v ~rule_id:"16.7" ~loc:s.Ast.sloc
                          "boolean switch expression in %s" (Ast.qualified_name fn)
                        :: !acc
                    | _ -> ())
                | _ -> ())
              body;
            List.rev !acc))

(* 17.4: all exit paths of a non-void function shall return a value —
   approximated: the function body may fall off the end. *)
let r17_4 =
  Rule.make ~id:"17.4" ~title:"non-void functions shall return on every path"
    ~category:Rule.Mandatory (fun ctx ->
      List.filter_map
        (fun (fn : Ast.func) ->
          match (fn.Ast.f_ret, fn.Ast.f_body) with
          | Ast.Tvoid, _ | _, None -> None
          | _, Some body ->
            (* conservative: the last statement must guarantee a return *)
            let rec guarantees_return (s : Ast.stmt) =
              match s.Ast.s with
              | Ast.Sreturn _ | Ast.Sgoto _ -> true
              | Ast.Sblock ss -> (
                  match List.rev ss with
                  | last :: _ -> guarantees_return last
                  | [] -> false)
              | Ast.Sif { then_; else_ = Some e; _ } ->
                guarantees_return then_ && guarantees_return e
              | Ast.Sswitch (_, sw_body) ->
                (* every clause returning is possible but rare; treat a
                   switch whose every clause ends in return as returning *)
                let all_return = ref true in
                let has_default = ref false in
                (match sw_body.Ast.s with
                 | Ast.Sblock ss ->
                   let current_returns = ref false in
                   let saw_clause = ref false in
                   List.iter
                     (fun t ->
                       match t.Ast.s with
                       | Ast.Scase _ | Ast.Sdefault ->
                         if !saw_clause && not !current_returns then all_return := false;
                         saw_clause := true;
                         current_returns := false;
                         if t.Ast.s = Ast.Sdefault then has_default := true
                       | Ast.Sreturn _ -> current_returns := true
                       | _ -> ())
                     ss;
                   if !saw_clause && not !current_returns then all_return := false
                 | _ -> all_return := false);
                !all_return && !has_default
              | Ast.Slabel (_, inner) -> guarantees_return inner
              | Ast.Stry { body; catches } ->
                guarantees_return body
                && List.for_all (fun (_, h) -> guarantees_return h) catches
              | _ -> false
            in
            if guarantees_return body then None
            else
              Some
                (Rule.v ~rule_id:"17.4" ~loc:fn.Ast.f_loc
                   "%s may fall off the end without returning a value"
                   (Ast.qualified_name fn)))
        ctx.Rule.functions)

(* 18.4: the +, -, += and -= operators shall not be applied to pointer
   operands. *)
let r18_4 =
  Rule.make ~id:"18.4" ~title:"no pointer arithmetic with +/-"
    ~category:Rule.Advisory (fun ctx ->
      each_func ctx (fun fn ->
          let env = Metrics.Casts.env_of_func fn in
          let acc = ref [] in
          let is_ptr e = Metrics.Casts.infer env e = Metrics.Casts.Kptr in
          Ast.iter_exprs_of_func
            (fun e ->
              match e.Ast.e with
              | Ast.Binary ((Ast.Add | Ast.Sub), a, b) when is_ptr a || is_ptr b -> (
                  (* string literals and null are not flagged *)
                  match (a.Ast.e, b.Ast.e) with
                  | (Ast.Str_const _ | Ast.Nullptr), _ | _, (Ast.Str_const _ | Ast.Nullptr) -> ()
                  | _ ->
                    acc :=
                      Rule.v ~rule_id:"18.4" ~loc:e.Ast.eloc
                        "pointer arithmetic in %s" (Ast.qualified_name fn)
                      :: !acc)
              | Ast.Assign ((Ast.A_add | Ast.A_sub), lhs, _) when is_ptr lhs ->
                acc :=
                  Rule.v ~rule_id:"18.4" ~loc:e.Ast.eloc
                    "pointer compound assignment in %s" (Ast.qualified_name fn)
                  :: !acc
              | _ -> ())
            fn;
          List.rev !acc))

(* 21.7 / 21.9 / 21.10: banned stdlib families. *)
let banned_call ~rule_id ~title ~names =
  Rule.make ~id:rule_id ~title ~category:Rule.Required (fun ctx ->
      each_func ctx (fun fn ->
          let acc = ref [] in
          Ast.iter_exprs_of_func
            (fun e ->
              match e.Ast.e with
              | Ast.Call ({ e = Ast.Id name; _ }, _) when List.mem name names ->
                acc :=
                  Rule.v ~rule_id ~loc:e.Ast.eloc "%s called in %s" name
                    (Ast.qualified_name fn)
                  :: !acc
              | _ -> ())
            fn;
          List.rev !acc))

let r21_7 =
  banned_call ~rule_id:"21.7" ~title:"atof/atoi/atol shall not be used"
    ~names:[ "atof"; "atoi"; "atol"; "atoll" ]

let r21_9 =
  banned_call ~rule_id:"21.9" ~title:"bsearch and qsort shall not be used"
    ~names:[ "bsearch"; "qsort" ]

let r21_10 =
  banned_call ~rule_id:"21.10" ~title:"date/time library shall not be used"
    ~names:[ "time"; "clock"; "gettimeofday"; "localtime"; "mktime" ]

(* 8.2: function parameters shall be named in definitions. *)
let r8_2 =
  Rule.make ~id:"8.2" ~title:"function parameters shall be named"
    ~category:Rule.Required (fun ctx ->
      List.concat_map
        (fun (fn : Ast.func) ->
          List.filter_map
            (fun (p : Ast.param) ->
              if p.Ast.p_name = "" then
                Some
                  (Rule.v ~rule_id:"8.2" ~loc:fn.Ast.f_loc
                     "unnamed parameter of type %s in %s"
                     (Ast.type_to_string p.Ast.p_type) (Ast.qualified_name fn))
              else None)
            fn.Ast.f_params)
        ctx.Rule.functions)

(* 8.7: functions referenced in only one translation unit should be
   static. *)
let r8_7 =
  Rule.make ~id:"8.7" ~title:"single-unit functions should be static"
    ~category:Rule.Advisory (fun ctx ->
      (* map: qualified function -> defining file; caller file sets *)
      let def_file = Hashtbl.create 128 in
      List.iter
        (fun pf ->
          List.iter
            (fun (fn : Ast.func) ->
              if fn.Ast.f_body <> None then
                Hashtbl.replace def_file (Ast.qualified_name fn)
                  pf.Project.tu.Ast.tu_file)
            (Ast.functions_of_tu pf.Project.tu))
        ctx.Rule.files;
      let callers = Hashtbl.create 128 in
      List.iter
        (fun pf ->
          List.iter
            (fun (fn : Ast.func) ->
              List.iter
                (fun callee ->
                  let cur = Option.value ~default:[] (Hashtbl.find_opt callers callee) in
                  let f = pf.Project.tu.Ast.tu_file in
                  if not (List.mem f cur) then Hashtbl.replace callers callee (f :: cur))
                (Callgraph.calls_in_body fn))
            (Ast.functions_of_tu pf.Project.tu))
        ctx.Rule.files;
      List.filter_map
        (fun (fn : Ast.func) ->
          let q = Ast.qualified_name fn in
          let simple = fn.Ast.f_name in
          if List.mem Ast.Q_static fn.Ast.f_quals || fn.Ast.f_name = "main" then None
          else
            match (Hashtbl.find_opt def_file q, Hashtbl.find_opt callers simple) with
            | Some df, Some [ only_caller ] when only_caller = df ->
              Some
                (Rule.v ~rule_id:"8.7" ~loc:fn.Ast.f_loc
                   "%s is only referenced inside %s and should be static" q df)
            | _ -> None)
        ctx.Rule.functions)

let all = [ r8_2; r8_7; r14_4; r16_2; r16_5; r16_7; r17_4; r18_4; r21_7; r21_9; r21_10 ]
