(** CUDA extension rules.

    The paper's Observation 3 is that *no* language subset exists for GPU
    code ("No guideline or language subset exist for GPU code to
    facilitate code safety assessment").  These rules are our
    proof-of-concept answer: a candidate MISRA-CUDA subset that a checker
    can enforce mechanically, covering the hazards the paper highlights in
    §3.1.2 (pointers, dynamic device memory, unchecked thread bounds). *)

open Cfront

let is_kernel (fn : Ast.func) = List.mem Ast.Q_global fn.Ast.f_quals
let is_device (fn : Ast.func) =
  List.mem Ast.Q_global fn.Ast.f_quals || List.mem Ast.Q_device fn.Ast.f_quals

let kernels ctx = List.filter is_kernel ctx.Rule.functions
let device_fns ctx = List.filter is_device ctx.Rule.functions

(* CUDA-1: a kernel that derives an index from threadIdx/blockIdx shall
   guard global-memory accesses with a bound check. *)
let cuda_1 =
  Rule.make ~id:"CUDA-1" ~title:"kernels shall bound-check thread indices"
    ~category:Rule.Required (fun ctx ->
      List.filter_map
        (fun fn ->
          let uses_thread_idx = ref false in
          let has_guard = ref false in
          Ast.iter_exprs_of_func
            (fun e ->
              match e.Ast.e with
              | Ast.Member { obj = { e = Ast.Id ("threadIdx" | "blockIdx"); _ }; _ } ->
                uses_thread_idx := true
              | _ -> ())
            fn;
          (match fn.Ast.f_body with
           | None -> ()
           | Some body ->
             Ast.iter_stmts
               (fun s ->
                 match s.Ast.s with
                 | Ast.Sif { cond; _ } ->
                   (* any comparison in an if counts as a guard *)
                   Ast.iter_exprs_of_expr
                     (fun e ->
                       match e.Ast.e with
                       | Ast.Binary ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), _, _) ->
                         has_guard := true
                       | _ -> ())
                     cond
                 | _ -> ())
               body);
          if !uses_thread_idx && not !has_guard then
            Some
              (Rule.v ~rule_id:"CUDA-1" ~loc:fn.Ast.f_loc
                 "kernel %s indexes by thread id without a bound check"
                 (Ast.qualified_name fn))
          else None)
        (kernels ctx))

(* CUDA-2: no dynamic allocation inside device code. *)
let cuda_2 =
  Rule.make ~id:"CUDA-2" ~title:"no dynamic allocation in device code"
    ~category:Rule.Mandatory (fun ctx ->
      List.concat_map
        (fun fn ->
          List.map
            (fun (a : Metrics.Pointers.dyn_alloc) ->
              Rule.v ~rule_id:"CUDA-2" ~loc:a.Metrics.Pointers.loc
                "%s inside device function %s" a.Metrics.Pointers.site
                a.Metrics.Pointers.in_function)
            (Metrics.Pointers.dyn_allocs_of_func fn))
        (device_fns ctx))

(* CUDA-3: every cudaMalloc shall have a matching cudaFree in the same
   translation unit. *)
let cuda_3 =
  Rule.make ~id:"CUDA-3" ~title:"cudaMalloc shall pair with cudaFree"
    ~category:Rule.Required (fun ctx ->
      List.concat_map
        (fun pf ->
          let fns =
            List.filter
              (fun (f : Ast.func) -> f.Ast.f_body <> None)
              (Ast.functions_of_tu pf.Project.tu)
          in
          let count name =
            let n = ref 0 in
            List.iter
              (fun fn ->
                Ast.iter_exprs_of_func
                  (fun e ->
                    match e.Ast.e with
                    | Ast.Call ({ e = Ast.Id callee; _ }, _) when callee = name -> incr n
                    | _ -> ())
                  fn)
              fns;
            !n
          in
          let mallocs = count "cudaMalloc" in
          let frees = count "cudaFree" in
          if mallocs > frees then
            [ Rule.v ~rule_id:"CUDA-3"
                ~loc:(Loc.make ~file:pf.Project.tu.Ast.tu_file ~line:1 ~col:1)
                "%d cudaMalloc vs %d cudaFree in %s" mallocs frees
                pf.Project.tu.Ast.tu_file ]
          else [])
        ctx.Rule.files)

(* CUDA-4: kernel launches shall check for errors (a cudaGetLastError or
   cudaDeviceSynchronize call shall follow a launch in the same function). *)
let cuda_4 =
  Rule.make ~id:"CUDA-4" ~title:"kernel launches shall be error-checked"
    ~category:Rule.Required (fun ctx ->
      List.filter_map
        (fun (fn : Ast.func) ->
          let has_launch = ref false in
          let has_check = ref false in
          Ast.iter_exprs_of_func
            (fun e ->
              match e.Ast.e with
              | Ast.Kernel_launch _ -> has_launch := true
              | Ast.Call ({ e = Ast.Id ("cudaGetLastError" | "cudaDeviceSynchronize"
                                       | "cudaPeekAtLastError"); _ }, _) ->
                has_check := true
              | _ -> ())
            fn;
          if !has_launch && not !has_check then
            Some
              (Rule.v ~rule_id:"CUDA-4" ~loc:fn.Ast.f_loc
                 "%s launches kernels without error checking" (Ast.qualified_name fn))
          else None)
        ctx.Rule.functions)

(* CUDA-5: device functions shall not be recursive (stack depth on GPU is
   severely limited and unanalyzable). *)
let cuda_5 =
  Rule.make ~id:"CUDA-5" ~title:"no recursion in device code"
    ~category:Rule.Mandatory (fun ctx ->
      let recursive = Callgraph.recursive_functions ctx.Rule.callgraph in
      List.filter_map
        (fun fn ->
          let q = Ast.qualified_name fn in
          if List.mem q recursive then
            Some (Rule.v ~rule_id:"CUDA-5" ~loc:fn.Ast.f_loc "device function %s is recursive" q)
          else None)
        (device_fns ctx))

(* CUDA-6: raw pointer parameters of kernels shall be __restrict__
   qualified or const — approximated: kernels with more than 4 raw pointer
   parameters are flagged as alias-analysis hazards. *)
let cuda_6 =
  Rule.make ~id:"CUDA-6" ~title:"kernels shall limit raw pointer parameters"
    ~category:Rule.Advisory (fun ctx ->
      List.filter_map
        (fun (fn : Ast.func) ->
          let ptrs =
            List.length
              (List.filter (fun p -> Ast.is_pointer_type p.Ast.p_type) fn.Ast.f_params)
          in
          if ptrs > 4 then
            Some
              (Rule.v ~rule_id:"CUDA-6" ~loc:fn.Ast.f_loc
                 "kernel %s takes %d raw pointer parameters" (Ast.qualified_name fn) ptrs)
          else None)
        (kernels ctx))

let all = [ cuda_1; cuda_2; cuda_3; cuda_4; cuda_5; cuda_6 ]
