(** Third wave of MISRA C:2012 rules: comment hygiene, essential-type
    mixing, side-effect ordering hazards, escaping addresses, and the
    setjmp/signal bans. *)

open Cfront

let each_func (ctx : Rule.context) f = List.concat_map f ctx.Rule.functions

(* 3.1: the character sequences /* and // shall not be used within a
   comment (a nested opener usually means an unclosed comment ate code). *)
let r3_1 =
  Rule.make ~id:"3.1" ~title:"no comment markers inside comments"
    ~category:Rule.Required (fun ctx ->
      List.concat_map
        (fun pf ->
          let src = pf.Project.tu.Ast.raw_source in
          let n = String.length src in
          let acc = ref [] in
          let line = ref 1 in
          let i = ref 0 in
          let flag () =
            acc :=
              Rule.v ~rule_id:"3.1"
                ~loc:(Loc.make ~file:pf.Project.tu.Ast.tu_file ~line:!line ~col:1)
                "comment marker inside a comment"
              :: !acc
          in
          while !i < n - 1 do
            (match (src.[!i], src.[!i + 1]) with
             | '\n', _ -> incr line
             | '/', '*' ->
               (* scan the block comment body *)
               i := !i + 2;
               let closed = ref false in
               while (not !closed) && !i < n - 1 do
                 (match (src.[!i], src.[!i + 1]) with
                  | '\n', _ -> incr line
                  | '*', '/' ->
                    closed := true;
                    incr i
                  | '/', ('*' | '/') -> flag ()
                  | _ -> ());
                 incr i
               done
             | '/', '/' ->
               (* line comment: a second // is idiomatic, but /* is not *)
               i := !i + 2;
               while !i < n - 1 && src.[!i] <> '\n' do
                 if src.[!i] = '/' && src.[!i + 1] = '*' then flag ();
                 incr i
               done;
               i := !i - 1
             | _ -> ());
            incr i
          done;
          List.rev !acc)
        ctx.Rule.files)

(* 10.4: both operands of an arithmetic operator shall have the same
   essential type category (no silent int/float mixing). *)
let r10_4 =
  Rule.make ~id:"10.4" ~title:"no mixed essential types in arithmetic"
    ~category:Rule.Required (fun ctx ->
      each_func ctx (fun fn ->
          let env = Metrics.Casts.env_of_func fn in
          let acc = ref [] in
          Ast.iter_exprs_of_func
            (fun e ->
              match e.Ast.e with
              | Ast.Binary ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div), a, b) -> (
                  match (Metrics.Casts.infer env a, Metrics.Casts.infer env b) with
                  | Metrics.Casts.Kint, Metrics.Casts.Kfloat
                  | Metrics.Casts.Kfloat, Metrics.Casts.Kint ->
                    acc :=
                      Rule.v ~rule_id:"10.4" ~loc:e.Ast.eloc
                        "int/float operands mixed in %s" (Ast.qualified_name fn)
                      :: !acc
                  | _ -> ())
              | _ -> ())
            fn;
          List.rev !acc))

(* 13.3: a full expression containing ++ or -- should have no other
   potential side effects. *)
let r13_3 =
  Rule.make ~id:"13.3" ~title:"++/-- shall be the only side effect"
    ~category:Rule.Advisory (fun ctx ->
      each_func ctx (fun fn ->
          match fn.Ast.f_body with
          | None -> []
          | Some body ->
            let acc = ref [] in
            let count_effects e =
              let incdec = ref 0 and others = ref 0 in
              Ast.iter_exprs_of_expr
                (fun x ->
                  match x.Ast.e with
                  | Ast.Postfix _ | Ast.Unary ((Ast.Pre_inc | Ast.Pre_dec), _) ->
                    incr incdec
                  | Ast.Assign _ | Ast.Call _ | Ast.Kernel_launch _ | Ast.New _
                  | Ast.Delete _ ->
                    incr others
                  | _ -> ())
                e;
              (!incdec, !others)
            in
            Ast.iter_stmts
              (fun s ->
                match s.Ast.s with
                | Ast.Sexpr e ->
                  let incdec, others = count_effects e in
                  if incdec > 0 && (others > 0 || incdec > 1) then
                    acc :=
                      Rule.v ~rule_id:"13.3" ~loc:s.Ast.sloc
                        "increment mixed with other side effects in %s"
                        (Ast.qualified_name fn)
                      :: !acc
                | _ -> ())
              body;
            List.rev !acc))

(* 13.6: the operand of sizeof shall have no side effects. *)
let r13_6 =
  Rule.make ~id:"13.6" ~title:"sizeof operand shall be side-effect free"
    ~category:Rule.Mandatory (fun ctx ->
      each_func ctx (fun fn ->
          let acc = ref [] in
          Ast.iter_exprs_of_func
            (fun e ->
              match e.Ast.e with
              | Ast.Sizeof_expr inner ->
                let impure = ref false in
                Ast.iter_exprs_of_expr
                  (fun x ->
                    match x.Ast.e with
                    | Ast.Assign _ | Ast.Call _ | Ast.Postfix _
                    | Ast.Unary ((Ast.Pre_inc | Ast.Pre_dec), _) ->
                      impure := true
                    | _ -> ())
                  inner;
                if !impure then
                  acc :=
                    Rule.v ~rule_id:"13.6" ~loc:e.Ast.eloc
                      "side effect inside sizeof in %s" (Ast.qualified_name fn)
                    :: !acc
              | _ -> ())
            fn;
          List.rev !acc))

(* 18.6: the address of an object with automatic storage shall not escape
   its lifetime — the detectable core: returning &local. *)
let r18_6 =
  Rule.make ~id:"18.6" ~title:"no escaping addresses of locals"
    ~category:Rule.Required (fun ctx ->
      each_func ctx (fun fn ->
          match fn.Ast.f_body with
          | None -> []
          | Some body ->
            let locals = Hashtbl.create 8 in
            Ast.iter_stmts
              (fun s ->
                match s.Ast.s with
                | Ast.Sdecl ds | Ast.Sfor { init = Ast.Fi_decl ds; _ } ->
                  List.iter
                    (fun (d : Ast.var_decl) -> Hashtbl.replace locals d.Ast.v_name ())
                    ds
                | _ -> ())
              body;
            let acc = ref [] in
            Ast.iter_stmts
              (fun s ->
                match s.Ast.s with
                | Ast.Sreturn (Some { e = Ast.Unary (Ast.Addr_of, { e = Ast.Id name; _ }); _ })
                  when Hashtbl.mem locals name ->
                  acc :=
                    Rule.v ~rule_id:"18.6" ~loc:s.Ast.sloc
                      "address of local %s returned from %s" name
                      (Ast.qualified_name fn)
                    :: !acc
                | _ -> ())
              body;
            List.rev !acc))

let banned ~rule_id ~title names =
  Rule.make ~id:rule_id ~title ~category:Rule.Required (fun ctx ->
      each_func ctx (fun fn ->
          let acc = ref [] in
          Ast.iter_exprs_of_func
            (fun e ->
              match e.Ast.e with
              | Ast.Call ({ e = Ast.Id name; _ }, _) when List.mem name names ->
                acc :=
                  Rule.v ~rule_id ~loc:e.Ast.eloc "%s called in %s" name
                    (Ast.qualified_name fn)
                  :: !acc
              | _ -> ())
            fn;
          List.rev !acc))

(* 21.4: setjmp/longjmp shall not be used. *)
let r21_4 =
  banned ~rule_id:"21.4" ~title:"setjmp/longjmp shall not be used"
    [ "setjmp"; "longjmp"; "sigsetjmp"; "siglongjmp" ]

(* 21.5: the signal-handling facilities shall not be used. *)
let r21_5 =
  banned ~rule_id:"21.5" ~title:"signal handling shall not be used"
    [ "signal"; "sigaction"; "raise"; "kill" ]

let all = [ r3_1; r10_4; r13_3; r13_6; r18_6; r21_4; r21_5 ]
