(** Preprocessor rules (MISRA C:2012 section 20) and token-level checks. *)

open Cfront

(* 20.5: #undef should not be used. *)
let r20_5 =
  Rule.make ~id:"20.5" ~title:"#undef should not be used" ~category:Rule.Advisory
    (fun ctx ->
      List.concat_map
        (fun pf ->
          List.filter_map
            (fun (line, d) ->
              match d with
              | Preproc.Other "undef" ->
                Some
                  (Rule.v ~rule_id:"20.5"
                     ~loc:(Loc.make ~file:pf.Project.tu.Ast.tu_file ~line ~col:1)
                     "#undef directive")
              | _ -> None)
            pf.Project.tu.Ast.directives)
        ctx.Rule.files)

(* 20.7: macro parameter expansion — we flag function-like macros entirely
   (4.9 advisory: function-like macros should not be defined). *)
let r4_9 =
  Rule.make ~id:"4.9" ~title:"function-like macros should not be defined"
    ~category:Rule.Advisory (fun ctx ->
      List.concat_map
        (fun pf ->
          List.filter_map
            (fun (line, d) ->
              match d with
              | Preproc.Define { name; function_like = true; _ } ->
                Some
                  (Rule.v ~rule_id:"4.9"
                     ~loc:(Loc.make ~file:pf.Project.tu.Ast.tu_file ~line ~col:1)
                     "function-like macro %s" name)
              | _ -> None)
            pf.Project.tu.Ast.directives)
        ctx.Rule.files)

(* 21.1: #define shall not redefine reserved identifiers. *)
let r21_1 =
  Rule.make ~id:"21.1" ~title:"no #define of reserved identifiers"
    ~category:Rule.Required (fun ctx ->
      let reserved name =
        Token.is_keyword name
        || (String.length name >= 2 && name.[0] = '_' && name.[1] = '_')
        || List.mem name [ "errno"; "assert"; "NULL"; "stdin"; "stdout"; "stderr" ]
      in
      List.concat_map
        (fun pf ->
          List.filter_map
            (fun (line, d) ->
              match d with
              | Preproc.Define { name; _ } when reserved name ->
                Some
                  (Rule.v ~rule_id:"21.1"
                     ~loc:(Loc.make ~file:pf.Project.tu.Ast.tu_file ~line ~col:1)
                     "reserved identifier %s redefined" name)
              | _ -> None)
            pf.Project.tu.Ast.directives)
        ctx.Rule.files)

(* 19.2: the union keyword should not be used. *)
let r19_2 =
  Rule.make ~id:"19.2" ~title:"union shall not be used" ~category:Rule.Advisory
    (fun ctx ->
      List.concat_map
        (fun pf ->
          List.filter_map
            (fun (tok : Token.t) ->
              match tok.Token.kind with
              | Token.Keyword "union" ->
                Some (Rule.v ~rule_id:"19.2" ~loc:tok.Token.loc "union keyword")
              | _ -> None)
            pf.Project.tu.Ast.tokens)
        ctx.Rule.files)

(* Dir 4.4: sections of code should not be commented out — approximated by
   comment lines that end with ';' or contain '=' and parse as statements
   (text heuristic: a comment line with a trailing semicolon). *)
let d4_4 =
  Rule.make ~id:"D4.4" ~title:"no commented-out code" ~category:Rule.Advisory
    ~decidable:false (fun ctx ->
      List.concat_map
        (fun pf ->
          let lines = Util.Strutil.lines pf.Project.tu.Ast.raw_source in
          List.concat
            (List.mapi
               (fun i line ->
                 let t = Util.Strutil.strip line in
                 if Util.Strutil.starts_with ~prefix:"//" t
                    && Util.Strutil.ends_with ~suffix:";" t
                 then
                   [ Rule.v ~rule_id:"D4.4"
                       ~loc:(Loc.make ~file:pf.Project.tu.Ast.tu_file ~line:(i + 1) ~col:1)
                       "commented-out statement" ]
                 else [])
               lines))
        ctx.Rule.files)

let all = [ r4_9; r19_2; r20_5; r21_1; d4_4 ]
