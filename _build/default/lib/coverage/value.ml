(** Runtime values of the interpreter.

    The memory model is cell-addressed: every scalar occupies exactly one
    cell and [sizeof] of a scalar type is 1.  C sources executed by this
    interpreter must therefore size allocations in [n * sizeof(T)] form
    (which well-formed C does anyway); the product then counts cells.
    Structs are flattened: their size is the sum of their field sizes. *)

type ptr = { block : int; offset : int }

type t =
  | Vint of int64
  | Vfloat of float
  | Vbool of bool
  | Vstr of string
  | Vptr of ptr
  | Vnull
  | Vvoid

let to_string = function
  | Vint v -> Int64.to_string v
  | Vfloat v -> Printf.sprintf "%g" v
  | Vbool b -> string_of_bool b
  | Vstr s -> Printf.sprintf "%S" s
  | Vptr p -> Printf.sprintf "<ptr %d+%d>" p.block p.offset
  | Vnull -> "nullptr"
  | Vvoid -> "void"

let truthy = function
  | Vint v -> v <> 0L
  | Vfloat v -> v <> 0.0
  | Vbool b -> b
  | Vptr _ -> true
  | Vstr _ -> true
  | Vnull -> false
  | Vvoid -> false

let as_int = function
  | Vint v -> v
  | Vfloat v -> Int64.of_float v
  | Vbool b -> if b then 1L else 0L
  | Vnull -> 0L
  | v -> invalid_arg (Printf.sprintf "expected integer value, got %s" (to_string v))

let as_float = function
  | Vint v -> Int64.to_float v
  | Vfloat v -> v
  | Vbool b -> if b then 1.0 else 0.0
  | v -> invalid_arg (Printf.sprintf "expected float value, got %s" (to_string v))

let is_float = function Vfloat _ -> true | _ -> false
