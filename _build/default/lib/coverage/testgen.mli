(** Gap-driven test generation — Observation 10's "additional test cases
    are required", synthesized.

    Covers the tractable gap classes: uncalled all-scalar functions
    (boundary-value battery), parameter-driven switch clauses (one probe
    per missing label), and one-sided comparisons against integer
    constants (straddling values). *)

type call_plan = {
  target : string;  (** simple function name to call *)
  args : int list list;  (** one argument list per synthesized call *)
  reason : string;
}

val boundary_values : int list

(** Does every parameter have a scalar type (so an int battery applies)? *)
val all_scalar_params : Cfront.Ast.func -> bool

(** Case labels of parameter-driven switches and comparison boundaries,
    deduplicated and sorted. *)
val interesting_values : Cfront.Ast.func -> int list

(** Build call plans for the coverage gaps left by a previous run. *)
val plan_for_gaps :
  Collector.t -> Cfront.Ast.tu list -> measured:string list -> call_plan list

(** Render plans as a C driver with one [gap_case_N] entry per probe, so
    a faulting probe does not mask the others.  Returns (source, entry
    names). *)
val driver_of_plans : call_plan list -> string * string list

type improvement = {
  before_stmt : float;
  before_branch : float;
  after_stmt : float;
  after_branch : float;
  plans : call_plan list;
  driver : string;
}

(** Measure under [entry], synthesize probes for the gaps, re-measure
    with the probes included.  @raise Failure if the baseline itself
    fails to run. *)
val close_gaps :
  entry:string -> measured:string list -> Cfront.Ast.tu list -> improvement
