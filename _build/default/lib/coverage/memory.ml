(** Block-based store for the interpreter.

    Each allocation is an isolated block of cells; a pointer is a (block,
    offset) pair.  Out-of-bounds and use-after-free accesses raise — the
    interpreter turns them into runtime diagnostics, which is itself a
    useful dynamic-analysis signal. *)

exception Fault of string

type space = Host | Device

type t = {
  blocks : (int, Value.t array) Hashtbl.t;
  spaces : (int, space) Hashtbl.t;
  mutable next_block : int;
  mutable live_cells : int;
  mutable peak_cells : int;
}

let create () =
  { blocks = Hashtbl.create 256; spaces = Hashtbl.create 256; next_block = 1;
    live_cells = 0; peak_cells = 0 }

let alloc ?(space = Host) ?(init = Value.Vint 0L) t n =
  if n < 0 then raise (Fault (Printf.sprintf "allocation of negative size %d" n));
  let id = t.next_block in
  t.next_block <- id + 1;
  Hashtbl.replace t.blocks id (Array.make (Stdlib.max n 0) init);
  Hashtbl.replace t.spaces id space;
  t.live_cells <- t.live_cells + n;
  t.peak_cells <- Stdlib.max t.peak_cells t.live_cells;
  { Value.block = id; offset = 0 }

let free t (p : Value.ptr) =
  if p.Value.offset <> 0 then raise (Fault "free of interior pointer");
  match Hashtbl.find_opt t.blocks p.Value.block with
  | None -> raise (Fault "double free or invalid free")
  | Some arr ->
    t.live_cells <- t.live_cells - Array.length arr;
    Hashtbl.remove t.blocks p.Value.block;
    Hashtbl.remove t.spaces p.Value.block

let block_size t (p : Value.ptr) =
  match Hashtbl.find_opt t.blocks p.Value.block with
  | None -> raise (Fault "size of freed block")
  | Some arr -> Array.length arr

let space_of t (p : Value.ptr) =
  Option.value ~default:Host (Hashtbl.find_opt t.spaces p.Value.block)

let load t (p : Value.ptr) =
  match Hashtbl.find_opt t.blocks p.Value.block with
  | None -> raise (Fault "load from freed block")
  | Some arr ->
    if p.Value.offset < 0 || p.Value.offset >= Array.length arr then
      raise
        (Fault
           (Printf.sprintf "load out of bounds (offset %d, size %d)" p.Value.offset
              (Array.length arr)))
    else arr.(p.Value.offset)

let store t (p : Value.ptr) v =
  match Hashtbl.find_opt t.blocks p.Value.block with
  | None -> raise (Fault "store to freed block")
  | Some arr ->
    if p.Value.offset < 0 || p.Value.offset >= Array.length arr then
      raise
        (Fault
           (Printf.sprintf "store out of bounds (offset %d, size %d)" p.Value.offset
              (Array.length arr)))
    else arr.(p.Value.offset) <- v

let shift (p : Value.ptr) n = { p with Value.offset = p.Value.offset + n }

let copy t ~src ~dst n =
  for i = 0 to n - 1 do
    store t (shift dst i) (load t (shift src i))
  done

let fill t ~dst v n =
  for i = 0 to n - 1 do
    store t (shift dst i) v
  done
