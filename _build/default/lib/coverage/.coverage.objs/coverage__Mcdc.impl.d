lib/coverage/mcdc.ml: Hashtbl List Option
