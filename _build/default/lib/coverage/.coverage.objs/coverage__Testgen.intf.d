lib/coverage/testgen.mli: Cfront Collector
