lib/coverage/value.ml: Int64 Printf
