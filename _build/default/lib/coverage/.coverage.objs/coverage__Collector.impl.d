lib/coverage/collector.ml: Hashtbl Instrument Interp List Mcdc Option Util
