lib/coverage/annotate.mli: Cfront Collector
