lib/coverage/instrument.mli: Cfront
