lib/coverage/annotate.ml: Array Buffer Cfront Collector Hashtbl Instrument List Option Printf Util
