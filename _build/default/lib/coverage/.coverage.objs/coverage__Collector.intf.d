lib/coverage/collector.mli: Hashtbl Instrument Interp Mcdc
