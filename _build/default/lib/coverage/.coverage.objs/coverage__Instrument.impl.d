lib/coverage/instrument.ml: Cfront List Util
