lib/coverage/memory.ml: Array Hashtbl Option Printf Stdlib Value
