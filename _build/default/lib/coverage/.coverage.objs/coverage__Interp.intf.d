lib/coverage/interp.mli: Cfront Value
