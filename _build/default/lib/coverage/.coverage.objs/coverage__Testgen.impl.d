lib/coverage/testgen.ml: Buffer Cfront Collector Instrument Int64 Interp List Printf String
