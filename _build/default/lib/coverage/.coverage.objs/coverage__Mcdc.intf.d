lib/coverage/mcdc.mli: Hashtbl
