lib/coverage/builtins.ml: Buffer Cfront Char Float Int64 List Memory Printf Stdlib String Value
