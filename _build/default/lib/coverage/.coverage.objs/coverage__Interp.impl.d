lib/coverage/interp.ml: Array Buffer Builtins Cfront Char Hashtbl Instrument Int64 List Memory Option Printf Stdlib String Util Value
