(** Static enumeration of coverage points.

    For each function we enumerate:
    - executable statements (by statement id),
    - boolean decisions (if/while/do-while/for conditions and ternaries),
      each with its ordered list of leaf conditions for MC/DC,
    - switch statements with their clause counts.

    A "condition" is a leaf of the decision's [&&]/[||] tree ([!] is
    transparent).  A decision with a single condition still participates in
    MC/DC (its condition is covered by observing both outcomes). *)

type decision = {
  d_eid : int;  (** expression id of the whole controlling expression *)
  d_loc : Cfront.Loc.t;
  conditions : int list;  (** eids of leaf conditions, in evaluation order *)
}

type switch_point = {
  sw_sid : int;
  sw_loc : Cfront.Loc.t;
  clauses : int;  (** number of case labels plus default if present *)
  has_default : bool;
}

type func_points = {
  fp_name : string;  (** qualified *)
  fp_file : string;
  fp_loc : Cfront.Loc.t;
  stmts : int list;  (** sids of executable statements *)
  decisions : decision list;
  switches : switch_point list;
}

(** Leaf conditions of a decision expression, in evaluation order. *)
let rec leaves_of (e : Cfront.Ast.expr) =
  match e.Cfront.Ast.e with
  | Cfront.Ast.Binary ((Cfront.Ast.Land | Cfront.Ast.Lor), a, b) ->
    leaves_of a @ leaves_of b
  | Cfront.Ast.Unary (Cfront.Ast.Lnot, a) -> leaves_of a
  | _ -> [ e.Cfront.Ast.eid ]

let decision_of (e : Cfront.Ast.expr) =
  { d_eid = e.Cfront.Ast.eid; d_loc = e.Cfront.Ast.eloc; conditions = leaves_of e }

(** Statements that count for statement coverage.  Blocks, labels and case
    markers are structural; everything else is executable. *)
let is_executable (s : Cfront.Ast.stmt) =
  match s.Cfront.Ast.s with
  | Cfront.Ast.Sblock _ | Cfront.Ast.Slabel _ | Cfront.Ast.Scase _
  | Cfront.Ast.Sdefault | Cfront.Ast.Sempty -> false
  | _ -> true

let ternary_decisions_under_stmt stmt =
  let acc = ref [] in
  Cfront.Ast.iter_exprs_of_stmt
    (fun e ->
      match e.Cfront.Ast.e with
      | Cfront.Ast.Ternary (c, _, _) -> acc := decision_of c :: !acc
      | _ -> ())
    stmt;
  List.rev !acc

let of_func ~file (fn : Cfront.Ast.func) =
  match fn.Cfront.Ast.f_body with
  | None -> None
  | Some body ->
    let stmts = ref [] in
    let decisions = ref [] in
    let switches = ref [] in
    Cfront.Ast.iter_stmts
      (fun s ->
        if is_executable s then stmts := s.Cfront.Ast.sid :: !stmts;
        match s.Cfront.Ast.s with
        | Cfront.Ast.Sif { cond; _ } -> decisions := decision_of cond :: !decisions
        | Cfront.Ast.Swhile (c, _) | Cfront.Ast.Sdo_while (_, c) ->
          decisions := decision_of c :: !decisions
        | Cfront.Ast.Sfor { cond = Some c; _ } -> decisions := decision_of c :: !decisions
        | Cfront.Ast.Sswitch (_, sw_body) ->
          let cases = ref 0 and has_default = ref false in
          Cfront.Ast.iter_stmts
            (fun t ->
              match t.Cfront.Ast.s with
              | Cfront.Ast.Scase _ -> incr cases
              | Cfront.Ast.Sdefault -> has_default := true
              | _ -> ())
            sw_body;
          switches :=
            { sw_sid = s.Cfront.Ast.sid; sw_loc = s.Cfront.Ast.sloc;
              clauses = !cases + (if !has_default then 1 else 0);
              has_default = !has_default }
            :: !switches
        | _ -> ())
      body;
    let ternaries = ternary_decisions_under_stmt body in
    Some
      {
        fp_name = Cfront.Ast.qualified_name fn;
        fp_file = file;
        fp_loc = fn.Cfront.Ast.f_loc;
        stmts = List.rev !stmts;
        decisions = List.rev !decisions @ ternaries;
        switches = List.rev !switches;
      }

let of_tu (tu : Cfront.Ast.tu) =
  List.filter_map (of_func ~file:tu.Cfront.Ast.tu_file) (Cfront.Ast.functions_of_tu tu)

(** Totals across a set of function points. *)
let totals fps =
  let stmts = Util.Stats.sum_int (List.map (fun fp -> List.length fp.stmts) fps) in
  let branch_outcomes =
    Util.Stats.sum_int
      (List.map
         (fun fp ->
           (2 * List.length fp.decisions)
           + Util.Stats.sum_int (List.map (fun sw -> sw.clauses) fp.switches))
         fps)
  in
  let conditions =
    Util.Stats.sum_int
      (List.map
         (fun fp ->
           Util.Stats.sum_int (List.map (fun d -> List.length d.conditions) fp.decisions))
         fps)
  in
  (stmts, branch_outcomes, conditions)
