(** Static enumeration of coverage points: executable statements, boolean
    decisions with their ordered leaf conditions (for MC/DC), and switch
    statements with their clause counts. *)

type decision = {
  d_eid : int;  (** expression id of the controlling expression *)
  d_loc : Cfront.Loc.t;
  conditions : int list;  (** leaf-condition eids in evaluation order *)
}

type switch_point = {
  sw_sid : int;
  sw_loc : Cfront.Loc.t;
  clauses : int;  (** case labels plus default if present *)
  has_default : bool;
}

type func_points = {
  fp_name : string;  (** qualified *)
  fp_file : string;
  fp_loc : Cfront.Loc.t;
  stmts : int list;  (** executable statement ids *)
  decisions : decision list;
  switches : switch_point list;
}

(** Leaves of a decision's [&&]/[||] tree ([!] is transparent). *)
val leaves_of : Cfront.Ast.expr -> int list

val decision_of : Cfront.Ast.expr -> decision

(** Blocks, labels, case markers and empty statements are structural;
    everything else counts for statement coverage. *)
val is_executable : Cfront.Ast.stmt -> bool

val of_func : file:string -> Cfront.Ast.func -> func_points option
val of_tu : Cfront.Ast.tu -> func_points list

(** [(statements, branch outcomes, conditions)] across the set. *)
val totals : func_points list -> int * int * int
