(** gcov/RapiCover-style annotated source listings.

    Each source line is prefixed with its execution evidence:
    - [    n|] the statements on this line executed (max hit count n);
    - [#####|] the line holds executable statements that never ran;
    - [     |] no executable statement on this line. *)

type line_status = Not_executable | Hit of int | Missed

let status_prefix = function
  | Not_executable -> "      |"
  | Hit n when n > 99999 -> "  >99k|"
  | Hit n -> Printf.sprintf "%6d|" n
  | Missed -> " #####|"

(** Compute per-line status for one translation unit under a collector. *)
let line_statuses (collector : Collector.t) (tu : Cfront.Ast.tu) =
  let nlines = List.length (Util.Strutil.lines tu.Cfront.Ast.raw_source) in
  let status = Array.make (nlines + 1) Not_executable in
  List.iter
    (fun (fn : Cfront.Ast.func) ->
      match fn.Cfront.Ast.f_body with
      | None -> ()
      | Some body ->
        Cfront.Ast.iter_stmts
          (fun s ->
            if Instrument.is_executable s then begin
              let line = s.Cfront.Ast.sloc.Cfront.Loc.line in
              if line >= 1 && line <= nlines then begin
                let hits =
                  Option.value ~default:0
                    (Hashtbl.find_opt collector.Collector.stmt_hits s.Cfront.Ast.sid)
                in
                match status.(line) with
                | Not_executable -> status.(line) <- (if hits = 0 then Missed else Hit hits)
                | Missed -> if hits > 0 then status.(line) <- Hit hits
                | Hit old -> if hits > old then status.(line) <- Hit hits
              end
            end)
          body)
    (Cfront.Ast.functions_of_tu tu);
  status

(** Render the annotated listing.  [only_functions] restricts output to
    the line spans of the named functions. *)
let render ?(only_functions = []) collector (tu : Cfront.Ast.tu) =
  let status = line_statuses collector tu in
  let spans =
    match only_functions with
    | [] -> None
    | names ->
      Some
        (List.filter_map
           (fun (fn : Cfront.Ast.func) ->
             if List.mem (Cfront.Ast.qualified_name fn) names
                || List.mem fn.Cfront.Ast.f_name names
             then Some (fn.Cfront.Ast.f_loc.Cfront.Loc.line, fn.Cfront.Ast.f_end_line)
             else None)
           (Cfront.Ast.functions_of_tu tu))
  in
  let in_span line =
    match spans with
    | None -> true
    | Some ss -> List.exists (fun (a, b) -> line >= a && line <= b) ss
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "== %s\n" tu.Cfront.Ast.tu_file);
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if in_span lineno then
        Buffer.add_string buf
          (Printf.sprintf "%s%s\n" (status_prefix status.(lineno)) line))
    (Util.Strutil.lines tu.Cfront.Ast.raw_source);
  Buffer.contents buf

(** Lines that hold executable statements but never ran — the work list
    for writing the "additional test cases" of Observation 10. *)
let missed_lines collector tu =
  let status = line_statuses collector tu in
  let acc = ref [] in
  Array.iteri (fun i s -> if s = Missed then acc := i :: !acc) status;
  List.rev !acc
