(** gcov/RapiCover-style annotated source listings. *)

type line_status = Not_executable | Hit of int | Missed

val status_prefix : line_status -> string

(** Per-line status (1-based indexing; index 0 unused). *)
val line_statuses : Collector.t -> Cfront.Ast.tu -> line_status array

(** Annotated listing; [only_functions] restricts output to the line
    spans of the named functions (simple or qualified names). *)
val render : ?only_functions:string list -> Collector.t -> Cfront.Ast.tu -> string

(** Line numbers holding executable statements that never ran — the work
    list for Observation 10's missing test cases. *)
val missed_lines : Collector.t -> Cfront.Ast.tu -> int list
