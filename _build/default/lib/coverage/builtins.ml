(** Builtin functions available to interpreted C code: a slice of libc and
    libm, the CUDA runtime entry points, and a deterministic [rand].

    The cell-addressed memory model (see {!Value}) means size arguments in
    bytes are size arguments in cells, because [sizeof] of every scalar is
    1. *)

exception Builtin_error of string

type ctx = {
  mem : Memory.t;
  output : Buffer.t;
  rand_state : unit -> int64;
  set_rand_state : int64 -> unit;
}

type t = ctx -> Value.t list -> Value.t

let float1 f : t =
 fun _ args ->
  match args with
  | [ v ] -> Value.Vfloat (f (Value.as_float v))
  | _ -> raise (Builtin_error "expected 1 argument")

let float2 f : t =
 fun _ args ->
  match args with
  | [ a; b ] -> Value.Vfloat (f (Value.as_float a) (Value.as_float b))
  | _ -> raise (Builtin_error "expected 2 arguments")

let ptr_of = function
  | Value.Vptr p -> p
  | v -> raise (Builtin_error ("expected pointer, got " ^ Value.to_string v))

let int_of v = Int64.to_int (Value.as_int v)

(* printf-style formatting: %d %ld %u %f %g %e %s %c %p and %% are
   substituted positionally; width/precision modifiers are passed through
   to OCaml's printf where simple. *)
let format_args fmt args =
  let buf = Buffer.create (String.length fmt) in
  let args = ref args in
  let next () =
    match !args with
    | [] -> Value.Vint 0L
    | a :: rest ->
      args := rest;
      a
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    let c = fmt.[!i] in
    if c = '%' && !i + 1 < n then begin
      (* scan to the conversion character *)
      let j = ref (!i + 1) in
      while
        !j < n
        && not (String.contains "diufgesc%xp" fmt.[!j])
      do
        incr j
      done;
      if !j < n then begin
        (match fmt.[!j] with
         | '%' -> Buffer.add_char buf '%'
         | 'd' | 'i' | 'u' | 'x' ->
           Buffer.add_string buf (Int64.to_string (Value.as_int (next ())))
         | 'f' | 'e' | 'g' ->
           Buffer.add_string buf (Printf.sprintf "%.6f" (Value.as_float (next ())))
         | 's' -> (
             match next () with
             | Value.Vstr s -> Buffer.add_string buf s
             | v -> Buffer.add_string buf (Value.to_string v))
         | 'c' ->
           Buffer.add_char buf
             (Char.chr (Int64.to_int (Value.as_int (next ())) land 255))
         | 'p' -> Buffer.add_string buf (Value.to_string (next ()))
         | _ -> ());
        i := !j + 1
      end
      else begin
        Buffer.add_char buf c;
        incr i
      end
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

let printf_builtin : t =
 fun ctx args ->
  match args with
  | Value.Vstr fmt :: rest ->
    let s = format_args fmt rest in
    Buffer.add_string ctx.output s;
    Value.Vint (Int64.of_int (String.length s))
  | _ -> raise (Builtin_error "printf expects a literal format string")

let fprintf_builtin : t =
 fun ctx args ->
  match args with
  | _stream :: Value.Vstr fmt :: rest ->
    let s = format_args fmt rest in
    Buffer.add_string ctx.output s;
    Value.Vint (Int64.of_int (String.length s))
  | _ -> raise (Builtin_error "fprintf expects a stream and format string")

let table : (string * t) list =
  [
    (* math *)
    ("sqrt", float1 sqrt); ("sqrtf", float1 sqrt);
    ("fabs", float1 abs_float); ("fabsf", float1 abs_float);
    ("exp", float1 exp); ("expf", float1 exp);
    ("log", float1 log); ("logf", float1 log);
    ("sin", float1 sin); ("cos", float1 cos);
    ("tanh", float1 tanh); ("tanhf", float1 tanh);
    ("floor", float1 floor); ("floorf", float1 floor);
    ("ceil", float1 ceil); ("ceilf", float1 ceil);
    ("pow", float2 ( ** )); ("powf", float2 ( ** ));
    ("fmax", float2 Stdlib.max); ("fmaxf", float2 Stdlib.max);
    ("fmin", float2 Stdlib.min); ("fminf", float2 Stdlib.min);
    ( "abs",
      fun _ args ->
        match args with
        | [ v ] -> Value.Vint (Int64.abs (Value.as_int v))
        | _ -> raise (Builtin_error "abs expects 1 argument") );
    ( "fmod",
      fun _ args ->
        match args with
        | [ a; b ] -> Value.Vfloat (Float.rem (Value.as_float a) (Value.as_float b))
        | _ -> raise (Builtin_error "fmod expects 2 arguments") );
    ("round", float1 Float.round);
    ("roundf", float1 Float.round);
    ( "atan2",
      fun _ args ->
        match args with
        | [ a; b ] -> Value.Vfloat (atan2 (Value.as_float a) (Value.as_float b))
        | _ -> raise (Builtin_error "atan2 expects 2 arguments") );
    ( "isnan",
      fun _ args ->
        match args with
        | [ v ] -> Value.Vint (if Float.is_nan (Value.as_float v) then 1L else 0L)
        | _ -> raise (Builtin_error "isnan expects 1 argument") );
    ( "strlen",
      fun _ args ->
        match args with
        | [ Value.Vstr s ] -> Value.Vint (Int64.of_int (String.length s))
        | _ -> raise (Builtin_error "strlen expects a string") );
    ( "strcmp",
      fun _ args ->
        match args with
        | [ Value.Vstr a; Value.Vstr b ] ->
          Value.Vint (Int64.of_int (compare a b))
        | _ -> raise (Builtin_error "strcmp expects two strings") );
    ( "min",
      fun _ args ->
        match args with
        | [ a; b ] ->
          if Value.is_float a || Value.is_float b then
            Value.Vfloat (Stdlib.min (Value.as_float a) (Value.as_float b))
          else Value.Vint (Stdlib.min (Value.as_int a) (Value.as_int b))
        | _ -> raise (Builtin_error "min expects 2 arguments") );
    ( "max",
      fun _ args ->
        match args with
        | [ a; b ] ->
          if Value.is_float a || Value.is_float b then
            Value.Vfloat (Stdlib.max (Value.as_float a) (Value.as_float b))
          else Value.Vint (Stdlib.max (Value.as_int a) (Value.as_int b))
        | _ -> raise (Builtin_error "max expects 2 arguments") );
    (* memory *)
    ( "malloc",
      fun ctx args ->
        match args with
        | [ n ] -> Value.Vptr (Memory.alloc ctx.mem (int_of n))
        | _ -> raise (Builtin_error "malloc expects 1 argument") );
    ( "calloc",
      fun ctx args ->
        match args with
        | [ n; sz ] -> Value.Vptr (Memory.alloc ctx.mem (int_of n * int_of sz))
        | _ -> raise (Builtin_error "calloc expects 2 arguments") );
    ( "free",
      fun ctx args ->
        match args with
        | [ Value.Vnull ] -> Value.Vvoid
        | [ p ] ->
          Memory.free ctx.mem (ptr_of p);
          Value.Vvoid
        | _ -> raise (Builtin_error "free expects 1 argument") );
    ( "memset",
      fun ctx args ->
        match args with
        | [ p; v; n ] ->
          Memory.fill ctx.mem ~dst:(ptr_of p) (Value.Vint (Value.as_int v)) (int_of n);
          p
        | _ -> raise (Builtin_error "memset expects 3 arguments") );
    ( "memcpy",
      fun ctx args ->
        match args with
        | [ dst; src; n ] ->
          Memory.copy ctx.mem ~src:(ptr_of src) ~dst:(ptr_of dst) (int_of n);
          dst
        | _ -> raise (Builtin_error "memcpy expects 3 arguments") );
    (* CUDA runtime *)
    ( "cudaMalloc",
      fun ctx args ->
        match args with
        | [ pp; n ] ->
          let target = ptr_of pp in
          let blk = Memory.alloc ctx.mem ~space:Memory.Device (int_of n) in
          Memory.store ctx.mem target (Value.Vptr blk);
          Value.Vint 0L
        | _ -> raise (Builtin_error "cudaMalloc expects 2 arguments") );
    ( "cudaFree",
      fun ctx args ->
        match args with
        | [ Value.Vnull ] -> Value.Vint 0L
        | [ p ] ->
          Memory.free ctx.mem (ptr_of p);
          Value.Vint 0L
        | _ -> raise (Builtin_error "cudaFree expects 1 argument") );
    ( "cudaMemcpy",
      fun ctx args ->
        match args with
        | dst :: src :: n :: _kind ->
          Memory.copy ctx.mem ~src:(ptr_of src) ~dst:(ptr_of dst) (int_of n);
          Value.Vint 0L
        | _ -> raise (Builtin_error "cudaMemcpy expects 4 arguments") );
    ("cudaDeviceSynchronize", fun _ _ -> Value.Vint 0L);
    ("cudaGetLastError", fun _ _ -> Value.Vint 0L);
    ("cudaPeekAtLastError", fun _ _ -> Value.Vint 0L);
    (* I/O *)
    ("printf", printf_builtin);
    ("fprintf", fprintf_builtin);
    ( "puts",
      fun ctx args ->
        match args with
        | [ Value.Vstr s ] ->
          Buffer.add_string ctx.output (s ^ "\n");
          Value.Vint 0L
        | _ -> raise (Builtin_error "puts expects a string") );
    (* assertions *)
    ( "assert",
      fun _ args ->
        match args with
        | [ v ] ->
          if Value.truthy v then Value.Vvoid
          else raise (Builtin_error "assertion failed")
        | _ -> raise (Builtin_error "assert expects 1 argument") );
    (* deterministic PRNG: xorshift64* *)
    ( "rand",
      fun ctx args ->
        match args with
        | [] ->
          let s = ctx.rand_state () in
          let s = Int64.logxor s (Int64.shift_left s 13) in
          let s = Int64.logxor s (Int64.shift_right_logical s 7) in
          let s = Int64.logxor s (Int64.shift_left s 17) in
          ctx.set_rand_state s;
          Value.Vint (Int64.rem (Int64.logand s Int64.max_int) 32768L)
        | _ -> raise (Builtin_error "rand expects no arguments") );
    ( "srand",
      fun ctx args ->
        match args with
        | [ v ] ->
          ctx.set_rand_state (Int64.logor (Value.as_int v) 1L);
          Value.Vvoid
        | _ -> raise (Builtin_error "srand expects 1 argument") );
  ]

let lookup name = List.assoc_opt name table

let apply (f : t) ctx args (loc : Cfront.Loc.t) =
  try f ctx args
  with Builtin_error msg ->
    raise (Builtin_error (Printf.sprintf "%s: %s" (Cfront.Loc.to_string loc) msg))
