(** Structural models behind the paper's two architecture diagrams:

    - Figure 1: the state-of-the-art AD pipeline (sensors through CAN bus),
      with each module's safety relevance;
    - Figure 2: the taxonomy of libraries used by Apollo's perception
      module, annotated open/closed source — the evidence behind
      Observation 12.

    Rendered as text trees by the benchmark harness. *)

(* --- Figure 1: the AD pipeline ------------------------------------- *)

type pipeline_module = {
  pm_name : string;
  pm_role : string;
  pm_inputs : string list;  (** upstream modules or sensors *)
  pm_gpu : bool;  (** compute-intensive, GPU-accelerated in Apollo *)
}

let pipeline =
  [
    { pm_name = "perception"; pm_role = "object detection and tracking (YOLO CNN)";
      pm_inputs = [ "camera"; "LIDAR"; "radar" ]; pm_gpu = true };
    { pm_name = "prediction"; pm_role = "future trajectories of perceived obstacles";
      pm_inputs = [ "perception" ]; pm_gpu = false };
    { pm_name = "localization"; pm_role = "precise vehicle position";
      pm_inputs = [ "GPS"; "IMU"; "LIDAR" ]; pm_gpu = false };
    { pm_name = "map"; pm_role = "HD map queries";
      pm_inputs = [ "localization" ]; pm_gpu = false };
    { pm_name = "routing"; pm_role = "best route to destination";
      pm_inputs = [ "map" ]; pm_gpu = false };
    { pm_name = "planning"; pm_role = "safe collision-free trajectory";
      pm_inputs = [ "prediction"; "routing"; "localization" ]; pm_gpu = false };
    { pm_name = "control"; pm_role = "acceleration, braking, steering commands";
      pm_inputs = [ "planning" ]; pm_gpu = false };
    { pm_name = "canbus"; pm_role = "command passthrough to vehicle hardware";
      pm_inputs = [ "control" ]; pm_gpu = false };
  ]

let render_pipeline () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Figure 1: state-of-the-art AD pipeline (all modules affect car motion => ASIL-D)\n";
  List.iter
    (fun m ->
      Buffer.add_string buf
        (Printf.sprintf "  %-13s <- %-28s %s%s\n" m.pm_name
           (String.concat ", " m.pm_inputs)
           m.pm_role
           (if m.pm_gpu then "  [GPU]" else "")))
    pipeline;
  Buffer.contents buf

(* --- Figure 2: perception library taxonomy ------------------------- *)

type availability = Open_source | Closed_source

type lib_node = {
  l_name : string;
  l_kind : string;
  l_avail : availability;
  l_children : lib_node list;
}

let leaf ~kind ~avail name = { l_name = name; l_kind = kind; l_avail = avail; l_children = [] }

let taxonomy =
  {
    l_name = "Apollo perception (camera object detection)";
    l_kind = "module";
    l_avail = Open_source;
    l_children =
      [
        {
          l_name = "Caffe / Darknet (DNN framework)";
          l_kind = "high-level DNN library";
          l_avail = Open_source;
          l_children =
            [
              leaf ~kind:"GPU primitives (DNN)" ~avail:Closed_source "cuDNN";
              leaf ~kind:"GPU primitives (BLAS)" ~avail:Closed_source "cuBLAS";
              leaf ~kind:"inference optimizer" ~avail:Closed_source "TensorRT";
              leaf ~kind:"GPU primitives (GEMM templates)" ~avail:Open_source "CUTLASS";
              leaf ~kind:"input-aware autotuner" ~avail:Open_source "ISAAC";
              leaf ~kind:"CPU BLAS" ~avail:Open_source "ATLAS";
              leaf ~kind:"CPU BLAS" ~avail:Open_source "OpenBLAS";
            ];
        };
        leaf ~kind:"CUDA runtime" ~avail:Closed_source "CUDA driver + runtime";
      ];
  }

let availability_name = function
  | Open_source -> "open"
  | Closed_source -> "CLOSED"

let render_taxonomy () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Figure 2: taxonomy of libraries used by Apollo's perception module\n";
  let rec go indent node =
    Buffer.add_string buf
      (Printf.sprintf "%s%-42s %-32s [%s]\n"
         (String.make indent ' ')
         node.l_name node.l_kind
         (availability_name node.l_avail));
    List.iter (go (indent + 2)) node.l_children
  in
  go 2 taxonomy;
  Buffer.contents buf

(** Count of closed-source leaves — the certification dependency surface
    of Observation 12. *)
let rec closed_count node =
  (if node.l_avail = Closed_source then 1 else 0)
  + Util.Stats.sum_int (List.map closed_count node.l_children)
