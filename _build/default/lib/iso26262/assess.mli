(** Guideline assessment: measured project metrics to per-topic verdicts.

    Thresholds are explicit and overridable; the defaults encode the
    judgement calls the paper makes (style "very well achieved" means
    below one finding per kLOC; 554 functions over complexity 10 mean the
    low-complexity guideline fails). *)

type verdict = Pass | Partial | Fail | Not_applicable

val verdict_name : verdict -> string

(** One assessed guideline: the topic, the verdict, a human-readable
    evidence sentence quoting the measured numbers, and the headline
    metric when one exists. *)
type finding = {
  topic : Guidelines.topic;
  verdict : verdict;
  evidence : string;
  measured : float option;
}

type thresholds = {
  max_over10_functions : int;
  max_casts_per_kloc : float;
  min_param_validation : float;
  max_globals_per_kloc : float;
  max_style_per_kloc : float;
  max_naming_violations : int;
  max_component_loc : int;
  max_interface_functions : int;
  min_cohesion : float;
  max_fan_out : int;
  max_multi_exit_frac : float;
  max_dyn_alloc_sites : int;
  max_uninit : int;
  max_shadowing : int;
  max_gotos : int;
  max_recursions : int;
  max_implicit_conversions : int;
}

val default_thresholds : thresholds

(** Assess the paper's Table 1 (modeling and coding guidelines). *)
val assess_coding : ?th:thresholds -> Project_metrics.t -> finding list

(** Assess the paper's Table 2 (architectural design). *)
val assess_architecture : ?th:thresholds -> Project_metrics.t -> finding list

(** Assess the paper's Table 3 (unit design and implementation). *)
val assess_unit_design : ?th:thresholds -> Project_metrics.t -> finding list

(** All 25 topics, in table order. *)
val assess_all : ?th:thresholds -> Project_metrics.t -> finding list

(** [compliance_at ~asil findings] is [(passed, binding)]: how many
    guidelines binding ([+]/[++]) at [asil] pass, out of how many bind.
    [Not_applicable] findings are excluded from both counts. *)
val compliance_at : asil:Asil.t -> finding list -> int * int
