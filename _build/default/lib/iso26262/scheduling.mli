(** Fixed-priority response-time analysis for the AD pipeline task set —
    the schedulability evidence ISO 26262-6 Table 3 item 6 ("appropriate
    scheduling properties") asks for.

    Implements the Joseph-Pandya recurrence under rate-monotonic priority
    assignment with implicit deadlines. *)

type task = {
  t_name : string;
  period_ms : float;  (** also the implicit deadline *)
  wcet_ms : float;
}

type task_result = {
  task : task;
  response_ms : float;  (** [infinity] when the recurrence diverges *)
  schedulable : bool;
  utilization : float;
}

type analysis = {
  tasks : task_result list;  (** in priority (rate-monotonic) order *)
  total_utilization : float;
  all_schedulable : bool;
  ll_bound : float;  (** Liu-Layland utilization bound for n tasks *)
}

(** The AD pipeline at a typical cadence (control/CAN at 100 Hz,
    localization at 20 Hz, perception/prediction/planning at 10 Hz).
    [perception_wcet_ms] plugs in a measured Figure 7 inference time. *)
val ad_task_set : ?perception_wcet_ms:float -> unit -> task list

(** Shorter period = higher priority (stable for ties). *)
val rm_order : task list -> task list

(** Response time of [task] under interference from the strictly
    higher-priority set [hp]; [None] when it exceeds the deadline. *)
val response_time : hp:task list -> task -> float option

val analyze : task list -> analysis
val render : analysis -> string
