lib/iso26262/observations.ml: Coverage Cudasim List Metrics Misra Printf Project_metrics Stdlib
