lib/iso26262/guidelines.mli: Asil
