lib/iso26262/asil.mli:
