lib/iso26262/asil.ml:
