lib/iso26262/audit.mli: Assess Cfront Corpus Coverage Observations Project_metrics
