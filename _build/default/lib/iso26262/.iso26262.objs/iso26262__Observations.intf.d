lib/iso26262/observations.mli: Coverage Project_metrics
