lib/iso26262/traceability.mli: Asil Assess Guidelines Project_metrics
