lib/iso26262/assess.ml: Asil Guidelines List Metrics Misra Printf Project_metrics Stdlib Util
