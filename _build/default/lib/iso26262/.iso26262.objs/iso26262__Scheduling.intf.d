lib/iso26262/scheduling.mli:
