lib/iso26262/taxonomy.ml: Buffer List Printf String Util
