lib/iso26262/report.ml: Asil Assess Buffer Coverage Guidelines List Metrics Observations Printf Project_metrics Util
