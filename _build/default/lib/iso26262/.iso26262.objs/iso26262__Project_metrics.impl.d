lib/iso26262/project_metrics.ml: Cfront Cudasim List Metrics Misra Util
