lib/iso26262/project_metrics.mli: Cfront Cudasim Metrics Misra
