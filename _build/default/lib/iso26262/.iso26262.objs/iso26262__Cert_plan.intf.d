lib/iso26262/cert_plan.mli: Assess Guidelines
