lib/iso26262/audit.ml: Assess Buffer Cfront Corpus Coverage Cudasim List Observations Project_metrics Report
