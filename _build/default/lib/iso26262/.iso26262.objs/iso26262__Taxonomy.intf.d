lib/iso26262/taxonomy.mli:
