lib/iso26262/assess.mli: Asil Guidelines Project_metrics
