lib/iso26262/scheduling.ml: List Option Printf Util
