lib/iso26262/traceability.ml: Asil Assess Guidelines List Printf Project_metrics String Util
