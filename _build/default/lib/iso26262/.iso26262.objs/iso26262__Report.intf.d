lib/iso26262/report.mli: Assess Coverage Observations Project_metrics Util
