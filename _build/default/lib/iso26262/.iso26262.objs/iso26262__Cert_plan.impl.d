lib/iso26262/cert_plan.ml: Assess Guidelines List Printf String Util
