lib/iso26262/guidelines.ml: Asil List
