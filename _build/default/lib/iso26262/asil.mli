(** Automotive Safety Integrity Levels (ASIL) and ISO 26262
    recommendation strength.

    ISO 26262 grades each method or guideline per ASIL with [++] (highly
    recommended), [+] (recommended) or [o] (no recommendation).  The paper
    targets ASIL-D for the whole AD pipeline since every module affects
    car motion. *)

(** The four integrity levels, A (lowest) to D (highest). *)
type t = A | B | C | D

(** All levels in ascending criticality. *)
val all : t list

val to_string : t -> string
val of_string : string -> t option

(** Recommendation strength of a guideline at one ASIL. *)
type recommendation =
  | No_recommendation  (** printed [o] *)
  | Recommended  (** printed [+] *)
  | Highly_recommended  (** printed [++] *)

val rec_to_string : recommendation -> string

(** Table-building shorthands: [o], [p], [pp] for the three strengths. *)
val o : recommendation

val p : recommendation
val pp : recommendation

(** A guideline's recommendation across the four ASILs. *)
type rec_matrix = {
  a : recommendation;
  b : recommendation;
  c : recommendation;
  d : recommendation;
}

val for_asil : rec_matrix -> t -> recommendation

(** [binding m asil] is true when the guideline carries [+] or [++] at
    [asil] — the reading under which the paper assesses adherence. *)
val binding : rec_matrix -> t -> bool
