(** Fixed-priority response-time analysis for the AD pipeline task set.

    ISO 26262-6 Table 3 item 6 requires "appropriate scheduling
    properties" — the evidence a certification needs is a schedulability
    argument: given each module's period and worst-case execution time,
    do all deadlines hold under the chosen scheduler?

    This is the classic Joseph-Pandya response-time recurrence for
    fixed-priority preemptive scheduling (rate-monotonic priority
    assignment):  R_i = C_i + sum_{j in hp(i)} ceil(R_i / T_j) * C_j.

    The AD task set's WCETs come from this repository's own models: the
    perception WCET from the GPU performance model's YOLO time, the
    others scaled from their module sizes.  The paper's point stands
    either way: without WCETs (Observation 1: complexity blocks WCET
    analysis) this table cannot even be filled in. *)

type task = {
  t_name : string;
  period_ms : float;  (** also the implicit deadline *)
  wcet_ms : float;
}

type task_result = {
  task : task;
  response_ms : float;
  schedulable : bool;
  utilization : float;
}

type analysis = {
  tasks : task_result list;
  total_utilization : float;
  all_schedulable : bool;
  ll_bound : float;  (** Liu & Layland utilization bound for n tasks *)
}

(** The pipeline task set at a typical AD cadence: perception at 10 Hz
    camera rate, planning at 10 Hz, control at 100 Hz, CAN at 100 Hz.
    [perception_wcet_ms] lets callers plug in the measured Figure 7
    inference time for the deployed library/GPU. *)
let ad_task_set ?(perception_wcet_ms = 25.0) () =
  [
    { t_name = "canbus"; period_ms = 10.0; wcet_ms = 0.4 };
    { t_name = "control"; period_ms = 10.0; wcet_ms = 1.2 };
    { t_name = "localization"; period_ms = 50.0; wcet_ms = 6.0 };
    { t_name = "perception"; period_ms = 100.0; wcet_ms = perception_wcet_ms };
    { t_name = "prediction"; period_ms = 100.0; wcet_ms = 8.0 };
    { t_name = "planning"; period_ms = 100.0; wcet_ms = 18.0 };
  ]

(** Rate-monotonic order: shorter period = higher priority. *)
let rm_order tasks =
  List.stable_sort (fun a b -> compare a.period_ms b.period_ms) tasks

(** Response time of [task] given strictly higher-priority tasks [hp];
    [None] when the recurrence diverges past the deadline. *)
let response_time ~hp task =
  let rec iterate r guard =
    if guard > 1000 then None
    else
      let interference =
        Util.Stats.sum_float
          (List.map
             (fun j -> ceil (r /. j.period_ms) *. j.wcet_ms)
             hp)
      in
      let r' = task.wcet_ms +. interference in
      if r' > task.period_ms then None
      else if abs_float (r' -. r) < 1e-9 then Some r'
      else iterate r' (guard + 1)
  in
  iterate task.wcet_ms 0

let analyze tasks =
  let ordered = rm_order tasks in
  let results =
    List.mapi
      (fun i task ->
        let hp = List.filteri (fun j _ -> j < i) ordered in
        let response = response_time ~hp task in
        {
          task;
          response_ms = Option.value ~default:infinity response;
          schedulable = response <> None;
          utilization = task.wcet_ms /. task.period_ms;
        })
      ordered
  in
  let n = float_of_int (List.length tasks) in
  {
    tasks = results;
    total_utilization = Util.Stats.sum_float (List.map (fun r -> r.utilization) results);
    all_schedulable = List.for_all (fun r -> r.schedulable) results;
    ll_bound = n *. ((2.0 ** (1.0 /. n)) -. 1.0);
  }

let render analysis =
  let tbl =
    Util.Table.make ~title:"Rate-monotonic response-time analysis of the AD pipeline"
      ~header:[ "task"; "period (ms)"; "WCET (ms)"; "response (ms)"; "deadline met" ]
      ~aligns:
        [ Util.Table.Left; Util.Table.Right; Util.Table.Right; Util.Table.Right;
          Util.Table.Left ]
      ()
  in
  let tbl =
    List.fold_left
      (fun tbl r ->
        Util.Table.add_row tbl
          [ r.task.t_name;
            Util.Table.fmt_float ~decimals:1 r.task.period_ms;
            Util.Table.fmt_float ~decimals:1 r.task.wcet_ms;
            (if r.schedulable then Util.Table.fmt_float ~decimals:1 r.response_ms
             else "diverges");
            (if r.schedulable then "yes" else "NO") ])
      tbl analysis.tasks
  in
  Util.Table.render tbl
  ^ Printf.sprintf
      "utilization %.2f (Liu-Layland bound for %d tasks: %.2f); %s\n"
      analysis.total_utilization
      (List.length analysis.tasks)
      analysis.ll_bound
      (if analysis.all_schedulable then "task set is schedulable"
       else "TASK SET IS NOT SCHEDULABLE")
