(** Remediation planning: from verdicts to an effort-classified backlog,
    using the paper's own classification of which gaps need "limited
    software engineering effort", deep redesign, or "research
    innovations" (the GPU language gaps). *)

type effort =
  | Limited_effort
  | Major_refactor
  | Research_needed

val effort_name : effort -> string

(** The paper's judgement per guideline topic (e.g. complexity reduction
    is a major refactor; CUDA pointer/dynamic-memory gaps need research). *)
val effort_of_topic : Guidelines.topic -> effort

type work_item = {
  finding : Assess.finding;
  effort : effort;
  affected : int;  (** entities to touch, from the finding's metric *)
}

type plan = {
  items : work_item list;  (** failing/partial findings, easiest class first *)
  by_effort : (effort * int) list;
  total_affected : int;
}

val effort_rank : effort -> int
val build : Assess.finding list -> plan
val render : plan -> string
