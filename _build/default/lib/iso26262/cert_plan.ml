(** Remediation planning: from verdicts to an effort-classified backlog.

    The paper's conclusion distinguishes gaps fixable "with limited
    software engineering effort" from those that "require research
    innovations".  This module encodes that classification per guideline
    and produces the ordered plan a project would execute, with the
    affected-entity counts that size each work item. *)

type effort =
  | Limited_effort  (** mechanical code changes; the paper's "moderate effort" *)
  | Major_refactor  (** redesign of components or algorithms *)
  | Research_needed  (** no engineering path exists today (GPU language gaps) *)

let effort_name = function
  | Limited_effort -> "limited engineering effort"
  | Major_refactor -> "major redesign/refactor"
  | Research_needed -> "research needed"

(* The paper's own judgement, per guideline topic. *)
let effort_of_topic (t : Guidelines.topic) =
  match (t.Guidelines.table, t.Guidelines.index) with
  (* Observation 1/13: complexity and component restructuring are deep *)
  | Guidelines.Coding, 1 -> Major_refactor
  | Guidelines.Architecture, 2 -> Major_refactor
  (* Observations 3-4: GPU language subset and pointer/dynamic-memory in
     CUDA need research (Brook Auto direction) *)
  | Guidelines.Coding, 2 -> Research_needed
  | Guidelines.Unit_design, 2 | Guidelines.Unit_design, 6 -> Research_needed
  (* scheduling evidence needs WCETs, blocked on complexity *)
  | Guidelines.Architecture, 6 -> Major_refactor
  (* everything else: Observations 2, 6, 7, 14 — "limited effort" *)
  | _ -> Limited_effort

type work_item = {
  finding : Assess.finding;
  effort : effort;
  affected : int;  (** entities to touch, from the finding's metric *)
}

type plan = {
  items : work_item list;  (** failing/partial findings, easiest first *)
  by_effort : (effort * int) list;
  total_affected : int;
}

let effort_rank = function
  | Limited_effort -> 0
  | Major_refactor -> 1
  | Research_needed -> 2

let build (findings : Assess.finding list) =
  let items =
    findings
    |> List.filter (fun (f : Assess.finding) ->
           f.Assess.verdict = Assess.Fail || f.Assess.verdict = Assess.Partial)
    |> List.map (fun (f : Assess.finding) ->
           {
             finding = f;
             effort = effort_of_topic f.Assess.topic;
             affected =
               (match f.Assess.measured with
                | Some m when m >= 1.0 -> int_of_float m
                | Some m -> int_of_float (m *. 100.0)  (* ratios as percents *)
                | None -> 0);
           })
    |> List.stable_sort (fun a b ->
           compare
             (effort_rank a.effort, -a.affected)
             (effort_rank b.effort, -b.affected))
  in
  let by_effort =
    List.map
      (fun e ->
        (e, List.length (List.filter (fun i -> i.effort = e) items)))
      [ Limited_effort; Major_refactor; Research_needed ]
  in
  {
    items;
    by_effort;
    total_affected = Util.Stats.sum_int (List.map (fun i -> i.affected) items);
  }

let render plan =
  let tbl =
    Util.Table.make ~title:"Remediation plan (easiest class first, largest items first)"
      ~header:[ "effort class"; "guideline"; "affected"; "evidence" ]
      ~aligns:[ Util.Table.Left; Util.Table.Left; Util.Table.Right; Util.Table.Left ]
      ()
  in
  let tbl =
    List.fold_left
      (fun tbl item ->
        Util.Table.add_row tbl
          [ effort_name item.effort;
            item.finding.Assess.topic.Guidelines.title;
            string_of_int item.affected;
            item.finding.Assess.evidence ])
      tbl plan.items
  in
  Util.Table.render tbl
  ^ String.concat ""
      (List.map
         (fun (e, n) -> Printf.sprintf "%-28s %d items\n" (effort_name e) n)
         plan.by_effort)
