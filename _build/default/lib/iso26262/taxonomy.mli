(** Structural models behind the paper's architecture diagrams: Figure 1
    (the AD pipeline) and Figure 2 (the perception library taxonomy with
    its open/closed-source annotation — the Observation 12 evidence). *)

type pipeline_module = {
  pm_name : string;
  pm_role : string;
  pm_inputs : string list;  (** upstream modules or sensors *)
  pm_gpu : bool;  (** GPU-accelerated in Apollo *)
}

(** The eight pipeline stages of Figure 1, in dataflow order. *)
val pipeline : pipeline_module list

val render_pipeline : unit -> string

type availability = Open_source | Closed_source

type lib_node = {
  l_name : string;
  l_kind : string;
  l_avail : availability;
  l_children : lib_node list;
}

(** The Figure 2 dependency tree rooted at the perception module. *)
val taxonomy : lib_node

val availability_name : availability -> string
val render_taxonomy : unit -> string

(** Closed-source nodes in the subtree — the certification dependency
    surface. *)
val closed_count : lib_node -> int
