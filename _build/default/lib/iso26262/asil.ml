(** Automotive Safety Integrity Levels and ISO 26262 recommendation
    strength.

    ISO 26262 grades each method/guideline per ASIL with:
    [++] highly recommended, [+] recommended, [o] no recommendation.
    The paper targets ASIL-D for the whole AD pipeline, since every module
    affects car motion. *)

type t = A | B | C | D

let all = [ A; B; C; D ]

let to_string = function A -> "A" | B -> "B" | C -> "C" | D -> "D"

let of_string = function
  | "A" | "a" -> Some A
  | "B" | "b" -> Some B
  | "C" | "c" -> Some C
  | "D" | "d" -> Some D
  | _ -> None

type recommendation =
  | No_recommendation  (** o *)
  | Recommended  (** + *)
  | Highly_recommended  (** ++ *)

let rec_to_string = function
  | No_recommendation -> "o"
  | Recommended -> "+"
  | Highly_recommended -> "++"

(** Shorthand used by the guideline tables. *)
let o = No_recommendation
let p = Recommended
let pp = Highly_recommended

type rec_matrix = {
  a : recommendation;
  b : recommendation;
  c : recommendation;
  d : recommendation;
}

let for_asil m = function A -> m.a | B -> m.b | C -> m.c | D -> m.d

(** Is the guideline binding at this ASIL?  We treat both [+] and [++] as
    binding for assessment purposes, matching the paper's reading. *)
let binding m asil = for_asil m asil <> No_recommendation
