(** The paper's fourteen numbered observations, regenerated from measured
    data with scale-independent (density-based) criteria so they hold on
    reduced-scale corpora too. *)

type t = {
  number : int;  (** 1..14 *)
  statement : string;  (** the paper's wording, abbreviated *)
  evidence : string;  (** this run's measured support *)
  holds : bool;  (** does the measurement support the observation? *)
}

(** Build all fourteen observations.  [yolo_coverage] and
    [stencil_coverage] come from the Figure 5/6 runs; [open_vs_closed]
    supplies the per-workload open/closed library performance ratios for
    Observation 12 (label, ratio where >1 means the open library is
    faster). *)
val of_metrics :
  Project_metrics.t ->
  yolo_coverage:Coverage.Collector.file_coverage list ->
  stencil_coverage:Coverage.Collector.file_coverage list ->
  open_vs_closed:(string * float) list ->
  t list

val all_hold : t list -> bool
