(** Defensive-implementation analysis (ISO 26262-6 Table 1, item 4).

    Two measurable facets of defensive programming, matching §3.1.4 of the
    paper:
    - parameter validation: a function taking pointer parameters should
      check each of them (against [nullptr]/[NULL]/0) before first use;
    - return-value handling: callers of functions returning a value should
      not discard that value (an expression-statement call whose result is
      ignored). *)

type param_check = {
  fn : string;
  pointer_params : string list;
  checked_params : string list;  (** subset compared against null before use *)
}

(** Names compared against null anywhere in the function body. *)
let null_checked_names (fn : Cfront.Ast.func) =
  let acc = ref [] in
  let is_null e =
    match e.Cfront.Ast.e with
    | Cfront.Ast.Nullptr -> true
    | Cfront.Ast.Int_const 0L -> true
    | Cfront.Ast.Id "NULL" -> true
    | _ -> false
  in
  Cfront.Ast.iter_exprs_of_func
    (fun e ->
      match e.Cfront.Ast.e with
      | Cfront.Ast.Binary ((Cfront.Ast.Eq | Cfront.Ast.Ne), { e = Cfront.Ast.Id n; _ }, other)
        when is_null other ->
        acc := n :: !acc
      | Cfront.Ast.Binary ((Cfront.Ast.Eq | Cfront.Ast.Ne), other, { e = Cfront.Ast.Id n; _ })
        when is_null other ->
        acc := n :: !acc
      | Cfront.Ast.Unary (Cfront.Ast.Lnot, { e = Cfront.Ast.Id n; _ }) -> acc := n :: !acc
      | _ -> ())
    fn;
  (* a bare [if (p)] also counts *)
  (match fn.Cfront.Ast.f_body with
   | None -> ()
   | Some body ->
     Cfront.Ast.iter_stmts
       (fun s ->
         match s.Cfront.Ast.s with
         | Cfront.Ast.Sif { cond = { e = Cfront.Ast.Id n; _ }; _ } -> acc := n :: !acc
         | _ -> ())
       body);
  List.sort_uniq compare !acc

let param_check_of_func (fn : Cfront.Ast.func) =
  match fn.Cfront.Ast.f_body with
  | None -> None
  | Some _ ->
    let pointer_params =
      List.filter_map
        (fun p ->
          if Cfront.Ast.is_pointer_type p.Cfront.Ast.p_type then Some p.Cfront.Ast.p_name
          else None)
        fn.Cfront.Ast.f_params
    in
    if pointer_params = [] then None
    else
      let checked = null_checked_names fn in
      Some
        {
          fn = Cfront.Ast.qualified_name fn;
          pointer_params;
          checked_params = List.filter (fun p -> List.mem p checked) pointer_params;
        }

(** Fraction of pointer parameters that are validated, over all functions
    with pointer parameters. *)
let param_validation_ratio fns =
  let checks = List.filter_map param_check_of_func fns in
  let total = Util.Stats.sum_int (List.map (fun c -> List.length c.pointer_params) checks) in
  let checked = Util.Stats.sum_int (List.map (fun c -> List.length c.checked_params) checks) in
  if total = 0 then 1.0 else float_of_int checked /. float_of_int total

(** Call sites whose non-void result is discarded.  Without full type
    resolution we flag expression-statement calls to functions *known*
    (from the provided definitions) to return non-void. *)
let ignored_returns ~(funcs : Cfront.Ast.func list) fns =
  let returns_value = Hashtbl.create 64 in
  List.iter
    (fun (f : Cfront.Ast.func) ->
      let non_void = match f.Cfront.Ast.f_ret with Cfront.Ast.Tvoid -> false | _ -> true in
      Hashtbl.replace returns_value f.Cfront.Ast.f_name non_void)
    funcs;
  let acc = ref [] in
  List.iter
    (fun (fn : Cfront.Ast.func) ->
      match fn.Cfront.Ast.f_body with
      | None -> ()
      | Some body ->
        Cfront.Ast.iter_stmts
          (fun s ->
            match s.Cfront.Ast.s with
            | Cfront.Ast.Sexpr { e = Cfront.Ast.Call ({ e = Cfront.Ast.Id callee; _ }, _); eloc; _ }
              when Hashtbl.find_opt returns_value callee = Some true ->
              acc := (Cfront.Ast.qualified_name fn, callee, eloc) :: !acc
            | _ -> ())
          body)
    fns;
  List.rev !acc

(** Assertion density: assert()/CHECK()-style calls per function. *)
let assertion_count fns =
  let n = ref 0 in
  List.iter
    (fun fn ->
      Cfront.Ast.iter_exprs_of_func
        (fun e ->
          match e.Cfront.Ast.e with
          | Cfront.Ast.Call ({ e = Cfront.Ast.Id ("assert" | "CHECK" | "DCHECK" | "CHECK_NOTNULL"); _ }, _) ->
            incr n
          | _ -> ())
        fn)
    fns;
  !n
