(** Text-level style checker, modelled on the subset of the Google C++
    style guide that cpplint automates: line length, tabs, trailing
    whitespace, indentation step, spacing around braces. *)

type rule =
  | Line_too_long
  | Tab_character
  | Trailing_whitespace
  | Odd_indentation  (** indentation not a multiple of two *)
  | Missing_space_before_brace

type finding = { rule : rule; line : int; file : string }

let rule_name = function
  | Line_too_long -> "line longer than 100 columns"
  | Tab_character -> "tab character"
  | Trailing_whitespace -> "trailing whitespace"
  | Odd_indentation -> "indentation not a multiple of 2"
  | Missing_space_before_brace -> "missing space before '{'"

let max_line_len = 100

let check_line ~file lineno line =
  let findings = ref [] in
  let push rule = findings := { rule; line = lineno; file } :: !findings in
  if String.length line > max_line_len then push Line_too_long;
  if String.contains line '\t' then push Tab_character;
  let n = String.length line in
  if n > 0 && (line.[n - 1] = ' ' || line.[n - 1] = '\t') then push Trailing_whitespace;
  let indent = Util.Strutil.indent_width line in
  if indent mod 2 <> 0 && Util.Strutil.strip line <> "" then push Odd_indentation;
  (* "){"  or  ";{" without a space *)
  let rec scan i =
    if i + 1 < n then begin
      if line.[i + 1] = '{' && (line.[i] = ')' || Util.Strutil.is_ident_char line.[i]) then
        push Missing_space_before_brace;
      scan (i + 1)
    end
  in
  scan 0;
  List.rev !findings

let of_source ~file source =
  List.concat (List.mapi (fun i l -> check_line ~file (i + 1) l) (Util.Strutil.lines source))

let of_tu (tu : Cfront.Ast.tu) = of_source ~file:tu.tu_file tu.Cfront.Ast.raw_source

let of_files pfs = List.concat_map (fun pf -> of_tu pf.Cfront.Project.tu) pfs

(** Violations per thousand physical lines — the pass criterion used in
    the compliance mapping ("style very well achieved" in the paper). *)
let per_kloc findings (loc : Loc_metrics.counts) =
  if loc.Loc_metrics.physical = 0 then 0.0
  else float_of_int (List.length findings) *. 1000.0 /. float_of_int loc.Loc_metrics.physical
