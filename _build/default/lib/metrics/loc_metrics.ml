(** Lines-of-code accounting, per file and per module.

    [physical] counts non-blank lines (the figure Lizard and the paper
    report); [comment] counts lines carrying a comment; [logical] counts
    statement nodes. *)

type counts = {
  physical : int;
  blank : int;
  comment : int;
  logical : int;
  total : int;  (** raw line count *)
}

let zero = { physical = 0; blank = 0; comment = 0; logical = 0; total = 0 }

let add a b =
  {
    physical = a.physical + b.physical;
    blank = a.blank + b.blank;
    comment = a.comment + b.comment;
    logical = a.logical + b.logical;
    total = a.total + b.total;
  }

let of_tu (tu : Cfront.Ast.tu) =
  let lines = Util.Strutil.lines tu.raw_source in
  let total = List.length lines in
  let blank =
    List.length (List.filter (fun l -> Util.Strutil.strip l = "") lines)
  in
  let logical = ref 0 in
  let executable (s : Cfront.Ast.stmt) =
    match s.Cfront.Ast.s with
    | Cfront.Ast.Sblock _ | Cfront.Ast.Slabel _ | Cfront.Ast.Sempty
    | Cfront.Ast.Scase _ | Cfront.Ast.Sdefault -> false
    | _ -> true
  in
  List.iter
    (fun fn ->
      match fn.Cfront.Ast.f_body with
      | None -> ()
      | Some body ->
        Cfront.Ast.iter_stmts (fun s -> if executable s then incr logical) body)
    (Cfront.Ast.functions_of_tu tu);
  {
    physical = total - blank;
    blank;
    comment = tu.comment_lines;
    logical = !logical;
    total;
  }

let of_files (pfs : Cfront.Project.parsed_file list) =
  List.fold_left (fun acc pf -> add acc (of_tu pf.Cfront.Project.tu)) zero pfs

(** Comment density: comment lines / physical lines. *)
let comment_density c =
  if c.physical = 0 then 0.0 else float_of_int c.comment /. float_of_int c.physical
