(** Static WCET-analyzability classification — the checkable form of
    Observation 1's warning that complexity blocks timing analysis.

    A function is analyzable by standard static timing analysis when
    every loop bound is derivable without data knowledge and the function
    is recursion-free. *)

type loop_bound =
  | Constant of int
  | Parametric of string  (** symbolic bound expression *)
  | Unknown

type classification = Analyzable | Parametric_bound | Unanalyzable

type func_report = {
  fn : string;  (** qualified name *)
  classification : classification;
  loops : int;
  constant_loops : int;
  parametric_loops : int;
  unknown_loops : int;
  has_goto : bool;
  recursive : bool;
  wcet_expr : string;  (** symbolic iteration bound, e.g. ["O(width * height)"] *)
}

val classification_name : classification -> string

(** Classify one function given the project's recursive-function set. *)
val of_func : recursive_names:string list -> Cfront.Ast.func -> func_report option

(** Classify every defined function (builds the call graph internally). *)
val of_functions : Cfront.Ast.func list -> func_report list

type summary = {
  total : int;
  analyzable : int;
  parametric : int;
  unanalyzable : int;
}

val summarize : func_report list -> summary
