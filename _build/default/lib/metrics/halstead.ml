(** Halstead software-science metrics and the derived maintainability
    index.

    Computed from the token stream, as classic tools do: operators are
    keywords and punctuators (excluding grouping-only tokens), operands
    are identifiers and literals.  The maintainability index uses the
    common SEI formula
    [171 - 5.2 ln V - 0.23 CC - 16.2 ln LOC], rescaled to 0..100. *)

type t = {
  n1 : int;  (** distinct operators *)
  n2 : int;  (** distinct operands *)
  big_n1 : int;  (** total operators *)
  big_n2 : int;  (** total operands *)
  vocabulary : int;
  length : int;
  volume : float;
  difficulty : float;
  effort : float;
  estimated_bugs : float;
}

let grouping_puncts = [ "("; ")"; "{"; "}"; ";"; ","; "["; "]" ]

let non_operator_keywords = [ "true"; "false"; "nullptr" ]

let of_tokens (tokens : Cfront.Token.t list) =
  let ops = Hashtbl.create 32 and opnds = Hashtbl.create 64 in
  let total_ops = ref 0 and total_opnds = ref 0 in
  List.iter
    (fun (t : Cfront.Token.t) ->
      match t.Cfront.Token.kind with
      | Cfront.Token.Keyword k when not (List.mem k non_operator_keywords) ->
        Hashtbl.replace ops k ();
        incr total_ops
      | Cfront.Token.Punct p when not (List.mem p grouping_puncts) ->
        Hashtbl.replace ops p ();
        incr total_ops
      | Cfront.Token.Ident name ->
        Hashtbl.replace opnds name ();
        incr total_opnds
      | Cfront.Token.Int_lit (_, raw) | Cfront.Token.Float_lit (_, raw) ->
        Hashtbl.replace opnds raw ();
        incr total_opnds
      | Cfront.Token.String_lit s ->
        Hashtbl.replace opnds ("\"" ^ s) ();
        incr total_opnds
      | Cfront.Token.Char_lit c ->
        Hashtbl.replace opnds (Printf.sprintf "'%c'" c) ();
        incr total_opnds
      | Cfront.Token.Keyword _ | Cfront.Token.Punct _ | Cfront.Token.Eof -> ())
    tokens;
  let n1 = Hashtbl.length ops and n2 = Hashtbl.length opnds in
  let big_n1 = !total_ops and big_n2 = !total_opnds in
  let vocabulary = n1 + n2 in
  let length = big_n1 + big_n2 in
  let volume =
    if vocabulary = 0 then 0.0
    else float_of_int length *. (log (float_of_int vocabulary) /. log 2.0)
  in
  let difficulty =
    if n2 = 0 then 0.0
    else float_of_int n1 /. 2.0 *. (float_of_int big_n2 /. float_of_int n2)
  in
  {
    n1;
    n2;
    big_n1;
    big_n2;
    vocabulary;
    length;
    volume;
    difficulty;
    effort = difficulty *. volume;
    estimated_bugs = volume /. 3000.0;
  }

let of_tu (tu : Cfront.Ast.tu) = of_tokens tu.Cfront.Ast.tokens

let of_files (pfs : Cfront.Project.parsed_file list) =
  of_tokens
    (List.concat_map (fun pf -> pf.Cfront.Project.tu.Cfront.Ast.tokens) pfs)

(** SEI maintainability index, clamped to [0, 100].  Above ~85 is
    conventionally "highly maintainable", below 65 "difficult to
    maintain". *)
let maintainability_index ~volume ~mean_cc ~loc =
  if loc <= 0 then 100.0
  else
    let v = Stdlib.max 1.0 volume in
    let raw =
      171.0 -. (5.2 *. log v) -. (0.23 *. mean_cc) -. (16.2 *. log (float_of_int loc))
    in
    Util.Stats.clamp ~lo:0.0 ~hi:100.0 (raw *. 100.0 /. 171.0)

(** Halstead metrics of one function, from the tokens inside its line
    span. *)
let of_func ~(tu : Cfront.Ast.tu) (fn : Cfront.Ast.func) =
  let first = fn.Cfront.Ast.f_loc.Cfront.Loc.line in
  let last = fn.Cfront.Ast.f_end_line in
  of_tokens
    (List.filter
       (fun (t : Cfront.Token.t) ->
         let l = t.Cfront.Token.loc.Cfront.Loc.line in
         l >= first && l <= last)
       tu.Cfront.Ast.tokens)

(** Maintainability index of one function. *)
let mi_of_func ~tu (fn : Cfront.Ast.func) =
  let h = of_func ~tu fn in
  let cc = float_of_int (Complexity.of_func fn) in
  let loc =
    Stdlib.max 1 (fn.Cfront.Ast.f_end_line - fn.Cfront.Ast.f_loc.Cfront.Loc.line + 1)
  in
  maintainability_index ~volume:h.volume ~mean_cc:cc ~loc

type module_report = {
  modname : string;
  halstead : t;  (** whole-module aggregate *)
  mi : float;  (** mean per-function maintainability index, as tools report *)
}

let report_of_module ~modname (pfs : Cfront.Project.parsed_file list) =
  let h = of_files pfs in
  let mis =
    List.concat_map
      (fun pf ->
        let tu = pf.Cfront.Project.tu in
        List.filter_map
          (fun (fn : Cfront.Ast.func) ->
            if fn.Cfront.Ast.f_body <> None then Some (mi_of_func ~tu fn) else None)
          (Cfront.Ast.functions_of_tu tu))
      pfs
  in
  { modname; halstead = h; mi = Util.Stats.mean mis }
