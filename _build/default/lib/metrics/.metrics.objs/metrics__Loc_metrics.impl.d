lib/metrics/loc_metrics.ml: Cfront List Util
