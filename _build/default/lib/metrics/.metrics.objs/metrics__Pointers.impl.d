lib/metrics/pointers.ml: Cfront List
