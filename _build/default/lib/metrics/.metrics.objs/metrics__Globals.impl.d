lib/metrics/globals.ml: Cfront List
