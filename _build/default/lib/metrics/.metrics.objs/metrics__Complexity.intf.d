lib/metrics/complexity.mli: Cfront
