lib/metrics/casts.ml: Cfront Hashtbl List Option
