lib/metrics/halstead.mli: Cfront
