lib/metrics/shadowing.ml: Cfront Globals Hashtbl List Option
