lib/metrics/wcet.mli: Cfront
