lib/metrics/func_shape.ml: Cfront List Util
