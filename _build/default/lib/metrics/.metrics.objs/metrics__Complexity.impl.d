lib/metrics/complexity.ml: Cfront List Option Stdlib Util
