lib/metrics/defensive.ml: Cfront Hashtbl List Util
