lib/metrics/architecture.ml: Cfront Hashtbl List Loc_metrics Stdlib
