lib/metrics/halstead.ml: Cfront Complexity Hashtbl List Printf Stdlib Util
