lib/metrics/wcet.ml: Cfront Int64 List String
