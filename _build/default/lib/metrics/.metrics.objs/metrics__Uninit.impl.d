lib/metrics/uninit.ml: Cfront List Option
