lib/metrics/naming.ml: Cfront List String Util
