lib/metrics/style.ml: Cfront List Loc_metrics String Util
