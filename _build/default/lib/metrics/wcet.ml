(** Static WCET-analyzability classification.

    The paper's Observation 1 argues that high complexity "challenges ...
    timing analysis (e.g., worst-case execution time)".  This module makes
    that argument checkable: a function is WCET-analyzable by standard
    static timing analysis when every loop has a bound derivable without
    data knowledge and the call graph below it is recursion-free.

    Classification per function:
    - [Analyzable]: all loops constant-bounded, no goto, no recursion;
    - [Parametric]: loops bounded by parameters/variables (bound exists
      but depends on inputs — analyzable given input ranges);
    - [Unanalyzable]: while-loops with non-counter conditions, gotos that
      can form cycles, or recursion. *)

type loop_bound =
  | Constant of int
  | Parametric of string  (** bound expression variable *)
  | Unknown

type classification = Analyzable | Parametric_bound | Unanalyzable

type func_report = {
  fn : string;
  classification : classification;
  loops : int;
  constant_loops : int;
  parametric_loops : int;
  unknown_loops : int;
  has_goto : bool;
  recursive : bool;
  wcet_expr : string;  (** symbolic statement-count bound, best effort *)
}

let classification_name = function
  | Analyzable -> "analyzable"
  | Parametric_bound -> "parametric"
  | Unanalyzable -> "unanalyzable"

(* Recognize the canonical counted loop: for (i = 0; i < BOUND; ++i). *)
let for_bound (init : Cfront.Ast.for_init) cond update =
  let counter =
    match init with
    | Cfront.Ast.Fi_decl [ d ] -> Some d.Cfront.Ast.v_name
    | Cfront.Ast.Fi_expr { e = Cfront.Ast.Assign (Cfront.Ast.A_eq, { e = Cfront.Ast.Id n; _ }, _); _ } ->
      Some n
    | _ -> None
  in
  let steps =
    match update with
    | Some { Cfront.Ast.e = Cfront.Ast.Unary ((Cfront.Ast.Pre_inc | Cfront.Ast.Pre_dec), { e = Cfront.Ast.Id n; _ }); _ }
    | Some { Cfront.Ast.e = Cfront.Ast.Postfix (_, { e = Cfront.Ast.Id n; _ }); _ }
    | Some { Cfront.Ast.e = Cfront.Ast.Assign ((Cfront.Ast.A_add | Cfront.Ast.A_sub), { e = Cfront.Ast.Id n; _ }, _); _ } ->
      Some n
    | _ -> None
  in
  match (counter, steps, cond) with
  | Some c, Some s, Some { Cfront.Ast.e = Cfront.Ast.Binary ((Cfront.Ast.Lt | Cfront.Ast.Le | Cfront.Ast.Gt | Cfront.Ast.Ge),
                                                  { e = Cfront.Ast.Id lc; _ }, bound); _ }
    when c = s && c = lc -> (
      (* a bound made only of names, constants and arithmetic is a valid
         parametric bound (e.g. [width * height]) *)
      let rec affine e =
        match e.Cfront.Ast.e with
        | Cfront.Ast.Int_const _ | Cfront.Ast.Id _
        | Cfront.Ast.Member _ -> true
        | Cfront.Ast.Binary ((Cfront.Ast.Add | Cfront.Ast.Sub | Cfront.Ast.Mul
                             | Cfront.Ast.Div), a, b) ->
          affine a && affine b
        | Cfront.Ast.Unary (Cfront.Ast.Neg, a) | Cfront.Ast.C_cast (_, a) -> affine a
        | _ -> false
      in
      match bound.Cfront.Ast.e with
      | Cfront.Ast.Int_const n -> Constant (Int64.to_int n)
      | Cfront.Ast.Id v -> Parametric v
      | Cfront.Ast.Member { field; _ } -> Parametric field
      | _ when affine bound ->
        Parametric (Cfront.Pretty.expr_str bound)
      | _ -> Unknown)
  | _ -> Unknown

(* while (v > 0) { ... v -= 1; } style counters *)
let while_bound cond body =
  match cond with
  | { Cfront.Ast.e = Cfront.Ast.Binary ((Cfront.Ast.Gt | Cfront.Ast.Ge | Cfront.Ast.Ne),
                                        { e = Cfront.Ast.Id v; _ }, _); _ } ->
    let decremented = ref false in
    Cfront.Ast.iter_stmts
      (fun s ->
        match s.Cfront.Ast.s with
        | Cfront.Ast.Sexpr
            { e = Cfront.Ast.Assign ((Cfront.Ast.A_sub | Cfront.Ast.A_add), { e = Cfront.Ast.Id n; _ }, _); _ }
        | Cfront.Ast.Sexpr
            { e = Cfront.Ast.Unary ((Cfront.Ast.Pre_dec | Cfront.Ast.Pre_inc), { e = Cfront.Ast.Id n; _ }); _ }
        | Cfront.Ast.Sexpr { e = Cfront.Ast.Postfix (_, { e = Cfront.Ast.Id n; _ }); _ }
          when n = v ->
          decremented := true
        | _ -> ())
      body;
    if !decremented then Parametric v else Unknown
  | _ -> Unknown

let of_func ~recursive_names (fn : Cfront.Ast.func) =
  match fn.Cfront.Ast.f_body with
  | None -> None
  | Some body ->
    let loops = ref [] in
    let has_goto = ref false in
    Cfront.Ast.iter_stmts
      (fun s ->
        match s.Cfront.Ast.s with
        | Cfront.Ast.Sfor { init; cond; update; _ } ->
          loops := for_bound init cond update :: !loops
        | Cfront.Ast.Swhile (c, b) -> loops := while_bound c b :: !loops
        | Cfront.Ast.Sdo_while (b, c) -> loops := while_bound c b :: !loops
        | Cfront.Ast.Sgoto _ -> has_goto := true
        | _ -> ())
      body;
    let qname = Cfront.Ast.qualified_name fn in
    let recursive = List.mem qname recursive_names in
    let count p = List.length (List.filter p !loops) in
    let constant_loops = count (function Constant _ -> true | _ -> false) in
    let parametric_loops = count (function Parametric _ -> true | _ -> false) in
    let unknown_loops = count (function Unknown -> true | _ -> false) in
    let classification =
      if recursive || unknown_loops > 0 then Unanalyzable
      else if parametric_loops > 0 then Parametric_bound
      else Analyzable
    in
    (* symbolic bound: product of loop bounds (nesting ignored: an upper
       bound on the looseness, not the tightness) *)
    let wcet_expr =
      if classification = Unanalyzable then "unbounded"
      else
        let parts =
          List.filter_map
            (function
              | Constant n -> Some (string_of_int n)
              | Parametric v -> Some v
              | Unknown -> None)
            !loops
        in
        if parts = [] then "O(1)" else "O(" ^ String.concat " * " parts ^ ")"
    in
    Some
      {
        fn = qname;
        classification;
        loops = List.length !loops;
        constant_loops;
        parametric_loops;
        unknown_loops;
        has_goto = !has_goto;
        recursive;
        wcet_expr;
      }

type summary = {
  total : int;
  analyzable : int;
  parametric : int;
  unanalyzable : int;
}

let of_functions fns =
  let graph = Cfront.Callgraph.build fns in
  let recursive_names = Cfront.Callgraph.recursive_functions graph in
  List.filter_map (of_func ~recursive_names) fns

let summarize reports =
  let count c = List.length (List.filter (fun r -> r.classification = c) reports) in
  {
    total = List.length reports;
    analyzable = count Analyzable;
    parametric = count Parametric_bound;
    unanalyzable = count Unanalyzable;
  }
