(** Pointer-use and dynamic-memory census.

    ISO 26262-6 Table 8 items 2 ("no dynamic objects or variables") and 6
    ("limited use of pointers").  For CUDA code these are the features the
    paper singles out as intrinsic to the programming model (Observation
    4): host/device pointer pairs and [cudaMalloc]'d buffers. *)

type usage = {
  ptr_params : int;  (** pointer-typed parameters *)
  ptr_locals : int;
  derefs : int;  (** unary [*] and [->] and indexing of pointers *)
  address_of : int;
  ptr_arith : int;  (** +/- with a pointer operand (syntactic) *)
}

type dyn_alloc = {
  site : string;  (** malloc | calloc | realloc | new | new[] | cudaMalloc | cudaMallocManaged *)
  loc : Cfront.Loc.t;
  in_function : string;
}

let zero = { ptr_params = 0; ptr_locals = 0; derefs = 0; address_of = 0; ptr_arith = 0 }

let add a b =
  {
    ptr_params = a.ptr_params + b.ptr_params;
    ptr_locals = a.ptr_locals + b.ptr_locals;
    derefs = a.derefs + b.derefs;
    address_of = a.address_of + b.address_of;
    ptr_arith = a.ptr_arith + b.ptr_arith;
  }

let allocator_names =
  [ "malloc"; "calloc"; "realloc"; "cudaMalloc"; "cudaMallocManaged";
    "cudaMallocHost"; "cudaHostAlloc" ]

let usage_of_func (fn : Cfront.Ast.func) =
  let ptr_params =
    List.length
      (List.filter (fun p -> Cfront.Ast.is_pointer_type p.Cfront.Ast.p_type) fn.Cfront.Ast.f_params)
  in
  let ptr_locals = ref 0 in
  (match fn.Cfront.Ast.f_body with
   | None -> ()
   | Some body ->
     Cfront.Ast.iter_stmts
       (fun s ->
         match s.Cfront.Ast.s with
         | Cfront.Ast.Sdecl ds | Cfront.Ast.Sfor { init = Cfront.Ast.Fi_decl ds; _ } ->
           List.iter
             (fun d ->
               if Cfront.Ast.is_pointer_type d.Cfront.Ast.v_type then incr ptr_locals)
             ds
         | _ -> ())
       body);
  let derefs = ref 0 and address_of = ref 0 and ptr_arith = ref 0 in
  Cfront.Ast.iter_exprs_of_func
    (fun e ->
      match e.Cfront.Ast.e with
      | Cfront.Ast.Unary (Cfront.Ast.Deref, _) -> incr derefs
      | Cfront.Ast.Member { arrow = true; _ } -> incr derefs
      | Cfront.Ast.Index _ -> incr derefs
      | Cfront.Ast.Unary (Cfront.Ast.Addr_of, _) -> incr address_of
      | Cfront.Ast.Binary ((Cfront.Ast.Add | Cfront.Ast.Sub),
                           { e = Cfront.Ast.Id _; _ },
                           { e = Cfront.Ast.Id _; _ }) -> ()
      | _ -> ())
    fn;
  {
    ptr_params;
    ptr_locals = !ptr_locals;
    derefs = !derefs;
    address_of = !address_of;
    ptr_arith = !ptr_arith;
  }

let usage_of_functions fns =
  List.fold_left (fun acc fn -> add acc (usage_of_func fn)) zero fns

let dyn_allocs_of_func (fn : Cfront.Ast.func) =
  let acc = ref [] in
  let fname = Cfront.Ast.qualified_name fn in
  Cfront.Ast.iter_exprs_of_func
    (fun e ->
      match e.Cfront.Ast.e with
      | Cfront.Ast.Call ({ e = Cfront.Ast.Id name; _ }, _)
        when List.mem name allocator_names ->
        acc := { site = name; loc = e.Cfront.Ast.eloc; in_function = fname } :: !acc
      | Cfront.Ast.New { array_size = Some _; _ } ->
        acc := { site = "new[]"; loc = e.Cfront.Ast.eloc; in_function = fname } :: !acc
      | Cfront.Ast.New _ ->
        acc := { site = "new"; loc = e.Cfront.Ast.eloc; in_function = fname } :: !acc
      | _ -> ())
    fn;
  List.rev !acc

let dyn_allocs_of_functions fns = List.concat_map dyn_allocs_of_func fns

(** Functions using any dynamic allocation. *)
let functions_with_dyn_alloc fns =
  List.filter (fun fn -> dyn_allocs_of_func fn <> []) fns
