(** Function-shape metrics: exit points, parameter counts, body length.

    ISO 26262-6 Table 8 item 1 requires "one entry and one exit point in
    subprograms and functions".  C functions always have one entry; a
    function violates the guideline when it has more than one [return]
    statement, or a [return] that is not the final statement, or exits via
    [goto]/[throw] from the middle. *)

type t = {
  fn : Cfront.Ast.func;
  returns : int;
  gotos : int;
  throws : int;
  multi_exit : bool;
  params : int;
  body_stmts : int;
}

let count_stmt_kinds body =
  let returns = ref 0 and gotos = ref 0 and stmts = ref 0 in
  Cfront.Ast.iter_stmts
    (fun s ->
      incr stmts;
      match s.Cfront.Ast.s with
      | Cfront.Ast.Sreturn _ -> incr returns
      | Cfront.Ast.Sgoto _ -> incr gotos
      | _ -> ())
    body;
  (!returns, !gotos, !stmts)

let count_throws fn =
  let n = ref 0 in
  Cfront.Ast.iter_exprs_of_func
    (fun e -> match e.Cfront.Ast.e with Cfront.Ast.Throw _ -> incr n | _ -> ())
    fn;
  !n

(** Is the last statement of the body a return?  Used to decide whether a
    single-return function still exits "at the end". *)
let rec ends_with_return stmt =
  match stmt.Cfront.Ast.s with
  | Cfront.Ast.Sreturn _ -> true
  | Cfront.Ast.Sblock ss ->
    (match List.rev ss with [] -> false | last :: _ -> ends_with_return last)
  | Cfront.Ast.Slabel (_, inner) -> ends_with_return inner
  | _ -> false

let of_func (fn : Cfront.Ast.func) =
  match fn.Cfront.Ast.f_body with
  | None -> None
  | Some body ->
    let returns, gotos, body_stmts = count_stmt_kinds body in
    let throws = count_throws fn in
    let multi_exit =
      returns > 1 || throws > 0
      || (returns = 1 && not (ends_with_return body))
    in
    Some
      {
        fn;
        returns;
        gotos;
        throws;
        multi_exit;
        params = List.length fn.Cfront.Ast.f_params;
        body_stmts;
      }

let of_functions fns = List.filter_map of_func fns

(** Fraction of defined functions with more than one exit point — the
    paper reports 41% for the object-detection module. *)
let multi_exit_fraction fns =
  let shapes = of_functions fns in
  match shapes with
  | [] -> 0.0
  | _ ->
    float_of_int (List.length (List.filter (fun s -> s.multi_exit) shapes))
    /. float_of_int (List.length shapes)

let total_gotos fns =
  Util.Stats.sum_int (List.map (fun s -> s.gotos) (of_functions fns))
