(** Halstead software-science metrics and the SEI maintainability index,
    computed from the token stream as classic tools do. *)

type t = {
  n1 : int;  (** distinct operators *)
  n2 : int;  (** distinct operands *)
  big_n1 : int;  (** total operators *)
  big_n2 : int;  (** total operands *)
  vocabulary : int;
  length : int;
  volume : float;
  difficulty : float;
  effort : float;
  estimated_bugs : float;  (** volume / 3000, Halstead's delivered-bug estimate *)
}

val of_tokens : Cfront.Token.t list -> t
val of_tu : Cfront.Ast.tu -> t
val of_files : Cfront.Project.parsed_file list -> t

(** SEI maintainability index [171 - 5.2 ln V - 0.23 CC - 16.2 ln LOC],
    rescaled to [0, 100]. *)
val maintainability_index : volume:float -> mean_cc:float -> loc:int -> float

(** Halstead metrics of one function, from the tokens in its line span. *)
val of_func : tu:Cfront.Ast.tu -> Cfront.Ast.func -> t

val mi_of_func : tu:Cfront.Ast.tu -> Cfront.Ast.func -> float

type module_report = {
  modname : string;
  halstead : t;  (** whole-module aggregate *)
  mi : float;  (** mean per-function maintainability index *)
}

val report_of_module : modname:string -> Cfront.Project.parsed_file list -> module_report
