(** Read-before-write detection for local variables.

    A conservative, flow-insensitive-per-branch analysis in the spirit of
    the compiler warnings the paper used ("using static code analysis
    tools and compiler options, we have identified several variables as
    uninitialized"): a local declared without an initializer is flagged if
    some statement *may* read it before every path has assigned it.  We
    walk the body in order; an assignment on one branch of an [if] does
    not count as definite assignment. *)

type finding = {
  var : string;
  decl_loc : Cfront.Loc.t;
  use_loc : Cfront.Loc.t;
  in_function : string;
}

(* Variables read by an expression, except where it is the target of a
   plain assignment (handled by the caller). *)
let reads_of_expr e =
  let acc = ref [] in
  let rec go e =
    match e.Cfront.Ast.e with
    | Cfront.Ast.Id name -> acc := (name, e.Cfront.Ast.eloc) :: !acc
    | Cfront.Ast.Unary (Cfront.Ast.Addr_of, { e = Cfront.Ast.Id _; _ }) ->
      (* taking the address of a variable is not a read of its value *)
      ()
    | Cfront.Ast.Assign (Cfront.Ast.A_eq, { e = Cfront.Ast.Id _; _ }, rhs) ->
      (* plain assignment to a simple name: only the RHS reads *)
      go rhs
    | Cfront.Ast.Assign (_, lhs, rhs) -> go lhs; go rhs
    | _ ->
      (* descend one level *)
      (match e.Cfront.Ast.e with
       | Cfront.Ast.Unary (_, a) | Cfront.Ast.Postfix (_, a)
       | Cfront.Ast.C_cast (_, a) | Cfront.Ast.Cpp_cast (_, _, a)
       | Cfront.Ast.Sizeof_expr a | Cfront.Ast.Delete { target = a; _ } -> go a
       | Cfront.Ast.Throw a -> Option.iter go a
       | Cfront.Ast.Binary (_, a, b) | Cfront.Ast.Index (a, b) -> go a; go b
       | Cfront.Ast.Ternary (a, b, c) -> go a; go b; go c
       | Cfront.Ast.Call (f, args) -> go f; List.iter go args
       | Cfront.Ast.Kernel_launch { kernel; grid; block; args } ->
         go kernel; go grid; go block; List.iter go args
       | Cfront.Ast.Member { obj; _ } -> go obj
       | Cfront.Ast.New { array_size; init_args; _ } ->
         Option.iter go array_size;
         List.iter go init_args
       | _ -> ())
  in
  go e;
  List.rev !acc

(* Simple names definitely assigned by an expression.  Taking the address
   of a variable counts as an assignment: the callee may initialize it,
   as in out-parameters and the cudaMalloc with address-of idiom. *)
let writes_of_expr e =
  let acc = ref [] in
  let rec go e =
    match e.Cfront.Ast.e with
    | Cfront.Ast.Assign (_, { e = Cfront.Ast.Id name; _ }, rhs) ->
      acc := name :: !acc;
      go rhs
    | Cfront.Ast.Unary (Cfront.Ast.Addr_of, { e = Cfront.Ast.Id name; _ }) ->
      acc := name :: !acc
    | Cfront.Ast.Unary ((Cfront.Ast.Pre_inc | Cfront.Ast.Pre_dec), { e = Cfront.Ast.Id name; _ })
    | Cfront.Ast.Postfix (_, { e = Cfront.Ast.Id name; _ }) ->
      acc := name :: !acc
    | _ ->
      (match e.Cfront.Ast.e with
       | Cfront.Ast.Unary (_, a) | Cfront.Ast.Postfix (_, a)
       | Cfront.Ast.C_cast (_, a) | Cfront.Ast.Cpp_cast (_, _, a)
       | Cfront.Ast.Sizeof_expr a | Cfront.Ast.Delete { target = a; _ } -> go a
       | Cfront.Ast.Throw a -> Option.iter go a
       | Cfront.Ast.Binary (_, a, b) | Cfront.Ast.Index (a, b)
       | Cfront.Ast.Assign (_, a, b) -> go a; go b
       | Cfront.Ast.Ternary (a, b, c) -> go a; go b; go c
       | Cfront.Ast.Call (f, args) -> go f; List.iter go args
       | Cfront.Ast.Kernel_launch { kernel; grid; block; args } ->
         go kernel; go grid; go block; List.iter go args
       | Cfront.Ast.Member { obj; _ } -> go obj
       | Cfront.Ast.New { array_size; init_args; _ } ->
         Option.iter go array_size;
         List.iter go init_args
       | _ -> ())
  in
  go e;
  !acc

type walk_state = {
  mutable unassigned : (string * Cfront.Loc.t) list;  (** declared, no init yet *)
  mutable findings : finding list;
  fname : string;
}

let rec walk st ~definite (stmt : Cfront.Ast.stmt) =
  let handle_expr e =
    List.iter
      (fun (name, use_loc) ->
        match List.assoc_opt name st.unassigned with
        | Some decl_loc ->
          st.findings <-
            { var = name; decl_loc; use_loc; in_function = st.fname } :: st.findings;
          (* report once *)
          st.unassigned <- List.remove_assoc name st.unassigned
        | None -> ())
      (reads_of_expr e);
    if definite then
      List.iter
        (fun name -> st.unassigned <- List.remove_assoc name st.unassigned)
        (writes_of_expr e)
  in
  let handle_decls ds =
    List.iter
      (fun (d : Cfront.Ast.var_decl) ->
        match d.Cfront.Ast.v_init with
        | Some init ->
          handle_expr init
        | None ->
          (* arrays and class-typed locals are treated as initialized
             (constructors / aggregate semantics) *)
          (match d.Cfront.Ast.v_type with
           | Cfront.Ast.Tarray _ | Cfront.Ast.Tnamed _ | Cfront.Ast.Ttemplate _ -> ()
           | _ ->
             if definite then
               st.unassigned <- (d.Cfront.Ast.v_name, d.Cfront.Ast.v_loc) :: st.unassigned))
      ds
  in
  match stmt.Cfront.Ast.s with
  | Cfront.Ast.Sexpr e -> handle_expr e
  | Cfront.Ast.Sdecl ds -> handle_decls ds
  | Cfront.Ast.Sblock ss -> List.iter (walk st ~definite) ss
  | Cfront.Ast.Sif { cond; then_; else_ } ->
    handle_expr cond;
    (* branches do not definitely assign *)
    walk st ~definite:false then_;
    Option.iter (walk st ~definite:false) else_
  | Cfront.Ast.Swhile (c, body) ->
    handle_expr c;
    walk st ~definite:false body
  | Cfront.Ast.Sdo_while (body, c) ->
    (* a do-while body runs at least once: assignments are definite *)
    walk st ~definite body;
    handle_expr c
  | Cfront.Ast.Sfor { init; cond; update; body } ->
    (match init with
     | Cfront.Ast.Fi_decl ds -> handle_decls ds
     | Cfront.Ast.Fi_expr e -> handle_expr e
     | Cfront.Ast.Fi_empty -> ());
    Option.iter handle_expr cond;
    walk st ~definite:false body;
    Option.iter handle_expr update
  | Cfront.Ast.Sswitch (e, body) ->
    handle_expr e;
    walk st ~definite:false body
  | Cfront.Ast.Scase e -> handle_expr e
  | Cfront.Ast.Sreturn (Some e) -> handle_expr e
  | Cfront.Ast.Slabel (_, inner) -> walk st ~definite inner
  | Cfront.Ast.Stry { body; catches } ->
    walk st ~definite:false body;
    List.iter (fun (_, s) -> walk st ~definite:false s) catches
  | Cfront.Ast.Sreturn None | Cfront.Ast.Sempty | Cfront.Ast.Sdefault
  | Cfront.Ast.Sbreak | Cfront.Ast.Scontinue | Cfront.Ast.Sgoto _ -> ()

let of_func (fn : Cfront.Ast.func) =
  match fn.Cfront.Ast.f_body with
  | None -> []
  | Some body ->
    let st = { unassigned = []; findings = []; fname = Cfront.Ast.qualified_name fn } in
    walk st ~definite:true body;
    List.rev st.findings

let of_functions fns = List.concat_map of_func fns
