(** McCabe cyclomatic complexity, computed the way Lizard computes it:
    CC = 1 + decision points, where decision points are [if], [while],
    [do-while], [for] (with a condition), [case] labels, [?:], and the
    short-circuit operators [&&]/[||].

    Figure 3 buckets: 1-10 low, 11-20 moderate, 21-50 risky, >50
    unstable. *)

type bucket = Low | Moderate | Risky | Unstable

val bucket_of_cc : int -> bucket
val bucket_name : bucket -> string
val decisions_in_expr : Cfront.Ast.expr -> int

(** [count_short_circuit:false] gives plain McCabe (control statements
    only), the older convention used by the ablation experiment. *)
val of_stmt : ?count_short_circuit:bool -> Cfront.Ast.stmt -> int

val of_func : ?count_short_circuit:bool -> Cfront.Ast.func -> int

(** Maximum control-structure nesting depth of a function body. *)
val nesting_depth : Cfront.Ast.stmt -> int

val nesting_of_func : Cfront.Ast.func -> int

type func_cc = { fn : Cfront.Ast.func; cc : int }

(** Complexity of every defined function in the list. *)
val of_functions : ?count_short_circuit:bool -> Cfront.Ast.func list -> func_cc list

type module_summary = {
  modname : string;
  n_functions : int;
  loc : int;
  cc_mean : float;
  cc_max : int;
  over_10 : int;
  over_20 : int;
  over_50 : int;
}

val summarize : modname:string -> loc:int -> Cfront.Ast.func list -> module_summary
