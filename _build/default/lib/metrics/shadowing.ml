(** "No multiple use of variable names" (ISO 26262-6 Table 8, item 4).

    Two violation classes are reported:
    - a local variable shadowing an outer local, a parameter, or a
      file/namespace global;
    - the same global name declared in several translation units. *)

type finding = {
  name : string;
  loc : Cfront.Loc.t;
  kind : [ `Shadows_local | `Shadows_param | `Shadows_global | `Duplicate_global ];
  in_function : string option;
}

let kind_name = function
  | `Shadows_local -> "shadows outer local"
  | `Shadows_param -> "shadows parameter"
  | `Shadows_global -> "shadows global"
  | `Duplicate_global -> "global redefined in another unit"

let rec check_stmt ~globals ~params ~fname ~outer acc stmt =
  let decls_of s =
    match s.Cfront.Ast.s with
    | Cfront.Ast.Sdecl ds | Cfront.Ast.Sfor { init = Cfront.Ast.Fi_decl ds; _ } -> ds
    | _ -> []
  in
  match stmt.Cfront.Ast.s with
  | Cfront.Ast.Sblock ss ->
    (* sequential scan: each declaration extends the scope for siblings *)
    let _, acc =
      List.fold_left
        (fun (scope, acc) s ->
          let acc =
            List.fold_left
              (fun acc (d : Cfront.Ast.var_decl) ->
                let name = d.Cfront.Ast.v_name in
                if List.mem name scope then
                  { name; loc = d.Cfront.Ast.v_loc; kind = `Shadows_local;
                    in_function = Some fname } :: acc
                else if List.mem name params then
                  { name; loc = d.Cfront.Ast.v_loc; kind = `Shadows_param;
                    in_function = Some fname } :: acc
                else if List.mem name globals then
                  { name; loc = d.Cfront.Ast.v_loc; kind = `Shadows_global;
                    in_function = Some fname } :: acc
                else acc)
              acc (decls_of s)
          in
          let scope' = List.map (fun d -> d.Cfront.Ast.v_name) (decls_of s) @ scope in
          let acc = check_stmt ~globals ~params ~fname ~outer:scope' acc s in
          (scope', acc))
        (outer, acc) ss
    in
    acc
  | Cfront.Ast.Sif { then_; else_; _ } ->
    let acc = check_stmt ~globals ~params ~fname ~outer acc then_ in
    (match else_ with
     | Some s -> check_stmt ~globals ~params ~fname ~outer acc s
     | None -> acc)
  | Cfront.Ast.Swhile (_, body)
  | Cfront.Ast.Sdo_while (body, _)
  | Cfront.Ast.Sswitch (_, body)
  | Cfront.Ast.Slabel (_, body) ->
    check_stmt ~globals ~params ~fname ~outer acc body
  | Cfront.Ast.Sfor { init; body; _ } ->
    let outer =
      match init with
      | Cfront.Ast.Fi_decl ds -> List.map (fun d -> d.Cfront.Ast.v_name) ds @ outer
      | _ -> outer
    in
    check_stmt ~globals ~params ~fname ~outer acc body
  | Cfront.Ast.Stry { body; catches } ->
    let acc = check_stmt ~globals ~params ~fname ~outer acc body in
    List.fold_left
      (fun acc (_, s) -> check_stmt ~globals ~params ~fname ~outer acc s)
      acc catches
  | _ -> acc

let of_func ~globals (fn : Cfront.Ast.func) =
  match fn.Cfront.Ast.f_body with
  | None -> []
  | Some body ->
    let params = List.map (fun p -> p.Cfront.Ast.p_name) fn.Cfront.Ast.f_params in
    List.rev
      (check_stmt ~globals ~params ~fname:(Cfront.Ast.qualified_name fn) ~outer:[]
         [] body)

let duplicate_globals (pfs : Cfront.Project.parsed_file list) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun pf ->
      List.iter
        (fun (g : Globals.record) ->
          Hashtbl.replace tbl (g.Globals.name, pf.Cfront.Project.file.Cfront.Project.path) g)
        (Globals.of_tu pf.Cfront.Project.tu))
    pfs;
  (* names appearing in more than one file *)
  let by_name = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (name, _) g ->
      Hashtbl.replace by_name name (g :: Option.value ~default:[] (Hashtbl.find_opt by_name name)))
    tbl;
  Hashtbl.fold
    (fun name gs acc ->
      if List.length gs > 1 then
        List.map
          (fun (g : Globals.record) ->
            { name; loc = g.Globals.loc; kind = `Duplicate_global;
              in_function = None })
          gs
        @ acc
      else acc)
    by_name []

let of_files (pfs : Cfront.Project.parsed_file list) =
  let globals =
    List.map (fun (g : Globals.record) -> g.Globals.name)
      (Globals.of_files pfs)
  in
  let per_func =
    List.concat_map
      (fun pf ->
        List.concat_map (of_func ~globals)
          (Cfront.Ast.functions_of_tu pf.Cfront.Project.tu))
      pfs
  in
  per_func @ duplicate_globals pfs
