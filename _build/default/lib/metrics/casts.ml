(** Cast and type-conversion census.

    ISO 26262 asks for "enforcement of strong typing" and "no implicit
    type conversions".  We count:
    - explicit C-style casts,
    - explicit C++ casts (static/dynamic/const/reinterpret),
    - detectable implicit conversions: int expressions initializing or
      assigned to floating variables and vice versa, and mixed int/float
      arithmetic, inferred with a local scalar-type environment. *)

type kind =
  | C_style
  | Static
  | Dynamic
  | Const
  | Reinterpret
  | Implicit_narrowing  (** float -> int without a cast *)
  | Implicit_widening  (** int -> float without a cast *)

type record = { kind : kind; loc : Cfront.Loc.t; in_function : string }

let kind_name = function
  | C_style -> "C-style"
  | Static -> "static_cast"
  | Dynamic -> "dynamic_cast"
  | Const -> "const_cast"
  | Reinterpret -> "reinterpret_cast"
  | Implicit_narrowing -> "implicit narrowing"
  | Implicit_widening -> "implicit widening"

(* --- lightweight scalar typing ------------------------------------- *)

type scalar = Kint | Kfloat | Kbool | Kptr | Kother

let rec scalar_of_type = function
  | Cfront.Ast.Tbool -> Kbool
  | Cfront.Ast.Tchar | Cfront.Ast.Tint _ -> Kint
  | Cfront.Ast.Tfloat | Cfront.Ast.Tdouble -> Kfloat
  | Cfront.Ast.Tptr _ | Cfront.Ast.Tarray _ -> Kptr
  | Cfront.Ast.Tconst t | Cfront.Ast.Tref t -> scalar_of_type t
  | _ -> Kother

let env_of_func (fn : Cfront.Ast.func) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun p -> Hashtbl.replace tbl p.Cfront.Ast.p_name (scalar_of_type p.Cfront.Ast.p_type))
    fn.Cfront.Ast.f_params;
  (match fn.Cfront.Ast.f_body with
   | None -> ()
   | Some body ->
     Cfront.Ast.iter_stmts
       (fun s ->
         match s.Cfront.Ast.s with
         | Cfront.Ast.Sdecl ds | Cfront.Ast.Sfor { init = Cfront.Ast.Fi_decl ds; _ } ->
           List.iter
             (fun d -> Hashtbl.replace tbl d.Cfront.Ast.v_name (scalar_of_type d.Cfront.Ast.v_type))
             ds
         | _ -> ())
       body);
  tbl

let rec infer env (e : Cfront.Ast.expr) =
  match e.Cfront.Ast.e with
  | Cfront.Ast.Int_const _ | Cfront.Ast.Char_const _ -> Kint
  | Cfront.Ast.Float_const _ -> Kfloat
  | Cfront.Ast.Bool_const _ -> Kbool
  | Cfront.Ast.Nullptr | Cfront.Ast.Str_const _ -> Kptr
  | Cfront.Ast.Id name -> Option.value ~default:Kother (Hashtbl.find_opt env name)
  | Cfront.Ast.Unary ((Cfront.Ast.Neg | Cfront.Ast.Pos), a) -> infer env a
  | Cfront.Ast.Unary (Cfront.Ast.Lnot, _) -> Kbool
  | Cfront.Ast.Unary (Cfront.Ast.Bnot, _) -> Kint
  | Cfront.Ast.Unary ((Cfront.Ast.Pre_inc | Cfront.Ast.Pre_dec), a) -> infer env a
  | Cfront.Ast.Unary (Cfront.Ast.Deref, _) -> Kother
  | Cfront.Ast.Unary (Cfront.Ast.Addr_of, _) -> Kptr
  | Cfront.Ast.Postfix (_, a) -> infer env a
  | Cfront.Ast.Binary ((Cfront.Ast.Lt | Cfront.Ast.Gt | Cfront.Ast.Le | Cfront.Ast.Ge
                       | Cfront.Ast.Eq | Cfront.Ast.Ne | Cfront.Ast.Land | Cfront.Ast.Lor), _, _) ->
    Kbool
  | Cfront.Ast.Binary (_, a, b) ->
    (match (infer env a, infer env b) with
     | Kfloat, _ | _, Kfloat -> Kfloat
     | Kptr, _ | _, Kptr -> Kptr
     | Kint, Kint -> Kint
     | x, Kother -> x
     | Kother, y -> y
     | x, _ -> x)
  | Cfront.Ast.Assign (_, a, _) -> infer env a
  | Cfront.Ast.Ternary (_, a, _) -> infer env a
  | Cfront.Ast.C_cast (ty, _) | Cfront.Ast.Cpp_cast (_, ty, _) -> scalar_of_type ty
  | Cfront.Ast.Sizeof_type _ | Cfront.Ast.Sizeof_expr _ -> Kint
  | Cfront.Ast.New _ -> Kptr
  | _ -> Kother

(* --- census ---------------------------------------------------------- *)

let explicit_casts_of_func (fn : Cfront.Ast.func) =
  let acc = ref [] in
  let name = Cfront.Ast.qualified_name fn in
  Cfront.Ast.iter_exprs_of_func
    (fun e ->
      match e.Cfront.Ast.e with
      | Cfront.Ast.C_cast _ ->
        acc := { kind = C_style; loc = e.Cfront.Ast.eloc; in_function = name } :: !acc
      | Cfront.Ast.Cpp_cast (k, _, _) ->
        let kind =
          match k with
          | Cfront.Ast.Static_cast -> Static
          | Cfront.Ast.Dynamic_cast -> Dynamic
          | Cfront.Ast.Const_cast -> Const
          | Cfront.Ast.Reinterpret_cast -> Reinterpret
        in
        acc := { kind; loc = e.Cfront.Ast.eloc; in_function = name } :: !acc
      | _ -> ())
    fn;
  List.rev !acc

let implicit_conversions_of_func (fn : Cfront.Ast.func) =
  let env = env_of_func fn in
  let acc = ref [] in
  let name = Cfront.Ast.qualified_name fn in
  let check_pair ~loc lhs_kind rhs =
    match (lhs_kind, infer env rhs) with
    | Kint, Kfloat ->
      acc := { kind = Implicit_narrowing; loc; in_function = name } :: !acc
    | Kfloat, Kint ->
      acc := { kind = Implicit_widening; loc; in_function = name } :: !acc
    | _ -> ()
  in
  Cfront.Ast.iter_exprs_of_func
    (fun e ->
      match e.Cfront.Ast.e with
      | Cfront.Ast.Assign (Cfront.Ast.A_eq, lhs, rhs) ->
        check_pair ~loc:e.Cfront.Ast.eloc (infer env lhs) rhs
      | _ -> ())
    fn;
  (match fn.Cfront.Ast.f_body with
   | None -> ()
   | Some body ->
     Cfront.Ast.iter_stmts
       (fun s ->
         match s.Cfront.Ast.s with
         | Cfront.Ast.Sdecl ds ->
           List.iter
             (fun d ->
               match d.Cfront.Ast.v_init with
               | Some init ->
                 check_pair ~loc:d.Cfront.Ast.v_loc
                   (scalar_of_type d.Cfront.Ast.v_type) init
               | None -> ())
             ds
         | _ -> ())
       body);
  List.rev !acc

let of_functions fns =
  List.concat_map
    (fun fn -> explicit_casts_of_func fn @ implicit_conversions_of_func fn)
    (List.filter (fun (f : Cfront.Ast.func) -> f.Cfront.Ast.f_body <> None) fns)

let explicit_count records =
  List.length
    (List.filter
       (fun r ->
         match r.kind with
         | C_style | Static | Dynamic | Const | Reinterpret -> true
         | Implicit_narrowing | Implicit_widening -> false)
       records)

let implicit_count records = List.length records - explicit_count records
