(** Global-variable census.

    ISO 26262-6 Table 8 item 5: "no use of global variables or else
    justification of their usage".  Constants are exempt (they cannot
    carry hidden state); extern declarations are not counted twice. *)

type record = {
  name : string;
  scope : string list;
  ty : Cfront.Ast.ctype;
  static : bool;
  device : bool;  (** CUDA [__device__]/[__constant__] global *)
  loc : Cfront.Loc.t;
  file : string;
}

let is_mutable_global (g : Cfront.Ast.global_var) =
  (not g.Cfront.Ast.g_const) && not g.Cfront.Ast.g_extern

let of_tu (tu : Cfront.Ast.tu) =
  List.filter_map
    (fun (g : Cfront.Ast.global_var) ->
      if is_mutable_global g then
        Some
          {
            name = g.Cfront.Ast.g_decl.Cfront.Ast.v_name;
            scope = g.Cfront.Ast.g_scope;
            ty = g.Cfront.Ast.g_decl.Cfront.Ast.v_type;
            static = g.Cfront.Ast.g_static;
            device = g.Cfront.Ast.g_device;
            loc = g.Cfront.Ast.g_decl.Cfront.Ast.v_loc;
            file = tu.Cfront.Ast.tu_file;
          }
      else None)
    (Cfront.Ast.globals_of_tu tu)

let of_files pfs =
  List.concat_map (fun pf -> of_tu pf.Cfront.Project.tu) pfs

(** Count of globals that are uninitialized at their declaration — feeds
    the "initialization of variables" guideline. *)
let uninitialized_globals (pfs : Cfront.Project.parsed_file list) =
  List.concat_map
    (fun pf ->
      List.filter
        (fun (g : Cfront.Ast.global_var) ->
          is_mutable_global g && g.Cfront.Ast.g_decl.Cfront.Ast.v_init = None)
        (Cfront.Ast.globals_of_tu pf.Cfront.Project.tu))
    pfs
