(** Naming-convention checker, after the Google C++ style guide the paper
    says Apollo adopted: type names are [CamelCase]; function and method
    names are [CamelCase]; variable names are [snake_case]; class data
    members get a trailing underscore; constants are [kConstantName];
    enumerators are [kEnumName] or [UPPER_CASE]. *)

type rule =
  | Type_name
  | Function_name
  | Variable_name
  | Member_name
  | Constant_name
  | Enumerator_name

type finding = { rule : rule; name : string; loc : Cfront.Loc.t; expected : string }

let rule_name = function
  | Type_name -> "type name"
  | Function_name -> "function name"
  | Variable_name -> "variable name"
  | Member_name -> "data member name"
  | Constant_name -> "constant name"
  | Enumerator_name -> "enumerator name"

let is_upper_case s =
  s <> "" && Util.Strutil.for_all (fun c -> Util.Strutil.is_upper c || Util.Strutil.is_digit c || c = '_') s

let check_type_name name loc =
  if Util.Strutil.is_camel_case name then []
  else [ { rule = Type_name; name; loc; expected = "CamelCase" } ]

let check_function_name name loc =
  (* destructors and main/operator entry points are exempt *)
  if name = "main" || String.length name > 0 && name.[0] = '~' then []
  else if Util.Strutil.is_camel_case name then []
  else [ { rule = Function_name; name; loc; expected = "CamelCase" } ]

let check_variable_name name loc =
  if Util.Strutil.is_snake_case name then []
  else [ { rule = Variable_name; name; loc; expected = "snake_case" } ]

let check_member_name name loc =
  if Util.Strutil.is_member_name name then []
  else [ { rule = Member_name; name; loc; expected = "snake_case_ (trailing underscore)" } ]

let check_constant_name name loc =
  if Util.Strutil.is_kconstant name || is_upper_case name then []
  else [ { rule = Constant_name; name; loc; expected = "kCamelCase" } ]

let check_enumerator_name name loc =
  if Util.Strutil.is_kconstant name || is_upper_case name then []
  else [ { rule = Enumerator_name; name; loc; expected = "kCamelCase or UPPER_CASE" } ]

let of_tu (tu : Cfront.Ast.tu) =
  let acc = ref [] in
  let push fs = acc := fs @ !acc in
  Cfront.Ast.iter_tops
    (fun top ->
      match top with
      | Cfront.Ast.Trecord r ->
        push (check_type_name r.Cfront.Ast.r_name r.Cfront.Ast.r_loc);
        List.iter
          (fun ((access : Cfront.Ast.access), (d : Cfront.Ast.var_decl)) ->
            match access with
            | Cfront.Ast.Priv | Cfront.Ast.Prot ->
              push (check_member_name d.Cfront.Ast.v_name d.Cfront.Ast.v_loc)
            | Cfront.Ast.Pub ->
              (* public struct fields follow plain variable naming *)
              push (check_variable_name d.Cfront.Ast.v_name d.Cfront.Ast.v_loc))
          r.Cfront.Ast.r_fields;
        List.iter
          (fun (m : Cfront.Ast.func) ->
            if m.Cfront.Ast.f_name <> r.Cfront.Ast.r_name then
              push (check_function_name m.Cfront.Ast.f_name m.Cfront.Ast.f_loc))
          r.Cfront.Ast.r_methods
      | Cfront.Ast.Tfunc fn ->
        push (check_function_name fn.Cfront.Ast.f_name fn.Cfront.Ast.f_loc)
      | Cfront.Ast.Tglobal g ->
        let d = g.Cfront.Ast.g_decl in
        if g.Cfront.Ast.g_const then
          push (check_constant_name d.Cfront.Ast.v_name d.Cfront.Ast.v_loc)
        else push (check_variable_name d.Cfront.Ast.v_name d.Cfront.Ast.v_loc)
      | Cfront.Ast.Ttypedef (name, _) ->
        push (check_type_name name Cfront.Loc.dummy)
      | Cfront.Ast.Tenum e ->
        if e.Cfront.Ast.en_name <> "" then
          push (check_type_name e.Cfront.Ast.en_name e.Cfront.Ast.en_loc);
        List.iter
          (fun (n, _) -> push (check_enumerator_name n e.Cfront.Ast.en_loc))
          e.Cfront.Ast.en_items
      | _ -> ())
    tu.Cfront.Ast.tops;
  (* local variables *)
  List.iter
    (fun (fn : Cfront.Ast.func) ->
      match fn.Cfront.Ast.f_body with
      | None -> ()
      | Some body ->
        Cfront.Ast.iter_stmts
          (fun s ->
            match s.Cfront.Ast.s with
            | Cfront.Ast.Sdecl ds | Cfront.Ast.Sfor { init = Cfront.Ast.Fi_decl ds; _ } ->
              List.iter
                (fun (d : Cfront.Ast.var_decl) ->
                  push (check_variable_name d.Cfront.Ast.v_name d.Cfront.Ast.v_loc))
                ds
            | _ -> ())
          body)
    (Cfront.Ast.functions_of_tu tu);
  List.rev !acc

let of_files pfs = List.concat_map (fun pf -> of_tu pf.Cfront.Project.tu) pfs

(** Compliance ratio: 1 - violations / checked items (approximated by
    identifier count). *)
let violation_count = List.length
