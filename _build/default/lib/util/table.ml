(** Plain-text table rendering for experiment output.

    The benchmark harness regenerates every table/figure of the paper as a
    text table; keeping the renderer here means all experiments share one
    look and the tests can assert on the structure. *)

type align = Left | Right

type t = {
  title : string;
  header : string list;
  aligns : align list;
  rows : string list list;
}

let make ~title ~header ?(aligns = []) () =
  let aligns =
    if aligns = [] then List.map (fun _ -> Left) header else aligns
  in
  { title; header; aligns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table.add_row: row width mismatch";
  { t with rows = t.rows @ [ row ] }

let add_rows t rows = List.fold_left add_row t rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let widths t =
  let cols = List.length t.header in
  let w = Array.make cols 0 in
  let update row =
    List.iteri (fun i cell -> w.(i) <- Stdlib.max w.(i) (String.length cell)) row
  in
  update t.header;
  List.iter update t.rows;
  w

let render t =
  let w = widths t in
  let aligns = Array.of_list t.aligns in
  let line ch =
    "+" ^ String.concat "+" (Array.to_list (Array.map (fun n -> String.make (n + 2) ch) w)) ^ "+"
  in
  let row_str cells =
    let padded =
      List.mapi (fun i cell -> " " ^ pad aligns.(i) w.(i) cell ^ " ") cells
    in
    "|" ^ String.concat "|" padded ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (t.title ^ "\n");
  Buffer.add_string buf (line '-' ^ "\n");
  Buffer.add_string buf (row_str t.header ^ "\n");
  Buffer.add_string buf (line '=' ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (row_str r ^ "\n")) t.rows;
  Buffer.add_string buf (line '-' ^ "\n");
  Buffer.contents buf

let print t = print_string (render t)

(** GitHub-flavoured-markdown rendering of the same table. *)
let render_markdown t =
  let buf = Buffer.create 256 in
  let cell s =
    (* pipes would break the table structure *)
    String.concat "\\|" (String.split_on_char '|' s)
  in
  Buffer.add_string buf ("### " ^ t.title ^ "\n\n");
  Buffer.add_string buf ("| " ^ String.concat " | " (List.map cell t.header) ^ " |\n");
  Buffer.add_string buf
    ("|"
    ^ String.concat "|"
        (List.map
           (fun a -> match a with Left -> " --- " | Right -> " ---: ")
           t.aligns)
    ^ "|\n");
  List.iter
    (fun row ->
      Buffer.add_string buf ("| " ^ String.concat " | " (List.map cell row) ^ " |\n"))
    t.rows;
  Buffer.contents buf

(** RFC-4180-style CSV rendering (header row first). *)
let render_csv t =
  let buf = Buffer.create 256 in
  let field s =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  in
  let row cells = String.concat "," (List.map field cells) ^ "\n" in
  Buffer.add_string buf (row t.header);
  List.iter (fun r -> Buffer.add_string buf (row r)) t.rows;
  Buffer.contents buf

type format = Text | Markdown | Csv

let render_as = function
  | Text -> render
  | Markdown -> render_markdown
  | Csv -> render_csv

(** Formatting helpers shared by experiment printers. *)
let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let fmt_pct ?(decimals = 1) x = Printf.sprintf "%.*f%%" decimals x
let fmt_int = string_of_int
