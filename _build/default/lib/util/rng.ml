(** Deterministic splittable pseudo-random number generator.

    Every experiment in this repository must be bit-reproducible, so we do
    not use [Stdlib.Random] anywhere.  This is a SplitMix64 generator: a
    64-bit state advanced by a Weyl increment and finalized with a
    Murmur3-style mixer.  [split] derives an independent stream, which lets
    the corpus generator hand a private stream to every module/file/function
    without any cross-contamination when one part of the generator changes. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  { state = mix64 seed }

(** [int t bound] draws uniformly from [0, bound). Requires [bound > 0]. *)
let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

(** [range t lo hi] draws uniformly from the inclusive range [lo, hi]. *)
let range t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** [chance t p] is true with probability [p]. *)
let chance t p = float t 1.0 < p

(** [pick t xs] draws a uniformly random element of the non-empty list. *)
let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let pick_array t xs =
  if Array.length xs = 0 then invalid_arg "Rng.pick_array: empty array";
  xs.(int t (Array.length xs))

(** [weighted t choices] draws from [(weight, value)] pairs with probability
    proportional to weight.  Weights must be non-negative and sum > 0. *)
let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 choices in
  if total <= 0.0 then invalid_arg "Rng.weighted: weights sum to zero";
  let x = float t total in
  let rec go acc = function
    | [] -> snd (List.nth choices (List.length choices - 1))
    | (w, v) :: rest -> if x < acc +. w then v else go (acc +. w) rest
  in
  go 0.0 choices

(** Gaussian draw via Box-Muller (one value per call; the pair's second
    member is discarded to keep the stream layout simple). *)
let gaussian t ~mean ~stddev =
  let u1 = Stdlib.max 1e-12 (float t 1.0) in
  let u2 = float t 1.0 in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

(** Shuffle a copy of the list (Fisher-Yates over an array). *)
let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
