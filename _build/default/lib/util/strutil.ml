(** String helpers shared by the lexer, the style checker, and the
    naming-convention checker. *)

let is_digit c = c >= '0' && c <= '9'
let is_lower c = c >= 'a' && c <= 'z'
let is_upper c = c >= 'A' && c <= 'Z'
let is_alpha c = is_lower c || is_upper c
let is_alnum c = is_alpha c || is_digit c
let is_ident_start c = is_alpha c || c = '_'
let is_ident_char c = is_alnum c || c = '_'
let is_space c = c = ' ' || c = '\t' || c = '\r'

let for_all p s =
  let rec go i = i >= String.length s || (p s.[i] && go (i + 1)) in
  go 0

let exists p s = not (for_all (fun c -> not (p c)) s)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let ends_with ~suffix s =
  String.length s >= String.length suffix
  && String.sub s (String.length s - String.length suffix) (String.length suffix) = suffix

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0

(** Split on a character, keeping empty fields (used to split source text
    into lines: ["a\n\n"] has three fields). *)
let split_char c s = String.split_on_char c s

let lines s = split_char '\n' s

let strip s =
  let n = String.length s in
  let rec first i = if i < n && is_space s.[i] then first (i + 1) else i in
  let rec last i = if i >= 0 && is_space s.[i] then last (i - 1) else i in
  let a = first 0 and b = last (n - 1) in
  if a > b then "" else String.sub s a (b - a + 1)

(** [snake_case s]: lowercase letters, digits and underscores only, and does
    not start with a digit. *)
let is_snake_case s =
  s <> ""
  && is_ident_start s.[0]
  && (not (is_upper s.[0]))
  && for_all (fun c -> is_lower c || is_digit c || c = '_') s

(** [is_camel_case s]: starts with an uppercase letter, contains no
    underscores ([CamelCase] a.k.a. PascalCase, as Google C++ style requires
    for type names). *)
let is_camel_case s =
  s <> "" && is_upper s.[0] && for_all (fun c -> is_alnum c) s

(** Google-style constant name: [kConstantName]. *)
let is_kconstant s =
  String.length s >= 2 && s.[0] = 'k' && is_upper s.[1] && for_all is_alnum s

(** Google-style data-member name: [snake_case_] with a trailing underscore. *)
let is_member_name s = ends_with ~suffix:"_" s && is_snake_case s

let repeat n s =
  let buf = Buffer.create (n * String.length s) in
  for _ = 1 to n do Buffer.add_string buf s done;
  Buffer.contents buf

let indent_width line =
  let rec go i = if i < String.length line && line.[i] = ' ' then go (i + 1) else i in
  go 0

let count_char c s =
  String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 s
