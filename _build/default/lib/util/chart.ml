(** Horizontal ASCII bar charts, for rendering the paper's figures as
    terminal graphics next to the exact tables. *)

type series = { label : string; value : float }

let bar ~width ~max_value value =
  if max_value <= 0.0 then ""
  else
    let n =
      int_of_float (Float.round (float_of_int width *. value /. max_value))
    in
    String.make (Stdlib.max 0 (Stdlib.min width n)) '#'

(** Render one bar per entry, scaled to the maximum value.
    [value_fmt] formats the numeric annotation (default [%.1f]). *)
let render ?(width = 50) ?(value_fmt = fun v -> Printf.sprintf "%.1f" v) ~title
    (entries : series list) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  let label_w =
    List.fold_left (fun acc e -> Stdlib.max acc (String.length e.label)) 0 entries
  in
  let max_value = List.fold_left (fun acc e -> Stdlib.max acc e.value) 0.0 entries in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  %s%s |%-*s %s\n" e.label
           (String.make (label_w - String.length e.label) ' ')
           width
           (bar ~width ~max_value e.value)
           (value_fmt e.value)))
    entries;
  Buffer.contents buf

(** Grouped bars: one block per group, one bar per series within it. *)
let render_grouped ?(width = 40) ?(value_fmt = fun v -> Printf.sprintf "%.1f" v)
    ~title (groups : (string * series list) list) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (title ^ "\n");
  let max_value =
    List.fold_left
      (fun acc (_, ss) ->
        List.fold_left (fun a s -> Stdlib.max a s.value) acc ss)
      0.0 groups
  in
  let label_w =
    List.fold_left
      (fun acc (_, ss) ->
        List.fold_left (fun a s -> Stdlib.max a (String.length s.label)) acc ss)
      0 groups
  in
  List.iter
    (fun (group, ss) ->
      Buffer.add_string buf ("  " ^ group ^ "\n");
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf "    %s%s |%-*s %s\n" s.label
               (String.make (label_w - String.length s.label) ' ')
               width
               (bar ~width ~max_value s.value)
               (value_fmt s.value)))
        ss)
    groups;
  Buffer.contents buf
