(** Plain-text, markdown, and CSV table rendering.

    All experiment output goes through this one renderer so every table
    shares a structure tests can assert on. *)

type align = Left | Right

type t = {
  title : string;
  header : string list;
  aligns : align list;
  rows : string list list;
}

(** Create an empty table.  [aligns] defaults to all-[Left]. *)
val make : title:string -> header:string list -> ?aligns:align list -> unit -> t

(** Append one row.  @raise Invalid_argument on a width mismatch. *)
val add_row : t -> string list -> t

val add_rows : t -> string list list -> t

(** ASCII box rendering. *)
val render : t -> string

val print : t -> unit

(** GitHub-flavoured markdown (pipes in cells are escaped). *)
val render_markdown : t -> string

(** RFC-4180-style CSV, header row first. *)
val render_csv : t -> string

type format = Text | Markdown | Csv

val render_as : format -> t -> string

(** Formatting helpers shared by experiment printers. *)
val fmt_float : ?decimals:int -> float -> string

val fmt_pct : ?decimals:int -> float -> string
val fmt_int : int -> string
