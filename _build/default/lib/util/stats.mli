(** Descriptive-statistics helpers used by metric reports and the
    benchmark harness. *)

val mean : float list -> float

(** Minimum/maximum; 0.0 on the empty list. *)
val minimum : float list -> float

val maximum : float list -> float

(** Sample standard deviation; 0.0 for fewer than two points. *)
val stddev : float list -> float

(** [percentile p xs] with [p] in [0,100], nearest-rank on sorted data. *)
val percentile : float -> float list -> float

val median : float list -> float
val sum_int : int list -> int
val sum_float : float list -> float

(** Histogram of integer data into inclusive [(lo, hi)] buckets; values
    outside every bucket are dropped. *)
val histogram : buckets:(int * int) list -> int list -> ((int * int) * int) list

(** Geometric mean; all inputs must be positive.  0.0 on the empty list. *)
val geomean : float list -> float

(** [ratio a b] is [a /. b], or 0.0 when [b = 0.0]. *)
val ratio : float -> float -> float

val clamp : lo:float -> hi:float -> float -> float
