(** Horizontal ASCII bar charts, for rendering the paper's figures as
    terminal graphics next to the exact tables. *)

type series = { label : string; value : float }

(** One bar per entry, scaled so the maximum value fills [width]
    (default 50) characters.  [value_fmt] formats the numeric annotation
    at the end of each bar (default ["%.1f"]). *)
val render :
  ?width:int ->
  ?value_fmt:(float -> string) ->
  title:string ->
  series list ->
  string

(** Grouped bars: one block per group, one bar per series within it, all
    sharing one scale. *)
val render_grouped :
  ?width:int ->
  ?value_fmt:(float -> string) ->
  title:string ->
  (string * series list) list ->
  string
