lib/util/chart.ml: Buffer Float List Printf Stdlib String
