lib/util/chart.mli:
