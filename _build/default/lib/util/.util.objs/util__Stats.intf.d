lib/util/stats.mli:
