lib/util/rng.mli:
