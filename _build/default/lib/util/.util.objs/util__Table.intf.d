lib/util/table.mli:
