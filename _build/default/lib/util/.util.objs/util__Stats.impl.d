lib/util/stats.ml: List Stdlib
