lib/util/strutil.ml: Buffer String
