(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every experiment in this repository must be bit-reproducible, so
    nothing uses [Stdlib.Random].  [split] derives an independent stream,
    which lets the corpus generator hand a private stream to every
    module/file/function without cross-contamination when one part of the
    generation changes. *)

type t

val create : int -> t
val next_int64 : t -> int64

(** An independent stream derived from (and advancing) this one. *)
val split : t -> t

(** [int t bound] draws uniformly from [0, bound).  Requires [bound > 0]. *)
val int : t -> int -> int

(** [range t lo hi] draws uniformly from the inclusive range [lo, hi]. *)
val range : t -> int -> int -> int

(** [float t bound] draws uniformly from [0, bound). *)
val float : t -> float -> float

val bool : t -> bool

(** [chance t p] is true with probability [p]. *)
val chance : t -> float -> bool

(** Uniform draw from a non-empty list.  @raise Invalid_argument on []. *)
val pick : t -> 'a list -> 'a

val pick_array : t -> 'a array -> 'a

(** Draw from [(weight, value)] pairs with probability proportional to
    weight.  Weights must be non-negative with a positive sum. *)
val weighted : t -> (float * 'a) list -> 'a

(** Gaussian draw via Box-Muller. *)
val gaussian : t -> mean:float -> stddev:float -> float

(** Fisher-Yates shuffle of a copy of the list. *)
val shuffle : t -> 'a list -> 'a list
