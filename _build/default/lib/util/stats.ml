(** Small descriptive-statistics helpers used by metric reports and the
    benchmark harness. *)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let minimum = function [] -> 0.0 | x :: xs -> List.fold_left Stdlib.min x xs
let maximum = function [] -> 0.0 | x :: xs -> List.fold_left Stdlib.max x xs

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
      /. float_of_int (List.length xs - 1)
    in
    sqrt var

(** [percentile p xs] with [p] in [0,100], nearest-rank on the sorted data. *)
let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)) in
    List.nth sorted idx

let median xs = percentile 50.0 xs

let sum_int = List.fold_left ( + ) 0
let sum_float = List.fold_left ( +. ) 0.0

(** Histogram of integer data into inclusive [(lo, hi)] buckets; values
    outside every bucket are dropped. *)
let histogram ~buckets xs =
  List.map (fun (lo, hi) -> ((lo, hi), List.length (List.filter (fun x -> x >= lo && x <= hi) xs))) buckets

(** Geometric mean; all inputs must be positive. *)
let geomean = function
  | [] -> 0.0
  | xs ->
    let logsum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (logsum /. float_of_int (List.length xs))

let ratio a b = if b = 0.0 then 0.0 else a /. b

let clamp ~lo ~hi x = Stdlib.max lo (Stdlib.min hi x)
