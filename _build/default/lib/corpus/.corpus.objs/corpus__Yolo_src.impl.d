lib/corpus/yolo_src.ml: Cfront List
