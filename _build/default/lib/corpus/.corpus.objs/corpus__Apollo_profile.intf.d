lib/corpus/apollo_profile.mli:
