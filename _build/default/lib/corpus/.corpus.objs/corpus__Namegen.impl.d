lib/corpus/namegen.ml: Printf Util
