lib/corpus/stencil_src.ml: Cfront List
