lib/corpus/apollo_profile.ml: List Stdlib Util
