lib/corpus/fault_src.mli:
