lib/corpus/stencil_src.mli: Cfront
