lib/corpus/pipeline_src.ml: Cfront List
