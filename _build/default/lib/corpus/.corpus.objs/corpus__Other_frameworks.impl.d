lib/corpus/other_frameworks.ml: Apollo_profile
