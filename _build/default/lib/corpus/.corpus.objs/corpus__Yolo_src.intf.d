lib/corpus/yolo_src.mli: Cfront
