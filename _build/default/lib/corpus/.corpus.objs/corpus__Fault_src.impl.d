lib/corpus/fault_src.ml: Cfront Coverage List Yolo_src
