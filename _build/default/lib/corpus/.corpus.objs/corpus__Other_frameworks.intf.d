lib/corpus/other_frameworks.mli: Apollo_profile
