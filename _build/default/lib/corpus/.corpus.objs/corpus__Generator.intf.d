lib/corpus/generator.mli: Apollo_profile Cfront
