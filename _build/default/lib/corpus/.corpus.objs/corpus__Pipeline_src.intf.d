lib/corpus/pipeline_src.mli: Cfront
