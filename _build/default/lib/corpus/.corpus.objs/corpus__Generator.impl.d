lib/corpus/generator.ml: Apollo_profile Array Buffer Cfront List Namegen Printf Stdlib String Util
