(** A runnable miniature of the Figure 1 AD pipeline, in C, executed by
    the interpreter: synthetic sensor grid -> perception (detection on an
    occupancy grid) -> prediction (constant-velocity extrapolation) ->
    planning (corridor selection with collision cost) -> control (PD
    steering/speed commands) -> CAN frame packing.

    It serves as a second integration subject beyond YOLO: richer control
    flow across five cooperating translation units, a deterministic
    multi-tick simulation, and a safety property the tests can check (the
    planned corridor never intersects a predicted obstacle cell). *)

let extra_types = [ "obstacle"; "plan_result"; "control_cmd" ]

let types_c =
  {|// pipeline_types.c
struct obstacle {
  int cell_x;
  int cell_y;
  float vel_x;
  float vel_y;
  int tracked;
};

struct plan_result {
  int corridor;
  float cost;
  int feasible;
};

struct control_cmd {
  float steer;
  float accel;
  int brake;
};

int g_frame_counter = 0;
|}

let perception_c =
  {|// mini_perception.c
int DetectObstacles(float* grid, int width, int height, float threshold,
                    obstacle* out, int max_out) {
  int count = 0;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      float v = grid[y * width + x];
      if (v > threshold && count < max_out) {
        out[count].cell_x = x;
        out[count].cell_y = y;
        out[count].vel_x = 0.0;
        out[count].vel_y = 0.0;
        out[count].tracked = 0;
        count = count + 1;
      }
    }
  }
  return count;
}

void TrackObstacles(obstacle* prev, int prev_count, obstacle* cur, int cur_count) {
  for (int i = 0; i < cur_count; ++i) {
    int best = -1;
    int best_dist = 1000000;
    for (int j = 0; j < prev_count; ++j) {
      int dx = cur[i].cell_x - prev[j].cell_x;
      int dy = cur[i].cell_y - prev[j].cell_y;
      int d2 = dx * dx + dy * dy;
      if (d2 < best_dist && d2 <= 4) {
        best_dist = d2;
        best = j;
      }
    }
    if (best >= 0) {
      cur[i].vel_x = (float)(cur[i].cell_x - prev[best].cell_x);
      cur[i].vel_y = (float)(cur[i].cell_y - prev[best].cell_y);
      cur[i].tracked = 1;
    }
  }
}
|}

let prediction_c =
  {|// mini_prediction.c
void PredictObstacles(obstacle* obs, int count, int horizon, int* occupied,
                      int width, int height) {
  for (int i = 0; i < width * height; ++i) {
    occupied[i] = 0;
  }
  for (int i = 0; i < count; ++i) {
    for (int t = 0; t <= horizon; ++t) {
      int px = obs[i].cell_x + (int)(obs[i].vel_x * (float)t);
      int py = obs[i].cell_y + (int)(obs[i].vel_y * (float)t);
      if (px >= 0 && px < width && py >= 0 && py < height) {
        occupied[py * width + px] = 1;
      }
    }
  }
}
|}

let planning_c =
  {|// mini_planning.c
float CorridorCost(int* occupied, int width, int height, int corridor) {
  float cost = 0.0;
  for (int y = 0; y < height; ++y) {
    if (occupied[y * width + corridor] == 1) {
      cost += 100.0;
    }
    int left = corridor - 1;
    int right = corridor + 1;
    if (left >= 0 && occupied[y * width + left] == 1) {
      cost += 10.0;
    }
    if (right < width && occupied[y * width + right] == 1) {
      cost += 10.0;
    }
  }
  return cost;
}

plan_result PlanCorridor(int* occupied, int width, int height, int current) {
  plan_result result;
  result.corridor = current;
  result.cost = 1000000.0;
  result.feasible = 0;
  for (int c = 0; c < width; ++c) {
    float cost = CorridorCost(occupied, width, height, c);
    float switch_penalty = 2.0 * (float)abs(c - current);
    float total = cost + switch_penalty;
    if (total < result.cost) {
      result.cost = total;
      result.corridor = c;
    }
  }
  if (result.cost < 100.0) {
    result.feasible = 1;
  }
  return result;
}
|}

let control_c =
  {|// mini_control.c
control_cmd ComputeControl(int current, plan_result* plan, float speed,
                           float target_speed) {
  control_cmd cmd;
  cmd.steer = 0.0;
  cmd.accel = 0.0;
  cmd.brake = 0;
  if (plan->feasible == 0) {
    cmd.brake = 1;
    return cmd;
  }
  float err = (float)(plan->corridor - current);
  cmd.steer = 0.4 * err;
  if (cmd.steer > 1.0) {
    cmd.steer = 1.0;
  }
  if (cmd.steer < 0.0 - 1.0) {
    cmd.steer = 0.0 - 1.0;
  }
  float spd_err = target_speed - speed;
  cmd.accel = 0.2 * spd_err;
  return cmd;
}

int PackCanFrame(control_cmd* cmd, int* frame) {
  frame[0] = (int)(cmd->steer * 100.0);
  frame[1] = (int)(cmd->accel * 100.0);
  frame[2] = cmd->brake;
  int checksum = frame[0] + frame[1] + frame[2];
  frame[3] = checksum;
  return checksum;
}
|}

let driver_c =
  {|// mini_main.c — a deterministic multi-tick closed-loop run
int RunPipelineTicks(int ticks) {
  int width = 7;
  int height = 9;
  float* grid = (float*)malloc(width * height * sizeof(float));
  int* occupied = (int*)malloc(width * height * sizeof(int));
  obstacle* prev = (obstacle*)malloc(8 * sizeof(obstacle));
  obstacle* cur = (obstacle*)malloc(8 * sizeof(obstacle));
  int prev_count = 0;
  int* frame = (int*)malloc(4 * sizeof(int));
  int corridor = 3;
  float speed = 2.0;
  int collisions = 0;
  int braked = 0;
  for (int tick = 0; tick < ticks; ++tick) {
    g_frame_counter = g_frame_counter + 1;
    for (int i = 0; i < width * height; ++i) {
      grid[i] = 0.0;
    }
    int ox = (tick * 2) % width;
    grid[2 * width + ox] = 0.9;
    grid[5 * width + ((ox + 3) % width)] = 0.8;
    int count = DetectObstacles(grid, width, height, 0.5, cur, 8);
    TrackObstacles(prev, prev_count, cur, count);
    PredictObstacles(cur, count, 2, occupied, width, height);
    plan_result plan = PlanCorridor(occupied, width, height, corridor);
    control_cmd cmd = ComputeControl(corridor, &plan, speed, 3.0);
    if (cmd.brake == 1) {
      braked = braked + 1;
    } else {
      corridor = plan.corridor;
      speed = speed + cmd.accel;
    }
    if (occupied[4 * width + corridor] == 1) {
      collisions = collisions + 1;
    }
    PackCanFrame(&cmd, frame);
    for (int i = 0; i < count; ++i) {
      prev[i] = cur[i];
    }
    prev_count = count;
  }
  printf("ticks=%d collisions=%d braked=%d corridor=%d\n", ticks, collisions,
         braked, corridor);
  free(grid);
  free(occupied);
  free(prev);
  free(cur);
  free(frame);
  return collisions;
}

int main() {
  return RunPipelineTicks(12);
}
|}

let files =
  [
    ("mini/pipeline_types.c", types_c);
    ("mini/mini_perception.c", perception_c);
    ("mini/mini_prediction.c", prediction_c);
    ("mini/mini_planning.c", planning_c);
    ("mini/mini_control.c", control_c);
    ("mini/mini_main.c", driver_c);
  ]

let parse_all () =
  List.map
    (fun (path, content) -> Cfront.Parser.parse_file ~extra_types ~file:path content)
    files

let measured_files = List.filter (fun (p, _) -> p <> "mini/mini_main.c") files

let entry = "main"
