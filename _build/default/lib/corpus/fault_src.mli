(** Fault-injection scenarios: the dynamic face of Observation 6.  Each
    scenario drives a YOLO entry point with an invalid input; missing
    validation becomes an observable memory fault in the checked
    interpreter, while the few validated paths survive. *)

type expectation = Expect_fault | Expect_survive

type scenario = {
  sc_name : string;
  sc_description : string;
  sc_expect : expectation;
  sc_driver : string;  (** C source defining [int scenario()] *)
}

val scenarios : scenario list

type outcome = {
  scenario : scenario;
  faulted : bool;
  detail : string;  (** fault message or return value *)
  as_expected : bool;
}

(** Run every scenario, each in a fresh interpreter. *)
val run_all : unit -> outcome list

(** [(faults realized, faults expected, as-expected, total)]. *)
val summary : outcome list -> int * int * int * int
