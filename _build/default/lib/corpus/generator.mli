(** Deterministic generator of an Apollo-profile C++/CUDA codebase.

    Everything is driven by [seed]; the same seed always produces
    byte-identical sources.  Counted properties (functions over a
    complexity threshold, explicit casts, mutable globals, gotos,
    recursive functions, uninitialized reads, CUDA kernels) are driven by
    exact quotas from {!Apollo_profile}, not probabilities, so measured
    figures cannot drift between runs.

    Generated code is Google-style-clean (naming, layout, line length) —
    matching the paper's Observations 8 and 9 — while violating the
    substantive guidelines exactly as Apollo does. *)

val generate : ?seed:int -> Apollo_profile.module_spec list -> Cfront.Project.t
