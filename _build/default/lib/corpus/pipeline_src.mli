(** A runnable miniature of the Figure 1 AD pipeline in C: synthetic
    sensor grid -> detection -> tracking -> prediction -> corridor
    planning -> PD control -> CAN packing, executed closed-loop.  The
    driver's exit value is the collision count — zero when the planner's
    safety property holds. *)

val extra_types : string list
val files : (string * string) list
val parse_all : unit -> Cfront.Ast.tu list
val measured_files : (string * string) list
val entry : string
