(** Profiles for the other AD frameworks the paper names in Section 2
    (Autoware, Udacity), at their published scale, with the same
    statistical character — supporting the claim that "the conclusions we
    derive for Apollo ... hold to a large extent for all AD frameworks". *)

val autoware : Apollo_profile.module_spec list
val udacity : Apollo_profile.module_spec list

type framework = {
  fw_name : string;
  fw_specs : Apollo_profile.module_spec list;
  fw_seed : int;
}

val all_frameworks : framework list
