(** 2D and 3D stencil CUDA kernels, the open-source representatives used
    in the paper's Figure 6: GPU code coverage is measured by running the
    kernels on the CPU (the cuda4cpu approach) under the same coverage
    tooling as CPU code.

    The kernels follow the standard halo-guarded structure; the driver's
    test launches exercise the interior and most — not all — boundary
    combinations, so statement and branch coverage stay below 100%, which
    is the figure's observation. *)

let extra_types = []

let stencil2d_cu =
  {|// stencil2d.cu
__global__ void stencil2d_kernel(float* input, float* output, int width,
                                 int height, float c0, float c1) {
  int idx = blockIdx.x * blockDim.x + threadIdx.x;
  int x = idx % width;
  int y = idx / width;
  if (y >= height) {
    return;
  }
  if (x == 0 || x == width - 1 || y == 0 || y == height - 1) {
    output[idx] = input[idx];
    return;
  }
  float center = input[idx];
  float north = input[idx - width];
  float south = input[idx + width];
  float west = input[idx - 1];
  float east = input[idx + 1];
  float result = c0 * center + c1 * (north + south + west + east);
  if (result > 100.0) {
    result = 100.0;
  }
  if (result < 0.0 - 100.0) {
    result = 0.0 - 100.0;
  }
  output[idx] = result;
}

void run_stencil2d(float* host_in, float* host_out, int width, int height,
                   int iterations) {
  int n = width * height;
  float* dev_in;
  float* dev_out;
  cudaMalloc((void**)&dev_in, n * sizeof(float));
  cudaMalloc((void**)&dev_out, n * sizeof(float));
  cudaMemcpy(dev_in, host_in, n * sizeof(float), 1);
  for (int it = 0; it < iterations; ++it) {
    stencil2d_kernel<<<(n + 63) / 64, 64>>>(dev_in, dev_out, width, height,
                                            0.6, 0.1);
    float* tmp = dev_in;
    dev_in = dev_out;
    dev_out = tmp;
  }
  cudaMemcpy(host_out, dev_in, n * sizeof(float), 2);
  cudaFree(dev_in);
  cudaFree(dev_out);
}
|}

let stencil3d_cu =
  {|// stencil3d.cu
__global__ void stencil3d_kernel(float* input, float* output, int nx, int ny,
                                 int nz, float c0, float c1) {
  int idx = blockIdx.x * blockDim.x + threadIdx.x;
  int plane = nx * ny;
  int z = idx / plane;
  int rem = idx % plane;
  int y = rem / nx;
  int x = rem % nx;
  if (z >= nz) {
    return;
  }
  if (x == 0 || x == nx - 1) {
    output[idx] = input[idx];
    return;
  }
  if (y == 0 || y == ny - 1) {
    output[idx] = input[idx];
    return;
  }
  if (z == 0 || z == nz - 1) {
    output[idx] = input[idx];
    return;
  }
  float acc = c0 * input[idx];
  acc += c1 * input[idx - 1];
  acc += c1 * input[idx + 1];
  acc += c1 * input[idx - nx];
  acc += c1 * input[idx + nx];
  acc += c1 * input[idx - plane];
  acc += c1 * input[idx + plane];
  if (acc != acc) {
    acc = 0.0;
  }
  output[idx] = acc;
}

void run_stencil3d(float* host_in, float* host_out, int nx, int ny, int nz) {
  int n = nx * ny * nz;
  float* dev_in;
  float* dev_out;
  cudaMalloc((void**)&dev_in, n * sizeof(float));
  cudaMalloc((void**)&dev_out, n * sizeof(float));
  cudaMemcpy(dev_in, host_in, n * sizeof(float), 1);
  stencil3d_kernel<<<(n + 31) / 32, 32>>>(dev_in, dev_out, nx, ny, nz, 0.4,
                                          0.1);
  cudaMemcpy(host_out, dev_out, n * sizeof(float), 2);
  cudaFree(dev_in);
  cudaFree(dev_out);
}
|}

let driver_cu =
  {|// stencil_main.cu
int main() {
  int width = 8;
  int height = 6;
  int n2 = width * height;
  float* in2 = (float*)malloc(n2 * sizeof(float));
  float* out2 = (float*)malloc(n2 * sizeof(float));
  for (int i = 0; i < n2; ++i) {
    in2[i] = 0.5 * (float)(i % 13);
  }
  run_stencil2d(in2, out2, width, height, 2);
  float check2 = 0.0;
  for (int i = 0; i < n2; ++i) {
    check2 += out2[i];
  }
  printf("stencil2d checksum %f\n", check2);

  int nx = 5;
  int ny = 4;
  int nz = 3;
  int n3 = nx * ny * nz;
  float* in3 = (float*)malloc(n3 * sizeof(float));
  float* out3 = (float*)malloc(n3 * sizeof(float));
  for (int i = 0; i < n3; ++i) {
    in3[i] = 0.25 * (float)(i % 7);
  }
  run_stencil3d(in3, out3, nx, ny, nz);
  float check3 = 0.0;
  for (int i = 0; i < n3; ++i) {
    check3 += out3[i];
  }
  printf("stencil3d checksum %f\n", check3);
  free(in2);
  free(out2);
  free(in3);
  free(out3);
  return 0;
}
|}

let files =
  [
    ("stencil/stencil2d.cu", stencil2d_cu);
    ("stencil/stencil3d.cu", stencil3d_cu);
    ("stencil/stencil_main.cu", driver_cu);
  ]

let parse_all () =
  List.map
    (fun (path, content) -> Cfront.Parser.parse_file ~extra_types ~file:path content)
    files

let measured_files = List.filter (fun (p, _) -> p <> "stencil/stencil_main.cu") files

let entry = "main"
