(** Deterministic identifier generation in Apollo's (Google C++) naming
    style: CamelCase functions and types, snake_case locals, kConstant
    constants, g_-prefixed globals. *)

let verbs =
  [| "Estimate"; "Compute"; "Update"; "Track"; "Fuse"; "Project"; "Filter";
     "Predict"; "Plan"; "Smooth"; "Detect"; "Classify"; "Resolve"; "Publish";
     "Parse"; "Validate"; "Clamp"; "Interpolate"; "Merge"; "Select"; "Refine";
     "Sample"; "Extract"; "Align"; "Score" |]

let nouns =
  [| "Trajectory"; "Obstacle"; "Lane"; "Velocity"; "Boundary"; "Waypoint";
     "Signal"; "Curvature"; "Heading"; "Grid"; "Cloud"; "Frame"; "Sensor";
     "Route"; "Polygon"; "Anchor"; "Feature"; "Tensor"; "Cost"; "Margin";
     "Corridor"; "Contour"; "Segment"; "Spline"; "Horizon" |]

let suffixes =
  [| "Cost"; "Index"; "State"; "Buffer"; "Window"; "Offset"; "Limit"; "Score";
     "Delta"; "Ratio"; "Bound"; "Gain" |]

let snake_words =
  [| "lane"; "obstacle"; "speed"; "heading"; "margin"; "cost"; "delta";
     "ratio"; "count"; "index"; "offset"; "limit"; "score"; "width"; "bound";
     "gain"; "angle"; "curv"; "dist"; "weight" |]

let counter = ref 0

let reset () = counter := 0

let next_id () =
  incr counter;
  !counter

let function_name rng =
  Printf.sprintf "%s%s%s%d" (Util.Rng.pick_array rng verbs)
    (Util.Rng.pick_array rng nouns)
    (Util.Rng.pick_array rng suffixes)
    (next_id ())

let kernel_name rng =
  Printf.sprintf "%s%sKernel%d" (Util.Rng.pick_array rng verbs)
    (Util.Rng.pick_array rng nouns)
    (next_id ())

let struct_name rng =
  Printf.sprintf "%s%sInfo%d" (Util.Rng.pick_array rng nouns)
    (Util.Rng.pick_array rng suffixes)
    (next_id ())

let local_name rng =
  Printf.sprintf "%s_%s%d" (Util.Rng.pick_array rng snake_words)
    (Util.Rng.pick_array rng snake_words)
    (next_id ())

let global_name rng =
  Printf.sprintf "g_%s_%s%d" (Util.Rng.pick_array rng snake_words)
    (Util.Rng.pick_array rng snake_words)
    (next_id ())

let constant_name rng =
  Printf.sprintf "kMax%s%s%d" (Util.Rng.pick_array rng nouns)
    (Util.Rng.pick_array rng suffixes)
    (next_id ())

let field_name rng = Printf.sprintf "%s_%s" (Util.Rng.pick_array rng snake_words) (Util.Rng.pick_array rng snake_words)
