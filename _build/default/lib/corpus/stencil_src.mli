(** 2D and 3D stencil CUDA kernels (the Figure 6 subject): run on the CPU
    via the interpreter's kernel-launch loop, their halo/saturation
    branches keep statement and branch coverage below 100%. *)

val extra_types : string list
val files : (string * string) list
val parse_all : unit -> Cfront.Ast.tu list
val measured_files : (string * string) list
val entry : string
