(** Brook Auto portability analysis — the conformance check for the
    certifiable GPU stream subset of the paper's reference [14].

    A kernel is a stream kernel when each thread writes only the output
    element at its own index; arbitrary reads are expressible as declared
    gather streams; dynamic memory, scatter writes, unbounded loops and
    recursion fall outside the subset. *)

type blocker =
  | Dynamic_allocation
  | Shared_memory
  | Scatter_write  (** write through a pointer at a non-thread index *)
  | Unbounded_loop  (** while/do-while *)
  | Recursion_risk
  | Kernel_launch_inside

type classification =
  | Pure_stream  (** portable as-is *)
  | Needs_gather  (** portable once reads become gather streams *)
  | Not_portable of blocker list

type report = {
  kernel : string;  (** qualified name *)
  classification : classification;
  thread_index_vars : string list;
  writes_at_thread_index : int;
  scatter_writes : int;
  gather_reads : int;
}

val blocker_name : blocker -> string
val classification_name : classification -> string
val analyze_kernel : Cfront.Ast.func -> report
val of_files : Cfront.Project.parsed_file list -> report list

type summary = {
  total : int;
  pure_stream : int;
  needs_gather : int;
  not_portable : int;
}

val summarize : report list -> summary
