lib/cudasim/brook_auto.mli: Cfront
