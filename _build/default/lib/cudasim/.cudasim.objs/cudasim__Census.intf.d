lib/cudasim/census.mli: Cfront
