lib/cudasim/runner.mli: Census Cfront Coverage Result
