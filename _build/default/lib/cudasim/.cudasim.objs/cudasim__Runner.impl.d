lib/cudasim/runner.ml: Census Cfront Coverage List Result
