lib/cudasim/census.ml: Cfront List
