lib/cudasim/brook_auto.ml: Cfront Hashtbl List String
