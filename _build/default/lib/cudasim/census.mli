(** Static census of CUDA usage — the evidence behind the paper's
    Figure 4 and Observations 3, 4 and 12: CUDA code intrinsically builds
    on raw pointers and dynamically allocated device memory. *)

type t = {
  kernels : int;  (** [__global__] functions *)
  device_functions : int;  (** [__device__] functions *)
  kernel_launches : int;
  cuda_mallocs : int;
  cuda_memcpys : int;
  cuda_frees : int;
  kernel_pointer_params : int;  (** pointer parameters across all kernels *)
  kernel_params : int;
  kernels_without_bound_check : int;  (** no comparison guard in any [if] *)
  device_globals : int;  (** [__device__]/[__constant__] variables *)
}

val zero : t
val add : t -> t -> t
val has_bound_check : Cfront.Ast.func -> bool
val of_tu : Cfront.Ast.tu -> t
val of_files : Cfront.Project.parsed_file list -> t

(** Fraction of kernel parameters that are raw pointers. *)
val pointer_param_ratio : t -> float
