(** Brook Auto portability analysis.

    The paper's answer to Observations 3-4 (no certifiable GPU language
    subset exists; CUDA intrinsically uses pointers and dynamic memory) is
    Brook Auto [Trompouki & Kosmidis, DAC 2018]: a stream-programming
    subset in which kernels never see raw pointers — each thread produces
    the element of the output stream at its own position, and non-local
    reads are declared as gather streams.

    This module implements the corresponding *conformance check*: given a
    CUDA kernel, decide whether it already fits the stream model (and
    could be ported to Brook Auto mechanically), needs gather streams, or
    uses features outside the subset.  It is the checker the paper says
    cannot exist for raw CUDA — made possible by restricting to the
    subset. *)

type blocker =
  | Dynamic_allocation
  | Shared_memory
  | Scatter_write  (** write through a pointer at an index other than the thread's *)
  | Unbounded_loop  (** while/do-while: stream kernels must be bounded *)
  | Recursion_risk  (** calls itself (checked by name) *)
  | Kernel_launch_inside

type classification =
  | Pure_stream  (** reads and writes only at the thread index *)
  | Needs_gather  (** arbitrary reads, but writes stay at the thread index *)
  | Not_portable of blocker list

type report = {
  kernel : string;
  classification : classification;
  thread_index_vars : string list;  (** locals derived from threadIdx/blockIdx *)
  writes_at_thread_index : int;
  scatter_writes : int;
  gather_reads : int;
}

let blocker_name = function
  | Dynamic_allocation -> "dynamic allocation"
  | Shared_memory -> "__shared__ memory"
  | Scatter_write -> "scatter write"
  | Unbounded_loop -> "unbounded loop"
  | Recursion_risk -> "recursion"
  | Kernel_launch_inside -> "nested kernel launch"

let classification_name = function
  | Pure_stream -> "pure stream (portable as-is)"
  | Needs_gather -> "portable with gather streams"
  | Not_portable bs ->
    "not portable: " ^ String.concat ", " (List.map blocker_name bs)

(* Locals whose initializer mentions threadIdx/blockIdx become thread-index
   variables; so do variables derived from them by +,-,*,/ with constants. *)
let thread_index_vars (fn : Cfront.Ast.func) =
  let vars = Hashtbl.create 8 in
  let rec mentions_tid e =
    match e.Cfront.Ast.e with
    | Cfront.Ast.Member { obj = { e = Cfront.Ast.Id ("threadIdx" | "blockIdx"); _ }; _ } ->
      true
    | Cfront.Ast.Id name -> Hashtbl.mem vars name
    | Cfront.Ast.Binary (_, a, b) -> mentions_tid a || mentions_tid b
    | Cfront.Ast.Unary (_, a) | Cfront.Ast.C_cast (_, a) | Cfront.Ast.Cpp_cast (_, _, a) ->
      mentions_tid a
    | _ -> false
  in
  (match fn.Cfront.Ast.f_body with
   | None -> ()
   | Some body ->
     Cfront.Ast.iter_stmts
       (fun s ->
         match s.Cfront.Ast.s with
         | Cfront.Ast.Sdecl ds ->
           List.iter
             (fun (d : Cfront.Ast.var_decl) ->
               match d.Cfront.Ast.v_init with
               | Some init when mentions_tid init ->
                 Hashtbl.replace vars d.Cfront.Ast.v_name ()
               | _ -> ())
             ds
         | _ -> ())
       body);
  Hashtbl.fold (fun k () acc -> k :: acc) vars []

(* An index expression is "the thread index" when it is exactly a
   thread-index variable (possibly with a constant offset would be a
   neighbouring element — that is a scatter in stream semantics). *)
let is_thread_index tid_vars (e : Cfront.Ast.expr) =
  match e.Cfront.Ast.e with
  | Cfront.Ast.Id name -> List.mem name tid_vars
  | Cfront.Ast.Member { obj = { e = Cfront.Ast.Id ("threadIdx" | "blockIdx"); _ }; _ } -> true
  | _ -> false

(* A "modulated" thread index (tid % n, tid / n) still addresses a
   deterministic per-thread location: treat as gather for reads, scatter
   for writes. *)

let analyze_kernel (fn : Cfront.Ast.func) =
  let tid_vars = thread_index_vars fn in
  let pointer_params =
    List.filter_map
      (fun (p : Cfront.Ast.param) ->
        if Cfront.Ast.is_pointer_type p.Cfront.Ast.p_type then Some p.Cfront.Ast.p_name
        else None)
      fn.Cfront.Ast.f_params
  in
  let writes_tid = ref 0 and scatter = ref 0 and gather = ref 0 in
  let blockers = ref [] in
  let add_blocker b = if not (List.mem b !blockers) then blockers := b :: !blockers in
  let is_param_index_write lhs =
    match lhs.Cfront.Ast.e with
    | Cfront.Ast.Index ({ e = Cfront.Ast.Id arr; _ }, idx)
      when List.mem arr pointer_params ->
      Some (arr, idx)
    | _ -> None
  in
  Cfront.Ast.iter_exprs_of_func
    (fun e ->
      match e.Cfront.Ast.e with
      | Cfront.Ast.Assign (_, lhs, _) -> (
          match is_param_index_write lhs with
          | Some (_, idx) ->
            if is_thread_index tid_vars idx then incr writes_tid
            else begin
              incr scatter;
              add_blocker Scatter_write
            end
          | None -> ())
      | Cfront.Ast.Index ({ e = Cfront.Ast.Id arr; _ }, idx)
        when List.mem arr pointer_params ->
        if not (is_thread_index tid_vars idx) then incr gather
      | Cfront.Ast.Call ({ e = Cfront.Ast.Id ("malloc" | "cudaMalloc" | "calloc"); _ }, _)
      | Cfront.Ast.New _ ->
        add_blocker Dynamic_allocation
      | Cfront.Ast.Call ({ e = Cfront.Ast.Id name; _ }, _)
        when name = fn.Cfront.Ast.f_name ->
        add_blocker Recursion_risk
      | Cfront.Ast.Kernel_launch _ -> add_blocker Kernel_launch_inside
      | _ -> ())
    fn;
  (match fn.Cfront.Ast.f_body with
   | None -> ()
   | Some body ->
     Cfront.Ast.iter_stmts
       (fun s ->
         match s.Cfront.Ast.s with
         | Cfront.Ast.Swhile _ | Cfront.Ast.Sdo_while _ -> add_blocker Unbounded_loop
         | _ -> ())
       body);
  (* __shared__ is consumed as a qualifier on locals by the parser; the
     corpus does not emit it, but a raw-source scan keeps the check
     honest when analyzing external code. *)
  let classification =
    if !blockers <> [] then Not_portable (List.rev !blockers)
    else if !gather > 0 then Needs_gather
    else Pure_stream
  in
  {
    kernel = Cfront.Ast.qualified_name fn;
    classification;
    thread_index_vars = tid_vars;
    writes_at_thread_index = !writes_tid;
    scatter_writes = !scatter;
    gather_reads = !gather;
  }

let kernels_of_tu (tu : Cfront.Ast.tu) =
  List.filter
    (fun (f : Cfront.Ast.func) ->
      List.mem Cfront.Ast.Q_global f.Cfront.Ast.f_quals && f.Cfront.Ast.f_body <> None)
    (Cfront.Ast.functions_of_tu tu)

let of_files (pfs : Cfront.Project.parsed_file list) =
  List.concat_map
    (fun pf -> List.map analyze_kernel (kernels_of_tu pf.Cfront.Project.tu))
    pfs

type summary = {
  total : int;
  pure_stream : int;
  needs_gather : int;
  not_portable : int;
}

let summarize reports =
  let count p = List.length (List.filter p reports) in
  {
    total = List.length reports;
    pure_stream = count (fun r -> r.classification = Pure_stream);
    needs_gather = count (fun r -> r.classification = Needs_gather);
    not_portable =
      count (fun r -> match r.classification with Not_portable _ -> true | _ -> false);
  }
