(** Static census of CUDA usage — the evidence behind the paper's Figure 4
    discussion and Observations 3, 4 and 12: CUDA code intrinsically
    builds on pointers and dynamic device memory, and there is no language
    subset to check it against. *)

type t = {
  kernels : int;  (** [__global__] functions *)
  device_functions : int;  (** [__device__] functions *)
  kernel_launches : int;
  cuda_mallocs : int;
  cuda_memcpys : int;
  cuda_frees : int;
  kernel_pointer_params : int;  (** pointer parameters across all kernels *)
  kernel_params : int;
  kernels_without_bound_check : int;
  device_globals : int;  (** [__device__]/[__constant__] variables *)
}

let zero =
  { kernels = 0; device_functions = 0; kernel_launches = 0; cuda_mallocs = 0;
    cuda_memcpys = 0; cuda_frees = 0; kernel_pointer_params = 0;
    kernel_params = 0; kernels_without_bound_check = 0; device_globals = 0 }

let add a b =
  {
    kernels = a.kernels + b.kernels;
    device_functions = a.device_functions + b.device_functions;
    kernel_launches = a.kernel_launches + b.kernel_launches;
    cuda_mallocs = a.cuda_mallocs + b.cuda_mallocs;
    cuda_memcpys = a.cuda_memcpys + b.cuda_memcpys;
    cuda_frees = a.cuda_frees + b.cuda_frees;
    kernel_pointer_params = a.kernel_pointer_params + b.kernel_pointer_params;
    kernel_params = a.kernel_params + b.kernel_params;
    kernels_without_bound_check = a.kernels_without_bound_check + b.kernels_without_bound_check;
    device_globals = a.device_globals + b.device_globals;
  }

let has_bound_check (fn : Cfront.Ast.func) =
  let found = ref false in
  (match fn.Cfront.Ast.f_body with
   | None -> ()
   | Some body ->
     Cfront.Ast.iter_stmts
       (fun s ->
         match s.Cfront.Ast.s with
         | Cfront.Ast.Sif { cond; _ } ->
           Cfront.Ast.iter_exprs_of_expr
             (fun e ->
               match e.Cfront.Ast.e with
               | Cfront.Ast.Binary ((Cfront.Ast.Lt | Cfront.Ast.Le | Cfront.Ast.Ge
                                    | Cfront.Ast.Gt), _, _) ->
                 found := true
               | _ -> ())
             cond
         | _ -> ())
       body);
  !found

let of_tu (tu : Cfront.Ast.tu) =
  let fns = Cfront.Ast.functions_of_tu tu in
  let kernels_l =
    List.filter (fun f -> List.mem Cfront.Ast.Q_global f.Cfront.Ast.f_quals) fns
  in
  let device_fns =
    List.filter (fun f -> List.mem Cfront.Ast.Q_device f.Cfront.Ast.f_quals) fns
  in
  let count_calls name =
    let n = ref 0 in
    List.iter
      (fun fn ->
        Cfront.Ast.iter_exprs_of_func
          (fun e ->
            match e.Cfront.Ast.e with
            | Cfront.Ast.Call ({ e = Cfront.Ast.Id callee; _ }, _) when callee = name ->
              incr n
            | _ -> ())
          fn)
      fns;
    !n
  in
  let launches = ref 0 in
  List.iter
    (fun fn ->
      Cfront.Ast.iter_exprs_of_func
        (fun e ->
          match e.Cfront.Ast.e with
          | Cfront.Ast.Kernel_launch _ -> incr launches
          | _ -> ())
        fn)
    fns;
  let kparams = List.concat_map (fun f -> f.Cfront.Ast.f_params) kernels_l in
  {
    kernels = List.length kernels_l;
    device_functions = List.length device_fns;
    kernel_launches = !launches;
    cuda_mallocs = count_calls "cudaMalloc";
    cuda_memcpys = count_calls "cudaMemcpy";
    cuda_frees = count_calls "cudaFree";
    kernel_pointer_params =
      List.length
        (List.filter (fun p -> Cfront.Ast.is_pointer_type p.Cfront.Ast.p_type) kparams);
    kernel_params = List.length kparams;
    kernels_without_bound_check =
      List.length
        (List.filter
           (fun f -> f.Cfront.Ast.f_body <> None && not (has_bound_check f))
           kernels_l);
    device_globals =
      List.length
        (List.filter (fun g -> g.Cfront.Ast.g_device) (Cfront.Ast.globals_of_tu tu));
  }

let of_files (pfs : Cfront.Project.parsed_file list) =
  List.fold_left (fun acc pf -> add acc (of_tu pf.Cfront.Project.tu)) zero pfs

(** Pointer-parameter density of kernels: the Figure 4 observation that
    CUDA kernels are driven by raw pointer pairs. *)
let pointer_param_ratio c =
  if c.kernel_params = 0 then 0.0
  else float_of_int c.kernel_pointer_params /. float_of_int c.kernel_params
