(** Call-graph construction and recursion detection.

    Call targets are resolved best-effort by name: an unqualified callee
    matches a function with that simple name, preferring one in the
    caller's scope — what a linkerless source-level tool can see. *)

module SM : Map.S with type key = string

type t = {
  nodes : string list;  (** qualified names of defined functions *)
  edges : (string * string) list;  (** caller -> callee, both qualified *)
  calls_of : string list SM.t;
  callers_of : string list SM.t;
}

(** Raw callee names (unresolved) mentioned in a function body, including
    kernel launches and method-style calls. *)
val calls_in_body : Ast.func -> string list

val build : Ast.func list -> t

(** Resolved callees/callers of a qualified name (with multiplicity). *)
val callees : t -> string -> string list

val callers : t -> string -> string list

(** Distinct-callee / distinct-caller counts. *)
val fan_out : t -> string -> int

val fan_in : t -> string -> int

(** Tarjan's strongly-connected components. *)
val sccs : t -> string list list

(** Members of multi-node SCCs plus direct self-callers, sorted. *)
val recursive_functions : t -> string list
