(** Hand-rolled lexer for the C/C++/CUDA subset.

    Comments are skipped but counted (the LOC metric needs comment lines);
    preprocessor directives are expected to have been stripped by
    {!Preproc} before lexing (a directive reaching the lexer raises).  The
    lexer is total over the remaining character set: an unexpected
    character becomes a [Punct] of itself so that token-level checkers can
    still see it, with a diagnostic recorded. *)

type result = {
  tokens : Token.t list;
  comment_lines : int;  (** number of source lines containing a comment *)
  diagnostics : string list;
}

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  mutable comment_line_set : (int, unit) Hashtbl.t;
  mutable diags : string list;
}

let make_state ~file src =
  { src; file; pos = 0; line = 1; col = 1; comment_line_set = Hashtbl.create 64; diags = [] }

let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]
let peek2 st = if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]
let peek3 st = if st.pos + 2 >= String.length st.src then '\000' else st.src.[st.pos + 2]

let advance st =
  if not (eof st) then begin
    if st.src.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.col <- 1
    end
    else st.col <- st.col + 1;
    st.pos <- st.pos + 1
  end

let here st = Loc.make ~file:st.file ~line:st.line ~col:st.col

let mark_comment_line st = Hashtbl.replace st.comment_line_set st.line ()

let skip_line_comment st =
  mark_comment_line st;
  while (not (eof st)) && peek st <> '\n' do
    advance st
  done

let skip_block_comment st =
  (* Consume the opening "/*" then scan to the matching "*"^"/". *)
  advance st;
  advance st;
  mark_comment_line st;
  let rec go () =
    if eof st then st.diags <- "unterminated block comment" :: st.diags
    else if peek st = '*' && peek2 st = '/' then begin
      advance st;
      advance st
    end
    else begin
      mark_comment_line st;
      advance st;
      go ()
    end
  in
  go ()

let lex_ident st =
  let start = st.pos in
  while (not (eof st)) && Util.Strutil.is_ident_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let lex_number st =
  let start = st.pos in
  let is_float = ref false in
  let hex = peek st = '0' && (peek2 st = 'x' || peek2 st = 'X') in
  if hex then begin
    advance st;
    advance st;
    while (not (eof st)) && (Util.Strutil.is_alnum (peek st)) do advance st done
  end
  else begin
    while (not (eof st)) && Util.Strutil.is_digit (peek st) do advance st done;
    if peek st = '.' && Util.Strutil.is_digit (peek2 st) then begin
      is_float := true;
      advance st;
      while (not (eof st)) && Util.Strutil.is_digit (peek st) do advance st done
    end
    else if peek st = '.' && not (Util.Strutil.is_ident_start (peek2 st)) then begin
      is_float := true;
      advance st
    end;
    if peek st = 'e' || peek st = 'E' then begin
      is_float := true;
      advance st;
      if peek st = '+' || peek st = '-' then advance st;
      while (not (eof st)) && Util.Strutil.is_digit (peek st) do advance st done
    end;
    (* literal suffixes *)
    while peek st = 'f' || peek st = 'F' || peek st = 'l' || peek st = 'L'
          || peek st = 'u' || peek st = 'U' do
      if peek st = 'f' || peek st = 'F' then is_float := true;
      advance st
    done
  end;
  let raw = String.sub st.src start (st.pos - start) in
  (* 'f'/'F' are hex digits, so only u/U/l/L may be stripped from a hex
     literal's tail *)
  let strip_suffix s =
    let n = ref (String.length s) in
    while
      !n > 0
      && (match s.[!n - 1] with
          | 'l' | 'L' | 'u' | 'U' -> true
          | 'f' | 'F' -> not hex
          | _ -> false)
    do
      decr n
    done;
    String.sub s 0 !n
  in
  let body = strip_suffix raw in
  if !is_float then Token.Float_lit ((try float_of_string body with _ -> 0.0), raw)
  else
    let v = try Int64.of_string body with _ -> (try Int64.of_float (float_of_string body) with _ -> 0L) in
    Token.Int_lit (v, raw)

let lex_escaped st =
  (* After the backslash: translate the escape, defaulting to the raw char. *)
  advance st;
  let c = peek st in
  advance st;
  match c with
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c -> c

let lex_string st =
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then st.diags <- "unterminated string literal" :: st.diags
    else
      match peek st with
      | '"' -> advance st
      | '\\' -> Buffer.add_char buf (lex_escaped st); go ()
      | '\n' -> st.diags <- "newline in string literal" :: st.diags; advance st
      | c -> Buffer.add_char buf c; advance st; go ()
  in
  go ();
  Token.String_lit (Buffer.contents buf)

let lex_char st =
  advance st;
  let c = if peek st = '\\' then lex_escaped st else (let c = peek st in advance st; c) in
  if peek st = '\'' then advance st
  else st.diags <- "unterminated char literal" :: st.diags;
  Token.Char_lit c

(* Multi-character punctuators, longest first within each head character.
   "<<<" / ">>>" are CUDA kernel-launch delimiters. *)
let puncts3 = [ "<<<"; ">>>"; "<<="; ">>="; "..."; "->*" ]
let puncts2 =
  [ "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||"; "++"; "--"; "+="; "-=";
    "*="; "/="; "%="; "&="; "|="; "^="; "->"; "::" ]

let try_punct st =
  let try_list lst n =
    if st.pos + n <= String.length st.src then
      let s = String.sub st.src st.pos n in
      if List.mem s lst then Some s else None
    else None
  in
  match try_list puncts3 3 with
  | Some s -> Some s
  | None ->
    (match try_list puncts2 2 with
     | Some s -> Some s
     | None -> Some (String.make 1 (peek st)))

let tokenize ~file src =
  let st = make_state ~file src in
  let toks = ref [] in
  let emit kind loc = toks := { Token.kind; loc } :: !toks in
  let rec loop () =
    if eof st then ()
    else begin
      let c = peek st in
      if c = ' ' || c = '\t' || c = '\r' || c = '\n' then (advance st; loop ())
      else if c = '/' && peek2 st = '/' then (skip_line_comment st; loop ())
      else if c = '/' && peek2 st = '*' then (skip_block_comment st; loop ())
      else if c = '#' then begin
        st.diags <- Printf.sprintf "%s: preprocessor directive reached lexer" (Loc.to_string (here st)) :: st.diags;
        while (not (eof st)) && peek st <> '\n' do advance st done;
        loop ()
      end
      else begin
        let loc = here st in
        if Util.Strutil.is_ident_start c then begin
          let s = lex_ident st in
          if Token.is_keyword s then emit (Token.Keyword s) loc
          else emit (Token.Ident s) loc
        end
        else if Util.Strutil.is_digit c || (c = '.' && Util.Strutil.is_digit (peek2 st)) then
          emit (lex_number st) loc
        else if c = '"' then emit (lex_string st) loc
        else if c = '\'' then emit (lex_char st) loc
        else begin
          match try_punct st with
          | Some p ->
            String.iter (fun _ -> advance st) p;
            emit (Token.Punct p) loc
          | None -> advance st
        end;
        loop ()
      end
    end
  in
  loop ();
  emit Token.Eof (here st);
  ignore peek3;
  {
    tokens = List.rev !toks;
    comment_lines = Hashtbl.length st.comment_line_set;
    diagnostics = List.rev st.diags;
  }
