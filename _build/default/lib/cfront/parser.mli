(** Recursive-descent parser for the C/C++/CUDA subset.

    The parser is {b tolerant}: any top-level region it cannot parse is
    skipped (to the next balanced [;] or [}]) and recorded as
    {!Ast.Tunparsed} with a diagnostic — the behaviour of fuzzy industrial
    analyzers such as Lizard.  Inside function bodies parsing is strict; a
    failing body aborts only that definition.

    Expression and statement ids are globally unique across every
    translation unit parsed in the process, so coverage counters keyed on
    them never alias between files. *)

exception Parse_error of string * Loc.t

(** Parse one translation unit.

    [extra_types] seeds the type-name registry — the stand-in for type
    names that would arrive via header includes (see
    {!Cfront.Project.parse}, which derives them automatically for
    multi-file projects).  [file] is used for locations only; [source] is
    the raw text (the preprocessor runs internally). *)
val parse_file : ?extra_types:string list -> file:string -> string -> Ast.tu

(** Parse an expression in isolation (tests and tooling). *)
val parse_expr_string : string -> Ast.expr

(** Parse a statement in isolation (tests and tooling). *)
val parse_stmt_string : string -> Ast.stmt
