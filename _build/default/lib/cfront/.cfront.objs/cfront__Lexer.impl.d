lib/cfront/lexer.ml: Buffer Hashtbl Int64 List Loc Printf String Token Util
