lib/cfront/pretty.ml: Ast Char Int64 List Printf String
