lib/cfront/project.ml: Ast Lexer List Parser Token
