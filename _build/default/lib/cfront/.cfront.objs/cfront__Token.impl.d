lib/cfront/token.ml: Char List Loc Printf
