lib/cfront/ast.ml: List Loc Option Preproc Printf String Token
