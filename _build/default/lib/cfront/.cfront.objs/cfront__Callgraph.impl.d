lib/cfront/callgraph.ml: Ast Hashtbl List Map Option Stdlib String
