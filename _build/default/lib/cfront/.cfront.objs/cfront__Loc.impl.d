lib/cfront/loc.ml: Format Printf
