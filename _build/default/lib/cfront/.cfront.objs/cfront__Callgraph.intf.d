lib/cfront/callgraph.mli: Ast Map
