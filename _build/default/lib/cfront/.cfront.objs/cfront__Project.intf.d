lib/cfront/project.mli: Ast
