lib/cfront/parser.ml: Array Ast Buffer Hashtbl Int64 Lexer List Loc Preproc Printf Stdlib String Token
