lib/cfront/parser.mli: Ast Loc
