lib/cfront/preproc.ml: Buffer Hashtbl Lexer List Printf String Token Util
