(** Tokens of the C/C++/CUDA subset.

    Keywords are kept as a distinct constructor (rather than identifiers)
    because several checkers (MISRA, style) classify directly on token
    kinds.  The raw spelling of literals is retained so that token-level
    rules (e.g. MISRA's octal-constant rule) can inspect the original
    text. *)

type kind =
  | Ident of string
  | Keyword of string
  | Int_lit of int64 * string  (** value, raw spelling *)
  | Float_lit of float * string
  | String_lit of string
  | Char_lit of char
  | Punct of string
  | Eof

type t = { kind : kind; loc : Loc.t }

let keywords =
  [
    "void"; "bool"; "char"; "short"; "int"; "long"; "float"; "double";
    "signed"; "unsigned"; "const"; "volatile"; "static"; "extern"; "inline";
    "struct"; "class"; "union"; "enum"; "typedef"; "namespace"; "using";
    "public"; "private"; "protected"; "template"; "typename"; "auto";
    "if"; "else"; "while"; "do"; "for"; "switch"; "case"; "default";
    "break"; "continue"; "return"; "goto"; "sizeof"; "new"; "delete";
    "true"; "false"; "nullptr"; "this"; "operator"; "virtual"; "override";
    "static_cast"; "dynamic_cast"; "const_cast"; "reinterpret_cast";
    "try"; "catch"; "throw";
    (* CUDA function/space qualifiers *)
    "__global__"; "__device__"; "__host__"; "__shared__"; "__constant__";
    "__restrict__";
  ]

let keyword_set = List.sort_uniq compare keywords
let is_keyword s = List.mem s keyword_set

let kind_to_string = function
  | Ident s -> Printf.sprintf "ident %s" s
  | Keyword s -> Printf.sprintf "keyword %s" s
  | Int_lit (_, raw) -> Printf.sprintf "int %s" raw
  | Float_lit (_, raw) -> Printf.sprintf "float %s" raw
  | String_lit s -> Printf.sprintf "string %S" s
  | Char_lit c -> Printf.sprintf "char %C" c
  | Punct s -> Printf.sprintf "punct %s" s
  | Eof -> "eof"

let to_string t = kind_to_string t.kind

(** Spelling as it would appear in source (used by the pretty-printer and by
    token-stream round-trip tests). *)
let spelling = function
  | Ident s | Keyword s | Punct s -> s
  | Int_lit (_, raw) | Float_lit (_, raw) -> raw
  | String_lit s -> Printf.sprintf "%S" s
  | Char_lit c -> Printf.sprintf "'%s'" (Char.escaped c)
  | Eof -> ""
