(** Call graph construction and recursion detection.

    Call targets are resolved best-effort by name: an unqualified callee
    name matches a function with that simple name, preferring one in the
    same scope.  This matches what a linkerless source-level tool (the kind
    the paper used) can see. *)

module SM = Map.Make (String)

type t = {
  nodes : string list;  (** qualified function names with a definition *)
  edges : (string * string) list;  (** caller -> callee, both qualified *)
  calls_of : string list SM.t;
  callers_of : string list SM.t;
}

let calls_in_body (fn : Ast.func) =
  let acc = ref [] in
  Ast.iter_exprs_of_func
    (fun e ->
      match e.Ast.e with
      | Ast.Call ({ e = Ast.Id name; _ }, _) -> acc := name :: !acc
      | Ast.Kernel_launch { kernel = { e = Ast.Id name; _ }; _ } -> acc := name :: !acc
      | Ast.Call ({ e = Ast.Member { field; _ }; _ }, _) -> acc := field :: !acc
      | _ -> ())
    fn;
  List.rev !acc

let build (funcs : Ast.func list) =
  let defined = List.filter (fun f -> f.Ast.f_body <> None) funcs in
  let by_simple =
    List.fold_left
      (fun m f ->
        let q = Ast.qualified_name f in
        SM.update f.Ast.f_name (function None -> Some [ q ] | Some l -> Some (q :: l)) m)
      SM.empty defined
  in
  let by_qualified =
    List.fold_left (fun m f -> SM.add (Ast.qualified_name f) f m) SM.empty defined
  in
  let resolve ~caller_scope name =
    if SM.mem name by_qualified then Some name
    else
      let simple =
        match List.rev (String.split_on_char ':' name) with
        | last :: _ when last <> "" -> last
        | _ -> name
      in
      match SM.find_opt simple by_simple with
      | None -> None
      | Some [ q ] -> Some q
      | Some candidates ->
        (* prefer a candidate sharing the caller's scope prefix *)
        let scoped = String.concat "::" (caller_scope @ [ simple ]) in
        if List.mem scoped candidates then Some scoped
        else Some (List.nth candidates (List.length candidates - 1))
  in
  let edges =
    List.concat_map
      (fun f ->
        let caller = Ast.qualified_name f in
        List.filter_map
          (fun callee ->
            match resolve ~caller_scope:f.Ast.f_scope callee with
            | Some q -> Some (caller, q)
            | None -> None)
          (calls_in_body f))
      defined
  in
  let add_edge m (a, b) =
    SM.update a (function None -> Some [ b ] | Some l -> Some (b :: l)) m
  in
  let calls_of = List.fold_left add_edge SM.empty edges in
  let callers_of = List.fold_left (fun m (a, b) -> add_edge m (b, a)) SM.empty edges in
  {
    nodes = List.map Ast.qualified_name defined;
    edges;
    calls_of;
    callers_of;
  }

let callees t name = Option.value ~default:[] (SM.find_opt name t.calls_of)
let callers t name = Option.value ~default:[] (SM.find_opt name t.callers_of)

(** Fan-out (distinct callees) and fan-in (distinct callers). *)
let fan_out t name = List.length (List.sort_uniq compare (callees t name))
let fan_in t name = List.length (List.sort_uniq compare (callers t name))

(** Tarjan's strongly-connected components; components of size > 1 (or a
    self-loop) indicate recursion. *)
let sccs t =
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let result = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (Stdlib.min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (Stdlib.min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (callees t v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if w = v then w :: acc else pop (w :: acc)
      in
      result := pop [] :: !result
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) t.nodes;
  !result

(** Functions involved in recursion: members of a multi-node SCC, or
    direct self-callers. *)
let recursive_functions t =
  let multi =
    List.concat (List.filter (fun comp -> List.length comp > 1) (sccs t))
  in
  let selfloop = List.filter (fun v -> List.mem v (callees t v)) t.nodes in
  List.sort_uniq compare (multi @ selfloop)
