(** Source locations.  Lines and columns are 1-based, as editors count. *)

type t = { file : string; line : int; col : int }

let make ~file ~line ~col = { file; line; col }
let dummy = { file = "<none>"; line = 0; col = 0 }
let to_string l = Printf.sprintf "%s:%d:%d" l.file l.line l.col
let pp fmt l = Format.pp_print_string fmt (to_string l)
