(** Lightweight preprocessor.

    Runs over raw source text before lexing.  It records [#include] and
    [#define] directives, evaluates a small conditional language
    ([#if 0/1], [#ifdef], [#ifndef], [#else], [#endif], [defined(X)]), and
    strips directive lines.  Stripped and conditionally-excluded lines are
    replaced by blank lines so that every token's line number still refers
    to the original file.  Object-like macros are substituted later, on the
    token stream ({!expand_macros}), which avoids re-lexing text. *)

type directive =
  | Include of { path : string; system : bool }
  | Define of { name : string; body : string; function_like : bool }
  | Ifdef_like of string
  | Pragma of string
  | Other of string

type result = {
  text : string;  (** directive-free text, same number of lines as input *)
  directives : (int * directive) list;  (** line number, directive *)
  diagnostics : string list;
}

let parse_include line =
  (* after the "include" keyword *)
  let line = Util.Strutil.strip line in
  let n = String.length line in
  if n >= 2 && line.[0] = '<' then
    let close = try String.index line '>' with Not_found -> n - 1 in
    Some (String.sub line 1 (close - 1), true)
  else if n >= 2 && line.[0] = '"' then
    let close = try String.index_from line 1 '"' with Not_found -> n - 1 in
    Some (String.sub line 1 (close - 1), false)
  else None

let parse_define line =
  let line = Util.Strutil.strip line in
  let n = String.length line in
  let rec ident_end i =
    if i < n && Util.Strutil.is_ident_char line.[i] then ident_end (i + 1) else i
  in
  let stop = ident_end 0 in
  if stop = 0 then None
  else
    let name = String.sub line 0 stop in
    let function_like = stop < n && line.[stop] = '(' in
    let body =
      if function_like then
        (* skip the parameter list; body of function-like macros is kept
           verbatim for the record but never substituted *)
        match String.index_opt line ')' with
        | Some i -> Util.Strutil.strip (String.sub line (i + 1) (n - i - 1))
        | None -> ""
      else Util.Strutil.strip (String.sub line stop (n - stop))
    in
    Some (name, body, function_like)

(** Condition evaluation for [#if]: understands 0, 1, identifiers
    (defined => 1), defined(X), !expr.  Anything else evaluates to false
    with a diagnostic. *)
let eval_condition ~defined expr diags =
  let expr = Util.Strutil.strip expr in
  let rec eval e =
    let e = Util.Strutil.strip e in
    if e = "" then false
    else if e.[0] = '!' then not (eval (String.sub e 1 (String.length e - 1)))
    else if e = "0" then false
    else if e = "1" then true
    else if Util.Strutil.starts_with ~prefix:"defined" e then begin
      let inner =
        match (String.index_opt e '(', String.index_opt e ')') with
        | Some a, Some b when b > a -> String.sub e (a + 1) (b - a - 1)
        | _ -> String.sub e 7 (String.length e - 7)
      in
      defined (Util.Strutil.strip inner)
    end
    else if Util.Strutil.for_all Util.Strutil.is_ident_char e then defined e
    else begin
      diags := Printf.sprintf "unsupported #if condition %S treated as false" e :: !diags;
      false
    end
  in
  eval expr

type cond_frame = { parent_active : bool; mutable this_active : bool; mutable taken : bool }

let run ~file src =
  ignore file;
  let lines = Util.Strutil.lines src in
  let defines : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let defined name = Hashtbl.mem defines name in
  let directives = ref [] in
  let diags = ref [] in
  let stack : cond_frame list ref = ref [] in
  let active () = List.for_all (fun f -> f.parent_active && f.this_active) !stack in
  let out = Buffer.create (String.length src) in
  let directive_of line lineno =
    let body = Util.Strutil.strip line in
    (* body starts with '#' *)
    let rest = Util.Strutil.strip (String.sub body 1 (String.length body - 1)) in
    let word, args =
      match String.index_opt rest ' ' with
      | Some i -> (String.sub rest 0 i, String.sub rest i (String.length rest - i))
      | None -> (rest, "")
    in
    match word with
    | "include" ->
      (match parse_include args with
       | Some (path, system) ->
         if active () then directives := (lineno, Include { path; system }) :: !directives
       | None -> diags := Printf.sprintf "line %d: malformed #include" lineno :: !diags)
    | "define" ->
      if active () then (
        match parse_define args with
        | Some (name, body, function_like) ->
          if not function_like then Hashtbl.replace defines name body;
          directives := (lineno, Define { name; body; function_like }) :: !directives
        | None -> diags := Printf.sprintf "line %d: malformed #define" lineno :: !diags)
    | "undef" ->
      if active () then begin
        Hashtbl.remove defines (Util.Strutil.strip args);
        directives := (lineno, Other "undef") :: !directives
      end
    | "ifdef" ->
      let name = Util.Strutil.strip args in
      if active () then directives := (lineno, Ifdef_like name) :: !directives;
      let on = defined name in
      stack := { parent_active = active (); this_active = on; taken = on } :: !stack
    | "ifndef" ->
      let name = Util.Strutil.strip args in
      let on = not (defined name) in
      stack := { parent_active = active (); this_active = on; taken = on } :: !stack
    | "if" ->
      let on = eval_condition ~defined args diags in
      stack := { parent_active = active (); this_active = on; taken = on } :: !stack
    | "elif" ->
      (match !stack with
       | [] -> diags := Printf.sprintf "line %d: #elif without #if" lineno :: !diags
       | f :: _ ->
         if f.taken then f.this_active <- false
         else begin
           let on = eval_condition ~defined args diags in
           f.this_active <- on;
           if on then f.taken <- true
         end)
    | "else" ->
      (match !stack with
       | [] -> diags := Printf.sprintf "line %d: #else without #if" lineno :: !diags
       | f :: _ ->
         f.this_active <- not f.taken;
         if f.this_active then f.taken <- true)
    | "endif" ->
      (match !stack with
       | [] -> diags := Printf.sprintf "line %d: #endif without #if" lineno :: !diags
       | _ :: rest -> stack := rest)
    | "pragma" -> if active () then directives := (lineno, Pragma (Util.Strutil.strip args)) :: !directives
    | other -> if active () then directives := (lineno, Other other) :: !directives
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if i > 0 then Buffer.add_char out '\n';
      let stripped = Util.Strutil.strip line in
      if stripped <> "" && stripped.[0] = '#' then directive_of stripped lineno
      else if active () then Buffer.add_string out line)
    lines;
  if !stack <> [] then diags := "unterminated #if block" :: !diags;
  { text = Buffer.contents out; directives = List.rev !directives; diagnostics = List.rev !diags }

(** Object-like macro substitution on the token stream.  Each expansion
    re-lexes the macro body once (cached) and splices it in; recursive
    references expand up to a small depth bound to guarantee termination. *)
let expand_macros ~(defines : (string * string) list) (tokens : Token.t list) =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (name, body) ->
      let lexed = (Lexer.tokenize ~file:"<macro>" body).tokens in
      let toks = List.filter (fun t -> t.Token.kind <> Token.Eof) lexed in
      Hashtbl.replace table name toks)
    defines;
  let rec expand depth tok =
    match tok.Token.kind with
    | Token.Ident name when depth < 8 && Hashtbl.mem table name ->
      let body = Hashtbl.find table name in
      List.concat_map (fun t -> expand (depth + 1) { t with Token.loc = tok.Token.loc }) body
    | _ -> [ tok ]
  in
  List.concat_map (expand 0) tokens
