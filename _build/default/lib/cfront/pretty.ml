(** Pretty-printer for the AST back to C-like source.

    Used by round-trip tests (parse ∘ print ∘ parse is structurally stable)
    and by debugging dumps.  Output is deterministic. *)

open Ast

let unop_str = function
  | Neg -> "-" | Pos -> "+" | Lnot -> "!" | Bnot -> "~"
  | Pre_inc -> "++" | Pre_dec -> "--" | Deref -> "*" | Addr_of -> "&"

let postop_str = function Post_inc -> "++" | Post_dec -> "--"

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Shl -> "<<" | Shr -> ">>"
  | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | Band -> "&" | Bxor -> "^" | Bor -> "|" | Land -> "&&" | Lor -> "||"
  | Comma -> ","

let assign_str = function
  | A_eq -> "=" | A_add -> "+=" | A_sub -> "-=" | A_mul -> "*=" | A_div -> "/="
  | A_mod -> "%=" | A_shl -> "<<=" | A_shr -> ">>=" | A_and -> "&=" | A_or -> "|="
  | A_xor -> "^="

let cpp_cast_str = function
  | Static_cast -> "static_cast"
  | Dynamic_cast -> "dynamic_cast"
  | Const_cast -> "const_cast"
  | Reinterpret_cast -> "reinterpret_cast"

let rec expr_str e =
  match e.e with
  | Int_const v -> Int64.to_string v
  | Float_const v ->
    let s = Printf.sprintf "%.6g" v in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then s
    else s ^ ".0"
  | Bool_const b -> if b then "true" else "false"
  | Str_const s -> Printf.sprintf "%S" s
  | Char_const c -> Printf.sprintf "'%s'" (Char.escaped c)
  | Nullptr -> "nullptr"
  | Id s -> s
  | Unary (op, a) -> Printf.sprintf "(%s%s)" (unop_str op) (expr_str a)
  | Postfix (op, a) -> Printf.sprintf "(%s%s)" (expr_str a) (postop_str op)
  | Binary (Comma, a, b) -> Printf.sprintf "%s, %s" (expr_str a) (expr_str b)
  | Binary (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_str a) (binop_str op) (expr_str b)
  | Assign (op, a, b) ->
    Printf.sprintf "%s %s %s" (expr_str a) (assign_str op) (expr_str b)
  | Ternary (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (expr_str c) (expr_str a) (expr_str b)
  | Call (f, args) ->
    Printf.sprintf "%s(%s)" (expr_str f) (String.concat ", " (List.map expr_str args))
  | Kernel_launch { kernel; grid; block; args } ->
    Printf.sprintf "%s<<<%s, %s>>>(%s)" (expr_str kernel) (expr_str grid)
      (expr_str block)
      (String.concat ", " (List.map expr_str args))
  | Index (a, i) -> Printf.sprintf "%s[%s]" (expr_str a) (expr_str i)
  | Member { obj; arrow; field } ->
    Printf.sprintf "%s%s%s" (expr_str obj) (if arrow then "->" else ".") field
  | C_cast (ty, a) -> Printf.sprintf "(%s)%s" (type_to_string ty) (expr_str a)
  | Cpp_cast (k, ty, a) ->
    Printf.sprintf "%s<%s>(%s)" (cpp_cast_str k) (type_to_string ty) (expr_str a)
  | Sizeof_type ty -> Printf.sprintf "sizeof(%s)" (type_to_string ty)
  | Sizeof_expr a -> Printf.sprintf "sizeof %s" (expr_str a)
  | New { ty; array_size = Some n; _ } ->
    Printf.sprintf "new %s[%s]" (type_to_string ty) (expr_str n)
  | New { ty; array_size = None; init_args = [] } ->
    Printf.sprintf "new %s" (type_to_string ty)
  | New { ty; array_size = None; init_args } ->
    Printf.sprintf "new %s(%s)" (type_to_string ty)
      (String.concat ", " (List.map expr_str init_args))
  | Delete { array; target } ->
    Printf.sprintf "delete%s %s" (if array then "[]" else "") (expr_str target)
  | Throw None -> "throw"
  | Throw (Some a) -> Printf.sprintf "throw %s" (expr_str a)

let decl_str d =
  let init = match d.v_init with None -> "" | Some e -> " = " ^ expr_str e in
  (* array types print after the name *)
  let rec split_arrays ty suffix =
    match ty with
    | Tarray (inner, Some n) -> split_arrays inner (Printf.sprintf "%s[%d]" suffix n)
    | Tarray (inner, None) -> split_arrays inner (suffix ^ "[]")
    | _ -> (ty, suffix)
  in
  let base, suffix = split_arrays d.v_type "" in
  Printf.sprintf "%s %s%s%s" (type_to_string base) d.v_name suffix init

let rec stmt_lines indent st =
  let pad = String.make (indent * 2) ' ' in
  let line s = [ pad ^ s ] in
  match st.s with
  | Sexpr e -> line (expr_str e ^ ";")
  | Sempty -> line ";"
  | Sdecl ds -> List.concat_map (fun d -> line (decl_str d ^ ";")) ds
  | Sblock ss ->
    (pad ^ "{") :: List.concat_map (stmt_lines (indent + 1)) ss @ [ pad ^ "}" ]
  | Sif { cond; then_; else_ } ->
    let head = line (Printf.sprintf "if (%s)" (expr_str cond)) in
    let t = stmt_lines (indent + 1) then_ in
    let e =
      match else_ with
      | None -> []
      | Some s -> line "else" @ stmt_lines (indent + 1) s
    in
    head @ t @ e
  | Swhile (c, body) ->
    line (Printf.sprintf "while (%s)" (expr_str c)) @ stmt_lines (indent + 1) body
  | Sdo_while (body, c) ->
    line "do"
    @ stmt_lines (indent + 1) body
    @ line (Printf.sprintf "while (%s);" (expr_str c))
  | Sfor { init; cond; update; body } ->
    let init_s =
      match init with
      | Fi_empty -> ""
      | Fi_expr e -> expr_str e
      | Fi_decl ds -> String.concat ", " (List.map decl_str ds)
    in
    let cond_s = match cond with None -> "" | Some e -> expr_str e in
    let upd_s = match update with None -> "" | Some e -> expr_str e in
    line (Printf.sprintf "for (%s; %s; %s)" init_s cond_s upd_s)
    @ stmt_lines (indent + 1) body
  | Sswitch (e, body) ->
    line (Printf.sprintf "switch (%s)" (expr_str e)) @ stmt_lines (indent + 1) body
  | Scase e -> line (Printf.sprintf "case %s:" (expr_str e))
  | Sdefault -> line "default:"
  | Sbreak -> line "break;"
  | Scontinue -> line "continue;"
  | Sreturn None -> line "return;"
  | Sreturn (Some e) -> line (Printf.sprintf "return %s;" (expr_str e))
  | Sgoto l -> line (Printf.sprintf "goto %s;" l)
  | Slabel (l, inner) -> line (l ^ ":") @ stmt_lines indent inner
  | Stry { body; catches } ->
    line "try"
    @ stmt_lines (indent + 1) body
    @ List.concat_map
        (fun (param, handler) ->
          line (Printf.sprintf "catch (%s)" param) @ stmt_lines (indent + 1) handler)
        catches

let func_qual_str = function
  | Q_global -> "__global__"
  | Q_device -> "__device__"
  | Q_host -> "__host__"
  | Q_static -> "static"
  | Q_inline -> "inline"
  | Q_virtual -> "virtual"
  | Q_extern -> "extern"

let func_str (f : func) =
  let quals = String.concat "" (List.map (fun q -> func_qual_str q ^ " ") f.f_quals) in
  let params =
    String.concat ", "
      (List.map (fun p -> Printf.sprintf "%s %s" (type_to_string p.p_type) p.p_name) f.f_params)
  in
  let head = Printf.sprintf "%s%s %s(%s)" quals (type_to_string f.f_ret) f.f_name params in
  match f.f_body with
  | None -> head ^ ";"
  | Some body -> head ^ "\n" ^ String.concat "\n" (stmt_lines 0 body)

let rec top_lines top =
  match top with
  | Tfunc f -> [ func_str f ]
  | Tglobal g ->
    let q = (if g.g_static then "static " else "") ^ (if g.g_device then "__device__ " else "") in
    [ q ^ decl_str g.g_decl ^ ";" ]
  | Ttypedef (name, ty) -> [ Printf.sprintf "typedef %s %s;" (type_to_string ty) name ]
  | Tenum e ->
    let items =
      String.concat ", "
        (List.map
           (fun (n, v) ->
             match v with None -> n | Some i -> Printf.sprintf "%s = %d" n i)
           e.en_items)
    in
    [ Printf.sprintf "enum %s { %s };" e.en_name items ]
  | Trecord r ->
    let kw = match r.r_kind with Rstruct -> "struct" | Rclass -> "class" in
    let fields =
      List.map (fun (_, d) -> "  " ^ decl_str d ^ ";") r.r_fields
    in
    let methods = List.concat_map (fun m -> [ "  " ^ func_str m ]) r.r_methods in
    [ Printf.sprintf "%s %s {" kw r.r_name ] @ fields @ methods @ [ "};" ]
  | Tnamespace (name, inner) ->
    [ Printf.sprintf "namespace %s {" name ]
    @ List.concat_map top_lines inner
    @ [ "}" ]
  | Tusing s -> [ Printf.sprintf "using %s;" s ]
  | Tunparsed { tokens_skipped; _ } ->
    [ Printf.sprintf "/* unparsed region: %d tokens */" tokens_skipped ]

let tu_str (tu : tu) = String.concat "\n" (List.concat_map top_lines tu.tops) ^ "\n"
