lib/dnn/yolo.ml: Layer List Util
