lib/dnn/layer.ml: Printf
