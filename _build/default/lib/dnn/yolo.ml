(** The YOLOv2 network used by Apollo's camera object-detection pipeline
    (Redmon et al., CVPR 2016; Darknet yolov2 config), at 416x416 input.

    This layer stack drives the Figure 7 experiment: every convolution is
    lowered to a GEMM/conv workload and timed under each library model. *)

let conv ~in_c ~out_c ~ksize ~stride ~pad ~hw =
  Layer.Conv
    { Layer.in_c; out_c; ksize; stride; pad; in_h = hw; in_w = hw; batch = 1 }

let maxpool ~c ~hw =
  Layer.Maxpool { Layer.mp_c = c; mp_size = 2; mp_stride = 2; mp_h = hw; mp_w = hw }

(** Full YOLOv2 (the Apollo perception backbone variant). *)
let yolov2 =
  [
    conv ~in_c:3 ~out_c:32 ~ksize:3 ~stride:1 ~pad:1 ~hw:416;
    maxpool ~c:32 ~hw:416;
    conv ~in_c:32 ~out_c:64 ~ksize:3 ~stride:1 ~pad:1 ~hw:208;
    maxpool ~c:64 ~hw:208;
    conv ~in_c:64 ~out_c:128 ~ksize:3 ~stride:1 ~pad:1 ~hw:104;
    conv ~in_c:128 ~out_c:64 ~ksize:1 ~stride:1 ~pad:0 ~hw:104;
    conv ~in_c:64 ~out_c:128 ~ksize:3 ~stride:1 ~pad:1 ~hw:104;
    maxpool ~c:128 ~hw:104;
    conv ~in_c:128 ~out_c:256 ~ksize:3 ~stride:1 ~pad:1 ~hw:52;
    conv ~in_c:256 ~out_c:128 ~ksize:1 ~stride:1 ~pad:0 ~hw:52;
    conv ~in_c:128 ~out_c:256 ~ksize:3 ~stride:1 ~pad:1 ~hw:52;
    maxpool ~c:256 ~hw:52;
    conv ~in_c:256 ~out_c:512 ~ksize:3 ~stride:1 ~pad:1 ~hw:26;
    conv ~in_c:512 ~out_c:256 ~ksize:1 ~stride:1 ~pad:0 ~hw:26;
    conv ~in_c:256 ~out_c:512 ~ksize:3 ~stride:1 ~pad:1 ~hw:26;
    conv ~in_c:512 ~out_c:256 ~ksize:1 ~stride:1 ~pad:0 ~hw:26;
    conv ~in_c:256 ~out_c:512 ~ksize:3 ~stride:1 ~pad:1 ~hw:26;
    maxpool ~c:512 ~hw:26;
    conv ~in_c:512 ~out_c:1024 ~ksize:3 ~stride:1 ~pad:1 ~hw:13;
    conv ~in_c:1024 ~out_c:512 ~ksize:1 ~stride:1 ~pad:0 ~hw:13;
    conv ~in_c:512 ~out_c:1024 ~ksize:3 ~stride:1 ~pad:1 ~hw:13;
    conv ~in_c:1024 ~out_c:512 ~ksize:1 ~stride:1 ~pad:0 ~hw:13;
    conv ~in_c:512 ~out_c:1024 ~ksize:3 ~stride:1 ~pad:1 ~hw:13;
    conv ~in_c:1024 ~out_c:1024 ~ksize:3 ~stride:1 ~pad:1 ~hw:13;
    conv ~in_c:1024 ~out_c:1024 ~ksize:3 ~stride:1 ~pad:1 ~hw:13;
    conv ~in_c:1024 ~out_c:425 ~ksize:1 ~stride:1 ~pad:0 ~hw:13;
    Layer.Region { classes = 80; anchors = 5; side = 13 };
  ]

(** Tiny-YOLO variant (used for quick examples and tests). *)
let tiny_yolo =
  [
    conv ~in_c:3 ~out_c:16 ~ksize:3 ~stride:1 ~pad:1 ~hw:416;
    maxpool ~c:16 ~hw:416;
    conv ~in_c:16 ~out_c:32 ~ksize:3 ~stride:1 ~pad:1 ~hw:208;
    maxpool ~c:32 ~hw:208;
    conv ~in_c:32 ~out_c:64 ~ksize:3 ~stride:1 ~pad:1 ~hw:104;
    maxpool ~c:64 ~hw:104;
    conv ~in_c:64 ~out_c:128 ~ksize:3 ~stride:1 ~pad:1 ~hw:52;
    maxpool ~c:128 ~hw:52;
    conv ~in_c:128 ~out_c:256 ~ksize:3 ~stride:1 ~pad:1 ~hw:26;
    maxpool ~c:256 ~hw:26;
    conv ~in_c:256 ~out_c:512 ~ksize:3 ~stride:1 ~pad:1 ~hw:13;
    conv ~in_c:512 ~out_c:1024 ~ksize:3 ~stride:1 ~pad:1 ~hw:13;
    conv ~in_c:1024 ~out_c:425 ~ksize:1 ~stride:1 ~pad:0 ~hw:13;
    Layer.Region { classes = 80; anchors = 5; side = 13 };
  ]

let total_flops net = Util.Stats.sum_int (List.map Layer.flops net)

let convs net =
  List.filter_map (function Layer.Conv c -> Some c | _ -> None) net
