(** Neural-network layer shapes.

    Only the shape arithmetic matters here: the GPU performance model
    consumes layer dimensions (lowered to GEMM/conv workloads), and the
    corpus embeds a small runnable YOLO in C.  Shapes follow the
    Darknet/YOLO convention: feature maps are C x H x W. *)

type conv = {
  in_c : int;
  out_c : int;
  ksize : int;
  stride : int;
  pad : int;
  in_h : int;
  in_w : int;
  batch : int;
}

type maxpool = { mp_c : int; mp_size : int; mp_stride : int; mp_h : int; mp_w : int }

type t =
  | Conv of conv
  | Maxpool of maxpool
  | Region of { classes : int; anchors : int; side : int }

let conv_out_h c = ((c.in_h + (2 * c.pad) - c.ksize) / c.stride) + 1
let conv_out_w c = ((c.in_w + (2 * c.pad) - c.ksize) / c.stride) + 1

(** im2col lowering of a convolution to GEMM:
    M = out_c, K = in_c * k * k, N = out_h * out_w. *)
let conv_gemm_dims c =
  (c.out_c, c.in_c * c.ksize * c.ksize, conv_out_h c * conv_out_w c)

let conv_flops c =
  let m, k, n = conv_gemm_dims c in
  2 * m * k * n * c.batch

(** Bytes moved by the convolution assuming fp32 and a single pass
    (input + weights + output), the roofline lower bound. *)
let conv_bytes c =
  let input = c.in_c * c.in_h * c.in_w in
  let weights = c.out_c * c.in_c * c.ksize * c.ksize in
  let output = c.out_c * conv_out_h c * conv_out_w c in
  4 * c.batch * (input + output) + (4 * weights)

let maxpool_out_h p = ((p.mp_h - p.mp_size) / p.mp_stride) + 1
let maxpool_out_w p = ((p.mp_w - p.mp_size) / p.mp_stride) + 1

let maxpool_flops p =
  p.mp_c * maxpool_out_h p * maxpool_out_w p * p.mp_size * p.mp_size

let name = function
  | Conv c -> Printf.sprintf "conv%dx%d/%d %dx%dx%d->%d" c.ksize c.ksize c.stride c.in_c c.in_h c.in_w c.out_c
  | Maxpool p -> Printf.sprintf "maxpool%d/%d %dx%dx%d" p.mp_size p.mp_stride p.mp_c p.mp_h p.mp_w
  | Region r -> Printf.sprintf "region %d classes" r.classes

let flops = function
  | Conv c -> conv_flops c
  | Maxpool p -> maxpool_flops p
  | Region r -> r.side * r.side * r.anchors * (r.classes + 5) * 10
