(* Tests for the DNN shape model and the GPU performance model. *)

let conv ~in_c ~out_c ~ksize ~stride ~pad ~hw =
  { Dnn.Layer.in_c; out_c; ksize; stride; pad; in_h = hw; in_w = hw; batch = 1 }

(* ------------------------------------------------------------------ *)
(* Layer shapes and FLOPs                                               *)
(* ------------------------------------------------------------------ *)

let test_conv_output_dims () =
  let c = conv ~in_c:3 ~out_c:32 ~ksize:3 ~stride:1 ~pad:1 ~hw:416 in
  Alcotest.(check int) "same padding keeps size" 416 (Dnn.Layer.conv_out_h c);
  let s2 = conv ~in_c:3 ~out_c:64 ~ksize:3 ~stride:2 ~pad:1 ~hw:416 in
  Alcotest.(check int) "stride halves" 208 (Dnn.Layer.conv_out_h s2)

let test_conv_gemm_dims () =
  let c = conv ~in_c:64 ~out_c:128 ~ksize:3 ~stride:1 ~pad:1 ~hw:52 in
  let m, k, n = Dnn.Layer.conv_gemm_dims c in
  Alcotest.(check int) "M = out channels" 128 m;
  Alcotest.(check int) "K = in_c*k*k" (64 * 9) k;
  Alcotest.(check int) "N = out pixels" (52 * 52) n

let test_conv_flops_formula () =
  let c = conv ~in_c:2 ~out_c:4 ~ksize:1 ~stride:1 ~pad:0 ~hw:8 in
  (* 2 * M*K*N = 2 * 4*2*64 *)
  Alcotest.(check int) "exact flops" 1024 (Dnn.Layer.conv_flops c)

let test_maxpool_dims () =
  let p = { Dnn.Layer.mp_c = 16; mp_size = 2; mp_stride = 2; mp_h = 416; mp_w = 416 } in
  Alcotest.(check int) "halved" 208 (Dnn.Layer.maxpool_out_h p)

let test_yolov2_structure () =
  Alcotest.(check int) "21 conv layers" 21 (List.length (Dnn.Yolo.convs Dnn.Yolo.yolov2));
  let gflops = float_of_int (Dnn.Yolo.total_flops Dnn.Yolo.yolov2) /. 1e9 in
  (* Darknet reports ~29.4 BFLOP for yolov2-416; our stack omits the
     reorg/route passthrough concat, landing slightly below *)
  Alcotest.(check bool) "20-35 GFLOP" true (gflops > 20.0 && gflops < 35.0)

let test_tiny_yolo_cheaper () =
  Alcotest.(check bool) "tiny < full" true
    (Dnn.Yolo.total_flops Dnn.Yolo.tiny_yolo < Dnn.Yolo.total_flops Dnn.Yolo.yolov2)

(* ------------------------------------------------------------------ *)
(* Workloads                                                            *)
(* ------------------------------------------------------------------ *)

let test_workload_gemm_flops () =
  let w = Gpuperf.Workload.gemm 100 200 300 in
  Alcotest.(check (float 1.0)) "2MNK" 12_000_000.0 (Gpuperf.Workload.flops w)

let test_workload_intensity_positive () =
  let w = Gpuperf.Workload.gemm 64 64 64 in
  Alcotest.(check bool) "positive" true (Gpuperf.Workload.intensity w > 0.0)

let test_winograd_eligibility () =
  let w3 = Gpuperf.Workload.Conv (conv ~in_c:64 ~out_c:64 ~ksize:3 ~stride:1 ~pad:1 ~hw:28) in
  let w1 = Gpuperf.Workload.Conv (conv ~in_c:64 ~out_c:64 ~ksize:1 ~stride:1 ~pad:0 ~hw:28) in
  Alcotest.(check bool) "3x3 s1 eligible" true (Gpuperf.Workload.is_winograd_eligible w3);
  Alcotest.(check bool) "1x1 not" false (Gpuperf.Workload.is_winograd_eligible w1);
  Alcotest.(check bool) "gemm not" false
    (Gpuperf.Workload.is_winograd_eligible (Gpuperf.Workload.gemm 8 8 8))

(* ------------------------------------------------------------------ *)
(* Library models                                                       *)
(* ------------------------------------------------------------------ *)

let gpu = Gpuperf.Device.titan_v
let cpu = Gpuperf.Device.xeon_e5

let big_gemm = Gpuperf.Workload.gemm 4096 4096 4096

let test_times_positive () =
  List.iter
    (fun lib ->
      Alcotest.(check bool)
        (lib.Gpuperf.Library_model.lib_name ^ " positive time") true
        (lib.Gpuperf.Library_model.time_ms big_gemm > 0.0))
    [ Gpuperf.Library_model.cublas gpu; Gpuperf.Library_model.cutlass gpu;
      Gpuperf.Library_model.cudnn gpu; Gpuperf.Library_model.isaac gpu;
      Gpuperf.Library_model.atlas cpu; Gpuperf.Library_model.openblas cpu ]

let test_model_deterministic () =
  let lib = Gpuperf.Library_model.cublas gpu in
  Alcotest.(check (float 1e-12)) "same workload same time"
    (lib.Gpuperf.Library_model.time_ms big_gemm)
    (lib.Gpuperf.Library_model.time_ms big_gemm)

let test_more_flops_more_time () =
  let lib = Gpuperf.Library_model.cublas gpu in
  let small = Gpuperf.Workload.gemm 512 512 512 in
  Alcotest.(check bool) "monotone in size" true
    (lib.Gpuperf.Library_model.time_ms big_gemm
     > lib.Gpuperf.Library_model.time_ms small)

let test_cpu_much_slower () =
  let cudnn = Gpuperf.Library_model.cudnn gpu in
  let atlas = Gpuperf.Library_model.atlas cpu in
  let w = Gpuperf.Workload.Conv (conv ~in_c:256 ~out_c:512 ~ksize:3 ~stride:1 ~pad:1 ~hw:26) in
  let ratio =
    atlas.Gpuperf.Library_model.time_ms w /. cudnn.Gpuperf.Library_model.time_ms w
  in
  Alcotest.(check bool) "about two orders of magnitude" true (ratio > 40.0)

let test_open_vs_closed_competitive () =
  let ratios = List.map snd (Gpuperf.Suites.gemm_comparison ~device:gpu) in
  List.iter
    (fun r ->
      Alcotest.(check bool) "CUTLASS within 0.7..1.3 of cuBLAS" true (r > 0.7 && r < 1.3))
    ratios;
  let g = Util.Stats.geomean ratios in
  Alcotest.(check bool) "geomean close to parity" true (g > 0.85 && g < 1.1)

let test_isaac_vs_cudnn_competitive () =
  let ratios = List.map (fun (_, _, r) -> r) (Gpuperf.Suites.conv_comparison ~device:gpu) in
  List.iter
    (fun r ->
      Alcotest.(check bool) "ISAAC within 0.6..1.5 of cuDNN" true (r > 0.6 && r < 1.5))
    ratios

let test_winograd_helps_cudnn () =
  let cudnn = Gpuperf.Library_model.cudnn gpu in
  let eligible = Gpuperf.Workload.Conv (conv ~in_c:256 ~out_c:256 ~ksize:3 ~stride:1 ~pad:1 ~hw:52) in
  let not_eligible = Gpuperf.Workload.Conv (conv ~in_c:256 ~out_c:256 ~ksize:3 ~stride:2 ~pad:1 ~hw:52) in
  (* per-output-flop time should be lower on the Winograd-eligible conv *)
  let per_flop w = cudnn.Gpuperf.Library_model.time_ms w /. Gpuperf.Workload.flops w in
  Alcotest.(check bool) "winograd speedup" true (per_flop eligible < per_flop not_eligible)

(* ------------------------------------------------------------------ *)
(* Figure 7 end-to-end shape                                            *)
(* ------------------------------------------------------------------ *)

let rows = lazy (Gpuperf.Yolo_bench.run ~gpu ~cpu ())

let find impl =
  List.find (fun r -> r.Gpuperf.Yolo_bench.impl = impl) (Lazy.force rows)

let test_fig7_gpu_within_budget () =
  List.iter
    (fun impl ->
      Alcotest.(check bool) (impl ^ " under 10ms") true
        ((find impl).Gpuperf.Yolo_bench.total_ms < 10.0))
    [ "cuDNN"; "cuBLAS"; "ISAAC"; "CUTLASS" ]

let test_fig7_cpu_two_orders () =
  Alcotest.(check bool) "ATLAS ~100x+" true
    ((find "ATLAS").Gpuperf.Yolo_bench.vs_baseline > 80.0);
  Alcotest.(check bool) "OpenBLAS ~100x" true
    ((find "OpenBLAS").Gpuperf.Yolo_bench.vs_baseline > 50.0)

let test_fig7_open_competitive () =
  Alcotest.(check bool) "ISAAC within 25% of cuDNN" true
    ((find "ISAAC").Gpuperf.Yolo_bench.vs_baseline < 1.25);
  Alcotest.(check bool) "CUTLASS within 50% of cuDNN" true
    ((find "CUTLASS").Gpuperf.Yolo_bench.vs_baseline < 1.5)

let test_per_layer_sums_to_total () =
  let lib = Gpuperf.Library_model.cudnn gpu in
  let per_layer = Gpuperf.Yolo_bench.per_layer lib Dnn.Yolo.yolov2 in
  let sum = Util.Stats.sum_float (List.map snd per_layer) in
  let total = Gpuperf.Library_model.network_time_ms lib Dnn.Yolo.yolov2 in
  (* per_layer omits the per-launch overhead on non-conv layers *)
  Alcotest.(check bool) "close" true (abs_float (sum -. total) /. total < 0.05)

let prop_model_monotone_in_k =
  QCheck.Test.make ~name:"GEMM time grows with K" ~count:50
    QCheck.(pair (int_range 64 2048) (int_range 64 1024))
    (fun (k1, dk) ->
      let lib = Gpuperf.Library_model.cublas gpu in
      let t1 = lib.Gpuperf.Library_model.time_ms (Gpuperf.Workload.gemm 1024 1024 k1) in
      let t2 =
        lib.Gpuperf.Library_model.time_ms (Gpuperf.Workload.gemm 1024 1024 (k1 + (4 * dk)))
      in
      t2 > t1 *. 0.95)

let () =
  Alcotest.run "dnn-gpuperf"
    [
      ( "layers",
        [
          Alcotest.test_case "conv output dims" `Quick test_conv_output_dims;
          Alcotest.test_case "conv gemm dims" `Quick test_conv_gemm_dims;
          Alcotest.test_case "conv flops" `Quick test_conv_flops_formula;
          Alcotest.test_case "maxpool dims" `Quick test_maxpool_dims;
          Alcotest.test_case "yolov2 structure" `Quick test_yolov2_structure;
          Alcotest.test_case "tiny cheaper" `Quick test_tiny_yolo_cheaper;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "gemm flops" `Quick test_workload_gemm_flops;
          Alcotest.test_case "intensity" `Quick test_workload_intensity_positive;
          Alcotest.test_case "winograd eligibility" `Quick test_winograd_eligibility;
        ] );
      ( "library-models",
        [
          Alcotest.test_case "times positive" `Quick test_times_positive;
          Alcotest.test_case "deterministic" `Quick test_model_deterministic;
          Alcotest.test_case "monotone in size" `Quick test_more_flops_more_time;
          Alcotest.test_case "cpu much slower" `Quick test_cpu_much_slower;
          Alcotest.test_case "cutlass competitive" `Quick test_open_vs_closed_competitive;
          Alcotest.test_case "isaac competitive" `Quick test_isaac_vs_cudnn_competitive;
          Alcotest.test_case "winograd helps" `Quick test_winograd_helps_cudnn;
          QCheck_alcotest.to_alcotest prop_model_monotone_in_k;
        ] );
      ( "fig7",
        [
          Alcotest.test_case "gpu within budget" `Quick test_fig7_gpu_within_budget;
          Alcotest.test_case "cpu two orders" `Quick test_fig7_cpu_two_orders;
          Alcotest.test_case "open competitive" `Quick test_fig7_open_competitive;
          Alcotest.test_case "per-layer sums" `Quick test_per_layer_sums_to_total;
        ] );
    ]
