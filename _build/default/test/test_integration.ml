(* End-to-end integration tests: the full audit pipeline on the
   reduced-scale corpus, cross-checking the artifacts against each other
   and against the paper's headline numbers. *)

let ratios =
  lazy
    (let d = Gpuperf.Device.titan_v in
     List.map (fun (l, r) -> (l, r)) (Gpuperf.Suites.gemm_comparison ~device:d)
     @ List.map (fun (l, _, r) -> (l, r)) (Gpuperf.Suites.conv_comparison ~device:d))

let audit =
  lazy
    (Iso26262.Audit.run ~specs:Corpus.Apollo_profile.small
       ~open_vs_closed:(Lazy.force ratios) ())

let test_audit_completes () =
  let a = Lazy.force audit in
  Alcotest.(check int) "8 coding findings" 8 (List.length a.Iso26262.Audit.coding);
  Alcotest.(check int) "7 architecture findings" 7
    (List.length a.Iso26262.Audit.architecture);
  Alcotest.(check int) "10 unit findings" 10 (List.length a.Iso26262.Audit.unit_design);
  Alcotest.(check int) "14 observations" 14 (List.length a.Iso26262.Audit.observations)

let test_audit_coverage_artifacts () =
  let a = Lazy.force audit in
  Alcotest.(check int) "10 yolo files measured" 10
    (List.length a.Iso26262.Audit.yolo_coverage);
  Alcotest.(check int) "2 stencil files measured" 2
    (List.length a.Iso26262.Audit.stencil_coverage);
  Alcotest.(check bool) "yolo scenarios printed" true
    (Util.Strutil.contains_sub ~sub:"passed 5" a.Iso26262.Audit.yolo_run_output
     || Util.Strutil.contains_sub ~sub:"passed" a.Iso26262.Audit.yolo_run_output)

let test_audit_render_contains_all_artifacts () =
  let s = Iso26262.Audit.render (Lazy.force audit) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("render mentions " ^ needle) true
        (Util.Strutil.contains_sub ~sub:needle s))
    [ "Figure 3"; "Table 1"; "Table 2"; "Table 3"; "Figure 5"; "Figure 6";
      "Observations"; "ASIL-D" ]

let test_audit_observations_hold () =
  Alcotest.(check bool) "all observations hold on the small corpus" true
    (Iso26262.Observations.all_hold (Lazy.force audit).Iso26262.Audit.observations)

let test_audit_deterministic () =
  let a = Iso26262.Audit.run ~specs:Corpus.Apollo_profile.small ~open_vs_closed:[] () in
  let b = Iso26262.Audit.run ~specs:Corpus.Apollo_profile.small ~open_vs_closed:[] () in
  Alcotest.(check int) "same casts"
    a.Iso26262.Audit.metrics.Iso26262.Project_metrics.explicit_casts
    b.Iso26262.Audit.metrics.Iso26262.Project_metrics.explicit_casts;
  Alcotest.(check int) "same loc"
    a.Iso26262.Audit.metrics.Iso26262.Project_metrics.total_loc
    b.Iso26262.Audit.metrics.Iso26262.Project_metrics.total_loc;
  let mis r = r.Iso26262.Audit.metrics.Iso26262.Project_metrics.misra.Misra.Registry.total_violations in
  Alcotest.(check int) "same misra violations" (mis a) (mis b)

let test_cross_artifact_consistency () =
  (* the same corpus drives both Figure 3 and Table 1 item 1: totals agree *)
  let a = Lazy.force audit in
  let m = a.Iso26262.Audit.metrics in
  let fig3_over10 =
    Util.Stats.sum_int
      (List.map
         (fun (mm : Iso26262.Project_metrics.module_metrics) ->
           mm.Iso26262.Project_metrics.complexity.Metrics.Complexity.over_10)
         m.Iso26262.Project_metrics.modules)
  in
  Alcotest.(check int) "Figure 3 totals = Table 1 evidence" fig3_over10
    m.Iso26262.Project_metrics.over10;
  (* the compliance summary counts verdicts consistently *)
  let findings = Iso26262.Audit.all_findings a in
  let passed, binding = Iso26262.Assess.compliance_at ~asil:Iso26262.Asil.D findings in
  let manual_pass =
    List.length
      (List.filter
         (fun (f : Iso26262.Assess.finding) ->
           f.Iso26262.Assess.verdict = Iso26262.Assess.Pass
           && Iso26262.Asil.binding f.Iso26262.Assess.topic.Iso26262.Guidelines.recs
                Iso26262.Asil.D)
         findings)
  in
  Alcotest.(check int) "compliance count agrees" manual_pass passed;
  Alcotest.(check bool) "binding sensible" true (binding > 20)

let test_gpu_ratios_feed_observation12 () =
  let a = Lazy.force audit in
  let obs12 =
    List.find
      (fun (o : Iso26262.Observations.t) -> o.Iso26262.Observations.number = 12)
      a.Iso26262.Audit.observations
  in
  Alcotest.(check bool) "obs 12 holds with ratios" true obs12.Iso26262.Observations.holds

(* full-scale smoke (paper headline numbers), marked slow *)
let test_full_scale_headlines () =
  let a =
    Iso26262.Audit.run ~specs:Corpus.Apollo_profile.full
      ~open_vs_closed:(Lazy.force ratios) ()
  in
  let m = a.Iso26262.Audit.metrics in
  Alcotest.(check bool) "over 220k LOC" true (m.Iso26262.Project_metrics.total_loc > 220_000);
  Alcotest.(check int) "exactly 554 functions above CC 10" 554
    m.Iso26262.Project_metrics.over10;
  Alcotest.(check bool) "over 1400 casts" true
    (m.Iso26262.Project_metrics.explicit_casts > 1_400);
  (match Iso26262.Project_metrics.find_module m "perception" with
   | Some pm -> Alcotest.(check int) "900 perception globals" 900 pm.Iso26262.Project_metrics.globals
   | None -> Alcotest.fail "perception missing");
  let stmt, branch, mcdc = Coverage.Collector.averages a.Iso26262.Audit.yolo_coverage in
  Alcotest.(check bool) "coverage averages near 83/75/61" true
    (abs_float (stmt -. 83.0) < 8.0 && abs_float (branch -. 75.0) < 8.0
     && abs_float (mcdc -. 61.0) < 8.0);
  (* component-size guideline fails at paper scale (Observation 13) *)
  let comp_size =
    List.find
      (fun (f : Iso26262.Assess.finding) ->
        f.Iso26262.Assess.topic.Iso26262.Guidelines.table = Iso26262.Guidelines.Architecture
        && f.Iso26262.Assess.topic.Iso26262.Guidelines.index = 2)
      a.Iso26262.Audit.architecture
  in
  Alcotest.(check bool) "component size fails at full scale" true
    (comp_size.Iso26262.Assess.verdict = Iso26262.Assess.Fail)

let () =
  Alcotest.run "integration"
    [
      ( "audit",
        [
          Alcotest.test_case "completes" `Quick test_audit_completes;
          Alcotest.test_case "coverage artifacts" `Quick test_audit_coverage_artifacts;
          Alcotest.test_case "render complete" `Quick test_audit_render_contains_all_artifacts;
          Alcotest.test_case "observations hold" `Quick test_audit_observations_hold;
          Alcotest.test_case "deterministic" `Quick test_audit_deterministic;
          Alcotest.test_case "cross-artifact consistency" `Quick
            test_cross_artifact_consistency;
          Alcotest.test_case "gpu ratios feed obs 12" `Quick
            test_gpu_ratios_feed_observation12;
        ] );
      ( "full-scale",
        [ Alcotest.test_case "paper headline numbers" `Slow test_full_scale_headlines ] );
    ]
