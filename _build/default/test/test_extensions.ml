(* Tests for the extension modules: Halstead metrics + maintainability
   index, the Brook Auto portability checker, the Figure 1/2 structural
   models, the GPU-model ablations, and the MC/DC pairing-mode ablation. *)

let parse src = Cfront.Parser.parse_file ~file:"x.cu" src

(* ------------------------------------------------------------------ *)
(* Halstead                                                             *)
(* ------------------------------------------------------------------ *)

let test_halstead_counts () =
  (* a = a + 1;  operators: =, +, ; is grouping -> {=, +}; operands: a, 1 *)
  let h = Metrics.Halstead.of_tokens (Cfront.Lexer.tokenize ~file:"h.c" "a = a + 1;").Cfront.Lexer.tokens in
  Alcotest.(check int) "distinct operators" 2 h.Metrics.Halstead.n1;
  Alcotest.(check int) "distinct operands" 2 h.Metrics.Halstead.n2;
  Alcotest.(check int) "total operators" 2 h.Metrics.Halstead.big_n1;
  Alcotest.(check int) "total operands" 3 h.Metrics.Halstead.big_n2;
  Alcotest.(check int) "length" 5 h.Metrics.Halstead.length;
  Alcotest.(check bool) "volume positive" true (h.Metrics.Halstead.volume > 0.0)

let test_halstead_volume_grows () =
  let vol src =
    (Metrics.Halstead.of_tu (parse src)).Metrics.Halstead.volume
  in
  Alcotest.(check bool) "more code, more volume" true
    (vol "int F(int a) { return a + a * a - a / 2; }" > vol "int F(int a) { return a; }")

let test_mi_bounds_and_ordering () =
  let tu_simple = parse "int F(int a) { return a; }" in
  let tu_complex =
    parse
      "int G(int a, int b) {\n  int r = 0;\n  for (int i = 0; i < a; ++i) {\n    \
       if (i % 2 == 0 && b > i || a < 3) { r += i * b - a / 2; } else { r -= i; }\n    \
       switch (r % 5) { case 0: r++; break; case 1: r--; break; default: break; }\n  }\n  return r;\n}"
  in
  let mi tu =
    match Cfront.Ast.functions_of_tu tu with
    | [ fn ] -> Metrics.Halstead.mi_of_func ~tu fn
    | _ -> Alcotest.fail "one function"
  in
  let simple = mi tu_simple and complex = mi tu_complex in
  Alcotest.(check bool) "in [0,100]" true
    (simple >= 0.0 && simple <= 100.0 && complex >= 0.0 && complex <= 100.0);
  Alcotest.(check bool) "complex code is less maintainable" true (complex < simple)

let test_mi_module_report () =
  let project = Corpus.Generator.generate ~seed:11 [ List.hd Corpus.Apollo_profile.small ] in
  let parsed = Cfront.Project.parse project in
  let r =
    Metrics.Halstead.report_of_module ~modname:"perception" parsed.Cfront.Project.files
  in
  Alcotest.(check bool) "MI in a plausible band" true
    (r.Metrics.Halstead.mi > 20.0 && r.Metrics.Halstead.mi < 90.0)

(* ------------------------------------------------------------------ *)
(* Brook Auto                                                           *)
(* ------------------------------------------------------------------ *)

let classify src =
  match Cudasim.Brook_auto.of_files
          [ { Cfront.Project.file =
                { Cfront.Project.path = "k.cu"; modname = "k"; header = false; content = src };
              tu = parse src } ]
  with
  | [ r ] -> r
  | _ -> Alcotest.fail "one kernel expected"

let test_brook_pure_stream () =
  let r =
    classify
      "__global__ void Scale(float* output, float k, int n) {\n\
       int tid = blockIdx.x * blockDim.x + threadIdx.x;\n\
       if (tid < n) { output[tid] = output[tid] * k; }\n}"
  in
  Alcotest.(check bool) "pure stream" true
    (r.Cudasim.Brook_auto.classification = Cudasim.Brook_auto.Pure_stream);
  Alcotest.(check (list string)) "tid recognized" [ "tid" ]
    r.Cudasim.Brook_auto.thread_index_vars

let test_brook_needs_gather () =
  let r =
    classify
      "__global__ void Blur(float* output, float* input, int n) {\n\
       int tid = blockIdx.x * blockDim.x + threadIdx.x;\n\
       if (tid < n) { output[tid] = input[tid % n] * 0.5f; }\n}"
  in
  Alcotest.(check bool) "gather classified" true
    (r.Cudasim.Brook_auto.classification = Cudasim.Brook_auto.Needs_gather);
  Alcotest.(check bool) "gather counted" true (r.Cudasim.Brook_auto.gather_reads > 0)

let test_brook_scatter_blocks () =
  let r =
    classify
      "__global__ void Scatter(float* output, int* index, int n) {\n\
       int tid = blockIdx.x * blockDim.x + threadIdx.x;\n\
       if (tid < n) { output[index[tid]] = 1.0f; }\n}"
  in
  (match r.Cudasim.Brook_auto.classification with
   | Cudasim.Brook_auto.Not_portable bs ->
     Alcotest.(check bool) "scatter blocker" true
       (List.mem Cudasim.Brook_auto.Scatter_write bs)
   | _ -> Alcotest.fail "expected not portable")

let test_brook_unbounded_loop_blocks () =
  let r =
    classify
      "__global__ void Spin(float* output, int n) {\n\
       int tid = threadIdx.x;\n\
       while (output[tid] > 0.0f) { output[tid] = output[tid] - 1.0f; }\n}"
  in
  match r.Cudasim.Brook_auto.classification with
  | Cudasim.Brook_auto.Not_portable bs ->
    Alcotest.(check bool) "unbounded loop blocker" true
      (List.mem Cudasim.Brook_auto.Unbounded_loop bs)
  | _ -> Alcotest.fail "expected not portable"

let test_brook_dynamic_alloc_blocks () =
  let r =
    classify
      "__global__ void Alloc(float* output, int n) {\n\
       int tid = threadIdx.x;\n\
       float* tmp = (float*)malloc(n * sizeof(float));\n\
       output[tid] = tmp[0];\n}"
  in
  match r.Cudasim.Brook_auto.classification with
  | Cudasim.Brook_auto.Not_portable bs ->
    Alcotest.(check bool) "allocation blocker" true
      (List.mem Cudasim.Brook_auto.Dynamic_allocation bs)
  | _ -> Alcotest.fail "expected not portable"

let test_brook_corpus_summary () =
  let project = Corpus.Generator.generate ~seed:2019 Corpus.Apollo_profile.small in
  let parsed = Cfront.Project.parse project in
  let s = Cudasim.Brook_auto.summarize (Cudasim.Brook_auto.of_files parsed.Cfront.Project.files) in
  Alcotest.(check bool) "kernels found" true (s.Cudasim.Brook_auto.total > 0);
  Alcotest.(check int) "partition complete" s.Cudasim.Brook_auto.total
    (s.Cudasim.Brook_auto.pure_stream + s.Cudasim.Brook_auto.needs_gather
     + s.Cudasim.Brook_auto.not_portable)

(* ------------------------------------------------------------------ *)
(* CUDA census (Figure 4 evidence)                                      *)
(* ------------------------------------------------------------------ *)

let census_of src =
  Cudasim.Census.of_tu (parse src)

let test_census_counts () =
  let c =
    census_of
      "__global__ void K(float* out, float* biases, int n) {\n\
       int i = blockIdx.x * blockDim.x + threadIdx.x;\n\
       if (i < n) { out[i] = biases[i]; }\n}\n\
       __device__ float Helper(float x) { return x * 2.0f; }\n\
       __device__ float d_gain = 1.5f;\n\
       void Launch(float* h, int n) {\n\
       float* d;\n\
       cudaMalloc((void**)&d, n * sizeof(float));\n\
       cudaMemcpy(d, h, n * sizeof(float), 1);\n\
       K<<<1, 32>>>(d, d, n);\n\
       cudaFree(d);\n}"
  in
  Alcotest.(check int) "kernels" 1 c.Cudasim.Census.kernels;
  Alcotest.(check int) "device functions" 1 c.Cudasim.Census.device_functions;
  Alcotest.(check int) "launches" 1 c.Cudasim.Census.kernel_launches;
  Alcotest.(check int) "cudaMalloc" 1 c.Cudasim.Census.cuda_mallocs;
  Alcotest.(check int) "cudaMemcpy" 1 c.Cudasim.Census.cuda_memcpys;
  Alcotest.(check int) "cudaFree" 1 c.Cudasim.Census.cuda_frees;
  Alcotest.(check int) "kernel params" 3 c.Cudasim.Census.kernel_params;
  Alcotest.(check int) "pointer params" 2 c.Cudasim.Census.kernel_pointer_params;
  Alcotest.(check int) "device globals" 1 c.Cudasim.Census.device_globals;
  Alcotest.(check int) "guarded kernel" 0 c.Cudasim.Census.kernels_without_bound_check

let test_census_unguarded_kernel () =
  let c =
    census_of
      "__global__ void K(float* out, int n) { int i = threadIdx.x; out[i] = 1.0f; }"
  in
  Alcotest.(check int) "unguarded detected" 1
    c.Cudasim.Census.kernels_without_bound_check;
  Alcotest.(check (float 1e-9)) "pointer ratio" 0.5
    (Cudasim.Census.pointer_param_ratio c)

let test_census_add () =
  let c = census_of "__global__ void K(int n) { }" in
  let s = Cudasim.Census.add c c in
  Alcotest.(check int) "doubles" 2 s.Cudasim.Census.kernels

(* ------------------------------------------------------------------ *)
(* Taxonomy (Figures 1 and 2)                                           *)
(* ------------------------------------------------------------------ *)

let test_pipeline_structure () =
  Alcotest.(check int) "eight modules" 8 (List.length Iso26262.Taxonomy.pipeline);
  let names = List.map (fun m -> m.Iso26262.Taxonomy.pm_name) Iso26262.Taxonomy.pipeline in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " present") true (List.mem n names))
    [ "perception"; "prediction"; "localization"; "routing"; "planning"; "control"; "canbus" ];
  (* every non-sensor input is itself a pipeline module *)
  let sensors = [ "camera"; "LIDAR"; "radar"; "GPS"; "IMU" ] in
  List.iter
    (fun m ->
      List.iter
        (fun input ->
          Alcotest.(check bool) (input ^ " resolvable") true
            (List.mem input names || List.mem input sensors))
        m.Iso26262.Taxonomy.pm_inputs)
    Iso26262.Taxonomy.pipeline

let test_taxonomy_closed_count () =
  (* cuDNN, cuBLAS, TensorRT, CUDA runtime *)
  Alcotest.(check int) "four closed dependencies" 4
    (Iso26262.Taxonomy.closed_count Iso26262.Taxonomy.taxonomy)

let test_taxonomy_renders () =
  let s = Iso26262.Taxonomy.render_taxonomy () in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " rendered") true (Util.Strutil.contains_sub ~sub:n s))
    [ "cuDNN"; "cuBLAS"; "TensorRT"; "CUTLASS"; "ISAAC"; "CLOSED" ]

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let test_ablation_single_tile_hurts_cublas () =
  (* restricting cuBLAS to one tile makes CUTLASS (with its menu) look
     much better than it really is: the CUTLASS/cuBLAS geomean jumps *)
  let rows = Gpuperf.Ablation.run ~device:Gpuperf.Device.titan_v in
  let geo label =
    match
      List.find_opt (fun r -> r.Gpuperf.Ablation.label = label) rows
    with
    | Some { Gpuperf.Ablation.fig8a_geomean = Some g; _ } -> g
    | _ -> Alcotest.failf "row %s missing" label
  in
  Alcotest.(check bool) "menu matters" true
    (geo "CUTLASS vs cuBLAS single-tile" > geo "CUTLASS vs cuBLAS (full model)" +. 0.2)

let test_ablation_winograd_matters () =
  let rows = Gpuperf.Ablation.run ~device:Gpuperf.Device.titan_v in
  let geo label =
    match List.find_opt (fun r -> r.Gpuperf.Ablation.label = label) rows with
    | Some { Gpuperf.Ablation.fig8b_geomean = Some g; _ } -> g
    | _ -> Alcotest.failf "row %s missing" label
  in
  Alcotest.(check bool) "winograd is cuDNN's edge" true
    (geo "ISAAC vs cuDNN no-winograd" > geo "ISAAC vs cuDNN (full model)")

let test_mcdc_strict_at_most_masking () =
  (* strict unique-cause can only reject pairs that masking accepts *)
  let src =
    "int F(int a, int b) { if (a > 0 || b > 0) { return 1; } return 0; }\n\
     int main() { return F(-1, -1) + F(-1, 1) + F(1, -1); }"
  in
  let tu = parse src in
  let col = Coverage.Collector.create () in
  let env = Coverage.Interp.create ~hooks:(Coverage.Collector.hooks col) () in
  (match Coverage.Interp.run env [ tu ] ~entry:"main" ~args:[] with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "run: %s" e);
  let fps =
    List.filter
      (fun fp -> fp.Coverage.Instrument.fp_name = "F")
      (Coverage.Instrument.of_tu tu)
  in
  let pct mode =
    (Coverage.Collector.score_file ~mcdc_mode:mode col ~file:"x.cu" fps)
      .Coverage.Collector.mcdc_pct
  in
  Alcotest.(check bool) "strict <= masking" true (pct `Strict <= pct `Masking);
  (* for a||b with these vectors: masking covers both, strict only b *)
  Alcotest.(check (float 1e-6)) "masking full" 100.0 (pct `Masking);
  Alcotest.(check (float 1e-6)) "strict half" 50.0 (pct `Strict)

let test_complexity_convention_ablation () =
  let fns =
    Cfront.Ast.functions_of_tu
      (parse "int F(int a, int b) { if (a > 0 && b > 0 || a < -1) { return 1; } return 0; }")
  in
  let cc ssc =
    match Metrics.Complexity.of_functions ~count_short_circuit:ssc fns with
    | [ c ] -> c.Metrics.Complexity.cc
    | _ -> Alcotest.fail "one function"
  in
  Alcotest.(check int) "lizard convention" 4 (cc true);
  Alcotest.(check int) "plain mccabe" 2 (cc false)

(* ------------------------------------------------------------------ *)
(* WCET analyzability                                                   *)
(* ------------------------------------------------------------------ *)

let wcet_of src =
  match Metrics.Wcet.of_functions (Cfront.Ast.functions_of_tu (parse src)) with
  | [ r ] -> r
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs)

let test_wcet_constant_loop () =
  let r = wcet_of "int F(int a) { int s = 0; for (int i = 0; i < 16; ++i) { s += a; } return s; }" in
  Alcotest.(check bool) "analyzable" true
    (r.Metrics.Wcet.classification = Metrics.Wcet.Analyzable);
  Alcotest.(check int) "one constant loop" 1 r.Metrics.Wcet.constant_loops;
  Alcotest.(check string) "bound" "O(16)" r.Metrics.Wcet.wcet_expr

let test_wcet_parametric_loop () =
  let r = wcet_of "int F(int n) { int s = 0; for (int i = 0; i < n; ++i) { s += i; } return s; }" in
  Alcotest.(check bool) "parametric" true
    (r.Metrics.Wcet.classification = Metrics.Wcet.Parametric_bound);
  Alcotest.(check string) "symbolic bound" "O(n)" r.Metrics.Wcet.wcet_expr

let test_wcet_counter_while () =
  let r = wcet_of "int F(int n) { while (n > 0) { n -= 1; } return n; }" in
  Alcotest.(check bool) "counted while is parametric" true
    (r.Metrics.Wcet.classification = Metrics.Wcet.Parametric_bound)

let test_wcet_unbounded_while () =
  let r = wcet_of "int F(float x) { float y = x; while (y > 0.5) { y = y * y; } return 1; }" in
  Alcotest.(check bool) "unanalyzable" true
    (r.Metrics.Wcet.classification = Metrics.Wcet.Unanalyzable);
  Alcotest.(check string) "unbounded" "unbounded" r.Metrics.Wcet.wcet_expr

let test_wcet_recursion_unanalyzable () =
  let r = wcet_of "int F(int n) { if (n <= 0) { return 0; } return F(n - 1); }" in
  Alcotest.(check bool) "recursive" true r.Metrics.Wcet.recursive;
  Alcotest.(check bool) "unanalyzable" true
    (r.Metrics.Wcet.classification = Metrics.Wcet.Unanalyzable)

let test_wcet_straight_line () =
  let r = wcet_of "int F(int a) { return a * 2; }" in
  Alcotest.(check string) "O(1)" "O(1)" r.Metrics.Wcet.wcet_expr

(* ------------------------------------------------------------------ *)
(* Other frameworks                                                     *)
(* ------------------------------------------------------------------ *)

let test_frameworks_generate_and_assess () =
  List.iter
    (fun (fw : Corpus.Other_frameworks.framework) ->
      if fw.Corpus.Other_frameworks.fw_name <> "Apollo" then begin
        let project =
          Corpus.Generator.generate ~seed:fw.Corpus.Other_frameworks.fw_seed
            fw.Corpus.Other_frameworks.fw_specs
        in
        let parsed = Cfront.Project.parse project in
        let diags =
          List.concat_map
            (fun pf -> pf.Cfront.Project.tu.Cfront.Ast.diags)
            parsed.Cfront.Project.files
        in
        Alcotest.(check (list string))
          (fw.Corpus.Other_frameworks.fw_name ^ " parses clean") [] diags;
        let m = Iso26262.Project_metrics.of_parsed parsed in
        let findings = Iso26262.Assess.assess_all m in
        let passed, binding =
          Iso26262.Assess.compliance_at ~asil:Iso26262.Asil.D findings
        in
        (* the framework-independence claim: non-compliant at ASIL-D, but
           the style/naming class of guidelines passes *)
        Alcotest.(check bool) "not ASIL-D compliant" true (passed < binding);
        Alcotest.(check bool) "some guidelines pass" true (passed >= 5)
      end)
    Corpus.Other_frameworks.all_frameworks

let test_framework_scale_ordering () =
  let loc specs = Corpus.Apollo_profile.total_loc specs in
  Alcotest.(check bool) "Apollo > Autoware > Udacity" true
    (loc Corpus.Apollo_profile.full > loc Corpus.Other_frameworks.autoware
     && loc Corpus.Other_frameworks.autoware > loc Corpus.Other_frameworks.udacity)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                      *)
(* ------------------------------------------------------------------ *)

let fault_outcomes = lazy (Corpus.Fault_src.run_all ())

let test_faults_all_as_expected () =
  List.iter
    (fun (o : Corpus.Fault_src.outcome) ->
      Alcotest.(check bool)
        (o.Corpus.Fault_src.scenario.Corpus.Fault_src.sc_name ^ " behaves as predicted")
        true o.Corpus.Fault_src.as_expected)
    (Lazy.force fault_outcomes)

let test_faults_summary () =
  let realized, expected, as_expected, total =
    Corpus.Fault_src.summary (Lazy.force fault_outcomes)
  in
  Alcotest.(check int) "every undefended scenario faults" expected realized;
  Alcotest.(check int) "every scenario as expected" total as_expected;
  Alcotest.(check bool) "both directions covered" true
    (expected > 0 && expected < total)

let test_faults_detail_mentions_memory () =
  List.iter
    (fun (o : Corpus.Fault_src.outcome) ->
      if o.Corpus.Fault_src.faulted then
        Alcotest.(check bool) "fault detail names the memory operation" true
          (Util.Strutil.contains_sub ~sub:"out of bounds" o.Corpus.Fault_src.detail))
    (Lazy.force fault_outcomes)

(* ------------------------------------------------------------------ *)
(* Export formats                                                       *)
(* ------------------------------------------------------------------ *)

let sample_table () =
  Util.Table.add_rows
    (Util.Table.make ~title:"T" ~header:[ "name"; "value" ]
       ~aligns:[ Util.Table.Left; Util.Table.Right ] ())
    [ [ "plain"; "1" ]; [ "with,comma"; "2" ]; [ "with|pipe"; "3" ] ]

let test_markdown_export () =
  let s = Util.Table.render_markdown (sample_table ()) in
  Alcotest.(check bool) "has header separator" true
    (Util.Strutil.contains_sub ~sub:"| --- | ---: |" s);
  Alcotest.(check bool) "pipe escaped" true
    (Util.Strutil.contains_sub ~sub:"with\\|pipe" s)

let test_csv_export () =
  let s = Util.Table.render_csv (sample_table ()) in
  Alcotest.(check bool) "comma field quoted" true
    (Util.Strutil.contains_sub ~sub:"\"with,comma\"" s);
  Alcotest.(check int) "four lines" 4
    (List.length (List.filter (fun l -> l <> "") (Util.Strutil.lines s)))

let test_render_as_dispatch () =
  let t = sample_table () in
  Alcotest.(check bool) "text" true
    (Util.Table.render_as Util.Table.Text t = Util.Table.render t);
  Alcotest.(check bool) "csv" true
    (Util.Table.render_as Util.Table.Csv t = Util.Table.render_csv t)

(* ------------------------------------------------------------------ *)
(* Mini AD pipeline (Figure 1 as a running system)                      *)
(* ------------------------------------------------------------------ *)

let pipeline_run =
  lazy
    (let tus = Corpus.Pipeline_src.parse_all () in
     let measured = List.map fst Corpus.Pipeline_src.measured_files in
     (tus, Cudasim.Runner.run ~entry:Corpus.Pipeline_src.entry ~measured tus))

let test_pipeline_parses_and_runs () =
  let tus, result = Lazy.force pipeline_run in
  List.iter
    (fun (tu : Cfront.Ast.tu) ->
      Alcotest.(check (list string)) (tu.Cfront.Ast.tu_file ^ " clean") []
        tu.Cfront.Ast.diags)
    tus;
  match result.Cudasim.Runner.exit_value with
  | Ok v ->
    (* the safety property: the planned corridor avoids predicted cells *)
    Alcotest.(check int64) "zero collisions over 12 ticks" 0L
      (Coverage.Value.as_int v)
  | Error e -> Alcotest.failf "pipeline failed: %s" e

let test_pipeline_output () =
  let _, result = Lazy.force pipeline_run in
  Alcotest.(check bool) "telemetry printed" true
    (Util.Strutil.contains_sub ~sub:"ticks=12 collisions=0"
       result.Cudasim.Runner.output)

let test_pipeline_coverage_high () =
  let _, result = Lazy.force pipeline_run in
  let stmt, _, _ = Coverage.Collector.averages result.Cudasim.Runner.files in
  (* the closed loop exercises nearly everything: unlike YOLO's cold
     error paths, a control loop covers its own logic *)
  Alcotest.(check bool) "statement coverage above 90%" true (stmt > 90.0)

let test_pipeline_cross_file_types () =
  (* Project.parse must resolve struct names across files without headers *)
  let files =
    List.map
      (fun (path, content) ->
        { Cfront.Project.path; modname = "mini"; header = false; content })
      Corpus.Pipeline_src.files
  in
  let project =
    Cfront.Project.make ~name:"mini"
      [ { Cfront.Project.m_name = "mini"; m_files = files } ]
  in
  let parsed = Cfront.Project.parse project in
  Alcotest.(check int) "all nine functions found" 9
    (List.length (Cfront.Project.all_functions parsed))

(* ------------------------------------------------------------------ *)
(* Scheduling (response-time analysis)                                  *)
(* ------------------------------------------------------------------ *)

let test_rta_default_schedulable () =
  let a = Iso26262.Scheduling.analyze (Iso26262.Scheduling.ad_task_set ()) in
  Alcotest.(check bool) "GPU perception fits" true a.Iso26262.Scheduling.all_schedulable;
  Alcotest.(check bool) "utilization below 1" true
    (a.Iso26262.Scheduling.total_utilization < 1.0)

let test_rta_cpu_perception_fails () =
  let a =
    Iso26262.Scheduling.analyze
      (Iso26262.Scheduling.ad_task_set ~perception_wcet_ms:295.0 ())
  in
  Alcotest.(check bool) "CPU BLAS perception misses deadlines" false
    a.Iso26262.Scheduling.all_schedulable

let test_rta_response_ordering () =
  let a = Iso26262.Scheduling.analyze (Iso26262.Scheduling.ad_task_set ()) in
  List.iter
    (fun (r : Iso26262.Scheduling.task_result) ->
      if r.Iso26262.Scheduling.schedulable then begin
        Alcotest.(check bool) "response >= wcet" true
          (r.Iso26262.Scheduling.response_ms
           >= r.Iso26262.Scheduling.task.Iso26262.Scheduling.wcet_ms -. 1e-9);
        Alcotest.(check bool) "response <= deadline" true
          (r.Iso26262.Scheduling.response_ms
           <= r.Iso26262.Scheduling.task.Iso26262.Scheduling.period_ms +. 1e-9)
      end)
    a.Iso26262.Scheduling.tasks

let test_rta_exact_fixed_point () =
  (* two tasks with known response times: C1=1,T1=4; C2=2,T2=10 ->
     R2 = 2 + ceil(R2/4)*1 ; fixed point at R2 = 3 *)
  let tasks =
    [ { Iso26262.Scheduling.t_name = "hi"; period_ms = 4.0; wcet_ms = 1.0 };
      { Iso26262.Scheduling.t_name = "lo"; period_ms = 10.0; wcet_ms = 2.0 } ]
  in
  let a = Iso26262.Scheduling.analyze tasks in
  let lo =
    List.find
      (fun (r : Iso26262.Scheduling.task_result) ->
        r.Iso26262.Scheduling.task.Iso26262.Scheduling.t_name = "lo")
      a.Iso26262.Scheduling.tasks
  in
  Alcotest.(check (float 1e-9)) "textbook fixed point" 3.0
    lo.Iso26262.Scheduling.response_ms

(* ------------------------------------------------------------------ *)
(* Traceability                                                         *)
(* ------------------------------------------------------------------ *)

let small_findings =
  lazy
    (let parsed =
       Cfront.Project.parse
         (Corpus.Generator.generate ~seed:2019 Corpus.Apollo_profile.small)
     in
     let m = Iso26262.Project_metrics.of_parsed parsed in
     (m, Iso26262.Assess.assess_all m))

let test_traceability_covers_all_requirements () =
  let _, findings = Lazy.force small_findings in
  let traces = Iso26262.Traceability.trace findings in
  let traced_reqs =
    Util.Stats.sum_int
      (List.map (fun g -> List.length g.Iso26262.Traceability.reqs) traces)
  in
  Alcotest.(check int) "every requirement appears under its goal"
    (List.length Iso26262.Traceability.requirements)
    traced_reqs

let test_traceability_no_goal_verified () =
  let _, findings = Lazy.force small_findings in
  let traces = Iso26262.Traceability.trace findings in
  Alcotest.(check bool) "no safety goal fully verified (the paper's verdict)" true
    (List.for_all (fun g -> not g.Iso26262.Traceability.goal_verified) traces)

let test_traceability_allocation_complete () =
  let m, _ = Lazy.force small_findings in
  Alcotest.(check int) "all requirements allocated to existing modules" 0
    (List.length (Iso26262.Traceability.unallocated_requirements m))

let test_traceability_render () =
  let _, findings = Lazy.force small_findings in
  let s = Iso26262.Traceability.render (Iso26262.Traceability.trace findings) in
  Alcotest.(check bool) "mentions goals" true (Util.Strutil.contains_sub ~sub:"G1" s);
  Alcotest.(check bool) "mentions verdict tags" true
    (Util.Strutil.contains_sub ~sub:"T8." s)

let () =
  Alcotest.run "extensions"
    [
      ( "halstead",
        [
          Alcotest.test_case "token counts" `Quick test_halstead_counts;
          Alcotest.test_case "volume grows" `Quick test_halstead_volume_grows;
          Alcotest.test_case "MI bounds and ordering" `Quick test_mi_bounds_and_ordering;
          Alcotest.test_case "module report" `Quick test_mi_module_report;
        ] );
      ( "brook-auto",
        [
          Alcotest.test_case "pure stream" `Quick test_brook_pure_stream;
          Alcotest.test_case "needs gather" `Quick test_brook_needs_gather;
          Alcotest.test_case "scatter blocks" `Quick test_brook_scatter_blocks;
          Alcotest.test_case "unbounded loop blocks" `Quick test_brook_unbounded_loop_blocks;
          Alcotest.test_case "dynamic alloc blocks" `Quick test_brook_dynamic_alloc_blocks;
          Alcotest.test_case "corpus summary" `Quick test_brook_corpus_summary;
        ] );
      ( "cuda-census",
        [
          Alcotest.test_case "counts" `Quick test_census_counts;
          Alcotest.test_case "unguarded kernel" `Quick test_census_unguarded_kernel;
          Alcotest.test_case "add" `Quick test_census_add;
        ] );
      ( "taxonomy",
        [
          Alcotest.test_case "pipeline structure" `Quick test_pipeline_structure;
          Alcotest.test_case "closed count" `Quick test_taxonomy_closed_count;
          Alcotest.test_case "renders" `Quick test_taxonomy_renders;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "single tile hurts cuBLAS" `Quick
            test_ablation_single_tile_hurts_cublas;
          Alcotest.test_case "winograd matters" `Quick test_ablation_winograd_matters;
          Alcotest.test_case "strict vs masking MC/DC" `Quick test_mcdc_strict_at_most_masking;
          Alcotest.test_case "complexity convention" `Quick
            test_complexity_convention_ablation;
        ] );
      ( "wcet",
        [
          Alcotest.test_case "constant loop" `Quick test_wcet_constant_loop;
          Alcotest.test_case "parametric loop" `Quick test_wcet_parametric_loop;
          Alcotest.test_case "counter while" `Quick test_wcet_counter_while;
          Alcotest.test_case "unbounded while" `Quick test_wcet_unbounded_while;
          Alcotest.test_case "recursion" `Quick test_wcet_recursion_unanalyzable;
          Alcotest.test_case "straight line" `Quick test_wcet_straight_line;
        ] );
      ( "frameworks",
        [
          Alcotest.test_case "generate and assess" `Slow test_frameworks_generate_and_assess;
          Alcotest.test_case "scale ordering" `Quick test_framework_scale_ordering;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "all as expected" `Quick test_faults_all_as_expected;
          Alcotest.test_case "summary" `Quick test_faults_summary;
          Alcotest.test_case "fault detail" `Quick test_faults_detail_mentions_memory;
        ] );
      ( "export",
        [
          Alcotest.test_case "markdown" `Quick test_markdown_export;
          Alcotest.test_case "csv" `Quick test_csv_export;
          Alcotest.test_case "dispatch" `Quick test_render_as_dispatch;
        ] );
      ( "mini-pipeline",
        [
          Alcotest.test_case "parses and runs collision-free" `Quick
            test_pipeline_parses_and_runs;
          Alcotest.test_case "telemetry" `Quick test_pipeline_output;
          Alcotest.test_case "high coverage" `Quick test_pipeline_coverage_high;
          Alcotest.test_case "cross-file types" `Quick test_pipeline_cross_file_types;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "default schedulable" `Quick test_rta_default_schedulable;
          Alcotest.test_case "cpu perception fails" `Quick test_rta_cpu_perception_fails;
          Alcotest.test_case "response ordering" `Quick test_rta_response_ordering;
          Alcotest.test_case "exact fixed point" `Quick test_rta_exact_fixed_point;
        ] );
      ( "cert-plan",
        [
          Alcotest.test_case "orders by effort then size" `Quick (fun () ->
              let _, findings = Lazy.force small_findings in
              let plan = Iso26262.Cert_plan.build findings in
              let ranks =
                List.map
                  (fun (i : Iso26262.Cert_plan.work_item) ->
                    Iso26262.Cert_plan.effort_rank i.Iso26262.Cert_plan.effort)
                  plan.Iso26262.Cert_plan.items
              in
              Alcotest.(check (list int)) "non-decreasing effort"
                (List.sort compare ranks) ranks);
          Alcotest.test_case "only failing findings planned" `Quick (fun () ->
              let _, findings = Lazy.force small_findings in
              let plan = Iso26262.Cert_plan.build findings in
              List.iter
                (fun (i : Iso26262.Cert_plan.work_item) ->
                  Alcotest.(check bool) "not a pass" true
                    (i.Iso26262.Cert_plan.finding.Iso26262.Assess.verdict
                     <> Iso26262.Assess.Pass))
                plan.Iso26262.Cert_plan.items);
          Alcotest.test_case "gpu topics are research class" `Quick (fun () ->
              let topic =
                Option.get
                  (Iso26262.Guidelines.find ~table:Iso26262.Guidelines.Unit_design
                     ~index:6)
              in
              Alcotest.(check bool) "pointers need research" true
                (Iso26262.Cert_plan.effort_of_topic topic
                 = Iso26262.Cert_plan.Research_needed));
          Alcotest.test_case "render mentions classes" `Quick (fun () ->
              let _, findings = Lazy.force small_findings in
              let s = Iso26262.Cert_plan.render (Iso26262.Cert_plan.build findings) in
              Alcotest.(check bool) "research row" true
                (Util.Strutil.contains_sub ~sub:"research needed" s));
        ] );
      ( "misra-deviations",
        [
          Alcotest.test_case "deviation suppresses violations" `Quick (fun () ->
              let src = "int F(int a) { goto out; out: return a; }" in
              let pf =
                { Cfront.Project.file =
                    { Cfront.Project.path = "d.cc"; modname = "d"; header = false;
                      content = src };
                  tu = Cfront.Parser.parse_file ~file:"d.cc" src }
              in
              let ctx = Misra.Rule.context_of_files [ pf ] in
              let dev =
                { Misra.Registry.dev_rule = "15.1";
                  justification = "legacy error-handling exit, reviewed";
                  max_instances = None }
              in
              let plain = Misra.Registry.run ctx in
              let with_dev = Misra.Registry.run ~deviations:[ dev ] ctx in
              Alcotest.(check bool) "fewer violations with deviation" true
                (with_dev.Misra.Registry.total_violations
                 < plain.Misra.Registry.total_violations);
              match with_dev.Misra.Registry.deviations with
              | [ o ] ->
                Alcotest.(check int) "one suppressed" 1 o.Misra.Registry.suppressed;
                Alcotest.(check bool) "accepted" false o.Misra.Registry.rejected
              | _ -> Alcotest.fail "one outcome expected");
          Alcotest.test_case "bounded deviation leaves residual" `Quick (fun () ->
              let src =
                "int F(int a) { goto one; one: goto two; two: return a; }"
              in
              let pf =
                { Cfront.Project.file =
                    { Cfront.Project.path = "d.cc"; modname = "d"; header = false;
                      content = src };
                  tu = Cfront.Parser.parse_file ~file:"d.cc" src }
              in
              let ctx = Misra.Rule.context_of_files [ pf ] in
              let dev =
                { Misra.Registry.dev_rule = "15.1"; justification = "one allowed";
                  max_instances = Some 1 }
              in
              let r = Misra.Registry.run ~deviations:[ dev ] ctx in
              match r.Misra.Registry.deviations with
              | [ o ] ->
                Alcotest.(check int) "suppressed" 1 o.Misra.Registry.suppressed;
                Alcotest.(check int) "residual" 1 o.Misra.Registry.residual
              | _ -> Alcotest.fail "one outcome expected");
          Alcotest.test_case "mandatory rules cannot be deviated" `Quick (fun () ->
              let src = "int F(int a) { int x; return a + x; }" in
              let pf =
                { Cfront.Project.file =
                    { Cfront.Project.path = "d.cc"; modname = "d"; header = false;
                      content = src };
                  tu = Cfront.Parser.parse_file ~file:"d.cc" src }
              in
              let ctx = Misra.Rule.context_of_files [ pf ] in
              let dev =
                { Misra.Registry.dev_rule = "9.1"; justification = "nope";
                  max_instances = None }
              in
              let r = Misra.Registry.run ~deviations:[ dev ] ctx in
              (match r.Misra.Registry.deviations with
               | [ o ] -> Alcotest.(check bool) "rejected" true o.Misra.Registry.rejected
               | _ -> Alcotest.fail "one outcome expected");
              Alcotest.(check bool) "violation kept" true
                (r.Misra.Registry.total_violations > 0));
        ] );
      ( "traceability",
        [
          Alcotest.test_case "covers all requirements" `Quick
            test_traceability_covers_all_requirements;
          Alcotest.test_case "no goal verified" `Quick test_traceability_no_goal_verified;
          Alcotest.test_case "allocation complete" `Quick
            test_traceability_allocation_complete;
          Alcotest.test_case "render" `Quick test_traceability_render;
        ] );
    ]
