(* Tests for the MISRA C:2012-subset rule engine and the CUDA extension
   rules: for each rule, a violating snippet and a clean one. *)

let ctx_of src =
  let pf =
    { Cfront.Project.file =
        { Cfront.Project.path = "r.cc"; modname = "r"; header = false; content = src };
      tu = Cfront.Parser.parse_file ~file:"r.cc" src }
  in
  Misra.Rule.context_of_files [ pf ]

let violations rule_id src =
  match Misra.Registry.find_rule rule_id with
  | None -> Alcotest.failf "rule %s not registered" rule_id
  | Some rule -> rule.Misra.Rule.check (ctx_of src)

let check_hits rule_id src expected () =
  Alcotest.(check int)
    (Printf.sprintf "rule %s hits" rule_id)
    expected
    (List.length (violations rule_id src))

let case name rule_id src expected =
  Alcotest.test_case name `Quick (check_hits rule_id src expected)

(* handy snippets *)
let fn body = Printf.sprintf "int F(int a, int b) {\n%s\n}" body

let control_cases =
  [
    case "2.1 unreachable after return" "2.1" (fn "return a; a = 1;") 1;
    case "2.1 label after return ok" "2.1" (fn "if (a > 0) { goto l; } return a; l: return b;") 0;
    case "12.3 comma flagged" "12.3" (fn "a = 1, b = 2; return a;") 1;
    case "12.3 clean" "12.3" (fn "a = 1; b = 2; return a;") 0;
    case "13.4 assignment in if" "13.4" (fn "if ((a = b)) { return 1; } return 0;") 1;
    case "13.4 comparison clean" "13.4" (fn "if (a == b) { return 1; } return 0;") 0;
    case "14.1 float loop counter" "14.1"
      (fn "for (float x = 0.0f; x < 1.0f; x += 0.1f) { a++; } return a;") 1;
    case "14.1 int counter clean" "14.1" (fn "for (int i = 0; i < 3; ++i) { a++; } return a;") 0;
    case "14.3 constant condition" "14.3" (fn "if (1) { return a; } return b;") 1;
    case "14.3 do-while-zero idiom ok" "14.3" (fn "do { a++; } while (0); return a;") 0;
    case "15.1 goto" "15.1" (fn "goto out; out: return a;") 1;
    case "15.2 backward goto" "15.2"
      (fn "back: a++;\nif (a < 10) {\n  goto back;\n}\nreturn a;") 1;
    case "15.2 forward goto clean" "15.2" (fn "if (a > 0) { goto out; } a = 1; out: return a;") 0;
    case "15.4 two breaks in one loop" "15.4"
      (fn "while (a > 0) { if (b > 0) { break; } if (b < 0) { break; } a--; } return a;") 1;
    case "15.4 one break clean" "15.4"
      (fn "while (a > 0) { if (b > 0) { break; } a--; } return a;") 0;
    case "15.5 multiple returns" "15.5" (fn "if (a > 0) { return 1; } return 0;") 1;
    case "15.5 single return clean" "15.5" (fn "int r = a; return r;") 0;
    case "15.6 unbraced if body" "15.6" (fn "if (a > 0) a = 1; return a;") 1;
    case "15.6 else-if chain allowed" "15.6"
      (fn "if (a > 0) { a = 1; } else if (b > 0) { a = 2; } else { a = 3; } return a;") 0;
    case "15.7 missing final else" "15.7"
      (fn "if (a > 0) { a = 1; } else if (b > 0) { a = 2; } return a;") 1;
    case "16.3 fallthrough" "16.3"
      (fn "switch (a) { case 0: a = 1; case 1: a = 2; break; default: break; } return a;") 1;
    case "16.3 terminated clauses clean" "16.3"
      (fn "switch (a) { case 0: a = 1; break; case 1: a = 2; break; default: break; } return a;") 0;
    case "16.4 no default" "16.4" (fn "switch (a) { case 0: a = 1; break; case 2: break; } return a;") 1;
    case "16.6 single clause" "16.6" (fn "switch (a) { default: a = 1; break; } return a;") 1;
  ]

let type_cases =
  [
    case "2.2 effect-free statement" "2.2" (fn "a == b; return a;") 1;
    case "2.2 call statement ok" "2.2" (fn "G(a); return a;") 0;
    case "5.1 long identifier" "5.1"
      "int ThisIdentifierIsWayTooLongForLegacyLinkers123(int a) { return a; }" 1;
    case "5.3 shadowing via engine" "5.3"
      (fn "int local = a; if (a > 0) { int local = b; local++; } return local;") 1;
    case "7.1 octal constant" "7.1" (fn "a = 0755; return a;") 1;
    case "7.1 zero is fine" "7.1" (fn "a = 0; return a;") 0;
    case "10.3 implicit narrowing" "10.3" "int F(float x) { int a = 0; a = x; return a; }" 1;
    case "11.3 pointer C-cast" "11.3" "void F(void* p) { float* f = (float*)p; f[0] = 0.0f; }" 1;
    case "11.8 const_cast" "11.8"
      "void F(const int* p) { int* q = const_cast<int*>(p); q[0] = 1; }" 1;
    case "11.9 NULL macro" "11.9" "void F(int* p) { if (p == NULL) { return; } }" 1;
    case "11.9 nullptr clean" "11.9" "void F(int* p) { if (p == nullptr) { return; } }" 0;
    case "12.2 oversized shift" "12.2" (fn "a = b << 40; return a;") 1;
    case "12.2 small shift clean" "12.2" (fn "a = b << 3; return a;") 0;
    case "13.5 side effect in &&" "13.5" (fn "if (a > 0 && b++ > 0) { return 1; } return 0;") 1;
    case "18.5 three-level pointer" "18.5" "void F(int*** ppp) { ppp = 0; }" 1;
    case "18.5 two-level pointer ok" "18.5" "void F(int** pp) { pp = 0; }" 0;
  ]

let function_cases =
  [
    case "2.7 unused parameter" "2.7" "int F(int used, int unused) { return used; }" 1;
    case "8.9 single-user global" "8.9"
      "int g_only = 0;\nint F(int a) { return g_only + a; }" 1;
    case "8.9 shared global clean" "8.9"
      "int g_two = 0;\nint F(int a) { return g_two + a; }\nint G(int a) { return g_two - a; }" 0;
    case "8.10 inline not static" "8.10" "inline int F(int a) { return a; }" 1;
    case "8.10 static inline ok" "8.10" "static inline int F(int a) { return a; }" 0;
    case "9.1 uninitialized read" "9.1" (fn "int x; return a + x;") 1;
    case "17.1 variadic" "17.1" "int F(int a, ...) { return a; }" 1;
    case "17.2 recursion" "17.2" "int F(int n) { if (n <= 0) { return 0; } return F(n - 1); }" 1;
    case "17.7 discarded return" "17.7"
      "int Make(int a) { return a; }\nvoid Use(int a) { Make(a); }" 1;
    case "17.8 parameter modified" "17.8" "int F(int a) { a = a + 1; return a; }" 1;
    case "21.3 malloc" "21.3" "void F(int n) { int* p = (int*)malloc(n * sizeof(int)); free(p); }" 1;
    case "21.6 printf" "21.6" "void F(int a) { printf(\"%d\", a); }" 1;
    case "21.8 exit" "21.8" "void F(int a) { if (a < 0) { exit(1); } }" 1;
  ]

let preproc_cases =
  [
    case "4.9 function-like macro" "4.9" "#define MIN(a, b) ((a) < (b) ? (a) : (b))\nint g_x = 0;" 1;
    case "19.2 union keyword" "19.2" "int F(int a) { return a; } // union in comment does not count" 0;
    case "20.5 undef" "20.5" "#define A 1\n#undef A\nint g_x = 0;" 1;
    case "21.1 reserved redefinition" "21.1" "#define assert 1\nint g_x = 0;" 1;
    case "D4.4 commented-out code" "D4.4" "// a = b + 1;\nint g_x = 0;" 1;
  ]

let cuda_cases =
  [
    case "CUDA-1 unguarded kernel" "CUDA-1"
      "__global__ void K(float* p, int n) { int i = blockIdx.x * blockDim.x + threadIdx.x; p[i] = 0.0f; }" 1;
    case "CUDA-1 guarded kernel clean" "CUDA-1"
      "__global__ void K(float* p, int n) { int i = blockIdx.x * blockDim.x + threadIdx.x; if (i < n) { p[i] = 0.0f; } }" 0;
    case "CUDA-2 device allocation" "CUDA-2"
      "__device__ void D(int n) { int* p = (int*)malloc(n); free(p); }" 1;
    case "CUDA-3 unbalanced cudaMalloc" "CUDA-3"
      "void F(int n) { float* d; cudaMalloc((void**)&d, n); }" 1;
    case "CUDA-3 balanced clean" "CUDA-3"
      "void F(int n) { float* d; cudaMalloc((void**)&d, n); cudaFree(d); }" 0;
    case "CUDA-4 unchecked launch" "CUDA-4"
      "__global__ void K(int n) { }\nvoid F() { K<<<1, 32>>>(4); }" 1;
    case "CUDA-4 checked launch clean" "CUDA-4"
      "__global__ void K(int n) { }\nvoid F() { K<<<1, 32>>>(4); cudaDeviceSynchronize(); }" 0;
    case "CUDA-5 recursive device fn" "CUDA-5"
      "__device__ int D(int n) { if (n <= 0) { return 0; } return D(n - 1); }" 1;
    case "CUDA-6 pointer-heavy kernel" "CUDA-6"
      "__global__ void K(float* a, float* b, float* c, float* d, float* e, int n) { }" 1;
  ]

let extended_cases =
  [
    case "8.2 unnamed parameter" "8.2" "int F(int, int named) { return named; }" 1;
    case "8.2 named params clean" "8.2" "int F(int a, int b) { return a + b; }" 0;
    case "14.4 arithmetic condition" "14.4" (fn "if (a) { return 1; } return 0;") 1;
    case "14.4 comparison clean" "14.4" (fn "if (a != 0) { return 1; } return 0;") 0;
    case "16.5 default in the middle" "16.5"
      (fn "switch (a) { case 0: break; default: break; case 1: break; } return a;") 1;
    case "16.5 default last clean" "16.5"
      (fn "switch (a) { case 0: break; case 1: break; default: break; } return a;") 0;
    case "16.7 boolean switch expression" "16.7"
      (fn "switch (a > 0) { case 0: return 1; default: return 2; }") 1;
    case "17.4 missing return path" "17.4"
      "int F(int a) { if (a > 0) { return 1; } }" 1;
    case "17.4 both branches return" "17.4"
      "int F(int a) { if (a > 0) { return 1; } else { return 0; } }" 0;
    case "17.4 switch all clauses return" "17.4"
      "int F(int a) { switch (a) { case 0: return 1; default: return 2; } }" 0;
    case "18.4 pointer plus" "18.4"
      "float F(float* p, int i) { float* q = p + i; return q[0]; }" 1;
    case "18.4 indexing clean" "18.4" "float F(float* p, int i) { return p[i]; }" 0;
    case "21.7 atoi" "21.7" "int F(char* s) { return atoi(s); }" 1;
    case "21.9 qsort" "21.9" "void F(int* a, int n) { qsort(a, n, 1, 0); }" 1;
    case "21.10 time" "21.10" "int F() { return (int)time(0); }" 1;
    case "8.7 single-unit function" "8.7"
      "int Local(int a) { return a; }\nint Caller(int a) { return Local(a); }" 1;
    case "8.7 static clean" "8.7"
      "static int Local(int a) { return a; }\nint Caller(int a) { return Local(a); }" 0;
  ]

let wave3_cases =
  [
    case "3.1 nested block opener" "3.1" "/* outer /* inner */\nint g_x = 0;" 1;
    case "3.1 clean comments" "3.1" "// fine\n/* also fine */\nint g_x = 0;" 0;
    case "10.4 mixed arithmetic" "10.4" "float F(int n, float x) { return n + x; }" 1;
    case "10.4 same types clean" "10.4" "float F(float y, float x) { return y + x; }" 0;
    case "13.3 increment with call" "13.3" (fn "G(a++); return a;") 1;
    case "13.3 lone increment clean" "13.3" (fn "a++; return a;") 0;
    case "13.6 side effect in sizeof" "13.6" (fn "a = sizeof b++; return a;") 1;
    case "13.6 pure sizeof clean" "13.6" (fn "a = sizeof b; return a;") 0;
    case "18.6 returning local address" "18.6"
      "int* F(int a) { int local = a; return &local; }" 1;
    case "18.6 returning param pointer ok" "18.6" "int* F(int* p) { return p; }" 0;
    case "21.4 setjmp" "21.4" "int F(int* env) { return setjmp(env); }" 1;
    case "21.5 signal" "21.5" "void F() { signal(2, 0); }" 1;
  ]

(* 16.2: nested case labels need multi-statement construction *)
let test_16_2_nested_case () =
  let src =
    fn "switch (a) {\n  case 0:\n    if (b > 0) {\n      case 1: b = 2;\n    }\n    break;\n  default: break;\n}\nreturn b;"
  in
  Alcotest.(check int) "nested case flagged" 1 (List.length (violations "16.2" src))

(* registry-level behaviour *)
let test_registry_runs_all () =
  let report = Misra.Registry.run (ctx_of "int F(int a) { return a; }") in
  Alcotest.(check int) "all rules ran" (List.length Misra.Registry.all_rules)
    report.Misra.Registry.rules_checked;
  Alcotest.(check bool) "compliance in [0,1]" true
    (Misra.Registry.rule_compliance report >= 0.0
     && Misra.Registry.rule_compliance report <= 1.0)

let test_registry_by_category () =
  let report = Misra.Registry.run (ctx_of "void F(int n) { int* p = (int*)malloc(n); free(p); }") in
  let by_cat = Misra.Registry.by_category report in
  let required = List.assoc Misra.Rule.Required by_cat in
  Alcotest.(check bool) "required violations found" true (required > 0)

let test_registry_rule_subset () =
  let rules = [ Option.get (Misra.Registry.find_rule "15.1") ] in
  let report = Misra.Registry.run ~rules (ctx_of (fn "goto out; out: return a;")) in
  Alcotest.(check int) "only selected rule" 1 report.Misra.Registry.rules_checked;
  Alcotest.(check int) "one violation" 1 report.Misra.Registry.total_violations

let test_render_summary () =
  let report = Misra.Registry.run (ctx_of "int F(int a) { return a; }") in
  let s = Misra.Registry.render_summary report in
  Alcotest.(check bool) "mentions a rule id" true (Util.Strutil.contains_sub ~sub:"15.1" s)

let prop_rules_never_fire_on_minimal =
  QCheck.Test.make ~name:"rule engine is deterministic" ~count:10
    QCheck.(int_range 1 100)
    (fun seed ->
      let specs = [ List.hd Corpus.Apollo_profile.small ] in
      let project = Corpus.Generator.generate ~seed specs in
      let parsed = Cfront.Project.parse project in
      let r1 = Misra.Registry.run (Misra.Rule.build_context parsed) in
      let r2 = Misra.Registry.run (Misra.Rule.build_context parsed) in
      r1.Misra.Registry.total_violations = r2.Misra.Registry.total_violations)

let () =
  Alcotest.run "misra"
    [
      ("control-flow rules", control_cases);
      ("type and expression rules", type_cases);
      ("function and memory rules", function_cases);
      ("preprocessor rules", preproc_cases);
      ( "extended rules",
        extended_cases
        @ [ Alcotest.test_case "16.2 nested case" `Quick test_16_2_nested_case ] );
      ("wave3 rules", wave3_cases);
      ("cuda extension rules", cuda_cases);
      ( "registry",
        [
          Alcotest.test_case "runs all rules" `Quick test_registry_runs_all;
          Alcotest.test_case "by category" `Quick test_registry_by_category;
          Alcotest.test_case "rule subset" `Quick test_registry_rule_subset;
          Alcotest.test_case "render summary" `Quick test_render_summary;
          QCheck_alcotest.to_alcotest prop_rules_never_fire_on_minimal;
        ] );
    ]
