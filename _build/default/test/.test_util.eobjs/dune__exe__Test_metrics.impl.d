test/test_metrics.ml: Alcotest Cfront Corpus List Metrics QCheck QCheck_alcotest String
