test/test_integration.ml: Alcotest Corpus Coverage Gpuperf Iso26262 Lazy List Metrics Misra Util
