test/test_corpus.ml: Alcotest Cfront Corpus Coverage Cudasim Lazy List Metrics Misra Util
