test/test_util.ml: Alcotest Fun Gen List QCheck QCheck_alcotest String Util
