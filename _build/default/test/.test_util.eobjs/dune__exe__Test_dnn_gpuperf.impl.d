test/test_dnn_gpuperf.ml: Alcotest Dnn Gpuperf Lazy List QCheck QCheck_alcotest Util
