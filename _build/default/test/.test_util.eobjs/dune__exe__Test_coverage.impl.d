test/test_coverage.ml: Alcotest Cfront Corpus Coverage Int64 List Printf QCheck QCheck_alcotest Stdlib Util
