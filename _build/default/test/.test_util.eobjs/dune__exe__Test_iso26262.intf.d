test/test_iso26262.mli:
