test/test_dnn_gpuperf.mli:
