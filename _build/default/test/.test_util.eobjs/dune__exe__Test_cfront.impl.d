test/test_cfront.ml: Alcotest Bytes Cfront Char Corpus List Printf QCheck QCheck_alcotest String Util
