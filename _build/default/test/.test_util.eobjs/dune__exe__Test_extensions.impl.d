test/test_extensions.ml: Alcotest Cfront Corpus Coverage Cudasim Gpuperf Iso26262 Lazy List Metrics Misra Option Util
