test/test_misra.ml: Alcotest Cfront Corpus List Misra Option Printf QCheck QCheck_alcotest Util
