test/test_iso26262.ml: Alcotest Cfront Corpus Cudasim Gpuperf Iso26262 Lazy List Option String Util
