(* Tests for the C/C++/CUDA front-end: lexer, preprocessor, parser,
   pretty-printer, call graph. *)

let lex src = (Cfront.Lexer.tokenize ~file:"t.c" src).Cfront.Lexer.tokens

let kinds src =
  List.filter_map
    (fun (t : Cfront.Token.t) ->
      match t.Cfront.Token.kind with Cfront.Token.Eof -> None | k -> Some k)
    (lex src)

let parse src = Cfront.Parser.parse_file ~file:"t.cc" src

let parse_clean src =
  let tu = parse src in
  Alcotest.(check (list string)) "no diagnostics" [] tu.Cfront.Ast.diags;
  tu

let first_func tu =
  match Cfront.Ast.functions_of_tu tu with
  | f :: _ -> f
  | [] -> Alcotest.fail "expected a function"

(* ------------------------------------------------------------------ *)
(* Lexer                                                                *)
(* ------------------------------------------------------------------ *)

let test_lex_idents_keywords () =
  match kinds "int foo" with
  | [ Cfront.Token.Keyword "int"; Cfront.Token.Ident "foo" ] -> ()
  | ks -> Alcotest.failf "unexpected: %s" (String.concat ";" (List.map Cfront.Token.kind_to_string ks))

let test_lex_int_literals () =
  (match kinds "42 0x1F 7u 100L" with
   | [ Cfront.Token.Int_lit (42L, _); Cfront.Token.Int_lit (31L, _);
       Cfront.Token.Int_lit (7L, _); Cfront.Token.Int_lit (100L, _) ] -> ()
   | _ -> Alcotest.fail "int literals")

let test_lex_float_literals () =
  match kinds "1.5 2e3 0.5f 3." with
  | [ Cfront.Token.Float_lit (a, _); Cfront.Token.Float_lit (b, _);
      Cfront.Token.Float_lit (c, _); Cfront.Token.Float_lit (d, _) ] ->
    Alcotest.(check (float 1e-9)) "1.5" 1.5 a;
    Alcotest.(check (float 1e-9)) "2e3" 2000.0 b;
    Alcotest.(check (float 1e-9)) "0.5f" 0.5 c;
    Alcotest.(check (float 1e-9)) "3." 3.0 d
  | _ -> Alcotest.fail "float literals"

let test_lex_string_escapes () =
  match kinds {|"a\nb"|} with
  | [ Cfront.Token.String_lit "a\nb" ] -> ()
  | _ -> Alcotest.fail "string escape"

let test_lex_char_literal () =
  match kinds "'x' '\\n'" with
  | [ Cfront.Token.Char_lit 'x'; Cfront.Token.Char_lit '\n' ] -> ()
  | _ -> Alcotest.fail "char literals"

let test_lex_comments_counted () =
  let r = Cfront.Lexer.tokenize ~file:"t.c" "int a; // one\n/* two\nthree */ int b;" in
  Alcotest.(check int) "comment lines" 3 r.Cfront.Lexer.comment_lines;
  Alcotest.(check int) "tokens survive" 7 (List.length r.Cfront.Lexer.tokens)

let test_lex_multichar_puncts () =
  match kinds "<<< >>> <<= :: -> && ||" with
  | [ Cfront.Token.Punct "<<<"; Cfront.Token.Punct ">>>"; Cfront.Token.Punct "<<=";
      Cfront.Token.Punct "::"; Cfront.Token.Punct "->"; Cfront.Token.Punct "&&";
      Cfront.Token.Punct "||" ] -> ()
  | _ -> Alcotest.fail "punctuators"

let test_lex_unterminated_string_diag () =
  let r = Cfront.Lexer.tokenize ~file:"t.c" "\"oops" in
  Alcotest.(check bool) "diagnostic emitted" true (r.Cfront.Lexer.diagnostics <> [])

let test_lex_locations () =
  match lex "a\n  b" with
  | [ t1; t2; _eof ] ->
    Alcotest.(check int) "a line" 1 t1.Cfront.Token.loc.Cfront.Loc.line;
    Alcotest.(check int) "b line" 2 t2.Cfront.Token.loc.Cfront.Loc.line;
    Alcotest.(check int) "b col" 3 t2.Cfront.Token.loc.Cfront.Loc.col
  | _ -> Alcotest.fail "locations"

(* ------------------------------------------------------------------ *)
(* Preprocessor                                                         *)
(* ------------------------------------------------------------------ *)

let test_preproc_includes () =
  let r = Cfront.Preproc.run ~file:"t.c" "#include <math.h>\n#include \"foo.h\"\nint a;" in
  let incs =
    List.filter_map
      (fun (_, d) ->
        match d with
        | Cfront.Preproc.Include { path; system } -> Some (path, system)
        | _ -> None)
      r.Cfront.Preproc.directives
  in
  Alcotest.(check (list (pair string bool))) "includes"
    [ ("math.h", true); ("foo.h", false) ] incs

let test_preproc_line_preservation () =
  (* stripped directives must keep later tokens on their original lines *)
  let r = Cfront.Preproc.run ~file:"t.c" "#define X 1\n#include <a.h>\nint a;" in
  let toks = (Cfront.Lexer.tokenize ~file:"t.c" r.Cfront.Preproc.text).Cfront.Lexer.tokens in
  (match toks with
   | t :: _ -> Alcotest.(check int) "int on line 3" 3 t.Cfront.Token.loc.Cfront.Loc.line
   | [] -> Alcotest.fail "no tokens")

let test_preproc_ifdef () =
  let src = "#define FEATURE 1\n#ifdef FEATURE\nint yes;\n#else\nint no;\n#endif" in
  let r = Cfront.Preproc.run ~file:"t.c" src in
  Alcotest.(check bool) "keeps taken branch" true
    (Util.Strutil.contains_sub ~sub:"yes" r.Cfront.Preproc.text);
  Alcotest.(check bool) "drops other branch" false
    (Util.Strutil.contains_sub ~sub:"no" r.Cfront.Preproc.text)

let test_preproc_if_zero () =
  let r = Cfront.Preproc.run ~file:"t.c" "#if 0\nint dead;\n#endif\nint live;" in
  Alcotest.(check bool) "drops #if 0" false
    (Util.Strutil.contains_sub ~sub:"dead" r.Cfront.Preproc.text);
  Alcotest.(check bool) "keeps rest" true
    (Util.Strutil.contains_sub ~sub:"live" r.Cfront.Preproc.text)

let test_preproc_nested_conditions () =
  let src = "#if 1\n#if 0\nint a;\n#endif\nint b;\n#endif" in
  let r = Cfront.Preproc.run ~file:"t.c" src in
  Alcotest.(check bool) "inner dropped" false
    (Util.Strutil.contains_sub ~sub:"int a" r.Cfront.Preproc.text);
  Alcotest.(check bool) "outer kept" true
    (Util.Strutil.contains_sub ~sub:"int b" r.Cfront.Preproc.text)

let test_preproc_macro_expansion () =
  let tu = parse_clean "#define BLOCK 256\nint size = BLOCK * 2;" in
  match Cfront.Ast.globals_of_tu tu with
  | [ g ] -> (
      match g.Cfront.Ast.g_decl.Cfront.Ast.v_init with
      | Some { e = Cfront.Ast.Binary (Cfront.Ast.Mul, { e = Cfront.Ast.Int_const 256L; _ }, _); _ } -> ()
      | _ -> Alcotest.fail "macro not substituted")
  | _ -> Alcotest.fail "expected one global"

let test_preproc_recursive_macro_terminates () =
  let r = Cfront.Preproc.run ~file:"t.c" "#define A A\nint x = A;" in
  let lexed = Cfront.Lexer.tokenize ~file:"t.c" r.Cfront.Preproc.text in
  let toks = Cfront.Preproc.expand_macros ~defines:[ ("A", "A") ] lexed.Cfront.Lexer.tokens in
  Alcotest.(check bool) "terminates" true (List.length toks > 0)

(* ------------------------------------------------------------------ *)
(* Parser: declarations                                                 *)
(* ------------------------------------------------------------------ *)

let test_parse_function_signature () =
  let tu = parse_clean "float Dot(const float* a, const float* b, int n) { return 0.0f; }" in
  let f = first_func tu in
  Alcotest.(check string) "name" "Dot" f.Cfront.Ast.f_name;
  Alcotest.(check int) "params" 3 (List.length f.Cfront.Ast.f_params);
  (match f.Cfront.Ast.f_ret with
   | Cfront.Ast.Tfloat -> ()
   | t -> Alcotest.failf "return type %s" (Cfront.Ast.type_to_string t))

let test_parse_namespace_scoping () =
  let tu = parse_clean "namespace apollo {\nnamespace perception {\nint F(int a) { return a; }\n}\n}" in
  let f = first_func tu in
  Alcotest.(check string) "qualified" "apollo::perception::F" (Cfront.Ast.qualified_name f)

let test_parse_qualified_definition () =
  let tu = parse_clean "int Tracker::Update(int x) { return x; }" in
  let f = first_func tu in
  Alcotest.(check string) "scope from name" "Tracker::Update" (Cfront.Ast.qualified_name f)

let test_parse_globals () =
  let tu = parse_clean "static int g_count = 0;\nconst int kMax = 5;\nextern int g_other;\ndouble g_a, g_b = 1.5;" in
  let gs = Cfront.Ast.globals_of_tu tu in
  Alcotest.(check int) "five declarators" 5 (List.length gs);
  let count = List.find (fun (g : Cfront.Ast.global_var) -> g.Cfront.Ast.g_decl.Cfront.Ast.v_name = "g_count") gs in
  Alcotest.(check bool) "static" true count.Cfront.Ast.g_static;
  let kmax = List.find (fun (g : Cfront.Ast.global_var) -> g.Cfront.Ast.g_decl.Cfront.Ast.v_name = "kMax") gs in
  Alcotest.(check bool) "const" true kmax.Cfront.Ast.g_const;
  let other = List.find (fun (g : Cfront.Ast.global_var) -> g.Cfront.Ast.g_decl.Cfront.Ast.v_name = "g_other") gs in
  Alcotest.(check bool) "extern" true other.Cfront.Ast.g_extern

let test_parse_struct () =
  let tu = parse_clean "struct Box {\n  float x;\n  float w, h;\n  int Area() { return 0; }\n};" in
  match Cfront.Ast.records_of_tu tu with
  | [ r ] ->
    Alcotest.(check string) "name" "Box" r.Cfront.Ast.r_name;
    Alcotest.(check int) "fields" 3 (List.length r.Cfront.Ast.r_fields);
    Alcotest.(check int) "methods" 1 (List.length r.Cfront.Ast.r_methods)
  | _ -> Alcotest.fail "one record"

let test_parse_class_access_and_ctor () =
  let src =
    "class Tracker {\n public:\n  Tracker(int id) { id_ = id; }\n  int Id() { return id_; }\n private:\n  int id_;\n};"
  in
  let tu = parse_clean src in
  match Cfront.Ast.records_of_tu tu with
  | [ r ] ->
    Alcotest.(check int) "ctor + method" 2 (List.length r.Cfront.Ast.r_methods);
    (match r.Cfront.Ast.r_fields with
     | [ (access, d) ] ->
       Alcotest.(check string) "field" "id_" d.Cfront.Ast.v_name;
       Alcotest.(check bool) "private" true (access = Cfront.Ast.Priv)
     | _ -> Alcotest.fail "one field")
  | _ -> Alcotest.fail "one record"

let test_parse_enum () =
  let tu = parse_clean "enum Mode { IDLE, ACTIVE = 5, DONE };" in
  let found = ref false in
  Cfront.Ast.iter_tops
    (fun top ->
      match top with
      | Cfront.Ast.Tenum e ->
        found := true;
        Alcotest.(check (list (pair string (option int)))) "items"
          [ ("IDLE", None); ("ACTIVE", Some 5); ("DONE", None) ]
          e.Cfront.Ast.en_items
      | _ -> ())
    tu.Cfront.Ast.tops;
  Alcotest.(check bool) "enum found" true !found

let test_parse_typedef_registers_type () =
  let tu = parse_clean "typedef float real;\nreal Scale(real x) { return x; }" in
  let f = first_func tu in
  (match (List.hd f.Cfront.Ast.f_params).Cfront.Ast.p_type with
   | Cfront.Ast.Tnamed "real" -> ()
   | _ -> Alcotest.fail "typedef name used as type")

let test_parse_template_skipped () =
  let tu = parse_clean "template <typename T>\nint Sum(int n) { return n; }" in
  Alcotest.(check int) "function parsed" 1 (List.length (Cfront.Ast.functions_of_tu tu))

let test_parse_tolerant_recovery () =
  let tu = parse "@@garbage@@;\nint Good(int a) { return a; }" in
  Alcotest.(check bool) "diagnostic" true (tu.Cfront.Ast.diags <> []);
  Alcotest.(check int) "recovered function" 1
    (List.length (Cfront.Ast.functions_of_tu tu));
  let unparsed =
    List.exists
      (fun top -> match top with Cfront.Ast.Tunparsed _ -> true | _ -> false)
      tu.Cfront.Ast.tops
  in
  Alcotest.(check bool) "unparsed region recorded" true unparsed

let test_parse_cuda_qualifiers () =
  let tu = parse_clean "__global__ void K(float* p, int n) {\n  int i = threadIdx.x;\n  if (i < n) { p[i] = 0.0f; }\n}" in
  let f = first_func tu in
  Alcotest.(check bool) "kernel" true (List.mem Cfront.Ast.Q_global f.Cfront.Ast.f_quals)

let test_parse_device_global_var () =
  let tu = parse_clean "__device__ float d_bias = 0.5f;" in
  match Cfront.Ast.globals_of_tu tu with
  | [ g ] -> Alcotest.(check bool) "device" true g.Cfront.Ast.g_device
  | _ -> Alcotest.fail "one global"

(* ------------------------------------------------------------------ *)
(* Parser: statements and expressions                                   *)
(* ------------------------------------------------------------------ *)

let body_stmts src =
  let tu = parse_clean (Printf.sprintf "void F() {\n%s\n}" src) in
  match (first_func tu).Cfront.Ast.f_body with
  | Some { s = Cfront.Ast.Sblock ss; _ } -> ss
  | _ -> Alcotest.fail "expected block body"

let test_parse_precedence () =
  match body_stmts "int x = 1 + 2 * 3;" with
  | [ { s = Cfront.Ast.Sdecl [ d ]; _ } ] -> (
      match d.Cfront.Ast.v_init with
      | Some { e = Cfront.Ast.Binary (Cfront.Ast.Add, _,
                                      { e = Cfront.Ast.Binary (Cfront.Ast.Mul, _, _); _ }); _ } -> ()
      | _ -> Alcotest.fail "mul binds tighter than add")
  | _ -> Alcotest.fail "decl expected"

let test_parse_logical_precedence () =
  match body_stmts "int x = 1 || 0 && 0;" with
  | [ { s = Cfront.Ast.Sdecl [ d ]; _ } ] -> (
      match d.Cfront.Ast.v_init with
      | Some { e = Cfront.Ast.Binary (Cfront.Ast.Lor, _,
                                      { e = Cfront.Ast.Binary (Cfront.Ast.Land, _, _); _ }); _ } -> ()
      | _ -> Alcotest.fail "&& binds tighter than ||")
  | _ -> Alcotest.fail "decl expected"

let test_parse_casts () =
  match body_stmts "float f = 2.5f; int a = (int)f; float b = static_cast<float>(a);" with
  | [ _; { s = Cfront.Ast.Sdecl [ d1 ]; _ }; { s = Cfront.Ast.Sdecl [ d2 ]; _ } ] ->
    (match d1.Cfront.Ast.v_init with
     | Some { e = Cfront.Ast.C_cast (Cfront.Ast.Tint _, _); _ } -> ()
     | _ -> Alcotest.fail "C cast");
    (match d2.Cfront.Ast.v_init with
     | Some { e = Cfront.Ast.Cpp_cast (Cfront.Ast.Static_cast, Cfront.Ast.Tfloat, _); _ } -> ()
     | _ -> Alcotest.fail "static_cast")
  | _ -> Alcotest.fail "three decls"

let test_parse_paren_not_cast () =
  (* (n) * x where n is not a type must be multiplication *)
  match body_stmts "int n = 2; int x = 3; int y = (n) * x;" with
  | [ _; _; { s = Cfront.Ast.Sdecl [ d ]; _ } ] -> (
      match d.Cfront.Ast.v_init with
      | Some { e = Cfront.Ast.Binary (Cfront.Ast.Mul, _, _); _ } -> ()
      | _ -> Alcotest.fail "parsed as cast, expected multiplication")
  | _ -> Alcotest.fail "three decls"

let test_parse_kernel_launch () =
  match body_stmts "K<<<2, 64>>>(1, 2);" with
  | [ { s = Cfront.Ast.Sexpr { e = Cfront.Ast.Kernel_launch { grid; block; args; _ }; _ }; _ } ] ->
    (match (grid.Cfront.Ast.e, block.Cfront.Ast.e) with
     | Cfront.Ast.Int_const 2L, Cfront.Ast.Int_const 64L -> ()
     | _ -> Alcotest.fail "launch config");
    Alcotest.(check int) "args" 2 (List.length args)
  | _ -> Alcotest.fail "kernel launch"

let test_parse_new_delete () =
  match body_stmts "float* p = new float[10]; delete[] p;" with
  | [ { s = Cfront.Ast.Sdecl [ d ]; _ };
      { s = Cfront.Ast.Sexpr { e = Cfront.Ast.Delete { array = true; _ }; _ }; _ } ] -> (
      match d.Cfront.Ast.v_init with
      | Some { e = Cfront.Ast.New { array_size = Some _; _ }; _ } -> ()
      | _ -> Alcotest.fail "new[]")
  | _ -> Alcotest.fail "new/delete"

let test_parse_sizeof () =
  match body_stmts "int a = sizeof(float); int b = sizeof a;" with
  | [ { s = Cfront.Ast.Sdecl [ d1 ]; _ }; { s = Cfront.Ast.Sdecl [ d2 ]; _ } ] ->
    (match d1.Cfront.Ast.v_init with
     | Some { e = Cfront.Ast.Sizeof_type Cfront.Ast.Tfloat; _ } -> ()
     | _ -> Alcotest.fail "sizeof(type)");
    (match d2.Cfront.Ast.v_init with
     | Some { e = Cfront.Ast.Sizeof_expr _; _ } -> ()
     | _ -> Alcotest.fail "sizeof expr")
  | _ -> Alcotest.fail "two decls"

let test_parse_for_variants () =
  let ss = body_stmts "for (int i = 0; i < 3; ++i) { }\nfor (;;) { break; }" in
  match ss with
  | [ { s = Cfront.Ast.Sfor { init = Cfront.Ast.Fi_decl _; cond = Some _; update = Some _; _ }; _ };
      { s = Cfront.Ast.Sfor { init = Cfront.Ast.Fi_empty; cond = None; update = None; _ }; _ } ] -> ()
  | _ -> Alcotest.fail "for variants"

let test_parse_switch_and_labels () =
  let ss = body_stmts "switch (1) { case 0: break; default: break; }\ngoto end;\nend: return;" in
  Alcotest.(check int) "three statements" 3 (List.length ss);
  (match List.nth ss 2 with
   | { s = Cfront.Ast.Slabel ("end", { s = Cfront.Ast.Sreturn None; _ }); _ } -> ()
   | _ -> Alcotest.fail "label")

let test_parse_do_while () =
  match body_stmts "int i = 0; do { i++; } while (i < 3);" with
  | [ _; { s = Cfront.Ast.Sdo_while (_, _); _ } ] -> ()
  | _ -> Alcotest.fail "do-while"

let test_parse_try_catch () =
  match body_stmts "try { throw 1; } catch (int e) { return; }" with
  | [ { s = Cfront.Ast.Stry { catches = [ _ ]; _ }; _ } ] -> ()
  | _ -> Alcotest.fail "try/catch"

let test_parse_ternary_and_comma () =
  match body_stmts "int a = 1 ? 2 : 3; a = 1, a = 2;" with
  | [ { s = Cfront.Ast.Sdecl [ d ]; _ };
      { s = Cfront.Ast.Sexpr { e = Cfront.Ast.Binary (Cfront.Ast.Comma, _, _); _ }; _ } ] -> (
      match d.Cfront.Ast.v_init with
      | Some { e = Cfront.Ast.Ternary _; _ } -> ()
      | _ -> Alcotest.fail "ternary")
  | _ -> Alcotest.fail "ternary/comma"

let test_parse_member_chains () =
  match body_stmts "obj.field = ptr->next;" with
  | [ { s = Cfront.Ast.Sexpr
            { e = Cfront.Ast.Assign (_, { e = Cfront.Ast.Member { arrow = false; field = "field"; _ }; _ },
                                     { e = Cfront.Ast.Member { arrow = true; field = "next"; _ }; _ }); _ }; _ } ] -> ()
  | _ -> Alcotest.fail "member access"

let test_parse_extern_c () =
  let tu = parse_clean "extern \"C\" int CApi(int x);" in
  let f = first_func tu in
  Alcotest.(check bool) "extern" true (List.mem Cfront.Ast.Q_extern f.Cfront.Ast.f_quals);
  Alcotest.(check bool) "prototype" true (f.Cfront.Ast.f_body = None)

let test_unique_ids_across_tus () =
  let tu1 = parse "int A() { return 1; }" in
  let tu2 = parse "int B() { return 2; }" in
  let ids tu =
    let acc = ref [] in
    List.iter
      (fun f ->
        Cfront.Ast.iter_exprs_of_func (fun e -> acc := e.Cfront.Ast.eid :: !acc) f)
      (Cfront.Ast.functions_of_tu tu);
    !acc
  in
  let shared = List.filter (fun i -> List.mem i (ids tu2)) (ids tu1) in
  Alcotest.(check (list int)) "no id collisions" [] shared

(* ------------------------------------------------------------------ *)
(* Pretty-printer round trip                                            *)
(* ------------------------------------------------------------------ *)

let structural_counts tu =
  let fns = Cfront.Ast.functions_of_tu tu in
  let stmts = ref 0 in
  List.iter
    (fun (f : Cfront.Ast.func) ->
      match f.Cfront.Ast.f_body with
      | Some b -> Cfront.Ast.iter_stmts (fun _ -> incr stmts) b
      | None -> ())
    fns;
  (List.length fns, !stmts, List.length (Cfront.Ast.globals_of_tu tu))

let test_pretty_roundtrip () =
  let src =
    "namespace n {\nint g_v = 3;\nint F(int a, float b) {\n  int r = 0;\n  \
     for (int i = 0; i < a; ++i) {\n    if (a > 2 && b > 0.5) { r += i; } else { r--; }\n  }\n  \
     switch (r % 3) {\n    case 0: r = 1; break;\n    default: break;\n  }\n  return r;\n}\n}"
  in
  let tu1 = parse_clean src in
  let printed = Cfront.Pretty.tu_str tu1 in
  let tu2 = Cfront.Parser.parse_file ~file:"roundtrip.cc" printed in
  Alcotest.(check (list string)) "reprint parses clean" [] tu2.Cfront.Ast.diags;
  let f1, s1, g1 = structural_counts tu1 and f2, s2, g2 = structural_counts tu2 in
  Alcotest.(check int) "functions preserved" f1 f2;
  Alcotest.(check int) "stmts preserved" s1 s2;
  Alcotest.(check int) "globals preserved" g1 g2

let prop_corpus_files_roundtrip =
  QCheck.Test.make ~name:"generated corpus files parse-print-parse stably" ~count:8
    QCheck.(int_range 1 1000)
    (fun seed ->
      let specs = [ List.hd Corpus.Apollo_profile.small ] in
      let project = Corpus.Generator.generate ~seed specs in
      match Cfront.Project.all_files project with
      | f :: _ ->
        let tu1 = Cfront.Parser.parse_file ~file:"f.cc" f.Cfront.Project.content in
        let tu2 = Cfront.Parser.parse_file ~file:"f2.cc" (Cfront.Pretty.tu_str tu1) in
        tu1.Cfront.Ast.diags = [] && tu2.Cfront.Ast.diags = []
        && structural_counts tu1 = structural_counts tu2
      | [] -> false)

(* The tolerant parser must never raise, whatever bytes arrive: fuzz by
   mutating a well-formed generated file. *)
let prop_parser_total_on_mutations =
  QCheck.Test.make ~name:"parser is total under random mutation" ~count:60
    QCheck.(triple (int_range 1 1000) (int_range 0 5000) (int_range 0 255))
    (fun (seed, pos, byte) ->
      let specs = [ List.nth Corpus.Apollo_profile.small 5 ] in
      let project = Corpus.Generator.generate ~seed specs in
      match Cfront.Project.all_files project with
      | f :: _ ->
        let src = Bytes.of_string f.Cfront.Project.content in
        let n = Bytes.length src in
        if n = 0 then true
        else begin
          Bytes.set src (pos mod n) (Char.chr byte);
          (* also truncate sometimes *)
          let text =
            if byte mod 3 = 0 then Bytes.sub_string src 0 (pos mod n)
            else Bytes.to_string src
          in
          match Cfront.Parser.parse_file ~file:"fuzz.cc" text with
          | _ -> true
          | exception _ -> false
        end
      | [] -> false)

(* ------------------------------------------------------------------ *)
(* Call graph                                                           *)
(* ------------------------------------------------------------------ *)

let graph_of src =
  let tu = parse_clean src in
  Cfront.Callgraph.build (Cfront.Ast.functions_of_tu tu)

let test_callgraph_edges () =
  let g = graph_of "int A() { return 1; }\nint B() { return A() + A(); }" in
  Alcotest.(check (list string)) "B calls A" [ "A"; "A" ] (Cfront.Callgraph.callees g "B");
  Alcotest.(check int) "fan-in of A" 1 (Cfront.Callgraph.fan_in g "A");
  Alcotest.(check int) "fan-out of B" 1 (Cfront.Callgraph.fan_out g "B")

let test_callgraph_scope_resolution () =
  let src =
    "namespace m1 { int Helper() { return 1; } int Use() { return Helper(); } }\n\
     namespace m2 { int Helper() { return 2; } }"
  in
  let g = graph_of src in
  Alcotest.(check (list string)) "prefers same scope" [ "m1::Helper" ]
    (Cfront.Callgraph.callees g "m1::Use")

let test_callgraph_direct_recursion () =
  let g = graph_of "int F(int n) { if (n <= 0) { return 0; } return F(n - 1); }" in
  Alcotest.(check (list string)) "self recursive" [ "F" ]
    (Cfront.Callgraph.recursive_functions g)

let test_callgraph_mutual_recursion () =
  let g =
    graph_of
      "int Odd(int n);\nint Even(int n) { if (n == 0) { return 1; } return Odd(n - 1); }\n\
       int Odd(int n) { if (n == 0) { return 0; } return Even(n - 1); }"
  in
  Alcotest.(check (list string)) "mutual pair" [ "Even"; "Odd" ]
    (List.sort compare (Cfront.Callgraph.recursive_functions g))

let test_callgraph_no_recursion () =
  let g = graph_of "int A() { return 1; }\nint B() { return A(); }" in
  Alcotest.(check (list string)) "none" [] (Cfront.Callgraph.recursive_functions g)

let () =
  Alcotest.run "cfront"
    [
      ( "lexer",
        [
          Alcotest.test_case "idents and keywords" `Quick test_lex_idents_keywords;
          Alcotest.test_case "int literals" `Quick test_lex_int_literals;
          Alcotest.test_case "float literals" `Quick test_lex_float_literals;
          Alcotest.test_case "string escapes" `Quick test_lex_string_escapes;
          Alcotest.test_case "char literals" `Quick test_lex_char_literal;
          Alcotest.test_case "comments counted" `Quick test_lex_comments_counted;
          Alcotest.test_case "multichar punctuators" `Quick test_lex_multichar_puncts;
          Alcotest.test_case "unterminated string" `Quick test_lex_unterminated_string_diag;
          Alcotest.test_case "locations" `Quick test_lex_locations;
        ] );
      ( "preproc",
        [
          Alcotest.test_case "includes" `Quick test_preproc_includes;
          Alcotest.test_case "line preservation" `Quick test_preproc_line_preservation;
          Alcotest.test_case "ifdef" `Quick test_preproc_ifdef;
          Alcotest.test_case "if 0" `Quick test_preproc_if_zero;
          Alcotest.test_case "nested conditions" `Quick test_preproc_nested_conditions;
          Alcotest.test_case "macro expansion" `Quick test_preproc_macro_expansion;
          Alcotest.test_case "recursive macro terminates" `Quick
            test_preproc_recursive_macro_terminates;
        ] );
      ( "parser-decls",
        [
          Alcotest.test_case "function signature" `Quick test_parse_function_signature;
          Alcotest.test_case "namespace scoping" `Quick test_parse_namespace_scoping;
          Alcotest.test_case "qualified definition" `Quick test_parse_qualified_definition;
          Alcotest.test_case "globals" `Quick test_parse_globals;
          Alcotest.test_case "struct" `Quick test_parse_struct;
          Alcotest.test_case "class access and ctor" `Quick test_parse_class_access_and_ctor;
          Alcotest.test_case "enum" `Quick test_parse_enum;
          Alcotest.test_case "typedef registers type" `Quick test_parse_typedef_registers_type;
          Alcotest.test_case "template skipped" `Quick test_parse_template_skipped;
          Alcotest.test_case "tolerant recovery" `Quick test_parse_tolerant_recovery;
          Alcotest.test_case "cuda qualifiers" `Quick test_parse_cuda_qualifiers;
          Alcotest.test_case "device global" `Quick test_parse_device_global_var;
          Alcotest.test_case "extern C" `Quick test_parse_extern_c;
          Alcotest.test_case "unique ids across TUs" `Quick test_unique_ids_across_tus;
        ] );
      ( "parser-stmts",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "logical precedence" `Quick test_parse_logical_precedence;
          Alcotest.test_case "casts" `Quick test_parse_casts;
          Alcotest.test_case "paren is not cast" `Quick test_parse_paren_not_cast;
          Alcotest.test_case "kernel launch" `Quick test_parse_kernel_launch;
          Alcotest.test_case "new/delete" `Quick test_parse_new_delete;
          Alcotest.test_case "sizeof" `Quick test_parse_sizeof;
          Alcotest.test_case "for variants" `Quick test_parse_for_variants;
          Alcotest.test_case "switch and labels" `Quick test_parse_switch_and_labels;
          Alcotest.test_case "do-while" `Quick test_parse_do_while;
          Alcotest.test_case "try/catch" `Quick test_parse_try_catch;
          Alcotest.test_case "ternary and comma" `Quick test_parse_ternary_and_comma;
          Alcotest.test_case "member chains" `Quick test_parse_member_chains;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "roundtrip" `Quick test_pretty_roundtrip;
          QCheck_alcotest.to_alcotest prop_corpus_files_roundtrip;
          QCheck_alcotest.to_alcotest prop_parser_total_on_mutations;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "edges and fans" `Quick test_callgraph_edges;
          Alcotest.test_case "scope resolution" `Quick test_callgraph_scope_resolution;
          Alcotest.test_case "direct recursion" `Quick test_callgraph_direct_recursion;
          Alcotest.test_case "mutual recursion" `Quick test_callgraph_mutual_recursion;
          Alcotest.test_case "no recursion" `Quick test_callgraph_no_recursion;
        ] );
    ]
