(* Tests for the static-metrics library: complexity, LOC, function shape,
   casts, globals, uninitialized reads, pointers, shadowing, naming,
   style, defensive programming, architecture. *)

let parse src = Cfront.Parser.parse_file ~file:"m.cc" src

let funcs src = Cfront.Ast.functions_of_tu (parse src)

let cc_of src =
  match Metrics.Complexity.of_functions (funcs src) with
  | [ c ] -> c.Metrics.Complexity.cc
  | _ -> Alcotest.fail "expected exactly one function"

let parsed_file ?(path = "m.cc") ?(modname = "m") src =
  { Cfront.Project.file = { Cfront.Project.path; modname; header = false; content = src };
    tu = Cfront.Parser.parse_file ~file:path src }

(* ------------------------------------------------------------------ *)
(* Cyclomatic complexity                                                *)
(* ------------------------------------------------------------------ *)

let test_cc_straight_line () =
  Alcotest.(check int) "CC 1" 1 (cc_of "int F(int a) { int b = a; return b; }")

let test_cc_if () =
  Alcotest.(check int) "CC 2" 2 (cc_of "int F(int a) { if (a > 0) { a = 1; } return a; }")

let test_cc_if_else () =
  Alcotest.(check int) "else adds nothing" 2
    (cc_of "int F(int a) { if (a > 0) { a = 1; } else { a = 2; } return a; }")

let test_cc_nested_ifs () =
  Alcotest.(check int) "CC 3" 3
    (cc_of "int F(int a) { if (a > 0) { if (a > 5) { a = 9; } } return a; }")

let test_cc_short_circuit () =
  Alcotest.(check int) "&& and || count" 4
    (cc_of "int F(int a, int b) { if (a > 0 && b > 0 || a < -5) { a = 1; } return a; }")

let test_cc_loops () =
  Alcotest.(check int) "for+while+do" 4
    (cc_of
       "int F(int a) { for (int i = 0; i < a; ++i) { a--; } \
        while (a > 0) { a--; } do { a++; } while (a < 0); return a; }")

let test_cc_switch_cases () =
  Alcotest.(check int) "cases count, default does not" 3
    (cc_of
       "int F(int a) { switch (a) { case 0: return 1; case 1: return 2; default: return 3; } }")

let test_cc_ternary () =
  Alcotest.(check int) "ternary counts" 2 (cc_of "int F(int a) { return a > 0 ? 1 : 2; }")

let test_cc_buckets () =
  Alcotest.(check bool) "low" true (Metrics.Complexity.bucket_of_cc 10 = Metrics.Complexity.Low);
  Alcotest.(check bool) "moderate" true (Metrics.Complexity.bucket_of_cc 11 = Metrics.Complexity.Moderate);
  Alcotest.(check bool) "risky" true (Metrics.Complexity.bucket_of_cc 21 = Metrics.Complexity.Risky);
  Alcotest.(check bool) "unstable" true (Metrics.Complexity.bucket_of_cc 51 = Metrics.Complexity.Unstable)

let test_nesting_depth () =
  let depth src =
    match funcs src with
    | [ fn ] -> Metrics.Complexity.nesting_of_func fn
    | _ -> Alcotest.fail "one function"
  in
  Alcotest.(check int) "flat" 0 (depth "int F(int a) { return a; }");
  Alcotest.(check int) "single if" 1
    (depth "int F(int a) { if (a > 0) { a = 1; } return a; }");
  Alcotest.(check int) "loop in if in loop" 3
    (depth
       "int F(int a) { for (int i = 0; i < a; ++i) { if (i > 2) { \
        while (a > 0) { a--; } } } return a; }");
  Alcotest.(check int) "else branch counts" 2
    (depth
       "int F(int a) { if (a > 0) { a = 1; } else { if (a < -5) { a = 2; } } return a; }")

let prop_cc_at_least_one =
  QCheck.Test.make ~name:"CC >= 1 on generated corpus functions" ~count:5
    QCheck.(int_range 1 500)
    (fun seed ->
      let specs = [ List.hd Corpus.Apollo_profile.small ] in
      let project = Corpus.Generator.generate ~seed specs in
      let parsed = Cfront.Project.parse project in
      List.for_all
        (fun (c : Metrics.Complexity.func_cc) -> c.Metrics.Complexity.cc >= 1)
        (Metrics.Complexity.of_functions (Cfront.Project.all_functions parsed)))

(* ------------------------------------------------------------------ *)
(* LOC                                                                  *)
(* ------------------------------------------------------------------ *)

let test_loc_counts () =
  let tu = parse "// header comment\n\nint F() {\n  return 1;\n}\n" in
  let c = Metrics.Loc_metrics.of_tu tu in
  Alcotest.(check int) "blank" 2 c.Metrics.Loc_metrics.blank;
  Alcotest.(check int) "comment lines" 1 c.Metrics.Loc_metrics.comment;
  Alcotest.(check int) "physical" 4 c.Metrics.Loc_metrics.physical;
  Alcotest.(check int) "logical stmts" 1 c.Metrics.Loc_metrics.logical

let test_loc_add () =
  let a = { Metrics.Loc_metrics.physical = 1; blank = 2; comment = 3; logical = 4; total = 5 } in
  let s = Metrics.Loc_metrics.add a a in
  Alcotest.(check int) "sum" 2 s.Metrics.Loc_metrics.physical;
  Alcotest.(check int) "total" 10 s.Metrics.Loc_metrics.total

(* ------------------------------------------------------------------ *)
(* Function shape                                                       *)
(* ------------------------------------------------------------------ *)

let shape_of src =
  match Metrics.Func_shape.of_functions (funcs src) with
  | [ s ] -> s
  | _ -> Alcotest.fail "one function expected"

let test_shape_single_exit () =
  let s = shape_of "int F(int a) { a = a + 1; return a; }" in
  Alcotest.(check bool) "not multi exit" false s.Metrics.Func_shape.multi_exit;
  Alcotest.(check int) "one return" 1 s.Metrics.Func_shape.returns

let test_shape_two_returns () =
  let s = shape_of "int F(int a) { if (a < 0) { return -1; } return a; }" in
  Alcotest.(check bool) "multi exit" true s.Metrics.Func_shape.multi_exit;
  Alcotest.(check int) "two returns" 2 s.Metrics.Func_shape.returns

let test_shape_return_not_last () =
  let s = shape_of "void F(int a) { if (a > 0) { return; } a = 1; }" in
  Alcotest.(check bool) "early return only" true s.Metrics.Func_shape.multi_exit

let test_shape_goto_counted () =
  let s = shape_of "int F(int a) { if (a < 0) { goto out; } a++; out: return a; }" in
  Alcotest.(check int) "gotos" 1 s.Metrics.Func_shape.gotos

let test_shape_throw_is_exit () =
  let s = shape_of "int F(int a) { if (a < 0) { throw 1; } return a; }" in
  Alcotest.(check bool) "throw makes multi-exit" true s.Metrics.Func_shape.multi_exit;
  Alcotest.(check int) "throws" 1 s.Metrics.Func_shape.throws

let test_multi_exit_fraction () =
  let fns =
    funcs
      "int A(int x) { return x; }\nint B(int x) { if (x > 0) { return 1; } return 0; }"
  in
  Alcotest.(check (float 1e-9)) "half" 0.5 (Metrics.Func_shape.multi_exit_fraction fns)

(* ------------------------------------------------------------------ *)
(* Casts                                                                *)
(* ------------------------------------------------------------------ *)

let test_casts_explicit () =
  let records =
    Metrics.Casts.of_functions
      (funcs
         "void F(float x) { int a = (int)x; float b = static_cast<float>(a); \
          int* p = reinterpret_cast<int*>(0); const int* q = const_cast<int*>(p); }")
  in
  Alcotest.(check int) "four explicit" 4 (Metrics.Casts.explicit_count records)

let test_casts_implicit_narrowing () =
  let records =
    Metrics.Casts.of_functions (funcs "void F(float x) { int a = 0; a = x; }")
  in
  let narrowing =
    List.filter (fun (r : Metrics.Casts.record) -> r.Metrics.Casts.kind = Metrics.Casts.Implicit_narrowing) records
  in
  Alcotest.(check int) "one narrowing" 1 (List.length narrowing)

let test_casts_implicit_widening_in_init () =
  let records =
    Metrics.Casts.of_functions (funcs "void F(int n) { float x = n; }")
  in
  Alcotest.(check int) "one implicit" 1 (Metrics.Casts.implicit_count records)

let test_casts_none_for_matching_types () =
  let records =
    Metrics.Casts.of_functions (funcs "void F(int n) { int m = n + 1; m = n; }")
  in
  Alcotest.(check int) "clean" 0 (List.length records)

(* ------------------------------------------------------------------ *)
(* Globals                                                              *)
(* ------------------------------------------------------------------ *)

let test_globals_census () =
  let tu =
    parse
      "int g_mutable = 0;\nstatic float g_static;\nconst int kConst = 1;\nextern int g_ext;\n\
       namespace m { double g_scoped = 0.0; }"
  in
  let gs = Metrics.Globals.of_tu tu in
  Alcotest.(check int) "three mutable" 3 (List.length gs);
  Alcotest.(check bool) "scoped name recorded" true
    (List.exists (fun (g : Metrics.Globals.record) -> g.Metrics.Globals.scope = [ "m" ]) gs)

let test_globals_uninitialized () =
  let pf = parsed_file "int g_a;\nint g_b = 2;" in
  Alcotest.(check int) "one uninitialized" 1
    (List.length (Metrics.Globals.uninitialized_globals [ pf ]))

(* ------------------------------------------------------------------ *)
(* Uninitialized locals                                                 *)
(* ------------------------------------------------------------------ *)

let uninit_of src = Metrics.Uninit.of_functions (funcs src)

let test_uninit_basic () =
  Alcotest.(check int) "flagged" 1
    (List.length (uninit_of "int F(int a) { int x; return a + x; }"))

let test_uninit_initialized_clean () =
  Alcotest.(check int) "clean" 0
    (List.length (uninit_of "int F(int a) { int x = 0; return a + x; }"))

let test_uninit_branch_read () =
  Alcotest.(check int) "read in branch" 1
    (List.length
       (uninit_of "int F(int a) { int x; if (a > 0) { a = a + x; } return a; }"))

let test_uninit_branch_assign_then_read () =
  (* assignment on one branch is not definite: later read still flagged *)
  Alcotest.(check int) "conditional assign insufficient" 1
    (List.length
       (uninit_of
          "int F(int a) { int x; if (a > 0) { x = 1; } return x; }"))

let test_uninit_definite_assignment () =
  Alcotest.(check int) "straight-line assign clears" 0
    (List.length (uninit_of "int F(int a) { int x; x = a; return x; }"))

let test_uninit_address_of_counts_as_write () =
  Alcotest.(check int) "out-parameter idiom clean" 0
    (List.length
       (uninit_of "int F(int a) { int x; Init(&x); return x; }"))

let test_uninit_arrays_exempt () =
  Alcotest.(check int) "arrays exempt" 0
    (List.length (uninit_of "int F(int a) { int buf[4]; return buf[0]; }"))

(* ------------------------------------------------------------------ *)
(* Pointers and dynamic memory                                          *)
(* ------------------------------------------------------------------ *)

let test_pointer_usage () =
  let u =
    Metrics.Pointers.usage_of_functions
      (funcs "void F(float* a, int n) { float* p = a; int x = p[0]; float y = *a; int* q = &n; }")
  in
  Alcotest.(check int) "ptr params" 1 u.Metrics.Pointers.ptr_params;
  Alcotest.(check int) "ptr locals" 2 u.Metrics.Pointers.ptr_locals;
  Alcotest.(check bool) "derefs seen" true (u.Metrics.Pointers.derefs >= 2);
  Alcotest.(check int) "address-of" 1 u.Metrics.Pointers.address_of

let test_dyn_alloc_kinds () =
  let allocs =
    Metrics.Pointers.dyn_allocs_of_functions
      (funcs
         "void F(int n) { float* a = (float*)malloc(n); int* b = new int[n]; \
          int* c = new int; float* d; cudaMalloc((void**)&d, n); }")
  in
  let sites = List.map (fun (a : Metrics.Pointers.dyn_alloc) -> a.Metrics.Pointers.site) allocs in
  Alcotest.(check (list string)) "all kinds"
    [ "malloc"; "new[]"; "new"; "cudaMalloc" ] sites

(* ------------------------------------------------------------------ *)
(* Shadowing                                                            *)
(* ------------------------------------------------------------------ *)

let test_shadowing_kinds () =
  let src =
    "int g_v = 0;\nvoid F(int p) {\n  int local = 1;\n  if (p > 0) {\n    int local = 2;\n    int p = 3;\n    int g_v = 4;\n    local = p + g_v;\n  }\n}"
  in
  let findings = Metrics.Shadowing.of_files [ parsed_file src ] in
  let kinds = List.map (fun (f : Metrics.Shadowing.finding) -> f.Metrics.Shadowing.kind) findings in
  Alcotest.(check bool) "local shadow" true (List.mem `Shadows_local kinds);
  Alcotest.(check bool) "param shadow" true (List.mem `Shadows_param kinds);
  Alcotest.(check bool) "global shadow" true (List.mem `Shadows_global kinds)

let test_duplicate_globals_across_files () =
  let a = parsed_file ~path:"a.cc" "int g_shared = 0;" in
  let b = parsed_file ~path:"b.cc" "int g_shared = 1;" in
  let dups =
    List.filter
      (fun (f : Metrics.Shadowing.finding) -> f.Metrics.Shadowing.kind = `Duplicate_global)
      (Metrics.Shadowing.of_files [ a; b ])
  in
  Alcotest.(check int) "both flagged" 2 (List.length dups)

let test_no_shadowing_clean () =
  let findings =
    Metrics.Shadowing.of_files
      [ parsed_file "void F(int p) { int a = p; if (a > 0) { int b = a; b++; } }" ]
  in
  Alcotest.(check int) "clean" 0 (List.length findings)

(* ------------------------------------------------------------------ *)
(* Naming                                                               *)
(* ------------------------------------------------------------------ *)

let naming_of src = Metrics.Naming.of_tu (parse src)

let test_naming_compliant () =
  let findings =
    naming_of
      "struct TrackedBox { float center_x; };\nconst int kMaxCount = 4;\n\
       int ComputeCost(int lane_count) { int total_cost = lane_count; return total_cost; }"
  in
  Alcotest.(check int) "no violations" 0 (List.length findings)

let test_naming_violations () =
  let findings =
    naming_of
      "struct bad_type { float X; };\nint snake_function(int CamelVar) { return CamelVar; }"
  in
  let rules = List.map (fun (f : Metrics.Naming.finding) -> f.Metrics.Naming.rule) findings in
  Alcotest.(check bool) "type name" true (List.mem Metrics.Naming.Type_name rules);
  Alcotest.(check bool) "function name" true (List.mem Metrics.Naming.Function_name rules);
  Alcotest.(check bool) "variable name" true (List.mem Metrics.Naming.Variable_name rules)

let test_naming_member_trailing_underscore () =
  let findings =
    naming_of "class C {\n private:\n  int good_;\n  int bad;\n};"
  in
  Alcotest.(check int) "one member violation" 1
    (List.length
       (List.filter
          (fun (f : Metrics.Naming.finding) -> f.Metrics.Naming.rule = Metrics.Naming.Member_name)
          findings))

let test_naming_constant () =
  Alcotest.(check int) "kConstant ok, lowercase flagged" 1
    (List.length (naming_of "const int kGood = 1;\nconst int not_constant_style = 2;"))

(* ------------------------------------------------------------------ *)
(* Style                                                                *)
(* ------------------------------------------------------------------ *)

let style_rules src =
  List.map (fun (f : Metrics.Style.finding) -> f.Metrics.Style.rule)
    (Metrics.Style.of_source ~file:"s.cc" src)

let test_style_long_line () =
  Alcotest.(check bool) "flagged" true
    (List.mem Metrics.Style.Line_too_long (style_rules (String.make 120 'x')))

let test_style_tab_and_trailing () =
  let rules = style_rules "int a;\t\nint b; " in
  Alcotest.(check bool) "tab" true (List.mem Metrics.Style.Tab_character rules);
  Alcotest.(check bool) "trailing" true (List.mem Metrics.Style.Trailing_whitespace rules)

let test_style_odd_indent () =
  Alcotest.(check bool) "odd indent" true
    (List.mem Metrics.Style.Odd_indentation (style_rules "   int a;"))

let test_style_brace_spacing () =
  Alcotest.(check bool) "missing space" true
    (List.mem Metrics.Style.Missing_space_before_brace (style_rules "if (a){"));
  Alcotest.(check bool) "clean" false
    (List.mem Metrics.Style.Missing_space_before_brace (style_rules "if (a) {"))

let test_style_clean_source () =
  Alcotest.(check int) "clean" 0 (List.length (style_rules "int a = 1;\nif (a > 0) {\n  a = 2;\n}"))

(* ------------------------------------------------------------------ *)
(* Defensive programming                                                *)
(* ------------------------------------------------------------------ *)

let test_defensive_param_validated () =
  let fns =
    funcs "int F(float* data, int n) { if (data == nullptr) { return -1; } return n; }"
  in
  Alcotest.(check (float 1e-9)) "validated" 1.0 (Metrics.Defensive.param_validation_ratio fns)

let test_defensive_param_unchecked () =
  let fns = funcs "float F(float* data) { return data[0]; }" in
  Alcotest.(check (float 1e-9)) "unchecked" 0.0 (Metrics.Defensive.param_validation_ratio fns)

let test_defensive_ignored_returns () =
  let fns =
    funcs "int Compute(int a) { return a; }\nvoid Use(int a) { Compute(a); int b = Compute(a); b++; }"
  in
  Alcotest.(check int) "one ignored" 1
    (List.length (Metrics.Defensive.ignored_returns ~funcs:fns fns))

let test_defensive_assertions () =
  let fns = funcs "void F(int a) { assert(a > 0); CHECK(a < 10); }" in
  Alcotest.(check int) "two assertions" 2 (Metrics.Defensive.assertion_count fns)

(* ------------------------------------------------------------------ *)
(* Architecture                                                         *)
(* ------------------------------------------------------------------ *)

let two_module_project () =
  let mk name content =
    { Cfront.Project.m_name = name;
      m_files = [ { Cfront.Project.path = name ^ ".cc"; modname = name; header = false; content } ] }
  in
  Cfront.Project.make ~name:"p"
    [ mk "core" "namespace core {\nint Base(int a) { return a; }\n}";
      mk "app"
        "namespace app {\nint Use(int a) { return Base(a) + Base(a + 1); }\n\
         int Local(int a) { return Use(a); }\n}" ]

let test_architecture_coupling () =
  let parsed = Cfront.Project.parse (two_module_project ()) in
  let comps = Metrics.Architecture.build ~parsed in
  let app = List.find (fun c -> c.Metrics.Architecture.name = "app") comps in
  let core = List.find (fun c -> c.Metrics.Architecture.name = "core") comps in
  Alcotest.(check int) "app fan-out" 1 app.Metrics.Architecture.fan_out;
  Alcotest.(check int) "core fan-in" 1 core.Metrics.Architecture.fan_in;
  Alcotest.(check bool) "app cohesion below 1" true (app.Metrics.Architecture.cohesion < 1.0)

let test_architecture_thread_marker () =
  let project =
    Cfront.Project.make ~name:"p"
      [ { Cfront.Project.m_name = "w";
          m_files = [ { Cfront.Project.path = "w.cc"; modname = "w"; header = false;
                        content = "void Spawn(int* h) { pthread_create(h, 0, 0, 0); }" } ] } ]
  in
  let comps = Metrics.Architecture.build ~parsed:(Cfront.Project.parse project) in
  Alcotest.(check bool) "threads detected" true
    (List.exists (fun c -> c.Metrics.Architecture.uses_threads) comps)

let test_namespace_depth () =
  let pf = parsed_file "namespace a { namespace b { int F() { return 1; } } }" in
  Alcotest.(check int) "depth 2" 2 (Metrics.Architecture.namespace_depth [ pf ])

let () =
  Alcotest.run "metrics"
    [
      ( "complexity",
        [
          Alcotest.test_case "straight line" `Quick test_cc_straight_line;
          Alcotest.test_case "if" `Quick test_cc_if;
          Alcotest.test_case "if-else" `Quick test_cc_if_else;
          Alcotest.test_case "nested ifs" `Quick test_cc_nested_ifs;
          Alcotest.test_case "short circuit" `Quick test_cc_short_circuit;
          Alcotest.test_case "loops" `Quick test_cc_loops;
          Alcotest.test_case "switch cases" `Quick test_cc_switch_cases;
          Alcotest.test_case "ternary" `Quick test_cc_ternary;
          Alcotest.test_case "buckets" `Quick test_cc_buckets;
          Alcotest.test_case "nesting depth" `Quick test_nesting_depth;
          QCheck_alcotest.to_alcotest prop_cc_at_least_one;
        ] );
      ( "loc",
        [
          Alcotest.test_case "counts" `Quick test_loc_counts;
          Alcotest.test_case "add" `Quick test_loc_add;
        ] );
      ( "func-shape",
        [
          Alcotest.test_case "single exit" `Quick test_shape_single_exit;
          Alcotest.test_case "two returns" `Quick test_shape_two_returns;
          Alcotest.test_case "return not last" `Quick test_shape_return_not_last;
          Alcotest.test_case "goto counted" `Quick test_shape_goto_counted;
          Alcotest.test_case "throw is exit" `Quick test_shape_throw_is_exit;
          Alcotest.test_case "multi-exit fraction" `Quick test_multi_exit_fraction;
        ] );
      ( "casts",
        [
          Alcotest.test_case "explicit kinds" `Quick test_casts_explicit;
          Alcotest.test_case "implicit narrowing" `Quick test_casts_implicit_narrowing;
          Alcotest.test_case "implicit widening init" `Quick test_casts_implicit_widening_in_init;
          Alcotest.test_case "clean code" `Quick test_casts_none_for_matching_types;
        ] );
      ( "globals",
        [
          Alcotest.test_case "census" `Quick test_globals_census;
          Alcotest.test_case "uninitialized" `Quick test_globals_uninitialized;
        ] );
      ( "uninit",
        [
          Alcotest.test_case "basic" `Quick test_uninit_basic;
          Alcotest.test_case "initialized clean" `Quick test_uninit_initialized_clean;
          Alcotest.test_case "branch read" `Quick test_uninit_branch_read;
          Alcotest.test_case "branch assign insufficient" `Quick
            test_uninit_branch_assign_then_read;
          Alcotest.test_case "definite assignment" `Quick test_uninit_definite_assignment;
          Alcotest.test_case "address-of is write" `Quick
            test_uninit_address_of_counts_as_write;
          Alcotest.test_case "arrays exempt" `Quick test_uninit_arrays_exempt;
        ] );
      ( "pointers",
        [
          Alcotest.test_case "usage" `Quick test_pointer_usage;
          Alcotest.test_case "dyn alloc kinds" `Quick test_dyn_alloc_kinds;
        ] );
      ( "shadowing",
        [
          Alcotest.test_case "kinds" `Quick test_shadowing_kinds;
          Alcotest.test_case "duplicate globals" `Quick test_duplicate_globals_across_files;
          Alcotest.test_case "clean" `Quick test_no_shadowing_clean;
        ] );
      ( "naming",
        [
          Alcotest.test_case "compliant" `Quick test_naming_compliant;
          Alcotest.test_case "violations" `Quick test_naming_violations;
          Alcotest.test_case "member underscore" `Quick test_naming_member_trailing_underscore;
          Alcotest.test_case "constants" `Quick test_naming_constant;
        ] );
      ( "style",
        [
          Alcotest.test_case "long line" `Quick test_style_long_line;
          Alcotest.test_case "tab and trailing" `Quick test_style_tab_and_trailing;
          Alcotest.test_case "odd indent" `Quick test_style_odd_indent;
          Alcotest.test_case "brace spacing" `Quick test_style_brace_spacing;
          Alcotest.test_case "clean source" `Quick test_style_clean_source;
        ] );
      ( "defensive",
        [
          Alcotest.test_case "param validated" `Quick test_defensive_param_validated;
          Alcotest.test_case "param unchecked" `Quick test_defensive_param_unchecked;
          Alcotest.test_case "ignored returns" `Quick test_defensive_ignored_returns;
          Alcotest.test_case "assertions" `Quick test_defensive_assertions;
        ] );
      ( "architecture",
        [
          Alcotest.test_case "coupling" `Quick test_architecture_coupling;
          Alcotest.test_case "thread marker" `Quick test_architecture_thread_marker;
          Alcotest.test_case "namespace depth" `Quick test_namespace_depth;
        ] );
    ]
