(* Tests for the ISO 26262 compliance engine: ASIL model, guideline
   tables, metric extraction, assessment verdicts, observations and
   report rendering. *)

(* shared small audit context *)
let parsed =
  lazy (Cfront.Project.parse (Corpus.Generator.generate ~seed:2019 Corpus.Apollo_profile.small))

let metrics = lazy (Iso26262.Project_metrics.of_parsed (Lazy.force parsed))

(* ------------------------------------------------------------------ *)
(* ASIL model                                                           *)
(* ------------------------------------------------------------------ *)

let test_asil_strings () =
  List.iter
    (fun asil ->
      Alcotest.(check (option string)) "roundtrip"
        (Some (Iso26262.Asil.to_string asil))
        (Option.map Iso26262.Asil.to_string
           (Iso26262.Asil.of_string (Iso26262.Asil.to_string asil))))
    Iso26262.Asil.all

let test_asil_matrix_lookup () =
  let m = { Iso26262.Asil.a = Iso26262.Asil.o; b = Iso26262.Asil.p;
            c = Iso26262.Asil.pp; d = Iso26262.Asil.pp } in
  Alcotest.(check string) "A is o" "o"
    (Iso26262.Asil.rec_to_string (Iso26262.Asil.for_asil m Iso26262.Asil.A));
  Alcotest.(check bool) "A not binding" false (Iso26262.Asil.binding m Iso26262.Asil.A);
  Alcotest.(check bool) "B binding" true (Iso26262.Asil.binding m Iso26262.Asil.B);
  Alcotest.(check bool) "D binding" true (Iso26262.Asil.binding m Iso26262.Asil.D)

(* ------------------------------------------------------------------ *)
(* Guideline tables                                                     *)
(* ------------------------------------------------------------------ *)

let test_guideline_table_sizes () =
  Alcotest.(check int) "coding topics" 8 (List.length Iso26262.Guidelines.coding);
  Alcotest.(check int) "architecture topics" 7 (List.length Iso26262.Guidelines.architecture);
  Alcotest.(check int) "unit topics" 10 (List.length Iso26262.Guidelines.unit_design);
  Alcotest.(check int) "total" 25 (List.length Iso26262.Guidelines.all)

let test_guideline_find () =
  match Iso26262.Guidelines.find ~table:Iso26262.Guidelines.Unit_design ~index:10 with
  | Some t -> Alcotest.(check string) "recursion topic" "No recursions" t.Iso26262.Guidelines.title
  | None -> Alcotest.fail "topic missing"

let test_guideline_paper_matrix_spotchecks () =
  (* spot-check recommendation cells against the paper's tables *)
  let rec_of table index asil =
    match Iso26262.Guidelines.find ~table ~index with
    | Some t -> Iso26262.Asil.rec_to_string (Iso26262.Asil.for_asil t.Iso26262.Guidelines.recs asil)
    | None -> "?"
  in
  (* Table 1 row 4 (defensive): o + ++ ++ *)
  Alcotest.(check string) "T1.4 A" "o" (rec_of Iso26262.Guidelines.Coding 4 Iso26262.Asil.A);
  Alcotest.(check string) "T1.4 D" "++" (rec_of Iso26262.Guidelines.Coding 4 Iso26262.Asil.D);
  (* Table 3 row 3 (interfaces): + + + + *)
  Alcotest.(check string) "T3.3 D" "+" (rec_of Iso26262.Guidelines.Architecture 3 Iso26262.Asil.D);
  (* Table 8 row 6 (pointers): o + + ++ *)
  Alcotest.(check string) "T8.6 A" "o" (rec_of Iso26262.Guidelines.Unit_design 6 Iso26262.Asil.A);
  Alcotest.(check string) "T8.6 D" "++" (rec_of Iso26262.Guidelines.Unit_design 6 Iso26262.Asil.D)

(* ------------------------------------------------------------------ *)
(* Project metrics                                                      *)
(* ------------------------------------------------------------------ *)

let test_metrics_module_list () =
  let m = Lazy.force metrics in
  Alcotest.(check int) "nine modules" 9 (List.length m.Iso26262.Project_metrics.modules);
  Alcotest.(check bool) "perception present" true
    (Iso26262.Project_metrics.find_module m "perception" <> None)

let test_metrics_consistency () =
  let m = Lazy.force metrics in
  Alcotest.(check bool) "over counts nested" true
    (m.Iso26262.Project_metrics.over10 >= m.Iso26262.Project_metrics.over20
     && m.Iso26262.Project_metrics.over20 >= m.Iso26262.Project_metrics.over50);
  Alcotest.(check bool) "loc positive" true (m.Iso26262.Project_metrics.total_loc > 0);
  Alcotest.(check bool) "functions positive" true
    (m.Iso26262.Project_metrics.total_functions > 0);
  Alcotest.(check bool) "multi-exit fraction in [0,1]" true
    (m.Iso26262.Project_metrics.multi_exit_frac >= 0.0
     && m.Iso26262.Project_metrics.multi_exit_frac <= 1.0)

let test_metrics_cuda_only_in_perception () =
  let m = Lazy.force metrics in
  Alcotest.(check bool) "kernels found" true
    (m.Iso26262.Project_metrics.cuda.Cudasim.Census.kernels > 0)

(* ------------------------------------------------------------------ *)
(* Assessment verdicts: the paper's pattern                             *)
(* ------------------------------------------------------------------ *)

let coding = lazy (Iso26262.Assess.assess_coding (Lazy.force metrics))
let architecture = lazy (Iso26262.Assess.assess_architecture (Lazy.force metrics))
let unit_design = lazy (Iso26262.Assess.assess_unit_design (Lazy.force metrics))

let verdict_of findings index =
  (List.find
     (fun (f : Iso26262.Assess.finding) -> f.Iso26262.Assess.topic.Iso26262.Guidelines.index = index)
     findings)
    .Iso26262.Assess.verdict

let test_coding_verdict_pattern () =
  let f = Lazy.force coding in
  (* the paper: complexity, subsets, typing, defensive, design principles
     all fail; graphical N/A; style and naming pass *)
  Alcotest.(check bool) "complexity fails" true (verdict_of f 1 = Iso26262.Assess.Fail);
  Alcotest.(check bool) "subsets fail" true (verdict_of f 2 = Iso26262.Assess.Fail);
  Alcotest.(check bool) "typing fails" true (verdict_of f 3 = Iso26262.Assess.Fail);
  Alcotest.(check bool) "defensive fails" true (verdict_of f 4 = Iso26262.Assess.Fail);
  Alcotest.(check bool) "graphical n/a" true (verdict_of f 6 = Iso26262.Assess.Not_applicable);
  Alcotest.(check bool) "style passes" true (verdict_of f 7 = Iso26262.Assess.Pass);
  Alcotest.(check bool) "naming passes" true (verdict_of f 8 = Iso26262.Assess.Pass)

let test_architecture_verdict_pattern () =
  let f = Lazy.force architecture in
  (* component size is scale-dependent: asserted FAIL on the full-scale
     corpus in the integration suite; here only the scale-free verdicts *)
  Alcotest.(check bool) "scheduling fails" true (verdict_of f 6 = Iso26262.Assess.Fail);
  Alcotest.(check bool) "interrupts pass" true (verdict_of f 7 = Iso26262.Assess.Pass)

let test_unit_verdict_pattern () =
  let f = Lazy.force unit_design in
  Alcotest.(check bool) "multi-exit fails" true (verdict_of f 1 = Iso26262.Assess.Fail);
  Alcotest.(check bool) "dynamic memory fails" true (verdict_of f 2 = Iso26262.Assess.Fail);
  Alcotest.(check bool) "initialization fails" true (verdict_of f 3 = Iso26262.Assess.Fail);
  Alcotest.(check bool) "globals fail" true (verdict_of f 5 = Iso26262.Assess.Fail);
  Alcotest.(check bool) "pointers fail" true (verdict_of f 6 = Iso26262.Assess.Fail);
  Alcotest.(check bool) "gotos fail" true (verdict_of f 9 = Iso26262.Assess.Fail);
  Alcotest.(check bool) "recursion fails" true (verdict_of f 10 = Iso26262.Assess.Fail)

let test_every_finding_has_evidence () =
  List.iter
    (fun (f : Iso26262.Assess.finding) ->
      Alcotest.(check bool) "evidence non-empty" true
        (String.length f.Iso26262.Assess.evidence > 0))
    (Lazy.force coding @ Lazy.force architecture @ Lazy.force unit_design)

let test_compliance_at_asil () =
  let all = Lazy.force coding @ Lazy.force architecture @ Lazy.force unit_design in
  let pass_a, bind_a = Iso26262.Assess.compliance_at ~asil:Iso26262.Asil.A all in
  let pass_d, bind_d = Iso26262.Assess.compliance_at ~asil:Iso26262.Asil.D all in
  Alcotest.(check bool) "binding grows with ASIL" true (bind_d >= bind_a);
  Alcotest.(check bool) "passes bounded" true (pass_a <= bind_a && pass_d <= bind_d);
  Alcotest.(check bool) "not compliant at D" true (pass_d < bind_d)

let test_thresholds_change_verdicts () =
  (* permissive thresholds flip the complexity verdict *)
  let lenient =
    { Iso26262.Assess.default_thresholds with
      Iso26262.Assess.max_over10_functions = 1_000_000 }
  in
  let f = Iso26262.Assess.assess_coding ~th:lenient (Lazy.force metrics) in
  Alcotest.(check bool) "complexity passes under lenient threshold" true
    (verdict_of f 1 = Iso26262.Assess.Pass)

(* ------------------------------------------------------------------ *)
(* Observations                                                         *)
(* ------------------------------------------------------------------ *)

let observations =
  lazy
    (let yolo_tus = Corpus.Yolo_src.parse_all () in
     let measured = List.map fst Corpus.Yolo_src.measured_files in
     let yolo = Cudasim.Runner.run ~entry:"main" ~measured yolo_tus in
     let st_tus = Corpus.Stencil_src.parse_all () in
     let st_measured = List.map fst Corpus.Stencil_src.measured_files in
     let stencil = Cudasim.Runner.run ~entry:"main" ~measured:st_measured st_tus in
     let ratios = List.map (fun (l, r) -> (l, r)) (Gpuperf.Suites.gemm_comparison ~device:Gpuperf.Device.titan_v) in
     Iso26262.Observations.of_metrics (Lazy.force metrics)
       ~yolo_coverage:yolo.Cudasim.Runner.files
       ~stencil_coverage:stencil.Cudasim.Runner.files ~open_vs_closed:ratios)

let test_observations_complete () =
  let obs = Lazy.force observations in
  Alcotest.(check int) "fourteen observations" 14 (List.length obs);
  List.iteri
    (fun i (o : Iso26262.Observations.t) ->
      Alcotest.(check int) "numbered in order" (i + 1) o.Iso26262.Observations.number)
    obs

let test_observations_all_hold () =
  Alcotest.(check bool) "every observation reproduced" true
    (Iso26262.Observations.all_hold (Lazy.force observations))

(* ------------------------------------------------------------------ *)
(* Report rendering                                                     *)
(* ------------------------------------------------------------------ *)

let test_render_findings_table () =
  let s =
    Iso26262.Report.render_findings ~title:"T" (Lazy.force coding)
  in
  Alcotest.(check bool) "contains verdicts" true (Util.Strutil.contains_sub ~sub:"FAIL" s);
  Alcotest.(check bool) "contains ++ cells" true (Util.Strutil.contains_sub ~sub:"++" s);
  Alcotest.(check bool) "contains topic" true
    (Util.Strutil.contains_sub ~sub:"Enforcement of low complexity" s)

let test_render_compliance () =
  let s = Iso26262.Report.render_compliance (Lazy.force coding) in
  Alcotest.(check bool) "mentions every ASIL" true
    (List.for_all
       (fun a -> Util.Strutil.contains_sub ~sub:("ASIL-" ^ Iso26262.Asil.to_string a) s)
       Iso26262.Asil.all)

let test_render_module_summaries () =
  let s = Iso26262.Report.render_module_summaries (Lazy.force metrics) in
  Alcotest.(check bool) "lists perception" true
    (Util.Strutil.contains_sub ~sub:"perception" s);
  Alcotest.(check bool) "has CC columns" true (Util.Strutil.contains_sub ~sub:"CC>10" s)

let () =
  Alcotest.run "iso26262"
    [
      ( "asil",
        [
          Alcotest.test_case "string roundtrip" `Quick test_asil_strings;
          Alcotest.test_case "matrix lookup" `Quick test_asil_matrix_lookup;
        ] );
      ( "guidelines",
        [
          Alcotest.test_case "table sizes" `Quick test_guideline_table_sizes;
          Alcotest.test_case "find" `Quick test_guideline_find;
          Alcotest.test_case "paper matrix spot checks" `Quick
            test_guideline_paper_matrix_spotchecks;
        ] );
      ( "project-metrics",
        [
          Alcotest.test_case "module list" `Quick test_metrics_module_list;
          Alcotest.test_case "consistency" `Quick test_metrics_consistency;
          Alcotest.test_case "cuda census" `Quick test_metrics_cuda_only_in_perception;
        ] );
      ( "assessment",
        [
          Alcotest.test_case "coding verdicts" `Quick test_coding_verdict_pattern;
          Alcotest.test_case "architecture verdicts" `Quick test_architecture_verdict_pattern;
          Alcotest.test_case "unit verdicts" `Quick test_unit_verdict_pattern;
          Alcotest.test_case "evidence present" `Quick test_every_finding_has_evidence;
          Alcotest.test_case "compliance per ASIL" `Quick test_compliance_at_asil;
          Alcotest.test_case "thresholds matter" `Quick test_thresholds_change_verdicts;
        ] );
      ( "observations",
        [
          Alcotest.test_case "complete" `Quick test_observations_complete;
          Alcotest.test_case "all hold" `Quick test_observations_all_hold;
        ] );
      ( "report",
        [
          Alcotest.test_case "findings table" `Quick test_render_findings_table;
          Alcotest.test_case "compliance" `Quick test_render_compliance;
          Alcotest.test_case "module summaries" `Quick test_render_module_summaries;
        ] );
    ]
