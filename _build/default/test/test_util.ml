(* Tests for the util library: PRNG, statistics, tables, string helpers. *)

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Rng                                                                  *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Util.Rng.create 42 and b = Util.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Util.Rng.int a 1000) (Util.Rng.int b 1000)
  done

let test_rng_seed_changes_stream () =
  let a = Util.Rng.create 1 and b = Util.Rng.create 2 in
  let xs = List.init 20 (fun _ -> Util.Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Util.Rng.int b 1_000_000) in
  Alcotest.(check bool) "different seeds differ" true (xs <> ys)

let test_rng_split_independent () =
  (* drawing from a split stream must not perturb the parent *)
  let a = Util.Rng.create 7 in
  let _split = Util.Rng.split a in
  let next_after_split = Util.Rng.int a 1000 in
  let b = Util.Rng.create 7 in
  let _ = Util.Rng.split b in
  Alcotest.(check int) "parent reproducible" next_after_split (Util.Rng.int b 1000)

let test_rng_pick () =
  let rng = Util.Rng.create 3 in
  for _ = 1 to 50 do
    let v = Util.Rng.pick rng [ 1; 2; 3 ] in
    Alcotest.(check bool) "pick member" true (List.mem v [ 1; 2; 3 ])
  done

let test_rng_pick_empty () =
  let rng = Util.Rng.create 3 in
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty list")
    (fun () -> ignore (Util.Rng.pick rng []))

let test_rng_weighted_degenerate () =
  let rng = Util.Rng.create 5 in
  for _ = 1 to 20 do
    Alcotest.(check string) "all weight on one" "only"
      (Util.Rng.weighted rng [ (0.0, "never"); (1.0, "only") ])
  done

let test_rng_shuffle_is_permutation () =
  let rng = Util.Rng.create 11 in
  let xs = List.init 30 Fun.id in
  let ys = Util.Rng.shuffle rng xs in
  Alcotest.(check (list int)) "same multiset" xs (List.sort compare ys)

let test_rng_chance_extremes () =
  let rng = Util.Rng.create 9 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=0 never" false (Util.Rng.chance rng 0.0)
  done;
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=1 always" true (Util.Rng.chance rng 1.0)
  done

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int stays in [0,bound)" ~count:500
    QCheck.(pair small_int (int_range 1 10000))
    (fun (seed, bound) ->
      let rng = Util.Rng.create seed in
      let v = Util.Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_range_in_bounds =
  QCheck.Test.make ~name:"Rng.range stays in [lo,hi]" ~count:500
    QCheck.(triple small_int (int_range (-100) 100) (int_range 0 200))
    (fun (seed, lo, span) ->
      let hi = lo + span in
      let rng = Util.Rng.create seed in
      let v = Util.Rng.range rng lo hi in
      v >= lo && v <= hi)

let prop_rng_float_in_bounds =
  QCheck.Test.make ~name:"Rng.float stays in [0,bound)" ~count:500
    QCheck.(pair small_int (float_range 0.001 1000.0))
    (fun (seed, bound) ->
      let rng = Util.Rng.create seed in
      let v = Util.Rng.float rng bound in
      v >= 0.0 && v < bound)

(* ------------------------------------------------------------------ *)
(* Stats                                                                *)
(* ------------------------------------------------------------------ *)

let test_mean () =
  check_float "mean" 2.0 (Util.Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "empty mean" 0.0 (Util.Stats.mean [])

let test_median () =
  check_float "odd median" 3.0 (Util.Stats.median [ 5.0; 1.0; 3.0 ]);
  check_float "single" 7.0 (Util.Stats.median [ 7.0 ])

let test_stddev () =
  check_float "constant data" 0.0 (Util.Stats.stddev [ 4.0; 4.0; 4.0 ]);
  check_float "known stddev" 1.0 (Util.Stats.stddev [ 1.0; 2.0; 3.0 ])

let test_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "p50" 50.0 (Util.Stats.percentile 50.0 xs);
  check_float "p100" 100.0 (Util.Stats.percentile 100.0 xs)

let test_histogram () =
  let h = Util.Stats.histogram ~buckets:[ (1, 10); (11, 20) ] [ 1; 5; 10; 11; 30 ] in
  Alcotest.(check int) "first bucket" 3 (List.assoc (1, 10) h);
  Alcotest.(check int) "second bucket" 1 (List.assoc (11, 20) h)

let test_geomean () =
  check_float "geomean of 2 and 8" 4.0 (Util.Stats.geomean [ 2.0; 8.0 ])

let test_clamp () =
  check_float "below" 0.0 (Util.Stats.clamp ~lo:0.0 ~hi:1.0 (-5.0));
  check_float "above" 1.0 (Util.Stats.clamp ~lo:0.0 ~hi:1.0 5.0);
  check_float "within" 0.5 (Util.Stats.clamp ~lo:0.0 ~hi:1.0 0.5)

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean lies within min..max" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let m = Util.Stats.mean xs in
      m >= Util.Stats.minimum xs -. 1e-9 && m <= Util.Stats.maximum xs +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range 0. 100.))
    (fun xs ->
      Util.Stats.percentile 25.0 xs <= Util.Stats.percentile 75.0 xs +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Table                                                                *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let t =
    Util.Table.make ~title:"demo" ~header:[ "a"; "b" ]
      ~aligns:[ Util.Table.Left; Util.Table.Right ] ()
  in
  let t = Util.Table.add_row t [ "x"; "42" ] in
  let s = Util.Table.render t in
  Alcotest.(check bool) "has title" true (Util.Strutil.contains_sub ~sub:"demo" s);
  Alcotest.(check bool) "has header" true (Util.Strutil.contains_sub ~sub:"| a " s);
  Alcotest.(check bool) "has cell" true (Util.Strutil.contains_sub ~sub:"42" s)

let test_table_row_mismatch () =
  let t = Util.Table.make ~title:"t" ~header:[ "a"; "b" ] () in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Table.add_row: row width mismatch") (fun () ->
      ignore (Util.Table.add_row t [ "only-one" ]))

let test_table_formats () =
  Alcotest.(check string) "float" "3.14" (Util.Table.fmt_float 3.14159);
  Alcotest.(check string) "pct" "61.0%" (Util.Table.fmt_pct 61.0)

(* ------------------------------------------------------------------ *)
(* Strutil                                                              *)
(* ------------------------------------------------------------------ *)

let test_case_predicates () =
  Alcotest.(check bool) "snake yes" true (Util.Strutil.is_snake_case "frame_count2");
  Alcotest.(check bool) "snake no (upper)" false (Util.Strutil.is_snake_case "frameCount");
  Alcotest.(check bool) "camel yes" true (Util.Strutil.is_camel_case "TrackObstacle3");
  Alcotest.(check bool) "camel no (underscore)" false (Util.Strutil.is_camel_case "Track_Obstacle");
  Alcotest.(check bool) "kconstant yes" true (Util.Strutil.is_kconstant "kMaxBoxes");
  Alcotest.(check bool) "kconstant no" false (Util.Strutil.is_kconstant "MAX_BOXES" = true);
  Alcotest.(check bool) "member yes" true (Util.Strutil.is_member_name "track_id_");
  Alcotest.(check bool) "member no" false (Util.Strutil.is_member_name "track_id")

let test_strip_and_lines () =
  Alcotest.(check string) "strip" "abc" (Util.Strutil.strip "  abc\t ");
  Alcotest.(check int) "lines count" 3 (List.length (Util.Strutil.lines "a\nb\nc"));
  Alcotest.(check int) "trailing newline" 2 (List.length (Util.Strutil.lines "a\n"))

let test_contains_and_affixes () =
  Alcotest.(check bool) "sub yes" true (Util.Strutil.contains_sub ~sub:"bcd" "abcde");
  Alcotest.(check bool) "sub no" false (Util.Strutil.contains_sub ~sub:"xyz" "abcde");
  Alcotest.(check bool) "prefix" true (Util.Strutil.starts_with ~prefix:"ab" "abc");
  Alcotest.(check bool) "suffix" true (Util.Strutil.ends_with ~suffix:"bc" "abc")

let test_indent_width () =
  Alcotest.(check int) "four spaces" 4 (Util.Strutil.indent_width "    x");
  Alcotest.(check int) "none" 0 (Util.Strutil.indent_width "x")

let test_count_char () =
  Alcotest.(check int) "commas" 2 (Util.Strutil.count_char ',' "a,b,c")

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed changes stream" `Quick test_rng_seed_changes_stream;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "pick member" `Quick test_rng_pick;
          Alcotest.test_case "pick empty raises" `Quick test_rng_pick_empty;
          Alcotest.test_case "weighted degenerate" `Quick test_rng_weighted_degenerate;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_is_permutation;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
          QCheck_alcotest.to_alcotest prop_rng_int_in_bounds;
          QCheck_alcotest.to_alcotest prop_rng_range_in_bounds;
          QCheck_alcotest.to_alcotest prop_rng_float_in_bounds;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "clamp" `Quick test_clamp;
          QCheck_alcotest.to_alcotest prop_mean_bounded;
          QCheck_alcotest.to_alcotest prop_percentile_monotone;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "row mismatch" `Quick test_table_row_mismatch;
          Alcotest.test_case "formats" `Quick test_table_formats;
        ] );
      ( "chart",
        [
          Alcotest.test_case "render scales bars" `Quick (fun () ->
              let s =
                Util.Chart.render ~width:10 ~title:"t"
                  [ { Util.Chart.label = "a"; value = 10.0 };
                    { Util.Chart.label = "bb"; value = 5.0 } ]
              in
              Alcotest.(check bool) "max gets full width" true
                (Util.Strutil.contains_sub ~sub:"##########" s);
              Alcotest.(check bool) "half gets half" true
                (Util.Strutil.contains_sub ~sub:"#####" s);
              Alcotest.(check bool) "labels aligned" true
                (Util.Strutil.contains_sub ~sub:"a  |" s));
          Alcotest.test_case "grouped renders all series" `Quick (fun () ->
              let s =
                Util.Chart.render_grouped ~width:8 ~title:"g"
                  [ ("file1",
                     [ { Util.Chart.label = "x"; value = 4.0 };
                       { Util.Chart.label = "y"; value = 8.0 } ]) ]
              in
              Alcotest.(check bool) "group header" true
                (Util.Strutil.contains_sub ~sub:"file1" s);
              Alcotest.(check bool) "series bar" true
                (Util.Strutil.contains_sub ~sub:"########" s));
          Alcotest.test_case "zero max is safe" `Quick (fun () ->
              let s =
                Util.Chart.render ~title:"z" [ { Util.Chart.label = "a"; value = 0.0 } ]
              in
              Alcotest.(check bool) "renders" true (String.length s > 0));
        ] );
      ( "strutil",
        [
          Alcotest.test_case "case predicates" `Quick test_case_predicates;
          Alcotest.test_case "strip and lines" `Quick test_strip_and_lines;
          Alcotest.test_case "contains and affixes" `Quick test_contains_and_affixes;
          Alcotest.test_case "indent width" `Quick test_indent_width;
          Alcotest.test_case "count char" `Quick test_count_char;
        ] );
    ]
