(* Tests for the hardened call graph (per-site resolution accounting) and
   the whole-program summary engine in lib/interproc: hand-written goldens
   for the corner cases, corpus-level invariants, and the sequential-vs-
   parallel differential (jobs=1 is the oracle; every other worker count
   must reproduce its summaries and IP-1 findings byte for byte). *)

module CG = Cfront.Callgraph
module IP = Interproc.Summary

let parse ~file src = Cfront.Parser.parse_file ~file src

let pf ?(modname = "m") ~path src =
  { Cfront.Project.file =
      { Cfront.Project.path; modname; header = false; content = src };
    tu = parse ~file:path src }

let graph_of_files pfs =
  CG.build
    (List.concat_map
       (fun (p : Cfront.Project.parsed_file) ->
         Cfront.Ast.functions_of_tu p.Cfront.Project.tu)
       pfs)

let graph_of src = graph_of_files [ pf ~path:"g.cc" src ]
let summary_of src = IP.of_files [ pf ~path:"s.cc" src ]

let outcome_name = function
  | CG.Resolved q -> "resolved:" ^ q
  | CG.Guessed (q, _) -> "guessed:" ^ q
  | CG.Ambiguous _ -> "ambiguous"
  | CG.Unresolved -> "unresolved"
  | CG.Indirect_call -> "indirect"

let site_outcomes g =
  List.map (fun (s : CG.call_site) -> outcome_name s.CG.cs_outcome) g.CG.sites

(* ------------------------------------------------------------------ *)
(* Call-graph corner cases                                              *)
(* ------------------------------------------------------------------ *)

let test_shadowed_scope_preference () =
  let g =
    graph_of
      "namespace m1 { int Helper() { return 1; } int Use() { return Helper(); } }\n\
       namespace m2 { int Helper() { return 2; } }"
  in
  Alcotest.(check (list string)) "scope-preferred edge" [ "m1::Helper" ]
    (CG.callees g "m1::Use");
  Alcotest.(check (list string)) "site resolved, not guessed"
    [ "resolved:m1::Helper" ] (site_outcomes g);
  Alcotest.(check int) "no guesses" 0 g.CG.resolution.CG.guessed

let test_shadowed_guessed_fallback () =
  (* the caller is outside both namespaces: no scope preference applies,
     the legacy first-defined fallback fires but is flagged as a guess *)
  let g =
    graph_of
      "namespace m1 { int Helper() { return 1; } }\n\
       namespace m2 { int Helper() { return 2; } }\n\
       int Use() { return Helper(); }"
  in
  Alcotest.(check (list string)) "edge to first-defined candidate"
    [ "m1::Helper" ] (CG.callees g "Use");
  Alcotest.(check (list string)) "flagged as guess" [ "guessed:m1::Helper" ]
    (site_outcomes g);
  Alcotest.(check int) "guessed counted" 1 g.CG.resolution.CG.guessed;
  Alcotest.(check int) "not counted resolved" 0 g.CG.resolution.CG.resolved

let test_kernel_launch_edge () =
  let g =
    graph_of
      "__global__ void K(int n) { int i = n; }\n\
       void F() { K<<<1, 1>>>(7); }"
  in
  Alcotest.(check (list string)) "launch edge" [ "K" ] (CG.callees g "F");
  Alcotest.(check int) "kernel launch counted" 1
    g.CG.resolution.CG.kernel_launches;
  Alcotest.(check int) "launch resolved" 1 g.CG.resolution.CG.resolved

let test_fnptr_taken () =
  let g =
    graph_of
      "void G() { }\n\
       void Use() { Register(&G); }"
  in
  Alcotest.(check (list string)) "address-taken function recorded" [ "G" ]
    g.CG.resolution.CG.fnptr_taken;
  (* Register has no definition: an unresolved site, no fabricated edge *)
  Alcotest.(check int) "callee unresolved" 1 g.CG.resolution.CG.unresolved;
  Alcotest.(check (list string)) "no edges out of Use" [] (CG.callees g "Use")

let test_fnptr_shadowed_by_local () =
  let g =
    graph_of
      "void G() { }\n\
       void Use(int G) { Register(&G); }"
  in
  Alcotest.(check (list string)) "parameter shadows the function" []
    g.CG.resolution.CG.fnptr_taken

let test_member_same_file_preferred () =
  let a =
    pf ~path:"a.cc"
      "namespace a1 { int Reset() { return 1; } }\n\
       int CallerA(int obj) { return obj.Reset(); }"
  in
  let b = pf ~path:"b.cc" "namespace b1 { int Reset() { return 2; } }" in
  let g = graph_of_files [ a; b ] in
  Alcotest.(check (list string)) "same-file candidate wins" [ "a1::Reset" ]
    (CG.callees g "CallerA");
  Alcotest.(check int) "no ambiguity" 0 g.CG.resolution.CG.ambiguous

let test_member_ambiguous_no_edge () =
  let a = pf ~path:"a.cc" "namespace a1 { int Reset() { return 1; } }" in
  let b = pf ~path:"b.cc" "namespace b1 { int Reset() { return 2; } }" in
  let c = pf ~path:"c.cc" "int CallerC(int obj) { return obj.Reset(); }" in
  let g = graph_of_files [ a; b; c ] in
  Alcotest.(check (list string)) "no fabricated edge" []
    (CG.callees g "CallerC");
  Alcotest.(check int) "ambiguity counted" 1 g.CG.resolution.CG.ambiguous;
  Alcotest.(check int) "not resolved" 0 g.CG.resolution.CG.resolved

let test_recursion_cycles () =
  let g =
    graph_of
      "int Odd(int n);\n\
       int Even(int n) { if (n == 0) { return 1; } return Odd(n - 1); }\n\
       int Odd(int n) { if (n == 0) { return 0; } return Even(n - 1); }\n\
       int Self(int n) { if (n <= 0) { return 0; } return Self(n - 1); }\n\
       int Plain() { return Self(3); }"
  in
  let cycles = CG.recursion_cycles g in
  Alcotest.(check int) "two cycles" 2 (List.length cycles);
  Alcotest.(check (list (list string))) "mutual SCC then self-loop"
    [ [ "Even"; "Odd" ]; [ "Self" ] ]
    (List.map (List.sort compare) cycles)

(* ------------------------------------------------------------------ *)
(* Summary engine                                                       *)
(* ------------------------------------------------------------------ *)

let find ip name =
  match IP.find_summary ip name with
  | Some s -> s
  | None -> Alcotest.failf "no summary for %s" name

let test_purity_and_global_propagation () =
  let ip =
    summary_of
      "int g_state = 0;\n\
       int Leaf() { g_state = 1; return 0; }\n\
       int Mid() { return Leaf(); }\n\
       int Pure(int a) { return a + 1; }"
  in
  let leaf = find ip "Leaf" and mid = find ip "Mid" and pure = find ip "Pure" in
  Alcotest.(check (list string)) "Leaf writes g_state" [ "g_state" ]
    (IP.SS.elements leaf.IP.s_globals_written);
  Alcotest.(check (list string)) "write propagates to Mid" [ "g_state" ]
    (IP.SS.elements mid.IP.s_globals_written);
  Alcotest.(check bool) "Mid impure" false mid.IP.s_pure;
  Alcotest.(check bool) "Pure pure" true pure.IP.s_pure;
  Alcotest.(check string) "Leaf depth 1" "1" (IP.render_depth leaf.IP.s_call_depth);
  Alcotest.(check string) "Mid depth 2" "2" (IP.render_depth mid.IP.s_call_depth);
  Alcotest.(check int) "Leaf on level 0" 0 leaf.IP.s_level;
  Alcotest.(check int) "Mid above Leaf" 1 mid.IP.s_level

let test_depth_chain_and_unbounded () =
  let ip =
    summary_of
      "int C() { return 1; }\n\
       int B() { return C(); }\n\
       int A() { return B(); }\n\
       int R(int n) { if (n <= 0) { return 0; } return R(n - 1); }"
  in
  Alcotest.(check string) "A depth 3" "3"
    (IP.render_depth (find ip "A").IP.s_call_depth);
  let r = find ip "R" in
  Alcotest.(check bool) "R recursive" true r.IP.s_recursive;
  (match r.IP.s_call_depth with
   | IP.Unbounded [ "R" ] -> ()
   | d -> Alcotest.failf "R depth should be unbounded via R, got %s" (IP.render_depth d));
  (match ip.IP.max_call_depth with
   | IP.Unbounded _ -> ()
   | d -> Alcotest.failf "program depth should be unbounded, got %s" (IP.render_depth d));
  (match (find ip "A").IP.s_stack_words with
   | IP.Finite _ -> ()
   | d -> Alcotest.failf "A stack bound should be finite, got %s" (IP.render_depth d))

let test_uninit_flow_positive () =
  let ip =
    summary_of
      "void Sink(int* p) { int unused = 0; }\n\
       int Use() { int x; Sink(&x); return x; }"
  in
  match ip.IP.uninit_flows with
  | [ f ] ->
    Alcotest.(check string) "variable" "x" f.IP.ip_var;
    Alcotest.(check string) "caller" "Use" f.IP.ip_function;
    Alcotest.(check string) "callee that never initializes" "Sink" f.IP.ip_callee
  | flows -> Alcotest.failf "expected exactly one flow, got %d" (List.length flows)

let test_uninit_flow_negative () =
  (* the callee writes through the pointer: no flow *)
  let ip =
    summary_of
      "void Init(int* p) { *p = 1; }\n\
       int Use() { int x; Init(&x); return x; }"
  in
  Alcotest.(check int) "initializing callee clears the flow" 0
    (List.length ip.IP.uninit_flows);
  (* unknown extern callee: conservatively assumed to initialize *)
  let ip2 = summary_of "int Use() { int x; ExternalInit(&x); return x; }" in
  Alcotest.(check int) "unknown callee stays conservative" 0
    (List.length ip2.IP.uninit_flows)

let test_module_coupling () =
  let a =
    pf ~modname:"alpha" ~path:"alpha.cc"
      "int g_shared = 0;\nint W() { g_shared = 1; return 0; }"
  in
  let b = pf ~modname:"beta" ~path:"beta.cc" "int R2() { return g_shared; }" in
  let ip = IP.of_files [ a; b ] in
  let coupling name =
    match
      List.find_opt (fun c -> c.IP.mc_module = name) ip.IP.coupling
    with
    | Some c -> c
    | None -> Alcotest.failf "no coupling row for %s" name
  in
  let alpha = coupling "alpha" and beta = coupling "beta" in
  Alcotest.(check int) "alpha declares it" 1 alpha.IP.mc_globals_declared;
  Alcotest.(check int) "alpha writes it" 1 alpha.IP.mc_globals_written;
  Alcotest.(check int) "beta reads it" 1 beta.IP.mc_globals_read;
  Alcotest.(check int) "shared from alpha's side" 1 alpha.IP.mc_shared;
  Alcotest.(check int) "shared from beta's side" 1 beta.IP.mc_shared;
  Alcotest.(check int) "one mutable global total" 1 ip.IP.globals_total

(* ------------------------------------------------------------------ *)
(* Corpus invariants                                                    *)
(* ------------------------------------------------------------------ *)

let parsed_small =
  lazy
    (Cfront.Project.parse
       (Corpus.Generator.generate ~seed:2019 Corpus.Apollo_profile.small))

let corpus_ip = lazy (IP.analyze (Lazy.force parsed_small))

let test_corpus_summary_per_function () =
  let ip = Lazy.force corpus_ip in
  Alcotest.(check int) "one summary per defined function"
    (List.length ip.IP.graph.CG.nodes)
    (List.length ip.IP.summaries)

let test_corpus_cycles_match_callgraph () =
  let ip = Lazy.force corpus_ip in
  Alcotest.(check (list (list string))) "cycles equal recursion_cycles"
    (CG.recursion_cycles ip.IP.graph) ip.IP.cycles;
  Alcotest.(check bool) "corpus recursion makes the depth unbounded"
    (ip.IP.cycles <> [])
    (match ip.IP.max_call_depth with IP.Unbounded _ -> true | IP.Finite _ -> false)

let test_corpus_resolution_accounts_every_site () =
  let r = (Lazy.force corpus_ip).IP.graph.CG.resolution in
  Alcotest.(check int) "outcome counts partition the sites" r.CG.total_sites
    (r.CG.resolved + r.CG.guessed + r.CG.ambiguous + r.CG.unresolved
     + r.CG.indirect)

let test_corpus_ip1_disjoint_from_91 () =
  (* IP-1 findings are cross-call by construction: no variable it reports
     may also be reported by the intraprocedural 9.1 analysis *)
  let ip = Lazy.force corpus_ip in
  let intraprocedural =
    List.concat_map
      (fun fn ->
        match fn.Cfront.Ast.f_body with
        | None -> []
        | Some _ ->
          List.map
            (fun (u : Dataflow.Analyses.uninit_finding) ->
              (Cfront.Ast.qualified_name fn, u.Dataflow.Analyses.u_var))
            (Dataflow.Analyses.uninit_reads (Dataflow.Cfg.of_func fn)))
      (Cfront.Project.all_functions (Lazy.force parsed_small))
  in
  List.iter
    (fun (f : IP.uninit_flow) ->
      if List.mem (f.IP.ip_function, f.IP.ip_var) intraprocedural then
        Alcotest.failf "flow %s in %s duplicates a 9.1 finding" f.IP.ip_var
          f.IP.ip_function)
    ip.IP.uninit_flows

(* ------------------------------------------------------------------ *)
(* Sequential-vs-parallel differential                                  *)
(*                                                                      *)
(* The engine's level-parallel schedule must be configuration, never     *)
(* semantics: the full canonical rendering of the result — summaries,    *)
(* coupling, cycles, flows, and the IP-1 violations derived from them —  *)
(* must be identical at every worker count.                              *)
(* ------------------------------------------------------------------ *)

let render_summary (s : IP.func_summary) =
  Printf.sprintf "%s mod=%s scc=%d lvl=%d rec=%b r=[%s] w=[%s] io=%b al=%b \
                  unk=%b pure=%b d=%s st=%s un=%d pi=[%s]"
    s.IP.s_name s.IP.s_module s.IP.s_scc s.IP.s_level s.IP.s_recursive
    (String.concat "," (IP.SS.elements s.IP.s_globals_read))
    (String.concat "," (IP.SS.elements s.IP.s_globals_written))
    s.IP.s_does_io s.IP.s_allocates s.IP.s_calls_unknown s.IP.s_pure
    (IP.render_depth s.IP.s_call_depth)
    (IP.render_depth s.IP.s_stack_words)
    s.IP.s_unresolved_sites
    (String.concat ","
       (List.map (fun (p, b) -> Printf.sprintf "%s=%b" p b) s.IP.s_param_inits))

let canonical (ip : IP.t) =
  List.map render_summary ip.IP.summaries
  @ List.map (String.concat "->") ip.IP.cycles
  @ List.map
      (fun (c : IP.module_coupling) ->
        Printf.sprintf "%s f=%d decl=%d r=%d w=%d sh=%d" c.IP.mc_module
          c.IP.mc_functions c.IP.mc_globals_declared c.IP.mc_globals_read
          c.IP.mc_globals_written c.IP.mc_shared)
      ip.IP.coupling
  @ List.map
      (fun (f : IP.uninit_flow) ->
        Printf.sprintf "%s %s %s %s %s" f.IP.ip_var f.IP.ip_function
          f.IP.ip_callee
          (Cfront.Loc.to_string f.IP.ip_call_loc)
          (Cfront.Loc.to_string f.IP.ip_use_loc))
      ip.IP.uninit_flows
  @ [ Printf.sprintf "sccs=%d levels=%d depth=%s stack=%s globals=%d"
        ip.IP.n_sccs ip.IP.n_levels
        (IP.render_depth ip.IP.max_call_depth)
        (IP.render_depth ip.IP.max_stack_words)
        ip.IP.globals_total ]

let ip1_violations parsed =
  match Misra.Registry.find_rule "IP-1" with
  | None -> Alcotest.fail "rule IP-1 not registered"
  | Some rule ->
    List.map
      (fun (v : Misra.Rule.violation) ->
        Printf.sprintf "%s %s" (Cfront.Loc.to_string v.Misra.Rule.loc)
          v.Misra.Rule.message)
      (rule.Misra.Rule.check (Misra.Rule.build_context parsed))

let restore_jobs = Util.Pool.default_jobs ()

let run_at ~jobs =
  Util.Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Util.Pool.set_default_jobs restore_jobs)
  @@ fun () ->
  let parsed = Lazy.force parsed_small in
  (canonical (IP.analyze parsed), ip1_violations parsed)

let differential_oracle = lazy (run_at ~jobs:1)

let check_jobs jobs () =
  let oracle_summaries, oracle_ip1 = Lazy.force differential_oracle in
  let par_summaries, par_ip1 = run_at ~jobs in
  Alcotest.(check (list string))
    (Printf.sprintf "canonical summaries identical at jobs=%d" jobs)
    oracle_summaries par_summaries;
  Alcotest.(check (list string))
    (Printf.sprintf "IP-1 violations identical at jobs=%d" jobs)
    oracle_ip1 par_ip1

let () =
  Alcotest.run "interproc"
    [
      ( "callgraph",
        [
          Alcotest.test_case "shadowed: scope preferred" `Quick
            test_shadowed_scope_preference;
          Alcotest.test_case "shadowed: guessed fallback flagged" `Quick
            test_shadowed_guessed_fallback;
          Alcotest.test_case "kernel launch edge" `Quick test_kernel_launch_edge;
          Alcotest.test_case "function pointer taken" `Quick test_fnptr_taken;
          Alcotest.test_case "fnptr shadowed by local" `Quick
            test_fnptr_shadowed_by_local;
          Alcotest.test_case "member call: same file preferred" `Quick
            test_member_same_file_preferred;
          Alcotest.test_case "member call: ambiguous, no edge" `Quick
            test_member_ambiguous_no_edge;
          Alcotest.test_case "recursion cycles" `Quick test_recursion_cycles;
        ] );
      ( "summaries",
        [
          Alcotest.test_case "purity and global propagation" `Quick
            test_purity_and_global_propagation;
          Alcotest.test_case "depth chain and unbounded" `Quick
            test_depth_chain_and_unbounded;
          Alcotest.test_case "cross-call uninit: positive" `Quick
            test_uninit_flow_positive;
          Alcotest.test_case "cross-call uninit: negative" `Quick
            test_uninit_flow_negative;
          Alcotest.test_case "module coupling" `Quick test_module_coupling;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "one summary per function" `Quick
            test_corpus_summary_per_function;
          Alcotest.test_case "cycles match call graph" `Quick
            test_corpus_cycles_match_callgraph;
          Alcotest.test_case "resolution partitions sites" `Quick
            test_corpus_resolution_accounts_every_site;
          Alcotest.test_case "IP-1 disjoint from 9.1" `Quick
            test_corpus_ip1_disjoint_from_91;
        ] );
      ( "differential",
        [
          Alcotest.test_case "jobs=2 matches oracle" `Quick (check_jobs 2);
          Alcotest.test_case "jobs=8 matches oracle" `Quick (check_jobs 8);
        ] );
    ]
