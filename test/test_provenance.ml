(* Provenance journal test suite: content-derived id stability, the
   collect/absorb buffering discipline, canonical export order and
   dedup, id/prefix lookup, the adcheck-evidence/1 JSONL exporter,
   explain rendering with source excerpts, first-covering-scenario
   attribution in the coverage collector, the audit round-trip (every
   journal finding resolves by id to a non-empty witness chain), the
   cross-jobs journal differential (byte-identical at jobs 1/2/8 under
   the tick clock), and the CLI's unwritable-output failure mode. *)

module P = Provenance

let loc file line col = Cfront.Loc.make ~file ~line ~col

let mk ?loc ~kind ~analysis msg =
  P.make ~kind ~analysis ?loc ~message:msg
    ~witness:[ P.step "site" "%s" msg ] ()

(* ------------------------------------------------------------------ *)
(* Finding ids                                                         *)
(* ------------------------------------------------------------------ *)

let test_id_stable () =
  let a = mk ~kind:"misra" ~analysis:"17.2" ~loc:(loc "a.c" 3 1) "recursion" in
  let b = mk ~kind:"misra" ~analysis:"17.2" ~loc:(loc "a.c" 3 1) "recursion" in
  Alcotest.(check string) "equal content -> equal id" a.P.f_id b.P.f_id;
  Alcotest.(check bool) "id has the F- prefix" true
    (String.length a.P.f_id = 18 && String.sub a.P.f_id 0 2 = "F-");
  String.iter
    (fun c ->
      if not ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) then
        Alcotest.failf "non-hex digit %c in %s" c a.P.f_id)
    (String.sub a.P.f_id 2 16)

let test_id_content_sensitive () =
  let base = mk ~kind:"misra" ~analysis:"17.2" ~loc:(loc "a.c" 3 1) "recursion" in
  let variants =
    [ mk ~kind:"dataflow" ~analysis:"17.2" ~loc:(loc "a.c" 3 1) "recursion";
      mk ~kind:"misra" ~analysis:"9.1" ~loc:(loc "a.c" 3 1) "recursion";
      mk ~kind:"misra" ~analysis:"17.2" ~loc:(loc "a.c" 3 2) "recursion";
      mk ~kind:"misra" ~analysis:"17.2" ~loc:(loc "a.c" 3 1) "recursion!";
      mk ~kind:"misra" ~analysis:"17.2" "recursion";
      P.make ~kind:"misra" ~analysis:"17.2" ~loc:(loc "a.c" 3 1)
        ~message:"recursion"
        ~witness:[ P.step "site" "recursion"; P.step "extra" "step" ] () ]
  in
  List.iter
    (fun v ->
      if v.P.f_id = base.P.f_id then
        Alcotest.failf "variant %s/%s collided with base id" v.P.f_kind
          v.P.f_analysis)
    variants

(* ------------------------------------------------------------------ *)
(* Sink: collect / absorb / dedup / canonical order                    *)
(* ------------------------------------------------------------------ *)

let test_collect_absorb () =
  P.reset ();
  let f1 = mk ~kind:"misra" ~analysis:"9.1" "global one" in
  let f2 = mk ~kind:"dataflow" ~analysis:"dead-store" "buffered two" in
  P.record f1;
  let (), collected = P.collect (fun () -> P.record f2) in
  Alcotest.(check (list string)) "collect captures the buffered finding"
    [ f2.P.f_id ]
    (List.map (fun f -> f.P.f_id) collected);
  Alcotest.(check (list string)) "buffered finding not yet global"
    [ f1.P.f_id ]
    (List.map (fun f -> f.P.f_id) (P.findings ()));
  P.absorb collected;
  Alcotest.(check int) "absorb lands it" 2 (List.length (P.findings ()));
  (* recording identical content again is invisible in the export *)
  P.record f1;
  P.record f2;
  Alcotest.(check int) "dedup by id" 2 (List.length (P.findings ()));
  P.reset ();
  Alcotest.(check int) "reset clears" 0 (List.length (P.findings ()))

let test_canonical_order () =
  P.reset ();
  (* record deliberately out of canonical order *)
  let fs =
    [ mk ~kind:"misra" ~analysis:"17.2" "z last";
      mk ~kind:"coverage" ~analysis:"uncovered-function" "m middle";
      mk ~kind:"coverage" ~analysis:"coverage-gap" "a first" ]
  in
  List.iter P.record fs;
  let keys =
    List.map (fun f -> (f.P.f_kind, f.P.f_analysis)) (P.findings ())
  in
  Alcotest.(check (list (pair string string)))
    "export sorted by (kind, analysis)"
    [ ("coverage", "coverage-gap"); ("coverage", "uncovered-function");
      ("misra", "17.2") ]
    keys;
  P.reset ()

let test_find () =
  P.reset ();
  let f = mk ~kind:"interproc" ~analysis:"recursion-cycle" "a -> b -> a" in
  P.record f;
  (match P.find f.P.f_id with
   | Ok g -> Alcotest.(check string) "exact id" f.P.f_id g.P.f_id
   | Error e -> Alcotest.failf "exact lookup failed: %s" e);
  (match P.find (String.sub f.P.f_id 0 8) with
   | Ok g -> Alcotest.(check string) "unique prefix" f.P.f_id g.P.f_id
   | Error e -> Alcotest.failf "prefix lookup failed: %s" e);
  (match P.find "F-" with
   | Error e ->
     Alcotest.(check bool) "short prefix explains the minimum" true
       (String.length e > 0
        && String.sub e 0 (String.length "unknown") = "unknown")
   | Ok _ -> Alcotest.fail "2-char prefix must not resolve");
  (match P.find "F-0000000000000000" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown id must not resolve");
  P.reset ()

(* ------------------------------------------------------------------ *)
(* adcheck-evidence/1 exporter                                         *)
(* ------------------------------------------------------------------ *)

let parse_json what s =
  match Benchdiff.Json.parse s with
  | j -> j
  | exception Benchdiff.Json.Parse_error msg ->
    Alcotest.failf "%s is not valid JSON: %s" what msg

let test_journal_format () =
  P.reset ();
  let f1 =
    P.make ~kind:"misra" ~analysis:"9.1" ~loc:(loc "hostile \"file\".c" 2 5)
      ~message:"he said \"hi\"\n\ttab"
      ~witness:[ P.step ~loc:(loc "hostile \"file\".c" 1 1) "decl" "x\\y" ] ()
  in
  let f2 = mk ~kind:"metric" ~analysis:"T1.1" "enforcement" in
  P.record f1;
  P.record f2;
  let j = P.journal () in
  (match String.split_on_char '\n' j with
   | header :: lines ->
     let h = parse_json "journal header" header in
     (match Benchdiff.Json.member "schema" h with
      | Some (Benchdiff.Json.Str s) ->
        Alcotest.(check string) "schema" "adcheck-evidence/1" s
      | _ -> Alcotest.fail "header has no schema");
     (match Benchdiff.Json.member "findings" h with
      | Some (Benchdiff.Json.Num n) ->
        Alcotest.(check int) "header count" 2 (int_of_float n)
      | _ -> Alcotest.fail "header has no findings count");
     let body = List.filter (fun l -> l <> "") lines in
     Alcotest.(check int) "one line per finding" 2 (List.length body);
     List.iter
       (fun line ->
         let o = parse_json "finding line" line in
         List.iter
           (fun field ->
             if Benchdiff.Json.member field o = None then
               Alcotest.failf "finding line lacks %S: %s" field line)
           [ "id"; "kind"; "analysis"; "loc"; "message"; "witness" ])
       body
   | [] -> Alcotest.fail "empty journal");
  (* write_journal round-trips the same bytes *)
  let path = Filename.temp_file "adcheck-ev" ".jsonl" in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  P.write_journal ~path ();
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  Alcotest.(check string) "file contents = journal ()" j contents;
  (* an unwritable path raises Sys_error, which the CLI turns into the
     one-line error + exit 1 (covered by the spawn test below) *)
  (match P.write_journal ~path:"/nonexistent-adcheck-dir/ev.jsonl" () with
   | () -> Alcotest.fail "expected Sys_error"
   | exception Sys_error _ -> ());
  P.reset ()

let test_explain_excerpt () =
  let src = "int x;\nint y = x + 1;\n" in
  let f =
    P.make ~kind:"dataflow" ~analysis:"uninit-read" ~loc:(loc "u.c" 2 9)
      ~message:"x read before initialization"
      ~witness:
        [ P.step ~loc:(loc "u.c" 1 5) "decl" "x declared without initializer";
          P.step ~loc:(loc "u.c" 2 9) "use" "x read here" ]
      ()
  in
  let source file = if file = "u.c" then Some src else None in
  let text = P.explain ~source f in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    if not (go 0) then
      Alcotest.failf "explain output lacks %S:\n%s" needle text
  in
  contains f.P.f_id;
  contains "x read before initialization";
  contains "[decl]";
  contains "[use]";
  contains "u.c:2:9";
  (* the source excerpt with line number and caret *)
  contains "   2 | int y = x + 1;";
  contains "^"

(* ------------------------------------------------------------------ *)
(* First-covering-scenario attribution (coverage collector)            *)
(* ------------------------------------------------------------------ *)

let test_attribution_first_wins () =
  let col = Coverage.Collector.create ~origin:"sc-a" () in
  let hooks = Coverage.Collector.hooks col in
  hooks.Coverage.Interp.on_stmt 7;
  hooks.Coverage.Interp.on_stmt 7;
  Alcotest.(check (option string)) "stmt attributed to the origin"
    (Some "sc-a")
    (Coverage.Collector.first_covering_stmt col 7);
  Alcotest.(check (option string)) "unseen stmt unattributed" None
    (Coverage.Collector.first_covering_stmt col 8);
  hooks.Coverage.Interp.on_decision 3 [] true;
  Alcotest.(check (option string)) "decision outcome attributed"
    (Some "sc-a")
    (Coverage.Collector.first_covering_decision col 3 true);
  Alcotest.(check (option string)) "other outcome unattributed" None
    (Coverage.Collector.first_covering_decision col 3 false);
  (* unnamed collectors never attribute — the pre-existing behavior *)
  let anon = Coverage.Collector.create () in
  let ah = Coverage.Collector.hooks anon in
  ah.Coverage.Interp.on_stmt 7;
  Alcotest.(check (option string)) "anonymous collector stays empty" None
    (Coverage.Collector.first_covering_stmt anon 7)

let test_attribution_merge_least () =
  let make_col origin sids =
    let col = Coverage.Collector.create ~origin () in
    let hooks = Coverage.Collector.hooks col in
    List.iter hooks.Coverage.Interp.on_stmt sids;
    col
  in
  let a = make_col "beta" [ 1; 2 ] in
  let b = make_col "alpha" [ 1; 3 ] in
  let ab = Coverage.Collector.merge [ a; b ] in
  let ba = Coverage.Collector.merge [ b; a ] in
  Alcotest.(check string) "merge order invisible in the fingerprint"
    (Coverage.Collector.fingerprint ab)
    (Coverage.Collector.fingerprint ba);
  Alcotest.(check (option string)) "least scenario name wins" (Some "alpha")
    (Coverage.Collector.first_covering_stmt ab 1);
  Alcotest.(check (option string)) "sole coverer kept" (Some "beta")
    (Coverage.Collector.first_covering_stmt ab 2);
  Alcotest.(check (option string)) "sole coverer kept (other side)"
    (Some "alpha")
    (Coverage.Collector.first_covering_stmt ab 3);
  (* attribution is part of the observational state: same hits under a
     different origin must change the fingerprint *)
  let c = make_col "gamma" [ 1; 2 ] in
  Alcotest.(check bool) "origin visible in the fingerprint" true
    (Coverage.Collector.fingerprint a <> Coverage.Collector.fingerprint c)

(* ------------------------------------------------------------------ *)
(* Audit round-trip and the cross-jobs journal differential            *)
(* ------------------------------------------------------------------ *)

let restore_jobs = Util.Pool.default_jobs ()

(* The full audit pipeline at [jobs] workers under the tick clock; the
   journal string is the byte-level object under test, the audit record
   feeds the round-trip checks. *)
let audit_at ~jobs =
  Util.Pool.set_default_jobs jobs;
  Telemetry.reset ();
  Telemetry.set_enabled true;
  Telemetry.install_tick_clock ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.use_wall_clock ();
      Telemetry.reset ();
      Telemetry.set_enabled false;
      Util.Pool.set_default_jobs restore_jobs)
  @@ fun () ->
  let audit =
    Iso26262.Audit.run ~seed:2019 ~specs:Corpus.Apollo_profile.small ()
  in
  (P.journal (), audit)

let oracle = lazy (audit_at ~jobs:1)

let test_audit_round_trip () =
  let journal_str, audit = Lazy.force oracle in
  let fs = audit.Iso26262.Audit.journal in
  Alcotest.(check bool) "journal nonempty" true (fs <> []);
  (* every finding id resolves and carries a non-empty witness chain *)
  let ids = Hashtbl.create 1024 in
  List.iter
    (fun f ->
      if Hashtbl.mem ids f.P.f_id then
        Alcotest.failf "duplicate id %s in the journal" f.P.f_id;
      Hashtbl.add ids f.P.f_id ();
      if f.P.f_witness = [] then
        Alcotest.failf "finding %s (%s/%s) has an empty witness chain"
          f.P.f_id f.P.f_kind f.P.f_analysis)
    fs;
  (* all five producer domains journaled something *)
  List.iter
    (fun kind ->
      if not (List.exists (fun f -> f.P.f_kind = kind) fs) then
        Alcotest.failf "no %s findings in the audit journal" kind)
    [ "misra"; "dataflow"; "interproc"; "coverage"; "metric" ];
  (* id lookup round-trips (sampled: find is a linear scan), and the
     explain rendering carries the witness chain *)
  let sample =
    List.filteri (fun i _ -> i mod (max 1 (List.length fs / 25)) = 0) fs
  in
  List.iter
    (fun f ->
      match P.find f.P.f_id with
      | Ok g ->
        Alcotest.(check string) "find returns the same finding" f.P.f_id
          g.P.f_id;
        let text = P.explain g in
        if String.length text = 0 || g.P.f_witness = [] then
          Alcotest.failf "explain %s rendered no witness chain" f.P.f_id
      | Error e -> Alcotest.failf "find %s failed: %s" f.P.f_id e)
    sample;
  (* the exported journal agrees with the audit's captured journal *)
  let h = parse_json "journal header"
      (List.hd (String.split_on_char '\n' journal_str))
  in
  (match Benchdiff.Json.member "findings" h with
   | Some (Benchdiff.Json.Num n) ->
     Alcotest.(check int) "header count = captured journal size"
       (List.length fs) (int_of_float n)
   | _ -> Alcotest.fail "journal header lacks findings count");
  (* the rendered audit surfaces the new columns, and the tool-evidence
     matrix links only ids that exist in the journal *)
  let rendered = Iso26262.Audit.render audit in
  let contains needle hay =
    let n = String.length needle and hl = String.length hay in
    let rec go i = i + n <= hl && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "coverage report has the attribution column" true
    (contains "first covered by" rendered);
  Alcotest.(check bool) "tool-evidence matrix has the finding-ids column" true
    (contains "finding ids" rendered);
  let matrix =
    Iso26262.Traceability.tool_evidence_matrix ~journal:fs
      ~observations:audit.Iso26262.Audit.observations
      audit.Iso26262.Audit.metrics
  in
  let linked =
    List.concat_map
      (fun r -> r.Iso26262.Traceability.te_findings)
      matrix
  in
  Alcotest.(check bool) "matrix links at least one finding" true (linked <> []);
  List.iter
    (fun id ->
      if not (Hashtbl.mem ids id) then
        Alcotest.failf "matrix links %s, absent from the journal" id)
    linked

let check_journal_identical ~jobs =
  let oracle_journal, _ = Lazy.force oracle in
  let journal, _ = audit_at ~jobs in
  Alcotest.(check string)
    (Printf.sprintf "evidence journal byte-identical at jobs=%d" jobs)
    oracle_journal journal

let test_journal_jobs2 () = check_journal_identical ~jobs:2
let test_journal_jobs8 () = check_journal_identical ~jobs:8

(* ------------------------------------------------------------------ *)
(* CLI unwritable-output policy (spawns the real binary)               *)
(* ------------------------------------------------------------------ *)

let adcheck_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/adcheck.exe"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_unwritable ~flag ~what =
  let err = Filename.temp_file "adcheck-err" ".txt" in
  at_exit (fun () -> try Sys.remove err with Sys_error _ -> ());
  let cmd =
    Printf.sprintf "%s misra --scale small --seed 7 %s %s >/dev/null 2>%s"
      (Filename.quote adcheck_exe) flag
      (Filename.quote "/nonexistent-adcheck-dir/out")
      (Filename.quote err)
  in
  let rc = Sys.command cmd in
  Alcotest.(check int) (Printf.sprintf "%s: exit code" flag) 1 rc;
  let stderr = read_file err in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' stderr)
  in
  Alcotest.(check int) (Printf.sprintf "%s: one-line error" flag) 1
    (List.length lines);
  let line = List.hd lines in
  let prefix = Printf.sprintf "adcheck: cannot write %s:" what in
  Alcotest.(check bool)
    (Printf.sprintf "%s: error names the artifact (%S)" flag line)
    true
    (String.length line >= String.length prefix
     && String.sub line 0 (String.length prefix) = prefix)

let test_unwritable_evidence () = check_unwritable ~flag:"--evidence" ~what:"evidence journal"
let test_unwritable_metrics () = check_unwritable ~flag:"--metrics" ~what:"metrics"

let () =
  Alcotest.run "provenance"
    [
      ( "finding-ids",
        [
          Alcotest.test_case "equal content, equal id" `Quick test_id_stable;
          Alcotest.test_case "content-sensitive" `Quick
            test_id_content_sensitive;
        ] );
      ( "sink",
        [
          Alcotest.test_case "collect/absorb/dedup" `Quick test_collect_absorb;
          Alcotest.test_case "canonical export order" `Quick
            test_canonical_order;
          Alcotest.test_case "find by id and prefix" `Quick test_find;
        ] );
      ( "export",
        [
          Alcotest.test_case "adcheck-evidence/1 shape" `Quick
            test_journal_format;
          Alcotest.test_case "explain renders the why-chain" `Quick
            test_explain_excerpt;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "first covering scenario wins" `Quick
            test_attribution_first_wins;
          Alcotest.test_case "merge keeps the least name" `Quick
            test_attribution_merge_least;
        ] );
      ( "audit",
        [
          Alcotest.test_case "round-trip: every finding explains" `Slow
            test_audit_round_trip;
          Alcotest.test_case "journal identical at jobs=2" `Slow
            test_journal_jobs2;
          Alcotest.test_case "journal identical at jobs=8" `Slow
            test_journal_jobs8;
        ] );
      ( "cli",
        [
          Alcotest.test_case "unwritable --evidence fails loudly" `Slow
            test_unwritable_evidence;
          Alcotest.test_case "unwritable --metrics fails loudly" `Slow
            test_unwritable_metrics;
        ] );
    ]
