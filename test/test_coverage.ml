(* Tests for the coverage library: memory model, interpreter semantics,
   instrumentation, branch accounting and MC/DC. *)

let parse src = Cfront.Parser.parse_file ~file:"c.cu" src

(* Run a program and return (exit value result, output, collector, tus). *)
let run ?(entry = "main") src =
  let tu = parse src in
  Alcotest.(check (list string)) "parses clean" [] tu.Cfront.Ast.diags;
  let col = Coverage.Collector.create () in
  let env = Coverage.Interp.create ~hooks:(Coverage.Collector.hooks col) () in
  let result = Coverage.Interp.run env [ tu ] ~entry ~args:[] in
  (result, Coverage.Interp.output env, col, tu)

let run_ok ?entry src =
  match run ?entry src with
  | Ok v, out, col, tu -> (v, out, col, tu)
  | Error e, _, _, _ -> Alcotest.failf "runtime error: %s" e

let exit_int ?entry src =
  let v, _, _, _ = run_ok ?entry src in
  Coverage.Value.as_int v

let check_exit name expected src =
  Alcotest.(check int64) name expected (exit_int src)

(* ------------------------------------------------------------------ *)
(* Memory                                                               *)
(* ------------------------------------------------------------------ *)

let test_memory_alloc_load_store () =
  let m = Coverage.Memory.create () in
  let p = Coverage.Memory.alloc m 4 in
  Coverage.Memory.store m (Coverage.Memory.shift p 2) (Coverage.Value.Vint 9L);
  Alcotest.(check int64) "stored" 9L
    (Coverage.Value.as_int (Coverage.Memory.load m (Coverage.Memory.shift p 2)))

let test_memory_out_of_bounds () =
  let m = Coverage.Memory.create () in
  let p = Coverage.Memory.alloc m 2 in
  (try
     ignore (Coverage.Memory.load m (Coverage.Memory.shift p 5));
     Alcotest.fail "expected fault"
   with Coverage.Memory.Fault _ -> ())

let test_memory_double_free () =
  let m = Coverage.Memory.create () in
  let p = Coverage.Memory.alloc m 1 in
  Coverage.Memory.free m p;
  (try
     Coverage.Memory.free m p;
     Alcotest.fail "expected fault"
   with Coverage.Memory.Fault _ -> ())

let test_memory_copy_fill () =
  let m = Coverage.Memory.create () in
  let a = Coverage.Memory.alloc m 3 and b = Coverage.Memory.alloc m 3 in
  Coverage.Memory.fill m ~dst:a (Coverage.Value.Vint 7L) 3;
  Coverage.Memory.copy m ~src:a ~dst:b 3;
  Alcotest.(check int64) "copied" 7L
    (Coverage.Value.as_int (Coverage.Memory.load m (Coverage.Memory.shift b 2)))

let test_value_truthiness () =
  Alcotest.(check bool) "zero false" false (Coverage.Value.truthy (Coverage.Value.Vint 0L));
  Alcotest.(check bool) "nonzero true" true (Coverage.Value.truthy (Coverage.Value.Vint 2L));
  Alcotest.(check bool) "null false" false (Coverage.Value.truthy Coverage.Value.Vnull);
  Alcotest.(check bool) "0.0 false" false (Coverage.Value.truthy (Coverage.Value.Vfloat 0.0))

(* ------------------------------------------------------------------ *)
(* Interpreter semantics                                                *)
(* ------------------------------------------------------------------ *)

let test_interp_arithmetic () =
  check_exit "int arith" 17L "int main() { return 3 + 4 * 3 + 10 % 4; }"

let test_interp_float_arith () =
  check_exit "float to int at return" 7L
    "int main() { float x = 2.5f; float y = 3.0f; return (int)(x * y - 0.5f); }"

let test_interp_division_by_zero () =
  match run "int main() { int z = 0; return 4 / z; }" with
  | Error e, _, _, _ ->
    Alcotest.(check bool) "mentions division" true
      (Util.Strutil.contains_sub ~sub:"division" e)
  | Ok _, _, _, _ -> Alcotest.fail "expected error"

let test_interp_compound_assign () =
  check_exit "compound ops" 12L
    "int main() { int a = 3; a += 5; a *= 2; a -= 4; return a; }"

let test_interp_incdec () =
  check_exit "pre/post" 4L
    "int main() { int a = 1; int b = a++; int c = ++a; return a + b - c + 3; }"

let test_interp_pointers_and_arrays () =
  check_exit "array sum" 6L
    "int main() { int buf[3]; buf[0] = 1; buf[1] = 2; buf[2] = 3; \
     int* p = buf; return p[0] + *(p + 1) + p[2]; }"

let test_interp_struct_members () =
  check_exit "struct fields" 11L
    "struct P { int x; int y; };\n\
     int main() { P p; p.x = 4; p.y = 7; P* q = &p; return q->x + q->y; }"

let test_interp_struct_by_value () =
  check_exit "callee copy does not alias" 5L
    "struct P { int x; };\n\
     void Bump(P p) { p.x = 99; }\n\
     int main() { P p; p.x = 5; Bump(p); return p.x; }"

let test_interp_struct_assignment_copies () =
  check_exit "whole-struct assignment" 3L
    "struct P { int x; };\n\
     int main() { P a; a.x = 3; P b; b = a; a.x = 9; return b.x; }"

let test_interp_reference_params () =
  check_exit "reference aliases" 10L
    "void Set(int& out, int v) { out = v; }\n\
     int main() { int x = 0; Set(x, 10); return x; }"

let test_interp_globals () =
  check_exit "global state" 3L
    "int g_count = 0;\nvoid Tick() { g_count = g_count + 1; }\n\
     int main() { Tick(); Tick(); Tick(); return g_count; }"

let test_interp_enums () =
  check_exit "enum values" 7L
    "enum Mode { A, B = 5, C };\nint main() { return A + B + (C - 5) + 1; }"

let test_interp_switch_fallthrough () =
  check_exit "fallthrough accumulates" 3L
    "int main() { int r = 0; switch (1) { case 0: r += 10; case 1: r += 1; case 2: r += 2; } return r; }"

let test_interp_switch_default () =
  check_exit "default taken" 9L
    "int main() { switch (42) { case 0: return 1; default: return 9; } }"

let test_interp_goto_forward () =
  check_exit "goto skips" 1L
    "int main() { int r = 0; goto skip; r = 100; skip: r = r + 1; return r; }"

let test_interp_loops () =
  check_exit "nested loops with break/continue" 12L
    "int main() { int s = 0; for (int i = 0; i < 5; ++i) { if (i == 2) { continue; } \
     if (i == 4) { break; } s += i; } int j = 3; while (j > 0) { s += j; j--; } \
     do { s += 2; } while (0); return s; }"

let test_interp_short_circuit_no_side_effect () =
  check_exit "rhs not evaluated" 0L
    "int g_hit = 0;\nint Touch() { g_hit = 1; return 1; }\n\
     int main() { int a = 0; if (a > 0 && Touch() > 0) { return 99; } return g_hit; }"

let test_interp_ternary () =
  check_exit "ternary" 5L "int main() { int a = -1; return a > 0 ? 1 : 5; }"

let test_interp_recursion () =
  check_exit "factorial" 120L
    "int Fact(int n) { if (n <= 1) { return 1; } return n * Fact(n - 1); }\n\
     int main() { return Fact(5); }"

let test_interp_printf_output () =
  let _, out, _, _ =
    run_ok "int main() { printf(\"v=%d s=%s f=%f\\n\", 42, \"ok\", 1.5); return 0; }"
  in
  Alcotest.(check string) "formatted" "v=42 s=ok f=1.500000\n" out

let test_interp_math_builtins () =
  check_exit "sqrt and fmax" 7L
    "int main() { float a = sqrt(16.0); float b = fmax(a, 3.0); return (int)(b + 3.0); }"

let test_interp_memcpy_builtin () =
  check_exit "memcpy" 5L
    "int main() { int* a = (int*)malloc(2 * sizeof(int)); a[0] = 2; a[1] = 3; \
     int* b = (int*)malloc(2 * sizeof(int)); memcpy(b, a, 2); int r = b[0] + b[1]; \
     free(a); free(b); return r; }"

(* fmod(7.5,2)=1.5 -> 1; round(2.6)=3; min=4; max=2.5 -> 2; strlen=5;
   strcmp=0; total 15 *)
let test_interp_builtin_values () =
  Alcotest.(check int64) "sum" 15L
    (exit_int
       "int main() { \
        float m = fmod(7.5, 2.0); \
        float r = round(2.6); \
        int lo = (int)min(4, 9); \
        float hi = max(1.5, 2.5); \
        int len = strlen(\"hello\"); \
        int same = strcmp(\"a\", \"a\"); \
        return (int)m + (int)r + lo + (int)hi + len + same; }")

let test_interp_rand_deterministic () =
  let a = exit_int "int main() { srand(7); return rand() % 1000; }" in
  let b = exit_int "int main() { srand(7); return rand() % 1000; }" in
  Alcotest.(check int64) "same seed same value" a b

let test_interp_kernel_launch_grid () =
  check_exit "kernel touches every element" 28L
    "__global__ void Inc(int* p, int n) { int i = blockIdx.x * blockDim.x + threadIdx.x; \
     if (i < n) { p[i] = i; } }\n\
     int main() { int* d; cudaMalloc((void**)&d, 8 * sizeof(int)); \
     Inc<<<2, 4>>>(d, 8); int s = 0; for (int i = 0; i < 8; ++i) { s += d[i]; } \
     cudaFree(d); return s; }"

let test_interp_cuda_memcpy_roundtrip () =
  check_exit "host-device roundtrip" 6L
    "int main() { int* h = (int*)malloc(3 * sizeof(int)); h[0] = 1; h[1] = 2; h[2] = 3; \
     int* d; cudaMalloc((void**)&d, 3 * sizeof(int)); cudaMemcpy(d, h, 3, 1); \
     int* h2 = (int*)malloc(3 * sizeof(int)); cudaMemcpy(h2, d, 3, 2); \
     return h2[0] + h2[1] + h2[2]; }"

let test_interp_step_limit () =
  let tu = parse "int main() { while (1) { } return 0; }" in
  let env = Coverage.Interp.create ~max_steps:10_000 () in
  match Coverage.Interp.run env [ tu ] ~entry:"main" ~args:[] with
  | Error e -> Alcotest.(check bool) "step limit" true (Util.Strutil.contains_sub ~sub:"step" e)
  | Ok _ -> Alcotest.fail "expected step limit"

let test_interp_exceptions () =
  check_exit "try/catch" 3L
    "int main() { int r = 0; try { r = 1; throw 7; } catch (int e) { r = 3; } return r; }"

let test_interp_uncaught_throw () =
  match run "int main() { throw 5; }" with
  | Error e, _, _, _ ->
    Alcotest.(check bool) "uncaught" true (Util.Strutil.contains_sub ~sub:"exception" e)
  | Ok _, _, _, _ -> Alcotest.fail "expected error"

let test_interp_null_deref () =
  match run "int main() { int* p = nullptr; return *p; }" with
  | Error e, _, _, _ ->
    Alcotest.(check bool) "null deref" true (Util.Strutil.contains_sub ~sub:"null" e)
  | Ok _, _, _, _ -> Alcotest.fail "expected error"

let test_interp_multi_tu_program () =
  let tu1 = parse "int Helper(int a) { return a * 2; }" in
  let tu2 = parse "int main() { return Helper(21); }" in
  let env = Coverage.Interp.create () in
  match Coverage.Interp.run env [ tu1; tu2 ] ~entry:"main" ~args:[] with
  | Ok v -> Alcotest.(check int64) "cross-unit call" 42L (Coverage.Value.as_int v)
  | Error e -> Alcotest.failf "error: %s" e

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                      *)
(* ------------------------------------------------------------------ *)

let points_of src =
  match Coverage.Instrument.of_tu (parse src) with
  | [ fp ] -> fp
  | _ -> Alcotest.fail "one function expected"

let test_instrument_counts () =
  let fp =
    points_of
      "int F(int a, int b) { int r = 0; if (a > 0 && b > 0) { r = 1; } \
       switch (a) { case 0: break; case 1: break; default: break; } return r; }"
  in
  Alcotest.(check int) "decisions" 1 (List.length fp.Coverage.Instrument.decisions);
  (match fp.Coverage.Instrument.decisions with
   | [ d ] -> Alcotest.(check int) "two conditions" 2 (List.length d.Coverage.Instrument.conditions)
   | _ -> ());
  (match fp.Coverage.Instrument.switches with
   | [ sw ] ->
     Alcotest.(check int) "clauses" 3 sw.Coverage.Instrument.clauses;
     Alcotest.(check bool) "has default" true sw.Coverage.Instrument.has_default
   | _ -> Alcotest.fail "one switch")

let test_instrument_ternary_is_decision () =
  let fp = points_of "int F(int a) { return a > 0 ? 1 : 2; }" in
  Alcotest.(check int) "ternary decision" 1 (List.length fp.Coverage.Instrument.decisions)

let test_instrument_not_transparent () =
  let fp = points_of "int F(int a, int b) { if (!(a > 0) && b > 0) { return 1; } return 0; }" in
  match fp.Coverage.Instrument.decisions with
  | [ d ] -> Alcotest.(check int) "negation transparent" 2 (List.length d.Coverage.Instrument.conditions)
  | _ -> Alcotest.fail "one decision"

(* ------------------------------------------------------------------ *)
(* Coverage accounting                                                  *)
(* ------------------------------------------------------------------ *)

let score src =
  let _, _, col, tu = run_ok src in
  let fps =
    List.filter
      (fun fp -> fp.Coverage.Instrument.fp_name <> "main")
      (Coverage.Instrument.of_tu tu)
  in
  Coverage.Collector.score_file col ~file:"c.cu" fps

let test_coverage_full () =
  let fc =
    score
      "int Abs(int a) { if (a < 0) { return 0 - a; } return a; }\n\
       int main() { return Abs(3) + Abs(-3); }"
  in
  Alcotest.(check (float 1e-6)) "stmt 100" 100.0 fc.Coverage.Collector.stmt_pct;
  Alcotest.(check (float 1e-6)) "branch 100" 100.0 fc.Coverage.Collector.branch_pct;
  Alcotest.(check (float 1e-6)) "mcdc 100" 100.0 fc.Coverage.Collector.mcdc_pct

let test_coverage_half_branch () =
  let fc =
    score
      "int Abs(int a) { if (a < 0) { return 0 - a; } return a; }\n\
       int main() { return Abs(3); }"
  in
  Alcotest.(check (float 1e-6)) "branch 50" 50.0 fc.Coverage.Collector.branch_pct;
  Alcotest.(check bool) "stmt partial" true (fc.Coverage.Collector.stmt_pct < 100.0)

let test_coverage_excluded_functions () =
  let fc =
    score
      "int Used(int a) { return a; }\nint Unused(int a) { return a * 2; }\n\
       int main() { return Used(1); }"
  in
  Alcotest.(check int) "one excluded" 1 fc.Coverage.Collector.excluded;
  Alcotest.(check (float 1e-6)) "covered part is full" 100.0 fc.Coverage.Collector.stmt_pct

let test_coverage_switch_clauses () =
  let fc =
    score
      "int Pick(int a) { switch (a) { case 0: return 1; case 1: return 2; default: return 3; } }\n\
       int main() { return Pick(0) + Pick(42); }"
  in
  (* 2 of 3 clauses taken *)
  Alcotest.(check (float 0.1)) "two thirds" 66.7 fc.Coverage.Collector.branch_pct

(* ------------------------------------------------------------------ *)
(* MC/DC                                                                *)
(* ------------------------------------------------------------------ *)

let mcdc_pct src = (score src).Coverage.Collector.mcdc_pct

let test_mcdc_single_condition_needs_both () =
  Alcotest.(check (float 1e-6)) "only true outcome: 0%" 0.0
    (mcdc_pct
       "int F(int a) { if (a > 0) { return 1; } return 0; }\n\
        int main() { return F(1); }");
  Alcotest.(check (float 1e-6)) "both outcomes: 100%" 100.0
    (mcdc_pct
       "int F(int a) { if (a > 0) { return 1; } return 0; }\n\
        int main() { return F(1) + F(-1); }")

let test_mcdc_and_pair () =
  (* vectors: (T,T)->T, (F,-)->F, (T,F)->F cover both conditions *)
  Alcotest.(check (float 1e-6)) "full mcdc for &&" 100.0
    (mcdc_pct
       "int F(int a, int b) { if (a > 0 && b > 0) { return 1; } return 0; }\n\
        int main() { return F(1, 1) + F(-1, 1) + F(1, -1); }")

let test_mcdc_and_insufficient () =
  (* vectors: (T,T)->T and (F,-)->F: condition b never shown independent *)
  Alcotest.(check (float 1e-6)) "half mcdc" 50.0
    (mcdc_pct
       "int F(int a, int b) { if (a > 0 && b > 0) { return 1; } return 0; }\n\
        int main() { return F(1, 1) + F(-1, 1); }")

let test_mcdc_or_masking () =
  (* For a||b: (F,F)->F, (F,T)->T covers b; (T,-)->T with (F,F)->F covers a
     under masking (the unevaluated b agrees with anything). *)
  Alcotest.(check (float 1e-6)) "or with masking" 100.0
    (mcdc_pct
       "int F(int a, int b) { if (a > 0 || b > 0) { return 1; } return 0; }\n\
        int main() { return F(-1, -1) + F(-1, 1) + F(1, -1); }")

(* ------------------------------------------------------------------ *)
(* Differential testing: random expressions evaluated by the interpreter
   must match a reference evaluation in OCaml.                          *)
(* ------------------------------------------------------------------ *)

type rexpr =
  | Lit of int
  | Add of rexpr * rexpr
  | Sub of rexpr * rexpr
  | Mul of rexpr * rexpr
  | Neg of rexpr
  | Ite of rcond * rexpr * rexpr

and rcond =
  | Lt of rexpr * rexpr
  | Eq of rexpr * rexpr
  | And of rcond * rcond
  | Or of rcond * rcond
  | Not of rcond

let rec eval_rexpr = function
  | Lit n -> Int64.of_int n
  | Add (a, b) -> Int64.add (eval_rexpr a) (eval_rexpr b)
  | Sub (a, b) -> Int64.sub (eval_rexpr a) (eval_rexpr b)
  | Mul (a, b) -> Int64.mul (eval_rexpr a) (eval_rexpr b)
  | Neg a -> Int64.neg (eval_rexpr a)
  | Ite (c, a, b) -> if eval_rcond c then eval_rexpr a else eval_rexpr b

and eval_rcond = function
  | Lt (a, b) -> Int64.compare (eval_rexpr a) (eval_rexpr b) < 0
  | Eq (a, b) -> Int64.equal (eval_rexpr a) (eval_rexpr b)
  | And (a, b) -> eval_rcond a && eval_rcond b
  | Or (a, b) -> eval_rcond a || eval_rcond b
  | Not a -> not (eval_rcond a)

let rec c_of_rexpr = function
  | Lit n -> string_of_int n
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (c_of_rexpr a) (c_of_rexpr b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (c_of_rexpr a) (c_of_rexpr b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (c_of_rexpr a) (c_of_rexpr b)
  | Neg a -> Printf.sprintf "(- %s)" (c_of_rexpr a)  (* space: "--" would lex as decrement *)
  | Ite (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (c_of_rcond c) (c_of_rexpr a) (c_of_rexpr b)

and c_of_rcond = function
  | Lt (a, b) -> Printf.sprintf "(%s < %s)" (c_of_rexpr a) (c_of_rexpr b)
  | Eq (a, b) -> Printf.sprintf "(%s == %s)" (c_of_rexpr a) (c_of_rexpr b)
  | And (a, b) -> Printf.sprintf "(%s && %s)" (c_of_rcond a) (c_of_rcond b)
  | Or (a, b) -> Printf.sprintf "(%s || %s)" (c_of_rcond a) (c_of_rcond b)
  | Not a -> Printf.sprintf "(!%s)" (c_of_rcond a)

let rexpr_gen =
  let open QCheck.Gen in
  let rec expr n =
    if n <= 0 then map (fun i -> Lit i) (int_range (-50) 50)
    else
      frequency
        [
          (2, map (fun i -> Lit i) (int_range (-50) 50));
          (2, map2 (fun a b -> Add (a, b)) (expr (n / 2)) (expr (n / 2)));
          (2, map2 (fun a b -> Sub (a, b)) (expr (n / 2)) (expr (n / 2)));
          (1, map2 (fun a b -> Mul (a, b)) (expr (n / 2)) (expr (n / 2)));
          (1, map (fun a -> Neg a) (expr (n - 1)));
          (2, map3 (fun c a b -> Ite (c, a, b)) (cond (n / 2)) (expr (n / 2)) (expr (n / 2)));
        ]
  and cond n =
    if n <= 0 then map2 (fun a b -> Lt (a, b)) (expr 0) (expr 0)
    else
      frequency
        [
          (2, map2 (fun a b -> Lt (a, b)) (expr (n / 2)) (expr (n / 2)));
          (1, map2 (fun a b -> Eq (a, b)) (expr (n / 2)) (expr (n / 2)));
          (1, map2 (fun a b -> And (a, b)) (cond (n / 2)) (cond (n / 2)));
          (1, map2 (fun a b -> Or (a, b)) (cond (n / 2)) (cond (n / 2)));
          (1, map (fun a -> Not a) (cond (n - 1)));
        ]
  in
  sized (fun n -> expr (Stdlib.min n 12))

let prop_interpreter_matches_reference =
  QCheck.Test.make ~name:"interpreter agrees with OCaml reference evaluation"
    ~count:200
    (QCheck.make ~print:c_of_rexpr rexpr_gen)
    (fun e ->
      let src = Printf.sprintf "int F() {\n  return %s;\n}" (c_of_rexpr e) in
      let tu = parse src in
      tu.Cfront.Ast.diags = []
      &&
      let env = Coverage.Interp.create () in
      match Coverage.Interp.run env [ tu ] ~entry:"F" ~args:[] with
      | Ok v -> Int64.equal (Coverage.Value.as_int v) (eval_rexpr e)
      | Error _ -> false)

let prop_mcdc_never_exceeds_branch_opportunities =
  QCheck.Test.make ~name:"coverage percentages stay in [0,100]" ~count:6
    QCheck.(int_range 1 200)
    (fun seed ->
      (* random-ish scenario selection over the YOLO subject *)
      ignore seed;
      let tus = Corpus.Yolo_src.parse_all () in
      let col = Coverage.Collector.create () in
      let env = Coverage.Interp.create ~hooks:(Coverage.Collector.hooks col) () in
      match Coverage.Interp.run env tus ~entry:"main" ~args:[] with
      | Error _ -> false
      | Ok _ ->
        List.for_all
          (fun (tu : Cfront.Ast.tu) ->
            let fc =
              Coverage.Collector.score_file col ~file:tu.Cfront.Ast.tu_file
                (Coverage.Instrument.of_tu tu)
            in
            let ok p = p >= 0.0 && p <= 100.0 in
            ok fc.Coverage.Collector.stmt_pct
            && ok fc.Coverage.Collector.branch_pct
            && ok fc.Coverage.Collector.mcdc_pct)
          tus)

let test_mcdc_suggest_vector () =
  (* a&&b seen only as (T,T)->T and (F,-)->F: condition b uncovered; the
     suggestion should flip b from its observed value *)
  let src =
    "int F(int a, int b) { if (a > 0 && b > 0) { return 1; } return 0; }\n\
     int main() { return F(1, 1) + F(-1, 1); }"
  in
  let tu = parse src in
  let col = Coverage.Collector.create () in
  let env = Coverage.Interp.create ~hooks:(Coverage.Collector.hooks col) () in
  (match Coverage.Interp.run env [ tu ] ~entry:"main" ~args:[] with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "run: %s" e);
  let fp =
    List.find
      (fun fp -> fp.Coverage.Instrument.fp_name = "F")
      (Coverage.Instrument.of_tu tu)
  in
  match fp.Coverage.Instrument.decisions with
  | [ d ] -> (
      match d.Coverage.Instrument.conditions with
      | [ _cond_a; cond_b ] -> (
          match
            Coverage.Mcdc.suggest_vector col.Coverage.Collector.mcdc
              ~decision_eid:d.Coverage.Instrument.d_eid ~cond_id:cond_b
          with
          | Some (flip_to, _base) ->
            (* b was observed true; the missing evidence needs b = false *)
            Alcotest.(check bool) "suggests flipping b to false" false flip_to
          | None -> Alcotest.fail "expected a suggestion")
      | _ -> Alcotest.fail "two conditions expected")
  | _ -> Alcotest.fail "one decision expected"

(* ------------------------------------------------------------------ *)
(* Annotated listings                                                   *)
(* ------------------------------------------------------------------ *)

let annotate_fixture () =
  let src =
    "int Pick(int a) {\n  if (a > 0) {\n    return 1;\n  }\n  return 2;\n}\n\
     int main() { return Pick(5); }"
  in
  let tu = parse src in
  let col = Coverage.Collector.create () in
  let env = Coverage.Interp.create ~hooks:(Coverage.Collector.hooks col) () in
  (match Coverage.Interp.run env [ tu ] ~entry:"main" ~args:[] with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "run: %s" e);
  (col, tu)

let test_annotate_listing () =
  let col, tu = annotate_fixture () in
  let s = Coverage.Annotate.render col tu in
  let lines = Util.Strutil.lines s in
  let find sub =
    List.find (fun l -> Util.Strutil.contains_sub ~sub l) lines
  in
  Alcotest.(check bool) "taken branch hit" true
    (Util.Strutil.starts_with ~prefix:"     1|" (find "return 1"));
  Alcotest.(check bool) "untaken return missed" true
    (Util.Strutil.starts_with ~prefix:" #####|" (find "return 2"));
  Alcotest.(check bool) "signature line not executable" true
    (Util.Strutil.starts_with ~prefix:"      |" (find "int Pick"))

let test_annotate_missed_lines () =
  let col, tu = annotate_fixture () in
  Alcotest.(check int) "one missed line" 1
    (List.length (Coverage.Annotate.missed_lines col tu))

let test_annotate_function_filter () =
  let col, tu = annotate_fixture () in
  let s = Coverage.Annotate.render ~only_functions:[ "Pick" ] col tu in
  Alcotest.(check bool) "includes Pick" true (Util.Strutil.contains_sub ~sub:"Pick" s);
  Alcotest.(check bool) "excludes main" false (Util.Strutil.contains_sub ~sub:"main" s)

(* ------------------------------------------------------------------ *)
(* Gap-driven test generation                                           *)
(* ------------------------------------------------------------------ *)

let test_testgen_interesting_values () =
  let tu =
    parse
      "int F(int key) { switch (key) { case 3: return 1; case 7: return 2; default: return 0; } }"
  in
  match Cfront.Ast.functions_of_tu tu with
  | [ fn ] ->
    let vs = Coverage.Testgen.interesting_values fn in
    Alcotest.(check bool) "case labels found" true (List.mem 3 vs && List.mem 7 vs);
    Alcotest.(check bool) "default probe present" true (List.mem 99 vs)
  | _ -> Alcotest.fail "one function"

let test_testgen_comparison_boundaries () =
  let tu = parse "int F(int n) { if (n > 10) { return 1; } return 0; }" in
  match Cfront.Ast.functions_of_tu tu with
  | [ fn ] ->
    let vs = Coverage.Testgen.interesting_values fn in
    Alcotest.(check bool) "straddles the constant" true
      (List.mem 9 vs && List.mem 10 vs && List.mem 11 vs)
  | _ -> Alcotest.fail "one function"

let test_testgen_scalar_filter () =
  let tu = parse "int F(float* p) { return (int)p[0]; }\nint G(int a) { return a; }" in
  match Cfront.Ast.functions_of_tu tu with
  | [ f; g ] ->
    Alcotest.(check bool) "pointer params excluded" false
      (Coverage.Testgen.all_scalar_params f);
    Alcotest.(check bool) "scalar params included" true
      (Coverage.Testgen.all_scalar_params g)
  | _ -> Alcotest.fail "two functions"

let test_testgen_closes_yolo_gaps () =
  let tus = Corpus.Yolo_src.parse_all () in
  let measured = List.map fst Corpus.Yolo_src.measured_files in
  let r = Coverage.Testgen.close_gaps ~entry:Corpus.Yolo_src.entry ~measured tus in
  Alcotest.(check bool) "statement coverage improves" true
    (r.Coverage.Testgen.after_stmt > r.Coverage.Testgen.before_stmt +. 2.0);
  Alcotest.(check bool) "branch coverage improves" true
    (r.Coverage.Testgen.after_branch > r.Coverage.Testgen.before_branch +. 2.0);
  Alcotest.(check bool) "plans generated" true (r.Coverage.Testgen.plans <> []);
  Alcotest.(check bool) "driver parses" true
    ((Cfront.Parser.parse_file ~file:"d.c" r.Coverage.Testgen.driver).Cfront.Ast.diags = [])

(* ------------------------------------------------------------------ *)
(* Merge-operator properties                                            *)
(*                                                                      *)
(* The scenario-parallel engine's correctness rests on the collector     *)
(* merge being a per-key count sum plus an MC/DC vector-set union —      *)
(* commutative and associative.  These properties drive random event     *)
(* streams into per-scenario collectors, then check that ANY partition   *)
(* of the scenarios into batches, merged in ANY order, fingerprints      *)
(* identically to the flat left-to-right merge (the sequential oracle).  *)
(* Seeding is explicit everywhere — no Random.self_init.                 *)
(* ------------------------------------------------------------------ *)

type cov_event =
  | Ev_stmt of int
  | Ev_decision of int * bool
  | Ev_switch of int * int
  | Ev_call of string
  | Ev_kernel of string
  | Ev_mcdc of int * (int * bool option) list * bool

let apply_event col ev =
  let bump tbl key =
    Hashtbl.replace tbl key
      (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  match ev with
  | Ev_stmt sid -> bump col.Coverage.Collector.stmt_hits sid
  | Ev_decision (eid, o) -> bump col.Coverage.Collector.decision_outcomes (eid, o)
  | Ev_switch (sid, idx) -> bump col.Coverage.Collector.switch_hits (sid, idx)
  | Ev_call f -> bump col.Coverage.Collector.calls f
  | Ev_kernel k -> bump col.Coverage.Collector.kernel_launches k
  | Ev_mcdc (eid, conds, outcome) ->
    Coverage.Mcdc.record col.Coverage.Collector.mcdc ~decision_eid:eid ~conds
      ~outcome

let collector_of_events evs =
  let col = Coverage.Collector.create () in
  List.iter (apply_event col) evs;
  col

let cov_event_gen =
  let open QCheck.Gen in
  frequency
    [
      (4, map (fun i -> Ev_stmt i) (int_range 0 40));
      (3, map2 (fun i b -> Ev_decision (i, b)) (int_range 0 15) bool);
      (2, map2 (fun i j -> Ev_switch (i, j)) (int_range 0 8) (int_range 0 3));
      (2, map (fun i -> Ev_call ("f" ^ string_of_int i)) (int_range 0 9));
      (1, map (fun i -> Ev_kernel ("k" ^ string_of_int i)) (int_range 0 4));
      ( 3,
        map3
          (fun eid mask outcome ->
            (* three conditions; two mask bits each pick masked/T/F *)
            let conds =
              List.init 3 (fun c ->
                  ( c,
                    match (mask lsr (2 * c)) land 3 with
                    | 0 -> None
                    | 1 -> Some true
                    | _ -> Some false ))
            in
            Ev_mcdc (eid, conds, outcome))
          (int_range 0 6) (int_range 0 63) bool );
    ]

(* A "scenario" is one event stream; a test case is a few scenarios plus
   a seed driving the partition and merge order. *)
let scenario_streams_gen =
  QCheck.Gen.(
    pair
      (list_size (int_range 0 10) (list_size (int_range 0 30) cov_event_gen))
      (int_range 0 1_000_000))

let print_streams (streams, seed) =
  Printf.sprintf "seed=%d streams=%s" seed
    (String.concat ";"
       (List.map (fun evs -> string_of_int (List.length evs)) streams))

let prop_merge_partition_invariant =
  QCheck.Test.make
    ~name:"collector merge is partition- and order-invariant" ~count:150
    (QCheck.make ~print:print_streams scenario_streams_gen)
    (fun (streams, seed) ->
      let oracle =
        Coverage.Collector.fingerprint
          (Coverage.Collector.merge (List.map collector_of_events streams))
      in
      let st = Random.State.make [| seed; 0x26262 |] in
      (* partition the scenario list into k batches at random *)
      let k = 1 + Random.State.int st 4 in
      let batches = Array.make k [] in
      List.iter
        (fun evs ->
          let b = Random.State.int st k in
          batches.(b) <- evs :: batches.(b))
        streams;
      let batch_cols =
        Array.to_list
          (Array.map
             (fun evss ->
               Coverage.Collector.merge (List.map collector_of_events evss))
             batches)
      in
      (* merge the batch collectors in a random order *)
      let tagged =
        List.map (fun c -> (Random.State.bits st, c)) batch_cols
      in
      let shuffled =
        List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) tagged)
      in
      String.equal oracle
        (Coverage.Collector.fingerprint (Coverage.Collector.merge shuffled)))

let prop_merge_empty_identity =
  QCheck.Test.make ~name:"merging an empty collector changes nothing" ~count:100
    (QCheck.make ~print:print_streams scenario_streams_gen)
    (fun (streams, _seed) ->
      let col =
        Coverage.Collector.merge (List.map collector_of_events streams)
      in
      let before = Coverage.Collector.fingerprint col in
      Coverage.Collector.merge_into ~into:col (Coverage.Collector.create ());
      String.equal before (Coverage.Collector.fingerprint col))

let prop_mcdc_union_deduplicates =
  QCheck.Test.make
    ~name:"MC/DC vector union deduplicates across scenarios" ~count:100
    (QCheck.make ~print:print_streams scenario_streams_gen)
    (fun (streams, _seed) ->
      (* replaying every scenario twice must not change the canonical
         vector sets: the union is a set union, not a multiset sum *)
      let once =
        Coverage.Collector.merge (List.map collector_of_events streams)
      in
      let twice =
        Coverage.Collector.merge
          (List.map collector_of_events (streams @ streams))
      in
      Coverage.Mcdc.canonical once.Coverage.Collector.mcdc
      = Coverage.Mcdc.canonical twice.Coverage.Collector.mcdc)

(* Deterministic QCheck driver state: the suite must not depend on a
   wall-clock seed (concurrency policy: seeded, reproducible). *)
let merge_prop_rand = Random.State.make [| 0x26262 |]

let () =
  Alcotest.run "coverage"
    [
      ( "memory",
        [
          Alcotest.test_case "alloc/load/store" `Quick test_memory_alloc_load_store;
          Alcotest.test_case "out of bounds" `Quick test_memory_out_of_bounds;
          Alcotest.test_case "double free" `Quick test_memory_double_free;
          Alcotest.test_case "copy/fill" `Quick test_memory_copy_fill;
          Alcotest.test_case "truthiness" `Quick test_value_truthiness;
        ] );
      ( "interp",
        [
          Alcotest.test_case "arithmetic" `Quick test_interp_arithmetic;
          Alcotest.test_case "float arithmetic" `Quick test_interp_float_arith;
          Alcotest.test_case "division by zero" `Quick test_interp_division_by_zero;
          Alcotest.test_case "compound assign" `Quick test_interp_compound_assign;
          Alcotest.test_case "inc/dec" `Quick test_interp_incdec;
          Alcotest.test_case "pointers and arrays" `Quick test_interp_pointers_and_arrays;
          Alcotest.test_case "struct members" `Quick test_interp_struct_members;
          Alcotest.test_case "struct by value" `Quick test_interp_struct_by_value;
          Alcotest.test_case "struct assignment copies" `Quick
            test_interp_struct_assignment_copies;
          Alcotest.test_case "reference params" `Quick test_interp_reference_params;
          Alcotest.test_case "globals" `Quick test_interp_globals;
          Alcotest.test_case "enums" `Quick test_interp_enums;
          Alcotest.test_case "switch fallthrough" `Quick test_interp_switch_fallthrough;
          Alcotest.test_case "switch default" `Quick test_interp_switch_default;
          Alcotest.test_case "goto forward" `Quick test_interp_goto_forward;
          Alcotest.test_case "loops" `Quick test_interp_loops;
          Alcotest.test_case "short-circuit purity" `Quick
            test_interp_short_circuit_no_side_effect;
          Alcotest.test_case "ternary" `Quick test_interp_ternary;
          Alcotest.test_case "recursion" `Quick test_interp_recursion;
          Alcotest.test_case "printf output" `Quick test_interp_printf_output;
          Alcotest.test_case "math builtins" `Quick test_interp_math_builtins;
          Alcotest.test_case "memcpy builtin" `Quick test_interp_memcpy_builtin;
          Alcotest.test_case "math/string builtins" `Quick test_interp_builtin_values;
          Alcotest.test_case "rand deterministic" `Quick test_interp_rand_deterministic;
          Alcotest.test_case "kernel launch grid" `Quick test_interp_kernel_launch_grid;
          Alcotest.test_case "cuda memcpy roundtrip" `Quick
            test_interp_cuda_memcpy_roundtrip;
          Alcotest.test_case "step limit" `Quick test_interp_step_limit;
          Alcotest.test_case "exceptions" `Quick test_interp_exceptions;
          Alcotest.test_case "uncaught throw" `Quick test_interp_uncaught_throw;
          Alcotest.test_case "null deref" `Quick test_interp_null_deref;
          Alcotest.test_case "multi-TU program" `Quick test_interp_multi_tu_program;
        ] );
      ( "instrument",
        [
          Alcotest.test_case "counts" `Quick test_instrument_counts;
          Alcotest.test_case "ternary decision" `Quick test_instrument_ternary_is_decision;
          Alcotest.test_case "negation transparent" `Quick test_instrument_not_transparent;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "full coverage" `Quick test_coverage_full;
          Alcotest.test_case "half branch" `Quick test_coverage_half_branch;
          Alcotest.test_case "excluded functions" `Quick test_coverage_excluded_functions;
          Alcotest.test_case "switch clauses" `Quick test_coverage_switch_clauses;
        ] );
      ( "mcdc",
        [
          Alcotest.test_case "single condition" `Quick test_mcdc_single_condition_needs_both;
          Alcotest.test_case "and pair" `Quick test_mcdc_and_pair;
          Alcotest.test_case "and insufficient" `Quick test_mcdc_and_insufficient;
          Alcotest.test_case "or with masking" `Quick test_mcdc_or_masking;
          Alcotest.test_case "suggest vector" `Quick test_mcdc_suggest_vector;
          QCheck_alcotest.to_alcotest prop_mcdc_never_exceeds_branch_opportunities;
        ] );
      ( "differential",
        [ QCheck_alcotest.to_alcotest prop_interpreter_matches_reference ] );
      ( "merge",
        [
          QCheck_alcotest.to_alcotest ~rand:merge_prop_rand
            prop_merge_partition_invariant;
          QCheck_alcotest.to_alcotest ~rand:merge_prop_rand
            prop_merge_empty_identity;
          QCheck_alcotest.to_alcotest ~rand:merge_prop_rand
            prop_mcdc_union_deduplicates;
        ] );
      ( "annotate",
        [
          Alcotest.test_case "listing" `Quick test_annotate_listing;
          Alcotest.test_case "missed lines" `Quick test_annotate_missed_lines;
          Alcotest.test_case "function filter" `Quick test_annotate_function_filter;
        ] );
      ( "testgen",
        [
          Alcotest.test_case "interesting values" `Quick test_testgen_interesting_values;
          Alcotest.test_case "comparison boundaries" `Quick
            test_testgen_comparison_boundaries;
          Alcotest.test_case "scalar filter" `Quick test_testgen_scalar_filter;
          Alcotest.test_case "closes yolo gaps" `Quick test_testgen_closes_yolo_gaps;
        ] );
    ]
