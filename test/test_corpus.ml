(* Tests for the corpus: generator determinism and quota exactness, the
   Apollo profile, and the embedded YOLO / stencil programs. *)

let small_one = [ List.hd Corpus.Apollo_profile.small ]

let contents project =
  List.map (fun f -> f.Cfront.Project.content) (Cfront.Project.all_files project)

(* ------------------------------------------------------------------ *)
(* Generator determinism                                                *)
(* ------------------------------------------------------------------ *)

let test_generator_deterministic () =
  let a = Corpus.Generator.generate ~seed:123 small_one in
  let b = Corpus.Generator.generate ~seed:123 small_one in
  Alcotest.(check bool) "byte-identical output" true (contents a = contents b)

let test_generator_seed_sensitivity () =
  let a = Corpus.Generator.generate ~seed:1 small_one in
  let b = Corpus.Generator.generate ~seed:2 small_one in
  Alcotest.(check bool) "different seeds differ" true (contents a <> contents b)

let test_generator_parses_clean () =
  let parsed = Cfront.Project.parse (Corpus.Generator.generate ~seed:5 Corpus.Apollo_profile.small) in
  let diags =
    List.concat_map
      (fun pf -> pf.Cfront.Project.tu.Cfront.Ast.diags)
      parsed.Cfront.Project.files
  in
  Alcotest.(check (list string)) "no diagnostics anywhere" [] diags

(* ------------------------------------------------------------------ *)
(* Quota exactness on a single module                                   *)
(* ------------------------------------------------------------------ *)

let spec = List.hd small_one  (* scaled perception *)

let parsed_small = lazy (Cfront.Project.parse (Corpus.Generator.generate ~seed:2019 small_one))

let fns () = Cfront.Project.all_functions (Lazy.force parsed_small)

let test_quota_over10 () =
  let over10 =
    List.length
      (List.filter
         (fun (c : Metrics.Complexity.func_cc) -> c.Metrics.Complexity.cc > 10)
         (Metrics.Complexity.of_functions (fns ())))
  in
  Alcotest.(check int) "over10 exact" spec.Corpus.Apollo_profile.over10 over10

let test_quota_globals () =
  let globals =
    Metrics.Globals.of_files (Lazy.force parsed_small).Cfront.Project.files
  in
  Alcotest.(check int) "globals exact" spec.Corpus.Apollo_profile.globals
    (List.length globals)

let test_quota_casts_at_least () =
  (* the spec quota is exact for generated statements; CUDA host wrappers
     add their intrinsic void-pointer casts on top *)
  let casts = Metrics.Casts.explicit_count (Metrics.Casts.of_functions (fns ())) in
  Alcotest.(check bool) "at least quota" true (casts >= spec.Corpus.Apollo_profile.casts);
  Alcotest.(check bool) "bounded overhead" true
    (casts <= spec.Corpus.Apollo_profile.casts + (2 * spec.Corpus.Apollo_profile.cuda_kernels))

let test_quota_uninit_bounded () =
  let n = List.length (Metrics.Uninit.of_functions (fns ())) in
  Alcotest.(check bool) "within quota" true (n <= spec.Corpus.Apollo_profile.uninit_vars);
  Alcotest.(check bool) "some emitted" true (n > 0)

let test_quota_kernels () =
  let kernels =
    List.length
      (List.filter
         (fun (f : Cfront.Ast.func) -> List.mem Cfront.Ast.Q_global f.Cfront.Ast.f_quals)
         (fns ()))
  in
  Alcotest.(check int) "kernels exact" spec.Corpus.Apollo_profile.cuda_kernels kernels

let test_quota_recursion () =
  let g = Cfront.Callgraph.build (fns ()) in
  Alcotest.(check int) "recursive functions exact"
    spec.Corpus.Apollo_profile.recursive_fns
    (List.length (Cfront.Callgraph.recursive_functions g))

let test_multi_exit_close_to_spec () =
  let frac = Metrics.Func_shape.multi_exit_fraction (fns ()) in
  let target = spec.Corpus.Apollo_profile.multi_exit_frac in
  Alcotest.(check bool) "within 6 points of target" true (abs_float (frac -. target) < 0.06)

let test_loc_close_to_target () =
  let loc =
    (Metrics.Loc_metrics.of_files (Lazy.force parsed_small).Cfront.Project.files)
      .Metrics.Loc_metrics.physical
  in
  let target = spec.Corpus.Apollo_profile.target_loc in
  Alcotest.(check bool) "within 20% of target LOC" true
    (float_of_int (abs (loc - target)) /. float_of_int target < 0.2)

let test_style_clean () =
  let findings = Metrics.Style.of_files (Lazy.force parsed_small).Cfront.Project.files in
  Alcotest.(check int) "generator emits style-clean code" 0 (List.length findings)

let test_naming_clean () =
  let findings = Metrics.Naming.of_files (Lazy.force parsed_small).Cfront.Project.files in
  Alcotest.(check int) "generator follows Google naming" 0 (List.length findings)

(* Cross-validation: independent analyzers must agree on the corpus. *)

let misra_report =
  lazy (Misra.Registry.run (Misra.Rule.build_context (Lazy.force parsed_small)))

let rule_count id =
  let report = Lazy.force misra_report in
  match
    List.find_opt (fun ((r : Misra.Rule.t), _) -> r.Misra.Rule.id = id)
      report.Misra.Registry.per_rule
  with
  | Some (_, vs) -> List.length vs
  | None -> Alcotest.failf "rule %s missing" id

let test_crossval_goto_rule_vs_metric () =
  Alcotest.(check int) "MISRA 15.1 agrees with Func_shape goto census"
    (Metrics.Func_shape.total_gotos (fns ()))
    (rule_count "15.1")

let test_crossval_recursion_rule_vs_callgraph () =
  let g = Cfront.Callgraph.build (fns ()) in
  Alcotest.(check int) "MISRA 17.2 agrees with call-graph SCCs"
    (List.length (Cfront.Callgraph.recursive_functions g))
    (rule_count "17.2")

let test_crossval_cuda1_vs_census () =
  let census = Cudasim.Census.of_files (Lazy.force parsed_small).Cfront.Project.files in
  Alcotest.(check int) "CUDA-1 agrees with bound-check census"
    census.Cudasim.Census.kernels_without_bound_check
    (rule_count "CUDA-1")

let test_crossval_uninit_rule_vs_metric () =
  Alcotest.(check int) "MISRA 9.1 agrees with the uninitialized-read analysis"
    (List.length (Metrics.Uninit.of_functions (fns ())))
    (rule_count "9.1")

let test_crossval_ignored_returns () =
  let fns = fns () in
  Alcotest.(check int) "MISRA 17.7 agrees with the defensive analysis"
    (List.length (Metrics.Defensive.ignored_returns ~funcs:fns fns))
    (rule_count "17.7")

(* ------------------------------------------------------------------ *)
(* Apollo profile                                                       *)
(* ------------------------------------------------------------------ *)

let test_profile_totals () =
  Alcotest.(check bool) "paper scale: >220k LOC" true
    (Corpus.Apollo_profile.total_loc Corpus.Apollo_profile.full > 220_000);
  Alcotest.(check int) "paper: 554 functions above CC 10" 554
    (Corpus.Apollo_profile.total_over10 Corpus.Apollo_profile.full);
  Alcotest.(check bool) "paper: >1400 casts" true
    (Corpus.Apollo_profile.total_casts Corpus.Apollo_profile.full > 1_400)

let test_profile_module_sizes () =
  List.iter
    (fun (s : Corpus.Apollo_profile.module_spec) ->
      Alcotest.(check bool)
        (s.Corpus.Apollo_profile.name ^ " between 5k and 65k LOC") true
        (s.Corpus.Apollo_profile.target_loc >= 5_000
         && s.Corpus.Apollo_profile.target_loc <= 65_000))
    Corpus.Apollo_profile.full

let test_profile_scaling_preserves_shape () =
  let scaled = Corpus.Apollo_profile.scale ~factor:0.5 Corpus.Apollo_profile.perception in
  Alcotest.(check bool) "loc halved" true
    (abs (scaled.Corpus.Apollo_profile.target_loc - 30_500) < 10);
  Alcotest.(check bool) "over-counts nested" true
    (scaled.Corpus.Apollo_profile.over10 >= scaled.Corpus.Apollo_profile.over20
     && scaled.Corpus.Apollo_profile.over20 >= scaled.Corpus.Apollo_profile.over50)

(* ------------------------------------------------------------------ *)
(* Embedded YOLO sources                                                *)
(* ------------------------------------------------------------------ *)

let yolo_run =
  lazy
    (let tus = Corpus.Yolo_src.parse_all () in
     let measured = List.map fst Corpus.Yolo_src.measured_files in
     (tus, Cudasim.Runner.run ~entry:Corpus.Yolo_src.entry ~measured tus))

let test_yolo_parses_clean () =
  let tus, _ = Lazy.force yolo_run in
  List.iter
    (fun (tu : Cfront.Ast.tu) ->
      Alcotest.(check (list string)) (tu.Cfront.Ast.tu_file ^ " clean") []
        tu.Cfront.Ast.diags)
    tus

let test_yolo_scenarios_pass () =
  let _, result = Lazy.force yolo_run in
  match result.Cudasim.Runner.exit_value with
  | Ok v -> Alcotest.(check int64) "all five scenarios pass" 10L (Coverage.Value.as_int v)
  | Error e -> Alcotest.failf "run failed: %s" e

let test_yolo_coverage_shape () =
  let _, result = Lazy.force yolo_run in
  let stmt, branch, mcdc = Coverage.Collector.averages result.Cudasim.Runner.files in
  (* the paper's Figure 5 shape: ~83/75/61 with low coverage present *)
  Alcotest.(check bool) "stmt avg near 83" true (stmt > 75.0 && stmt < 92.0);
  Alcotest.(check bool) "branch avg near 75" true (branch > 68.0 && branch < 88.0);
  Alcotest.(check bool) "mcdc avg near 61" true (mcdc > 50.0 && mcdc < 75.0);
  Alcotest.(check bool) "mcdc <= branch <= stmt on averages" true
    (mcdc <= branch && branch <= stmt);
  let min_stmt =
    Util.Stats.minimum
      (List.map (fun f -> f.Coverage.Collector.stmt_pct) result.Cudasim.Runner.files)
  in
  Alcotest.(check bool) "a low-coverage file exists" true (min_stmt < 40.0)

let test_yolo_output_scenarios () =
  let _, result = Lazy.force yolo_run in
  Alcotest.(check bool) "scenario output present" true
    (Util.Strutil.contains_sub ~sub:"scenario1 checksum" result.Cudasim.Runner.output)

(* ------------------------------------------------------------------ *)
(* Per-test scenario split golden                                       *)
(*                                                                      *)
(* The scenario set runs the driver's five test functions as            *)
(* independent scenarios (one env each) instead of one monolithic       *)
(* main().  Golden obligation: the combined measured coverage is        *)
(* unchanged — same per-function statement/branch/condition counts,     *)
(* same file percentages, same excluded-function counts.  Attribution   *)
(* (first_covered_by) legitimately differs (it now names the specific   *)
(* covering test), so it is not part of the comparison.                 *)
(* ------------------------------------------------------------------ *)

let test_split_scenarios_golden () =
  (* ONE parse shared by both runs, as in production *)
  let tus = Corpus.Yolo_src.parse_all () in
  let measured = List.map fst Corpus.Yolo_src.measured_files in
  let run_entries entries =
    let col = Coverage.Collector.create () in
    let env = Coverage.Interp.create ~hooks:(Coverage.Collector.hooks col) () in
    List.iter
      (fun e ->
        match Coverage.Interp.run env tus ~entry:e ~args:[] with
        | Ok _ -> ()
        | Error err -> Alcotest.failf "entry %s failed: %s" e err)
      entries;
    col
  in
  let mono = run_entries [ Corpus.Yolo_src.entry ] in
  let split =
    Coverage.Collector.merge
      (List.map
         (fun fn -> run_entries [ fn ])
         Corpus.Yolo_src.scenario_entries)
  in
  let lines col =
    List.concat_map
      (fun (tu : Cfront.Ast.tu) ->
        if not (List.mem tu.Cfront.Ast.tu_file measured) then []
        else
          let f =
            Coverage.Collector.score_file col ~file:tu.Cfront.Ast.tu_file
              (Coverage.Instrument.of_tu tu)
          in
          Printf.sprintf "%s excluded=%d stmt=%.6f branch=%.6f mcdc=%.6f fn=%.6f"
            f.Coverage.Collector.file f.Coverage.Collector.excluded
            f.Coverage.Collector.stmt_pct f.Coverage.Collector.branch_pct
            f.Coverage.Collector.mcdc_pct f.Coverage.Collector.function_pct
          :: List.map
               (fun (fc : Coverage.Collector.func_coverage) ->
                 Printf.sprintf
                   "  %s called=%b stmt=%d/%d branch=%d/%d cond=%d/%d"
                   fc.Coverage.Collector.fp.Coverage.Instrument.fp_name
                   fc.Coverage.Collector.called
                   fc.Coverage.Collector.stmts_hit
                   fc.Coverage.Collector.stmts_total
                   fc.Coverage.Collector.branches_hit
                   fc.Coverage.Collector.branches_total
                   fc.Coverage.Collector.conditions_hit
                   fc.Coverage.Collector.conditions_total)
               f.Coverage.Collector.functions)
      tus
  in
  let mono_lines = lines mono in
  Alcotest.(check bool) "golden is nonempty" true (mono_lines <> []);
  Alcotest.(check (list string)) "split == monolithic on measured files"
    mono_lines (lines split)

let test_split_scenarios_in_set () =
  let set = Corpus.Scenario_set.full () in
  List.iter
    (fun fn ->
      Alcotest.(check bool)
        (fn ^ " has its own scenario") true
        (List.exists
           (fun (sc : Coverage.Scenario.t) ->
             sc.Coverage.Scenario.sc_entries = [ fn ])
           set.Corpus.Scenario_set.scenarios))
    Corpus.Yolo_src.scenario_entries

(* ------------------------------------------------------------------ *)
(* Embedded stencil sources                                             *)
(* ------------------------------------------------------------------ *)

let stencil_run =
  lazy
    (let tus = Corpus.Stencil_src.parse_all () in
     let measured = List.map fst Corpus.Stencil_src.measured_files in
     (tus, Cudasim.Runner.run ~entry:Corpus.Stencil_src.entry ~measured tus))

let test_stencil_parses_and_runs () =
  let tus, result = Lazy.force stencil_run in
  List.iter
    (fun (tu : Cfront.Ast.tu) ->
      Alcotest.(check (list string)) "clean" [] tu.Cfront.Ast.diags)
    tus;
  match result.Cudasim.Runner.exit_value with
  | Ok v -> Alcotest.(check int64) "exit 0" 0L (Coverage.Value.as_int v)
  | Error e -> Alcotest.failf "run failed: %s" e

let test_stencil_below_full_coverage () =
  let _, result = Lazy.force stencil_run in
  Alcotest.(check int) "two measured kernels" 2 (List.length result.Cudasim.Runner.files);
  List.iter
    (fun (f : Coverage.Collector.file_coverage) ->
      Alcotest.(check bool) (f.Coverage.Collector.file ^ " below 100%") true
        (f.Coverage.Collector.stmt_pct < 100.0 || f.Coverage.Collector.branch_pct < 100.0);
      Alcotest.(check bool) "still substantial" true (f.Coverage.Collector.stmt_pct > 70.0))
    result.Cudasim.Runner.files

let test_stencil_census () =
  let _, result = Lazy.force stencil_run in
  let c = result.Cudasim.Runner.census in
  Alcotest.(check int) "two kernels" 2 c.Cudasim.Census.kernels;
  Alcotest.(check int) "four cudaMalloc" 4 c.Cudasim.Census.cuda_mallocs;
  Alcotest.(check bool) "launches recorded" true (c.Cudasim.Census.kernel_launches >= 2)

let () =
  Alcotest.run "corpus"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_generator_seed_sensitivity;
          Alcotest.test_case "parses clean" `Slow test_generator_parses_clean;
        ] );
      ( "quotas",
        [
          Alcotest.test_case "over10 exact" `Quick test_quota_over10;
          Alcotest.test_case "globals exact" `Quick test_quota_globals;
          Alcotest.test_case "casts at least" `Quick test_quota_casts_at_least;
          Alcotest.test_case "uninit bounded" `Quick test_quota_uninit_bounded;
          Alcotest.test_case "kernels exact" `Quick test_quota_kernels;
          Alcotest.test_case "recursion exact" `Quick test_quota_recursion;
          Alcotest.test_case "multi-exit near target" `Quick test_multi_exit_close_to_spec;
          Alcotest.test_case "loc near target" `Quick test_loc_close_to_target;
          Alcotest.test_case "style clean" `Quick test_style_clean;
          Alcotest.test_case "naming clean" `Quick test_naming_clean;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "goto: rule vs metric" `Quick test_crossval_goto_rule_vs_metric;
          Alcotest.test_case "recursion: rule vs callgraph" `Quick
            test_crossval_recursion_rule_vs_callgraph;
          Alcotest.test_case "cuda-1 vs census" `Quick test_crossval_cuda1_vs_census;
          Alcotest.test_case "uninit: rule vs metric" `Quick test_crossval_uninit_rule_vs_metric;
          Alcotest.test_case "ignored returns" `Quick test_crossval_ignored_returns;
        ] );
      ( "profile",
        [
          Alcotest.test_case "totals match paper" `Quick test_profile_totals;
          Alcotest.test_case "module sizes" `Quick test_profile_module_sizes;
          Alcotest.test_case "scaling" `Quick test_profile_scaling_preserves_shape;
        ] );
      ( "yolo",
        [
          Alcotest.test_case "parses clean" `Quick test_yolo_parses_clean;
          Alcotest.test_case "scenarios pass" `Quick test_yolo_scenarios_pass;
          Alcotest.test_case "coverage shape matches Figure 5" `Quick test_yolo_coverage_shape;
          Alcotest.test_case "scenario output" `Quick test_yolo_output_scenarios;
          Alcotest.test_case "split scenarios golden" `Slow
            test_split_scenarios_golden;
          Alcotest.test_case "split scenarios in set" `Slow
            test_split_scenarios_in_set;
        ] );
      ( "stencil",
        [
          Alcotest.test_case "parses and runs" `Quick test_stencil_parses_and_runs;
          Alcotest.test_case "below full coverage" `Quick test_stencil_below_full_coverage;
          Alcotest.test_case "census" `Quick test_stencil_census;
        ] );
    ]
