(* Differential sequential-vs-parallel harness.

   The concurrency policy says parallelism is configuration, never
   semantics: --jobs 1 is the oracle (the exact historical sequential
   code path) and every other worker count must reproduce its output
   bit for bit.  This test runs the table1 analysis pipeline — corpus
   generation -> parse -> MISRA -> dataflow — once per jobs value and
   compares:

   - the full MISRA violation list (rule, file, line, column, message),
   - the per-function dataflow summaries and their totals,
   - the merged telemetry counter list (parse, misra and dataflow keys),

   all of which must be *identical*, not merely equivalent.

   The "coverage" group applies the same discipline to the scenario-
   parallel coverage engine: the full scenario set (real scenarios +
   fault injection + testgen probes, over one shared parse) replayed at
   jobs=2/4 must merge to the byte-identical collector state, per-file
   percentages, MC/DC satisfied-pair counts and per-scenario results
   that jobs=1 produces. *)

type run_result = {
  violations : (string * string * int * int * string) list;
  df_summaries : (string * int * int * int * int * int * int) list;
  counters : (string * int) list;
}

(* The whole pipeline under [jobs] worker domains, telemetry on, with a
   fresh sink so counter attribution can't leak between runs. *)
let run_pipeline ~jobs =
  Util.Pool.set_default_jobs jobs;
  Telemetry.reset ();
  Telemetry.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.reset ();
      Telemetry.set_enabled false)
  @@ fun () ->
  let project =
    Corpus.Generator.generate ~seed:2019 Corpus.Apollo_profile.small
  in
  let parsed = Cfront.Project.parse project in
  let report = Misra.Registry.run_project parsed in
  let summaries =
    Dataflow.Analyses.summarize_functions (Cfront.Project.all_functions parsed)
  in
  {
    violations =
      List.concat_map
        (fun ((r : Misra.Rule.t), vs) ->
          List.map
            (fun (v : Misra.Rule.violation) ->
              ( r.Misra.Rule.id, v.Misra.Rule.loc.Cfront.Loc.file,
                v.Misra.Rule.loc.Cfront.Loc.line, v.Misra.Rule.loc.Cfront.Loc.col,
                v.Misra.Rule.message ))
            vs)
        report.Misra.Registry.per_rule;
    df_summaries =
      List.map
        (fun (s : Dataflow.Analyses.func_summary) ->
          ( s.Dataflow.Analyses.s_function, s.Dataflow.Analyses.s_blocks,
            s.Dataflow.Analyses.s_edges, s.Dataflow.Analyses.s_unreachable,
            s.Dataflow.Analyses.s_dead_stores, s.Dataflow.Analyses.s_uninit_reads,
            s.Dataflow.Analyses.s_const_conditions ))
        summaries;
    counters = Telemetry.counters ();
  }

let violation_t = Alcotest.(list (pair string (pair string (pair int (pair int string)))))

let nest (r, f, l, c, m) = (r, (f, (l, (c, m))))

let restore_jobs = Util.Pool.default_jobs ()

let check_jobs_equal ~oracle ~jobs =
  Fun.protect ~finally:(fun () -> Util.Pool.set_default_jobs restore_jobs)
  @@ fun () ->
  let par = run_pipeline ~jobs in
  Alcotest.(check violation_t)
    (Printf.sprintf "violations identical at jobs=%d" jobs)
    (List.map nest oracle.violations)
    (List.map nest par.violations);
  Alcotest.(check (list (pair string (pair int (pair int (pair int (pair int (pair int int))))))))
    (Printf.sprintf "dataflow summaries identical at jobs=%d" jobs)
    (List.map (fun (n, a, b, c, d, e, f) -> (n, (a, (b, (c, (d, (e, f)))))) ) oracle.df_summaries)
    (List.map (fun (n, a, b, c, d, e, f) -> (n, (a, (b, (c, (d, (e, f)))))) ) par.df_summaries)

let check_counters_equal ~oracle ~jobs =
  Fun.protect ~finally:(fun () -> Util.Pool.set_default_jobs restore_jobs)
  @@ fun () ->
  let par = run_pipeline ~jobs in
  Alcotest.(check (list (pair string int)))
    (Printf.sprintf "merged counters identical at jobs=%d" jobs)
    oracle.counters par.counters;
  (* the counters we specifically rely on downstream *)
  List.iter
    (fun key ->
      Alcotest.(check int)
        (Printf.sprintf "%s identical at jobs=%d" key jobs)
        (List.assoc key oracle.counters)
        (List.assoc key par.counters))
    [ "parse.files"; "parse.ast_nodes"; "misra.violations"; "dataflow.solves";
      "dataflow.transfers"; "dataflow.functions" ]

(* One oracle run shared by the cases (recomputed lazily so alcotest's
   listing mode stays cheap). *)
let oracle = lazy (run_pipeline ~jobs:1)

(* ------------------------------------------------------------------ *)
(* Coverage differential                                                *)
(*                                                                      *)
(* The scenario-parallel coverage engine must be exact, not just         *)
(* statistically close: the full scenario set (real scenarios, fault     *)
(* injection, testgen probes) replayed at jobs=2/4 must merge to the     *)
(* byte-identical collector state the jobs=1 run produces — same         *)
(* per-file hit sets, same statement percentages, same MC/DC             *)
(* satisfied-pair counts, same per-scenario results.                     *)
(*                                                                      *)
(* The set is built ONCE and shared by every jobs value: statement and   *)
(* decision ids are assigned at parse time from a process-global         *)
(* counter, so a second parse would yield different absolute ids and     *)
(* nothing would be comparable.  Sharing the parse is also exactly what  *)
(* production does (Corpus.Scenario_set).                                *)
(* ------------------------------------------------------------------ *)

let coverage_set =
  lazy
    (Util.Pool.set_default_jobs 1;
     Fun.protect ~finally:(fun () -> Util.Pool.set_default_jobs restore_jobs)
       Corpus.Scenario_set.full)

type coverage_result = {
  c_fingerprint : string;
  c_files : string list;  (** one canonical line per measured file *)
  c_results : (string * string) list;  (** scenario/entry -> outcome *)
}

let run_coverage ~jobs =
  let set = Lazy.force coverage_set in
  Util.Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Util.Pool.set_default_jobs restore_jobs)
  @@ fun () ->
  let outcomes =
    Coverage.Scenario.run_all set.Corpus.Scenario_set.scenarios
  in
  let merged = Coverage.Scenario.merged_collector outcomes in
  let files =
    Coverage.Scenario.score merged ~measured:set.Corpus.Scenario_set.measured
      set.Corpus.Scenario_set.tus
  in
  {
    c_fingerprint = Coverage.Collector.fingerprint merged;
    c_files =
      List.map
        (fun (f : Coverage.Collector.file_coverage) ->
          let pairs_hit, pairs_total =
            List.fold_left
              (fun (h, t) (fc : Coverage.Collector.func_coverage) ->
                ( h + fc.Coverage.Collector.conditions_hit,
                  t + fc.Coverage.Collector.conditions_total ))
              (0, 0) f.Coverage.Collector.functions
          in
          Printf.sprintf "%s stmt=%.6f branch=%.6f mcdc=%.6f pairs=%d/%d"
            f.Coverage.Collector.file f.Coverage.Collector.stmt_pct
            f.Coverage.Collector.branch_pct f.Coverage.Collector.mcdc_pct
            pairs_hit pairs_total)
        files;
    c_results =
      List.concat_map
        (fun (o : Coverage.Scenario.outcome) ->
          List.map
            (fun (entry, r) ->
              ( o.Coverage.Scenario.o_name ^ "/" ^ entry,
                match r with
                | Ok v -> "ok " ^ Coverage.Value.to_string v
                | Error e -> "error " ^ e ))
            o.Coverage.Scenario.o_results)
        outcomes;
  }

let coverage_oracle = lazy (run_coverage ~jobs:1)

let check_coverage_equal ~jobs =
  let oracle = Lazy.force coverage_oracle in
  let par = run_coverage ~jobs in
  Alcotest.(check string)
    (Printf.sprintf "merged collector fingerprint identical at jobs=%d" jobs)
    oracle.c_fingerprint par.c_fingerprint;
  Alcotest.(check (list string))
    (Printf.sprintf "per-file coverage identical at jobs=%d" jobs)
    oracle.c_files par.c_files;
  Alcotest.(check (list (pair string string)))
    (Printf.sprintf "per-scenario results identical at jobs=%d" jobs)
    oracle.c_results par.c_results

let test_coverage_jobs2 () = check_coverage_equal ~jobs:2
let test_coverage_jobs4 () = check_coverage_equal ~jobs:4

let test_coverage_oracle_stable () =
  let a = Lazy.force coverage_oracle in
  let b = run_coverage ~jobs:1 in
  Alcotest.(check string) "sequential fingerprints agree" a.c_fingerprint
    b.c_fingerprint;
  Alcotest.(check (list string)) "sequential file lines agree" a.c_files
    b.c_files;
  Alcotest.(check bool) "scenario set nonempty" true (a.c_results <> []);
  (* the set really contains all three scenario families *)
  let set = Lazy.force coverage_set in
  let has prefix =
    List.exists
      (fun (sc : Coverage.Scenario.t) ->
        let n = sc.Coverage.Scenario.sc_name in
        String.length n >= String.length prefix
        && String.sub n 0 (String.length prefix) = prefix)
      set.Corpus.Scenario_set.scenarios
  in
  Alcotest.(check bool) "real scenarios present" true (has "yolo-real");
  Alcotest.(check bool) "fault scenarios present" true (has "detections-");
  Alcotest.(check bool) "testgen probes present" true (has "testgen-probes")

(* ------------------------------------------------------------------ *)
(* Corpus generation differential                                       *)
(*                                                                      *)
(* Module generation fans out over the pool (one task per module, each   *)
(* with a private SplitMix64 stream and name-id base), so the generated  *)
(* sources — every path and every byte of content — must be identical    *)
(* at every jobs value, and across repeated runs at the same value.      *)
(* ------------------------------------------------------------------ *)

let generate_sources ~jobs =
  Util.Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Util.Pool.set_default_jobs restore_jobs)
  @@ fun () ->
  List.map
    (fun (f : Cfront.Project.source_file) ->
      (f.Cfront.Project.path, f.Cfront.Project.content))
    (Cfront.Project.all_files
       (Corpus.Generator.generate ~seed:2019 Corpus.Apollo_profile.small))

let corpus_oracle = lazy (generate_sources ~jobs:1)

let check_corpus_equal ~jobs =
  let oracle = Lazy.force corpus_oracle in
  let par = generate_sources ~jobs in
  Alcotest.(check (list (pair string string)))
    (Printf.sprintf "generated sources byte-identical at jobs=%d" jobs)
    oracle par

let test_corpus_gen_stable () =
  let a = Lazy.force corpus_oracle in
  let b = generate_sources ~jobs:1 in
  Alcotest.(check (list (pair string string))) "sequential runs agree" a b;
  Alcotest.(check bool) "corpus nonempty" true (a <> [])

let test_corpus_gen_jobs2 () = check_corpus_equal ~jobs:2
let test_corpus_gen_jobs8 () = check_corpus_equal ~jobs:8

let test_reports_jobs4 () =
  check_jobs_equal ~oracle:(Lazy.force oracle) ~jobs:4

let test_counters_jobs4 () =
  check_counters_equal ~oracle:(Lazy.force oracle) ~jobs:4

let test_counters_jobs2 () =
  check_counters_equal ~oracle:(Lazy.force oracle) ~jobs:2

(* The oracle is itself reproducible: two sequential runs agree, which
   pins down that any jobs>1 mismatch really is a parallelism bug. *)
let test_oracle_stable () =
  let a = Lazy.force oracle in
  let b = run_pipeline ~jobs:1 in
  Util.Pool.set_default_jobs restore_jobs;
  Alcotest.(check violation_t) "sequential runs agree"
    (List.map nest a.violations) (List.map nest b.violations);
  Alcotest.(check (list (pair string int))) "sequential counters agree"
    a.counters b.counters;
  Alcotest.(check bool) "violations nonempty" true (a.violations <> [])

let () =
  Alcotest.run "parallel-determinism"
    [
      ( "differential",
        [
          Alcotest.test_case "oracle is stable" `Slow test_oracle_stable;
          Alcotest.test_case "violation+dataflow reports at jobs=4" `Slow
            test_reports_jobs4;
          Alcotest.test_case "merged counters at jobs=4" `Slow
            test_counters_jobs4;
          Alcotest.test_case "merged counters at jobs=2" `Slow
            test_counters_jobs2;
        ] );
      ( "corpus-gen",
        [
          Alcotest.test_case "generator oracle is stable" `Slow
            test_corpus_gen_stable;
          Alcotest.test_case "generated sources at jobs=2" `Slow
            test_corpus_gen_jobs2;
          Alcotest.test_case "generated sources at jobs=8" `Slow
            test_corpus_gen_jobs8;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "coverage oracle is stable" `Slow
            test_coverage_oracle_stable;
          Alcotest.test_case "merged coverage at jobs=2" `Slow
            test_coverage_jobs2;
          Alcotest.test_case "merged coverage at jobs=4" `Slow
            test_coverage_jobs4;
        ] );
    ]
