(* Flight-recorder test suite: histogram algebra (unit + QCheck merge
   properties), exporter JSON well-formedness under hostile strings,
   the adcheck-metrics/1 cross-jobs differential (counters AND
   histogram bucket contents byte-identical at jobs 1/2/8 under the
   tick clock), pool telemetry accounting, and the bench-diff gate
   policy (self-compare clean, injected regressions caught). *)

module H = Util.Histogram

(* ------------------------------------------------------------------ *)
(* Histogram unit tests                                                *)
(* ------------------------------------------------------------------ *)

let test_hist_empty () =
  let h = H.create () in
  Alcotest.(check int) "count" 0 (H.count h);
  Alcotest.(check int) "zeros" 0 (H.zeros h);
  Alcotest.(check (float 0.0)) "sum" 0.0 (H.sum h);
  Alcotest.(check (float 0.0)) "min" 0.0 (H.min_value h);
  Alcotest.(check (float 0.0)) "max" 0.0 (H.max_value h);
  Alcotest.(check (float 0.0)) "p50" 0.0 (H.p50 h);
  Alcotest.(check (list (pair int int))) "buckets" [] (H.buckets h)

let test_hist_observe () =
  let h = H.create () in
  List.iter (H.observe h) [ 1.0; 2.0; 4.0; 0.0; -3.0 ];
  Alcotest.(check int) "count" 5 (H.count h);
  Alcotest.(check int) "zeros" 2 (H.zeros h);
  Alcotest.(check (float 1e-9)) "sum" 4.0 (H.sum h);
  Alcotest.(check (float 0.0)) "min" (-3.0) (H.min_value h);
  Alcotest.(check (float 0.0)) "max" 4.0 (H.max_value h);
  Alcotest.(check (float 1e-9)) "mean" 0.8 (H.mean h)

let test_hist_bucket_bounds () =
  (* every positive sample lands in a bucket whose [lo, hi) range
     contains it, and consecutive buckets tile the line *)
  List.iter
    (fun v ->
      let h = H.create () in
      H.observe h v;
      match H.buckets h with
      | [ (i, 1) ] ->
        let lo, hi = H.bucket_bounds i in
        if not (lo <= v && v < hi) then
          Alcotest.failf "%g not in bucket %d range [%g, %g)" v i lo hi
      | bs -> Alcotest.failf "%g: expected one bucket, got %d" v (List.length bs))
    [ 1e-6; 0.5; 1.0; 1.5; 2.0; 3.0; 1000.0; 1e9 ];
  List.iter
    (fun i ->
      let _, hi = H.bucket_bounds i in
      let lo', _ = H.bucket_bounds (i + 1) in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "bucket %d hi = bucket %d lo" i (i + 1))
        hi lo')
    [ -8; -1; 0; 1; 7; 40 ]

let test_hist_quantile_clamped () =
  let h = H.create () in
  List.iter (H.observe h) [ 10.0; 10.0; 10.0 ];
  (* a single-value distribution: every quantile is that value, because
     estimates clamp to the observed extrema *)
  Alcotest.(check (float 0.0)) "p50" 10.0 (H.p50 h);
  Alcotest.(check (float 0.0)) "p99" 10.0 (H.p99 h)

let test_hist_quantile_zeros_first () =
  let h = H.create () in
  List.iter (H.observe h) [ 0.0; 0.0; 0.0; 100.0 ];
  (* 3 of 4 samples are zero: the median rank falls in the zero bucket,
     while p99 estimates within the bucket holding the tail sample *)
  Alcotest.(check (float 0.0)) "p50 is 0" 0.0 (H.p50 h);
  let lo, hi = H.bucket_bounds (fst (List.hd (H.buckets h))) in
  let p99 = H.p99 h in
  if not (lo <= p99 && p99 < hi) then
    Alcotest.failf "p99 %g outside tail bucket [%g, %g)" p99 lo hi

let test_hist_merge_identity () =
  let h = H.create () in
  List.iter (H.observe h) [ 1.0; 5.0; 0.0 ];
  let merged = H.merge [ h; H.create () ] in
  Alcotest.(check bool) "merge with empty = original" true (H.equal h merged);
  Alcotest.(check bool) "merge [] is empty" true
    (H.equal (H.create ()) (H.merge []))

let test_hist_copy_independent () =
  let h = H.create () in
  H.observe h 3.0;
  let c = H.copy h in
  H.observe h 7.0;
  Alcotest.(check int) "copy unaffected" 1 (H.count c);
  Alcotest.(check int) "original grew" 2 (H.count h)

(* ------------------------------------------------------------------ *)
(* QCheck merge properties                                             *)
(*                                                                     *)
(* Samples are integer-valued floats — the work-tier convention — so   *)
(* [sum] is exact under any association and [equal]+sum comparison is  *)
(* legitimate.                                                         *)
(* ------------------------------------------------------------------ *)

let sample_gen = QCheck.Gen.map float_of_int (QCheck.Gen.int_range (-10) 10_000)
let samples_arb = QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 200) sample_gen)

let of_samples xs =
  let h = H.create () in
  List.iter (H.observe h) xs;
  h

let hists_agree a b =
  H.equal a b && H.sum a = H.sum b

(* Splitting a sample list at any point and merging the two halves
   reproduces the sequential histogram — the per-domain buffering
   argument in one property. *)
let prop_merge_partition =
  QCheck.Test.make ~name:"merge is partition-invariant" ~count:300
    QCheck.(pair samples_arb small_nat)
    (fun (xs, k) ->
      let n = List.length xs in
      let cut = if n = 0 then 0 else k mod (n + 1) in
      let left = List.filteri (fun i _ -> i < cut) xs in
      let right = List.filteri (fun i _ -> i >= cut) xs in
      hists_agree (of_samples xs) (H.merge [ of_samples left; of_samples right ]))

let prop_merge_order =
  QCheck.Test.make ~name:"merge is order-invariant" ~count:300
    QCheck.(pair samples_arb samples_arb)
    (fun (xs, ys) ->
      hists_agree
        (H.merge [ of_samples xs; of_samples ys ])
        (H.merge [ of_samples ys; of_samples xs ]))

let prop_merge_empty_identity =
  QCheck.Test.make ~name:"empty is a merge identity" ~count:300 samples_arb
    (fun xs ->
      let h = of_samples xs in
      hists_agree h (H.merge [ H.create (); h; H.create () ]))

let prop_quantiles_monotone =
  QCheck.Test.make ~name:"p50 <= p90 <= p99 <= max" ~count:300 samples_arb
    (fun xs ->
      QCheck.assume (xs <> []);
      let h = of_samples xs in
      H.p50 h <= H.p90 h && H.p90 h <= H.p99 h && H.p99 h <= H.max_value h)

let prop_count_splits =
  QCheck.Test.make ~name:"count = zeros + bucket total" ~count:300 samples_arb
    (fun xs ->
      let h = of_samples xs in
      H.count h
      = H.zeros h + List.fold_left (fun acc (_, c) -> acc + c) 0 (H.buckets h))

(* ------------------------------------------------------------------ *)
(* Exporter JSON under hostile strings                                 *)
(* ------------------------------------------------------------------ *)

let hostile = "he said \"hi\"\\\n\ttab\x01 caf\xc3\xa9"

let parse_json what s =
  match Benchdiff.Json.parse s with
  | j -> j
  | exception Benchdiff.Json.Parse_error msg ->
    Alcotest.failf "%s is not valid JSON: %s" what msg

let with_fresh_sink f =
  Telemetry.reset ();
  Telemetry.set_enabled true;
  Fun.protect f ~finally:(fun () ->
      Telemetry.reset ();
      Telemetry.set_enabled false)

let test_chrome_trace_escaping () =
  with_fresh_sink @@ fun () ->
  Telemetry.with_span hostile (fun () -> Telemetry.incr hostile);
  Telemetry.set_gauge hostile 1.5;
  let j = parse_json "chrome_trace" (Telemetry.chrome_trace ()) in
  match Benchdiff.Json.member "traceEvents" j with
  | Some (Benchdiff.Json.Arr (ev :: _)) ->
    (match Benchdiff.Json.member "name" ev with
     | Some (Benchdiff.Json.Str s) ->
       Alcotest.(check string) "span name round-trips" hostile s
     | _ -> Alcotest.fail "event has no string name")
  | _ -> Alcotest.fail "no traceEvents array"

let test_metrics_escaping () =
  with_fresh_sink @@ fun () ->
  Telemetry.incr hostile;
  Telemetry.observe hostile 2.0;
  let j = parse_json "metrics_json" (Telemetry.metrics_json ()) in
  (match Benchdiff.Json.member "counters" j with
   | Some (Benchdiff.Json.Obj kvs) ->
     Alcotest.(check bool) "counter key round-trips" true
       (List.mem_assoc hostile kvs)
   | _ -> Alcotest.fail "no counters object");
  match Benchdiff.Json.member "histograms" j with
  | Some (Benchdiff.Json.Obj kvs) ->
    Alcotest.(check bool) "histogram key round-trips" true
      (List.mem_assoc hostile kvs)
  | _ -> Alcotest.fail "no histograms object"

let test_chrome_trace_sorted () =
  with_fresh_sink @@ fun () ->
  Telemetry.install_tick_clock ();
  Fun.protect ~finally:Telemetry.use_wall_clock @@ fun () ->
  (* two spans opening on the same rebased timestamp sort by name *)
  Telemetry.with_span "zeta" (fun () -> ());
  Telemetry.with_span "alpha" (fun () -> ());
  let j = parse_json "chrome_trace" (Telemetry.chrome_trace ()) in
  match Benchdiff.Json.member "traceEvents" j with
  | Some (Benchdiff.Json.Arr evs) ->
    let keys =
      List.map
        (fun ev ->
          match
            (Benchdiff.Json.member "ts" ev, Benchdiff.Json.member "name" ev)
          with
          | Some (Benchdiff.Json.Num ts), Some (Benchdiff.Json.Str n) -> (ts, n)
          | _ -> Alcotest.fail "event missing ts/name")
        evs
    in
    Alcotest.(check bool) "events sorted by (ts, name)" true
      (List.sort compare keys = keys)
  | _ -> Alcotest.fail "no traceEvents array"

(* Golden Chrome-trace export: a fixed nested workload under the tick
   clock must serialize to exactly these (ts, dur, name) complete
   events, in exactly this order.  The tick clock starts each domain's
   span stream at 0 and advances one microsecond per read, so an
   enclosing span's duration counts every clock read made inside it;
   any change to the export sort (ts, tid, name), to the timestamp
   rebasing, or to how spans nest shows up as a golden mismatch. *)
let test_chrome_trace_golden () =
  with_fresh_sink @@ fun () ->
  Telemetry.install_tick_clock ();
  Fun.protect ~finally:Telemetry.use_wall_clock @@ fun () ->
  Telemetry.with_span "outer" (fun () ->
      Telemetry.with_span "inner-a" (fun () -> ());
      Telemetry.with_span "inner-b" (fun () -> ()));
  Telemetry.with_span "tail" (fun () -> ());
  let j = parse_json "chrome_trace" (Telemetry.chrome_trace ()) in
  match Benchdiff.Json.member "traceEvents" j with
  | Some (Benchdiff.Json.Arr evs) ->
    let tuples =
      List.map
        (fun ev ->
          match
            ( Benchdiff.Json.member "ts" ev, Benchdiff.Json.member "dur" ev,
              Benchdiff.Json.member "name" ev, Benchdiff.Json.member "ph" ev )
          with
          | Some (Benchdiff.Json.Num ts), Some (Benchdiff.Json.Num dur),
            Some (Benchdiff.Json.Str n), Some (Benchdiff.Json.Str ph) ->
            Alcotest.(check string) "all events are complete events" "X" ph;
            (int_of_float ts, (int_of_float dur, n))
          | _ -> Alcotest.fail "event missing ts/dur/name/ph")
        evs
    in
    Alcotest.(check (list (pair int (pair int string))))
      "golden (ts, dur, name) sequence"
      [ (0, (5, "outer")); (1, (1, "inner-a")); (3, (1, "inner-b"));
        (6, (1, "tail")) ]
      tuples;
    (* the single-domain workload keeps every event on one tid *)
    (match evs with
     | first :: rest ->
       let tid ev =
         match Benchdiff.Json.member "tid" ev with
         | Some (Benchdiff.Json.Num t) -> t
         | _ -> Alcotest.fail "event missing tid"
       in
       List.iter
         (fun ev ->
           Alcotest.(check (float 0.0)) "same tid" (tid first) (tid ev))
         rest
     | [] -> Alcotest.fail "no events");
    (* nesting is stable: each inner span's [ts, ts+dur] interval sits
       inside outer's *)
    List.iter
      (fun (ts, (dur, name)) ->
        if name = "inner-a" || name = "inner-b" then
          Alcotest.(check bool)
            (Printf.sprintf "%s nests inside outer" name)
            true
            (ts >= 0 && ts + dur <= 5))
      tuples
  | _ -> Alcotest.fail "no traceEvents array"

(* ------------------------------------------------------------------ *)
(* Cross-jobs differential on the adcheck-metrics/1 record             *)
(* ------------------------------------------------------------------ *)

let restore_jobs = Util.Pool.default_jobs ()

(* The table1 pipeline under [jobs] workers with the tick clock: the
   work-tier metrics record must come out byte-identical, including
   every attributed-timing histogram's bucket contents. *)
let metrics_at ~jobs =
  Util.Pool.set_default_jobs jobs;
  Telemetry.reset ();
  Telemetry.set_enabled true;
  Telemetry.install_tick_clock ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.use_wall_clock ();
      Telemetry.reset ();
      Telemetry.set_enabled false;
      Util.Pool.set_default_jobs restore_jobs)
  @@ fun () ->
  let project =
    Corpus.Generator.generate ~seed:2019 Corpus.Apollo_profile.small
  in
  let parsed = Cfront.Project.parse project in
  let (_ : Misra.Registry.report) = Misra.Registry.run_project parsed in
  let (_ : Dataflow.Analyses.func_summary list) =
    Dataflow.Analyses.summarize_functions (Cfront.Project.all_functions parsed)
  in
  Telemetry.metrics_json ~runtime:false ()

let metrics_oracle = lazy (metrics_at ~jobs:1)

let check_metrics_identical ~jobs =
  let oracle = Lazy.force metrics_oracle in
  let par = metrics_at ~jobs in
  Alcotest.(check string)
    (Printf.sprintf "work-tier metrics JSON byte-identical at jobs=%d" jobs)
    oracle par;
  (* and the record is substantive: attributed timing histograms with
     non-empty buckets made it into the comparison *)
  let j = parse_json "metrics" par in
  match Benchdiff.Json.member "histograms" j with
  | Some (Benchdiff.Json.Obj kvs) ->
    Alcotest.(check bool) "per-rule timing histograms present" true
      (List.exists
         (fun (k, _) ->
           String.length k >= 14 && String.sub k 0 14 = "misra.rule_us.")
         kvs);
    Alcotest.(check bool) "value histograms present" true
      (List.mem_assoc "parse.file_ast_nodes" kvs)
  | _ -> Alcotest.fail "no histograms object"

let test_metrics_jobs2 () = check_metrics_identical ~jobs:2
let test_metrics_jobs8 () = check_metrics_identical ~jobs:8

let test_runtime_tier_partition () =
  Alcotest.(check bool) "pool. is runtime" true
    (Telemetry.is_runtime_metric "pool.submitted");
  Alcotest.(check bool) "gc. is runtime" true
    (Telemetry.is_runtime_metric "gc.parse");
  Alcotest.(check bool) "phase. is runtime" true
    (Telemetry.is_runtime_metric "phase.misra_us");
  Alcotest.(check bool) "misra.rule_us is work tier" false
    (Telemetry.is_runtime_metric "misra.rule_us.2.1")

(* ------------------------------------------------------------------ *)
(* Pool telemetry accounting                                           *)
(* ------------------------------------------------------------------ *)

let test_pool_stats_balanced () =
  Util.Pool.set_default_jobs 2;
  Telemetry.reset ();
  Telemetry.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.reset ();
      Telemetry.set_enabled false;
      Util.Pool.set_default_jobs restore_jobs)
  @@ fun () ->
  match Util.Pool.global () with
  | None -> Alcotest.fail "expected a pool at jobs=2"
  | Some pool ->
    let futs =
      List.init 50 (fun i -> Util.Pool.submit pool (fun () -> i * i))
    in
    let (_ : int list) = Util.Pool.await_all futs in
    let st =
      match Util.Pool.global_stats () with
      | Some st -> st
      | None -> Alcotest.fail "global_stats lost the live pool"
    in
    Alcotest.(check int) "submitted counts every task" 50 st.Util.Pool.st_submitted;
    Alcotest.(check int) "completed = submitted after await_all" 50
      st.Util.Pool.st_completed;
    Alcotest.(check int) "task_run has one sample per task" 50
      (H.count st.Util.Pool.st_task_run);
    Alcotest.(check int) "worker task counts sum to completed" 50
      (List.fold_left (fun acc (_, n, _) -> acc + n) 0 st.Util.Pool.st_workers)

let test_global_stats_no_pool () =
  (* at jobs=1 no pool exists and the exporter must not fabricate one *)
  Util.Pool.set_default_jobs 1;
  Fun.protect ~finally:(fun () -> Util.Pool.set_default_jobs restore_jobs)
  @@ fun () ->
  Alcotest.(check bool) "no stats without a pool" true
    (Util.Pool.global_stats () = None)

(* ------------------------------------------------------------------ *)
(* bench-diff gate policy                                              *)
(* ------------------------------------------------------------------ *)

let write_temp contents =
  let path = Filename.temp_file "adcheck-fr" ".json" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

let load_ok what path =
  match Benchdiff.load path with
  | Ok r -> r
  | Error e -> Alcotest.failf "%s failed to load: %s" what e

(* A real exporter record self-compares clean end to end (file -> load
   -> diff), which is exactly what `make check` gates on. *)
let test_benchdiff_self_compare () =
  let json =
    with_fresh_sink @@ fun () ->
    Telemetry.install_tick_clock ();
    Fun.protect ~finally:Telemetry.use_wall_clock @@ fun () ->
    Telemetry.incr "work.items" ~by:3;
    Telemetry.timed "work.step_us" (fun () -> ());
    Telemetry.observe "work.sizes" 17.0;
    Telemetry.metrics_json ()
  in
  let path = write_temp json in
  let r = load_ok "metrics record" path in
  Alcotest.(check bool) "self-compare is clean" true
    (Benchdiff.ok (Benchdiff.diff ~fail_on_regress_pct:10.0 r r));
  (* the loader classified the series: value-histogram buckets compare
     exactly, the timing histogram contributes a thresholded sum *)
  Alcotest.(check bool) "value buckets are exact series" true
    (List.exists (fun (k, _) -> k = "work.sizes/bucket[16]") r.Benchdiff.r_counters);
  Alcotest.(check bool) "timing sum is a latency series" true
    (List.exists (fun (k, _, _) -> k = "work.step_us/sum") r.Benchdiff.r_latencies);
  Alcotest.(check bool) "timing buckets are not exact series" true
    (not
       (List.exists
          (fun (k, _) ->
            String.length k > 13 && String.sub k 0 13 = "work.step_us/"
            && k <> "work.step_us/count")
          r.Benchdiff.r_counters))

let test_benchdiff_latency_regression () =
  let base =
    { Benchdiff.r_schema = "adcheck-metrics/1";
      r_counters = [ ("a", 1) ];
      r_latencies = [ ("t/sum", 10_000.0, 1000.0) ] }
  in
  let slow =
    { base with Benchdiff.r_latencies = [ ("t/sum", 25_000.0, 1000.0) ] }
  in
  (match Benchdiff.diff ~fail_on_regress_pct:10.0 base slow with
   | [ Benchdiff.Latency_regression ("t/sum", 10_000.0, 25_000.0, _) ] -> ()
   | fs -> Alcotest.failf "expected one regression, got: %s" (Benchdiff.render fs));
  (* the same delta below the absolute floor is noise, not a finding *)
  let tiny_base = { base with Benchdiff.r_latencies = [ ("t/sum", 10.0, 1000.0) ] } in
  let tiny_slow = { base with Benchdiff.r_latencies = [ ("t/sum", 25.0, 1000.0) ] } in
  Alcotest.(check bool) "below-floor drift passes" true
    (Benchdiff.ok (Benchdiff.diff ~fail_on_regress_pct:10.0 tiny_base tiny_slow));
  (* improvements pass silently *)
  Alcotest.(check bool) "improvement passes" true
    (Benchdiff.ok (Benchdiff.diff ~fail_on_regress_pct:10.0 slow base))

let test_benchdiff_counter_exact () =
  let base =
    { Benchdiff.r_schema = "adcheck-metrics/1";
      r_counters = [ ("a", 1); ("b", 2) ];
      r_latencies = [] }
  in
  let changed = { base with Benchdiff.r_counters = [ ("a", 1); ("b", 3) ] } in
  (match Benchdiff.diff ~fail_on_regress_pct:10.0 base changed with
   | [ Benchdiff.Counter_changed ("b", 2, 3) ] -> ()
   | fs -> Alcotest.failf "expected counter finding, got: %s" (Benchdiff.render fs));
  let missing = { base with Benchdiff.r_counters = [ ("a", 1) ] } in
  (match Benchdiff.diff ~fail_on_regress_pct:10.0 base missing with
   | [ Benchdiff.Series_missing ("new", "b") ] -> ()
   | fs -> Alcotest.failf "expected missing-series finding, got: %s"
             (Benchdiff.render fs));
  let other = { base with Benchdiff.r_schema = "adcheck-bench/1" } in
  match Benchdiff.diff ~fail_on_regress_pct:10.0 base other with
  | Benchdiff.Schema_mismatch _ :: _ -> ()
  | fs -> Alcotest.failf "expected schema mismatch, got: %s" (Benchdiff.render fs)

let test_benchdiff_bench_schema () =
  let bench =
    {|{"schema": "adcheck-bench/1",
       "counters": {"total": 12},
       "experiments": [
         {"name": "audit", "jobs": 2, "wall_ms": 120.5,
          "counters": {"misra.violations": 7}}]}|}
  in
  let r = load_ok "bench record" (write_temp bench) in
  Alcotest.(check string) "schema" "adcheck-bench/1" r.Benchdiff.r_schema;
  Alcotest.(check bool) "global counter kept" true
    (List.mem ("total", 12) r.Benchdiff.r_counters);
  Alcotest.(check bool) "experiment counter keyed by name@jobs" true
    (List.mem ("audit@2/misra.violations", 7) r.Benchdiff.r_counters);
  Alcotest.(check bool) "wall time is a latency" true
    (List.exists (fun (k, _, _) -> k = "audit@2/wall_ms") r.Benchdiff.r_latencies);
  Alcotest.(check bool) "self-compare clean" true
    (Benchdiff.ok (Benchdiff.diff ~fail_on_regress_pct:10.0 r r))

let test_benchdiff_load_errors () =
  (match Benchdiff.load "/nonexistent/adcheck.json" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "expected unreadable-file error");
  (match Benchdiff.load (write_temp "{not json") with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "expected parse error");
  match Benchdiff.load (write_temp {|{"schema": "adcheck-metrics/99"}|}) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown-schema error"

let () =
  Alcotest.run "flight-recorder"
    [
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "observe" `Quick test_hist_observe;
          Alcotest.test_case "bucket bounds tile" `Quick test_hist_bucket_bounds;
          Alcotest.test_case "quantile clamps to extrema" `Quick
            test_hist_quantile_clamped;
          Alcotest.test_case "quantile ranks zeros first" `Quick
            test_hist_quantile_zeros_first;
          Alcotest.test_case "merge identity" `Quick test_hist_merge_identity;
          Alcotest.test_case "copy is independent" `Quick
            test_hist_copy_independent;
        ] );
      ( "histogram-properties",
        [
          QCheck_alcotest.to_alcotest prop_merge_partition;
          QCheck_alcotest.to_alcotest prop_merge_order;
          QCheck_alcotest.to_alcotest prop_merge_empty_identity;
          QCheck_alcotest.to_alcotest prop_quantiles_monotone;
          QCheck_alcotest.to_alcotest prop_count_splits;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome trace escapes hostile names" `Quick
            test_chrome_trace_escaping;
          Alcotest.test_case "metrics escapes hostile names" `Quick
            test_metrics_escaping;
          Alcotest.test_case "chrome trace events sorted" `Quick
            test_chrome_trace_sorted;
          Alcotest.test_case "chrome trace golden (tick clock)" `Quick
            test_chrome_trace_golden;
          Alcotest.test_case "runtime tier partition" `Quick
            test_runtime_tier_partition;
        ] );
      ( "differential",
        [
          Alcotest.test_case "metrics identical at jobs=2" `Slow
            test_metrics_jobs2;
          Alcotest.test_case "metrics identical at jobs=8" `Slow
            test_metrics_jobs8;
        ] );
      ( "pool",
        [
          Alcotest.test_case "submitted = completed" `Quick
            test_pool_stats_balanced;
          Alcotest.test_case "no stats without a pool" `Quick
            test_global_stats_no_pool;
        ] );
      ( "bench-diff",
        [
          Alcotest.test_case "self-compare clean" `Quick
            test_benchdiff_self_compare;
          Alcotest.test_case "latency policy" `Quick
            test_benchdiff_latency_regression;
          Alcotest.test_case "counter policy" `Quick test_benchdiff_counter_exact;
          Alcotest.test_case "bench schema" `Quick test_benchdiff_bench_schema;
          Alcotest.test_case "load errors" `Quick test_benchdiff_load_errors;
        ] );
    ]
