(* Tests for the dataflow layer: CFG construction goldens per control
   construct, worklist fixpoint convergence, the concrete analyses, and
   the flow-sensitive upgrades of MISRA 2.1/2.2/9.1 — including the
   dead-store-across-a-branch violation the syntactic rule missed and
   the assigned-on-all-paths false positive it no longer reports. *)

module Cfg = Dataflow.Cfg
module Analyses = Dataflow.Analyses
module Framework = Dataflow.Framework

let parse_fn src =
  let tu = Cfront.Parser.parse_file ~file:"t.cc" src in
  match
    List.find_opt
      (fun (f : Cfront.Ast.func) -> f.Cfront.Ast.f_body <> None)
      (Cfront.Ast.functions_of_tu tu)
  with
  | Some fn -> fn
  | None -> Alcotest.failf "no defined function in: %s" src

let cfg_of src = Cfg.of_func (parse_fn src)

(* ------------------------------------------------------------------ *)
(* CFG construction goldens                                            *)
(* ------------------------------------------------------------------ *)

let check_shape name src ~blocks ~edges () =
  let cfg = cfg_of src in
  Alcotest.(check int) (name ^ ": blocks") blocks (Cfg.n_blocks cfg);
  Alcotest.(check int) (name ^ ": edges") edges (Cfg.n_edges cfg)

let shape name src ~blocks ~edges =
  Alcotest.test_case name `Quick (check_shape name src ~blocks ~edges)

(* Every function gets an entry block, an exit block, and a trailing
   dead block after each unconditional jump (so unreachable statements
   have somewhere to live); the goldens below count those too. *)
let cfg_cases =
  [
    shape "straight line" "int F(int a) { int x = 1; return x; }"
      ~blocks:3 ~edges:2;
    shape "if/else"
      "int F(int a) { int x; if (a > 0) { x = 1; } else { x = 2; } return x; }"
      ~blocks:7 ~edges:6;
    shape "while loop" "int F(int a) { while (a > 0) { a = a - 1; } return a; }"
      ~blocks:7 ~edges:6;
    shape "for loop"
      "int F(int a) { int s = 0; for (int i = 0; i < a; ++i) { s = s + i; } return s; }"
      ~blocks:8 ~edges:7;
    shape "do-while" "int F(int a) { do { a = a - 1; } while (a > 0); return a; }"
      ~blocks:7 ~edges:6;
    shape "switch with fallthrough"
      "int F(int a) { int x = 0; switch (a) { case 0: x = 1; case 1: x = 2; break; default: x = 3; } return x; }"
      ~blocks:9 ~edges:10;
    shape "goto forward"
      "int F(int a) { if (a > 0) { goto out; } a = 1; out: return a; }"
      ~blocks:8 ~edges:7;
    shape "short-circuit and"
      "int F(int a, int b) { if (a > 0 && b > 0) { return 1; } return 0; }"
      ~blocks:9 ~edges:8;
    shape "unreachable after return" "int F(int a) { return a; a = 1; }"
      ~blocks:3 ~edges:2;
  ]

let test_switch_fallthrough_edge () =
  (* the case-0 clause must fall through into the case-1 clause *)
  let cfg =
    cfg_of
      "int F(int a) { int x = 0; switch (a) { case 0: x = 1; case 1: x = 2; break; default: x = 3; } return x; }"
  in
  (* the scrutinee lives in the entry block; its Ecase/Edefault
     successors are the clause heads *)
  let clauses =
    List.filter_map
      (fun (dst, k) ->
        match k with Cfg.Ecase | Cfg.Edefault -> Some dst | _ -> None)
      cfg.Cfg.blocks.(cfg.Cfg.entry).Cfg.succs
  in
  Alcotest.(check int) "three clauses" 3 (List.length clauses);
  let falls_through =
    List.exists
      (fun bid ->
        List.exists
          (fun (dst, k) -> k = Cfg.Eseq && List.mem dst clauses)
          cfg.Cfg.blocks.(bid).Cfg.succs)
      clauses
  in
  Alcotest.(check bool) "clause falls through to next clause" true falls_through

let test_short_circuit_atomic_conds () =
  let cfg =
    cfg_of "int F(int a, int b) { if (a > 0 && b > 0) { return 1; } return 0; }"
  in
  let conds =
    Array.fold_left
      (fun n (b : Cfg.block) ->
        n
        + List.length
            (List.filter
               (fun (i : Cfg.instr) ->
                 match i.Cfg.i with Cfg.Icond _ -> true | _ -> false)
               b.Cfg.instrs))
      0 cfg.Cfg.blocks
  in
  Alcotest.(check int) "&& decomposed into two atomic conditions" 2 conds

let test_goto_label_reachable () =
  (* code reached only through a goto is NOT unreachable *)
  let cfg =
    cfg_of "int F(int a, int b) { if (a > 0) { goto l; } return a; l: return b; }"
  in
  Alcotest.(check int) "no unreachable region" 0
    (List.length (Analyses.unreachable_regions cfg))

(* ------------------------------------------------------------------ *)
(* Worklist fixpoint                                                   *)
(* ------------------------------------------------------------------ *)

module Defined = struct
  type t = Analyses.SS.t

  let bottom = Analyses.SS.empty
  let equal = Analyses.SS.equal
  let join = Analyses.SS.union
end

module DefinedSolver = Framework.Make (Defined)

let test_fixpoint_converges_on_loop () =
  let cfg =
    cfg_of
      "int F(int a) { int s = 0; while (a > 0) { s = s + a; a = a - 1; } return s; }"
  in
  let transfer bid fact =
    List.fold_left
      (fun fact instr ->
        List.fold_left
          (fun fact (name, _) -> Analyses.SS.add name fact)
          fact (Cfg.defs_of_instr instr))
      fact cfg.Cfg.blocks.(bid).Cfg.instrs
  in
  let result, steps =
    DefinedSolver.solve_counted ~cfg ~direction:Framework.Forward
      ~boundary:Defined.bottom ~transfer
  in
  (* the back edge forces at least one block to be re-processed ... *)
  Alcotest.(check bool) "more transfers than blocks" true
    (steps > Cfg.n_blocks cfg);
  (* ... and the fixpoint is still finite and stable *)
  let result2, _ =
    DefinedSolver.solve_counted ~cfg ~direction:Framework.Forward
      ~boundary:Defined.bottom ~transfer
  in
  Alcotest.(check bool) "deterministic fixpoint" true
    (Array.for_all2 Analyses.SS.equal result.DefinedSolver.before
       result2.DefinedSolver.before);
  Alcotest.(check bool) "s defined at exit" true
    (Analyses.SS.mem "s" result.DefinedSolver.after.(cfg.Cfg.exit_))

let test_backward_direction_execution_order () =
  (* liveness facts are reported in execution order: the loop-carried
     variable is live on entry to the condition block *)
  let cfg = cfg_of "int F(int a) { while (a > 0) { a = a - 1; } return a; }" in
  let live = Analyses.liveness cfg in
  let cond_bid =
    let found = ref (-1) in
    Array.iter
      (fun (b : Cfg.block) ->
        if
          List.exists
            (fun (i : Cfg.instr) ->
              match i.Cfg.i with Cfg.Icond _ -> true | _ -> false)
            b.Cfg.instrs
        then found := b.Cfg.bid)
      cfg.Cfg.blocks;
    !found
  in
  Alcotest.(check bool) "found the condition block" true (cond_bid >= 0);
  Alcotest.(check bool) "a live at loop head" true
    (Analyses.SS.mem "a" live.Analyses.VarSolver.before.(cond_bid))

(* ------------------------------------------------------------------ *)
(* Flow-sensitive rule behavior on snippets                            *)
(* ------------------------------------------------------------------ *)

let ctx_of src =
  let pf =
    { Cfront.Project.file =
        { Cfront.Project.path = "r.cc"; modname = "r"; header = false;
          content = src };
      tu = Cfront.Parser.parse_file ~file:"r.cc" src }
  in
  Misra.Rule.context_of_files [ pf ]

let rule_hits rule_id src =
  match Misra.Registry.find_rule rule_id with
  | None -> Alcotest.failf "rule %s not registered" rule_id
  | Some rule -> List.length (rule.Misra.Rule.check (ctx_of src))

let test_91_false_positive_fixed () =
  (* assigned on BOTH branches before use: the syntactic rule flagged
     this; the definite-assignment upgrade must not *)
  let src =
    "int F(int a) { int x; if (a > 0) { x = 1; } else { x = 2; } return x; }"
  in
  Alcotest.(check int) "9.1 clean" 0 (rule_hits "9.1" src);
  Alcotest.(check int) "metrics wrapper agrees" 0
    (List.length (Metrics.Uninit.of_functions [ parse_fn src ]))

let test_91_one_branch_still_flagged () =
  let src = "int F(int a) { int x; if (a > 0) { x = 1; } return x; }" in
  Alcotest.(check int) "9.1 fires" 1 (rule_hits "9.1" src)

let test_22_dead_store_across_branch () =
  (* x = 1 inside the branch is overwritten on every path before any
     read: invisible to the old effect-free-statement scan, caught by
     liveness *)
  let src =
    "int F(int a) { int x = a; if (a > 0) { x = 1; } x = 2; return x; }"
  in
  Alcotest.(check int) "2.2 catches the branch dead store" 1
    (rule_hits "2.2" src)

let test_22_live_store_clean () =
  let src = "int F(int a) { int x = a; if (a > 0) { x = 1; } return x; }" in
  Alcotest.(check int) "2.2 clean when the store is read" 0
    (rule_hits "2.2" src)

let test_21_unreachable_region_single_violation () =
  (* one region, however many dead statements it holds *)
  let src = "int F(int a) { return a; a = 1; a = 2; a = 3; }" in
  Alcotest.(check int) "one violation per region" 1 (rule_hits "2.1" src)

let test_df1_decl_initializer () =
  let src = "int F(int a) { int x = a; x = 1; return x; }" in
  (* the declaration initializer is dead (DF-1 counts it, 2.2 does not) *)
  Alcotest.(check int) "DF-1 counts the dead initializer" 1
    (rule_hits "DF-1" src);
  Alcotest.(check int) "2.2 skips declaration initializers" 0
    (rule_hits "2.2" src)

let test_df2_propagated_constant () =
  (* every reaching definition of x assigns 1, so the condition folds;
     a literal condition would be 14.3's finding, not DF-2's *)
  let src =
    "int F(int a) { int x = 1; if (a > 0) { x = 1; } if (x > 0) { return 1; } return 0; }"
  in
  Alcotest.(check int) "DF-2 fires on propagated constant" 1
    (rule_hits "DF-2" src);
  Alcotest.(check int) "DF-2 ignores literal conditions" 0
    (rule_hits "DF-2" "int F(int a) { if (1) { return 1; } return 0; }")

let test_addr_of_escapes () =
  (* &x counts as assignment for 9.1 (out-parameter idiom) and exempts x
     from dead-store reporting *)
  Alcotest.(check int) "9.1: &x treated as assignment" 0
    (rule_hits "9.1" "int G(int* p); int F(int a) { int x; G(&x); return x; }");
  Alcotest.(check int) "2.2: stores to address-taken vars kept" 0
    (rule_hits "2.2"
       "int G(int* p); int F(int a) { int x = 0; G(&x); x = 1; return a; }")

(* ------------------------------------------------------------------ *)
(* Golden counts on the deterministic corpus                           *)
(* ------------------------------------------------------------------ *)

let parsed_small =
  lazy
    (Cfront.Project.parse
       (Corpus.Generator.generate ~seed:2019 Corpus.Apollo_profile.small))

let misra_report =
  lazy (Misra.Registry.run (Misra.Rule.build_context (Lazy.force parsed_small)))

let rule_count id =
  let report = Lazy.force misra_report in
  match
    List.find_opt
      (fun ((r : Misra.Rule.t), _) -> r.Misra.Rule.id = id)
      report.Misra.Registry.per_rule
  with
  | Some (_, vs) -> List.length vs
  | None -> Alcotest.failf "rule %s missing" id

let summaries =
  lazy
    (Analyses.summarize_functions
       (Cfront.Project.all_functions (Lazy.force parsed_small)))

let totals () = Analyses.totals_of (Lazy.force summaries)

(* The exact figures for seed 2019 at small scale.  The flow-sensitive
   2.1 sees the seeded statements-after-return (the syntactic rule saw
   the same sites, but these goldens pin the CFG path); 2.2 grew from
   effect-free statements only to effect-free + dead stores. *)
let test_golden_21 () =
  Alcotest.(check int) "2.1 unreachable regions" 9 (rule_count "2.1")

let test_golden_22 () =
  Alcotest.(check int) "2.2 dead code" 1031 (rule_count "2.2")

let test_golden_91 () =
  Alcotest.(check int) "9.1 uninitialized reads" 9 (rule_count "9.1")

let test_golden_df () =
  Alcotest.(check int) "DF-1 dead stores" 1103 (rule_count "DF-1");
  Alcotest.(check int) "DF-2 propagated constants" 160 (rule_count "DF-2")

let test_crossval_21_vs_summaries () =
  Alcotest.(check int) "rule 2.1 agrees with the per-function summaries"
    (totals ()).Analyses.t_unreachable (rule_count "2.1")

let test_crossval_df1_vs_summaries () =
  Alcotest.(check int) "rule DF-1 agrees with the per-function summaries"
    (totals ()).Analyses.t_dead_stores (rule_count "DF-1")

let test_crossval_91_vs_summaries () =
  Alcotest.(check int) "rule 9.1 agrees with the per-function summaries"
    (totals ()).Analyses.t_uninit_reads (rule_count "9.1")

(* ------------------------------------------------------------------ *)
(* Golden CFGs for real corpus functions                               *)
(* ------------------------------------------------------------------ *)

(* The synthetic shapes above pin one construct each; these two pin
   whole functions from the hand-written YOLO sources, where the
   constructs compose.  Counts include the entry/exit blocks and the
   dead blocks after unconditional jumps (see the note on [cfg_cases]). *)
let yolo_fn name =
  let tus = Corpus.Yolo_src.parse_all () in
  match
    List.concat_map
      (fun tu ->
        List.filter
          (fun (f : Cfront.Ast.func) ->
            f.Cfront.Ast.f_body <> None && f.Cfront.Ast.f_name = name)
          (Cfront.Ast.functions_of_tu tu))
      tus
  with
  | [ fn ] -> fn
  | l -> Alcotest.failf "expected exactly one %s, found %d" name (List.length l)

(* box_intersection (box.c): two early-exit paths — the short-circuit
   [w < 0.0 || h < 0.0] guard returning 0.0, then the main return. *)
let test_golden_cfg_box_intersection () =
  let cfg = Cfg.of_func (yolo_fn "box_intersection") in
  Alcotest.(check int) "blocks" 9 (Cfg.n_blocks cfg);
  Alcotest.(check int) "edges" 8 (Cfg.n_edges cfg);
  (* the || guard decomposes into two atomic conditions *)
  let conds =
    Array.fold_left
      (fun n (b : Cfg.block) ->
        n
        + List.length
            (List.filter
               (fun (i : Cfg.instr) ->
                 match i.Cfg.i with Cfg.Icond _ -> true | _ -> false)
               b.Cfg.instrs))
      0 cfg.Cfg.blocks
  in
  Alcotest.(check int) "atomic conditions" 2 conds;
  (* both returns reach the exit block, plus the empty trailing block
     after the final return (same convention as "unreachable after
     return" above) *)
  Alcotest.(check int) "exit predecessors" 3
    (List.length cfg.Cfg.blocks.(cfg.Cfg.exit_).Cfg.preds);
  Alcotest.(check int) "no unreachable region" 0
    (List.length (Analyses.unreachable_regions cfg))

(* parse_option_value (parser_cfg.c): a 12-case switch plus default,
   every clause a return — 13 paths into the exit block. *)
let test_golden_cfg_parse_option_value () =
  let cfg = Cfg.of_func (yolo_fn "parse_option_value") in
  Alcotest.(check int) "blocks" 30 (Cfg.n_blocks cfg);
  Alcotest.(check int) "edges" 41 (Cfg.n_edges cfg);
  let clause_edges =
    List.filter
      (fun (_, k) -> match k with Cfg.Ecase | Cfg.Edefault -> true | _ -> false)
      cfg.Cfg.blocks.(cfg.Cfg.entry).Cfg.succs
  in
  Alcotest.(check int) "12 cases + default dispatch from the scrutinee" 13
    (List.length clause_edges);
  (* 13 returning clauses plus the empty block after the switch *)
  Alcotest.(check int) "every clause returns into the exit" 14
    (List.length cfg.Cfg.blocks.(cfg.Cfg.exit_).Cfg.preds);
  Alcotest.(check int) "no unreachable region" 0
    (List.length (Analyses.unreachable_regions cfg))

let test_dead_quota_bounded () =
  let quota =
    Util.Stats.sum_int
      (List.map
         (fun (s : Corpus.Apollo_profile.module_spec) ->
           s.Corpus.Apollo_profile.dead_code)
         Corpus.Apollo_profile.small)
  in
  let n = (totals ()).Analyses.t_unreachable in
  Alcotest.(check bool) "within quota" true (n <= quota);
  Alcotest.(check bool) "some emitted" true (n > 0)

let () =
  Alcotest.run "dataflow"
    [
      ("cfg-shape", cfg_cases);
      ( "cfg-structure",
        [
          Alcotest.test_case "switch fallthrough edge" `Quick
            test_switch_fallthrough_edge;
          Alcotest.test_case "short-circuit atomic conditions" `Quick
            test_short_circuit_atomic_conds;
          Alcotest.test_case "goto label reachable" `Quick
            test_goto_label_reachable;
        ] );
      ( "fixpoint",
        [
          Alcotest.test_case "converges on loop" `Quick
            test_fixpoint_converges_on_loop;
          Alcotest.test_case "backward facts in execution order" `Quick
            test_backward_direction_execution_order;
        ] );
      ( "rules",
        [
          Alcotest.test_case "9.1 both-branch FP fixed" `Quick
            test_91_false_positive_fixed;
          Alcotest.test_case "9.1 one-branch still flagged" `Quick
            test_91_one_branch_still_flagged;
          Alcotest.test_case "2.2 dead store across branch" `Quick
            test_22_dead_store_across_branch;
          Alcotest.test_case "2.2 live store clean" `Quick
            test_22_live_store_clean;
          Alcotest.test_case "2.1 one violation per region" `Quick
            test_21_unreachable_region_single_violation;
          Alcotest.test_case "DF-1 dead initializer" `Quick
            test_df1_decl_initializer;
          Alcotest.test_case "DF-2 propagated constant" `Quick
            test_df2_propagated_constant;
          Alcotest.test_case "address-taken escapes" `Quick
            test_addr_of_escapes;
        ] );
      ( "corpus-golden",
        [
          Alcotest.test_case "2.1 golden" `Quick test_golden_21;
          Alcotest.test_case "2.2 golden" `Quick test_golden_22;
          Alcotest.test_case "9.1 golden" `Quick test_golden_91;
          Alcotest.test_case "DF-1/DF-2 golden" `Quick test_golden_df;
          Alcotest.test_case "2.1 vs summaries" `Quick
            test_crossval_21_vs_summaries;
          Alcotest.test_case "DF-1 vs summaries" `Quick
            test_crossval_df1_vs_summaries;
          Alcotest.test_case "9.1 vs summaries" `Quick
            test_crossval_91_vs_summaries;
          Alcotest.test_case "dead-code quota bounded" `Quick
            test_dead_quota_bounded;
          Alcotest.test_case "CFG golden: box_intersection" `Quick
            test_golden_cfg_box_intersection;
          Alcotest.test_case "CFG golden: parse_option_value" `Quick
            test_golden_cfg_parse_option_value;
        ] );
    ]
