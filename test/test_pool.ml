(* Tests for the domain pool: order preservation under map_chunked,
   exception propagation out of workers, the nested-submit deadlock
   guard, jobs=1 equivalence with the sequential code path, and a
   stress run of many tiny tasks across several domains. *)

let with_pool ~jobs f =
  let pool = Util.Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Util.Pool.shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* Order preservation                                                   *)
(* ------------------------------------------------------------------ *)

let test_map_preserves_order () =
  let xs = List.init 257 (fun i -> i) in
  let f x = (x * 7919) mod 65536 in
  let expected = List.map f xs in
  List.iter
    (fun jobs ->
      with_pool ~jobs (fun pool ->
          List.iter
            (fun chunk_size ->
              Alcotest.(check (list int))
                (Printf.sprintf "jobs=%d chunk=%d" jobs chunk_size)
                expected
                (Util.Pool.map_chunked ~chunk_size pool f xs))
            [ 1; 2; 17; 1000 ];
          (* default chunking too *)
          Alcotest.(check (list int))
            (Printf.sprintf "jobs=%d default chunking" jobs)
            expected
            (Util.Pool.map_chunked pool f xs)))
    [ 1; 2; 4 ]

let test_map_empty_and_singleton () =
  with_pool ~jobs:3 (fun pool ->
      Alcotest.(check (list int)) "empty" []
        (Util.Pool.map_chunked pool (fun x -> x) []);
      Alcotest.(check (list int)) "singleton" [ 42 ]
        (Util.Pool.map_chunked pool (fun x -> x + 1) [ 41 ]))

(* Out-of-order completion: earlier chunks finish *after* later ones
   (front-loaded busy work) and results still come back in input order. *)
let test_map_order_with_skewed_work () =
  let busy n =
    let acc = ref 0 in
    for i = 1 to n * 20_000 do
      acc := (!acc + i) mod 9973
    done;
    !acc
  in
  let xs = [ 8; 6; 4; 2; 0 ] in
  with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (list int))
        "slowest-first input keeps input order"
        (List.map busy xs)
        (Util.Pool.map_chunked ~chunk_size:1 pool busy xs))

(* ------------------------------------------------------------------ *)
(* Exceptions                                                           *)
(* ------------------------------------------------------------------ *)

exception Boom of int

let test_exception_propagates () =
  with_pool ~jobs:2 (fun pool ->
      let fut = Util.Pool.submit pool (fun () -> raise (Boom 7)) in
      Alcotest.check_raises "submit/await re-raises" (Boom 7) (fun () ->
          ignore (Util.Pool.await fut));
      (* the pool survives a failed task *)
      let fut2 = Util.Pool.submit pool (fun () -> 5) in
      Alcotest.(check int) "pool alive after failure" 5 (Util.Pool.await fut2))

let test_map_chunked_raises_first_failure () =
  with_pool ~jobs:2 (fun pool ->
      Alcotest.check_raises "map_chunked re-raises" (Boom 3) (fun () ->
          ignore
            (Util.Pool.map_chunked ~chunk_size:1 pool
               (fun x -> if x = 3 then raise (Boom 3) else x)
               [ 0; 1; 2; 3; 4 ])))

(* ------------------------------------------------------------------ *)
(* Nested submit (deadlock guard)                                       *)
(* ------------------------------------------------------------------ *)

(* Every task itself submits to the same pool and awaits the result.
   Without the run-inline guard a pool with [jobs] workers would
   deadlock as soon as [jobs] outer tasks block on inner futures that
   can never be scheduled.  More outer tasks than workers makes the
   hang deterministic rather than timing-dependent. *)
let test_nested_submit_does_not_deadlock () =
  with_pool ~jobs:2 (fun pool ->
      let outer =
        Util.Pool.map_chunked ~chunk_size:1 pool
          (fun x ->
            Alcotest.(check bool) "task runs on a worker" true
              (Util.Pool.inside_worker ());
            let inner = Util.Pool.submit pool (fun () -> x * 2) in
            Util.Pool.await inner + 1)
          (List.init 8 (fun i -> i))
      in
      Alcotest.(check (list int)) "nested results"
        (List.init 8 (fun i -> (i * 2) + 1))
        outer);
  Alcotest.(check bool) "caller is not a worker" false
    (Util.Pool.inside_worker ())

(* Submitting from the main domain while every worker is busy: the
   fan-out pattern of the pipelined audit (phases submitted up front,
   joined later) must not deadlock on a saturated pool, and await_all
   must hand results back in submission order even though completion
   order is whatever the queue drain makes it.  The gate makes the
   saturation deterministic: the test proceeds only once every worker
   is parked inside a blocker task. *)
let test_submit_while_saturated () =
  with_pool ~jobs:2 (fun pool ->
      let m = Mutex.create () in
      let c = Condition.create () in
      let released = ref false in
      let entered = Atomic.make 0 in
      let gate i =
        Atomic.incr entered;
        Mutex.lock m;
        while not !released do
          Condition.wait c m
        done;
        Mutex.unlock m;
        i * 10
      in
      let blockers = List.init 2 (fun i -> Util.Pool.submit pool (fun () -> gate i)) in
      (* wait until both workers are provably parked on the gate *)
      while Atomic.get entered < 2 do
        Domain.cpu_relax ()
      done;
      (* the pool is saturated; these submissions must queue, not hang
         the submitter or run inline on the main domain *)
      let futs =
        List.init 50 (fun i ->
            Util.Pool.submit pool (fun () ->
                Alcotest.(check bool) "queued task runs on a worker" true
                  (Util.Pool.inside_worker ());
                i * 3))
      in
      Mutex.lock m;
      released := true;
      Condition.broadcast c;
      Mutex.unlock m;
      Alcotest.(check (list int)) "blocker results in submission order"
        [ 0; 10 ]
        (Util.Pool.await_all blockers);
      Alcotest.(check (list int)) "queued results in submission order"
        (List.init 50 (fun i -> i * 3))
        (Util.Pool.await_all futs))

(* ------------------------------------------------------------------ *)
(* jobs=1: the sequential oracle                                        *)
(* ------------------------------------------------------------------ *)

let test_jobs1_matches_list_map () =
  let xs = List.init 100 (fun i -> i - 50) in
  let f x = (x * x) - x in
  with_pool ~jobs:1 (fun pool ->
      Alcotest.(check (list int)) "map_chunked at jobs=1 = List.map"
        (List.map f xs)
        (Util.Pool.map_chunked pool f xs))

(* With the process default at 1 there is no global pool at all, and
   Telemetry.parallel_map must literally be List.map — counters land in
   the global sink directly, not through a worker-side buffer. *)
let test_default_jobs1_means_no_global_pool () =
  let saved = Util.Pool.default_jobs () in
  Fun.protect ~finally:(fun () -> Util.Pool.set_default_jobs saved)
  @@ fun () ->
  Util.Pool.set_default_jobs 1;
  Alcotest.(check bool) "no global pool at jobs=1" true
    (Util.Pool.global () = None);
  Telemetry.reset ();
  Telemetry.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.reset ();
      Telemetry.set_enabled false)
  @@ fun () ->
  let ys =
    Telemetry.parallel_map
      (fun x ->
        Telemetry.incr "pooltest.calls";
        x + 1)
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "parallel_map = List.map" [ 2; 3; 4 ] ys;
  Alcotest.(check int) "counters recorded directly" 3
    (Telemetry.counter "pooltest.calls")

let test_default_jobs_clamped () =
  let saved = Util.Pool.default_jobs () in
  Fun.protect ~finally:(fun () -> Util.Pool.set_default_jobs saved)
  @@ fun () ->
  Util.Pool.set_default_jobs 0;
  Alcotest.(check int) "0 clamps to 1" 1 (Util.Pool.default_jobs ());
  Util.Pool.set_default_jobs 4;
  Alcotest.(check int) "4 stays 4" 4 (Util.Pool.default_jobs ());
  match Util.Pool.global () with
  | Some pool -> Alcotest.(check int) "global pool sized 4" 4 (Util.Pool.jobs pool)
  | None -> Alcotest.fail "expected a global pool at jobs=4"

(* ------------------------------------------------------------------ *)
(* Stress                                                               *)
(* ------------------------------------------------------------------ *)

let test_stress_many_tiny_tasks () =
  let n = 10_000 in
  let xs = List.init n (fun i -> i) in
  with_pool ~jobs:8 (fun pool ->
      let ys = Util.Pool.map_chunked ~chunk_size:7 pool (fun x -> x + 1) xs in
      Alcotest.(check int) "all results present" n (List.length ys);
      Alcotest.(check (list int)) "all in order" (List.map succ xs) ys;
      (* interleave raw submits with the map traffic *)
      let futs = List.init 100 (fun i -> Util.Pool.submit pool (fun () -> i)) in
      Alcotest.(check (list int)) "submit storm"
        (List.init 100 Fun.id)
        (List.map Util.Pool.await futs))

(* Telemetry counter merging under contention: every task bumps the same
   counter; the merged total must be exact regardless of interleaving. *)
let test_stress_counter_merge () =
  let saved = Util.Pool.default_jobs () in
  Fun.protect ~finally:(fun () -> Util.Pool.set_default_jobs saved)
  @@ fun () ->
  Util.Pool.set_default_jobs 8;
  Telemetry.reset ();
  Telemetry.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.reset ();
      Telemetry.set_enabled false)
  @@ fun () ->
  let n = 5_000 in
  let ys =
    Telemetry.parallel_map
      (fun x ->
        Telemetry.incr "pooltest.stress";
        Telemetry.add "pooltest.sum" x;
        x)
      (List.init n (fun i -> i))
  in
  Alcotest.(check int) "results complete" n (List.length ys);
  Alcotest.(check int) "every increment merged" n
    (Telemetry.counter "pooltest.stress");
  Alcotest.(check int) "sums merge exactly" (n * (n - 1) / 2)
    (Telemetry.counter "pooltest.sum")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "pool"
    [
      ( "order",
        [
          Alcotest.test_case "map_chunked preserves order" `Quick
            test_map_preserves_order;
          Alcotest.test_case "empty and singleton inputs" `Quick
            test_map_empty_and_singleton;
          Alcotest.test_case "order kept under skewed work" `Quick
            test_map_order_with_skewed_work;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "worker exception re-raised" `Quick
            test_exception_propagates;
          Alcotest.test_case "map_chunked re-raises" `Quick
            test_map_chunked_raises_first_failure;
        ] );
      ( "nesting",
        [
          Alcotest.test_case "nested submit runs inline" `Quick
            test_nested_submit_does_not_deadlock;
          Alcotest.test_case "submit while saturated does not deadlock" `Quick
            test_submit_while_saturated;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "jobs=1 equals List.map" `Quick
            test_jobs1_matches_list_map;
          Alcotest.test_case "default jobs=1 bypasses the pool" `Quick
            test_default_jobs1_means_no_global_pool;
          Alcotest.test_case "default jobs clamping and sizing" `Quick
            test_default_jobs_clamped;
        ] );
      ( "stress",
        [
          Alcotest.test_case "10k tiny tasks across 8 domains" `Slow
            test_stress_many_tiny_tasks;
          Alcotest.test_case "counter merge is exact" `Slow
            test_stress_counter_merge;
        ] );
    ]
