(* Differential oracle harness for the content-addressed artifact cache.

   The cold jobs=1 no-cache run is the oracle: a warm run, an
   incremental run after an edit, and a run over a corrupted cache must
   all reproduce its report bytes, its adcheck-evidence/1 journal, and
   its provenance finding ids exactly — the cache may only change how
   fast an answer arrives, never the answer.

   Four layers of evidence:

   - unit tests on the dependency manifest (diff, transitive
     reverse-dependents, persistence) and on the store itself
     (roundtrip, truncation/garbage/salt-mismatch detection,
     owner-scoped removal, version-salt wipe);
   - QCheck: random edit sequences (touch / revert / rename) over a
     small project, each step running warm against one store, must end
     behaviorally equal to a cold run from the final tree — same
     output, every cold artifact already present, zero misses on a
     re-run — and reverting an edit must restore cache hits;
   - the full audit pipeline on a trimmed corpus under the tick clock:
     cold-with-cache, warm at jobs 1/2/8, and incremental-after-edit
     runs compared byte-for-byte against the no-cache oracle, with the
     invalidation set checked against an independent transitive
     closure computed here;
   - the real binary: `misra --cache` cold/warm/corrupted stdout versus
     the cacheless run, and an `adcheck serve` session smoke test. *)

module P = Provenance

let restore_jobs = Util.Pool.default_jobs ()

(* ------------------------------------------------------------------ *)
(* Filesystem helpers                                                  *)
(* ------------------------------------------------------------------ *)

let fresh_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let artifact_files dir =
  List.sort compare
    (List.filter
       (fun f -> Filename.check_suffix f ".art")
       (Array.to_list (Sys.readdir dir)))

(* ------------------------------------------------------------------ *)
(* Manifest: diff, dependents, invalidation closure                    *)
(* ------------------------------------------------------------------ *)

let mk_manifest = Cache.Manifest.make

let base_view =
  [ ("a.h", "h1"); ("a.cc", "h2"); ("b.cc", "h3"); ("c.cc", "h4");
    ("d.cc", "h5") ]

let manifest =
  mk_manifest
    [ ("a.h", "h1", []);
      ("a.cc", "h2", [ "a.h" ]);
      ("b.cc", "h3", [ "a.h"; "a.cc" ]);
      ("c.cc", "h4", [ "b.cc" ]);
      ("d.cc", "h5", []) ]

let test_manifest_changed () =
  Alcotest.(check (list string))
    "identical view: nothing changed" []
    (Cache.Manifest.changed ~old:manifest base_view);
  let touch p h = List.map (fun (q, g) -> if q = p then (q, h) else (q, g)) in
  Alcotest.(check (list string))
    "content edit detected" [ "b.cc" ]
    (Cache.Manifest.changed ~old:manifest (touch "b.cc" "hX" base_view));
  Alcotest.(check (list string))
    "added file detected" [ "e.cc" ]
    (Cache.Manifest.changed ~old:manifest (base_view @ [ ("e.cc", "h6") ]));
  Alcotest.(check (list string))
    "removed file detected" [ "d.cc" ]
    (Cache.Manifest.changed ~old:manifest
       (List.remove_assoc "d.cc" base_view
        |> List.map (fun (p, h) -> (p, h))));
  Alcotest.(check (list string))
    "rename is remove + add" [ "d.cc"; "d2.cc" ]
    (Cache.Manifest.changed ~old:manifest
       (touch "d.cc" "h5" base_view
        |> List.map (fun (p, h) -> if p = "d.cc" then ("d2.cc", h) else (p, h))))

let test_manifest_dependents () =
  Alcotest.(check (list string))
    "transitive reverse-dependents of the header"
    [ "a.cc"; "b.cc"; "c.cc" ]
    (Cache.Manifest.dependents manifest [ "a.h" ]);
  Alcotest.(check (list string))
    "mid-chain edit pulls only downstream" [ "c.cc" ]
    (Cache.Manifest.dependents manifest [ "b.cc" ]);
  Alcotest.(check (list string))
    "leaf has no dependents" []
    (Cache.Manifest.dependents manifest [ "c.cc" ]);
  Alcotest.(check (list string))
    "isolated file has no dependents" []
    (Cache.Manifest.dependents manifest [ "d.cc" ])

let test_manifest_invalidated () =
  let touch p h = List.map (fun (q, g) -> if q = p then (q, h) else (q, g)) in
  Alcotest.(check (list string))
    "invalidation = changed + transitive dependents"
    [ "a.cc"; "a.h"; "b.cc"; "c.cc" ]
    (Cache.Manifest.invalidated ~old:manifest (touch "a.h" "hX" base_view));
  Alcotest.(check (list string))
    "isolated edit invalidates only itself" [ "d.cc" ]
    (Cache.Manifest.invalidated ~old:manifest (touch "d.cc" "hX" base_view));
  Alcotest.(check (list string))
    "clean tree invalidates nothing" []
    (Cache.Manifest.invalidated ~old:manifest base_view)

let test_manifest_persistence () =
  let dir = fresh_dir "adcheck-manifest" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let c = Cache.open_dir dir in
  Alcotest.(check bool) "missing manifest loads as None" true
    (Cache.Manifest.load c ~name:"proj" = None);
  Cache.Manifest.save c ~name:"proj" manifest;
  (match Cache.Manifest.load c ~name:"proj" with
   | None -> Alcotest.fail "saved manifest did not load"
   | Some m -> Alcotest.(check bool) "manifest round-trips" true (m = manifest));
  (* a second project name is an independent slot *)
  Alcotest.(check bool) "names are independent" true
    (Cache.Manifest.load c ~name:"other" = None)

(* ------------------------------------------------------------------ *)
(* Store: roundtrip and corruption robustness                          *)
(* ------------------------------------------------------------------ *)

let test_store_roundtrip () =
  let dir = fresh_dir "adcheck-store" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let c = Cache.open_dir dir in
  let key = Cache.key ~kind:"parse" [ "a.cc"; "deadbeef" ] in
  Alcotest.(check bool) "empty store misses" true
    (Cache.find c ~kind:"parse" ~key = (None : (int * string) option));
  Cache.store c ~owner:"a.cc" ~kind:"parse" ~key (42, "payload");
  Alcotest.(check bool) "stored artifact hits" true
    (Cache.find c ~kind:"parse" ~key = Some (42, "payload"));
  let s = Cache.stats c in
  Alcotest.(check int) "one miss" 1 s.Cache.misses;
  Alcotest.(check int) "one hit" 1 s.Cache.hits;
  Alcotest.(check int) "one store" 1 s.Cache.stores;
  (* same inputs, same key — across processes this is what makes warm
     runs find cold runs' artifacts *)
  Alcotest.(check string) "key derivation is stable" key
    (Cache.key ~kind:"parse" [ "a.cc"; "deadbeef" ]);
  Alcotest.(check bool) "kind is part of the key" true
    (Cache.key ~kind:"dataflow" [ "a.cc"; "deadbeef" ] <> key);
  (* memo: hit path returns the stored value without calling f *)
  let called = ref false in
  let v =
    Cache.memo c ~kind:"parse" ~key (fun () ->
        called := true;
        (0, "recomputed"))
  in
  Alcotest.(check bool) "memo served warm" true (v = (42, "payload"));
  Alcotest.(check bool) "memo did not recompute" false !called

let corrupt_one dir ~mutate =
  match artifact_files dir with
  | [] -> Alcotest.fail "no artifact to corrupt"
  | f :: _ ->
    let path = Filename.concat dir f in
    write_file path (mutate (read_file path))

let check_corrupt_recovers name ~mutate =
  let dir = fresh_dir "adcheck-corrupt" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let c = Cache.open_dir dir in
  let key = Cache.key ~kind:"misra" [ "15.1"; "abc" ] in
  Cache.store c ~kind:"misra" ~key [ (1, "x"); (2, "y") ];
  corrupt_one dir ~mutate;
  Alcotest.(check bool)
    (name ^ ": detected and reported as a miss") true
    (Cache.find c ~kind:"misra" ~key = (None : (int * string) list option));
  let s = Cache.stats c in
  Alcotest.(check int) (name ^ ": counted corrupt") 1 s.Cache.corrupt;
  (* the damaged file is gone; recompute-and-store round-trips again *)
  let v =
    Cache.memo c ~kind:"misra" ~key (fun () -> [ (3, "recomputed") ])
  in
  Alcotest.(check bool) (name ^ ": recompute stored") true (v = [ (3, "recomputed") ]);
  Alcotest.(check bool) (name ^ ": store serves the recompute") true
    (Cache.find c ~kind:"misra" ~key = Some [ (3, "recomputed") ])

let test_corrupt_truncated () =
  check_corrupt_recovers "truncated" ~mutate:(fun s ->
      String.sub s 0 (String.length s / 2))

let test_corrupt_garbage () =
  check_corrupt_recovers "garbage" ~mutate:(fun s ->
      String.make (String.length s) 'Z')

let test_corrupt_salt_mismatch () =
  check_corrupt_recovers "salt-mismatch" ~mutate:(fun s ->
      match String.index_opt s '\n' with
      | None -> "bogus"
      | Some i ->
        (* splice a foreign schema salt into the second header line *)
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        let j = String.index rest '\n' in
        String.sub s 0 (i + 1) ^ "adcheck-cache/0 schema=0"
        ^ String.sub rest j (String.length rest - j))

let test_remove_owned () =
  let dir = fresh_dir "adcheck-owned" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let c = Cache.open_dir dir in
  Cache.store c ~owner:"a.cc" ~kind:"parse"
    ~key:(Cache.key ~kind:"parse" [ "a" ]) "A";
  Cache.store c ~owner:"a.cc" ~kind:"dataflow"
    ~key:(Cache.key ~kind:"dataflow" [ "a" ]) "Adf";
  Cache.store c ~owner:"b.cc" ~kind:"parse"
    ~key:(Cache.key ~kind:"parse" [ "b" ]) "B";
  Cache.store c ~kind:"bytecode" ~key:(Cache.key ~kind:"bytecode" [ "p" ]) "BC";
  Alcotest.(check int) "only a.cc's two artifacts removed" 2
    (Cache.remove_owned c [ "a.cc" ]);
  Alcotest.(check bool) "other owner survives" true
    (Cache.find c ~kind:"parse" ~key:(Cache.key ~kind:"parse" [ "b" ])
     = Some "B");
  Alcotest.(check bool) "unowned artifact survives" true
    (Cache.find c ~kind:"bytecode" ~key:(Cache.key ~kind:"bytecode" [ "p" ])
     = Some "BC");
  Alcotest.(check int) "removals counted as invalidated" 2
    (Cache.stats c).Cache.invalidated

let test_version_salt_wipe () =
  let dir = fresh_dir "adcheck-version" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let c = Cache.open_dir dir in
  let key = Cache.key ~kind:"parse" [ "v" ] in
  Cache.store c ~kind:"parse" ~key "V";
  Alcotest.(check bool) "artifact present before reopen" true
    (artifact_files dir <> []);
  (* a store written by another tool version is wiped, not trusted *)
  write_file (Filename.concat dir "VERSION") "adcheck-cache/0 schema=0\n";
  let c2 = Cache.open_dir dir in
  Alcotest.(check (list string)) "salt mismatch wipes the store" []
    (artifact_files dir);
  Alcotest.(check bool) "old artifact is a clean miss" true
    (Cache.find c2 ~kind:"parse" ~key = (None : string option));
  Alcotest.(check int) "wipe is not a corruption event" 0
    (Cache.stats c2).Cache.corrupt

(* ------------------------------------------------------------------ *)
(* A small real project: parse + MISRA + dataflow through one store    *)
(* ------------------------------------------------------------------ *)

(* defs.h <- alpha.cc (include + call) <- beta.cc (include + call)
   <- gamma.cc (call only): edits to defs.h must invalidate everything,
   edits to gamma.cc only itself. *)
let base_sources =
  [ ("m/defs.h", "int shared_limit() { return 10; }\n");
    ( "m/alpha.cc",
      "#include \"m/defs.h\"\n\
       int alpha(int x) { int y = 0; if (x > shared_limit()) { y = x; } \
       return y; }\n" );
    ( "m/beta.cc",
      "#include \"m/defs.h\"\n\
       int beta(int x) { int a; if (x > 0) { a = 1; } return a + alpha(x); }\n"
    );
    ( "m/gamma.cc",
      "int gamma_fn(int n) { int s = 0; \
       for (int i = 0; i < n; ++i) { s += beta(i); } return s; }\n" ) ]

let project_of files =
  Cfront.Project.make ~name:"cachetest"
    [ { Cfront.Project.m_name = "m";
        m_files =
          List.map
            (fun (path, content) ->
              { Cfront.Project.path; modname = "m";
                header = Filename.check_suffix path ".h"; content })
            files } ]

(* One warm run over [tree] against store [c], replaying the audit's
   cache discipline: restart the id counters, diff against the stored
   manifest (sweeping only paths that left the tree), parse, save the
   new manifest, then MISRA + per-file dataflow.  Returns a rendering
   that covers every cached artifact kind plus the finding ids. *)
let lib_run c tree =
  Cfront.Parser.reset_ids ();
  let hashes =
    List.map
      (fun (f : Cfront.Project.source_file) ->
        (f.Cfront.Project.path, Cache.fnv1a64 f.Cfront.Project.content))
      (Cfront.Project.all_files tree)
  in
  (match Cache.Manifest.load c ~name:tree.Cfront.Project.p_name with
   | None -> ()
   | Some old ->
     let gone =
       List.filter
         (fun p -> not (List.mem_assoc p hashes))
         (List.map
            (fun (e : Cache.Manifest.entry) -> e.Cache.Manifest.e_path)
            old.Cache.Manifest.entries)
     in
     if gone <> [] then ignore (Cache.remove_owned c gone));
  Cache.with_global c @@ fun () ->
  let (parsed, misra, summaries), findings =
    P.collect (fun () ->
        let parsed = Cfront.Project.parse tree in
        let misra = Misra.Registry.run_project parsed in
        let summaries =
          List.concat_map
            (fun (pf : Cfront.Project.parsed_file) ->
              Dataflow.Analyses.summarize_file
                ~path:pf.Cfront.Project.file.Cfront.Project.path
                ~key:(Cfront.Project.file_key parsed pf)
                (Cfront.Project.defined_functions [ pf ]))
            parsed.Cfront.Project.files
        in
        (parsed, misra, summaries))
  in
  Cache.Manifest.save c ~name:tree.Cfront.Project.p_name
    (Iso26262.Audit.manifest_of_parsed parsed);
  String.concat "\n"
    (Misra.Registry.render_summary misra
     :: List.map
          (fun (s : Dataflow.Analyses.func_summary) ->
            Printf.sprintf "%s blocks=%d edges=%d unreachable=%d dead=%d \
                            uninit=%d const=%d"
              s.Dataflow.Analyses.s_function s.Dataflow.Analyses.s_blocks
              s.Dataflow.Analyses.s_edges s.Dataflow.Analyses.s_unreachable
              s.Dataflow.Analyses.s_dead_stores
              s.Dataflow.Analyses.s_uninit_reads
              s.Dataflow.Analyses.s_const_conditions)
          summaries
     @ List.map (fun f -> f.P.f_id) findings)

let stats_delta c f =
  let b = Cache.stats c in
  let r = f () in
  let a = Cache.stats c in
  ( r,
    { Cache.hits = a.Cache.hits - b.Cache.hits;
      misses = a.Cache.misses - b.Cache.misses;
      stores = a.Cache.stores - b.Cache.stores;
      corrupt = a.Cache.corrupt - b.Cache.corrupt;
      invalidated = a.Cache.invalidated - b.Cache.invalidated } )

let test_manifest_of_parsed_edges () =
  let parsed = Cfront.Project.parse (project_of base_sources) in
  let m = Iso26262.Audit.manifest_of_parsed parsed in
  let deps p =
    match
      List.find_opt
        (fun (e : Cache.Manifest.entry) -> e.Cache.Manifest.e_path = p)
        m.Cache.Manifest.entries
    with
    | Some e -> e.Cache.Manifest.e_deps
    | None -> Alcotest.failf "manifest lacks %s" p
  in
  Alcotest.(check (list string)) "alpha: include + callee both resolve to defs.h"
    [ "m/defs.h" ] (deps "m/alpha.cc");
  Alcotest.(check (list string)) "beta: include edge + cross-file call edge"
    [ "m/alpha.cc"; "m/defs.h" ] (deps "m/beta.cc");
  Alcotest.(check (list string)) "gamma: call-graph edge only"
    [ "m/beta.cc" ] (deps "m/gamma.cc");
  Alcotest.(check (list string)) "header depends on nothing" []
    (deps "m/defs.h");
  (* the closure the audit will invalidate with *)
  Alcotest.(check (list string)) "header edit fans out to every file"
    [ "m/alpha.cc"; "m/beta.cc"; "m/gamma.cc" ]
    (Cache.Manifest.dependents m [ "m/defs.h" ]);
  Alcotest.(check (list string)) "leaf edit fans out to nothing" []
    (Cache.Manifest.dependents m [ "m/gamma.cc" ])

let test_revert_restores_hits () =
  let dir = fresh_dir "adcheck-revert" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let c = Cache.open_dir dir in
  let out0 = lib_run c (project_of base_sources) in
  List.iteri
    (fun i (path, content) ->
      let edited =
        List.map
          (fun (p, s) ->
            if p = path then
              (p, s ^ Printf.sprintf "int probe_%d() { return %d; }\n" i i)
            else (p, s))
          base_sources
      in
      let _ = lib_run c (project_of edited) in
      (* revert: every artifact of the original tree is still in the
         store, so the run must answer entirely warm *)
      let out2, d = stats_delta c (fun () -> lib_run c (project_of base_sources)) in
      Alcotest.(check string)
        (Printf.sprintf "revert of %s reproduces the original output" path)
        out0 out2;
      Alcotest.(check int)
        (Printf.sprintf "revert of %s recomputes nothing" path)
        0 d.Cache.misses;
      Alcotest.(check bool)
        (Printf.sprintf "revert of %s answers warm" path)
        true (d.Cache.hits > 0);
      ignore content)
    base_sources

(* ------------------------------------------------------------------ *)
(* QCheck: random edit sequences over one store                        *)
(* ------------------------------------------------------------------ *)

type edit =
  | Touch of int * int  (** file index, content variant *)
  | Revert of int
  | Rename of bool  (** rename gamma.cc (nothing depends on it) *)

let show_edit = function
  | Touch (i, v) -> Printf.sprintf "touch(%d,v%d)" i v
  | Revert i -> Printf.sprintf "revert(%d)" i
  | Rename b -> Printf.sprintf "rename(%b)" b

let edit_gen =
  QCheck.Gen.(
    frequency
      [ (4, map2 (fun i v -> Touch (i, v)) (int_range 0 3) (int_range 1 3));
        (2, map (fun i -> Revert i) (int_range 0 3));
        (1, map (fun b -> Rename b) bool) ])

let edits_arb =
  QCheck.make
    ~print:(fun es -> String.concat "; " (List.map show_edit es))
    QCheck.Gen.(list_size (int_range 1 4) edit_gen)

(* Tree state: a content variant per base file, plus gamma's name. *)
let tree_of_state (variants, renamed) =
  project_of
    (List.mapi
       (fun i (path, content) ->
         let path =
           if i = 3 && renamed then "m/gamma_renamed.cc" else path
         in
         let content =
           if variants.(i) = 0 then content
           else
             content
             ^ Printf.sprintf "int extra_%d_%d() { return %d; }\n" i
                 variants.(i) variants.(i)
         in
         (path, content))
       base_sources)

let apply_edit (variants, renamed) = function
  | Touch (i, v) ->
    variants.(i) <- v;
    (variants, renamed)
  | Revert i ->
    variants.(i) <- 0;
    (variants, renamed)
  | Rename b -> (variants, b)

(* After any edit sequence, the store must be behaviorally identical to
   one populated by a single cold run from the final tree: the final
   warm output matches the cold output, every artifact the cold run
   writes is already present, and a re-run over the final tree answers
   without a single miss. *)
let prop_edit_sequence_converges =
  QCheck.Test.make ~name:"random edit sequences: warm == cold from final tree"
    ~count:15 edits_arb (fun edits ->
      let warm_dir = fresh_dir "qc-warm" and cold_dir = fresh_dir "qc-cold" in
      Fun.protect ~finally:(fun () -> rm_rf warm_dir; rm_rf cold_dir)
      @@ fun () ->
      let warm = Cache.open_dir warm_dir in
      let state = ref ([| 0; 0; 0; 0 |], false) in
      let last = ref (lib_run warm (tree_of_state !state)) in
      List.iter
        (fun e ->
          state := apply_edit !state e;
          last := lib_run warm (tree_of_state !state))
        edits;
      let cold = Cache.open_dir cold_dir in
      let cold_out = lib_run cold (tree_of_state !state) in
      let warm_arts = artifact_files warm_dir in
      let cold_covered =
        List.for_all (fun f -> List.mem f warm_arts) (artifact_files cold_dir)
      in
      let rerun, d =
        stats_delta warm (fun () -> lib_run warm (tree_of_state !state))
      in
      if !last <> cold_out then
        QCheck.Test.fail_report "final warm output <> cold output";
      if not cold_covered then
        QCheck.Test.fail_report "cold run wrote an artifact the warm store lacks";
      if rerun <> cold_out then
        QCheck.Test.fail_report "warm re-run diverged from cold output";
      if d.Cache.misses <> 0 then
        QCheck.Test.fail_reportf "warm re-run missed %d time(s)" d.Cache.misses;
      true)

(* Edit, run, revert, run: the revert run answers with zero misses and
   reproduces the pre-edit output — content addressing never pays for
   an abandoned edit twice. *)
let prop_revert_is_warm =
  QCheck.Test.make ~name:"random edit then revert: second run fully warm"
    ~count:15
    (QCheck.make
       ~print:(fun (i, v) -> show_edit (Touch (i, v)))
       QCheck.Gen.(pair (int_range 0 3) (int_range 1 3)))
    (fun (i, v) ->
      let dir = fresh_dir "qc-revert" in
      Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
      let c = Cache.open_dir dir in
      let state = ([| 0; 0; 0; 0 |], false) in
      let out0 = lib_run c (tree_of_state state) in
      let _ = lib_run c (tree_of_state (apply_edit state (Touch (i, v)))) in
      let out2, d =
        stats_delta c (fun () ->
            lib_run c (tree_of_state ([| 0; 0; 0; 0 |], false)))
      in
      if out2 <> out0 then QCheck.Test.fail_report "revert changed the output";
      if d.Cache.misses <> 0 then
        QCheck.Test.fail_reportf "revert missed %d time(s)" d.Cache.misses;
      d.Cache.hits > 0)

(* ------------------------------------------------------------------ *)
(* Full audit differential on a trimmed corpus, jobs 1/2/8             *)
(* ------------------------------------------------------------------ *)

let diff_seed = 77
let trimmed_specs = List.filteri (fun i _ -> i < 2) Corpus.Apollo_profile.small

type audit_obs = {
  a_report : string;
  a_journal : string;
  a_ids : string list;
  a_stats : Cache.stats option;  (** this run's counter deltas *)
  a_invalidate : int;  (** [cache.invalidate] work-tier counter *)
}

(* One audit under the tick clock at [jobs], optionally against [cache]
   and over an explicit [project] tree.  The id counters restart before
   every run — including the no-cache oracle — so in-process runs are
   base-comparable with each other and with a fresh process. *)
let audit_obs ?project ~jobs ~cache () =
  Util.Pool.set_default_jobs jobs;
  Telemetry.reset ();
  Telemetry.set_enabled true;
  Telemetry.install_tick_clock ();
  Cache.set_global cache;
  Fun.protect
    ~finally:(fun () ->
      Cache.set_global None;
      Telemetry.use_wall_clock ();
      Telemetry.reset ();
      Telemetry.set_enabled false;
      Util.Pool.set_default_jobs restore_jobs)
  @@ fun () ->
  let before = Option.map Cache.stats cache in
  Cfront.Parser.reset_ids ();
  let audit =
    Iso26262.Audit.run ~seed:diff_seed ~specs:trimmed_specs ?project ()
  in
  let delta =
    match (before, Option.map Cache.stats cache) with
    | Some b, Some a ->
      Some
        { Cache.hits = a.Cache.hits - b.Cache.hits;
          misses = a.Cache.misses - b.Cache.misses;
          stores = a.Cache.stores - b.Cache.stores;
          corrupt = a.Cache.corrupt - b.Cache.corrupt;
          invalidated = a.Cache.invalidated - b.Cache.invalidated }
    | _ -> None
  in
  {
    a_report = Iso26262.Audit.render audit;
    a_journal = P.journal ();
    a_ids = List.map (fun f -> f.P.f_id) audit.Iso26262.Audit.journal;
    a_stats = delta;
    a_invalidate = Telemetry.counter "cache.invalidate";
  }

let oracle = lazy (audit_obs ~jobs:1 ~cache:None ())

let check_matches_oracle_against ~name o obs =
  Alcotest.(check string) (name ^ ": report bytes") o.a_report obs.a_report;
  Alcotest.(check string) (name ^ ": evidence journal bytes") o.a_journal
    obs.a_journal;
  Alcotest.(check (list string)) (name ^ ": finding ids") o.a_ids obs.a_ids

let check_matches_oracle ~name obs =
  check_matches_oracle_against ~name (Lazy.force oracle) obs

(* The shared store of the cold → warm → corrupted progression below;
   populated once, in order, by Alcotest's sequential runner. *)
let audit_dir = lazy (fresh_dir "adcheck-audit-cache")
let () = at_exit (fun () -> if Lazy.is_val audit_dir then rm_rf (Lazy.force audit_dir))
let audit_store = lazy (Cache.open_dir (Lazy.force audit_dir))
let cold_misses = ref 0

let test_audit_cold_with_cache () =
  let obs = audit_obs ~jobs:1 ~cache:(Some (Lazy.force audit_store)) () in
  check_matches_oracle ~name:"cold cache jobs=1" obs;
  match obs.a_stats with
  | None -> Alcotest.fail "no cache stats"
  | Some d ->
    cold_misses := d.Cache.misses;
    Alcotest.(check bool) "cold run computes everything" true
      (d.Cache.misses > 0 && d.Cache.stores > 0);
    Alcotest.(check int) "no invalidation on first contact" 0 obs.a_invalidate

let test_audit_warm_jobs1 () =
  let obs = audit_obs ~jobs:1 ~cache:(Some (Lazy.force audit_store)) () in
  check_matches_oracle ~name:"warm jobs=1" obs;
  match obs.a_stats with
  | None -> Alcotest.fail "no cache stats"
  | Some d ->
    Alcotest.(check int) "warm jobs=1 recomputes nothing" 0 d.Cache.misses;
    Alcotest.(check bool) "warm jobs=1 answers from the store" true
      (d.Cache.hits > 0);
    Alcotest.(check int) "identical tree invalidates nothing" 0
      obs.a_invalidate

(* At jobs>1 the pipelined coverage phases may enter at racing id bases,
   so a phase artifact can conservatively miss — the contract is byte
   identity, not hit count. *)
let test_audit_warm_jobs2 () =
  check_matches_oracle ~name:"warm jobs=2"
    (audit_obs ~jobs:2 ~cache:(Some (Lazy.force audit_store)) ())

let test_audit_warm_jobs8 () =
  check_matches_oracle ~name:"warm jobs=8"
    (audit_obs ~jobs:8 ~cache:(Some (Lazy.force audit_store)) ())

(* ------------------------------------------------------------------ *)
(* Incremental: one edit, exact invalidation set, oracle equality      *)
(* ------------------------------------------------------------------ *)

let base_project = lazy (Corpus.Generator.generate ~seed:diff_seed trimmed_specs)

let edit_file (p : Cfront.Project.t) path =
  { p with
    Cfront.Project.p_modules =
      List.map
        (fun (m : Cfront.Project.modul) ->
          { m with
            Cfront.Project.m_files =
              List.map
                (fun (f : Cfront.Project.source_file) ->
                  if f.Cfront.Project.path = path then
                    { f with
                      Cfront.Project.content =
                        f.Cfront.Project.content
                        ^ "\nint cache_diff_probe() { return 42; }\n" }
                  else f)
                m.Cfront.Project.m_files })
        p.Cfront.Project.p_modules }

(* Independent transitive closure, written against the naive definition
   rather than the Manifest implementation: changed files, then keep
   adding any file with a dependency edge into the set until fixpoint. *)
let naive_invalidated (old : Cache.Manifest.t) view =
  let changed =
    List.filter
      (fun (p, h) ->
        match
          List.find_opt
            (fun (e : Cache.Manifest.entry) -> e.Cache.Manifest.e_path = p)
            old.Cache.Manifest.entries
        with
        | None -> true
        | Some e -> e.Cache.Manifest.e_hash <> h)
      view
    |> List.map fst
  in
  let removed =
    List.filter_map
      (fun (e : Cache.Manifest.entry) ->
        if List.mem_assoc e.Cache.Manifest.e_path view then None
        else Some e.Cache.Manifest.e_path)
      old.Cache.Manifest.entries
  in
  let set = ref (List.sort_uniq compare (changed @ removed)) in
  let grew = ref true in
  while !grew do
    grew := false;
    List.iter
      (fun (e : Cache.Manifest.entry) ->
        if
          (not (List.mem e.Cache.Manifest.e_path !set))
          && List.exists (fun d -> List.mem d !set) e.Cache.Manifest.e_deps
        then begin
          set := List.sort compare (e.Cache.Manifest.e_path :: !set);
          grew := true
        end)
      old.Cache.Manifest.entries
  done;
  !set

let test_audit_incremental_edit () =
  let project = Lazy.force base_project in
  (* the first non-header file of the corpus is the edit target *)
  let target =
    match
      List.find_opt
        (fun (f : Cfront.Project.source_file) -> not f.Cfront.Project.header)
        (Cfront.Project.all_files project)
    with
    | Some f -> f.Cfront.Project.path
    | None -> Alcotest.fail "corpus has no implementation files"
  in
  let edited = edit_file project target in
  let old_manifest =
    Iso26262.Audit.manifest_of_parsed (Cfront.Project.parse project)
  in
  let view =
    List.map
      (fun (f : Cfront.Project.source_file) ->
        (f.Cfront.Project.path, Cache.fnv1a64 f.Cfront.Project.content))
      (Cfront.Project.all_files edited)
  in
  let inv = Cache.Manifest.invalidated ~old:old_manifest view in
  (* the exact invalidation set: the edited file plus its transitive
     reverse-dependents, independently recomputed here *)
  Alcotest.(check (list string)) "invalidation set = naive closure"
    (naive_invalidated old_manifest view)
    inv;
  Alcotest.(check bool) "edited file is in its own invalidation set" true
    (List.mem target inv);
  Alcotest.(check bool) "invalidation is not the whole tree" true
    (List.length inv < List.length view);
  List.iter
    (fun p ->
      if p <> target then
        Alcotest.(check bool)
          (Printf.sprintf "%s is a transitive dependent of %s" p target)
          true
          (List.mem p (Cache.Manifest.dependents old_manifest [ target ])))
    inv;
  (* populate the store from the ORIGINAL tree, then audit the edit *)
  let dir = fresh_dir "adcheck-incr" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let c = Cache.open_dir dir in
  let cold = audit_obs ~jobs:1 ~project ~cache:(Some c) () in
  let arts_cold = artifact_files dir in
  let incr = audit_obs ~jobs:1 ~project:edited ~cache:(Some c) () in
  let arts_new =
    List.filter (fun f -> not (List.mem f arts_cold)) (artifact_files dir)
  in
  let edit_oracle = audit_obs ~jobs:1 ~project:edited ~cache:None () in
  Alcotest.(check string) "incremental report == edited-tree oracle"
    edit_oracle.a_report incr.a_report;
  Alcotest.(check string) "incremental journal == edited-tree oracle"
    edit_oracle.a_journal incr.a_journal;
  Alcotest.(check (list string)) "incremental finding ids == oracle"
    edit_oracle.a_ids incr.a_ids;
  Alcotest.(check int) "cache.invalidate counts the invalidation set"
    (List.length inv) incr.a_invalidate;
  (match (cold.a_stats, incr.a_stats) with
   | Some dc, Some di ->
     Alcotest.(check bool)
       (Printf.sprintf
          "incremental recomputes measurably less (%d misses vs %d cold)"
          di.Cache.misses dc.Cache.misses)
       true
       (di.Cache.misses > 0 && di.Cache.misses < dc.Cache.misses);
     Alcotest.(check bool) "incremental run stays mostly warm" true
       (di.Cache.hits > 0)
   | _ -> Alcotest.fail "missing cache stats");
  (* artifact-level accounting: the edit recomputes exactly one parse
     and one dataflow artifact (the edited file; its dependents' keys
     are content-addressed and unchanged), the whole coverage layer
     stays warm, and only the whole-tree-keyed MISRA layer re-runs *)
  let count_kind prefix =
    List.length
      (List.filter
         (fun f ->
           String.length f >= String.length prefix
           && String.sub f 0 (String.length prefix) = prefix)
         arts_new)
  in
  Alcotest.(check int) "one new parse artifact (the edited file)" 1
    (count_kind "parse-");
  Alcotest.(check int) "one new dataflow artifact (the edited file)" 1
    (count_kind "dataflow-");
  Alcotest.(check int) "coverage phases stay warm across a corpus edit" 0
    (count_kind "covphase-" + count_kind "scenario-" + count_kind "bytecode-");
  Alcotest.(check bool) "whole-tree MISRA layer recomputes" true
    (count_kind "misra-" > 0);
  (* the same edited tree at jobs=8 against the now-twice-written store *)
  check_matches_oracle_against ~name:"incremental jobs=8" edit_oracle
    (audit_obs ~jobs:8 ~project:edited ~cache:(Some c) ())

(* A damaged store slows the audit down but cannot change it: truncate
   or scribble over half the artifacts, then re-run warm. *)
let test_audit_corrupted_store () =
  let dir = Lazy.force audit_dir in
  let arts = artifact_files dir in
  Alcotest.(check bool) "store is populated" true (arts <> []);
  List.iteri
    (fun i f ->
      let path = Filename.concat dir f in
      if i mod 2 = 0 then
        write_file path
          (let s = read_file path in
           String.sub s 0 (String.length s / 3))
      else if i mod 4 = 1 then
        write_file path (String.make 64 '\xff'))
    arts;
  let obs = audit_obs ~jobs:1 ~cache:(Some (Lazy.force audit_store)) () in
  check_matches_oracle ~name:"corrupted store jobs=1" obs;
  match obs.a_stats with
  | None -> Alcotest.fail "no cache stats"
  | Some d ->
    Alcotest.(check bool) "corruption detected and counted" true
      (d.Cache.corrupt > 0);
    Alcotest.(check bool) "corrupt artifacts recomputed" true
      (d.Cache.misses >= d.Cache.corrupt)

(* ------------------------------------------------------------------ *)
(* The real binary: misra --cache differential and adcheck serve       *)
(* ------------------------------------------------------------------ *)

let adcheck_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/adcheck.exe"

let run_capture cmd =
  let out = Filename.temp_file "adcheck-out" ".txt" in
  let err = Filename.temp_file "adcheck-err" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove out with Sys_error _ -> ());
      try Sys.remove err with Sys_error _ -> ())
  @@ fun () ->
  let rc =
    Sys.command
      (Printf.sprintf "%s > %s 2> %s" cmd (Filename.quote out)
         (Filename.quote err))
  in
  (rc, read_file out, read_file err)

let test_cli_misra_cache_diff () =
  let dir = fresh_dir "cli-cache" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let base =
    Printf.sprintf "%s misra --scale small --seed 7" (Filename.quote adcheck_exe)
  in
  let cached = Printf.sprintf "%s --cache %s" base (Filename.quote dir) in
  let rc0, oracle_out, _ = run_capture base in
  Alcotest.(check int) "oracle run exits 0" 0 rc0;
  let rc1, cold_out, _ = run_capture cached in
  Alcotest.(check int) "cold cached run exits 0" 0 rc1;
  Alcotest.(check string) "cold cached stdout == cacheless stdout" oracle_out
    cold_out;
  (* --verbose so the Log.info cache summary reaches stderr *)
  let rc2, warm_out, warm_err = run_capture (cached ^ " --verbose") in
  Alcotest.(check int) "warm run exits 0" 0 rc2;
  Alcotest.(check string) "warm stdout == cacheless stdout" oracle_out warm_out;
  Alcotest.(check bool) "warm run logs its cache summary" true
    (Util.Strutil.contains_sub ~sub:"cache " warm_err);
  (* scribble over every artifact: the next run must detect, recompute,
     and still match — the PR-8 policy test, for cache damage *)
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      let s = read_file path in
      write_file path (String.sub s 0 (min 24 (String.length s))))
    (artifact_files dir);
  let rc3, corrupt_out, corrupt_err = run_capture cached in
  Alcotest.(check int) "corrupted-store run exits 0" 0 rc3;
  Alcotest.(check string) "corrupted-store stdout == cacheless stdout"
    oracle_out corrupt_out;
  Alcotest.(check bool) "corruption is logged" true
    (Util.Strutil.contains_sub ~sub:"corrupt" corrupt_err)

let test_cli_cache_open_failure () =
  (* a path under /dev/null can never be created, even running as root *)
  let rc, _, err =
    run_capture
      (Printf.sprintf "%s misra --scale small --seed 7 --cache %s"
         (Filename.quote adcheck_exe)
         (Filename.quote "/dev/null/cache"))
  in
  Alcotest.(check int) "unopenable cache dir exits 1" 1 rc;
  Alcotest.(check bool) "error names the cache directory" true
    (Util.Strutil.contains_sub ~sub:"cannot open cache directory" err)

let test_cli_serve_protocol () =
  let dir = fresh_dir "cli-serve" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let rc, out, _ =
    run_capture
      (Printf.sprintf "printf 'ping\\nstats\\nbogus\\nquit\\n' | %s serve --cache %s"
         (Filename.quote adcheck_exe) (Filename.quote dir))
  in
  Alcotest.(check int) "serve session exits 0" 0 rc;
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' out) in
  (match lines with
   | greeting :: _ ->
     Alcotest.(check string) "greeting names the protocol"
       "adcheck-serve/1 ready" greeting
   | [] -> Alcotest.fail "serve printed nothing");
  let has prefix =
    List.exists
      (fun l ->
        String.length l >= String.length prefix
        && String.sub l 0 (String.length prefix) = prefix)
      lines
  in
  Alcotest.(check bool) "ping answered" true (has "pong");
  Alcotest.(check bool) "stats line carries counters" true (has "stats hits=");
  Alcotest.(check bool) "unknown command rejected in-band" true (has "err ");
  Alcotest.(check bool) "quit acknowledged" true (has "bye")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "cache-diff"
    [
      ( "manifest",
        [
          Alcotest.test_case "diff detects edits/adds/removes" `Quick
            test_manifest_changed;
          Alcotest.test_case "transitive reverse-dependents" `Quick
            test_manifest_dependents;
          Alcotest.test_case "invalidation closure" `Quick
            test_manifest_invalidated;
          Alcotest.test_case "persistence round-trip" `Quick
            test_manifest_persistence;
          Alcotest.test_case "edges from includes + callgraph" `Quick
            test_manifest_of_parsed_edges;
        ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip, keys, memo" `Quick test_store_roundtrip;
          Alcotest.test_case "truncated artifact recovers" `Quick
            test_corrupt_truncated;
          Alcotest.test_case "garbage artifact recovers" `Quick
            test_corrupt_garbage;
          Alcotest.test_case "foreign salt recovers" `Quick
            test_corrupt_salt_mismatch;
          Alcotest.test_case "owner-scoped removal" `Quick test_remove_owned;
          Alcotest.test_case "version mismatch wipes the store" `Quick
            test_version_salt_wipe;
        ] );
      ( "edits",
        [
          Alcotest.test_case "revert every file restores hits" `Quick
            test_revert_restores_hits;
          QCheck_alcotest.to_alcotest prop_edit_sequence_converges;
          QCheck_alcotest.to_alcotest prop_revert_is_warm;
        ] );
      ( "audit",
        [
          Alcotest.test_case "cold with cache == oracle" `Slow
            test_audit_cold_with_cache;
          Alcotest.test_case "warm jobs=1 == oracle, zero misses" `Slow
            test_audit_warm_jobs1;
          Alcotest.test_case "warm jobs=2 == oracle" `Slow
            test_audit_warm_jobs2;
          Alcotest.test_case "warm jobs=8 == oracle" `Slow
            test_audit_warm_jobs8;
          Alcotest.test_case "incremental edit == oracle, exact set" `Slow
            test_audit_incremental_edit;
          Alcotest.test_case "corrupted store == oracle" `Slow
            test_audit_corrupted_store;
        ] );
      ( "cli",
        [
          Alcotest.test_case "misra cold/warm/corrupt == cacheless" `Slow
            test_cli_misra_cache_diff;
          Alcotest.test_case "unopenable cache dir fails fast" `Quick
            test_cli_cache_open_failure;
          Alcotest.test_case "serve line protocol" `Slow
            test_cli_serve_protocol;
        ] );
    ]
