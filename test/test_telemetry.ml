(* Tests for the telemetry layer: span nesting and ordering, counter
   aggregation, Chrome trace-event JSON well-formedness (parsed back with
   a minimal JSON reader), determinism of everything except timestamps,
   the interpreter hot-function profile, and a golden stats snapshot on
   the small corpus. *)

(* ------------------------------------------------------------------ *)
(* Minimal JSON reader (no external dependency)                         *)
(* ------------------------------------------------------------------ *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let lit word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'; advance ()
         | Some '\\' -> Buffer.add_char buf '\\'; advance ()
         | Some '/' -> Buffer.add_char buf '/'; advance ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "bad \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           let code = int_of_string ("0x" ^ hex) in
           if code < 128 then Buffer.add_char buf (Char.chr code)
           else Buffer.add_char buf '?'
         | _ -> fail "bad escape");
        go ()
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Jnum f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Jobj [])
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); List.rev ((k, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Jobj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); Jarr [])
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        Jarr (elements [])
      end
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> lit "true" (Jbool true)
    | Some 'f' -> lit "false" (Jbool false)
    | Some 'n' -> lit "null" Jnull
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Jobj kvs -> (
      match List.assoc_opt key kvs with
      | Some v -> v
      | None -> Alcotest.failf "missing JSON member %s" key)
  | _ -> Alcotest.failf "not a JSON object (looking for %s)" key

let as_arr = function Jarr l -> l | _ -> Alcotest.fail "not a JSON array"
let as_str = function Jstr s -> s | _ -> Alcotest.fail "not a JSON string"
let as_num = function Jnum f -> f | _ -> Alcotest.fail "not a JSON number"

(* ------------------------------------------------------------------ *)
(* Helpers                                                              *)
(* ------------------------------------------------------------------ *)

(* Deterministic sink: fresh state, fake clock advancing 1us per read. *)
let fresh () =
  Telemetry.reset ();
  Telemetry.set_enabled true;
  Telemetry.install_tick_clock ()

let teardown () =
  Telemetry.reset ();
  Telemetry.set_enabled false;
  Telemetry.use_wall_clock ()

let with_fresh f =
  fresh ();
  Fun.protect ~finally:teardown f

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  with_fresh @@ fun () ->
  Telemetry.with_span "outer" (fun () ->
      Telemetry.with_span "inner" (fun () -> ()));
  match Telemetry.events () with
  | [ outer; inner ] ->
    Alcotest.(check string) "outer first" "outer" outer.Telemetry.ev_name;
    Alcotest.(check string) "inner second" "inner" inner.Telemetry.ev_name;
    Alcotest.(check int) "outer depth" 0 outer.Telemetry.ev_depth;
    Alcotest.(check int) "inner depth" 1 inner.Telemetry.ev_depth;
    Alcotest.(check bool) "inner starts after outer" true
      (inner.Telemetry.ev_start_us > outer.Telemetry.ev_start_us);
    Alcotest.(check bool) "inner contained in outer" true
      (inner.Telemetry.ev_start_us +. inner.Telemetry.ev_dur_us
       <= outer.Telemetry.ev_start_us +. outer.Telemetry.ev_dur_us)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_span_ordering_sequential () =
  with_fresh @@ fun () ->
  List.iter (fun name -> Telemetry.with_span name (fun () -> ())) [ "a"; "b"; "c" ];
  Alcotest.(check (list string)) "events in start order" [ "a"; "b"; "c" ]
    (List.map (fun e -> e.Telemetry.ev_name) (Telemetry.events ()))

let test_explicit_span_attrs () =
  with_fresh @@ fun () ->
  let sp = Telemetry.start_span ~cat:"test" ~attrs:[ ("k0", "v0") ] "explicit" in
  Telemetry.add_attr sp "k1" "v1";
  Telemetry.end_span sp ~attrs:[ ("k2", "v2") ];
  (* a second end is a no-op *)
  Telemetry.end_span sp;
  match Telemetry.events () with
  | [ e ] ->
    Alcotest.(check string) "cat" "test" e.Telemetry.ev_cat;
    Alcotest.(check (list (pair string string)))
      "attrs in order"
      [ ("k0", "v0"); ("k1", "v1"); ("k2", "v2") ]
      e.Telemetry.ev_attrs
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

let test_span_survives_exception () =
  with_fresh @@ fun () ->
  (try Telemetry.with_span "failing" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span recorded despite raise" 1
    (List.length (Telemetry.events ()))

let test_disabled_is_noop () =
  Telemetry.reset ();
  Telemetry.set_enabled false;
  Telemetry.with_span "ghost" (fun () -> Telemetry.incr "ghost.counter");
  Alcotest.(check int) "no events" 0 (List.length (Telemetry.events ()));
  Alcotest.(check int) "no counters" 0 (List.length (Telemetry.counters ()))

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                  *)
(* ------------------------------------------------------------------ *)

let test_counter_aggregation () =
  with_fresh @@ fun () ->
  Telemetry.incr "b.hits";
  Telemetry.incr "b.hits";
  Telemetry.incr ~by:3 "b.hits";
  Telemetry.add "a.total" 10;
  Alcotest.(check int) "incr + by aggregate" 5 (Telemetry.counter "b.hits");
  Alcotest.(check int) "absent counter is 0" 0 (Telemetry.counter "nope");
  Alcotest.(check (list (pair string int)))
    "sorted by name"
    [ ("a.total", 10); ("b.hits", 5) ]
    (Telemetry.counters ())

let test_top_counters () =
  with_fresh @@ fun () ->
  Telemetry.add "interp.fn.hot" 100;
  Telemetry.add "interp.fn.warm" 50;
  Telemetry.add "interp.fn.cold" 1;
  Telemetry.add "other" 999;
  Alcotest.(check (list (pair string int)))
    "prefix stripped, largest first, top 2"
    [ ("hot", 100); ("warm", 50) ]
    (Telemetry.top_counters ~prefix:"interp.fn." 2)

let test_gauges () =
  with_fresh @@ fun () ->
  Telemetry.set_gauge "g" 1.5;
  Telemetry.set_gauge "g" 0.5;
  Telemetry.max_gauge "m" 2.0;
  Telemetry.max_gauge "m" 1.0;
  Telemetry.max_gauge "m" 7.0;
  Alcotest.(check (list (pair string (float 1e-9))))
    "set overwrites, max keeps maximum"
    [ ("g", 0.5); ("m", 7.0) ]
    (Telemetry.gauges ())

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                  *)
(* ------------------------------------------------------------------ *)

let synthetic_workload () =
  Telemetry.with_span ~cat:"phase" "corpus" (fun () -> Telemetry.incr "corpus.files");
  Telemetry.with_span ~cat:"phase" "parse"
    ~attrs:[ ("files", "2"); ("weird\"name\n", "tab\there") ]
    (fun () ->
      Telemetry.with_span ~cat:"phase" "parse.scan" (fun () -> ());
      Telemetry.add "parse.ast_nodes" 42);
  Telemetry.set_gauge "files_per_s" 12.5

let test_chrome_trace_well_formed () =
  with_fresh @@ fun () ->
  synthetic_workload ();
  let j = parse_json (Telemetry.chrome_trace ()) in
  let evs = as_arr (member "traceEvents" j) in
  Alcotest.(check int) "three spans exported" 3 (List.length evs);
  List.iter
    (fun e ->
      Alcotest.(check string) "complete event" "X" (as_str (member "ph" e));
      Alcotest.(check bool) "ts >= 0" true (as_num (member "ts" e) >= 0.0);
      Alcotest.(check bool) "dur >= 0" true (as_num (member "dur" e) >= 0.0);
      ignore (as_str (member "name" e));
      ignore (as_str (member "cat" e)))
    evs;
  (* first event is rebased to ts = 0 *)
  (match evs with
   | first :: _ -> Alcotest.(check (float 1e-9)) "rebased" 0.0 (as_num (member "ts" first))
   | [] -> ());
  (* attrs with JSON metacharacters survive the escape/parse round trip *)
  let parse_ev =
    List.find (fun e -> as_str (member "name" e) = "parse") evs
  in
  Alcotest.(check string) "escaped attr key round-trips" "tab\there"
    (as_str (member "weird\"name\n" (member "args" parse_ev)));
  (* counters and gauges ride along *)
  let counters = member "counters" (member "otherData" j) in
  Alcotest.(check (float 1e-9)) "counter exported" 42.0
    (as_num (member "parse.ast_nodes" counters));
  let gauges = member "gauges" (member "otherData" j) in
  Alcotest.(check (float 1e-9)) "gauge exported" 12.5
    (as_num (member "files_per_s" gauges))

let test_determinism_modulo_clock () =
  let snapshot () =
    fresh ();
    synthetic_workload ();
    let trace = Telemetry.chrome_trace () in
    let counters = Telemetry.counters () in
    teardown ();
    (trace, counters)
  in
  let t1, c1 = snapshot () in
  let t2, c2 = snapshot () in
  Alcotest.(check string) "identical traces under the tick clock" t1 t2;
  Alcotest.(check (list (pair string int))) "identical counters" c1 c2

(* ------------------------------------------------------------------ *)
(* Interpreter profiling hook                                           *)
(* ------------------------------------------------------------------ *)

let test_interp_hot_function_profile () =
  with_fresh @@ fun () ->
  let src =
    "int helper(int x) { int acc = 0; for (int i = 0; i < x; i++) { acc += i; } \
     return acc; }\n\
     int main() { int total = 0; for (int k = 0; k < 5; k++) { total += \
     helper(10); } return total; }\n"
  in
  let tu = Cfront.Parser.parse_file ~file:"profile.cc" src in
  let env =
    Coverage.Interp.create ~hooks:(Coverage.Interp.telemetry_hooks ()) ()
  in
  (match Coverage.Interp.run env [ tu ] ~entry:"main" ~args:[] with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "interp run failed: %s" e);
  Alcotest.(check bool) "statements counted" true (Telemetry.counter "interp.stmts" > 0);
  Alcotest.(check bool) "calls counted" true (Telemetry.counter "interp.calls" >= 6);
  let helper = Telemetry.counter "interp.fn.helper" in
  let main_ = Telemetry.counter "interp.fn.main" in
  Alcotest.(check bool) "helper profiled" true (helper > 0);
  Alcotest.(check bool) "main profiled" true (main_ > 0);
  Alcotest.(check bool) "helper is the hot function" true (helper > main_);
  match Telemetry.top_counters ~prefix:"interp.fn." 1 with
  | [ (name, _) ] -> Alcotest.(check string) "top of profile" "helper" name
  | l -> Alcotest.failf "expected 1 top counter, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Golden stats on the small corpus                                     *)
(* ------------------------------------------------------------------ *)

let find_table title tables =
  match
    List.find_opt (fun (t : Util.Table.t) -> t.Util.Table.title = title) tables
  with
  | Some t -> t
  | None -> Alcotest.failf "missing stats table %s" title

let row_value (t : Util.Table.t) key =
  match
    List.find_opt (fun row -> match row with k :: _ -> k = key | [] -> false)
      t.Util.Table.rows
  with
  | Some [ _; v ] -> v
  | Some _ | None -> Alcotest.failf "missing stats row %s" key

let test_stats_golden_small_corpus () =
  Telemetry.reset ();
  Telemetry.set_enabled true;
  (* This golden pins the *sequential* span structure (per-rule spans are
     deliberately suppressed on pool workers), so force the oracle path
     regardless of ADCHECK_JOBS; test_parallel_determinism covers the
     parallel side. *)
  let saved_jobs = Util.Pool.default_jobs () in
  let teardown () = Util.Pool.set_default_jobs saved_jobs; teardown () in
  Fun.protect ~finally:teardown @@ fun () ->
  Util.Pool.set_default_jobs 1;
  let audit = Iso26262.Audit.run ~specs:Corpus.Apollo_profile.small () in
  ignore audit;
  (* the pipeline phases all appear as spans *)
  let span_names =
    List.map (fun e -> e.Telemetry.ev_name) (Telemetry.events ())
  in
  List.iter
    (fun phase ->
      Alcotest.(check bool) (phase ^ " span present") true
        (List.mem phase span_names))
    [ "audit"; "corpus"; "parse"; "metrics"; "misra"; "dataflow"; "coverage" ];
  (* golden counter values: fully determined by seed 2019 + small scale *)
  let tables = Telemetry.stats_tables () in
  let counters = find_table "telemetry: counters" tables in
  Alcotest.(check string) "corpus.modules" "9" (row_value counters "corpus.modules");
  Alcotest.(check string) "parse.files" "16" (row_value counters "parse.files");
  Alcotest.(check string) "misra.rules_checked" "68"
    (row_value counters "misra.rules_checked");
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " nonzero") true
        (int_of_string (row_value counters key) > 0))
    [ "corpus.bytes"; "parse.ast_nodes"; "misra.violations"; "dataflow.solves";
      "dataflow.transfers"; "interp.stmts"; "interp.calls" ];
  (* the hot-function profile exists and is part of the stats rendering *)
  let hot = find_table "telemetry: hot functions (statements interpreted)" tables in
  Alcotest.(check bool) "hot functions listed" true
    (List.length hot.Util.Table.rows > 0);
  (* spans table aggregates the per-rule MISRA spans *)
  let spans = find_table "telemetry: spans" tables in
  Alcotest.(check bool) "some misra.rule.* span aggregated" true
    (List.exists
       (fun row ->
         match row with
         | name :: _ ->
           String.length name > 11 && String.sub name 0 11 = "misra.rule."
         | [] -> false)
       spans.Util.Table.rows)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "telemetry"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting depths and ordering" `Quick test_span_nesting;
          Alcotest.test_case "sequential ordering" `Quick test_span_ordering_sequential;
          Alcotest.test_case "explicit span with attrs" `Quick test_explicit_span_attrs;
          Alcotest.test_case "span recorded on exception" `Quick
            test_span_survives_exception;
          Alcotest.test_case "disabled sink records nothing" `Quick
            test_disabled_is_noop;
        ] );
      ( "counters",
        [
          Alcotest.test_case "aggregation" `Quick test_counter_aggregation;
          Alcotest.test_case "top by prefix" `Quick test_top_counters;
          Alcotest.test_case "gauges" `Quick test_gauges;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace is well-formed JSON" `Quick
            test_chrome_trace_well_formed;
          Alcotest.test_case "deterministic modulo clock" `Quick
            test_determinism_modulo_clock;
        ] );
      ( "interp",
        [
          Alcotest.test_case "hot-function profile" `Quick
            test_interp_hot_function_profile;
        ] );
      ( "golden",
        [
          Alcotest.test_case "stats on the small corpus" `Slow
            test_stats_golden_small_corpus;
        ] );
    ]
