(* Differential oracle harness for the bytecode coverage engine.

   The tree-walking interpreter is the oracle: every behaviour the
   bytecode engine exhibits — entry results, printed output, the full
   collector state (statement hits, branch outcomes, MC/DC condition
   vectors, switch clauses), provenance finding ids — must be
   byte-identical to the tree-walker on the same shared parse.  The one
   permitted difference is [env.steps]: the bytecode engine must execute
   the corpus scenario set in strictly *fewer* ticks (each dispatched
   instruction ticks once, versus once per visited AST node).

   Three layers of evidence:

   - directed micro-programs covering every language corner (logical
     operators in value position, switch fallthrough, goto, try/throw,
     struct copies, kernels, error paths) run on both engines;
   - QCheck: random structured programs (assignments, compound ops,
     nested ifs with multi-leaf decisions, bounded loops with
     break/continue, division, printf) agree on result, output and
     collector fingerprint; every compiled function passes
     [Bytecode.validate] (jump-target bounds + consistent stack depth);
   - the full corpus scenario set (real scenarios + fault injection +
     testgen probes) replayed under the bytecode engine at the ambient
     jobs value and at jobs=2 must reproduce the tree oracle's merged
     fingerprint, per-file percentages, MC/DC pair counts, per-scenario
     results and outputs, and provenance finding ids — in fewer ticks.
     Under `make check-par` (ADCHECK_JOBS=1/2/8) this pins the
     equivalence across the whole jobs matrix. *)

let parse src = Cfront.Parser.parse_file ~file:"bc.cu" src

let restore_jobs = Util.Pool.default_jobs ()

(* ------------------------------------------------------------------ *)
(* Micro differential: one source, both engines, full observation      *)
(* ------------------------------------------------------------------ *)

type micro = {
  m_results : string;
  m_output : string;
  m_fingerprint : string;
  m_steps : int;
}

(* Both engines observe the SAME parse (statement/decision ids are
   assigned at parse time), each through a fresh env + collector. *)
let run_micro ~engine tus ~entries =
  let col = Coverage.Collector.create () in
  let env = Coverage.Interp.create ~hooks:(Coverage.Collector.hooks col) () in
  let results =
    match engine with
    | Coverage.Scenario.Tree -> (
      match entries with
      | [] -> []
      | first :: rest ->
        (* bind the head first: [::] evaluates right-to-left and the
           remaining entries need the units the first run loads *)
        let head = (first, Coverage.Interp.run env tus ~entry:first ~args:[]) in
        head :: Coverage.Interp.run_entries env ~entries:rest)
    | Coverage.Scenario.Bytecode ->
      let prog = Coverage.Compile.compile tus in
      Coverage.Exec.load env prog;
      Coverage.Exec.run_entries env prog ~entries
  in
  {
    m_results =
      String.concat "; "
        (List.map
           (fun (entry, r) ->
             entry ^ " = "
             ^
             match r with
             | Ok v -> "ok " ^ Coverage.Value.to_string v
             | Error e -> "error " ^ e)
           results);
    m_output = Coverage.Interp.output env;
    m_fingerprint = Coverage.Collector.fingerprint col;
    m_steps = env.Coverage.Interp.steps;
  }

let check_micro name src entries =
  let tu = parse src in
  Alcotest.(check (list string))
    (name ^ " parses clean") [] tu.Cfront.Ast.diags;
  let tree = run_micro ~engine:Coverage.Scenario.Tree [ tu ] ~entries in
  let bc = run_micro ~engine:Coverage.Scenario.Bytecode [ tu ] ~entries in
  Alcotest.(check string) (name ^ ": results") tree.m_results bc.m_results;
  Alcotest.(check string) (name ^ ": output") tree.m_output bc.m_output;
  Alcotest.(check string)
    (name ^ ": collector fingerprint") tree.m_fingerprint bc.m_fingerprint;
  Alcotest.(check bool)
    (name ^ ": both engines did work") true
    (tree.m_steps > 0 && bc.m_steps > 0)

(* Each micro program targets specific instruction forms; together they
   touch every opcode family the compiler can emit. *)
let micro_programs =
  [
    ( "arith-ternary-unops",
      "int main() { int x = 3; int y = x > 1 ? x * 7 : -x; \
       int z = (- 4) + +x - !y; return y + z * (x % 2); }",
      [ "main" ] );
    ( "bare-logical-value",
      "int F(int a, int b) { int x; x = a && b; int y = a || !b; \
       int z = !(a && !b) || (b && a); return x * 100 + y * 10 + z; }\n\
       int main() { return F(1, 0) + F(0, 3) * 2 + F(2, 2) * 4 + F(0, 0) * 8; }",
      [ "main" ] );
    ( "multi-leaf-decisions",
      "int main() { int a = 1; int b = 0; int c = 2; int r = 0; \
       if (a > 0 && (b > 0 || c > 1)) { r = 1; } \
       if (!(a > 0) || b == 0 && c == 2) { r += 2; } \
       while (a < 3 && c > 0) { a++; c--; r += 10; } return r; }",
      [ "main" ] );
    ( "compound-assign-incdec",
      "int main() { int x = 10; x += 3; x -= 1; x *= 2; x /= 3; x %= 5; \
       int y = x++; int z = ++x; int w = x--; int v = --x; \
       return x * 1000 + y * 100 + z * 10 + w + v; }",
      [ "main" ] );
    ( "loops-break-continue",
      "int main() { int s = 0; for (int i = 0; i < 6; ++i) { \
       if (i == 2) { continue; } if (i == 5) { break; } \
       for (int j = 0; j < i; ++j) { if (j == 3) { break; } s += j; } s += i * 10; } \
       int k = 4; while (k > 0) { s += k; k--; } do { s += 7; } while (s < 0); return s; }",
      [ "main" ] );
    ( "switch-fallthrough-default",
      "int Pick(int a) { int r = 0; switch (a) { case 0: r += 1; case 1: r += 2; \
       break; case 2: r += 4; default: r += 8; } return r; }\n\
       int main() { return Pick(0) + Pick(1) * 10 + Pick(2) * 100 + Pick(9) * 1000; }",
      [ "main" ] );
    ( "goto-forward-backward",
      "int main() { int r = 0; int n = 0; goto mid; top: n++; r += 100; \
       mid: r += 1; if (n < 2) { goto top; } return r + n; }",
      [ "main" ] );
    ( "recursion-and-globals",
      "int g_calls = 0;\n\
       int Fact(int n) { g_calls++; if (n <= 1) { return 1; } return n * Fact(n - 1); }\n\
       int main() { return Fact(5) + g_calls; }",
      [ "main" ] );
    ( "arrays-pointers-sizeof",
      "int main() { int buf[4]; for (int i = 0; i < 4; ++i) { buf[i] = i * i; } \
       int* p = buf; int s = p[0] + *(p + 1) + buf[2] + p[3]; \
       int* q = &buf[1]; *q = 50; \
       return s + buf[1] + (int)sizeof(int) + (int)sizeof(buf[0]); }",
      [ "main" ] );
    ( "structs-members-copies",
      "struct P { int x; int y; };\n\
       void Bump(P p) { p.x = 99; }\n\
       int Get(P& p) { return p.x + p.y; }\n\
       int main() { P a; a.x = 3; a.y = 4; P b; b = a; a.x = 9; \
       Bump(b); P* q = &b; q->y = 11; return Get(b) * 100 + a.x + a.y; }",
      [ "main" ] );
    ( "enums-and-casts",
      "enum Mode { A, B = 5, C };\n\
       int main() { float f = 2.75; int i = (int)f; Mode m = C; \
       return A + B + m + i + (int)(f * 2.0); }",
      [ "main" ] );
    ( "builtins-printf-math",
      "int main() { printf(\"v=%d s=%s f=%f\\n\", 42, \"ok\", 1.5); \
       float a = sqrt(16.0); float b = fmax(a, 3.0); \
       int* m = (int*)malloc(2 * sizeof(int)); m[0] = 2; m[1] = 3; \
       int r = m[0] + m[1] + (int)a + (int)b; free(m); return r; }",
      [ "main" ] );
    ( "try-throw-catch",
      "int main() { int r = 0; try { r = 1; try { throw 7; } catch (int e) { \
       r += e; throw 2; } } catch (int f) { r += f * 10; } return r; }",
      [ "main" ] );
    ( "heap-new-delete",
      "int main() { int* p = new int; *p = 5; int r = *p; delete p; return r; }",
      [ "main" ] );
    ( "kernel-launch",
      "__global__ void Inc(int* p, int n) { int i = blockIdx.x * blockDim.x + threadIdx.x; \
       if (i < n) { p[i] = i * 2; } }\n\
       int main() { int* d; cudaMalloc((void**)&d, 8 * sizeof(int)); \
       Inc<<<2, 4>>>(d, 8); int s = 0; for (int i = 0; i < 8; ++i) { s += d[i]; } \
       cudaFree(d); return s; }",
      [ "main" ] );
    ( "multi-entry-shared-state",
      "int g_acc = 0;\n\
       int seed() { g_acc = 3; return g_acc; }\n\
       int bump() { g_acc = g_acc * 2 + 1; return g_acc; }",
      [ "seed"; "bump"; "bump" ] );
  ]

(* Error paths: both engines must produce the identical Error string
   (location prefix included). *)
let micro_error_programs =
  [
    ( "division-by-zero",
      "int main() { int a = 4; int b = 0; return a / b; }", [ "main" ] );
    ( "null-deref",
      "int main() { int* p = nullptr; return *p; }", [ "main" ] );
    ( "uncaught-throw",
      "int main() { throw 5; }", [ "main" ] );
    ( "unbound-identifier",
      "int main() { return nosuch; }", [ "main" ] );
    ( "index-of-non-pointer",
      "int main() { int a = 3; return a[1]; }", [ "main" ] );
  ]

let test_micro_programs () =
  List.iter (fun (name, src, entries) -> check_micro name src entries)
    micro_programs

let test_micro_error_programs () =
  List.iter
    (fun (name, src, entries) ->
      check_micro name src entries;
      (* and the tree run really did error, so the equality is not vacuous *)
      let tu = parse src in
      let t = run_micro ~engine:Coverage.Scenario.Tree [ tu ] ~entries in
      Alcotest.(check bool)
        (name ^ " errors") true
        (Util.Strutil.contains_sub ~sub:"error " t.m_results))
    micro_error_programs

(* ------------------------------------------------------------------ *)
(* QCheck: random structured programs                                  *)
(* ------------------------------------------------------------------ *)

(* A little statement language over four int locals x0..x3.  Loops are
   bounded by literal trip counts and loop variables are unique per
   nesting depth, so every generated program terminates and never
   shadows a name. *)
type gexpr =
  | Glit of int
  | Gvar of int  (* x0..x3 *)
  | Gbin of string * gexpr * gexpr  (* + - * / % *)
  | Gneg of gexpr
  | Gite of gcond * gexpr * gexpr

and gcond =
  | Gcmp of string * gexpr * gexpr  (* < <= == != *)
  | Gand of gcond * gcond
  | Gor of gcond * gcond
  | Gnot of gcond

type gstmt =
  | Gset of int * gexpr  (* xN = e; *)
  | Gupd of int * string * gexpr  (* xN op= e; *)
  | Gincdec of int * bool  (* xN++; / xN--; *)
  | Gif of gcond * gstmt list * gstmt list
  | Gfor of int * gstmt list * gcond option
      (* for (int lD = 0; lD < trip; ++lD) { body; if (c) break; } *)
  | Gprint of int  (* printf("%d\n", xN); *)

let rec c_of_gexpr = function
  | Glit n -> string_of_int n
  | Gvar i -> Printf.sprintf "x%d" i
  | Gbin (op, a, b) ->
    (* space after "(" so a leading unary minus can't lex as "--" *)
    Printf.sprintf "( %s %s %s)" (c_of_gexpr a) op (c_of_gexpr b)
  | Gneg a -> Printf.sprintf "(- %s)" (c_of_gexpr a)
  | Gite (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (c_of_gcond c) (c_of_gexpr a) (c_of_gexpr b)

and c_of_gcond = function
  | Gcmp (op, a, b) ->
    Printf.sprintf "( %s %s %s)" (c_of_gexpr a) op (c_of_gexpr b)
  | Gand (a, b) -> Printf.sprintf "(%s && %s)" (c_of_gcond a) (c_of_gcond b)
  | Gor (a, b) -> Printf.sprintf "(%s || %s)" (c_of_gcond a) (c_of_gcond b)
  | Gnot a -> Printf.sprintf "(!%s)" (c_of_gcond a)

let rec c_of_gstmt ~depth ~indent s =
  let pad = String.make indent ' ' in
  match s with
  | Gset (i, e) -> Printf.sprintf "%sx%d = %s;" pad i (c_of_gexpr e)
  | Gupd (i, op, e) -> Printf.sprintf "%sx%d %s= %s;" pad i op (c_of_gexpr e)
  | Gincdec (i, up) -> Printf.sprintf "%sx%d%s;" pad i (if up then "++" else "--")
  | Gif (c, t, f) ->
    let body ss =
      String.concat "\n" (List.map (c_of_gstmt ~depth ~indent:(indent + 2)) ss)
    in
    if f = [] then
      Printf.sprintf "%sif (%s) {\n%s\n%s}" pad (c_of_gcond c) (body t) pad
    else
      Printf.sprintf "%sif (%s) {\n%s\n%s} else {\n%s\n%s}" pad (c_of_gcond c)
        (body t) pad (body f) pad
  | Gfor (trip, body, brk) ->
    let v = Printf.sprintf "l%d" depth in
    let inner =
      String.concat "\n"
        (List.map (c_of_gstmt ~depth:(depth + 1) ~indent:(indent + 2)) body)
    in
    let escape =
      match brk with
      | None -> ""
      | Some c ->
        Printf.sprintf "\n%s  if (%s) { break; } else { continue; }"
          pad (c_of_gcond c)
    in
    Printf.sprintf "%sfor (int %s = 0; %s < %d; ++%s) {\n%s%s\n%s}" pad v v
      trip v inner escape pad
  | Gprint i -> Printf.sprintf "%sprintf(\"%%d\\n\", x%d);" pad i

let c_of_gprog (inits, stmts) =
  let decls =
    String.concat " "
      (List.mapi (fun i v -> Printf.sprintf "int x%d = %d;" i v) inits)
  in
  let body = String.concat "\n" (List.map (c_of_gstmt ~depth:0 ~indent:2) stmts) in
  Printf.sprintf
    "int main() {\n  %s\n%s\n  printf(\"%%d %%d %%d %%d\\n\", x0, x1, x2, x3);\n\
    \  return x0 + x1 * 3 + x2 * 5 + x3 * 7;\n}\n"
    decls body

let gprog_gen =
  let open QCheck.Gen in
  let var = int_range 0 3 in
  let rec expr n =
    if n <= 0 then
      oneof [ map (fun i -> Glit i) (int_range (-20) 20); map (fun i -> Gvar i) var ]
    else
      frequency
        [
          (2, map (fun i -> Glit i) (int_range (-20) 20));
          (3, map (fun i -> Gvar i) var);
          ( 4,
            map3
              (fun op a b -> Gbin (op, a, b))
              (oneofl [ "+"; "-"; "*"; "/"; "%" ])
              (expr (n / 2)) (expr (n / 2)) );
          (1, map (fun a -> Gneg a) (expr (n - 1)));
          ( 2,
            map3 (fun c a b -> Gite (c, a, b)) (cond (n / 2)) (expr (n / 2))
              (expr (n / 2)) );
        ]
  and cond n =
    if n <= 0 then
      map3 (fun op a b -> Gcmp (op, a, b))
        (oneofl [ "<"; "<="; "=="; "!=" ]) (expr 0) (expr 0)
    else
      frequency
        [
          ( 3,
            map3 (fun op a b -> Gcmp (op, a, b))
              (oneofl [ "<"; "<="; "=="; "!=" ])
              (expr (n / 2)) (expr (n / 2)) );
          (2, map2 (fun a b -> Gand (a, b)) (cond (n / 2)) (cond (n / 2)));
          (2, map2 (fun a b -> Gor (a, b)) (cond (n / 2)) (cond (n / 2)));
          (1, map (fun a -> Gnot a) (cond (n - 1)));
        ]
  in
  let rec stmt n =
    if n <= 0 then map2 (fun i e -> Gset (i, e)) var (expr 2)
    else
      frequency
        [
          (3, map2 (fun i e -> Gset (i, e)) var (expr 3));
          ( 2,
            map3 (fun i op e -> Gupd (i, op, e)) var
              (oneofl [ "+"; "-"; "*" ]) (expr 2) );
          (1, map2 (fun i up -> Gincdec (i, up)) var bool);
          (1, map (fun i -> Gprint i) var);
          ( 2,
            map3 (fun c t f -> Gif (c, t, f)) (cond 3)
              (stmts (n / 2)) (oneof [ return []; stmts (n / 2) ]) );
          ( 2,
            map3 (fun trip body brk -> Gfor (trip, body, brk))
              (int_range 1 4) (stmts (n / 2))
              (oneof [ return None; map (fun c -> Some c) (cond 2) ]) );
        ]
  and stmts n = list_size (int_range 1 (max 1 (min 4 n))) (stmt (n / 2)) in
  let inits = list_repeat 4 (int_range (-9) 9) in
  sized (fun n -> pair inits (stmts (min (max n 2) 10)))

let gprog_arb = QCheck.make ~print:c_of_gprog gprog_gen

(* Random programs: the two engines agree on result, printed output and
   the full collector fingerprint (statement hits, branch outcomes,
   MC/DC vectors).  Steps are deliberately NOT compared per program —
   e.g. a bare `&&` in value position can legitimately cost the
   bytecode engine one more tick; the fewer-ticks claim is made (and
   enforced) over the corpus scenario set. *)
let prop_engines_agree =
  QCheck.Test.make ~name:"random programs: bytecode == tree oracle" ~count:150
    gprog_arb
    (fun prog ->
      let tu = parse (c_of_gprog prog) in
      tu.Cfront.Ast.diags = []
      &&
      let t = run_micro ~engine:Coverage.Scenario.Tree [ tu ] ~entries:[ "main" ] in
      let b =
        run_micro ~engine:Coverage.Scenario.Bytecode [ tu ] ~entries:[ "main" ]
      in
      t.m_results = b.m_results && t.m_output = b.m_output
      && t.m_fingerprint = b.m_fingerprint)

(* Every compiled function of every random program is well-formed:
   jump targets in range, one consistent stack depth per pc, depth 0 at
   fall-off — and the recorded max stack matches the validator's. *)
let prop_compiled_well_formed =
  QCheck.Test.make ~name:"random programs: compiled code validates" ~count:150
    gprog_arb
    (fun prog ->
      let tu = parse (c_of_gprog prog) in
      tu.Cfront.Ast.diags = []
      &&
      let p = Coverage.Compile.compile [ tu ] in
      Array.for_all
        (fun (f : Coverage.Bytecode.cfn) ->
          Coverage.Bytecode.validate f = f.Coverage.Bytecode.cf_max_stack)
        p.Coverage.Bytecode.p_fns)

(* ------------------------------------------------------------------ *)
(* Corpus-scale differential over the full scenario set                *)
(* ------------------------------------------------------------------ *)

(* Built ONCE at jobs=1 and shared by every engine/jobs combination:
   statement and decision ids come from a process-global counter, so
   only a single shared parse makes collectors comparable. *)
let coverage_set =
  lazy
    (Util.Pool.set_default_jobs 1;
     Fun.protect ~finally:(fun () -> Util.Pool.set_default_jobs restore_jobs)
       Corpus.Scenario_set.full)

type cov = {
  c_fingerprint : string;
  c_files : string list;
  c_results : (string * string) list;
  c_outputs : (string * string) list;
  c_findings : string list;  (** provenance finding ids, in record order *)
  c_steps : int;  (** sum of per-scenario [env.steps] *)
}

let run_coverage ~engine ~jobs =
  let set = Lazy.force coverage_set in
  Util.Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Util.Pool.set_default_jobs restore_jobs)
  @@ fun () ->
  let (outcomes, files), findings =
    Provenance.collect (fun () ->
        let outcomes =
          Coverage.Scenario.run_all ~engine set.Corpus.Scenario_set.scenarios
        in
        let merged = Coverage.Scenario.merged_collector outcomes in
        let files =
          Coverage.Scenario.score merged
            ~measured:set.Corpus.Scenario_set.measured
            set.Corpus.Scenario_set.tus
        in
        (outcomes, files))
  in
  {
    c_fingerprint =
      Coverage.Collector.fingerprint
        (Coverage.Scenario.merged_collector outcomes);
    c_files =
      List.map
        (fun (f : Coverage.Collector.file_coverage) ->
          let pairs_hit, pairs_total =
            List.fold_left
              (fun (h, t) (fc : Coverage.Collector.func_coverage) ->
                ( h + fc.Coverage.Collector.conditions_hit,
                  t + fc.Coverage.Collector.conditions_total ))
              (0, 0) f.Coverage.Collector.functions
          in
          Printf.sprintf "%s stmt=%.6f branch=%.6f mcdc=%.6f pairs=%d/%d"
            f.Coverage.Collector.file f.Coverage.Collector.stmt_pct
            f.Coverage.Collector.branch_pct f.Coverage.Collector.mcdc_pct
            pairs_hit pairs_total)
        files;
    c_results =
      List.concat_map
        (fun (o : Coverage.Scenario.outcome) ->
          List.map
            (fun (entry, r) ->
              ( o.Coverage.Scenario.o_name ^ "/" ^ entry,
                match r with
                | Ok v -> "ok " ^ Coverage.Value.to_string v
                | Error e -> "error " ^ e ))
            o.Coverage.Scenario.o_results)
        outcomes;
    c_outputs =
      List.map
        (fun (o : Coverage.Scenario.outcome) ->
          (o.Coverage.Scenario.o_name, o.Coverage.Scenario.o_output))
        outcomes;
    c_findings = List.map (fun f -> f.Provenance.f_id) findings;
    c_steps =
      List.fold_left
        (fun acc (o : Coverage.Scenario.outcome) ->
          acc + o.Coverage.Scenario.o_steps)
        0 outcomes;
  }

(* The tree oracle runs sequentially: jobs=1 is literally List.map. *)
let tree_oracle = lazy (run_coverage ~engine:Coverage.Scenario.Tree ~jobs:1)

let check_engine_equal ~name bc =
  let oracle = Lazy.force tree_oracle in
  Alcotest.(check string)
    (name ^ ": merged collector fingerprint")
    oracle.c_fingerprint bc.c_fingerprint;
  Alcotest.(check (list string))
    (name ^ ": per-file coverage lines") oracle.c_files bc.c_files;
  Alcotest.(check (list (pair string string)))
    (name ^ ": per-scenario results") oracle.c_results bc.c_results;
  Alcotest.(check (list (pair string string)))
    (name ^ ": per-scenario outputs") oracle.c_outputs bc.c_outputs;
  Alcotest.(check (list string))
    (name ^ ": provenance finding ids") oracle.c_findings bc.c_findings

let test_oracle_stable () =
  let a = Lazy.force tree_oracle in
  let b = run_coverage ~engine:Coverage.Scenario.Tree ~jobs:1 in
  Alcotest.(check string) "sequential fingerprints agree" a.c_fingerprint
    b.c_fingerprint;
  Alcotest.(check (list string)) "sequential file lines agree" a.c_files
    b.c_files;
  Alcotest.(check int) "sequential steps agree" a.c_steps b.c_steps;
  Alcotest.(check bool) "scenario set nonempty" true (a.c_results <> []);
  Alcotest.(check bool) "findings recorded" true (a.c_findings <> [])

(* At the ambient jobs value: under `make check-par` this runs the
   bytecode engine at ADCHECK_JOBS=1, 2 and 8 against the same oracle. *)
let test_bytecode_ambient_jobs () =
  let bc = run_coverage ~engine:Coverage.Scenario.Bytecode ~jobs:restore_jobs in
  check_engine_equal
    ~name:(Printf.sprintf "bytecode at jobs=%d" restore_jobs)
    bc

let test_bytecode_jobs2 () =
  check_engine_equal ~name:"bytecode at jobs=2"
    (run_coverage ~engine:Coverage.Scenario.Bytecode ~jobs:2)

(* The acceptance claim: the bytecode engine executes the whole
   scenario set in strictly fewer recorded ticks than the tree walker
   at jobs=1 (steps are jobs-invariant; both engines tick through the
   same [Interp.tick]). *)
let test_bytecode_fewer_steps () =
  let tree = Lazy.force tree_oracle in
  let bc = run_coverage ~engine:Coverage.Scenario.Bytecode ~jobs:1 in
  Alcotest.(check bool)
    (Printf.sprintf "bytecode steps (%d) < tree steps (%d)" bc.c_steps
       tree.c_steps)
    true
    (bc.c_steps > 0 && bc.c_steps < tree.c_steps)

(* Every function the corpus compiles to is well-formed bytecode. *)
let test_corpus_validates () =
  let set = Lazy.force coverage_set in
  let distinct =
    List.fold_left
      (fun acc (sc : Coverage.Scenario.t) ->
        let tus = sc.Coverage.Scenario.sc_tus in
        if
          List.exists
            (fun other ->
              List.compare_lengths other tus = 0
              && List.for_all2 ( == ) other tus)
            acc
        then acc
        else tus :: acc)
      [] set.Corpus.Scenario_set.scenarios
  in
  let validated = ref 0 in
  List.iter
    (fun tus ->
      let p = Coverage.Compile.compile tus in
      Array.iter
        (fun (f : Coverage.Bytecode.cfn) ->
          let depth =
            try Coverage.Bytecode.validate f
            with Coverage.Bytecode.Invalid msg ->
              Alcotest.failf "%s: invalid bytecode: %s"
                f.Coverage.Bytecode.cf_qname msg
          in
          Alcotest.(check int)
            (f.Coverage.Bytecode.cf_qname ^ ": recorded max stack")
            depth f.Coverage.Bytecode.cf_max_stack;
          incr validated)
        p.Coverage.Bytecode.p_fns)
    distinct;
  Alcotest.(check bool) "corpus functions validated" true (!validated > 0)

let () =
  Alcotest.run "bytecode-diff"
    [
      ( "micro",
        [
          Alcotest.test_case "directed programs" `Quick test_micro_programs;
          Alcotest.test_case "error paths" `Quick test_micro_error_programs;
        ] );
      ( "qcheck",
        [
          QCheck_alcotest.to_alcotest prop_engines_agree;
          QCheck_alcotest.to_alcotest prop_compiled_well_formed;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "tree oracle is stable" `Slow test_oracle_stable;
          Alcotest.test_case "bytecode at ambient jobs" `Slow
            test_bytecode_ambient_jobs;
          Alcotest.test_case "bytecode at jobs=2" `Slow test_bytecode_jobs2;
          Alcotest.test_case "bytecode uses fewer steps" `Slow
            test_bytecode_fewer_steps;
          Alcotest.test_case "corpus bytecode validates" `Slow
            test_corpus_validates;
        ] );
    ]
