(** adcheck — ISO 26262 software-guideline assessment toolkit.

    Subcommands mirror the workflow of the paper:
    - [audit]      full assessment of the Apollo-profile corpus
    - [complexity] Figure 3 per-module complexity analysis
    - [misra]      MISRA C:2012-subset + CUDA rule checking
    - [dataflow]   flow-sensitive per-module counts (CFG + fixpoint)
    - [coverage]   Figure 5/6 coverage experiments
    - [gpuperf]    Figure 7/8 open- vs closed-source library comparison
    - [corpus]     write the generated corpus to disk
    - [check]      analyze C/C++/CUDA files from disk
    - [callgraph]  resolution-accounted call graph (+ Graphviz DOT)
    - [interproc]  whole-program summaries: SCCs, purity, coupling, depth
    - [explain]    render one finding's provenance witness chain *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared options                                                       *)
(* ------------------------------------------------------------------ *)

let seed_arg =
  let doc = "Generator seed; every figure is deterministic in the seed." in
  Arg.(value & opt int 2019 & info [ "seed" ] ~docv:"SEED" ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace-event JSON of the run to $(docv) (open it in \
     chrome://tracing or https://ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let stats_arg =
  let doc = "Print telemetry summary tables (spans, counters, hot functions) after the run." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let verbose_arg =
  let doc = "Log progress to stderr (same as ADCHECK_LOG=info; ADCHECK_LOG=debug goes further)." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel analysis stages (per-file parsing, \
     per-rule MISRA checking, per-function dataflow solving).  $(b,1) runs \
     the exact sequential code path — the oracle the differential tests \
     compare against; reports and telemetry counters are identical at every \
     value.  Overrides the $(b,ADCHECK_JOBS) environment variable."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let metrics_arg =
  let doc =
    "Write the flight-recorder metrics of the run (counters, latency \
     histograms, per-phase GC deltas, pool utilization) to $(docv) as \
     adcheck-metrics/1 JSON — the record $(b,adcheck bench-diff) compares."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let evidence_arg =
  let doc =
    "Write the provenance journal of the run — every finding with its \
     stable id and witness chain — to $(docv) as adcheck-evidence/1 JSONL.  \
     Ids resolve with $(b,adcheck explain); the journal is byte-identical \
     at every --jobs value."
  in
  Arg.(value & opt (some string) None & info [ "evidence" ] ~docv:"FILE" ~doc)

let cache_arg =
  let doc =
    "Persistent content-addressed artifact cache in $(docv) (created if \
     missing).  Analysis artifacts — parse trees, per-file dataflow \
     fixpoints, per-rule MISRA results, compiled bytecode, coverage-phase \
     outcomes — are served warm when their content keys match and \
     invalidated when a file or one of its include/call-graph dependencies \
     changes.  Off by default: the cold jobs=1 run stays the oracle, and \
     warm runs are byte-identical to it (reports, evidence journals, \
     finding ids).  Hit/miss/invalidation counters flow through the \
     $(b,cache.*) flight-recorder counters ($(b,--metrics))."
  in
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR" ~doc)

(* An unwritable output path is a user error, not a crash: one line on
   stderr, exit 1.  The Sys_error message already names the path. *)
let try_write what f =
  try f ()
  with Sys_error e ->
    Printf.eprintf "adcheck: cannot write %s: %s\n" what e;
    exit 1

(** Bundle of the global instrumentation/concurrency flags, shared by
    every subcommand. *)
let telemetry_term =
  Term.(
    const (fun trace stats metrics evidence verbose jobs cache ->
        (trace, stats, metrics, evidence, verbose, jobs, cache))
    $ trace_arg $ stats_arg $ metrics_arg $ evidence_arg $ verbose_arg
    $ jobs_arg $ cache_arg)

(** Run [f] under a per-subcommand telemetry span; afterwards write the
    Chrome trace, the metrics record, the evidence journal and/or print
    the stats tables when requested.  The exporters run even if [f]
    raises, so a failed run still leaves a trace to look at. *)
let with_telemetry ~cmd (trace, stats, metrics, evidence, verbose, jobs, cache_dir)
    f =
  if verbose && Util.Log.level () = Util.Log.Warn then
    Util.Log.set_level Util.Log.Info;
  Option.iter Util.Pool.set_default_jobs jobs;
  if trace <> None || metrics <> None || stats then Telemetry.set_enabled true;
  (match cache_dir with
   | Some d ->
     (try Cache.set_global (Some (Cache.open_dir d))
      with Sys_error e ->
        Printf.eprintf "adcheck: cannot open cache directory: %s\n" e;
        exit 1)
   | None -> ());
  let finish () =
    (match (Cache.global (), cache_dir) with
     | Some c, Some _ ->
       let s = Cache.stats c in
       Util.Log.info
         "cache %s: %d hit(s), %d miss(es), %d store(s), %d invalidated, %d \
          corrupt"
         (Cache.dir c) s.Cache.hits s.Cache.misses s.Cache.stores
         s.Cache.invalidated s.Cache.corrupt
     | _ -> ());
    (match trace with
     | Some path ->
       try_write "Chrome trace" (fun () -> Telemetry.write_chrome_trace ~path);
       Util.Log.info "wrote Chrome trace to %s" path
     | None -> ());
    (match metrics with
     | Some path ->
       try_write "metrics" (fun () -> Telemetry.write_metrics ~path ());
       Util.Log.info "wrote metrics to %s" path
     | None -> ());
    (match evidence with
     | Some path ->
       try_write "evidence journal" (fun () ->
           Provenance.write_journal ~path ());
       Util.Log.info "wrote evidence journal to %s" path
     | None -> ());
    if stats then print_string (Telemetry.render_stats ())
  in
  Util.Log.debug "starting %s" cmd;
  Fun.protect ~finally:finish (fun () ->
      Telemetry.with_span ~cat:"adcheck" ("adcheck." ^ cmd) f)

let scale_arg =
  let doc = "Corpus scale: $(b,full) (228k LOC, as the paper) or $(b,small) (~18k LOC, fast)." in
  Arg.(value & opt (enum [ ("full", `Full); ("small", `Small) ]) `Full
       & info [ "scale" ] ~docv:"SCALE" ~doc)

let specs_of = function
  | `Full -> Corpus.Apollo_profile.full
  | `Small -> Corpus.Apollo_profile.small

let gpu_ratios () =
  let d = Gpuperf.Device.titan_v in
  List.map (fun (l, r) -> (l, r)) (Gpuperf.Suites.gemm_comparison ~device:d)
  @ List.map (fun (l, _, r) -> (l, r)) (Gpuperf.Suites.conv_comparison ~device:d)

(* ------------------------------------------------------------------ *)
(* audit                                                                *)
(* ------------------------------------------------------------------ *)

let audit_cmd =
  let run seed scale tele =
    with_telemetry ~cmd:"audit" tele @@ fun () ->
    Util.Log.info "auditing the Apollo-profile corpus (seed %d)" seed;
    let audit =
      Iso26262.Audit.run ~seed ~specs:(specs_of scale)
        ~open_vs_closed:(gpu_ratios ()) ()
    in
    print_string (Iso26262.Audit.render audit)
  in
  let doc = "Run the complete ISO 26262 Part 6 assessment (Tables 1-3, Figures 3-6, Observations)." in
  Cmd.v (Cmd.info "audit" ~doc) Term.(const run $ seed_arg $ scale_arg $ telemetry_term)

(* ------------------------------------------------------------------ *)
(* complexity                                                           *)
(* ------------------------------------------------------------------ *)

let format_arg =
  let doc = "Output format: $(b,text), $(b,md) (GitHub markdown) or $(b,csv)." in
  Arg.(value
       & opt (enum [ ("text", Util.Table.Text); ("md", Util.Table.Markdown);
                     ("csv", Util.Table.Csv) ])
           Util.Table.Text
       & info [ "format" ] ~docv:"FORMAT" ~doc)

let complexity_cmd =
  let run seed scale format tele =
    with_telemetry ~cmd:"complexity" tele @@ fun () ->
    let project = Corpus.Generator.generate ~seed (specs_of scale) in
    let parsed = Cfront.Project.parse project in
    let metrics = Iso26262.Project_metrics.of_parsed parsed in
    let tbl =
      List.fold_left
        (fun tbl (mm : Iso26262.Project_metrics.module_metrics) ->
          let c = mm.Iso26262.Project_metrics.complexity in
          Util.Table.add_row tbl
            [ mm.Iso26262.Project_metrics.modname;
              string_of_int c.Metrics.Complexity.loc;
              string_of_int c.Metrics.Complexity.n_functions;
              string_of_int c.Metrics.Complexity.over_10;
              string_of_int c.Metrics.Complexity.over_20;
              string_of_int c.Metrics.Complexity.over_50;
              string_of_int c.Metrics.Complexity.cc_max ])
        (Util.Table.make ~title:"Figure 3: complexity per module"
           ~header:[ "module"; "LOC"; "functions"; "CC>10"; "CC>20"; "CC>50"; "CC max" ]
           ~aligns:[ Util.Table.Left; Util.Table.Right; Util.Table.Right;
                     Util.Table.Right; Util.Table.Right; Util.Table.Right;
                     Util.Table.Right ]
           ())
        metrics.Iso26262.Project_metrics.modules
    in
    print_string (Util.Table.render_as format tbl)
  in
  let doc = "Per-module cyclomatic complexity, LOC and function counts (Figure 3)." in
  Cmd.v (Cmd.info "complexity" ~doc)
    Term.(const run $ seed_arg $ scale_arg $ format_arg $ telemetry_term)

(* ------------------------------------------------------------------ *)
(* misra                                                                *)
(* ------------------------------------------------------------------ *)

let misra_cmd =
  let rule_arg =
    let doc = "Show individual violations of $(docv) (e.g. 15.1, CUDA-2)." in
    Arg.(value & opt (some string) None & info [ "rule" ] ~docv:"RULE" ~doc)
  in
  let limit_arg =
    let doc = "Maximum violations to list with --rule." in
    Arg.(value & opt int 20 & info [ "limit" ] ~docv:"N" ~doc)
  in
  let run seed scale rule limit tele =
    with_telemetry ~cmd:"misra" tele @@ fun () ->
    let project = Corpus.Generator.generate ~seed (specs_of scale) in
    let parsed = Cfront.Project.parse project in
    let report = Misra.Registry.run_project parsed in
    match rule with
    | None ->
      print_string (Misra.Registry.render_summary report);
      Printf.printf "rule compliance: %.0f%% (%d of %d rules clean)\n"
        (100.0 *. Misra.Registry.rule_compliance report)
        (report.Misra.Registry.rules_checked - report.Misra.Registry.rules_violated)
        report.Misra.Registry.rules_checked
    | Some id -> (
        match
          List.find_opt
            (fun ((r : Misra.Rule.t), _) -> r.Misra.Rule.id = id)
            report.Misra.Registry.per_rule
        with
        | None -> Util.Log.error "unknown rule %s" id
        | Some (r, vs) ->
          Printf.printf "%s (%s, %s): %d violations\n" r.Misra.Rule.id
            r.Misra.Rule.title
            (Misra.Rule.category_name r.Misra.Rule.category)
            (List.length vs);
          List.iteri
            (fun i (v : Misra.Rule.violation) ->
              if i < limit then
                Printf.printf "  %s: %s\n"
                  (Cfront.Loc.to_string v.Misra.Rule.loc)
                  v.Misra.Rule.message)
            vs)
  in
  let doc = "Check the corpus against the MISRA C:2012 subset and the CUDA extension rules." in
  Cmd.v (Cmd.info "misra" ~doc)
    Term.(const run $ seed_arg $ scale_arg $ rule_arg $ limit_arg $ telemetry_term)

(* ------------------------------------------------------------------ *)
(* dataflow                                                             *)
(* ------------------------------------------------------------------ *)

let dataflow_cmd =
  let function_arg =
    let doc = "List individual findings for functions whose qualified name contains $(docv)." in
    Arg.(value & opt (some string) None & info [ "function" ] ~docv:"NAME" ~doc)
  in
  let run seed scale format fname tele =
    with_telemetry ~cmd:"dataflow" tele @@ fun () ->
    let project = Corpus.Generator.generate ~seed (specs_of scale) in
    let parsed = Cfront.Project.parse project in
    match fname with
    | None ->
      let metrics = Iso26262.Project_metrics.of_parsed parsed in
      print_string
        (Util.Table.render_as format (Iso26262.Report.dataflow_table metrics))
    | Some needle ->
      let matched = ref 0 in
      List.iter
        (fun fn ->
          let name = Cfront.Ast.qualified_name fn in
          let contains hay =
            let n = String.length needle and h = String.length hay in
            let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
            n = 0 || at 0
          in
          match fn.Cfront.Ast.f_body with
          | Some _ when contains name ->
            incr matched;
            let cfg = Dataflow.Cfg.of_func fn in
            Printf.printf "== %s: %d blocks, %d edges\n" name
              (Dataflow.Cfg.n_blocks cfg) (Dataflow.Cfg.n_edges cfg);
            List.iter
              (fun loc ->
                Printf.printf "  unreachable: %s\n" (Cfront.Loc.to_string loc))
              (Dataflow.Analyses.unreachable_regions cfg);
            List.iter
              (fun (d : Dataflow.Analyses.dead_store) ->
                Printf.printf "  dead store:  %s %s\n"
                  (Cfront.Loc.to_string d.Dataflow.Analyses.d_loc)
                  d.Dataflow.Analyses.d_var)
              (Dataflow.Analyses.dead_stores cfg);
            List.iter
              (fun (u : Dataflow.Analyses.uninit_finding) ->
                Printf.printf "  uninit read: %s %s\n"
                  (Cfront.Loc.to_string u.Dataflow.Analyses.u_use_loc)
                  u.Dataflow.Analyses.u_var)
              (Dataflow.Analyses.uninit_reads cfg);
            List.iter
              (fun (c : Dataflow.Analyses.const_cond) ->
                if c.Dataflow.Analyses.c_propagated then
                  Printf.printf "  const cond:  %s always %b\n"
                    (Cfront.Loc.to_string c.Dataflow.Analyses.c_loc)
                    c.Dataflow.Analyses.c_value)
              (Dataflow.Analyses.constant_conditions cfg)
          | _ -> ())
        (Cfront.Project.all_functions parsed);
      if !matched = 0 then Util.Log.error "no defined function matches %s" needle
  in
  let doc =
    "Flow-sensitive analysis over the corpus: CFG sizes, unreachable regions, \
     dead stores, uninitialized reads and propagated constant conditions per module."
  in
  Cmd.v (Cmd.info "dataflow" ~doc)
    Term.(const run $ seed_arg $ scale_arg $ format_arg $ function_arg $ telemetry_term)

(* ------------------------------------------------------------------ *)
(* coverage                                                             *)
(* ------------------------------------------------------------------ *)

let coverage_cmd =
  let subject_arg =
    let doc =
      "Coverage subject: $(b,yolo) (Figure 5), $(b,stencil) (Figure 6) or \
       $(b,combined) (the full scenario set — real-scenario tests, fault \
       injection and testgen probes — run scenario-parallel across the \
       worker pool and merged; merged figures are identical at every \
       --jobs value)."
    in
    Arg.(value
         & opt (enum [ ("yolo", `Yolo); ("stencil", `Stencil);
                       ("combined", `Combined) ])
             `Yolo
         & info [ "subject" ] ~docv:"SUBJECT" ~doc)
  in
  let engine_arg =
    let doc =
      "Interpreter engine: $(b,bytecode) (the default: each shared parse \
       is compiled once to flat bytecode and dispatched with slot-indexed \
       locals — same coverage, output and results as the tree walker in \
       fewer interpreter steps) or $(b,tree) (the tree-walking \
       differential oracle)."
    in
    Arg.(value
         & opt
             (enum
                [ (Coverage.Scenario.engine_name Coverage.Scenario.Tree,
                   Coverage.Scenario.Tree);
                  (Coverage.Scenario.engine_name Coverage.Scenario.Bytecode,
                   Coverage.Scenario.Bytecode) ])
             Coverage.Scenario.Bytecode
         & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let run subject engine tele =
    with_telemetry ~cmd:"coverage" tele @@ fun () ->
    match subject with
    | `Combined ->
      let set = Corpus.Scenario_set.full () in
      let outcomes =
        Coverage.Scenario.run_all ~engine set.Corpus.Scenario_set.scenarios
      in
      List.iter
        (fun (name, entry, err) ->
          Util.Log.info "scenario %s/%s faulted: %s" name entry err)
        (Coverage.Scenario.failures outcomes);
      let merged = Coverage.Scenario.merged_collector outcomes in
      let files =
        Coverage.Scenario.score merged
          ~measured:set.Corpus.Scenario_set.measured
          set.Corpus.Scenario_set.tus
      in
      Printf.printf "scenarios run: %d\n" (List.length outcomes);
      print_string
        (Iso26262.Report.render_coverage
           ~title:
             "combined coverage: real scenarios + fault injection + testgen probes"
           files)
    | (`Yolo | `Stencil) as subject ->
      let tus, measured, entry, title =
        match subject with
        | `Yolo ->
          (Corpus.Yolo_src.parse_all (),
           List.map fst Corpus.Yolo_src.measured_files,
           Corpus.Yolo_src.entry,
           "object detection (YOLO) coverage under real-scenario tests")
        | `Stencil ->
          (Corpus.Stencil_src.parse_all (),
           List.map fst Corpus.Stencil_src.measured_files,
           Corpus.Stencil_src.entry,
           "CUDA stencils executed on the CPU (cuda4cpu)")
      in
      let result = Cudasim.Runner.run ~engine ~entry ~measured tus in
      (match result.Cudasim.Runner.exit_value with
       | Ok _ -> ()
       | Error e -> Util.Log.error "execution failed: %s" e);
      print_string result.Cudasim.Runner.output;
      print_string (Iso26262.Report.render_coverage ~title result.Cudasim.Runner.files)
  in
  let doc = "Run the dynamic coverage experiments (statement, branch, MC/DC)." in
  Cmd.v (Cmd.info "coverage" ~doc)
    Term.(const run $ subject_arg $ engine_arg $ telemetry_term)

(* ------------------------------------------------------------------ *)
(* gpuperf                                                              *)
(* ------------------------------------------------------------------ *)

let gpuperf_cmd =
  let experiment_arg =
    let doc = "Which comparison: $(b,fig7), $(b,fig8a) or $(b,fig8b)." in
    Arg.(value & opt (enum [ ("fig7", `F7); ("fig8a", `F8a); ("fig8b", `F8b) ]) `F7
         & info [ "experiment" ] ~docv:"EXP" ~doc)
  in
  let gpu_arg =
    let doc = "GPU model: $(b,titanv), $(b,1080ti) or $(b,px2)." in
    Arg.(value
         & opt (enum [ ("titanv", Gpuperf.Device.titan_v);
                       ("1080ti", Gpuperf.Device.gtx_1080ti);
                       ("px2", Gpuperf.Device.drive_px2_gpu) ])
             Gpuperf.Device.titan_v
         & info [ "gpu" ] ~docv:"GPU" ~doc)
  in
  let run experiment gpu tele =
    with_telemetry ~cmd:"gpuperf" tele @@ fun () ->
    match experiment with
    | `F7 ->
      List.iter
        (fun (r : Gpuperf.Yolo_bench.row) ->
          Printf.printf "%-10s %-7s %10.2f ms %8.1f fps %8.2fx  (%s)\n"
            r.Gpuperf.Yolo_bench.impl
            (if r.Gpuperf.Yolo_bench.closed_source then "closed" else "open")
            r.Gpuperf.Yolo_bench.total_ms r.Gpuperf.Yolo_bench.fps
            r.Gpuperf.Yolo_bench.vs_baseline r.Gpuperf.Yolo_bench.device_name)
        (Gpuperf.Yolo_bench.run ~gpu ~cpu:Gpuperf.Device.xeon_e5 ())
    | `F8a ->
      List.iter
        (fun (label, ratio) -> Printf.printf "%-40s %.2f\n" label ratio)
        (Gpuperf.Suites.gemm_comparison ~device:gpu)
    | `F8b ->
      List.iter
        (fun (label, domain, ratio) ->
          Printf.printf "%-24s %-14s %.2f\n" label domain ratio)
        (Gpuperf.Suites.conv_comparison ~device:gpu)
  in
  let doc = "Open- vs closed-source GPU library performance model (Figures 7, 8a, 8b)." in
  Cmd.v (Cmd.info "gpuperf" ~doc)
    Term.(const run $ experiment_arg $ gpu_arg $ telemetry_term)

(* ------------------------------------------------------------------ *)
(* corpus                                                               *)
(* ------------------------------------------------------------------ *)

let corpus_cmd =
  let out_arg =
    let doc = "Directory to write the generated sources into." in
    Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"DIR" ~doc)
  in
  let run seed scale out tele =
    with_telemetry ~cmd:"corpus" tele @@ fun () ->
    let project = Corpus.Generator.generate ~seed (specs_of scale) in
    let files = Cfront.Project.all_files project in
    List.iter
      (fun (f : Cfront.Project.source_file) ->
        let path = Filename.concat out f.Cfront.Project.path in
        let rec mkdirs d =
          if d <> "." && d <> "/" && not (Sys.file_exists d) then begin
            mkdirs (Filename.dirname d);
            Sys.mkdir d 0o755
          end
        in
        mkdirs (Filename.dirname path);
        let oc = open_out path in
        output_string oc f.Cfront.Project.content;
        close_out oc)
      files;
    Printf.printf "wrote %d files under %s\n" (List.length files) out
  in
  let doc = "Write the generated Apollo-profile corpus to disk for inspection or external tools." in
  Cmd.v (Cmd.info "corpus" ~doc)
    Term.(const run $ seed_arg $ scale_arg $ out_arg $ telemetry_term)

(* ------------------------------------------------------------------ *)
(* check: analyze user-provided files                                   *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let files_arg =
    let doc = "C/C++/CUDA source files to analyze." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let run paths tele =
    with_telemetry ~cmd:"check" tele @@ fun () ->
    let read path =
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let sources =
      List.map
        (fun path ->
          { Cfront.Project.path; modname = "user"; header = false;
            content = read path })
        paths
    in
    let project =
      Cfront.Project.make ~name:"user"
        [ { Cfront.Project.m_name = "user"; m_files = sources } ]
    in
    let parsed = Cfront.Project.parse project in
    List.iter
      (fun (pf : Cfront.Project.parsed_file) ->
        let tu = pf.Cfront.Project.tu in
        Printf.printf "== %s\n" tu.Cfront.Ast.tu_file;
        List.iter (fun d -> Printf.printf "  parse: %s\n" d) tu.Cfront.Ast.diags;
        List.iter
          (fun (c : Metrics.Complexity.func_cc) ->
            Printf.printf "  CC %3d  %s\n" c.Metrics.Complexity.cc
              (Cfront.Ast.qualified_name c.Metrics.Complexity.fn))
          (Metrics.Complexity.of_functions (Cfront.Ast.functions_of_tu tu)))
      parsed.Cfront.Project.files;
    let report = Misra.Registry.run_project parsed in
    print_string (Misra.Registry.render_summary report)
  in
  let doc = "Parse C/C++/CUDA files from disk and report complexity plus MISRA-subset violations." in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ files_arg $ telemetry_term)

(* ------------------------------------------------------------------ *)
(* callgraph / interproc                                                *)
(* ------------------------------------------------------------------ *)

let dot_arg =
  let doc =
    "Also write the call graph as Graphviz DOT to $(docv), with recursion \
     cycles clustered (render with: dot -Tsvg $(docv) -o graph.svg)."
  in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)

let callgraph_cmd =
  let run seed scale dot tele =
    with_telemetry ~cmd:"callgraph" tele @@ fun () ->
    let project = Corpus.Generator.generate ~seed (specs_of scale) in
    let parsed = Cfront.Project.parse project in
    let graph =
      Cfront.Callgraph.build (Cfront.Project.all_functions parsed)
    in
    let r = graph.Cfront.Callgraph.resolution in
    Printf.printf "functions: %d   edges: %d\n"
      (List.length graph.Cfront.Callgraph.nodes)
      (List.length graph.Cfront.Callgraph.edges);
    Printf.printf
      "call sites: %d (%d resolved, %d guessed, %d ambiguous, %d unresolved, \
       %d indirect)\n"
      r.Cfront.Callgraph.total_sites r.Cfront.Callgraph.resolved
      r.Cfront.Callgraph.guessed r.Cfront.Callgraph.ambiguous
      r.Cfront.Callgraph.unresolved r.Cfront.Callgraph.indirect;
    Printf.printf "kernel launches: %d   function pointers taken: %d\n"
      r.Cfront.Callgraph.kernel_launches
      (List.length r.Cfront.Callgraph.fnptr_taken);
    (match Cfront.Callgraph.recursion_cycles graph with
     | [] -> print_string "recursion cycles: none\n"
     | cycles ->
       Printf.printf "recursion cycles: %d\n" (List.length cycles);
       List.iter
         (fun cycle ->
           Printf.printf "  %s\n" (String.concat " -> " cycle))
         cycles);
    match dot with
    | None -> ()
    | Some path ->
      try_write "DOT call graph" (fun () -> Interproc.Dot.write ~path graph);
      Printf.printf "wrote DOT call graph to %s\n" path
  in
  let doc =
    "Build the whole-program call graph with per-site resolution accounting \
     (resolved/guessed/ambiguous/unresolved/indirect) and recursion cycles."
  in
  Cmd.v (Cmd.info "callgraph" ~doc)
    Term.(const run $ seed_arg $ scale_arg $ dot_arg $ telemetry_term)

let interproc_cmd =
  let run seed scale format dot tele =
    with_telemetry ~cmd:"interproc" tele @@ fun () ->
    let project = Corpus.Generator.generate ~seed (specs_of scale) in
    let parsed = Cfront.Project.parse project in
    let ip = Interproc.Summary.analyze parsed in
    (match format with
     | Util.Table.Text -> print_string (Iso26262.Report.render_interproc ip)
     | (Util.Table.Markdown | Util.Table.Csv) as fmt ->
       print_string
         (Util.Table.render_as fmt (Iso26262.Report.interproc_table ip)));
    match dot with
    | None -> ()
    | Some path ->
      try_write "DOT call graph" (fun () ->
          Interproc.Dot.write ~path ip.Interproc.Summary.graph);
      Printf.printf "wrote DOT call graph to %s\n" path
  in
  let doc =
    "Whole-program summary engine: SCC condensation, bottom-up \
     purity/side-effect summaries, global-coupling matrix, worst-case \
     call/stack depth and cross-call initialization flows."
  in
  Cmd.v (Cmd.info "interproc" ~doc)
    Term.(const run $ seed_arg $ scale_arg $ format_arg $ dot_arg
          $ telemetry_term)

(* ------------------------------------------------------------------ *)
(* wcet                                                                 *)
(* ------------------------------------------------------------------ *)

let wcet_cmd =
  let run seed scale tele =
    with_telemetry ~cmd:"wcet" tele @@ fun () ->
    let project = Corpus.Generator.generate ~seed (specs_of scale) in
    let parsed = Cfront.Project.parse project in
    List.iter
      (fun modname ->
        let pfs = Cfront.Project.parsed_files_of_module parsed modname in
        let s =
          Metrics.Wcet.summarize
            (Metrics.Wcet.of_functions (Cfront.Project.defined_functions pfs))
        in
        Printf.printf "%-14s %4d functions: %4d analyzable, %4d parametric, %3d unanalyzable\n"
          modname s.Metrics.Wcet.total s.Metrics.Wcet.analyzable
          s.Metrics.Wcet.parametric s.Metrics.Wcet.unanalyzable)
      (Cfront.Project.module_names project)
  in
  let doc = "Classify functions by static WCET analyzability (constant/parametric/unbounded loops)." in
  Cmd.v (Cmd.info "wcet" ~doc) Term.(const run $ seed_arg $ scale_arg $ telemetry_term)

(* ------------------------------------------------------------------ *)
(* brook                                                                *)
(* ------------------------------------------------------------------ *)

let brook_cmd =
  let run seed scale tele =
    with_telemetry ~cmd:"brook" tele @@ fun () ->
    let project = Corpus.Generator.generate ~seed (specs_of scale) in
    let parsed = Cfront.Project.parse project in
    let reports = Cudasim.Brook_auto.of_files parsed.Cfront.Project.files in
    List.iter
      (fun (r : Cudasim.Brook_auto.report) ->
        Printf.printf "%-55s %s\n" r.Cudasim.Brook_auto.kernel
          (Cudasim.Brook_auto.classification_name r.Cudasim.Brook_auto.classification))
      reports;
    let s = Cudasim.Brook_auto.summarize reports in
    Printf.printf "\n%d kernels: %d pure stream, %d need gather, %d not portable\n"
      s.Cudasim.Brook_auto.total s.Cudasim.Brook_auto.pure_stream
      s.Cudasim.Brook_auto.needs_gather s.Cudasim.Brook_auto.not_portable
  in
  let doc = "Check CUDA kernels for Brook Auto (certifiable stream subset) portability." in
  Cmd.v (Cmd.info "brook" ~doc) Term.(const run $ seed_arg $ scale_arg $ telemetry_term)

(* ------------------------------------------------------------------ *)
(* faults                                                               *)
(* ------------------------------------------------------------------ *)

let faults_cmd =
  let run tele =
    with_telemetry ~cmd:"faults" tele @@ fun () ->
    List.iter
      (fun (o : Corpus.Fault_src.outcome) ->
        Printf.printf "%-26s %-7s %s\n"
          o.Corpus.Fault_src.scenario.Corpus.Fault_src.sc_name
          (if o.Corpus.Fault_src.faulted then "FAULT" else "ok")
          o.Corpus.Fault_src.detail)
      (Corpus.Fault_src.run_all ())
  in
  let doc = "Run the fault-injection scenarios (invalid inputs against the YOLO entry points)." in
  Cmd.v (Cmd.info "faults" ~doc) Term.(const run $ telemetry_term)

(* ------------------------------------------------------------------ *)
(* serve: long-running audit service over a line protocol               *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let run seed scale tele =
    with_telemetry ~cmd:"serve" tele @@ fun () ->
    let default_seed = seed and default_scale = scale in
    let cache_stats () =
      match Cache.global () with
      | None -> { Cache.hits = 0; misses = 0; stores = 0; corrupt = 0;
                  invalidated = 0 }
      | Some c -> Cache.stats c
    in
    let stats_line (s : Cache.stats) =
      Printf.sprintf "hits=%d misses=%d stores=%d invalidated=%d corrupt=%d"
        s.Cache.hits s.Cache.misses s.Cache.stores s.Cache.invalidated
        s.Cache.corrupt
    in
    (* one request: audit [seed=N] [scale=full|small] *)
    let handle_audit args =
      let seed = ref default_seed and scale = ref default_scale in
      let bad = ref None in
      List.iter
        (fun arg ->
          match String.index_opt arg '=' with
          | Some i -> (
            let k = String.sub arg 0 i in
            let v = String.sub arg (i + 1) (String.length arg - i - 1) in
            match (k, v, int_of_string_opt v) with
            | "seed", _, Some n -> seed := n
            | "scale", "full", _ -> scale := `Full
            | "scale", "small", _ -> scale := `Small
            | _ -> bad := Some arg)
          | None -> bad := Some arg)
        args;
      match !bad with
      | Some arg -> Printf.printf "err bad argument %S\n" arg
      | None ->
        let before = cache_stats () in
        let t0 = Telemetry.now_us () in
        (match
           Iso26262.Audit.run ~seed:!seed ~specs:(specs_of !scale)
             ~open_vs_closed:(gpu_ratios ()) ()
         with
         | audit ->
           let report = Iso26262.Audit.render audit in
           let after = cache_stats () in
           Printf.printf "report %d\n" (String.length report);
           print_string report;
           Printf.printf "done seed=%d hits=%d misses=%d invalidated=%d wall_ms=%.0f\n"
             !seed
             (after.Cache.hits - before.Cache.hits)
             (after.Cache.misses - before.Cache.misses)
             (after.Cache.invalidated - before.Cache.invalidated)
             ((Telemetry.now_us () -. t0) /. 1e3)
         | exception e -> Printf.printf "err audit failed: %s\n" (Printexc.to_string e))
    in
    print_string "adcheck-serve/1 ready\n";
    flush stdout;
    let quit = ref false in
    while not !quit do
      match input_line stdin with
      | exception End_of_file -> quit := true
      | line ->
        let words =
          List.filter (fun s -> s <> "")
            (String.split_on_char ' ' (String.trim line))
        in
        (match words with
         | [] -> ()
         | [ "ping" ] -> print_string "pong\n"
         | [ "quit" ] | [ "exit" ] ->
           print_string "bye\n";
           quit := true
         | [ "stats" ] -> Printf.printf "stats %s\n" (stats_line (cache_stats ()))
         | "audit" :: args -> handle_audit args
         | w :: _ -> Printf.printf "err unknown command %S\n" w);
        flush stdout
    done
  in
  let doc =
    "Run a long-lived audit service over a stdin/stdout line protocol: \
     $(b,ping) -> $(b,pong); $(b,stats) -> cumulative cache counters; \
     $(b,audit [seed=N] [scale=full|small]) -> $(b,report <bytes>) followed \
     by the report and a $(b,done) line with the request's cache \
     hit/miss/invalidation deltas; $(b,quit) ends the session.  With \
     $(b,--cache DIR) repeated requests answer warm from the artifact \
     cache — byte-identical to a cold run — so the service can absorb \
     continuous audit traffic from a CI fleet."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ seed_arg $ scale_arg $ telemetry_term)

(* ------------------------------------------------------------------ *)
(* explain: render one finding's why-chain                              *)
(* ------------------------------------------------------------------ *)

let explain_cmd =
  let id_arg =
    let doc =
      "Finding id to explain (an $(b,F-)… id from an evidence journal or \
       the tool-evidence matrix; a unique prefix of at least 4 characters \
       also resolves)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FINDING-ID" ~doc)
  in
  let run seed scale id tele =
    with_telemetry ~cmd:"explain" tele @@ fun () ->
    (* Re-run the audit (deterministic in the seed) to rebuild the journal
       the id came from, then render the finding's witness chain with
       source excerpts from the same corpus. *)
    let audit =
      Iso26262.Audit.run ~seed ~specs:(specs_of scale)
        ~open_vs_closed:(gpu_ratios ()) ()
    in
    match Provenance.find id with
    | Error e ->
      Printf.eprintf "adcheck: %s\n" e;
      exit 1
    | Ok f ->
      let sources = Hashtbl.create 256 in
      List.iter
        (fun (pf : Cfront.Project.parsed_file) ->
          Hashtbl.replace sources pf.Cfront.Project.file.Cfront.Project.path
            pf.Cfront.Project.file.Cfront.Project.content)
        audit.Iso26262.Audit.parsed.Cfront.Project.files;
      List.iter
        (fun (path, content) -> Hashtbl.replace sources path content)
        (Corpus.Yolo_src.files @ Corpus.Stencil_src.files);
      print_string
        (Provenance.explain ~source:(Hashtbl.find_opt sources) f)
  in
  let doc =
    "Explain one audit finding: resolve its id in the evidence journal and \
     print the full witness chain (rule, dataflow facts, call chain, \
     covering scenario) with source excerpts."
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(const run $ seed_arg $ scale_arg $ id_arg $ telemetry_term)

(* ------------------------------------------------------------------ *)
(* bench-diff: the performance regression gate                          *)
(* ------------------------------------------------------------------ *)

let bench_diff_cmd =
  let old_arg =
    let doc = "Baseline record (adcheck-bench/1 or adcheck-metrics/1 JSON)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD" ~doc)
  in
  let new_arg =
    let doc = "Candidate record to gate (same schema as $(b,OLD))." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW" ~doc)
  in
  let pct_arg =
    let doc =
      "Fail when a latency series (experiment wall time, histogram time sum) \
       grows by more than $(docv) percent over the baseline (and by more than \
       the per-series absolute noise floor).  Counters always compare exactly."
    in
    Arg.(value & opt float 10.0 & info [ "fail-on-regress" ] ~docv:"PCT" ~doc)
  in
  let run old_path new_path pct =
    match (Benchdiff.load old_path, Benchdiff.load new_path) with
    | Error e, _ | _, Error e ->
      Util.Log.error "%s" e;
      exit 2
    | Ok old_r, Ok new_r ->
      let findings = Benchdiff.diff ~fail_on_regress_pct:pct old_r new_r in
      print_string (Benchdiff.render findings);
      if not (Benchdiff.ok findings) then exit 1
  in
  let doc =
    "Compare two performance records and fail on regression: counters and \
     histogram bucket contents exactly, latencies with a threshold.  Exit \
     status 0 when clean, 1 on findings, 2 on unreadable records."
  in
  Cmd.v (Cmd.info "bench-diff" ~doc)
    Term.(const run $ old_arg $ new_arg $ pct_arg)

let () =
  let doc = "ISO 26262 software-guideline assessment for AD software (DAC 2019 reproduction)" in
  let info = Cmd.info "adcheck" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ audit_cmd; complexity_cmd; misra_cmd; dataflow_cmd; coverage_cmd;
            gpuperf_cmd; corpus_cmd; check_cmd; callgraph_cmd; interproc_cmd;
            wcet_cmd; brook_cmd; faults_cmd; serve_cmd; explain_cmd;
            bench_diff_cmd ]))
