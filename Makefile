.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

# Full gate: build (including the bench executable), unit tests, and an
# adcheck dataflow smoke run on the small corpus (exercises generator ->
# parser -> CFG -> fixpoint -> report).
check: build test
	dune build bench/main.exe
	dune exec bin/adcheck.exe -- dataflow --scale small

# Machine-readable performance record: per-experiment wall time plus the
# telemetry counter snapshot on the small corpus.
bench:
	dune build bench/main.exe
	dune exec bench/main.exe -- --scale small --out BENCH_1.json \
	  table1 table2 table3 fig3 fig4 fig5 fig6 fig7 fig8a fig8b observations

clean:
	dune clean
