.PHONY: all build test check check-par bench clean

all: build

build:
	dune build

test:
	dune runtest

# Full gate: build (including the bench executable), unit tests, the
# parallel sweep, and an adcheck dataflow smoke run on the small corpus
# (exercises generator -> parser -> CFG -> fixpoint -> report).
check: build test check-par
	dune build bench/main.exe
	dune exec bin/adcheck.exe -- dataflow --scale small

# Run the whole suite under 1, 2 and 8 worker domains.  ADCHECK_JOBS=1
# is the sequential oracle; any divergence at 2 or 8 is a determinism
# bug in the pool fan-out or the counter merge.  The suite includes the
# coverage differential (test_parallel_determinism): the full scenario
# set replayed in-process at jobs=1/2/4 with byte-identical merged
# collector fingerprints, so every ADCHECK_JOBS value below re-checks
# the scenario-parallel merge as well.  --force because dune does not
# track environment variables as dependencies.
check-par:
	for j in 1 2 8; do \
	  echo "== dune runtest (ADCHECK_JOBS=$$j) =="; \
	  ADCHECK_JOBS=$$j dune runtest --force || exit 1; \
	done

# Machine-readable performance records: per-experiment wall time plus
# telemetry counter snapshots on the small corpus.  BENCH_2.json sweeps
# the table1 pipeline across worker-domain counts (jobs=1 vs jobs=4);
# identical counters across the sweep are part of the record.
# BENCH_3.json sweeps the scenario-parallel coverage phase (the full
# scenario set: real scenarios + fault injection + testgen probes) —
# the per-experiment counters record the scenario count, and the gauges
# record the coverage-phase wall time of the last pass.
# BENCH_4.json sweeps the interprocedural summary engine (SCC-level
# parallel bottom-up propagation); the interproc.* counters must be
# identical across the jobs sweep.
bench:
	dune build bench/main.exe
	dune exec bench/main.exe -- --scale small --out BENCH_1.json \
	  table1 table2 table3 fig3 fig4 fig5 fig6 fig7 fig8a fig8b observations
	dune exec bench/main.exe -- --scale small --jobs 1,4 --out BENCH_2.json \
	  table1
	dune exec bench/main.exe -- --scale small --jobs 1,4 --out BENCH_3.json \
	  scenarios
	dune exec bench/main.exe -- --scale small --jobs 1,4 --out BENCH_4.json \
	  interproc

clean:
	dune clean
