.PHONY: all build test check clean

all: build

build:
	dune build

test:
	dune runtest

# Full gate: build, unit tests, and an adcheck dataflow smoke run on the
# small corpus (exercises generator -> parser -> CFG -> fixpoint -> report).
check: build test
	dune exec bin/adcheck.exe -- dataflow --scale small

clean:
	dune clean
