.PHONY: all build test check check-par check-cache bench bench-diff clean

all: build

build:
	dune build

test:
	dune runtest

# Full gate: build (including the bench executable), unit tests, the
# parallel sweep, an adcheck dataflow smoke run on the small corpus
# (exercises generator -> parser -> CFG -> fixpoint -> report), a
# bench-diff self-compare of a freshly exported adcheck-metrics/1
# record (a record that fails to self-compare means the exporter or
# the gate's schema reader regressed), and a regression gate of a
# fresh METRICS_5-shaped export against the committed METRICS_5.json:
# work-tier counters must match exactly and attributed-timing sums may
# regress at most 50% (wall time on a shared CI box is noisy; the
# threshold catches step changes, not jitter — see `adcheck bench-diff
# --help` for the floor that also ignores sub-millisecond drift).
check: build test check-par check-cache
	dune build bench/main.exe
	dune exec bin/adcheck.exe -- dataflow --scale small \
	  --metrics _build/check-metrics.json
	dune exec bin/adcheck.exe -- bench-diff \
	  _build/check-metrics.json _build/check-metrics.json
	dune exec bench/main.exe -- --scale small --out _build/check-bench5.json \
	  --metrics _build/check-metrics5.json overhead table1
	dune exec bin/adcheck.exe -- bench-diff \
	  METRICS_5.json _build/check-metrics5.json --fail-on-regress 50
	dune exec bench/main.exe -- --scale small --jobs 1,4 \
	  --out _build/check-bench6.json compile
	dune exec bin/adcheck.exe -- bench-diff \
	  BENCH_6.json _build/check-bench6.json --fail-on-regress 50
	dune exec bench/main.exe -- --scale small \
	  --out _build/check-bench7.json incremental
	dune exec bin/adcheck.exe -- bench-diff \
	  BENCH_7.json _build/check-bench7.json --fail-on-regress 50

# Cache differential gate, end-to-end through the CLI: the same audit
# three ways — no cache (the jobs=1 oracle), cold against an empty
# store, then warm from the store the cold run just populated — must
# produce byte-identical reports and adcheck-evidence/1 journals.
# test_cache_diff locks the same contract in-process (plus incremental
# edits, corrupt stores and QCheck edit sequences); this target locks
# the shipped binary's --cache threading.
check-cache: build
	rm -rf _build/check-cache-store
	dune exec bin/adcheck.exe -- audit --scale small --seed 7 --jobs 1 \
	  --evidence _build/cc-oracle.jsonl > _build/cc-oracle.out
	dune exec bin/adcheck.exe -- audit --scale small --seed 7 --jobs 1 \
	  --cache _build/check-cache-store \
	  --evidence _build/cc-cold.jsonl > _build/cc-cold.out
	dune exec bin/adcheck.exe -- audit --scale small --seed 7 --jobs 1 \
	  --cache _build/check-cache-store \
	  --evidence _build/cc-warm.jsonl > _build/cc-warm.out
	cmp _build/cc-oracle.out _build/cc-cold.out
	cmp _build/cc-oracle.out _build/cc-warm.out
	cmp _build/cc-oracle.jsonl _build/cc-cold.jsonl
	cmp _build/cc-oracle.jsonl _build/cc-warm.jsonl

# Run the whole suite under 1, 2 and 8 worker domains.  ADCHECK_JOBS=1
# is the sequential oracle; any divergence at 2 or 8 is a determinism
# bug in the pool fan-out or the counter merge.  The suite includes the
# coverage differential (test_parallel_determinism): the full scenario
# set replayed in-process at jobs=1/2/4 with byte-identical merged
# collector fingerprints, and the flight-recorder differential
# (test_flight_recorder): the work-tier adcheck-metrics/1 record —
# counters AND attributed-timing histogram buckets — byte-identical at
# jobs=1/2/8 under the tick clock.  Every ADCHECK_JOBS value below
# re-checks both merges.  --force because dune does not track
# environment variables as dependencies.
check-par:
	for j in 1 2 8; do \
	  echo "== dune runtest (ADCHECK_JOBS=$$j) =="; \
	  ADCHECK_JOBS=$$j dune runtest --force || exit 1; \
	done
	rm -rf _build/check-par-store
	dune build bin/adcheck.exe
	dune exec bin/adcheck.exe -- audit --scale small --seed 7 --jobs 1 \
	  > _build/cp-oracle.out
	for j in 1 2 8; do \
	  echo "== adcheck audit --cache (jobs=$$j) =="; \
	  dune exec bin/adcheck.exe -- audit --scale small --seed 7 --jobs $$j \
	    --cache _build/check-par-store > _build/cp-cache-$$j.out || exit 1; \
	  cmp _build/cp-oracle.out _build/cp-cache-$$j.out || exit 1; \
	done

# Machine-readable performance records: per-experiment wall time plus
# telemetry counter snapshots on the small corpus.  BENCH_2.json sweeps
# the table1 pipeline across worker-domain counts (jobs=1 vs jobs=4);
# identical counters across the sweep are part of the record.
# BENCH_3.json sweeps the scenario-parallel coverage phase (the full
# scenario set: real scenarios + fault injection + testgen probes) —
# the per-experiment counters record the scenario count, and the gauges
# record the coverage-phase wall time of the last pass.
# BENCH_4.json sweeps the interprocedural summary engine (SCC-level
# parallel bottom-up propagation); the interproc.* counters must be
# identical across the jobs sweep.
# BENCH_5.json measures the flight recorder itself: the overhead
# experiment runs the audit with the recorder off and on and records
# the wall-time ratio in its gauges; METRICS_5.json is the
# adcheck-metrics/1 record of the same process (counters, attributed
# timing histograms, GC/pool runtime telemetry) — the committed example
# of what `adcheck --metrics` and `adcheck bench-diff` consume.
# BENCH_6.json sweeps the two coverage engines (tree-walking oracle vs
# compiled bytecode) over the full scenario set; the per-engine
# coverage.engine.*.steps counters are the work-tier record (exact
# across the jobs sweep — `make check` gates a fresh run against it)
# and the bench.compile.*_ms gauges hold the wall times.
# BENCH_7.json measures the incremental audit cache: the same audit
# cold (empty store), warm (same tree) and after a one-file edit; the
# cache.{hit,miss,invalidate} counters are the work-tier record and
# the bench.incremental.{cold,warm,edit}_ms / *_misses gauges hold the
# per-pass wall times and recompute counts.  The edit pass must
# recompute measurably fewer artifacts than the cold pass.
bench:
	dune build bench/main.exe
	dune exec bench/main.exe -- --scale small --out BENCH_1.json \
	  table1 table2 table3 fig3 fig4 fig5 fig6 fig7 fig8a fig8b observations
	dune exec bench/main.exe -- --scale small --jobs 1,4 --out BENCH_2.json \
	  table1
	dune exec bench/main.exe -- --scale small --jobs 1,4 --out BENCH_3.json \
	  scenarios
	dune exec bench/main.exe -- --scale small --jobs 1,4 --out BENCH_4.json \
	  interproc
	dune exec bench/main.exe -- --scale small --out BENCH_5.json \
	  --metrics METRICS_5.json overhead table1
	dune exec bench/main.exe -- --scale small --jobs 1,4 --out BENCH_6.json \
	  compile
	dune exec bench/main.exe -- --scale small --out BENCH_7.json \
	  incremental

# Regression gate self-check over the committed records: a record must
# always be identical to itself, for both schemas the gate reads
# (adcheck-bench/1 and adcheck-metrics/1).  Run after `make bench` to
# gate a new record against the committed one, e.g.:
#   dune exec bin/adcheck.exe -- bench-diff OLD.json NEW.json --fail-on-regress 10
bench-diff:
	dune build bin/adcheck.exe
	dune exec bin/adcheck.exe -- bench-diff BENCH_5.json BENCH_5.json
	dune exec bin/adcheck.exe -- bench-diff METRICS_5.json METRICS_5.json

clean:
	dune clean
