.PHONY: all build test check check-par bench clean

all: build

build:
	dune build

test:
	dune runtest

# Full gate: build (including the bench executable), unit tests, the
# parallel sweep, and an adcheck dataflow smoke run on the small corpus
# (exercises generator -> parser -> CFG -> fixpoint -> report).
check: build test check-par
	dune build bench/main.exe
	dune exec bin/adcheck.exe -- dataflow --scale small

# Run the whole suite under 1, 2 and 8 worker domains.  ADCHECK_JOBS=1
# is the sequential oracle; any divergence at 2 or 8 is a determinism
# bug in the pool fan-out or the counter merge.  --force because dune
# does not track environment variables as dependencies.
check-par:
	for j in 1 2 8; do \
	  echo "== dune runtest (ADCHECK_JOBS=$$j) =="; \
	  ADCHECK_JOBS=$$j dune runtest --force || exit 1; \
	done

# Machine-readable performance records: per-experiment wall time plus
# telemetry counter snapshots on the small corpus.  BENCH_2.json sweeps
# the table1 pipeline across worker-domain counts (jobs=1 vs jobs=4);
# identical counters across the sweep are part of the record.
bench:
	dune build bench/main.exe
	dune exec bench/main.exe -- --scale small --out BENCH_1.json \
	  table1 table2 table3 fig3 fig4 fig5 fig6 fig7 fig8a fig8b observations
	dune exec bench/main.exe -- --scale small --jobs 1,4 --out BENCH_2.json \
	  table1

clean:
	dune clean
