(** Hand-written YOLO-style object-detection C sources, embedded as
    strings and executed by the {!Coverage} interpreter.

    These play the role of Apollo's object-detection (Darknet/YOLO) code
    in the Figure 5 experiment: the "real-scenario tests" in {!driver}
    exercise the inference path the way Apollo's tests do — which leaves
    error handling, unused activation kinds, unused GEMM transpose modes
    and most config-parsing options unexecuted.  That test/coverage gap is
    exactly the paper's Observation 10.

    The network is tiny (6x6 input) so interpretation is fast; coverage
    ratios do not depend on tensor sizes. *)

let extra_types =
  [ "box"; "detection"; "layer"; "network" ]

(* ------------------------------------------------------------------ *)

let activations_c =
  {|// activations.c
enum ActivationType { LINEAR, LOGISTIC, RELU, LEAKY, TANH_A, ELU };

float activate_scalar(float x, int a) {
  switch (a) {
    case LINEAR:
      return x;
    case LOGISTIC:
      return 1.0 / (1.0 + exp(0.0 - x));
    case RELU:
      if (x > 0.0) {
        return x;
      }
      return 0.0;
    case LEAKY:
      if (x > 0.0) {
        return x;
      }
      return 0.1 * x;
    case TANH_A:
      return tanh(x);
    case ELU:
      if (x >= 0.0) {
        return x;
      }
      return exp(x) - 1.0;
    default:
      return x;
  }
}

float gradient_scalar(float x, int a) {
  switch (a) {
    case LINEAR:
      return 1.0;
    case LOGISTIC:
      return (1.0 - x) * x;
    case RELU:
      if (x > 0.0) {
        return 1.0;
      }
      return 0.0;
    case LEAKY:
      if (x > 0.0) {
        return 1.0;
      }
      return 0.1;
    default:
      return 1.0;
  }
}

void activate_array(float* x, int n, int a) {
  for (int i = 0; i < n; ++i) {
    x[i] = activate_scalar(x[i], a);
  }
}
|}

let gemm_c =
  {|// gemm.c
void gemm_nn(int m, int n, int k, float alpha, float* a, int lda,
             float* b, int ldb, float* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      float part = alpha * a[i * lda + p];
      for (int j = 0; j < n; ++j) {
        c[i * ldc + j] += part * b[p * ldb + j];
      }
    }
  }
}

void gemm_nt(int m, int n, int k, float alpha, float* a, int lda,
             float* b, int ldb, float* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float sum = 0.0;
      for (int p = 0; p < k; ++p) {
        sum += alpha * a[i * lda + p] * b[j * ldb + p];
      }
      c[i * ldc + j] += sum;
    }
  }
}

void gemm_tn(int m, int n, int k, float alpha, float* a, int lda,
             float* b, int ldb, float* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      float part = alpha * a[p * lda + i];
      for (int j = 0; j < n; ++j) {
        c[i * ldc + j] += part * b[p * ldb + j];
      }
    }
  }
}

void gemm_cpu(int ta, int tb, int m, int n, int k, float alpha, float* a,
              int lda, float* b, int ldb, float beta, float* c, int ldc) {
  if (beta != 1.0) {
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        c[i * ldc + j] *= beta;
      }
    }
  }
  if (ta == 0 && tb == 0) {
    gemm_nn(m, n, k, alpha, a, lda, b, ldb, c, ldc);
  } else {
    if (ta == 1 && tb == 0) {
      gemm_tn(m, n, k, alpha, a, lda, b, ldb, c, ldc);
    } else {
      gemm_nt(m, n, k, alpha, a, lda, b, ldb, c, ldc);
    }
  }
}
|}

let im2col_c =
  {|// im2col.c
float im2col_get_pixel(float* im, int height, int width, int row, int col,
                       int channel, int pad) {
  row = row - pad;
  col = col - pad;
  if (row < 0 || col < 0 || row >= height || col >= width) {
    return 0.0;
  }
  return im[col + width * (row + height * channel)];
}

void im2col_cpu(float* data_im, int channels, int height, int width,
                int ksize, int stride, int pad, float* data_col) {
  int height_col = (height + 2 * pad - ksize) / stride + 1;
  int width_col = (width + 2 * pad - ksize) / stride + 1;
  int channels_col = channels * ksize * ksize;
  for (int c = 0; c < channels_col; ++c) {
    int w_offset = c % ksize;
    int h_offset = (c / ksize) % ksize;
    int c_im = c / ksize / ksize;
    for (int h = 0; h < height_col; ++h) {
      for (int w = 0; w < width_col; ++w) {
        int im_row = h_offset + h * stride;
        int im_col = w_offset + w * stride;
        int col_index = (c * height_col + h) * width_col + w;
        data_col[col_index] =
            im2col_get_pixel(data_im, height, width, im_row, im_col, c_im, pad);
      }
    }
  }
}
|}

let blas_c =
  {|// blas.c
void fill_cpu(int n, float alpha, float* x, int incx) {
  if (incx == 1) {
    for (int i = 0; i < n; ++i) {
      x[i] = alpha;
    }
  } else {
    for (int i = 0; i < n; ++i) {
      x[i * incx] = alpha;
    }
  }
}

void copy_cpu(int n, float* x, float* y) {
  for (int i = 0; i < n; ++i) {
    y[i] = x[i];
  }
}

void axpy_cpu(int n, float alpha, float* x, float* y) {
  for (int i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

void scal_cpu(int n, float alpha, float* x) {
  for (int i = 0; i < n; ++i) {
    x[i] *= alpha;
  }
}

void add_bias(float* output, float* biases, int n, int size) {
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < size; ++j) {
      output[i * size + j] += biases[i];
    }
  }
}

void softmax_cpu(float* input, int n, float temp, float* output) {
  float largest = input[0];
  for (int i = 1; i < n; ++i) {
    if (input[i] > largest) {
      largest = input[i];
    }
  }
  float sum = 0.0;
  for (int i = 0; i < n; ++i) {
    float e = 0.0;
    if (temp != 1.0) {
      e = exp(input[i] / temp - largest / temp);
    } else {
      e = exp(input[i] - largest);
    }
    sum += e;
    output[i] = e;
  }
  for (int i = 0; i < n; ++i) {
    output[i] /= sum;
  }
}
|}

let box_c =
  {|// box.c
struct box {
  float x;
  float y;
  float w;
  float h;
};

struct detection {
  box bbox;
  float objectness;
  int cls;
  float prob0;
  float prob1;
};

float overlap_1d(float x1, float w1, float x2, float w2) {
  float l1 = x1 - w1 / 2.0;
  float l2 = x2 - w2 / 2.0;
  float left = l2;
  if (l1 > l2) {
    left = l1;
  }
  float r1 = x1 + w1 / 2.0;
  float r2 = x2 + w2 / 2.0;
  float right = r2;
  if (r1 < r2) {
    right = r1;
  }
  return right - left;
}

float box_intersection(box* a, box* b) {
  float w = overlap_1d(a->x, a->w, b->x, b->w);
  float h = overlap_1d(a->y, a->h, b->y, b->h);
  if (w < 0.0 || h < 0.0) {
    return 0.0;
  }
  return w * h;
}

float box_union_area(box* a, box* b) {
  float i = box_intersection(a, b);
  return a->w * a->h + b->w * b->h - i;
}

float box_iou(box* a, box* b) {
  float u = box_union_area(a, b);
  if (u <= 0.0) {
    return 0.0;
  }
  return box_intersection(a, b) / u;
}

void do_nms(detection* dets, int total, float thresh) {
  for (int i = 0; i < total; ++i) {
    if (dets[i].objectness <= 0.0) {
      continue;
    }
    for (int j = i + 1; j < total; ++j) {
      float iou = box_iou(&dets[i].bbox, &dets[j].bbox);
      if (iou > thresh && dets[j].objectness > 0.0) {
        dets[j].objectness = 0.0;
      }
    }
  }
}
|}

let convolutional_c =
  {|// convolutional_layer.c
layer make_convolutional_layer(int c, int h, int w, int n, int ksize,
                               int stride, int pad, int activation) {
  layer l;
  l.ltype = 0;
  if (c <= 0 || n <= 0 || ksize <= 0) {
    l.out_c = 0;
    return l;
  }
  l.in_c = c;
  l.in_h = h;
  l.in_w = w;
  l.out_c = n;
  l.ksize = ksize;
  l.stride = stride;
  l.pad = pad;
  l.activation = activation;
  l.out_h = (h + 2 * pad - ksize) / stride + 1;
  l.out_w = (w + 2 * pad - ksize) / stride + 1;
  int weight_count = n * c * ksize * ksize;
  l.weights = (float*)malloc(weight_count * sizeof(float));
  l.biases = (float*)malloc(n * sizeof(float));
  l.output = (float*)malloc(n * l.out_h * l.out_w * sizeof(float));
  l.workspace = (float*)malloc(c * ksize * ksize * l.out_h * l.out_w * sizeof(float));
  for (int i = 0; i < weight_count; ++i) {
    l.weights[i] = 0.01 * (float)(i % 11) - 0.05;
  }
  for (int i = 0; i < n; ++i) {
    l.biases[i] = 0.1 * (float)(i % 3);
  }
  return l;
}

void forward_convolutional_layer(layer* l, float* input) {
  int m = l->out_c;
  int k = l->in_c * l->ksize * l->ksize;
  int n = l->out_h * l->out_w;
  fill_cpu(m * n, 0.0, l->output, 1);
  if (l->ksize == 1 && l->stride == 1) {
    gemm_cpu(0, 0, m, n, k, 1.0, l->weights, k, input, n, 1.0, l->output, n);
  } else {
    im2col_cpu(input, l->in_c, l->in_h, l->in_w, l->ksize, l->stride, l->pad,
               l->workspace);
    gemm_cpu(0, 0, m, n, k, 1.0, l->weights, k, l->workspace, n, 1.0,
             l->output, n);
  }
  add_bias(l->output, l->biases, m, n);
  activate_array(l->output, m * n, l->activation);
}
|}

let maxpool_c =
  {|// maxpool_layer.c
layer make_maxpool_layer(int c, int h, int w, int size, int stride) {
  layer l;
  l.ltype = 1;
  l.in_c = c;
  l.in_h = h;
  l.in_w = w;
  l.ksize = size;
  l.stride = stride;
  l.pad = 0;
  l.out_c = c;
  l.out_h = (h - size) / stride + 1;
  l.out_w = (w - size) / stride + 1;
  l.output = (float*)malloc(c * l.out_h * l.out_w * sizeof(float));
  return l;
}

void forward_maxpool_layer(layer* l, float* input) {
  for (int c = 0; c < l->out_c; ++c) {
    for (int i = 0; i < l->out_h; ++i) {
      for (int j = 0; j < l->out_w; ++j) {
        float best = 0.0 - 1000000.0;
        for (int n = 0; n < l->ksize; ++n) {
          for (int m = 0; m < l->ksize; ++m) {
            int row = i * l->stride + n;
            int col = j * l->stride + m;
            if (row >= 0 && row < l->in_h && col >= 0 && col < l->in_w) {
              float v = input[col + l->in_w * (row + l->in_h * c)];
              if (v > best) {
                best = v;
              }
            }
          }
        }
        l->output[j + l->out_w * (i + l->out_h * c)] = best;
      }
    }
  }
}
|}

let region_c =
  {|// region_layer.c
layer make_region_layer(int side, int n_anchors, int classes) {
  layer l;
  l.ltype = 2;
  l.in_h = side;
  l.in_w = side;
  l.n_anchors = n_anchors;
  l.classes = classes;
  l.out_h = side;
  l.out_w = side;
  l.out_c = n_anchors * (classes + 5);
  l.output = (float*)malloc(side * side * l.out_c * sizeof(float));
  return l;
}

int entry_index(layer* l, int anchor, int cell, int entry) {
  int per_anchor = l->classes + 5;
  return anchor * l->out_h * l->out_w * per_anchor + entry * l->out_h * l->out_w + cell;
}

void forward_region_layer(layer* l, float* input, int use_softmax) {
  int cells = l->out_h * l->out_w;
  int total = cells * l->n_anchors * (l->classes + 5);
  copy_cpu(total, input, l->output);
  for (int a = 0; a < l->n_anchors; ++a) {
    for (int cell = 0; cell < cells; ++cell) {
      int obj_index = entry_index(l, a, cell, 4);
      l->output[obj_index] = activate_scalar(l->output[obj_index], LOGISTIC);
      if (use_softmax == 1) {
        int class_index = entry_index(l, a, cell, 5);
        softmax_cpu(l->output + class_index, l->classes, 1.0,
                    l->output + class_index);
      } else {
        for (int k = 0; k < l->classes; ++k) {
          int ci = entry_index(l, a, cell, 5 + k);
          l->output[ci] = activate_scalar(l->output[ci], LOGISTIC);
        }
      }
    }
  }
}

int get_region_detections(layer* l, float thresh, detection* dets) {
  int cells = l->out_h * l->out_w;
  int count = 0;
  for (int a = 0; a < l->n_anchors; ++a) {
    for (int cell = 0; cell < cells; ++cell) {
      int obj_index = entry_index(l, a, cell, 4);
      float objectness = l->output[obj_index];
      if (objectness > thresh) {
        dets[count].objectness = objectness;
        dets[count].bbox.x = (float)(cell % l->out_w) + 0.5;
        dets[count].bbox.y = (float)(cell / l->out_w) + 0.5;
        dets[count].bbox.w = 1.4;
        dets[count].bbox.h = 1.2;
        dets[count].cls = 0;
        count = count + 1;
      }
    }
  }
  return count;
}
|}

let network_c =
  {|// network.c
struct layer {
  int ltype;
  int batch;
  int in_c;
  int in_h;
  int in_w;
  int out_c;
  int out_h;
  int out_w;
  int ksize;
  int stride;
  int pad;
  int activation;
  int n_anchors;
  int classes;
  float* weights;
  float* biases;
  float* output;
  float* workspace;
};

struct network {
  int n;
  int in_c;
  int in_h;
  int in_w;
  int train;
  layer layers[8];
};

float* forward_network(network* net, float* input) {
  float* current = input;
  for (int i = 0; i < net->n; ++i) {
    layer* l = &net->layers[i];
    switch (l->ltype) {
      case 0:
        forward_convolutional_layer(l, current);
        break;
      case 1:
        forward_maxpool_layer(l, current);
        break;
      case 2:
        forward_region_layer(l, current, 0);
        break;
      case 3:
        fill_cpu(l->out_c, 0.0, l->output, 1);
        break;
      case 4:
        softmax_cpu(current, l->out_c, 1.0, l->output);
        break;
      default:
        break;
    }
    if (net->train == 1) {
      scal_cpu(l->out_c * l->out_h * l->out_w, 0.99, l->output);
    }
    current = l->output;
  }
  return current;
}
|}

let parser_cfg_c =
  {|// parser_cfg.c — network-config option handling
int parse_option_value(int key, int fallback) {
  switch (key) {
    case 0:
      return 416;
    case 1:
      return 416;
    case 2:
      return 3;
    case 3:
      return 16;
    case 4:
      return 32;
    case 5:
      return 64;
    case 6:
      return 5;
    case 7:
      return 80;
    case 8:
      return 1;
    case 9:
      return 2;
    case 10:
      return 8;
    case 11:
      return 100;
    default:
      return fallback;
  }
}

float parse_learning_param(int schedule, int step) {
  float rate = 0.001;
  if (schedule == 0) {
    return rate;
  }
  if (schedule == 1) {
    return rate / (1.0 + 0.0001 * (float)step);
  }
  if (schedule == 2) {
    float scaled = rate;
    for (int i = 0; i < step / 100; ++i) {
      scaled *= 0.1;
    }
    return scaled;
  }
  if (schedule == 3) {
    return rate * exp(0.0 - 0.0001 * (float)step);
  }
  return rate;
}

int validate_config(int width, int height, int channels, int batch) {
  if (width <= 0 || height <= 0) {
    return 0;
  }
  if (channels <= 0) {
    return 0;
  }
  if (batch <= 0 || batch > 1024) {
    return 0;
  }
  if (width % 32 != 0 && height % 32 != 0) {
    return 2;
  }
  return 1;
}
|}

let driver_c =
  {|// test_main.c — the "real-scenario tests" of the Figure 5 experiment
int scenario_forward_inference() {
  network net;
  net.n = 3;
  net.in_c = 3;
  net.in_h = 6;
  net.in_w = 6;
  net.train = 0;
  net.layers[0] = make_convolutional_layer(3, 6, 6, 7, 3, 1, 1, LEAKY);
  net.layers[1] = make_maxpool_layer(7, 6, 6, 2, 2);
  net.layers[2] = make_region_layer(3, 1, 2);
  float* input = (float*)malloc(3 * 6 * 6 * sizeof(float));
  for (int i = 0; i < 3 * 6 * 6; ++i) {
    input[i] = 0.3 * (float)(i % 7) - 0.8;
  }
  float* out = forward_network(&net, input);
  float checksum = 0.0;
  for (int i = 0; i < 9; ++i) {
    checksum += out[i];
  }
  printf("scenario1 checksum %f\n", checksum);
  free(input);
  return 1;
}

int scenario_detection_nms() {
  layer l = make_region_layer(3, 1, 2);
  int total = 3 * 3 * 1 * 7;
  float* input = (float*)malloc(total * sizeof(float));
  for (int i = 0; i < total; ++i) {
    input[i] = 0.25 * (float)(i % 9) - 1.0;
  }
  forward_region_layer(&l, input, 0);
  detection* dets = (detection*)malloc(16 * sizeof(detection));
  int count = get_region_detections(&l, 0.4, dets);
  if (count > 1) {
    do_nms(dets, count, 0.3);
  }
  int kept = 0;
  for (int i = 0; i < count; ++i) {
    if (dets[i].objectness > 0.0) {
      kept = kept + 1;
    }
  }
  printf("scenario2 detections %d kept %d\n", count, kept);
  free(input);
  free(dets);
  return kept;
}

int scenario_config_check() {
  int width = parse_option_value(0, -1);
  int channels = parse_option_value(2, -1);
  int ok = validate_config(width, width, channels, 16);
  int bad = validate_config(width, width, 0, 16);
  float rate = parse_learning_param(0, 0);
  printf("config ok %d bad %d rate %f\n", ok, bad, rate);
  return ok;
}

int scenario_small_head() {
  network net;
  net.n = 2;
  net.in_c = 7;
  net.in_h = 3;
  net.in_w = 3;
  net.train = 0;
  net.layers[0] = make_convolutional_layer(7, 3, 3, 4, 1, 1, 0, RELU);
  net.layers[1].ltype = 4;
  net.layers[1].out_c = 4;
  net.layers[1].out_h = 1;
  net.layers[1].out_w = 1;
  net.layers[1].output = (float*)malloc(4 * sizeof(float));
  float* input = (float*)malloc(7 * 3 * 3 * sizeof(float));
  for (int i = 0; i < 7 * 3 * 3; ++i) {
    input[i] = 0.2 * (float)(i % 5) - 0.4;
  }
  float* probs = forward_network(&net, input);
  float peak = probs[0];
  for (int i = 1; i < 4; ++i) {
    peak = fmax(peak, probs[i]);
  }
  printf("head peak %f\n", peak);
  free(input);
  return 1;
}

int scenario_kernel_paths() {
  float* a = (float*)malloc(4 * sizeof(float));
  float* b = (float*)malloc(4 * sizeof(float));
  float* c = (float*)malloc(4 * sizeof(float));
  for (int i = 0; i < 4; ++i) {
    a[i] = 0.5 * (float)i;
    b[i] = 1.0 - 0.25 * (float)i;
    c[i] = 1.0;
  }
  gemm_cpu(1, 0, 2, 2, 2, 1.0, a, 2, b, 2, 0.5, c, 2);
  activate_array(a, 4, RELU);
  float t = activate_scalar(0.3, TANH_A);
  softmax_cpu(b, 4, 2.0, b);
  printf("paths %f %f %f\n", c[0], a[1], t);
  free(a);
  free(b);
  free(c);
  return 1;
}

int main() {
  int passed = 0;
  passed += scenario_forward_inference();
  passed += scenario_detection_nms();
  passed += scenario_config_check();
  passed += scenario_small_head();
  passed += scenario_kernel_paths();
  printf("passed %d\n", passed);
  return passed;
}
|}

(** Files in dependency-friendly order; [network_c] defines the structs,
    so it parses first for layout registration (the interpreter loads all
    units before running). *)
let files =
  [
    ("yolo/network.c", network_c);
    ("yolo/box.c", box_c);
    ("yolo/activations.c", activations_c);
    ("yolo/gemm.c", gemm_c);
    ("yolo/im2col.c", im2col_c);
    ("yolo/blas.c", blas_c);
    ("yolo/convolutional_layer.c", convolutional_c);
    ("yolo/maxpool_layer.c", maxpool_c);
    ("yolo/region_layer.c", region_c);
    ("yolo/parser_cfg.c", parser_cfg_c);
    ("yolo/test_main.c", driver_c);
  ]

let parse_all () =
  List.map
    (fun (path, content) -> Cfront.Parser.parse_file ~extra_types ~file:path content)
    files

(** Translation units under measurement (the driver itself is excluded
    from the coverage report, like a test harness would be). *)
let measured_files = List.filter (fun (p, _) -> p <> "yolo/test_main.c") files

let entry = "main"

(** The driver's per-test entry points, in [main]'s call order.  Each is
    a self-contained "real-scenario test" (its own network, buffers and
    teardown), so they can run as independent scenarios; [main] remains
    the monolithic form and the golden reference for their combined
    coverage. *)
let scenario_entries =
  [
    "scenario_forward_inference";
    "scenario_detection_nms";
    "scenario_config_check";
    "scenario_small_head";
    "scenario_kernel_paths";
  ]
