(** Hand-written YOLO-style object-detection C sources (the Figure 5
    subject), embedded as strings and executed by the interpreter.  The
    [test_main.c] driver plays the role of the paper's "real-scenario
    tests": it exercises the inference path and leaves error handling,
    unused activation kinds, GEMM transpose modes and most config options
    cold — Observation 10's coverage gap, by construction. *)

(** Struct names shared across files (the stand-in for a common header). *)
val extra_types : string list

(** (path, content) pairs; [network.c] defines the shared structs. *)
val files : (string * string) list

val parse_all : unit -> Cfront.Ast.tu list

(** Files under measurement (the test driver itself is excluded). *)
val measured_files : (string * string) list

val entry : string

(** The driver's per-test entry points, in [main]'s call order; each is
    self-contained and runs as an independent scenario. *)
val scenario_entries : string list
