(** Deterministic identifier generation in Apollo's (Google C++) naming
    style: CamelCase functions and types, snake_case locals, kConstant
    constants, g_-prefixed globals.

    State is explicit: each generated module owns a {!t} whose counter
    starts at a module-indexed base ([module_idx * 100_000]), so the
    uniquifying suffixes a module's names carry depend only on that
    module — never on how many names other modules consumed — and
    module generation can fan out across pool workers with byte-identical
    output at every jobs value. *)

type t = { mutable counter : int }

(** A fresh name stream starting above [base]; give each module a
    disjoint base so names are globally unique without cross-module
    sequencing. *)
let make ~base () = { counter = base }

let next_id t =
  t.counter <- t.counter + 1;
  t.counter

let verbs =
  [| "Estimate"; "Compute"; "Update"; "Track"; "Fuse"; "Project"; "Filter";
     "Predict"; "Plan"; "Smooth"; "Detect"; "Classify"; "Resolve"; "Publish";
     "Parse"; "Validate"; "Clamp"; "Interpolate"; "Merge"; "Select"; "Refine";
     "Sample"; "Extract"; "Align"; "Score" |]

let nouns =
  [| "Trajectory"; "Obstacle"; "Lane"; "Velocity"; "Boundary"; "Waypoint";
     "Signal"; "Curvature"; "Heading"; "Grid"; "Cloud"; "Frame"; "Sensor";
     "Route"; "Polygon"; "Anchor"; "Feature"; "Tensor"; "Cost"; "Margin";
     "Corridor"; "Contour"; "Segment"; "Spline"; "Horizon" |]

let suffixes =
  [| "Cost"; "Index"; "State"; "Buffer"; "Window"; "Offset"; "Limit"; "Score";
     "Delta"; "Ratio"; "Bound"; "Gain" |]

let snake_words =
  [| "lane"; "obstacle"; "speed"; "heading"; "margin"; "cost"; "delta";
     "ratio"; "count"; "index"; "offset"; "limit"; "score"; "width"; "bound";
     "gain"; "angle"; "curv"; "dist"; "weight" |]

let function_name t rng =
  Printf.sprintf "%s%s%s%d" (Util.Rng.pick_array rng verbs)
    (Util.Rng.pick_array rng nouns)
    (Util.Rng.pick_array rng suffixes)
    (next_id t)

let kernel_name t rng =
  Printf.sprintf "%s%sKernel%d" (Util.Rng.pick_array rng verbs)
    (Util.Rng.pick_array rng nouns)
    (next_id t)

let struct_name t rng =
  Printf.sprintf "%s%sInfo%d" (Util.Rng.pick_array rng nouns)
    (Util.Rng.pick_array rng suffixes)
    (next_id t)

let local_name t rng =
  Printf.sprintf "%s_%s%d" (Util.Rng.pick_array rng snake_words)
    (Util.Rng.pick_array rng snake_words)
    (next_id t)

let global_name t rng =
  Printf.sprintf "g_%s_%s%d" (Util.Rng.pick_array rng snake_words)
    (Util.Rng.pick_array rng snake_words)
    (next_id t)

let constant_name t rng =
  Printf.sprintf "kMax%s%s%d" (Util.Rng.pick_array rng nouns)
    (Util.Rng.pick_array rng suffixes)
    (next_id t)

let field_name _t rng =
  Printf.sprintf "%s_%s" (Util.Rng.pick_array rng snake_words)
    (Util.Rng.pick_array rng snake_words)
