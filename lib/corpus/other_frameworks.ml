(** Profiles for the other AD frameworks the paper names in Section 2:
    "These are the main stages of Apollo and also other state-of-the-art
    AD frameworks [Autoware, Udacity]. All of them have similar design and
    implementation characteristics, so the conclusions we derive for
    Apollo in this work hold to a large extent for all AD frameworks."

    These profiles encode the published scale of each framework (module
    layout, approximate LOC from their public repositories of the paper's
    era) with the same statistical character: the benchmark harness audits
    all three and shows the verdict pattern is framework-independent. *)

open Apollo_profile

let m ~name ~loc ~files ~fns ~over10 ~over20 ~over50 ~globals ~casts ~gotos
    ~recursive ~uninit ~kernels ~threads ?dead ~multi_exit () =
  {
    name;
    target_loc = loc;
    n_files = files;
    n_functions = fns;
    over10;
    over20;
    over50;
    globals;
    casts;
    multi_exit_frac = multi_exit;
    gotos;
    recursive_fns = recursive;
    uninit_vars = uninit;
    (* same density character as Apollo: a handful of dead statements per
       module, scaling with the uninitialized-read count *)
    dead_code = (match dead with Some d -> d | None -> Stdlib.max 1 (uninit / 3));
    cuda_kernels = kernels;
    uses_threads = threads;
  }

(** Autoware (CPFL/Autoware, ~2018): ROS-based, perception/planning split
    across many nodes; smaller than Apollo, similar density profile. *)
let autoware =
  [
    m ~name:"perception" ~loc:34_000 ~files:30 ~fns:830 ~over10:86 ~over20:22
      ~over50:2 ~globals:410 ~casts:240 ~gotos:8 ~recursive:1 ~uninit:10
      ~kernels:12 ~threads:true ~multi_exit:0.40 ();
    m ~name:"planning" ~loc:26_000 ~files:24 ~fns:620 ~over10:64 ~over20:16
      ~over50:2 ~globals:140 ~casts:170 ~gotos:5 ~recursive:1 ~uninit:7
      ~kernels:0 ~threads:true ~multi_exit:0.34 ();
    m ~name:"localization" ~loc:14_000 ~files:13 ~fns:340 ~over10:35 ~over20:8
      ~over50:1 ~globals:70 ~casts:90 ~gotos:2 ~recursive:0 ~uninit:4
      ~kernels:0 ~threads:false ~multi_exit:0.30 ();
    m ~name:"detection" ~loc:18_000 ~files:16 ~fns:430 ~over10:45 ~over20:11
      ~over50:1 ~globals:160 ~casts:120 ~gotos:4 ~recursive:1 ~uninit:5
      ~kernels:8 ~threads:false ~multi_exit:0.38 ();
    m ~name:"common" ~loc:9_000 ~files:9 ~fns:220 ~over10:20 ~over20:5 ~over50:0
      ~globals:60 ~casts:55 ~gotos:0 ~recursive:1 ~uninit:3 ~kernels:0
      ~threads:true ~multi_exit:0.26 ();
  ]

(** Udacity self-driving-car (2017): the smallest of the three — teaching
    codebase, still the same language/tooling profile. *)
let udacity =
  [
    m ~name:"perception" ~loc:12_000 ~files:11 ~fns:290 ~over10:27 ~over20:7
      ~over50:1 ~globals:150 ~casts:85 ~gotos:3 ~recursive:0 ~uninit:4
      ~kernels:5 ~threads:false ~multi_exit:0.36 ();
    m ~name:"planning" ~loc:8_000 ~files:8 ~fns:190 ~over10:18 ~over20:4
      ~over50:0 ~globals:55 ~casts:50 ~gotos:1 ~recursive:1 ~uninit:3
      ~kernels:0 ~threads:false ~multi_exit:0.30 ();
    m ~name:"control" ~loc:6_000 ~files:6 ~fns:150 ~over10:14 ~over20:3
      ~over50:0 ~globals:35 ~casts:35 ~gotos:1 ~recursive:0 ~uninit:2
      ~kernels:0 ~threads:false ~multi_exit:0.28 ();
    m ~name:"common" ~loc:4_000 ~files:4 ~fns:100 ~over10:9 ~over20:2 ~over50:0
      ~globals:25 ~casts:25 ~gotos:0 ~recursive:0 ~uninit:1 ~kernels:0
      ~threads:false ~multi_exit:0.24 ();
  ]

type framework = { fw_name : string; fw_specs : module_spec list; fw_seed : int }

let all_frameworks =
  [
    { fw_name = "Apollo"; fw_specs = full; fw_seed = 2019 };
    { fw_name = "Autoware"; fw_specs = autoware; fw_seed = 2016 };
    { fw_name = "Udacity"; fw_specs = udacity; fw_seed = 2017 };
  ]
