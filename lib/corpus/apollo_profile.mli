(** Statistical profile of the Apollo AD framework, as published in the
    paper (Figure 3 and Sections 3.1-3.5).  The corpus generator
    reproduces these statistics exactly; see DESIGN.md for the
    substitution argument. *)

type module_spec = {
  name : string;
  target_loc : int;
  n_files : int;
  n_functions : int;
  over10 : int;  (** functions with CC > 10 (includes the next two) *)
  over20 : int;
  over50 : int;
  globals : int;  (** mutable globals *)
  casts : int;  (** explicit casts *)
  multi_exit_frac : float;
  gotos : int;
  recursive_fns : int;
  uninit_vars : int;
  dead_code : int;  (** unreachable-statement sites (code after an early return) *)
  cuda_kernels : int;
  uses_threads : bool;
}

val perception : module_spec
val planning : module_spec
val prediction : module_spec
val localization : module_spec
val hdmap : module_spec
val routing : module_spec
val control : module_spec
val canbus : module_spec
val common : module_spec

(** The full framework: nine modules, >220k LOC, exactly 554 CC>10
    functions, >1,400 casts, 900 perception globals. *)
val full : module_spec list

(** Proportional rescaling; zero quotas stay zero, nonzero quotas stay
    at least 1 (so every hazard class remains represented). *)
val scale : factor:float -> module_spec -> module_spec

(** ~8% scale with the same relative shape; parses+audits in about a
    second. *)
val small : module_spec list

val total_loc : module_spec list -> int
val total_over10 : module_spec list -> int
val total_casts : module_spec list -> int
