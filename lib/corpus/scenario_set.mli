(** The full dynamic-scenario set behind the paper's coverage results:
    the YOLO real-scenario tests (Figure 5), every fault-injection
    scenario (Observation 6), and the gap-driven testgen probes
    (Observation 10), all as independent {!Coverage.Scenario} values
    over ONE shared parse of the YOLO sources.

    Sharing the parse is what makes the merge exact: statement and
    decision ids are assigned at parse time, so scenarios built on the
    same units hit the same keys, and the per-scenario collectors union
    into the same state the sequential single-collector run would
    produce.  The differential suite replays this set at jobs 1/2/4 and
    demands byte-identical merged coverage. *)

type set = {
  tus : Cfront.Ast.tu list;  (** the shared YOLO parse *)
  measured : string list;  (** files under measurement (drivers excluded) *)
  scenarios : Coverage.Scenario.t list;
}

(** Build the full set.  Deterministic: the scenario list, batching and
    ordering never depend on the jobs value.  Construction runs the
    real-scenario baseline once to plan the gap probes. *)
val full : unit -> set
