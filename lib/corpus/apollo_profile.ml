(** Statistical profile of the Apollo AD framework, as published in the
    paper (Figure 3 and Sections 3.1-3.5).

    Apollo itself is not shippable here (220k+ LOC, external project), so
    the corpus generator reproduces its published statistics exactly:

    - >220k LOC total, modules between 5k and 60k LOC (Section 3.4.2);
    - hundreds-to-thousands of functions per module (Figure 3);
    - 554 functions with cyclomatic complexity above 10 over the whole
      framework (Section 3.1.1), distributed over modules;
    - more than 1,400 explicit casts (Section 3.1.3);
    - about 900 global variables in the perception module (Section 3.5);
    - 41% of functions with several exit points in object detection
      (Section 3.5 item 1);
    - CUDA kernels in the perception module with the pointer/dynamic
      memory pattern of Figure 4;
    - well-followed Google C++ naming and style (Observations 8 and 9). *)

type module_spec = {
  name : string;
  target_loc : int;
  n_files : int;
  n_functions : int;
  over10 : int;  (** functions with CC > 10 (includes the next two) *)
  over20 : int;  (** functions with CC > 20 (includes the next one) *)
  over50 : int;  (** functions with CC > 50 *)
  globals : int;
  casts : int;
  multi_exit_frac : float;
  gotos : int;
  recursive_fns : int;
  uninit_vars : int;
  dead_code : int;  (** unreachable-statement sites (code after an early return) *)
  cuda_kernels : int;
  uses_threads : bool;
}

let perception =
  {
    name = "perception";
    target_loc = 61_000;
    n_files = 52;
    n_functions = 1480;
    over10 = 150;
    over20 = 38;
    over50 = 4;
    globals = 900;
    casts = 430;
    multi_exit_frac = 0.44;
    gotos = 14;
    recursive_fns = 2;
    uninit_vars = 18;
    dead_code = 8;
    cuda_kernels = 22;
    uses_threads = true;
  }

let planning =
  {
    name = "planning";
    target_loc = 48_000;
    n_files = 44;
    n_functions = 1150;
    over10 = 118;
    over20 = 30;
    over50 = 3;
    globals = 120;
    casts = 300;
    multi_exit_frac = 0.35;
    gotos = 8;
    recursive_fns = 2;
    uninit_vars = 12;
    dead_code = 6;
    cuda_kernels = 0;
    uses_threads = true;
  }

let prediction =
  {
    name = "prediction";
    target_loc = 26_000;
    n_files = 26;
    n_functions = 640;
    over10 = 62;
    over20 = 15;
    over50 = 1;
    globals = 70;
    casts = 160;
    multi_exit_frac = 0.33;
    gotos = 4;
    recursive_fns = 1;
    uninit_vars = 8;
    dead_code = 4;
    cuda_kernels = 0;
    uses_threads = false;
  }

let localization =
  {
    name = "localization";
    target_loc = 21_000;
    n_files = 20;
    n_functions = 510;
    over10 = 50;
    over20 = 12;
    over50 = 1;
    globals = 60;
    casts = 130;
    multi_exit_frac = 0.30;
    gotos = 4;
    recursive_fns = 0;
    uninit_vars = 6;
    dead_code = 3;
    cuda_kernels = 0;
    uses_threads = false;
  }

let hdmap =
  {
    name = "map";
    target_loc = 30_000;
    n_files = 28;
    n_functions = 760;
    over10 = 72;
    over20 = 18;
    over50 = 2;
    globals = 80;
    casts = 170;
    multi_exit_frac = 0.32;
    gotos = 2;
    recursive_fns = 3;  (* tree traversals — the paper's "well-known purposes" *)
    uninit_vars = 6;
    dead_code = 4;
    cuda_kernels = 0;
    uses_threads = false;
  }

let routing =
  {
    name = "routing";
    target_loc = 9_000;
    n_files = 10;
    n_functions = 220;
    over10 = 22;
    over20 = 5;
    over50 = 0;
    globals = 25;
    casts = 55;
    multi_exit_frac = 0.28;
    gotos = 0;
    recursive_fns = 1;
    uninit_vars = 3;
    dead_code = 2;
    cuda_kernels = 0;
    uses_threads = false;
  }

let control =
  {
    name = "control";
    target_loc = 14_000;
    n_files = 14;
    n_functions = 340;
    over10 = 34;
    over20 = 8;
    over50 = 1;
    globals = 45;
    casts = 90;
    multi_exit_frac = 0.30;
    gotos = 2;
    recursive_fns = 0;
    uninit_vars = 4;
    dead_code = 3;
    cuda_kernels = 0;
    uses_threads = true;
  }

let canbus =
  {
    name = "canbus";
    target_loc = 7_000;
    n_files = 8;
    n_functions = 180;
    over10 = 19;
    over20 = 4;
    over50 = 0;
    globals = 30;
    casts = 45;
    multi_exit_frac = 0.26;
    gotos = 2;
    recursive_fns = 0;
    uninit_vars = 3;
    dead_code = 2;
    cuda_kernels = 0;
    uses_threads = false;
  }

let common =
  {
    name = "common";
    target_loc = 12_000;
    n_files = 12;
    n_functions = 300;
    over10 = 27;
    over20 = 6;
    over50 = 0;
    globals = 50;
    casts = 75;
    multi_exit_frac = 0.25;
    gotos = 0;
    recursive_fns = 1;
    uninit_vars = 4;
    dead_code = 3;
    cuda_kernels = 0;
    uses_threads = true;
  }

(** The full framework: nine modules, 228k LOC, 554 CC>10 functions,
    1,455 casts. *)
let full =
  [ perception; planning; prediction; localization; hdmap; routing; control;
    canbus; common ]

(** A reduced profile (~8% scale) with the same *relative* shape, for fast
    tests and the quickstart example. *)
let scale ~factor spec =
  let s x = Stdlib.max 1 (int_of_float (float_of_int x *. factor)) in
  (* zero stays zero; anything present in the original stays present *)
  let s0 x = if x = 0 then 0 else s x in
  {
    spec with
    target_loc = s spec.target_loc;
    n_files = s spec.n_files;
    n_functions = s spec.n_functions;
    over10 = s0 spec.over10;
    over20 = s0 spec.over20;
    over50 = s0 spec.over50;
    globals = s0 spec.globals;
    casts = s0 spec.casts;
    gotos = s0 spec.gotos;
    recursive_fns = s0 spec.recursive_fns;
    uninit_vars = s0 spec.uninit_vars;
    dead_code = s0 spec.dead_code;
    cuda_kernels = s0 spec.cuda_kernels;
  }

let small = List.map (scale ~factor:0.08) full

let total_loc specs = Util.Stats.sum_int (List.map (fun s -> s.target_loc) specs)
let total_over10 specs = Util.Stats.sum_int (List.map (fun s -> s.over10) specs)
let total_casts specs = Util.Stats.sum_int (List.map (fun s -> s.casts) specs)
