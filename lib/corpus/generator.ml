(** Deterministic generator of an Apollo-profile C++/CUDA codebase.

    Everything is driven by a single seed; the same seed always produces
    byte-identical sources, so every number in the reproduced figures is
    stable.  Counted properties (functions over a complexity threshold,
    explicit casts, mutable globals, gotos, recursive functions,
    uninitialized reads, CUDA kernels) are driven by exact quotas from the
    {!Apollo_profile} spec rather than probabilities. *)

(* ------------------------------------------------------------------ *)
(* Code writer                                                          *)
(* ------------------------------------------------------------------ *)

type writer = {
  buf : Buffer.t;
  mutable indent : int;
  mutable lines : int;
}

let new_writer () = { buf = Buffer.create 4096; indent = 0; lines = 0 }

let line w s =
  Buffer.add_string w.buf (String.make (2 * w.indent) ' ');
  Buffer.add_string w.buf s;
  Buffer.add_char w.buf '\n';
  w.lines <- w.lines + 1

(* Emit [s], wrapping at a ", " or " + " boundary with a 4-space
   continuation when it would exceed the style guide's 100 columns. *)
let line_fit w s =
  let width = (2 * w.indent) + String.length s in
  if width <= 100 then line w s
  else begin
    let split_at sep =
      let rec last_before i acc =
        if i + String.length sep > String.length s then acc
        else if String.sub s i (String.length sep) = sep
                && i + (2 * w.indent) < 96 then last_before (i + 1) (Some i)
        else last_before (i + 1) acc
      in
      last_before 0 None
    in
    let cut =
      match split_at ", " with
      | Some i -> Some (i + 1)  (* keep the comma on the first line *)
      | None -> (
          match split_at " && " with
          | Some i -> Some (i + 3)
          | None -> (
              match split_at " || " with
              | Some i -> Some (i + 3)
              | None -> (
                  match split_at "; " with
                  | Some i -> Some (i + 1)
                  | None -> (
                      match split_at " + " with
                      | Some i -> Some (i + 2)
                      | None -> None))))
    in
    match cut with
    | Some i ->
      line w (String.sub s 0 i);
      line w ("    " ^ Util.Strutil.strip (String.sub s i (String.length s - i)))
    | None -> line w s
  end

let blank w =
  Buffer.add_char w.buf '\n';
  w.lines <- w.lines + 1

let push w = w.indent <- w.indent + 1
let pop w = w.indent <- Stdlib.max 0 (w.indent - 1)

(* ------------------------------------------------------------------ *)
(* Quotas                                                               *)
(* ------------------------------------------------------------------ *)

type quotas = {
  mutable casts : int;
  mutable gotos : int;
  mutable uninit : int;
  mutable dead : int;  (** unreachable statements after an early return *)
}

(* Per-function plan, precomputed for the whole module so that quota
   counts are exact. *)
type cc_class = Low | Moderate | Risky | Unstable

type fn_plan = {
  cc_class : cc_class;
  multi_exit : bool;
  recursive : bool;
  kernel : bool;
}

let make_plans rng (spec : Apollo_profile.module_spec) =
  let n = spec.Apollo_profile.n_functions in
  let unstable = spec.Apollo_profile.over50 in
  let risky = spec.Apollo_profile.over20 - spec.Apollo_profile.over50 in
  let moderate = spec.Apollo_profile.over10 - spec.Apollo_profile.over20 in
  let classes =
    List.init n (fun i ->
        if i < unstable then Unstable
        else if i < unstable + risky then Risky
        else if i < unstable + risky + moderate then Moderate
        else Low)
  in
  let classes = Util.Rng.shuffle rng classes in
  let n_multi = int_of_float (spec.Apollo_profile.multi_exit_frac *. float_of_int n) in
  let multi = Util.Rng.shuffle rng (List.init n (fun i -> i < n_multi)) in
  let recur =
    Util.Rng.shuffle rng (List.init n (fun i -> i < spec.Apollo_profile.recursive_fns))
  in
  let kern =
    Util.Rng.shuffle rng (List.init n (fun i -> i < spec.Apollo_profile.cuda_kernels))
  in
  let plans =
    List.map2
      (fun (cc_class, multi_exit) (recursive, kernel) ->
        { cc_class; multi_exit; recursive; kernel })
      (List.combine classes multi)
      (List.combine recur kern)
  in
  (* recursive functions use a fixed low-complexity template, so a
     recursive plan must not consume a high-complexity quota slot: swap
     its class with a Low non-recursive plan *)
  let arr = Array.of_list plans in
  Array.iteri
    (fun i p ->
      if (p.recursive || p.kernel) && p.cc_class <> Low then
        match
          Array.to_list arr
          |> List.mapi (fun j q -> (j, q))
          |> List.find_opt (fun (_, q) ->
                 q.cc_class = Low && (not q.recursive) && not q.kernel)
        with
        | Some (j, q) ->
          arr.(j) <- { q with cc_class = p.cc_class };
          arr.(i) <- { p with cc_class = Low }
        | None -> ())
    arr;
  Array.to_list arr

let cc_target rng = function
  | Low -> Util.Rng.range rng 1 8
  | Moderate -> Util.Rng.range rng 11 19
  | Risky -> Util.Rng.range rng 21 45
  | Unstable -> Util.Rng.range rng 51 68

(* ------------------------------------------------------------------ *)
(* Expression fragments                                                 *)
(* ------------------------------------------------------------------ *)


type scope = {
  mutable ints : string list;
  mutable floats : string list;
  (* int-returning functions already emitted in this file: name, arity *)
  mutable callables : (string * int) list;
}

let pick_int rng sc = Util.Rng.pick rng sc.ints
let pick_float rng sc = Util.Rng.pick rng sc.floats

let int_expr rng sc =
  match Util.Rng.int rng 5 with
  | 0 -> Printf.sprintf "%s + %d" (pick_int rng sc) (Util.Rng.range rng 1 9)
  | 1 -> Printf.sprintf "%s * %d" (pick_int rng sc) (Util.Rng.range rng 2 5)
  | 2 -> Printf.sprintf "%s - %s" (pick_int rng sc) (pick_int rng sc)
  | 3 -> Printf.sprintf "(%s + %s) / 2" (pick_int rng sc) (pick_int rng sc)
  | _ -> Printf.sprintf "%s %% %d" (pick_int rng sc) (Util.Rng.range rng 2 7)

let float_expr rng sc =
  match Util.Rng.int rng 4 with
  | 0 -> Printf.sprintf "%s * 0.5" (pick_float rng sc)
  | 1 -> Printf.sprintf "%s + %.2f" (pick_float rng sc) (Util.Rng.float rng 4.0)
  | 2 -> Printf.sprintf "%s - %s" (pick_float rng sc) (pick_float rng sc)
  | _ -> Printf.sprintf "%s * %s" (pick_float rng sc) (pick_float rng sc)

let int_cond rng sc =
  match Util.Rng.int rng 4 with
  | 0 -> Printf.sprintf "%s > %d" (pick_int rng sc) (Util.Rng.range rng 0 8)
  | 1 -> Printf.sprintf "%s < %s" (pick_int rng sc) (pick_int rng sc)
  | 2 -> Printf.sprintf "%s != %d" (pick_int rng sc) (Util.Rng.range rng 0 3)
  | _ -> Printf.sprintf "%s >= %d" (pick_int rng sc) (Util.Rng.range rng 1 5)

let float_cond rng sc =
  Printf.sprintf "%s > %.2f" (pick_float rng sc) (Util.Rng.float rng 2.0)

(* A condition consuming [extra] additional decisions via && / ||. *)
let cond_with rng sc extra =
  let base = int_cond rng sc in
  let rec add acc k =
    if k = 0 then acc
    else
      let op = if Util.Rng.bool rng then "&&" else "||" in
      let nxt = if Util.Rng.bool rng then int_cond rng sc else float_cond rng sc in
      add (Printf.sprintf "%s %s %s" acc op nxt) (k - 1)
  in
  add base extra

(* ------------------------------------------------------------------ *)
(* Statement emission                                                   *)
(* ------------------------------------------------------------------ *)

let plain_stmt rng sc (q : quotas) w =
  if q.casts > 0 && Util.Rng.chance rng 0.18 then begin
    q.casts <- q.casts - 1;
    if Util.Rng.bool rng then
      line_fit w
        (Printf.sprintf "%s = (int)%s;" (pick_int rng sc) (pick_float rng sc))
    else
      line_fit w
        (Printf.sprintf "%s = static_cast<float>(%s);" (pick_float rng sc)
           (pick_int rng sc))
  end
  else
    match Util.Rng.int rng 6 with
    | 0 -> line w (Printf.sprintf "%s = %s;" (pick_int rng sc) (int_expr rng sc))
    | 1 -> line w (Printf.sprintf "%s = %s;" (pick_float rng sc) (float_expr rng sc))
    | 2 -> line w (Printf.sprintf "%s += %d;" (pick_int rng sc) (Util.Rng.range rng 1 4))
    | 3 -> line w (Printf.sprintf "%s *= 0.9;" (pick_float rng sc))
    | 4 ->
      (match sc.callables with
       | [] -> line w (Printf.sprintf "%s = %s;" (pick_int rng sc) (int_expr rng sc))
       | cs ->
         let name, arity = Util.Rng.pick rng cs in
         let args =
           String.concat ", " (List.init arity (fun _ -> pick_int rng sc))
         in
         (* one call in six discards the return value: the defensive-
            implementation gap of Observation 6 / MISRA 17.7 *)
         if Util.Rng.chance rng 0.17 then
           line_fit w (Printf.sprintf "%s(%s);" name args)
         else
           line_fit w
             (Printf.sprintf "%s = %s + %s(%s);" (pick_int rng sc)
                (pick_int rng sc) name args))
    | _ -> line w (Printf.sprintf "%s = %s + 1;" (pick_int rng sc) (pick_int rng sc))

(* Emit a local declaration, teaching the scope about it. *)
let declare_local ng rng sc (q : quotas) w =
  let name = Namegen.local_name ng rng in
  if Util.Rng.bool rng then begin
    line w (Printf.sprintf "int %s = %s;" name (int_expr rng sc));
    sc.ints <- name :: sc.ints
  end
  else begin
    line w (Printf.sprintf "float %s = %s;" name (float_expr rng sc));
    sc.floats <- name :: sc.floats
  end;
  ignore q

(* An uninitialized-read pattern: declaration without initializer, read
   under a condition before any assignment. *)
let uninit_pattern ng rng sc w =
  let name = Namegen.local_name ng rng in
  line w (Printf.sprintf "int %s;" name);
  line w (Printf.sprintf "if (%s) {" (int_cond rng sc));
  push w;
  line w (Printf.sprintf "%s = %s + %s;" (pick_int rng sc) (pick_int rng sc) name);
  pop w;
  line w "}";
  sc.ints <- name :: sc.ints

(* ------------------------------------------------------------------ *)
(* Control-structure emission to hit an exact decision count            *)
(* ------------------------------------------------------------------ *)

(* Emits structures consuming exactly [decisions] decision points. *)
let rec emit_decisions ng rng sc q w ~depth decisions =
  if decisions > 0 then begin
    let choice = Util.Rng.int rng 100 in
    if choice < 38 || depth >= 3 then begin
      (* if with optional && chain *)
      let extra = Stdlib.min (decisions - 1) (Util.Rng.int rng 3) in
      line_fit w (Printf.sprintf "if (%s) {" (cond_with rng sc extra));
      push w;
      plain_stmt rng sc q w;
      if Util.Rng.chance rng 0.4 then plain_stmt rng sc q w;
      pop w;
      line w "}";
      emit_decisions ng rng sc q w ~depth (decisions - 1 - extra)
    end
    else if choice < 55 then begin
      (* if/else *)
      line w (Printf.sprintf "if (%s) {" (int_cond rng sc));
      push w;
      plain_stmt rng sc q w;
      pop w;
      line w "} else {";
      push w;
      plain_stmt rng sc q w;
      pop w;
      line w "}";
      emit_decisions ng rng sc q w ~depth (decisions - 1)
    end
    else if choice < 75 then begin
      (* counted for loop, possibly with a nested structure *)
      let i = Namegen.local_name ng rng in
      line_fit w
        (Printf.sprintf "for (int %s = 0; %s < %s; ++%s) {" i i (pick_int rng sc) i);
      push w;
      sc.ints <- i :: sc.ints;
      let inner =
        if depth < 3 then Stdlib.min (decisions - 1) (Util.Rng.int rng 3) else 0
      in
      if inner > 0 then emit_decisions ng rng sc q w ~depth:(depth + 1) inner
      else plain_stmt rng sc q w;
      sc.ints <- List.tl sc.ints;
      pop w;
      line w "}";
      emit_decisions ng rng sc q w ~depth (decisions - 1 - inner)
    end
    else if choice < 85 && decisions >= 2 then begin
      (* switch: k cases consume k decisions *)
      let k = Stdlib.min decisions (Util.Rng.range rng 2 4) in
      line w (Printf.sprintf "switch (%s %% %d) {" (pick_int rng sc) (k + 1));
      push w;
      for c = 0 to k - 1 do
        line w (Printf.sprintf "case %d:" c);
        push w;
        plain_stmt rng sc q w;
        line w "break;";
        pop w
      done;
      if Util.Rng.chance rng 0.75 then begin
        line w "default:";
        push w;
        line w "break;";
        pop w
      end;
      pop w;
      line w "}";
      emit_decisions ng rng sc q w ~depth (decisions - k)
    end
    else begin
      (* while loop *)
      let i = Namegen.local_name ng rng in
      line w (Printf.sprintf "int %s = %d;" i (Util.Rng.range rng 2 6));
      sc.ints <- i :: sc.ints;
      line w (Printf.sprintf "while (%s > 0) {" i);
      push w;
      plain_stmt rng sc q w;
      line w (Printf.sprintf "%s -= 1;" i);
      pop w;
      line w "}";
      emit_decisions ng rng sc q w ~depth (decisions - 1)
    end
  end

(* ------------------------------------------------------------------ *)
(* Function emission                                                    *)
(* ------------------------------------------------------------------ *)

(* Returns [Some kernel_name] when the emitted function is a CUDA kernel,
   so the caller can add a host-side launch wrapper. *)
let emit_function ng rng sc q w (plan : fn_plan) ~line_budget =
  let name =
    if plan.kernel then Namegen.kernel_name ng rng else Namegen.function_name ng rng
  in
  let p_int1 = Namegen.local_name ng rng in
  let p_int2 = Namegen.local_name ng rng in
  let p_float = Namegen.local_name ng rng in
  blank w;
  let fn_scope =
    { ints = [ p_int1; p_int2 ]; floats = [ p_float ]; callables = sc.callables }
  in
  let start_lines = w.lines in
  if plan.kernel then begin
    line_fit w
      (Printf.sprintf
         "__global__ void %s(float* output, float* biases, int %s, int %s) {"
         name p_int1 p_int2);
    push w;
    line w "int offset = blockIdx.x * blockDim.x + threadIdx.x;";
    fn_scope.ints <- "offset" :: fn_scope.ints;
    fn_scope.floats <- [ "output[offset]" ];
    (* one in four kernels omits the bound check: the CUDA-1 hazard *)
    if Util.Rng.chance rng 0.75 then begin
      line w (Printf.sprintf "if (offset < %s) {" p_int2);
      push w;
      line w (Printf.sprintf "output[offset] = output[offset] * biases[offset %% %s];" p_int1);
      let target = cc_target rng plan.cc_class in
      if target > 2 then emit_decisions ng rng fn_scope q w ~depth:1 (target - 2);
      pop w;
      line w "}"
    end
    else begin
      line w (Printf.sprintf "output[offset] = output[offset] * biases[offset %% %s];" p_int1);
      let target = cc_target rng plan.cc_class in
      if target > 1 then emit_decisions ng rng fn_scope q w ~depth:0 (target - 1)
    end;
    pop w;
    line w "}";
    Some name
  end
  else if plan.recursive then begin
    line w (Printf.sprintf "int %s(int %s, int %s) {" name p_int1 p_int2);
    push w;
    line w (Printf.sprintf "if (%s <= 0) {" p_int2);
    push w;
    line w (Printf.sprintf "return %s;" p_int1);
    pop w;
    line w "}";
    line w (Printf.sprintf "return %s(%s - 1, %s - 1);" name p_int1 p_int2);
    pop w;
    line w "}";
    sc.callables <- (name, 2) :: sc.callables;
    None
  end
  else begin
    line_fit w
      (Printf.sprintf "int %s(int %s, int %s, float %s) {" name p_int1 p_int2 p_float);
    push w;
    let result = Namegen.local_name ng rng in
    line w (Printf.sprintf "int %s = 0;" result);
    fn_scope.ints <- result :: fn_scope.ints;
    declare_local ng rng fn_scope q w;
    if q.uninit > 0 && Util.Rng.chance rng 0.3 then begin
      q.uninit <- q.uninit - 1;
      uninit_pattern ng rng fn_scope w
    end;
    if plan.multi_exit then begin
      line w (Printf.sprintf "if (%s < 0) {" p_int1);
      push w;
      line w "return -1;";
      if q.dead > 0 && Util.Rng.chance rng 0.35 then begin
        (* statement after the return: never executes (MISRA 2.1) *)
        q.dead <- q.dead - 1;
        line w (Printf.sprintf "%s = %s - 1;" result result)
      end;
      pop w;
      line w "}"
    end;
    let target = cc_target rng plan.cc_class in
    let consumed = 1 + (if plan.multi_exit then 1 else 0) in
    if target > consumed then
      emit_decisions ng rng fn_scope q w ~depth:0 (target - consumed)
    else plain_stmt rng fn_scope q w;
    if q.gotos > 0 && Util.Rng.chance rng 0.25 then begin
      q.gotos <- q.gotos - 1;
      line w (Printf.sprintf "if (%s == 0) {" p_int2);
      push w;
      line w "goto done;";
      pop w;
      line w "}";
      line w (Printf.sprintf "%s = %s + 1;" result result);
      line w "done:";
      line w (Printf.sprintf "return %s;" result)
    end
    else begin
      (* pad to the line budget with straight-line code *)
      while w.lines - start_lines < line_budget - 2 do
        plain_stmt rng fn_scope q w
      done;
      line w (Printf.sprintf "return %s;" result)
    end;
    pop w;
    line w "}";
    sc.callables <- (name, 2) :: sc.callables;
    None
  end

(* ------------------------------------------------------------------ *)
(* Globals, constants, structs                                          *)
(* ------------------------------------------------------------------ *)

let emit_global ng rng w =
  match Util.Rng.int rng 4 with
  | 0 -> line w (Printf.sprintf "int %s = 0;" (Namegen.global_name ng rng))
  | 1 -> line w (Printf.sprintf "static int %s = %d;" (Namegen.global_name ng rng) (Util.Rng.range rng 0 64))
  | 2 -> line w (Printf.sprintf "double %s = 0.0;" (Namegen.global_name ng rng))
  | _ -> line w (Printf.sprintf "static float %s;" (Namegen.global_name ng rng))

let emit_constant ng rng w =
  line w
    (Printf.sprintf "const int %s = %d;" (Namegen.constant_name ng rng)
       (Util.Rng.range rng 8 512))

let emit_struct ng rng w =
  let name = Namegen.struct_name ng rng in
  line w (Printf.sprintf "struct %s {" name);
  push w;
  let nf = Util.Rng.range rng 3 6 in
  for _ = 1 to nf do
    let fname = Namegen.field_name ng rng in
    if Util.Rng.bool rng then line w (Printf.sprintf "float %s;" fname)
    else line w (Printf.sprintf "int %s;" fname)
  done;
  pop w;
  line w "};"

(* CUDA host-side wrapper demonstrating the Figure 4 pattern: device
   pointers, cudaMalloc, kernel launch; some leak (no cudaFree). *)
let emit_cuda_host ng rng sc q w ~kernel_name =
  let name = Namegen.function_name ng rng in
  blank w;
  line w (Printf.sprintf "void %s(float* host_data, int size) {" name);
  push w;
  line w "float* device_data;";
  line w "float* device_biases;";
  line w "cudaMalloc((void**)&device_data, size * sizeof(float));";
  line w "cudaMalloc((void**)&device_biases, size * sizeof(float));";
  line w "cudaMemcpy(device_data, host_data, size * sizeof(float), 1);";
  line w (Printf.sprintf "%s<<<(size + 255) / 256, 256>>>(device_data, device_biases, 4, size);" kernel_name);
  line w "cudaMemcpy(host_data, device_data, size * sizeof(float), 2);";
  if Util.Rng.chance rng 0.6 then begin
    line w "cudaFree(device_data);";
    line w "cudaFree(device_biases);"
  end;
  pop w;
  line w "}";
  ignore q;
  ignore sc

(* ------------------------------------------------------------------ *)
(* File and module emission                                             *)
(* ------------------------------------------------------------------ *)

(* Cross-module helpers: every module may call into "common"; perception
   and planning also call into "map".  These names are pre-seeded so the
   call graph has realistic inter-module coupling. *)
let common_api = [ ("CommonClampIndex", 2); ("CommonHashValue", 2); ("CommonCycleCount", 2) ]
let map_api = [ ("MapNearestLaneId", 2); ("MapSegmentCount", 2) ]

let api_stub w (name, arity) =
  let params =
    String.concat ", " (List.init arity (fun i -> Printf.sprintf "int arg%d" i))
  in
  blank w;
  line w (Printf.sprintf "int %s(%s) {" name params);
  push w;
  (match arity with
   | 2 -> line w "if (arg0 < 0) {"
   | _ -> line w "if (arg0 == 0) {");
  push w;
  line w "return 0;";
  pop w;
  line w "}";
  line w "return arg0 + arg1;";
  pop w;
  line w "}"

let split_quota total parts i =
  (* share of [total] for part [i] of [parts], exact in sum *)
  (total * (i + 1) / parts) - (total * i / parts)

let generate_file ng rng (spec : Apollo_profile.module_spec) ~file_idx ~plans
    ~(q : quotas) ~globals_here ~loc_budget =
  let w = new_writer () in
  line w
    (Printf.sprintf "// modules/%s/%s_component_%d.cc" spec.Apollo_profile.name
       spec.Apollo_profile.name file_idx);
  line w "// Generated Apollo-profile corpus file.";
  line w "#include <math.h>";
  line w (Printf.sprintf "#include \"modules/%s/common.h\"" spec.Apollo_profile.name);
  if spec.Apollo_profile.cuda_kernels > 0 then line w "#include <cuda_runtime.h>";
  blank w;
  line w "namespace apollo {";
  line w (Printf.sprintf "namespace %s {" spec.Apollo_profile.name);
  blank w;
  (* API stubs live in the first file of their module *)
  if file_idx = 0 && spec.Apollo_profile.name = "common" then
    List.iter (api_stub w) common_api;
  if file_idx = 0 && spec.Apollo_profile.name = "map" then
    List.iter (api_stub w) map_api;
  (* modules with worker threads spawn them in their first file — the
     architectural "scheduling properties" hazard *)
  if file_idx = 0 && spec.Apollo_profile.uses_threads then begin
    blank w;
    line w "void StartPipelineWorkers(int* thread_handle, int worker_count) {";
    push w;
    line w "for (int i = 0; i < worker_count; ++i) {";
    push w;
    line w "pthread_create(thread_handle, 0, 0, 0);";
    pop w;
    line w "}";
    pop w;
    line w "}";
    blank w
  end;
  emit_constant ng rng w;
  for _ = 1 to globals_here do
    emit_global ng rng w
  done;
  blank w;
  emit_struct ng rng w;
  let sc = { ints = []; floats = []; callables = [] } in
  (* seed cross-module calls *)
  if spec.Apollo_profile.name <> "common" then sc.callables <- common_api;
  if List.mem spec.Apollo_profile.name [ "perception"; "planning" ] then
    sc.callables <- map_api @ sc.callables;
  let n_fns = List.length plans in
  let per_fn_budget = if n_fns = 0 then 0 else loc_budget / Stdlib.max 1 n_fns in
  let kernel_names = ref [] in
  List.iter
    (fun plan ->
      match emit_function ng rng sc q w plan ~line_budget:per_fn_budget with
      | Some kname -> kernel_names := kname :: !kernel_names
      | None -> ())
    plans;
  (* host-side launch wrappers demonstrating the Figure 4 CUDA pattern *)
  List.iter
    (fun kname -> emit_cuda_host ng rng sc q w ~kernel_name:kname)
    (List.rev !kernel_names);
  blank w;
  line w (Printf.sprintf "}  // namespace %s" spec.Apollo_profile.name);
  line w "}  // namespace apollo";
  Buffer.contents w.buf

(* One module, generated entirely from its private SplitMix64 stream and
   name-id base — no shared mutable state, so modules are independent
   pool tasks. *)
let generate_module ~module_idx module_rng (spec : Apollo_profile.module_spec) =
  (* disjoint per-module name-id ranges: suffix uniqueness without
     cross-module sequencing (a module never mints 100k names) *)
  let ng = Namegen.make ~base:(module_idx * 100_000) () in
  let plans = make_plans module_rng spec in
  let q =
    {
      casts = spec.Apollo_profile.casts;
      gotos = spec.Apollo_profile.gotos;
      uninit = spec.Apollo_profile.uninit_vars;
      dead = spec.Apollo_profile.dead_code;
    }
  in
  let n_files = Stdlib.max 1 spec.Apollo_profile.n_files in
  let plan_arr = Array.of_list plans in
  let total_fns = Array.length plan_arr in
  let files =
    List.init n_files (fun file_idx ->
        let fn_start = total_fns * file_idx / n_files in
        let fn_stop = total_fns * (file_idx + 1) / n_files in
        let plans_here =
          Array.to_list (Array.sub plan_arr fn_start (fn_stop - fn_start))
        in
        let globals_here =
          split_quota spec.Apollo_profile.globals n_files file_idx
        in
        let loc_budget =
          split_quota spec.Apollo_profile.target_loc n_files file_idx - 15 - globals_here
        in
        let content =
          generate_file ng module_rng spec ~file_idx ~plans:plans_here ~q
            ~globals_here ~loc_budget
        in
        {
          Cfront.Project.path =
            Printf.sprintf "modules/%s/%s_component_%d.cc" spec.Apollo_profile.name
              spec.Apollo_profile.name file_idx;
          modname = spec.Apollo_profile.name;
          header = false;
          content;
        })
  in
  (* spend any unspent cast quota in a dedicated utility file so counts
     stay exact *)
  let files =
    if q.casts > 0 then begin
      let w = new_writer () in
      line w "// cast-heavy conversion helpers";
      line w "namespace apollo {";
      line w (Printf.sprintf "namespace %s {" spec.Apollo_profile.name);
      blank w;
      line w "void ConvertBatch(float* values, int* outputs, int n) {";
      push w;
      line w "for (int i = 0; i < n; ++i) {";
      push w;
      for _ = 1 to q.casts do
        line w "outputs[0] = (int)values[0];"
      done;
      q.casts <- 0;
      pop w;
      line w "}";
      pop w;
      line w "}";
      blank w;
      line w (Printf.sprintf "}  // namespace %s" spec.Apollo_profile.name);
      line w "}  // namespace apollo";
      files
      @ [
          {
            Cfront.Project.path =
              Printf.sprintf "modules/%s/%s_casts.cc" spec.Apollo_profile.name
                spec.Apollo_profile.name;
            modname = spec.Apollo_profile.name;
            header = false;
            content = Buffer.contents w.buf;
          };
        ]
    end
    else files
  in
  { Cfront.Project.m_name = spec.Apollo_profile.name; m_files = files }

(** Generate the whole project for a profile.  [seed] fixes everything. *)
let generate ?(seed = 2019) (specs : Apollo_profile.module_spec list) =
  Telemetry.with_span ~cat:"corpus" "corpus"
    ~attrs:[ ("seed", string_of_int seed);
             ("modules", string_of_int (List.length specs)) ]
    (fun () ->
      let rng = Util.Rng.create seed in
      (* The per-module streams are split off sequentially up front (the
         split sequence depends only on the seed and the module order),
         then module generation fans out over the worker pool: each task
         owns a private stream and a private name-id base, so the
         generated bytes are identical at every jobs value. *)
      let tasks =
        List.mapi (fun i spec -> (i, Util.Rng.split rng, spec)) specs
      in
      let modules =
        Telemetry.parallel_map ~chunk_size:1
          (fun (module_idx, module_rng, spec) ->
            generate_module ~module_idx module_rng spec)
          tasks
      in
      let project = Cfront.Project.make ~name:"apollo-corpus" modules in
      Telemetry.add "corpus.modules" (List.length modules);
      Telemetry.add "corpus.files" (Cfront.Project.file_count project);
      Telemetry.add "corpus.bytes"
        (List.fold_left
           (fun acc (f : Cfront.Project.source_file) ->
             acc + String.length f.Cfront.Project.content)
           0
           (Cfront.Project.all_files project));
      project)
