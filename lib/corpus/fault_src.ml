(** Fault-injection scenarios: the dynamic face of Observation 6.

    The paper's defensive-implementation finding ("all the functions
    should check the validity of their input parameters before using
    them ... defensive programming techniques are not used") predicts
    that invalid inputs reach memory operations unchecked.  Each scenario
    here drives a YOLO entry point with an invalid input; the interpreter's
    checked memory model turns the missing validation into an observable
    fault.  Scenarios where the code *does* validate (the exceptions) are
    expected to survive — the harness verifies both directions. *)

type expectation = Expect_fault | Expect_survive

type scenario = {
  sc_name : string;
  sc_description : string;
  sc_expect : expectation;
  sc_driver : string;  (** C source defining [int scenario()] *)
}

let scenarios =
  [
    {
      sc_name = "detections-overflow";
      sc_description =
        "get_region_detections writes past a caller buffer sized for fewer boxes";
      sc_expect = Expect_fault;
      sc_driver =
        {|int scenario() {
  layer l = make_region_layer(3, 1, 2);
  int total = 3 * 3 * 1 * 7;
  float* input = (float*)malloc(total * sizeof(float));
  for (int i = 0; i < total; ++i) {
    input[i] = 4.0;
  }
  forward_region_layer(&l, input, 0);
  detection* dets = (detection*)malloc(2 * sizeof(detection));
  int count = get_region_detections(&l, 0.1, dets);
  return count;
}|};
    };
    {
      sc_name = "maxpool-channel-mismatch";
      sc_description =
        "forward_maxpool_layer reads beyond an input sized for fewer channels";
      sc_expect = Expect_fault;
      sc_driver =
        {|int scenario() {
  layer l = make_maxpool_layer(8, 6, 6, 2, 2);
  float* small_input = (float*)malloc(2 * 6 * 6 * sizeof(float));
  for (int i = 0; i < 2 * 6 * 6; ++i) {
    small_input[i] = 1.0;
  }
  forward_maxpool_layer(&l, small_input);
  return 0;
}|};
    };
    {
      sc_name = "softmax-empty";
      sc_description = "softmax_cpu on an empty vector reads element zero";
      sc_expect = Expect_fault;
      sc_driver =
        {|int scenario() {
  float* buf = (float*)malloc(0 * sizeof(float));
  float* out = (float*)malloc(0 * sizeof(float));
  softmax_cpu(buf, 1, 1.0, out);
  return 0;
}|};
    };
    {
      sc_name = "gemm-lda-mismatch";
      sc_description = "gemm_nn with an oversized leading dimension walks off matrix A";
      sc_expect = Expect_fault;
      sc_driver =
        {|int scenario() {
  float* a = (float*)malloc(4 * sizeof(float));
  float* b = (float*)malloc(4 * sizeof(float));
  float* c = (float*)malloc(4 * sizeof(float));
  gemm_nn(2, 2, 2, 1.0, a, 8, b, 2, c, 2);
  return 0;
}|};
    };
    {
      sc_name = "im2col-padding-guard";
      sc_description =
        "im2col's boundary guard is the one defensive check present: out-of-image reads return 0";
      sc_expect = Expect_survive;
      sc_driver =
        {|int scenario() {
  float* im = (float*)malloc(1 * 4 * 4 * sizeof(float));
  for (int i = 0; i < 16; ++i) {
    im[i] = (float)i;
  }
  float* col = (float*)malloc(1 * 3 * 3 * 4 * 4 * sizeof(float));
  im2col_cpu(im, 1, 4, 4, 3, 1, 1, col);
  return 1;
}|};
    };
    {
      sc_name = "conv-param-validation";
      sc_description =
        "make_convolutional_layer validates non-positive sizes and returns an empty layer";
      sc_expect = Expect_survive;
      sc_driver =
        {|int scenario() {
  layer l = make_convolutional_layer(0, 6, 6, 4, 3, 1, 1, LEAKY);
  return l.out_c;
}|};
    };
    {
      sc_name = "nms-null-objectness";
      sc_description = "do_nms skips suppressed detections: no fault on zeroed boxes";
      sc_expect = Expect_survive;
      sc_driver =
        {|int scenario() {
  detection* dets = (detection*)malloc(3 * sizeof(detection));
  for (int i = 0; i < 3; ++i) {
    dets[i].objectness = 0.0;
    dets[i].bbox.x = 0.0;
    dets[i].bbox.y = 0.0;
    dets[i].bbox.w = 1.0;
    dets[i].bbox.h = 1.0;
  }
  do_nms(dets, 3, 0.5);
  free(dets);
  return 1;
}|};
    };
  ]

type outcome = {
  scenario : scenario;
  faulted : bool;
  detail : string;
  as_expected : bool;
}

(** Engine form of the scenario list, over a shared parse of the YOLO
    sources: each driver is parsed privately, but the measured units are
    the caller's [yolo_tus], so per-file hit sets collected by different
    fault scenarios merge on identical statement/decision ids. *)
let to_scenarios ~yolo_tus =
  List.map
    (fun sc ->
      {
        Coverage.Scenario.sc_name = sc.sc_name;
        sc_tus =
          yolo_tus
          @ [ Cfront.Parser.parse_file ~extra_types:Yolo_src.extra_types
                ~file:("fault/" ^ sc.sc_name ^ ".c") sc.sc_driver ];
        sc_entries = [ "scenario" ];
      })
    scenarios

let outcome_of sc (o : Coverage.Scenario.outcome) =
  let faulted, detail =
    match o.Coverage.Scenario.o_results with
    | [ (_, Ok v) ] -> (false, "returned " ^ Coverage.Value.to_string v)
    | [ (_, Error e) ] -> (true, e)
    | _ -> (true, "scenario did not run")
  in
  let as_expected =
    match sc.sc_expect with
    | Expect_fault -> faulted
    | Expect_survive -> not faulted
  in
  { scenario = sc; faulted; detail; as_expected }

(** Run every scenario against the YOLO sources.  Each scenario gets a
    fresh interpreter (a fault poisons the store); the scenarios are
    independent, so they fan out over the worker pool. *)
let run_all () =
  let yolo_tus = Yolo_src.parse_all () in
  List.map2 outcome_of scenarios
    (Coverage.Scenario.run_all (to_scenarios ~yolo_tus))

let summary outcomes =
  let expected_faults =
    List.filter (fun o -> o.scenario.sc_expect = Expect_fault) outcomes
  in
  let realized =
    List.length (List.filter (fun o -> o.faulted) expected_faults)
  in
  (realized, List.length expected_faults,
   List.length (List.filter (fun o -> o.as_expected) outcomes),
   List.length outcomes)
