(** The full dynamic-scenario set of the coverage experiments.  See
    scenario_set.mli. *)

type set = {
  tus : Cfront.Ast.tu list;
  measured : string list;
  scenarios : Coverage.Scenario.t list;
}

(* Probes grouped into fixed-size batches: each batch is one scenario
   (one env load amortized over several probes), and the batch size is a
   constant — never derived from the jobs value — so the scenario list
   is identical at every worker count. *)
let probe_batch_size = 8

let batches_of size xs =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n + 1 >= size then go (List.rev (x :: cur) :: acc) [] 0 rest
      else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 xs

let full () =
  Telemetry.with_span ~cat:"coverage" "coverage.scenario_set" @@ fun () ->
  (* ONE parse of the YOLO sources: statement/decision ids are assigned
     at parse time, so every scenario must share these units for its hit
     sets to merge onto the same keys. *)
  let yolo_tus = Yolo_src.parse_all () in
  let measured = List.map fst Yolo_src.measured_files in
  let real =
    {
      Coverage.Scenario.sc_name = "yolo-real-scenarios";
      sc_tus = yolo_tus;
      sc_entries = [ Yolo_src.entry ];
    }
  in
  let faults = Fault_src.to_scenarios ~yolo_tus in
  (* Gap probes need a baseline run to plan against; the baseline is a
     prefix of the set construction, not a member of the set — the real-
     scenario member replays it so the merged coverage still includes
     it.  Plans depend only on the (deterministic) baseline hit sets. *)
  let baseline = Coverage.Scenario.run_one real in
  let plans =
    Coverage.Testgen.plan_for_gaps baseline.Coverage.Scenario.o_collector
      yolo_tus ~measured
  in
  let driver, entries = Coverage.Testgen.driver_of_plans plans in
  let gap_tu = Cfront.Parser.parse_file ~file:"testgen/gap_driver.c" driver in
  let probes =
    List.mapi
      (fun i batch ->
        {
          Coverage.Scenario.sc_name = Printf.sprintf "testgen-probes-%d" i;
          sc_tus = yolo_tus @ [ gap_tu ];
          sc_entries = batch;
        })
      (batches_of probe_batch_size entries)
  in
  Telemetry.incr ~by:(1 + List.length faults + List.length probes)
    "coverage.scenario_set.size";
  { tus = yolo_tus; measured; scenarios = (real :: faults) @ probes }
