(** The full dynamic-scenario set of the coverage experiments.  See
    scenario_set.mli. *)

type set = {
  tus : Cfront.Ast.tu list;
  measured : string list;
  scenarios : Coverage.Scenario.t list;
}

(* Probes grouped into fixed-size batches: each batch is one scenario
   (one env load amortized over several probes), and the batch size is a
   constant — never derived from the jobs value — so the scenario list
   is identical at every worker count. *)
let probe_batch_size = 8

let batches_of size xs =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n + 1 >= size then go (List.rev (x :: cur) :: acc) [] 0 rest
      else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 xs

let full () =
  Telemetry.with_span ~cat:"coverage" "coverage.scenario_set" @@ fun () ->
  (* ONE parse of the YOLO sources: statement/decision ids are assigned
     at parse time, so every scenario must share these units for its hit
     sets to merge onto the same keys. *)
  let yolo_tus = Yolo_src.parse_all () in
  let measured = List.map fst Yolo_src.measured_files in
  (* One scenario per real-scenario test, in the driver's call order.
     Each test function is self-contained, so splitting the monolithic
     [main] driver into independent scenarios changes nothing about the
     measured coverage (test_corpus.ml holds a golden comparison against
     the monolithic run) while flattening the parallel critical path:
     the five tests spread across workers instead of serializing inside
     one scenario. *)
  let reals =
    List.map
      (fun fn ->
        let short =
          let prefix = "scenario_" in
          let n = String.length prefix in
          let s =
            if String.length fn > n && String.sub fn 0 n = prefix then
              String.sub fn n (String.length fn - n)
            else fn
          in
          String.map (fun c -> if c = '_' then '-' else c) s
        in
        {
          Coverage.Scenario.sc_name = "yolo-real-" ^ short;
          sc_tus = yolo_tus;
          sc_entries = [ fn ];
        })
      Yolo_src.scenario_entries
  in
  let faults = Fault_src.to_scenarios ~yolo_tus in
  (* Gap probes need a baseline run to plan against; the baseline is a
     prefix of the set construction, not a member of the set — the real-
     scenario members replay it so the merged coverage still includes
     it.  Plans depend only on the (deterministic) baseline hit sets,
     which the per-test split leaves unchanged on the measured files. *)
  let baseline =
    Coverage.Scenario.merged_collector
      (List.map (fun sc -> Coverage.Scenario.run_one sc) reals)
  in
  let plans = Coverage.Testgen.plan_for_gaps baseline yolo_tus ~measured in
  let driver, entries = Coverage.Testgen.driver_of_plans plans in
  let gap_tu = Cfront.Parser.parse_file ~file:"testgen/gap_driver.c" driver in
  let probes =
    List.mapi
      (fun i batch ->
        {
          Coverage.Scenario.sc_name = Printf.sprintf "testgen-probes-%d" i;
          sc_tus = yolo_tus @ [ gap_tu ];
          sc_entries = batch;
        })
      (batches_of probe_batch_size entries)
  in
  Telemetry.incr
    ~by:(List.length reals + List.length faults + List.length probes)
    "coverage.scenario_set.size";
  { tus = yolo_tus; measured; scenarios = reals @ faults @ probes }
