(** Fault-injection scenarios: the dynamic face of Observation 6.  Each
    scenario drives a YOLO entry point with an invalid input; missing
    validation becomes an observable memory fault in the checked
    interpreter, while the few validated paths survive. *)

type expectation = Expect_fault | Expect_survive

type scenario = {
  sc_name : string;
  sc_description : string;
  sc_expect : expectation;
  sc_driver : string;  (** C source defining [int scenario()] *)
}

val scenarios : scenario list

(** Engine form over a shared parse of the YOLO sources, so the hit sets
    different fault scenarios collect merge on identical ids. *)
val to_scenarios : yolo_tus:Cfront.Ast.tu list -> Coverage.Scenario.t list

type outcome = {
  scenario : scenario;
  faulted : bool;
  detail : string;  (** fault message or return value *)
  as_expected : bool;
}

(** Reinterpret an engine outcome against the scenario's expectation. *)
val outcome_of : scenario -> Coverage.Scenario.outcome -> outcome

(** Run every scenario, each in a fresh interpreter, fanned out over the
    worker pool (sequential at jobs=1). *)
val run_all : unit -> outcome list

(** [(faults realized, faults expected, as-expected, total)]. *)
val summary : outcome list -> int * int * int * int
