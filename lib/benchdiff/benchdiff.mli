(** Performance-record comparison: the [adcheck bench-diff] regression
    gate.

    Loads two machine-readable performance records — [adcheck-bench/1]
    (the bench harness's per-experiment wall times and counter
    snapshots) or [adcheck-metrics/1] (the flight recorder's counters
    and histograms) — and compares them under the gate's policy:

    - {b counters are exact}: any difference in a counter value, a
      value histogram's sample count / zero count / bucket contents /
      integer sum, a timing histogram's sample count, or the key sets
      themselves is a finding.  These are deterministic at a fixed seed
      and scale, so any drift is a behaviour change, not noise.
    - {b latencies are thresholded}: wall times and timing-histogram
      ("*_us") time sums compare with a relative tolerance
      ([--fail-on-regress PCT]) and an absolute floor, so scheduler
      noise below the floor never fails the gate.  Timing-histogram
      bucket contents are wall-clock noise and are not compared at all.
      Only regressions (new slower than old) count; improvements pass
      silently.

    A self-compare of any record yields no findings — [make check]
    runs exactly that as a schema sanity gate. *)

(** Minimal JSON reader (no external dependency); shared by the tests
    to parse the exporters' output back. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  (** @raise Parse_error on malformed input. *)
  val parse : string -> t

  val member : string -> t -> t option
end

(** One comparable record, uniform over both schemas. *)
type record = {
  r_schema : string;
  r_counters : (string * int) list;
      (** exact-match series, sorted by key: counters, histogram
          counts/zeros, bucket contents ("h/bucket\[i\]" keys),
          per-experiment counter snapshots ("name\@jobs/ctr" keys) *)
  r_latencies : (string * float * float) list;
      (** thresholded series, sorted: (key, value, absolute floor in
          the value's own unit) *)
}

(** Parse a record file.  [Error] carries a human-readable reason
    (unreadable file, malformed JSON, unknown schema). *)
val load : string -> (record, string) result

type finding =
  | Schema_mismatch of string * string  (** old, new *)
  | Counter_changed of string * int * int  (** key, old, new *)
  | Series_missing of string * string  (** side ("old"/"new"), key *)
  | Latency_regression of string * float * float * float
      (** key, old, new, percent increase *)

(** [diff ~fail_on_regress_pct old_r new_r] returns all findings, exact
    mismatches first.  Latency keys present in only one record are not
    findings (experiments legitimately come and go between runs);
    counter keys are. *)
val diff : fail_on_regress_pct:float -> record -> record -> finding list

(** No findings. *)
val ok : finding list -> bool

val render_finding : finding -> string

(** One line per finding plus a verdict line. *)
val render : finding list -> string
