(** Performance-record comparison.  See benchdiff.mli. *)

(* ------------------------------------------------------------------ *)
(* Minimal JSON reader                                                 *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let lit word v =
      String.iter expect word;
      v
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
           | Some '"' -> Buffer.add_char buf '"'; advance ()
           | Some '\\' -> Buffer.add_char buf '\\'; advance ()
           | Some '/' -> Buffer.add_char buf '/'; advance ()
           | Some 'n' -> Buffer.add_char buf '\n'; advance ()
           | Some 'r' -> Buffer.add_char buf '\r'; advance ()
           | Some 't' -> Buffer.add_char buf '\t'; advance ()
           | Some 'b' -> Buffer.add_char buf '\b'; advance ()
           | Some 'f' -> Buffer.add_char buf '\012'; advance ()
           | Some 'u' ->
             advance ();
             if !pos + 4 > n then fail "bad \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
              | Some _ -> Buffer.add_char buf '?'
              | None -> fail "bad \\u escape")
           | _ -> fail "bad escape");
          go ()
        | Some c -> Buffer.add_char buf c; advance (); go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c when is_num_char c -> true | _ -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (members [])
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Arr (elements [])
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> lit "true" (Bool true)
      | Some 'f' -> lit "false" (Bool false)
      | Some 'n' -> lit "null" Null
      | Some _ -> parse_number ()
      | None -> fail "unexpected end of input"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member key = function
    | Obj kvs -> List.assoc_opt key kvs
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Extracting comparable series                                        *)
(* ------------------------------------------------------------------ *)

type record = {
  r_schema : string;
  r_counters : (string * int) list;
  r_latencies : (string * float * float) list;
}

exception Bad_record of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_record m)) fmt

let as_obj what = function
  | Json.Obj kvs -> kvs
  | _ -> bad "%s: expected an object" what

let as_arr what = function
  | Json.Arr l -> l
  | _ -> bad "%s: expected an array" what

let as_num what = function
  | Json.Num f -> f
  | _ -> bad "%s: expected a number" what

let as_str what = function
  | Json.Str s -> s
  | _ -> bad "%s: expected a string" what

let get what key j =
  match Json.member key j with
  | Some v -> v
  | None -> bad "%s: missing member %S" what key

let int_entries what j =
  List.map (fun (k, v) -> (k, int_of_float (as_num (what ^ "." ^ k) v))) (as_obj what j)

(* Wall-time floors below which a latency difference is never a
   regression: scheduler noise on sub-millisecond experiments and
   sub-millisecond histogram totals is not signal. *)
let wall_ms_floor = 1.0
let hist_sum_us_floor = 1000.0

(* adcheck-bench/1: per-experiment wall times (thresholded) plus the
   experiment counter snapshots and the final global counters (exact). *)
let of_bench j =
  let counters = ref (int_entries "counters" (get "bench" "counters" j)) in
  let latencies = ref [] in
  List.iter
    (fun e ->
      let name = as_str "experiment.name" (get "experiment" "name" e) in
      let jobs = int_of_float (as_num "experiment.jobs" (get "experiment" "jobs" e)) in
      let tag = Printf.sprintf "%s@%d" name jobs in
      latencies :=
        (tag ^ "/wall_ms", as_num "experiment.wall_ms" (get "experiment" "wall_ms" e),
         wall_ms_floor)
        :: !latencies;
      List.iter
        (fun (k, v) -> counters := (tag ^ "/" ^ k, v) :: !counters)
        (int_entries "experiment.counters" (get "experiment" "counters" e)))
    (as_arr "experiments" (get "bench" "experiments" j));
  { r_schema = "adcheck-bench/1";
    r_counters = List.sort compare !counters;
    r_latencies = List.sort compare !latencies }

(* Timing histograms carry a "_us" component — either a plain suffix
   ("parse.file_us") or followed by a key ("misra.rule_us.10.3"); their
   sample values are wall-clock-dependent between real runs. *)
let is_timing_hist name =
  let n = String.length name in
  let rec scan i =
    if i + 3 > n then false
    else if String.sub name i 3 = "_us" && (i + 3 = n || name.[i + 3] = '.')
    then true
    else scan (i + 1)
  in
  scan 0

(* adcheck-metrics/1: counters exact.  Value histograms (per-file AST
   sizes, per-rule violation counts, ...) are fully deterministic at a
   fixed seed, so count, zeros, bucket contents and (integer-valued) sum
   all compare exactly.  Timing histograms ("*_us") keep an exact sample
   count — how many times a rule ran is a behaviour, not a speed — but
   their durations are thresholded via the time sum; their bucket
   contents and zero counts are wall-clock noise between real runs and
   are not compared.  The "runtime" section is skipped entirely — it
   varies with --jobs and scheduling by design. *)
let of_metrics j =
  let counters = ref (int_entries "counters" (get "metrics" "counters" j)) in
  let latencies = ref [] in
  List.iter
    (fun (name, h) ->
      let whn what = Printf.sprintf "histograms.%s.%s" name what in
      let geti what = int_of_float (as_num (whn what) (get (whn what) what h)) in
      counters := (name ^ "/count", geti "count") :: !counters;
      if is_timing_hist name then
        latencies :=
          (name ^ "/sum", as_num (whn "sum") (get (whn "sum") "sum" h),
           hist_sum_us_floor)
          :: !latencies
      else begin
        counters := (name ^ "/zeros", geti "zeros") :: (name ^ "/sum", geti "sum")
                    :: !counters;
        List.iter
          (fun pair ->
            match as_arr (whn "buckets") pair with
            | [ Json.Num i; Json.Num c ] ->
              counters :=
                (Printf.sprintf "%s/bucket[%d]" name (int_of_float i),
                 int_of_float c)
                :: !counters
            | _ -> bad "%s: expected [index, count] pairs" (whn "buckets"))
          (as_arr (whn "buckets") (get (whn "buckets") "buckets" h))
      end)
    (as_obj "histograms" (get "metrics" "histograms" j));
  { r_schema = "adcheck-metrics/1";
    r_counters = List.sort compare !counters;
    r_latencies = List.sort compare !latencies }

let load path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error e
  | contents -> (
    match Json.parse contents with
    | exception Json.Parse_error e -> Error (path ^ ": " ^ e)
    | j -> (
      match Json.member "schema" j with
      | Some (Json.Str "adcheck-bench/1") -> (
        try Ok (of_bench j) with Bad_record e -> Error (path ^ ": " ^ e))
      | Some (Json.Str "adcheck-metrics/1") -> (
        try Ok (of_metrics j) with Bad_record e -> Error (path ^ ": " ^ e))
      | Some (Json.Str s) -> Error (path ^ ": unknown schema " ^ s)
      | _ -> Error (path ^ ": missing schema tag")))

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

type finding =
  | Schema_mismatch of string * string
  | Counter_changed of string * int * int
  | Series_missing of string * string
  | Latency_regression of string * float * float * float

let diff ~fail_on_regress_pct old_r new_r =
  if old_r.r_schema <> new_r.r_schema then
    [ Schema_mismatch (old_r.r_schema, new_r.r_schema) ]
  else begin
    let exact = ref [] in
    (* both counter lists are sorted: a linear merge classifies every key *)
    let rec walk olds news =
      match (olds, news) with
      | [], [] -> ()
      | (k, _) :: rest, [] ->
        exact := Series_missing ("new", k) :: !exact;
        walk rest []
      | [], (k, _) :: rest ->
        exact := Series_missing ("old", k) :: !exact;
        walk [] rest
      | (ko, vo) :: ro, (kn, vn) :: rn ->
        if ko = kn then begin
          if vo <> vn then exact := Counter_changed (ko, vo, vn) :: !exact;
          walk ro rn
        end
        else if ko < kn then begin
          exact := Series_missing ("new", ko) :: !exact;
          walk ro news
        end
        else begin
          exact := Series_missing ("old", kn) :: !exact;
          walk olds rn
        end
    in
    walk old_r.r_counters new_r.r_counters;
    let regressions =
      List.filter_map
        (fun (k, nv, floor) ->
          match
            List.find_opt (fun (ko, _, _) -> ko = k) old_r.r_latencies
          with
          | None -> None  (* experiments come and go; not a gate failure *)
          | Some (_, ov, _) ->
            if nv -. ov > floor && nv > ov *. (1.0 +. (fail_on_regress_pct /. 100.0))
            then
              Some
                (Latency_regression
                   (k, ov, nv, 100.0 *. ((nv /. Float.max 1e-9 ov) -. 1.0)))
            else None)
        new_r.r_latencies
    in
    List.rev !exact @ regressions
  end

let ok findings = findings = []

let render_finding = function
  | Schema_mismatch (o, n) -> Printf.sprintf "schema mismatch: old=%s new=%s" o n
  | Counter_changed (k, o, n) -> Printf.sprintf "counter %s: %d -> %d" k o n
  | Series_missing (side, k) -> Printf.sprintf "series %s only in %s record" k
                                  (match side with "new" -> "the old" | _ -> "the new")
  | Latency_regression (k, o, n, pct) ->
    Printf.sprintf "latency %s regressed: %.3f -> %.3f (+%.1f%%)" k o n pct

let render findings =
  match findings with
  | [] -> "bench-diff: no regressions\n"
  | fs ->
    String.concat ""
      (List.map (fun f -> "bench-diff: " ^ render_finding f ^ "\n") fs)
    ^ Printf.sprintf "bench-diff: %d finding(s)\n" (List.length fs)
