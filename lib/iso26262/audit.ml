(** End-to-end audit pipeline: generate (or accept) a project, extract
    metrics, run the coverage experiments, and assess every guideline.

    This is the library's top-level entry point — the CLI, the examples
    and the benchmark harness are thin wrappers over [run]. *)

type t = {
  parsed : Cfront.Project.parsed;
  metrics : Project_metrics.t;
  coding : Assess.finding list;
  architecture : Assess.finding list;
  unit_design : Assess.finding list;
  yolo_coverage : Coverage.Collector.file_coverage list;
  yolo_run_output : string;
  stencil_coverage : Coverage.Collector.file_coverage list;
  observations : Observations.t list;
  journal : Provenance.finding list;
}

(* ------------------------------------------------------------------ *)
(* Incremental caching support                                          *)
(* ------------------------------------------------------------------ *)

(* Project-internal include edges: [#include "x"] resolved against the
   project's own paths.  The generated corpus includes module headers as
   "modules/<mod>/common.h" while project paths are "<mod>/common.h", so
   resolution accepts exact matches and suffix containment either way. *)
let include_deps_of_content ~paths content =
  let deps = ref [] in
  let resolve inc =
    List.iter
      (fun p ->
        if
          p = inc
          || String.ends_with ~suffix:("/" ^ p) inc
          || String.ends_with ~suffix:("/" ^ inc) p
        then deps := p :: !deps)
      paths
  in
  String.split_on_char '\n' content
  |> List.iter (fun line ->
         let line = String.trim line in
         if String.length line > 8 && String.sub line 0 8 = "#include" then
           match String.index_opt line '"' with
           | None -> ()
           | Some q0 -> (
             match String.index_from_opt line (q0 + 1) '"' with
             | None -> ()
             | Some q1 -> resolve (String.sub line (q0 + 1) (q1 - q0 - 1))));
  List.sort_uniq compare !deps

(* Dependency manifest of a parsed tree: per-file content hash plus the
   project files each file depends on — its quoted includes and the
   files defining functions it calls (caller depends on callee: editing
   the callee's file invalidates the caller's whole-program artifacts).
   Saved after every cache-enabled audit; the next audit diffs its tree
   against it to invalidate exactly the changed files and their
   transitive reverse-dependents before consulting any artifact. *)
let manifest_of_parsed (parsed : Cfront.Project.parsed) =
  let files = Cfront.Project.all_files parsed.Cfront.Project.project in
  let paths = List.map (fun f -> f.Cfront.Project.path) files in
  let file_of_fn = Hashtbl.create 256 in
  List.iter
    (fun (pf : Cfront.Project.parsed_file) ->
      List.iter
        (fun (fn : Cfront.Ast.func) ->
          if fn.Cfront.Ast.f_body <> None then
            Hashtbl.replace file_of_fn
              (Cfront.Ast.qualified_name fn)
              pf.Cfront.Project.file.Cfront.Project.path)
        (Cfront.Ast.functions_of_tu pf.Cfront.Project.tu))
    parsed.Cfront.Project.files;
  let call_deps = Hashtbl.create 256 in
  let graph = Cfront.Callgraph.build (Cfront.Project.all_functions parsed) in
  List.iter
    (fun (caller, callee) ->
      match (Hashtbl.find_opt file_of_fn caller, Hashtbl.find_opt file_of_fn callee) with
      | Some cf, Some ce when cf <> ce ->
        Hashtbl.replace call_deps cf
          (ce :: Option.value ~default:[] (Hashtbl.find_opt call_deps cf))
      | _ -> ())
    graph.Cfront.Callgraph.edges;
  Cache.Manifest.make
    (List.map
       (fun (f : Cfront.Project.source_file) ->
         let deps =
           include_deps_of_content ~paths f.Cfront.Project.content
           @ Option.value ~default:[]
               (Hashtbl.find_opt call_deps f.Cfront.Project.path)
         in
         ( f.Cfront.Project.path,
           Cache.fnv1a64 f.Cfront.Project.content,
           List.filter (fun d -> d <> f.Cfront.Project.path) deps ))
       files)

(* Diff the incoming tree against the stored manifest: the invalidation
   set is every changed file plus its transitive reverse-dependents
   under the OLD edges.  Because artifact keys are content-addressed, a
   stale entry can never falsely hit — the set is reported (counter
   [cache.invalidate], one per invalidated path) rather than swept, so
   reverting an edit restores the original artifacts as cache hits.
   Only artifacts owned by paths that left the tree entirely (deletes,
   the old side of a rename) are physically removed: no future tree can
   ever hit them.  Runs BEFORE the parse so the fresh artifacts the
   parse stores are never swept. *)
let invalidate_against_manifest c (project : Cfront.Project.t) =
  let hashes =
    List.map
      (fun (f : Cfront.Project.source_file) ->
        (f.Cfront.Project.path, Cache.fnv1a64 f.Cfront.Project.content))
      (Cfront.Project.all_files project)
  in
  match Cache.Manifest.load c ~name:project.Cfront.Project.p_name with
  | None -> []
  | Some old ->
    let inv = Cache.Manifest.invalidated ~old hashes in
    if inv <> [] then begin
      let gone =
        List.filter
          (fun p -> not (List.mem_assoc p hashes))
          (List.map (fun (e : Cache.Manifest.entry) -> e.Cache.Manifest.e_path)
             old.Cache.Manifest.entries)
      in
      let removed = if gone = [] then 0 else Cache.remove_owned c gone in
      Telemetry.add "cache.invalidate" (List.length inv);
      Util.Log.info
        "cache: %d changed/dependent file(s) invalidated, %d orphaned \
         artifact(s) removed"
        (List.length inv) removed
    end;
    inv

(* Memoize a whole coverage phase (parse embedded sources, run the
   scenarios, score).  Collector fingerprints embed the raw eids/sids
   the phase's parse assigns, so an artifact recorded at one id base can
   only be replayed at the same base — the phase therefore pins the
   global counters to its own fixed [base] first, making the artifact
   (and the scenario/bytecode artifacts recorded inside the phase)
   independent of how many ids the corpus consumed: a corpus edit leaves
   the whole coverage layer warm.  The key still carries the observed
   entry state as a guard; at jobs>1 two phases can race on the shared
   counters, in which case the key records a foreign base and the phase
   conservatively recomputes.  Findings recorded inside the phase
   (coverage-gap findings from scoring) are captured and replayed so the
   evidence journal stays byte-identical. *)
let cached_coverage_phase ~name ~base ~(src_files : (string * string) list) f =
  match Cache.global () with
  | None -> f ()
  | Some c ->
    Cfront.Parser.set_ids ~eids:base ~sids:base;
    let e0, s0 = Cfront.Parser.id_state () in
    let key =
      Cache.key ~kind:"covphase"
        [ name;
          Cache.fnv1a64
            (String.concat "\x00"
               (List.concat_map (fun (p, s) -> [ p; s ]) src_files));
          string_of_int e0; string_of_int s0 ]
    in
    (match Cache.find c ~kind:"covphase" ~key with
     | Some (result, findings, d_eids, d_sids) ->
       Cfront.Parser.reserve_ids ~eids:d_eids ~sids:d_sids;
       Provenance.absorb findings;
       result
     | None ->
       let result, findings = Provenance.collect f in
       let e1, s1 = Cfront.Parser.id_state () in
       Cache.store c ~kind:"covphase" ~key (result, findings, e1 - e0, s1 - s0);
       Provenance.absorb findings;
       result)

let run_yolo_coverage () =
  let tus = Corpus.Yolo_src.parse_all () in
  let measured = List.map fst Corpus.Yolo_src.measured_files in
  let result = Cudasim.Runner.run ~entry:Corpus.Yolo_src.entry ~measured tus in
  (result.Cudasim.Runner.files, result.Cudasim.Runner.output,
   result.Cudasim.Runner.exit_value)

let run_stencil_coverage () =
  let tus = Corpus.Stencil_src.parse_all () in
  let measured = List.map fst Corpus.Stencil_src.measured_files in
  let result = Cudasim.Runner.run ~entry:Corpus.Stencil_src.entry ~measured tus in
  (result.Cudasim.Runner.files, result.Cudasim.Runner.exit_value)

(* The audited coverage phases, memoized whole when the cache is on.
   Bases are far above any corpus id range and far apart from each
   other, so neither corpus growth nor the sibling phase can reach into
   a phase's id space at jobs=1. *)
let yolo_phase () =
  cached_coverage_phase ~name:"coverage.yolo" ~base:0x1000000
    ~src_files:Corpus.Yolo_src.files run_yolo_coverage

let stencil_phase () =
  cached_coverage_phase ~name:"coverage.stencil" ~base:0x2000000
    ~src_files:Corpus.Stencil_src.files run_stencil_coverage

(** [run ()] audits the default full-scale Apollo-profile corpus.

    [open_vs_closed] supplies the open/closed library performance ratios
    for Observation 12 (computed by the [gpuperf] library; passing them in
    keeps this library independent of the performance model). *)
(* Journal a verdict that falls short of its guideline threshold; the
   witness quotes the topic, the measured evidence sentence and the
   headline number the assessment compared. *)
let record_metric_findings (findings : Assess.finding list) =
  List.iter
    (fun (f : Assess.finding) ->
      match f.Assess.verdict with
      | Assess.Pass | Assess.Not_applicable -> ()
      | (Assess.Partial | Assess.Fail) as verdict ->
        let topic = f.Assess.topic in
        Provenance.record
          (Provenance.make ~kind:"metric" ~analysis:(Guidelines.topic_id topic)
             ~message:
               (Printf.sprintf "%s: %s" (Assess.verdict_name verdict)
                  topic.Guidelines.title)
             ~witness:
               ([
                  Provenance.step "topic" "%s, topic %d: %s"
                    (Guidelines.table_name topic.Guidelines.table)
                    topic.Guidelines.index topic.Guidelines.title;
                  Provenance.step "evidence" "%s" f.Assess.evidence;
                ]
                @
                match f.Assess.measured with
                | Some x -> [ Provenance.step "measured" "headline value %g" x ]
                | None -> [])
             ()))
    findings

let run ?(seed = 2019) ?(specs = Corpus.Apollo_profile.full)
    ?(thresholds = Assess.default_thresholds) ?(open_vs_closed = []) ?project () =
  (* The audit owns the journal: every run starts it afresh, so [t.journal]
     is exactly this run's evidence. *)
  Provenance.reset ();
  Telemetry.with_span ~cat:"audit" "audit"
    ~attrs:[ ("seed", string_of_int seed);
             ("modules", string_of_int (List.length specs)) ]
  @@ fun () ->
  let cache = Cache.global () in
  (* Cache-enabled runs restart the global id counters, making every
     audit's id trajectory process-position-independent: artifacts
     recorded by one process (or an earlier audit in this one) are hits
     in the next.  The cold no-cache oracle path never resets. *)
  (match cache with Some _ -> Cfront.Parser.reset_ids () | None -> ());
  (* [gc_phase] wraps each pipeline stage: runtime-tier GC deltas and
     phase wall time per stage (who allocates, who collects), without
     touching the deterministic work-tier data recorded inside. *)
  let project =
    match project with
    | Some p -> p
    | None ->
      Telemetry.gc_phase "corpus" (fun () -> Corpus.Generator.generate ~seed specs)
  in
  (* Invalidation happens before the parse, against the previous run's
     manifest: changed files and their transitive reverse-dependents
     lose their artifacts, everything else stays warm. *)
  (match cache with
   | Some c -> ignore (invalidate_against_manifest c project)
   | None -> ());
  let parsed = Telemetry.gc_phase "parse" (fun () -> Cfront.Project.parse project) in
  (* Record the new tree's manifest (content hashes + include/callgraph
     edges) for the next run's diff. *)
  (match cache with
   | Some c ->
     Cache.Manifest.save c ~name:project.Cfront.Project.p_name
       (manifest_of_parsed parsed)
   | None -> ());
  let metrics, (yolo_coverage, yolo_run_output, yolo_exit),
      (stencil_coverage, stencil_exit) =
    match Util.Pool.global () with
    | None ->
      (* jobs=1: the exact sequential oracle, phase after phase. *)
      let metrics =
        Telemetry.gc_phase "metrics" (fun () -> Project_metrics.of_parsed parsed)
      in
      let yolo = Telemetry.gc_phase "coverage.yolo" yolo_phase in
      let stencil = Telemetry.gc_phase "coverage.stencil" stencil_phase in
      (metrics, yolo, stencil)
    | Some pool ->
      (* Pipelined phases: the corpus parse above is the shared prefix;
         misra, dataflow and the two coverage scenarios fan out to pool
         workers while the main domain runs the core metric walk, and
         everything joins before report assembly.  Phases only read
         [parsed] and merge into telemetry counters (mutex-protected
         sums, so totals are independent of interleaving); spans emitted
         on workers carry the worker's domain id and overlap in a
         [--trace] timeline.  GC deltas attribute each worker phase's
         allocation to its name (quick_stat is per-domain in OCaml 5's
         minor-heap counters, per-process in the major ones — a pragmatic
         attribution, flagged runtime-tier for exactly that reason). *)
      (* Each future's findings come back with its result ([collect] on
         the worker) and are absorbed at the await; the journal's
         canonical export order makes the different await orders at
         different jobs values invisible. *)
      let submit_collected name f =
        Util.Pool.submit pool (fun () ->
            Provenance.collect (fun () -> Telemetry.gc_phase name f))
      in
      let await_absorb fut =
        let result, findings = Util.Pool.await fut in
        Provenance.absorb findings;
        result
      in
      let f_misra =
        submit_collected "misra" (fun () ->
            Project_metrics.misra_of_parsed parsed)
      in
      let f_dataflow =
        submit_collected "dataflow" (fun () ->
            Project_metrics.module_dataflow_of_parsed parsed)
      in
      let f_yolo = submit_collected "coverage.yolo" yolo_phase in
      let f_stencil = submit_collected "coverage.stencil" stencil_phase in
      let metrics =
        Telemetry.gc_phase "metrics" (fun () ->
            Project_metrics.of_parsed_with
              ~misra:(fun () -> await_absorb f_misra)
              ~module_dataflow:(await_absorb f_dataflow) parsed)
      in
      (metrics, await_absorb f_yolo, await_absorb f_stencil)
  in
  (match yolo_exit with
   | Ok _ -> ()
   | Error e -> failwith ("YOLO coverage scenario failed: " ^ e));
  (match stencil_exit with
   | Ok _ -> ()
   | Error e -> failwith ("stencil coverage scenario failed: " ^ e));
  Telemetry.with_span ~cat:"audit" "audit.assess" @@ fun () ->
  let coding = Assess.assess_coding ~th:thresholds metrics in
  let architecture = Assess.assess_architecture ~th:thresholds metrics in
  let unit_design = Assess.assess_unit_design ~th:thresholds metrics in
  record_metric_findings (coding @ architecture @ unit_design);
  {
    parsed;
    metrics;
    coding;
    architecture;
    unit_design;
    yolo_coverage;
    yolo_run_output;
    stencil_coverage;
    observations =
      Observations.of_metrics metrics ~yolo_coverage ~stencil_coverage
        ~open_vs_closed;
    journal = Provenance.findings ();
  }

let all_findings audit = audit.coding @ audit.architecture @ audit.unit_design

(** Render the complete audit as the paper's sequence of artifacts. *)
let render audit =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Report.render_module_summaries audit.metrics);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Report.render_dataflow audit.metrics);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Report.render_interproc audit.metrics.Project_metrics.interproc);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Report.render_findings
       ~title:"Paper Table 1: modeling and coding guidelines (ISO 26262-6 Table 1)"
       audit.coding);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Report.render_findings
       ~title:"Paper Table 2: architectural design (ISO 26262-6 Table 3)"
       audit.architecture);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Report.render_findings
       ~title:"Paper Table 3: unit design and implementation (ISO 26262-6 Table 8)"
       audit.unit_design);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Report.render_coverage ~title:"Figure 5: object detection (YOLO) coverage"
       audit.yolo_coverage);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Report.render_coverage
       ~title:"Figure 6: CUDA stencils run on CPU (cuda4cpu) coverage"
       audit.stencil_coverage);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Report.render_observations audit.observations);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Traceability.render_tool_evidence ~journal:audit.journal
       ~observations:audit.observations audit.metrics);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Report.render_compliance (all_findings audit));
  Buffer.contents buf
