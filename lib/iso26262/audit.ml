(** End-to-end audit pipeline: generate (or accept) a project, extract
    metrics, run the coverage experiments, and assess every guideline.

    This is the library's top-level entry point — the CLI, the examples
    and the benchmark harness are thin wrappers over [run]. *)

type t = {
  parsed : Cfront.Project.parsed;
  metrics : Project_metrics.t;
  coding : Assess.finding list;
  architecture : Assess.finding list;
  unit_design : Assess.finding list;
  yolo_coverage : Coverage.Collector.file_coverage list;
  yolo_run_output : string;
  stencil_coverage : Coverage.Collector.file_coverage list;
  observations : Observations.t list;
  journal : Provenance.finding list;
}

let run_yolo_coverage () =
  let tus = Corpus.Yolo_src.parse_all () in
  let measured = List.map fst Corpus.Yolo_src.measured_files in
  let result = Cudasim.Runner.run ~entry:Corpus.Yolo_src.entry ~measured tus in
  (result.Cudasim.Runner.files, result.Cudasim.Runner.output,
   result.Cudasim.Runner.exit_value)

let run_stencil_coverage () =
  let tus = Corpus.Stencil_src.parse_all () in
  let measured = List.map fst Corpus.Stencil_src.measured_files in
  let result = Cudasim.Runner.run ~entry:Corpus.Stencil_src.entry ~measured tus in
  (result.Cudasim.Runner.files, result.Cudasim.Runner.exit_value)

(** [run ()] audits the default full-scale Apollo-profile corpus.

    [open_vs_closed] supplies the open/closed library performance ratios
    for Observation 12 (computed by the [gpuperf] library; passing them in
    keeps this library independent of the performance model). *)
(* Journal a verdict that falls short of its guideline threshold; the
   witness quotes the topic, the measured evidence sentence and the
   headline number the assessment compared. *)
let record_metric_findings (findings : Assess.finding list) =
  List.iter
    (fun (f : Assess.finding) ->
      match f.Assess.verdict with
      | Assess.Pass | Assess.Not_applicable -> ()
      | (Assess.Partial | Assess.Fail) as verdict ->
        let topic = f.Assess.topic in
        Provenance.record
          (Provenance.make ~kind:"metric" ~analysis:(Guidelines.topic_id topic)
             ~message:
               (Printf.sprintf "%s: %s" (Assess.verdict_name verdict)
                  topic.Guidelines.title)
             ~witness:
               ([
                  Provenance.step "topic" "%s, topic %d: %s"
                    (Guidelines.table_name topic.Guidelines.table)
                    topic.Guidelines.index topic.Guidelines.title;
                  Provenance.step "evidence" "%s" f.Assess.evidence;
                ]
                @
                match f.Assess.measured with
                | Some x -> [ Provenance.step "measured" "headline value %g" x ]
                | None -> [])
             ()))
    findings

let run ?(seed = 2019) ?(specs = Corpus.Apollo_profile.full)
    ?(thresholds = Assess.default_thresholds) ?(open_vs_closed = []) () =
  (* The audit owns the journal: every run starts it afresh, so [t.journal]
     is exactly this run's evidence. *)
  Provenance.reset ();
  Telemetry.with_span ~cat:"audit" "audit"
    ~attrs:[ ("seed", string_of_int seed);
             ("modules", string_of_int (List.length specs)) ]
  @@ fun () ->
  (* [gc_phase] wraps each pipeline stage: runtime-tier GC deltas and
     phase wall time per stage (who allocates, who collects), without
     touching the deterministic work-tier data recorded inside. *)
  let project =
    Telemetry.gc_phase "corpus" (fun () -> Corpus.Generator.generate ~seed specs)
  in
  let parsed = Telemetry.gc_phase "parse" (fun () -> Cfront.Project.parse project) in
  let metrics, (yolo_coverage, yolo_run_output, yolo_exit),
      (stencil_coverage, stencil_exit) =
    match Util.Pool.global () with
    | None ->
      (* jobs=1: the exact sequential oracle, phase after phase. *)
      let metrics =
        Telemetry.gc_phase "metrics" (fun () -> Project_metrics.of_parsed parsed)
      in
      let yolo = Telemetry.gc_phase "coverage.yolo" run_yolo_coverage in
      let stencil = Telemetry.gc_phase "coverage.stencil" run_stencil_coverage in
      (metrics, yolo, stencil)
    | Some pool ->
      (* Pipelined phases: the corpus parse above is the shared prefix;
         misra, dataflow and the two coverage scenarios fan out to pool
         workers while the main domain runs the core metric walk, and
         everything joins before report assembly.  Phases only read
         [parsed] and merge into telemetry counters (mutex-protected
         sums, so totals are independent of interleaving); spans emitted
         on workers carry the worker's domain id and overlap in a
         [--trace] timeline.  GC deltas attribute each worker phase's
         allocation to its name (quick_stat is per-domain in OCaml 5's
         minor-heap counters, per-process in the major ones — a pragmatic
         attribution, flagged runtime-tier for exactly that reason). *)
      (* Each future's findings come back with its result ([collect] on
         the worker) and are absorbed at the await; the journal's
         canonical export order makes the different await orders at
         different jobs values invisible. *)
      let submit_collected name f =
        Util.Pool.submit pool (fun () ->
            Provenance.collect (fun () -> Telemetry.gc_phase name f))
      in
      let await_absorb fut =
        let result, findings = Util.Pool.await fut in
        Provenance.absorb findings;
        result
      in
      let f_misra =
        submit_collected "misra" (fun () ->
            Project_metrics.misra_of_parsed parsed)
      in
      let f_dataflow =
        submit_collected "dataflow" (fun () ->
            Project_metrics.module_dataflow_of_parsed parsed)
      in
      let f_yolo = submit_collected "coverage.yolo" run_yolo_coverage in
      let f_stencil = submit_collected "coverage.stencil" run_stencil_coverage in
      let metrics =
        Telemetry.gc_phase "metrics" (fun () ->
            Project_metrics.of_parsed_with
              ~misra:(fun () -> await_absorb f_misra)
              ~module_dataflow:(await_absorb f_dataflow) parsed)
      in
      (metrics, await_absorb f_yolo, await_absorb f_stencil)
  in
  (match yolo_exit with
   | Ok _ -> ()
   | Error e -> failwith ("YOLO coverage scenario failed: " ^ e));
  (match stencil_exit with
   | Ok _ -> ()
   | Error e -> failwith ("stencil coverage scenario failed: " ^ e));
  Telemetry.with_span ~cat:"audit" "audit.assess" @@ fun () ->
  let coding = Assess.assess_coding ~th:thresholds metrics in
  let architecture = Assess.assess_architecture ~th:thresholds metrics in
  let unit_design = Assess.assess_unit_design ~th:thresholds metrics in
  record_metric_findings (coding @ architecture @ unit_design);
  {
    parsed;
    metrics;
    coding;
    architecture;
    unit_design;
    yolo_coverage;
    yolo_run_output;
    stencil_coverage;
    observations =
      Observations.of_metrics metrics ~yolo_coverage ~stencil_coverage
        ~open_vs_closed;
    journal = Provenance.findings ();
  }

let all_findings audit = audit.coding @ audit.architecture @ audit.unit_design

(** Render the complete audit as the paper's sequence of artifacts. *)
let render audit =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Report.render_module_summaries audit.metrics);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Report.render_dataflow audit.metrics);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Report.render_interproc audit.metrics.Project_metrics.interproc);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Report.render_findings
       ~title:"Paper Table 1: modeling and coding guidelines (ISO 26262-6 Table 1)"
       audit.coding);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Report.render_findings
       ~title:"Paper Table 2: architectural design (ISO 26262-6 Table 3)"
       audit.architecture);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Report.render_findings
       ~title:"Paper Table 3: unit design and implementation (ISO 26262-6 Table 8)"
       audit.unit_design);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Report.render_coverage ~title:"Figure 5: object detection (YOLO) coverage"
       audit.yolo_coverage);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Report.render_coverage
       ~title:"Figure 6: CUDA stencils run on CPU (cuda4cpu) coverage"
       audit.stencil_coverage);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Report.render_observations audit.observations);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Traceability.render_tool_evidence ~journal:audit.journal
       ~observations:audit.observations audit.metrics);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Report.render_compliance (all_findings audit));
  Buffer.contents buf
