(** The three ISO 26262 Part 6 guideline tables assessed by the paper:

    - Table 1 of the paper = ISO 26262-6 Table 1, modeling and coding
      guidelines (topics 1-8);
    - Table 2 of the paper = ISO 26262-6 Table 3, software architectural
      design (topics 1-7);
    - Table 3 of the paper = ISO 26262-6 Table 8, software unit design and
      implementation (topics 1-10).

    Recommendation matrices are copied verbatim from the paper. *)

type table = Coding | Architecture | Unit_design

let table_name = function
  | Coding -> "Modeling/coding guidelines (ISO 26262-6 Table 1)"
  | Architecture -> "Architectural design (ISO 26262-6 Table 3)"
  | Unit_design -> "Unit design & implementation (ISO 26262-6 Table 8)"

let table_tag = function
  | Coding -> "T1"
  | Architecture -> "T3"
  | Unit_design -> "T8"

type topic = {
  table : table;
  index : int;
  title : string;
  recs : Asil.rec_matrix;
}

let topic_id t = Printf.sprintf "%s.%d" (table_tag t.table) t.index

let t ~table ~index ~title (a, b, c, d) =
  { table; index; title; recs = { Asil.a; b; c; d } }

open Asil

let coding =
  [
    t ~table:Coding ~index:1 ~title:"Enforcement of low complexity" (pp, pp, pp, pp);
    t ~table:Coding ~index:2 ~title:"Use of language subsets" (pp, pp, pp, pp);
    t ~table:Coding ~index:3 ~title:"Enforcement of strong typing" (pp, pp, pp, pp);
    t ~table:Coding ~index:4 ~title:"Use of defensive implementation techniques" (o, p, pp, pp);
    t ~table:Coding ~index:5 ~title:"Use of established design principles" (p, p, p, pp);
    t ~table:Coding ~index:6 ~title:"Use of unambiguous graphical representation" (p, pp, pp, pp);
    t ~table:Coding ~index:7 ~title:"Use of style guides" (p, pp, pp, pp);
    t ~table:Coding ~index:8 ~title:"Use of naming conventions" (pp, pp, pp, pp);
  ]

let architecture =
  [
    t ~table:Architecture ~index:1 ~title:"Hierarchical structure of software components" (pp, pp, pp, pp);
    t ~table:Architecture ~index:2 ~title:"Restricted size of software components" (pp, pp, pp, pp);
    t ~table:Architecture ~index:3 ~title:"Restricted size of interfaces" (p, p, p, p);
    t ~table:Architecture ~index:4 ~title:"High cohesion within each software component" (p, pp, pp, pp);
    t ~table:Architecture ~index:5 ~title:"Restricted coupling between software components" (p, pp, pp, pp);
    t ~table:Architecture ~index:6 ~title:"Appropriate scheduling properties" (pp, pp, pp, pp);
    t ~table:Architecture ~index:7 ~title:"Restricted use of interrupts" (p, p, p, pp);
  ]

let unit_design =
  [
    t ~table:Unit_design ~index:1 ~title:"One entry and one exit point in subprograms and functions" (pp, pp, pp, pp);
    t ~table:Unit_design ~index:2 ~title:"No dynamic objects or variables, or else online test during their creation" (p, pp, pp, pp);
    t ~table:Unit_design ~index:3 ~title:"Initialization of variables" (pp, pp, pp, pp);
    t ~table:Unit_design ~index:4 ~title:"No multiple use of variable names" (p, pp, pp, pp);
    t ~table:Unit_design ~index:5 ~title:"Avoid global variables or else justify their usage" (p, p, pp, pp);
    t ~table:Unit_design ~index:6 ~title:"Limited use of pointers" (o, p, p, pp);
    t ~table:Unit_design ~index:7 ~title:"No implicit type conversions" (p, pp, pp, pp);
    t ~table:Unit_design ~index:8 ~title:"No hidden data flow or control flow" (p, pp, pp, pp);
    t ~table:Unit_design ~index:9 ~title:"No unconditional jumps" (pp, pp, pp, pp);
    t ~table:Unit_design ~index:10 ~title:"No recursions" (p, p, pp, pp);
  ]

let all = coding @ architecture @ unit_design

let of_table = function
  | Coding -> coding
  | Architecture -> architecture
  | Unit_design -> unit_design

let find ~table ~index =
  List.find_opt (fun tp -> tp.table = table && tp.index = index) all
