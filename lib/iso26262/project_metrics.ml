(** One-pass metric extraction over a parsed project.

    Everything the assessment, the observations, and the benchmark
    harness need is computed here once; individual consumers then read
    fields instead of re-walking 220k LOC of ASTs. *)

type module_metrics = {
  modname : string;
  complexity : Metrics.Complexity.module_summary;
  loc : Metrics.Loc_metrics.counts;
  globals : int;
  multi_exit_frac : float;
  gotos : int;
  dataflow : Dataflow.Analyses.totals;
}

type t = {
  modules : module_metrics list;
  total_loc : int;
  total_functions : int;
  over10 : int;
  over20 : int;
  over50 : int;
  explicit_casts : int;
  implicit_conversions : int;
  globals_total : int;
  uninit_findings : Metrics.Uninit.finding list;
  shadowing_count : int;
  duplicate_globals : int;
  gotos_total : int;
  recursive_functions : string list;
  dyn_alloc_sites : int;
  pointer_usage : Metrics.Pointers.usage;
  multi_exit_frac : float;
  param_validation_ratio : float;
  ignored_returns : int;
  assertions : int;
  style_findings : int;
  style_per_kloc : float;
  naming_violations : int;
  architecture : Metrics.Architecture.component list;
  namespace_depth : int;
  cuda : Cudasim.Census.t;
  misra : Misra.Registry.report;
  dataflow : Dataflow.Analyses.totals;
  interproc : Interproc.Summary.t;
}

(* ------------------------------------------------------------------ *)
(* Separable phases                                                     *)
(* ------------------------------------------------------------------ *)

(* The MISRA pass and the per-module dataflow solves are the two
   heavyweight consumers of the parsed project that nothing else in this
   record depends on.  They are exposed as standalone functions so the
   pipelined audit can run them on pool workers concurrently with the
   core metric walk; [of_parsed] composes them sequentially — the exact
   jobs=1 oracle. *)

let misra_of_parsed (parsed : Cfront.Project.parsed) =
  let cache_key =
    match Cache.global () with
    | None -> None
    | Some _ -> Some (Cfront.Project.content_key parsed.Cfront.Project.project)
  in
  Misra.Registry.run ?cache_key (Misra.Rule.build_context parsed)

let module_dataflow_of_parsed (parsed : Cfront.Project.parsed) =
  List.map
    (fun m ->
      let pfs = Cfront.Project.parsed_files_of_module parsed m in
      let summaries =
        match Cache.global () with
        | None ->
          (* cache off: the exact historical code path — one solve over
             the module's functions *)
          Dataflow.Analyses.summarize_functions
            (Cfront.Project.defined_functions pfs)
        | Some _ ->
          (* cache on: per-file artifacts.  [defined_functions pfs] is
             the in-order concatenation of [defined_functions [pf]], so
             the per-file summaries concatenate to exactly the module
             solve — same summaries, same finding order. *)
          List.concat_map
            (fun pf ->
              Dataflow.Analyses.summarize_file
                ~path:pf.Cfront.Project.file.Cfront.Project.path
                ~key:(Cfront.Project.file_key parsed pf)
                (Cfront.Project.defined_functions [ pf ]))
            pfs
      in
      (m, Dataflow.Analyses.totals_of summaries))
    (Cfront.Project.module_names parsed.Cfront.Project.project)

let of_parsed_with ~(misra : unit -> Misra.Registry.report)
    ~(module_dataflow : (string * Dataflow.Analyses.totals) list)
    (parsed : Cfront.Project.parsed) =
  Telemetry.with_span ~cat:"metrics" "metrics"
    ~attrs:[ ("files", string_of_int (List.length parsed.Cfront.Project.files)) ]
  @@ fun () ->
  let module_names = Cfront.Project.module_names parsed.Cfront.Project.project in
  let per_module =
    List.map
      (fun m ->
        let pfs = Cfront.Project.parsed_files_of_module parsed m in
        let fns = Cfront.Project.defined_functions pfs in
        let loc = Metrics.Loc_metrics.of_files pfs in
        {
          modname = m;
          complexity =
            Metrics.Complexity.summarize ~modname:m
              ~loc:loc.Metrics.Loc_metrics.physical fns;
          loc;
          globals = List.length (Metrics.Globals.of_files pfs);
          multi_exit_frac = Metrics.Func_shape.multi_exit_fraction fns;
          gotos = Metrics.Func_shape.total_gotos fns;
          dataflow =
            (match List.assoc_opt m module_dataflow with
             | Some t -> t
             | None ->
               Dataflow.Analyses.totals_of
                 (Dataflow.Analyses.summarize_functions fns));
        })
      module_names
  in
  let all_fns = Cfront.Project.all_functions parsed in
  let files = parsed.Cfront.Project.files in
  let casts = Metrics.Casts.of_functions all_fns in
  let shadowing = Metrics.Shadowing.of_files files in
  let graph = Cfront.Callgraph.build all_fns in
  let loc_all = Metrics.Loc_metrics.of_files files in
  let style = Metrics.Style.of_files files in
  let sum f = Util.Stats.sum_int (List.map f per_module) in
  {
    modules = per_module;
    total_loc = loc_all.Metrics.Loc_metrics.physical;
    total_functions = sum (fun m -> m.complexity.Metrics.Complexity.n_functions);
    over10 = sum (fun m -> m.complexity.Metrics.Complexity.over_10);
    over20 = sum (fun m -> m.complexity.Metrics.Complexity.over_20);
    over50 = sum (fun m -> m.complexity.Metrics.Complexity.over_50);
    explicit_casts = Metrics.Casts.explicit_count casts;
    implicit_conversions = Metrics.Casts.implicit_count casts;
    globals_total = sum (fun m -> m.globals);
    uninit_findings = Metrics.Uninit.of_functions all_fns;
    shadowing_count =
      List.length
        (List.filter
           (fun (f : Metrics.Shadowing.finding) -> f.Metrics.Shadowing.kind <> `Duplicate_global)
           shadowing);
    duplicate_globals =
      List.length
        (List.filter
           (fun (f : Metrics.Shadowing.finding) -> f.Metrics.Shadowing.kind = `Duplicate_global)
           shadowing);
    gotos_total = sum (fun m -> m.gotos);
    recursive_functions = Cfront.Callgraph.recursive_functions graph;
    dyn_alloc_sites = List.length (Metrics.Pointers.dyn_allocs_of_functions all_fns);
    pointer_usage = Metrics.Pointers.usage_of_functions all_fns;
    multi_exit_frac = Metrics.Func_shape.multi_exit_fraction all_fns;
    param_validation_ratio = Metrics.Defensive.param_validation_ratio all_fns;
    ignored_returns =
      List.length (Metrics.Defensive.ignored_returns ~funcs:all_fns all_fns);
    assertions = Metrics.Defensive.assertion_count all_fns;
    style_findings = List.length style;
    style_per_kloc = Metrics.Style.per_kloc style loc_all;
    naming_violations = List.length (Metrics.Naming.of_files files);
    architecture = Metrics.Architecture.build ~parsed;
    namespace_depth = Metrics.Architecture.namespace_depth files;
    cuda = Cudasim.Census.of_files files;
    interproc = Interproc.Summary.analyze parsed;
    misra = misra ();
    dataflow =
      List.fold_left
        (fun t (m : module_metrics) -> Dataflow.Analyses.add_totals t m.dataflow)
        Dataflow.Analyses.zero_totals per_module;
  }

let of_parsed (parsed : Cfront.Project.parsed) =
  let module_dataflow = module_dataflow_of_parsed parsed in
  of_parsed_with ~misra:(fun () -> misra_of_parsed parsed) ~module_dataflow parsed

let find_module t name = List.find_opt (fun m -> m.modname = name) t.modules
