(** Safety-requirement traceability: the goal → requirement → evidence
    linkage the ISO 26262 life-cycle is built around ("traceability as a
    fundamental element", paper §1). *)

type safety_goal = {
  sg_id : string;
  sg_text : string;
  sg_asil : Asil.t;
}

type software_requirement = {
  sr_id : string;
  sr_goal : string;  (** parent goal id *)
  sr_text : string;
  sr_modules : string list;  (** allocated pipeline components *)
  sr_verified_by : (Guidelines.table * int) list;  (** verifying guideline topics *)
}

(** The modelled goal set (G1..G4, all ASIL-D). *)
val goals : safety_goal list

(** The software safety requirements refined from the goals. *)
val requirements : software_requirement list

type req_status = Verified | Partially_verified | Not_verified

val status_name : req_status -> string

type req_trace = {
  requirement : software_requirement;
  verdicts : (Guidelines.table * int * Assess.verdict) list;
  status : req_status;
}

type goal_trace = {
  goal : safety_goal;
  reqs : req_trace list;
  goal_verified : bool;  (** all child requirements fully verified *)
}

(** Join the requirement model with assessment findings. *)
val trace : Assess.finding list -> goal_trace list

(** The traceability matrix as a text table, with the per-goal roll-up. *)
val render : goal_trace list -> string

(** One row of the analysis → clause matrix: which analysis produced
    which measured evidence for which ISO 26262 Part 6 clause, and which
    journal findings substantiate it. *)
type tool_evidence = {
  te_analysis : string;
  te_clause : string;
  te_evidence : string;
  te_findings : string list;
      (** provenance finding ids — the [adcheck explain] handles *)
}

(** Whole-program evidence rows (recursion, stack bound, global
    coupling, cross-call initialization, call-resolution confidence)
    traced to their ISO 26262 clauses, followed by one row per entry of
    [observations].  [journal] supplies the findings each row links to
    (by kind and analysis); with no journal every [te_findings] is
    empty. *)
val tool_evidence_matrix :
  ?journal:Provenance.finding list ->
  ?observations:Observations.t list ->
  Project_metrics.t ->
  tool_evidence list

val render_tool_evidence :
  ?journal:Provenance.finding list ->
  ?observations:Observations.t list ->
  Project_metrics.t ->
  string

(** Requirements allocated to components that do not exist in the audited
    project — a traceability defect in itself. *)
val unallocated_requirements : Project_metrics.t -> software_requirement list
