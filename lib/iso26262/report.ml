(** Rendering of assessment results as text tables (the shape of the
    paper's Tables 1-3, extended with measured verdicts). *)

let rec_cells (t : Guidelines.topic) =
  List.map (fun asil -> Asil.rec_to_string (Asil.for_asil t.Guidelines.recs asil)) Asil.all

let table_of_findings ~title (findings : Assess.finding list) =
  let tbl =
    Util.Table.make ~title
      ~header:[ "#"; "Guideline"; "A"; "B"; "C"; "D"; "verdict"; "evidence" ]
      ~aligns:
        [ Util.Table.Right; Util.Table.Left; Util.Table.Left; Util.Table.Left;
          Util.Table.Left; Util.Table.Left; Util.Table.Left; Util.Table.Left ]
      ()
  in
  List.fold_left
    (fun tbl (f : Assess.finding) ->
      Util.Table.add_row tbl
        ([ string_of_int f.Assess.topic.Guidelines.index;
           f.Assess.topic.Guidelines.title ]
        @ rec_cells f.Assess.topic
        @ [ Assess.verdict_name f.Assess.verdict; f.Assess.evidence ]))
    tbl findings

let render_findings ~title findings =
  Util.Table.render (table_of_findings ~title findings)

let render_compliance findings =
  let buf = Buffer.create 128 in
  List.iter
    (fun asil ->
      let passed, binding = Assess.compliance_at ~asil findings in
      Buffer.add_string buf
        (Printf.sprintf "ASIL-%s: %d of %d binding guidelines satisfied\n"
           (Asil.to_string asil) passed binding))
    Asil.all;
  Buffer.contents buf

let render_observations (obs : Observations.t list) =
  let tbl =
    Util.Table.make ~title:"Observations 1-14 (paper statement vs measured evidence)"
      ~header:[ "#"; "holds"; "observation"; "measured evidence" ]
      ~aligns:
        [ Util.Table.Right; Util.Table.Left; Util.Table.Left; Util.Table.Left ]
      ()
  in
  let tbl =
    List.fold_left
      (fun tbl (o : Observations.t) ->
        Util.Table.add_row tbl
          [ string_of_int o.Observations.number;
            (if o.Observations.holds then "yes" else "NO");
            o.Observations.statement; o.Observations.evidence ])
      tbl obs
  in
  Util.Table.render tbl

let render_module_summaries (m : Project_metrics.t) =
  let tbl =
    Util.Table.make ~title:"Figure 3: complexity, LOC and functions per Apollo module"
      ~header:[ "module"; "LOC"; "functions"; "CC>10"; "CC>20"; "CC>50"; "CC max"; "CC mean" ]
      ~aligns:
        [ Util.Table.Left; Util.Table.Right; Util.Table.Right; Util.Table.Right;
          Util.Table.Right; Util.Table.Right; Util.Table.Right; Util.Table.Right ]
      ()
  in
  let tbl =
    List.fold_left
      (fun tbl (mm : Project_metrics.module_metrics) ->
        let c = mm.Project_metrics.complexity in
        Util.Table.add_row tbl
          [ mm.Project_metrics.modname;
            string_of_int c.Metrics.Complexity.loc;
            string_of_int c.Metrics.Complexity.n_functions;
            string_of_int c.Metrics.Complexity.over_10;
            string_of_int c.Metrics.Complexity.over_20;
            string_of_int c.Metrics.Complexity.over_50;
            string_of_int c.Metrics.Complexity.cc_max;
            Util.Table.fmt_float c.Metrics.Complexity.cc_mean ])
      tbl m.Project_metrics.modules
  in
  Util.Table.render tbl

let dataflow_table (m : Project_metrics.t) =
  let open Dataflow.Analyses in
  let tbl =
    Util.Table.make
      ~title:"Flow-sensitive analysis per module (CFG + worklist fixpoint)"
      ~header:
        [ "module"; "functions"; "blocks"; "edges"; "unreachable";
          "dead stores"; "uninit reads"; "const conds" ]
      ~aligns:
        [ Util.Table.Left; Util.Table.Right; Util.Table.Right; Util.Table.Right;
          Util.Table.Right; Util.Table.Right; Util.Table.Right; Util.Table.Right ]
      ()
  in
  let row name (t : totals) tbl =
    Util.Table.add_row tbl
      [ name; string_of_int t.t_functions; string_of_int t.t_blocks;
        string_of_int t.t_edges; string_of_int t.t_unreachable;
        string_of_int t.t_dead_stores; string_of_int t.t_uninit_reads;
        string_of_int t.t_const_conditions ]
  in
  let tbl =
    List.fold_left
      (fun tbl (mm : Project_metrics.module_metrics) ->
        row mm.Project_metrics.modname mm.Project_metrics.dataflow tbl)
      tbl m.Project_metrics.modules
  in
  row "total" m.Project_metrics.dataflow tbl

let render_dataflow m = Util.Table.render (dataflow_table m)

(* ------------------------------------------------------------------ *)
(* Interprocedural summary engine output                               *)
(* ------------------------------------------------------------------ *)

let interproc_table (t : Interproc.Summary.t) =
  let tbl =
    Util.Table.make
      ~title:
        "Global coupling per module (whole-program summaries, ISO 26262-6 \
         Table 3 1f/1g)"
      ~header:
        [ "module"; "functions"; "globals declared"; "read"; "written";
          "shared with other modules" ]
      ~aligns:
        [ Util.Table.Left; Util.Table.Right; Util.Table.Right; Util.Table.Right;
          Util.Table.Right; Util.Table.Right ]
      ()
  in
  let tbl =
    List.fold_left
      (fun tbl (c : Interproc.Summary.module_coupling) ->
        Util.Table.add_row tbl
          [ c.Interproc.Summary.mc_module;
            string_of_int c.Interproc.Summary.mc_functions;
            string_of_int c.Interproc.Summary.mc_globals_declared;
            string_of_int c.Interproc.Summary.mc_globals_read;
            string_of_int c.Interproc.Summary.mc_globals_written;
            string_of_int c.Interproc.Summary.mc_shared ])
      tbl t.Interproc.Summary.coupling
  in
  let sum f = Util.Stats.sum_int (List.map f t.Interproc.Summary.coupling) in
  Util.Table.add_row tbl
    [ "total";
      string_of_int (sum (fun c -> c.Interproc.Summary.mc_functions));
      string_of_int (sum (fun c -> c.Interproc.Summary.mc_globals_declared));
      string_of_int (sum (fun c -> c.Interproc.Summary.mc_globals_read));
      string_of_int (sum (fun c -> c.Interproc.Summary.mc_globals_written));
      string_of_int (sum (fun c -> c.Interproc.Summary.mc_shared)) ]

(** The call-hierarchy table: recursion cycles, worst-case call depth
    and stack bound, and call-resolution accounting — the whole-program
    evidence behind the "no recursion" / "limited stack" guidelines. *)
let render_interproc (t : Interproc.Summary.t) =
  let open Interproc.Summary in
  let r = t.graph.Cfront.Callgraph.resolution in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Util.Table.render (interproc_table t));
  Buffer.add_string buf
    (Printf.sprintf
       "call graph: %d functions, %d call sites (%d resolved, %d guessed, %d \
        ambiguous, %d unresolved, %d indirect, %d kernel launches, %d \
        function pointers taken)\n"
       (List.length t.graph.Cfront.Callgraph.nodes)
       r.Cfront.Callgraph.total_sites r.Cfront.Callgraph.resolved
       r.Cfront.Callgraph.guessed r.Cfront.Callgraph.ambiguous
       r.Cfront.Callgraph.unresolved r.Cfront.Callgraph.indirect
       r.Cfront.Callgraph.kernel_launches
       (List.length r.Cfront.Callgraph.fnptr_taken));
  Buffer.add_string buf
    (Printf.sprintf "condensation: %d SCCs in %d levels\n" t.n_sccs t.n_levels);
  (match t.cycles with
   | [] -> Buffer.add_string buf "recursion cycles: none\n"
   | cycles ->
     Buffer.add_string buf
       (Printf.sprintf "recursion cycles: %d\n" (List.length cycles));
     List.iter
       (fun cycle ->
         Buffer.add_string buf
           (Printf.sprintf "  - %s -> %s\n"
              (String.concat " -> " cycle)
              (List.hd cycle)))
       cycles);
  Buffer.add_string buf
    (Printf.sprintf "worst-case call depth: %s\nworst-case stack bound: %s words\n"
       (render_depth t.max_call_depth)
       (render_depth t.max_stack_words));
  let pure =
    List.length (List.filter (fun s -> s.s_pure) t.summaries)
  in
  Buffer.add_string buf
    (Printf.sprintf "side effects: %d of %d functions pure\n" pure
       (List.length t.summaries));
  (match t.uninit_flows with
   | [] ->
     Buffer.add_string buf "cross-call uninitialized flows: none\n"
   | flows ->
     Buffer.add_string buf
       (Printf.sprintf "cross-call uninitialized flows: %d\n"
          (List.length flows));
     List.iter
       (fun f ->
         Buffer.add_string buf
           (Printf.sprintf "  - %s:%d %s in %s (callee %s never initializes)\n"
              f.ip_use_loc.Cfront.Loc.file f.ip_use_loc.Cfront.Loc.line
              f.ip_var f.ip_function f.ip_callee))
       flows);
  Buffer.contents buf

let render_coverage ~title (files : Coverage.Collector.file_coverage list) =
  let tbl =
    Util.Table.make ~title
      ~header:
        [ "file"; "statement"; "branch"; "MC/DC"; "function"; "excluded fns";
          "first covered by" ]
      ~aligns:
        [ Util.Table.Left; Util.Table.Right; Util.Table.Right; Util.Table.Right;
          Util.Table.Right; Util.Table.Right; Util.Table.Left ]
      ()
  in
  (* the least-named scenario covering anything in the file — the run an
     auditor replays first to see the file exercised *)
  let first_covered_by (f : Coverage.Collector.file_coverage) =
    List.fold_left
      (fun acc (fc : Coverage.Collector.func_coverage) ->
        match (acc, fc.Coverage.Collector.first_covered_by) with
        | None, x | x, None -> x
        | Some a, Some b -> Some (if b < a then b else a))
      None f.Coverage.Collector.functions
  in
  let tbl =
    List.fold_left
      (fun tbl (f : Coverage.Collector.file_coverage) ->
        Util.Table.add_row tbl
          [ f.Coverage.Collector.file;
            Util.Table.fmt_pct f.Coverage.Collector.stmt_pct;
            Util.Table.fmt_pct f.Coverage.Collector.branch_pct;
            Util.Table.fmt_pct f.Coverage.Collector.mcdc_pct;
            Util.Table.fmt_pct f.Coverage.Collector.function_pct;
            string_of_int f.Coverage.Collector.excluded;
            Option.value ~default:"-" (first_covered_by f) ])
      tbl files
  in
  let stmt, branch, mcdc = Coverage.Collector.averages files in
  Util.Table.render tbl
  ^ Printf.sprintf "average: statement %.1f%%, branch %.1f%%, MC/DC %.1f%%\n" stmt
      branch mcdc
