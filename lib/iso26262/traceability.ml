(** Safety-requirement traceability.

    The paper's introduction describes the ISO 26262 life-cycle: safety
    goals are refined, "via a technical safety concept, to software and
    other architectural components", with "traceability as a fundamental
    element to link high-level requirements, low-level requirements, and
    analyzes".

    This module implements that linkage for the AD pipeline: a small
    model of safety goals, decomposed into software safety requirements,
    each allocated to pipeline modules and verified by specific guideline
    topics.  The audit's per-topic verdicts then roll up into a
    per-requirement and per-goal status — the traceability matrix an
    assessor asks for first. *)

type safety_goal = {
  sg_id : string;
  sg_text : string;
  sg_asil : Asil.t;
}

type software_requirement = {
  sr_id : string;
  sr_goal : string;  (** parent goal id *)
  sr_text : string;
  sr_modules : string list;  (** allocated components *)
  sr_verified_by : (Guidelines.table * int) list;  (** guideline topics *)
}

let goals =
  [
    { sg_id = "G1"; sg_text = "The vehicle shall not collide with detected obstacles";
      sg_asil = Asil.D };
    { sg_id = "G2"; sg_text = "The vehicle shall remain within its drivable corridor";
      sg_asil = Asil.D };
    { sg_id = "G3"; sg_text = "Control commands shall be timely and bounded";
      sg_asil = Asil.D };
    { sg_id = "G4"; sg_text = "The system shall remain operational under single software faults";
      sg_asil = Asil.D };
  ]

let requirements =
  [
    { sr_id = "SR1.1"; sr_goal = "G1";
      sr_text = "Object detection shall process every frame deterministically";
      sr_modules = [ "perception" ];
      sr_verified_by = [ (Guidelines.Coding, 1); (Guidelines.Unit_design, 2) ] };
    { sr_id = "SR1.2"; sr_goal = "G1";
      sr_text = "Detection code shall be exhaustively testable (coverage evidence)";
      sr_modules = [ "perception" ];
      sr_verified_by = [ (Guidelines.Coding, 2); (Guidelines.Unit_design, 8) ] };
    { sr_id = "SR1.3"; sr_goal = "G1";
      sr_text = "Obstacle trajectories shall be predicted with validated inputs";
      sr_modules = [ "prediction" ];
      sr_verified_by = [ (Guidelines.Coding, 4) ] };
    { sr_id = "SR2.1"; sr_goal = "G2";
      sr_text = "Localization shall be free of unbounded recursion and hidden flow";
      sr_modules = [ "localization"; "map" ];
      sr_verified_by = [ (Guidelines.Unit_design, 10); (Guidelines.Unit_design, 8) ] };
    { sr_id = "SR2.2"; sr_goal = "G2";
      sr_text = "Planning shall use typed, initialized state only";
      sr_modules = [ "planning" ];
      sr_verified_by = [ (Guidelines.Coding, 3); (Guidelines.Unit_design, 3) ] };
    { sr_id = "SR3.1"; sr_goal = "G3";
      sr_text = "Control and CAN paths shall have analyzable timing";
      sr_modules = [ "control"; "canbus" ];
      sr_verified_by = [ (Guidelines.Coding, 1); (Guidelines.Architecture, 6) ] };
    { sr_id = "SR3.2"; sr_goal = "G3";
      sr_text = "Control flow shall have single entry/exit and no jumps";
      sr_modules = [ "control" ];
      sr_verified_by = [ (Guidelines.Unit_design, 1); (Guidelines.Unit_design, 9) ] };
    { sr_id = "SR4.1"; sr_goal = "G4";
      sr_text = "Shared state shall be bounded and justified (globals, interfaces)";
      sr_modules = [ "common"; "perception"; "planning" ];
      sr_verified_by = [ (Guidelines.Unit_design, 5); (Guidelines.Architecture, 3) ] };
    { sr_id = "SR4.2"; sr_goal = "G4";
      sr_text = "Components shall be small and loosely coupled for fault containment";
      sr_modules = [ "perception"; "planning"; "prediction" ];
      sr_verified_by = [ (Guidelines.Architecture, 2); (Guidelines.Architecture, 5) ] };
  ]

type req_status = Verified | Partially_verified | Not_verified

let status_name = function
  | Verified -> "verified"
  | Partially_verified -> "partial"
  | Not_verified -> "NOT VERIFIED"

type req_trace = {
  requirement : software_requirement;
  verdicts : (Guidelines.table * int * Assess.verdict) list;
  status : req_status;
}

type goal_trace = {
  goal : safety_goal;
  reqs : req_trace list;
  goal_verified : bool;
}

(** Join the requirement model with assessment findings. *)
let trace (findings : Assess.finding list) =
  let verdict_of table index =
    match
      List.find_opt
        (fun (f : Assess.finding) ->
          f.Assess.topic.Guidelines.table = table
          && f.Assess.topic.Guidelines.index = index)
        findings
    with
    | Some f -> f.Assess.verdict
    | None -> Assess.Not_applicable
  in
  let trace_req sr =
    let verdicts =
      List.map (fun (t, i) -> (t, i, verdict_of t i)) sr.sr_verified_by
    in
    let relevant =
      List.filter (fun (_, _, v) -> v <> Assess.Not_applicable) verdicts
    in
    let passes = List.filter (fun (_, _, v) -> v = Assess.Pass) relevant in
    let status =
      if relevant = [] then Not_verified
      else if List.length passes = List.length relevant then Verified
      else if passes <> [] then Partially_verified
      else Not_verified
    in
    { requirement = sr; verdicts; status }
  in
  List.map
    (fun goal ->
      let reqs =
        List.map trace_req
          (List.filter (fun sr -> sr.sr_goal = goal.sg_id) requirements)
      in
      {
        goal;
        reqs;
        goal_verified = List.for_all (fun r -> r.status = Verified) reqs;
      })
    goals

let render traces =
  let tbl =
    Util.Table.make
      ~title:"Traceability: safety goals -> software requirements -> guideline evidence"
      ~header:[ "goal"; "requirement"; "allocated to"; "evidence (table.item=verdict)"; "status" ]
      ~aligns:
        [ Util.Table.Left; Util.Table.Left; Util.Table.Left; Util.Table.Left;
          Util.Table.Left ]
      ()
  in
  let table_tag = function
    | Guidelines.Coding -> "T1"
    | Guidelines.Architecture -> "T3"
    | Guidelines.Unit_design -> "T8"
  in
  let tbl =
    List.fold_left
      (fun tbl gt ->
        List.fold_left
          (fun tbl rt ->
            Util.Table.add_row tbl
              [ gt.goal.sg_id ^ " (ASIL-" ^ Asil.to_string gt.goal.sg_asil ^ ")";
                rt.requirement.sr_id ^ " " ^ rt.requirement.sr_text;
                String.concat ", " rt.requirement.sr_modules;
                String.concat ", "
                  (List.map
                     (fun (t, i, v) ->
                       Printf.sprintf "%s.%d=%s" (table_tag t) i
                         (Assess.verdict_name v))
                     rt.verdicts);
                status_name rt.status ])
          tbl gt.reqs)
      tbl traces
  in
  let verified_goals = List.length (List.filter (fun g -> g.goal_verified) traces) in
  Util.Table.render tbl
  ^ Printf.sprintf "safety goals fully verified: %d of %d\n" verified_goals
      (List.length traces)

(* ------------------------------------------------------------------ *)
(* Tool-evidence matrix                                                *)
(* ------------------------------------------------------------------ *)

(** One row of the analysis → clause matrix: which analysis produced
    which measured evidence for which ISO 26262 Part 6 clause.  This is
    the "which tool run substantiates which requirement" table an
    assessor asks for alongside the goal/requirement trace. *)
type tool_evidence = {
  te_analysis : string;  (** analysis / checker identifier *)
  te_clause : string;  (** ISO 26262 clause the evidence addresses *)
  te_evidence : string;  (** measured result on this corpus *)
  te_findings : string list;  (** journal finding ids substantiating the row *)
}

(* Select journal findings by (kind, analysis prefix); "" matches every
   analysis of the kind.  The ids returned are the [adcheck explain]
   handles for the row. *)
let finding_ids journal selectors =
  List.filter_map
    (fun (f : Provenance.finding) ->
      if
        List.exists
          (fun (kind, prefix) ->
            f.Provenance.f_kind = kind
            && (prefix = ""
                || String.starts_with ~prefix f.Provenance.f_analysis))
          selectors
      then Some f.Provenance.f_id
      else None)
    journal

(* Which journal findings substantiate each numbered observation: the
   observation's claim is about the output of a specific analysis (or a
   specific guideline topic's metric verdict), so the selector names
   that analysis.  Observation 12 (open vs closed performance) is
   measured outside the static/coverage toolchain and links to none. *)
let observation_selectors = function
  | 1 -> [ ("metric", "T1.1") ]
  | 2 -> [ ("misra", ""); ("dataflow", "") ]
  | 3 | 4 -> [ ("misra", "CUDA-") ]
  | 5 -> [ ("metric", "T1.3") ]
  | 6 -> [ ("metric", "T1.4") ]
  | 7 -> [ ("metric", "T8.5") ]
  | 8 -> [ ("metric", "T1.7") ]
  | 9 -> [ ("metric", "T1.8") ]
  | 10 | 11 -> [ ("coverage", "") ]
  | 13 -> [ ("metric", "T3.") ]
  | 14 -> [ ("metric", "T8."); ("interproc", "") ]
  | _ -> []

let tool_evidence_matrix ?(journal = []) ?(observations = [])
    (m : Project_metrics.t) =
  let ip = m.Project_metrics.interproc in
  let r = ip.Interproc.Summary.graph.Cfront.Callgraph.resolution in
  let shared_globals =
    Util.Stats.sum_int
      (List.map
         (fun c -> c.Interproc.Summary.mc_shared)
         ip.Interproc.Summary.coupling)
  in
  let ids = finding_ids journal in
  let clause_rows =
    [
      {
        te_analysis = "callgraph + interproc SCC condensation";
        te_clause = "ISO 26262-6 Table 8 1f (no recursion)";
        te_evidence =
          (match ip.Interproc.Summary.cycles with
           | [] -> "0 recursion cycles"
           | cycles ->
             Printf.sprintf "%d recursion cycles (e.g. %s)" (List.length cycles)
               (String.concat " -> " (List.hd cycles)));
        te_findings = ids [ ("interproc", "recursion-cycle"); ("misra", "17.2") ];
      };
      {
        te_analysis = "interproc bottom-up stack bound";
        te_clause = "ISO 26262-6 7.4.14 / Table 3 1a (hierarchy, bounded resources)";
        te_evidence =
          Printf.sprintf "worst-case call depth %s, stack bound %s words"
            (Interproc.Summary.render_depth ip.Interproc.Summary.max_call_depth)
            (Interproc.Summary.render_depth ip.Interproc.Summary.max_stack_words);
        te_findings = ids [ ("interproc", "unbounded-depth") ];
      };
      {
        te_analysis = "interproc global coupling matrix";
        te_clause = "ISO 26262-6 Table 3 1f/1g (restricted coupling, shared state)";
        te_evidence =
          Printf.sprintf "%d mutable globals, %d touched by several modules"
            ip.Interproc.Summary.globals_total shared_globals;
        te_findings = ids [ ("metric", "T3.") ];
      };
      {
        te_analysis = "interproc definite assignment (IP-1)";
        te_clause = "ISO 26262-6 Table 8 1d (initialization of variables)";
        te_evidence =
          Printf.sprintf "%d uninitialized values flowing through calls"
            (List.length ip.Interproc.Summary.uninit_flows);
        te_findings =
          ids [ ("interproc", "cross-call-uninit"); ("misra", "IP-1") ];
      };
      {
        te_analysis = "callgraph resolution accounting";
        te_clause = "ISO 26262-8 11 (confidence in use of software tools)";
        te_evidence =
          Printf.sprintf
            "%d call sites: %d resolved, %d guessed, %d ambiguous, %d \
             unresolved, %d indirect"
            r.Cfront.Callgraph.total_sites r.Cfront.Callgraph.resolved
            r.Cfront.Callgraph.guessed r.Cfront.Callgraph.ambiguous
            r.Cfront.Callgraph.unresolved r.Cfront.Callgraph.indirect;
        te_findings = [];
      };
    ]
  in
  let observation_rows =
    List.map
      (fun (o : Observations.t) ->
        {
          te_analysis = Printf.sprintf "observation %d" o.Observations.number;
          te_clause = o.Observations.statement;
          te_evidence =
            Printf.sprintf "%s [%s]" o.Observations.evidence
              (if o.Observations.holds then "holds" else "does not hold");
          te_findings = ids (observation_selectors o.Observations.number);
        })
      observations
  in
  clause_rows @ observation_rows

(* Render a handful of ids in full (they are [adcheck explain] handles)
   and summarize the rest — observation rows over the MISRA journal can
   link hundreds of findings. *)
let render_finding_ids = function
  | [] -> "-"
  | ids ->
    let n = List.length ids in
    let shown = List.filteri (fun i _ -> i < 3) ids in
    String.concat " " shown
    ^ (if n > 3 then Printf.sprintf " +%d more" (n - 3) else "")

let render_tool_evidence ?journal ?observations (m : Project_metrics.t) =
  let tbl =
    Util.Table.make
      ~title:"Traceability: static analyses -> ISO 26262 clause evidence"
      ~header:[ "analysis"; "clause"; "measured evidence"; "finding ids" ]
      ~aligns:
        [ Util.Table.Left; Util.Table.Left; Util.Table.Left; Util.Table.Left ]
      ()
  in
  let tbl =
    List.fold_left
      (fun tbl te ->
        Util.Table.add_row tbl
          [ te.te_analysis; te.te_clause; te.te_evidence;
            render_finding_ids te.te_findings ])
      tbl
      (tool_evidence_matrix ?journal ?observations m)
  in
  Util.Table.render tbl

(** Requirements whose allocated modules do not all exist in the audited
    project — a traceability defect in itself. *)
let unallocated_requirements (m : Project_metrics.t) =
  let module_names =
    List.map (fun mm -> mm.Project_metrics.modname) m.Project_metrics.modules
  in
  List.filter
    (fun sr -> not (List.for_all (fun md -> List.mem md module_names) sr.sr_modules))
    requirements
