(** One-pass metric extraction over a parsed project.

    Computes every quantity the assessment, the observations and the
    benchmark harness need; consumers read fields instead of re-walking
    hundreds of kLOC of ASTs. *)

type module_metrics = {
  modname : string;
  complexity : Metrics.Complexity.module_summary;
  loc : Metrics.Loc_metrics.counts;
  globals : int;  (** mutable (non-const, non-extern) globals *)
  multi_exit_frac : float;
  gotos : int;
  dataflow : Dataflow.Analyses.totals;
      (** flow-sensitive counts (unreachable regions, dead stores,
          uninitialized reads, propagated constant conditions) over the
          module's defined functions *)
}

type t = {
  modules : module_metrics list;
  total_loc : int;  (** physical (non-blank) lines *)
  total_functions : int;  (** defined functions *)
  over10 : int;  (** functions with cyclomatic complexity > 10 *)
  over20 : int;
  over50 : int;
  explicit_casts : int;
  implicit_conversions : int;
  globals_total : int;
  uninit_findings : Metrics.Uninit.finding list;
  shadowing_count : int;
  duplicate_globals : int;
  gotos_total : int;
  recursive_functions : string list;  (** qualified names *)
  dyn_alloc_sites : int;  (** malloc/new/cudaMalloc call sites *)
  pointer_usage : Metrics.Pointers.usage;
  multi_exit_frac : float;
  param_validation_ratio : float;  (** fraction of pointer params null-checked *)
  ignored_returns : int;
  assertions : int;
  style_findings : int;
  style_per_kloc : float;
  naming_violations : int;
  architecture : Metrics.Architecture.component list;
  namespace_depth : int;
  cuda : Cudasim.Census.t;
  misra : Misra.Registry.report;
  dataflow : Dataflow.Analyses.totals;  (** project-wide sum of the per-module counts *)
  interproc : Interproc.Summary.t;
      (** whole-program summaries: recursion cycles, call/stack depth,
          global coupling, cross-call uninit flows *)
}

(** Extract everything from a parsed project.  Cost is a few passes over
    each AST; ~1 s for the paper-scale 228k LOC corpus. *)
val of_parsed : Cfront.Project.parsed -> t

(** The two heavyweight phases nothing else in the record depends on,
    exposed standalone so the pipelined audit can fan them out to pool
    workers concurrently with the core metric walk. *)

val misra_of_parsed : Cfront.Project.parsed -> Misra.Registry.report

val module_dataflow_of_parsed :
  Cfront.Project.parsed -> (string * Dataflow.Analyses.totals) list

(** [of_parsed_with ~misra ~module_dataflow parsed] assembles the record
    with the MISRA report supplied by the [misra] thunk (called last, so
    a pipelined caller blocks on that future only at the join) and the
    per-module dataflow totals looked up in [module_dataflow] (missing
    modules fall back to an inline solve).  [of_parsed] is exactly this
    with the two phases computed sequentially first. *)
val of_parsed_with :
  misra:(unit -> Misra.Registry.report) ->
  module_dataflow:(string * Dataflow.Analyses.totals) list ->
  Cfront.Project.parsed ->
  t

val find_module : t -> string -> module_metrics option
