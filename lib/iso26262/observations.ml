(** The paper's fourteen numbered observations, regenerated from measured
    data.  Each observation carries the measured figure that supports it,
    so the benchmark harness can print paper-vs-measured side by side. *)

type t = {
  number : int;
  statement : string;  (** the paper's wording, abbreviated *)
  evidence : string;  (** our measured support *)
  holds : bool;  (** does the measurement support the observation? *)
}

let make number statement holds fmt =
  Printf.ksprintf (fun evidence -> { number; statement; evidence; holds }) fmt

let of_metrics (m : Project_metrics.t)
    ~(yolo_coverage : Coverage.Collector.file_coverage list)
    ~(stencil_coverage : Coverage.Collector.file_coverage list)
    ~(open_vs_closed : (string * float) list) =
  let open Project_metrics in
  let stmt_avg, branch_avg, mcdc_avg = Coverage.Collector.averages yolo_coverage in
  let stencil_below_full =
    List.for_all
      (fun (f : Coverage.Collector.file_coverage) ->
        f.Coverage.Collector.stmt_pct < 100.0 || f.Coverage.Collector.branch_pct < 100.0)
      stencil_coverage
  in
  let competitive =
    List.filter (fun (_, r) -> r >= 0.7 && r <= 1.4) open_vs_closed
  in
  (* module with the most flow-sensitive findings, for Observation 2 *)
  let worst_dataflow_module =
    let score (mm : module_metrics) =
      mm.dataflow.Dataflow.Analyses.t_dead_stores
      + mm.dataflow.Dataflow.Analyses.t_unreachable
    in
    List.fold_left
      (fun best mm -> if score mm > score best then mm else best)
      (List.hd m.modules) m.modules
  in
  [
    make 1 "AD frameworks present high cyclomatic complexity"
      (* scale-independent: more than 5% of functions above CC 10 *)
      (m.over10 * 20 > m.total_functions)
      "%d functions above CC 10 (%d above 20, %d above 50) in %dk LOC"
      m.over10 m.over20 m.over50 (m.total_loc / 1000);
    make 2 "The CPU part of AD frameworks is not programmed to any safety guideline"
      (m.misra.Misra.Registry.rules_violated > 5)
      "%d of %d MISRA-subset rules violated (%d violations total); dataflow: %d dead stores, %d unreachable regions (worst module %s: %d/%d)"
      m.misra.Misra.Registry.rules_violated m.misra.Misra.Registry.rules_checked
      m.misra.Misra.Registry.total_violations
      m.dataflow.Dataflow.Analyses.t_dead_stores
      m.dataflow.Dataflow.Analyses.t_unreachable
      worst_dataflow_module.modname
      worst_dataflow_module.dataflow.Dataflow.Analyses.t_dead_stores
      worst_dataflow_module.dataflow.Dataflow.Analyses.t_unreachable;
    make 3 "No guideline or language subset exists for GPU code" true
      "our checker had to define its own CUDA rules (CUDA-1..CUDA-6); no published subset to implement";
    make 4 "CUDA code intrinsically uses pointers and dynamic memory"
      (m.cuda.Cudasim.Census.kernels > 0
       && m.cuda.Cudasim.Census.kernel_pointer_params > 0)
      "%d kernels, %.0f%% of kernel parameters are raw pointers, %d cudaMalloc sites"
      m.cuda.Cudasim.Census.kernels
      (100.0 *. Cudasim.Census.pointer_param_ratio m.cuda)
      m.cuda.Cudasim.Census.cuda_mallocs;
    make 5 "AD frameworks are written in C/C++ and carry explicit castings"
      (float_of_int m.explicit_casts > 2.0 *. (float_of_int m.total_loc /. 1000.0))
      "%d explicit casts observed (paper: >1,400 at 220k LOC)" m.explicit_casts;
    make 6 "Defensive programming techniques are not used"
      (m.param_validation_ratio < 0.5)
      "only %.0f%% of pointer parameters are validated; %d returns ignored"
      (100.0 *. m.param_validation_ratio)
      m.ignored_returns;
    make 7 "AD software uses global variables"
      (float_of_int m.globals_total > 2.0 *. (float_of_int m.total_loc /. 1000.0))
      "%d mutable globals (%d in perception; %d shared across modules; paper: ~900 in perception)"
      m.globals_total
      (match find_module m "perception" with Some pm -> pm.globals | None -> 0)
      (Util.Stats.sum_int
         (List.map
            (fun c -> c.Interproc.Summary.mc_shared)
            m.interproc.Interproc.Summary.coupling));
    make 8 "AD software follows style guides"
      (m.style_per_kloc <= 1.0)
      "%.2f style findings per kLOC under the Google C++ style subset"
      m.style_per_kloc;
    make 9 "AD software adheres to naming conventions"
      (m.naming_violations < 50)
      "%d naming violations across %d functions" m.naming_violations
      m.total_functions;
    make 10 "Code coverage for AD software is low with available tests"
      (stmt_avg < 90.0 && mcdc_avg < 70.0)
      "object detection: %.0f%%/%.0f%%/%.0f%% statement/branch/MC/DC average (paper: 83/75/61)"
      stmt_avg branch_avg mcdc_avg;
    make 11 "Tool support for GPU code coverage is very limited"
      stencil_below_full
      "coverage obtained only by running kernels on the CPU (cuda4cpu approach); stencil kernels stay below 100%% coverage";
    make 12 "Heterogeneous AD software relies on closed-source CUDA libraries"
      (List.length competitive >= List.length open_vs_closed / 2)
      "open-source alternatives are competitive on %d of %d workloads, enabling the paper's open-library path"
      (List.length competitive) (List.length open_vs_closed);
    make 13 "AD frameworks break architectural-design principles (component/interface size)"
      (* a dominant oversized component exists: absolute at paper scale,
         relative dominance at reduced scale *)
      (List.exists (fun c -> c.Metrics.Architecture.loc > 10_000) m.architecture
      || List.exists
           (fun c -> 4 * c.Metrics.Architecture.loc > m.total_loc)
           m.architecture)
      "modules span %dk..%dk LOC where the standard expects small bounded components"
      (List.fold_left (fun a c -> Stdlib.min a c.Metrics.Architecture.loc) max_int
         m.architecture
       / 1000)
      (List.fold_left (fun a c -> Stdlib.max a c.Metrics.Architecture.loc) 0
         m.architecture
       / 1000);
    make 14 "Unit design and implementation principles are not met"
      (m.multi_exit_frac > 0.3 && m.dyn_alloc_sites > 0)
      "%.0f%% multi-exit functions, %d dynamic allocations, %d gotos, %d recursions (call depth %s)"
      (100.0 *. m.multi_exit_frac)
      m.dyn_alloc_sites m.gotos_total
      (List.length m.recursive_functions)
      (Interproc.Summary.render_depth
         m.interproc.Interproc.Summary.max_call_depth);
  ]

let all_hold obs = List.for_all (fun o -> o.holds) obs
