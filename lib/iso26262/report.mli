(** Text rendering of assessment artifacts in the shape of the paper's
    tables and figures. *)

(** A findings table in the paper's Table 1-3 layout: topic, the four
    per-ASIL recommendation cells, verdict, evidence. *)
val table_of_findings : title:string -> Assess.finding list -> Util.Table.t

val render_findings : title:string -> Assess.finding list -> string

(** Per-ASIL "N of M binding guidelines satisfied" summary. *)
val render_compliance : Assess.finding list -> string

(** The Observations 1-14 table. *)
val render_observations : Observations.t list -> string

(** The Figure 3 per-module complexity/LOC/function table. *)
val render_module_summaries : Project_metrics.t -> string

(** Per-module flow-sensitive counts (CFG size, unreachable regions, dead
    stores, uninitialized reads, propagated constant conditions) with a
    totals row.  [dataflow_table] exposes the raw table for alternative
    output formats. *)
val dataflow_table : Project_metrics.t -> Util.Table.t

val render_dataflow : Project_metrics.t -> string

(** Per-module global-coupling counts (declared / read / written /
    shared) from the whole-program summary engine, with a totals row. *)
val interproc_table : Interproc.Summary.t -> Util.Table.t

(** Coupling table plus call-graph resolution accounting, recursion
    cycles, worst-case call depth / stack bound, purity and cross-call
    uninitialized flows. *)
val render_interproc : Interproc.Summary.t -> string

(** A Figure 5/6-style coverage table (statement, branch, MC/DC,
    function coverage, excluded functions) plus the averages line. *)
val render_coverage :
  title:string -> Coverage.Collector.file_coverage list -> string
