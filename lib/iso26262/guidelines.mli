(** The three ISO 26262 Part 6 guideline tables the paper assesses.

    Table numbering follows the paper: its Table 1 is ISO 26262-6 Table 1
    (modeling and coding guidelines), its Table 2 is ISO 26262-6 Table 3
    (software architectural design), its Table 3 is ISO 26262-6 Table 8
    (software unit design and implementation).  Recommendation matrices
    are copied verbatim from the paper. *)

type table = Coding | Architecture | Unit_design

val table_name : table -> string

(** Short tag used in reports and finding ids: "T1" / "T3" / "T8". *)
val table_tag : table -> string

(** One guideline topic: its table, 1-based row index, title, and
    per-ASIL recommendation strengths. *)
type topic = {
  table : table;
  index : int;
  title : string;
  recs : Asil.rec_matrix;
}

(** Topic identifier used in reports and finding analyses, e.g. "T1.3". *)
val topic_id : topic -> string

(** The 8 modeling/coding guideline topics. *)
val coding : topic list

(** The 7 architectural-design topics. *)
val architecture : topic list

(** The 10 unit design and implementation topics. *)
val unit_design : topic list

(** All 25 topics, in table order. *)
val all : topic list

val of_table : table -> topic list
val find : table:table -> index:int -> topic option
