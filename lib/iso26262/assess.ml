(** Guideline assessment: maps measured project metrics to a verdict for
    every topic of the three ISO 26262-6 tables, with the measured number
    as evidence.

    Thresholds are explicit and overridable; the defaults encode the
    judgement calls the paper makes (e.g. style "very well achieved" means
    a violation density below one per kLOC, while 554 functions above
    complexity 10 mean the low-complexity guideline fails). *)

type verdict = Pass | Partial | Fail | Not_applicable

let verdict_name = function
  | Pass -> "PASS"
  | Partial -> "PARTIAL"
  | Fail -> "FAIL"
  | Not_applicable -> "N/A"

type finding = {
  topic : Guidelines.topic;
  verdict : verdict;
  evidence : string;
  measured : float option;
}

type thresholds = {
  max_over10_functions : int;  (** low-complexity guideline *)
  max_casts_per_kloc : float;
  min_param_validation : float;
  max_globals_per_kloc : float;
  max_style_per_kloc : float;
  max_naming_violations : int;
  max_component_loc : int;
  max_interface_functions : int;
  min_cohesion : float;
  max_fan_out : int;
  max_multi_exit_frac : float;
  max_dyn_alloc_sites : int;
  max_uninit : int;
  max_shadowing : int;
  max_gotos : int;
  max_recursions : int;
  max_implicit_conversions : int;
}

let default_thresholds =
  {
    max_over10_functions = 0;
    max_casts_per_kloc = 0.5;
    min_param_validation = 0.9;
    max_globals_per_kloc = 0.2;
    max_style_per_kloc = 1.0;
    max_naming_violations = 20;
    max_component_loc = 10_000;
    max_interface_functions = 100;
    min_cohesion = 0.7;
    max_fan_out = 3;
    max_multi_exit_frac = 0.02;
    max_dyn_alloc_sites = 0;
    max_uninit = 0;
    max_shadowing = 0;
    max_gotos = 0;
    max_recursions = 0;
    max_implicit_conversions = 0;
  }

let mk topic verdict measured fmt =
  Printf.ksprintf (fun evidence -> { topic; verdict; evidence; measured }) fmt

let topic table index =
  match Guidelines.find ~table ~index with
  | Some t -> t
  | None -> invalid_arg "unknown guideline topic"

let kloc (m : Project_metrics.t) = float_of_int m.Project_metrics.total_loc /. 1000.0

(* ------------------------------------------------------------------ *)
(* Table 1: modeling and coding guidelines                              *)
(* ------------------------------------------------------------------ *)

let assess_coding ?(th = default_thresholds) (m : Project_metrics.t) =
  let open Project_metrics in
  [
    (let v = if m.over10 > th.max_over10_functions then Fail else Pass in
     mk (topic Guidelines.Coding 1) v (Some (float_of_int m.over10))
       "%d functions with cyclomatic complexity >10 (%d >20, %d >50) across %d functions"
       m.over10 m.over20 m.over50 m.total_functions);
    (let violations = m.misra.Misra.Registry.total_violations in
     let v = if violations > 0 then Fail else Pass in
     mk (topic Guidelines.Coding 2) v (Some (float_of_int violations))
       "%d MISRA-subset violations over %d rules (%d rules broken); no GPU language subset exists"
       violations m.misra.Misra.Registry.rules_checked
       m.misra.Misra.Registry.rules_violated);
    (let per_kloc = float_of_int m.explicit_casts /. kloc m in
     let v = if per_kloc > th.max_casts_per_kloc then Fail else Pass in
     mk (topic Guidelines.Coding 3) v (Some (float_of_int m.explicit_casts))
       "%d explicit casts (%.1f per kLOC), %d implicit conversions" m.explicit_casts
       per_kloc m.implicit_conversions);
    (let v =
       if m.param_validation_ratio >= th.min_param_validation then Pass
       else if m.param_validation_ratio >= 0.3 then Partial
       else Fail
     in
     mk (topic Guidelines.Coding 4) v (Some m.param_validation_ratio)
       "%.0f%% of pointer parameters validated; %d call sites discard return values; %d assertions"
       (100.0 *. m.param_validation_ratio)
       m.ignored_returns m.assertions);
    (let per_kloc = float_of_int m.globals_total /. kloc m in
     let v = if per_kloc > th.max_globals_per_kloc then Fail else Pass in
     mk (topic Guidelines.Coding 5) v (Some (float_of_int m.globals_total))
       "%d mutable global variables (%.1f per kLOC)" m.globals_total per_kloc);
    mk (topic Guidelines.Coding 6) Not_applicable None
      "code is C/C++/CUDA; graphical modeling notation is not used";
    (let v = if m.style_per_kloc <= th.max_style_per_kloc then Pass else Fail in
     mk (topic Guidelines.Coding 7) v (Some m.style_per_kloc)
       "%d style findings, %.2f per kLOC (Google C++ style)" m.style_findings
       m.style_per_kloc);
    (let v = if m.naming_violations <= th.max_naming_violations then Pass else Fail in
     mk (topic Guidelines.Coding 8) v (Some (float_of_int m.naming_violations))
       "%d naming-convention violations" m.naming_violations);
  ]

(* ------------------------------------------------------------------ *)
(* Table 2 of the paper: architectural design                           *)
(* ------------------------------------------------------------------ *)

let assess_architecture ?(th = default_thresholds) (m : Project_metrics.t) =
  let open Project_metrics in
  let comps = m.architecture in
  let oversized =
    List.filter (fun c -> c.Metrics.Architecture.loc > th.max_component_loc) comps
  in
  let big_interfaces =
    List.filter
      (fun c -> c.Metrics.Architecture.interface_size > th.max_interface_functions)
      comps
  in
  let mean_cohesion =
    Util.Stats.mean (List.map (fun c -> c.Metrics.Architecture.cohesion) comps)
  in
  let max_fan_out =
    List.fold_left (fun acc c -> Stdlib.max acc c.Metrics.Architecture.fan_out) 0 comps
  in
  let interrupts = List.filter (fun c -> c.Metrics.Architecture.uses_interrupts) comps in
  let threads = List.filter (fun c -> c.Metrics.Architecture.uses_threads) comps in
  [
    (let v = if m.namespace_depth >= 2 && List.length comps > 1 then Pass else Partial in
     mk (topic Guidelines.Architecture 1) v (Some (float_of_int m.namespace_depth))
       "%d components, namespace nesting depth %d" (List.length comps)
       m.namespace_depth);
    (let v = if oversized = [] then Pass else Fail in
     mk (topic Guidelines.Architecture 2) v (Some (float_of_int (List.length oversized)))
       "%d of %d components exceed %d LOC (largest %d LOC)" (List.length oversized)
       (List.length comps) th.max_component_loc
       (List.fold_left (fun a c -> Stdlib.max a c.Metrics.Architecture.loc) 0 comps));
    (let v = if big_interfaces = [] then Pass else Fail in
     mk (topic Guidelines.Architecture 3) v
       (Some (float_of_int (List.length big_interfaces)))
       "%d components export more than %d functions" (List.length big_interfaces)
       th.max_interface_functions);
    (let v = if mean_cohesion >= th.min_cohesion then Pass else Partial in
     mk (topic Guidelines.Architecture 4) v (Some mean_cohesion)
       "mean intra-component call cohesion %.2f" mean_cohesion);
    (let v = if max_fan_out <= th.max_fan_out then Pass else Partial in
     mk (topic Guidelines.Architecture 5) v (Some (float_of_int max_fan_out))
       "maximum component fan-out %d" max_fan_out);
    (let v = if threads = [] then Pass else Fail in
     mk (topic Guidelines.Architecture 6) v (Some (float_of_int (List.length threads)))
       "%d components spawn threads with no WCET/deadline annotations"
       (List.length threads));
    (let v = if interrupts = [] then Pass else Fail in
     mk (topic Guidelines.Architecture 7) v (Some (float_of_int (List.length interrupts)))
       "%d components install interrupt/signal handlers" (List.length interrupts));
  ]

(* ------------------------------------------------------------------ *)
(* Table 3 of the paper: unit design and implementation                 *)
(* ------------------------------------------------------------------ *)

let assess_unit_design ?(th = default_thresholds) (m : Project_metrics.t) =
  let open Project_metrics in
  [
    (let v = if m.multi_exit_frac > th.max_multi_exit_frac then Fail else Pass in
     mk (topic Guidelines.Unit_design 1) v (Some m.multi_exit_frac)
       "%.0f%% of functions have several exit points" (100.0 *. m.multi_exit_frac));
    (let v = if m.dyn_alloc_sites > th.max_dyn_alloc_sites then Fail else Pass in
     mk (topic Guidelines.Unit_design 2) v (Some (float_of_int m.dyn_alloc_sites))
       "%d dynamic allocation sites (malloc/new/cudaMalloc)" m.dyn_alloc_sites);
    (let n = List.length m.uninit_findings in
     let v = if n > th.max_uninit then Fail else Pass in
     mk (topic Guidelines.Unit_design 3) v (Some (float_of_int n))
       "%d variables possibly read before initialization" n);
    (let v = if m.shadowing_count + m.duplicate_globals > th.max_shadowing then Fail else Pass in
     mk (topic Guidelines.Unit_design 4) v
       (Some (float_of_int (m.shadowing_count + m.duplicate_globals)))
       "%d shadowing declarations, %d globals redefined across units"
       m.shadowing_count m.duplicate_globals);
    (let v = if m.globals_total > 0 then Fail else Pass in
     let perception =
       match find_module m "perception" with
       | Some pm -> pm.globals
       | None -> 0
     in
     let shared =
       Util.Stats.sum_int
         (List.map
            (fun c -> c.Interproc.Summary.mc_shared)
            m.interproc.Interproc.Summary.coupling)
     in
     mk (topic Guidelines.Unit_design 5) v (Some (float_of_int m.globals_total))
       "%d mutable globals (%d in perception alone, %d shared across modules); standard permits only justified usage"
       m.globals_total perception shared);
    (let u = m.pointer_usage in
     let total_ptr = u.Metrics.Pointers.ptr_params + u.Metrics.Pointers.ptr_locals in
     let v = if total_ptr > 0 then Fail else Pass in
     mk (topic Guidelines.Unit_design 6) v (Some (float_of_int total_ptr))
       "%d pointer parameters, %d pointer locals, %d dereference sites"
       u.Metrics.Pointers.ptr_params u.Metrics.Pointers.ptr_locals
       u.Metrics.Pointers.derefs);
    (let v = if m.implicit_conversions > th.max_implicit_conversions then Fail else Pass in
     mk (topic Guidelines.Unit_design 7) v (Some (float_of_int m.implicit_conversions))
       "%d implicit int/float conversions detected" m.implicit_conversions);
    (let hidden = m.gotos_total + m.duplicate_globals in
     let v = if hidden > 0 then Partial else Pass in
     mk (topic Guidelines.Unit_design 8) v (Some (float_of_int hidden))
       "hidden flow proxies: %d gotos, %d cross-unit global redefinitions"
       m.gotos_total m.duplicate_globals);
    (let v = if m.gotos_total > th.max_gotos then Fail else Pass in
     mk (topic Guidelines.Unit_design 9) v (Some (float_of_int m.gotos_total))
       "%d goto statements" m.gotos_total);
    (let n = List.length m.recursive_functions in
     let v = if n > th.max_recursions then Fail else Pass in
     let cycles = m.interproc.Interproc.Summary.cycles in
     mk (topic Guidelines.Unit_design 10) v (Some (float_of_int n))
       "%d recursive functions in %d cycles (e.g. %s); worst-case call depth %s"
       n (List.length cycles)
       (match m.recursive_functions with f :: _ -> f | [] -> "none")
       (Interproc.Summary.render_depth
          m.interproc.Interproc.Summary.max_call_depth));
  ]

let assess_all ?(th = default_thresholds) m =
  assess_coding ~th m @ assess_architecture ~th m @ assess_unit_design ~th m

(** Compliance summary at one ASIL: a finding counts against compliance
    only when the guideline is binding ([+] or [++]) at that ASIL. *)
let compliance_at ~asil findings =
  let binding =
    List.filter
      (fun f ->
        Asil.binding f.topic.Guidelines.recs asil && f.verdict <> Not_applicable)
      findings
  in
  let passed = List.filter (fun f -> f.verdict = Pass) binding in
  ( List.length passed,
    List.length binding )
