(** End-to-end audit pipeline — the library's top-level entry point.

    [run] generates (or accepts) a corpus, extracts metrics, executes the
    coverage experiments, and assesses every guideline; [render] prints
    the complete report in the paper's artifact order.  The CLI, the
    examples and the benchmark harness are thin wrappers over these. *)

type t = {
  parsed : Cfront.Project.parsed;
  metrics : Project_metrics.t;
  coding : Assess.finding list;  (** paper Table 1 verdicts *)
  architecture : Assess.finding list;  (** paper Table 2 verdicts *)
  unit_design : Assess.finding list;  (** paper Table 3 verdicts *)
  yolo_coverage : Coverage.Collector.file_coverage list;  (** Figure 5 *)
  yolo_run_output : string;  (** stdout of the embedded test scenarios *)
  stencil_coverage : Coverage.Collector.file_coverage list;  (** Figure 6 *)
  observations : Observations.t list;
  journal : Provenance.finding list;
      (** this run's evidence journal, canonical order (the audit resets
          the global journal at the start of [run]) *)
}

(** Run the Figure 5 experiment alone: parse the embedded YOLO sources,
    execute the real-scenario tests, score coverage. *)
val run_yolo_coverage :
  unit ->
  Coverage.Collector.file_coverage list
  * string
  * (Coverage.Value.t, string) result

(** Run the Figure 6 experiment alone. *)
val run_stencil_coverage :
  unit -> Coverage.Collector.file_coverage list * (Coverage.Value.t, string) result

(** Audit a corpus.  Defaults: [seed 2019], the paper-scale Apollo
    profile, the paper's thresholds, no GPU ratios (Observation 12 then
    reports over an empty set).  [project] supplies the source tree
    directly (edited trees for incremental audits); [seed]/[specs] then
    only label the run.  Raises [Failure] if an embedded coverage
    scenario fails to execute — that would mean the toolchain itself is
    broken.

    When the global artifact cache is enabled ([Cache.set_global] /
    [--cache DIR]), the run restarts the parser id counters, diffs the
    tree against the stored dependency manifest, invalidates exactly the
    changed files and their transitive reverse-dependents, and serves
    every other artifact warm.  The contract — enforced by
    [test/test_cache_diff.ml] — is that report bytes, the evidence
    journal and every finding id are identical to a cold jobs=1 run. *)
val run :
  ?seed:int ->
  ?specs:Corpus.Apollo_profile.module_spec list ->
  ?thresholds:Assess.thresholds ->
  ?open_vs_closed:(string * float) list ->
  ?project:Cfront.Project.t ->
  unit ->
  t

(** Dependency manifest of a parsed tree: per-file content hash plus
    project-internal include + call-graph dependencies (caller depends
    on callee).  Saved under the project's name after every
    cache-enabled audit; exposed for the differential tests. *)
val manifest_of_parsed : Cfront.Project.parsed -> Cache.Manifest.t

(** The 25 findings of all three tables, in table order. *)
val all_findings : t -> Assess.finding list

(** The complete report: Figure 3 table, the three guideline tables,
    Figures 5 and 6 coverage, Observations 1-14, and the per-ASIL
    compliance summary. *)
val render : t -> string
