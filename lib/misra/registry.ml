(** Rule registry and whole-project runner. *)

let c_rules =
  Rules_control.all @ Rules_types.all @ Rules_functions.all @ Rules_preproc.all
  @ Rules_extended.all @ Rules_wave3.all

let cuda_rules = Rules_cuda.all

(** Flow-sensitive extended rules (dead stores, propagated constant
    conditions) built on the dataflow engine. *)
let dataflow_rules = Rules_dataflow.all

(** Whole-program rules built on the interprocedural summary engine. *)
let interproc_rules = Rules_interproc.all

let all_rules = c_rules @ cuda_rules @ dataflow_rules @ interproc_rules

let find_rule id = List.find_opt (fun (r : Rule.t) -> r.Rule.id = id) all_rules

(** A documented deviation, the mechanism MISRA compliance actually uses:
    a rule may be violated up to [max_instances] times (unbounded when
    [None]) given a recorded justification.  Deviations of [Mandatory]
    rules are not permitted and are ignored with a note. *)
type deviation = {
  dev_rule : string;
  justification : string;
  max_instances : int option;
}

type deviation_outcome = {
  deviation : deviation;
  suppressed : int;  (** violations covered by the deviation *)
  residual : int;  (** violations beyond [max_instances] *)
  rejected : bool;  (** deviation targeted a mandatory rule *)
}

type report = {
  per_rule : (Rule.t * Rule.violation list) list;
  total_violations : int;
  rules_violated : int;
  rules_checked : int;
  deviations : deviation_outcome list;
}

let apply_deviations deviations per_rule =
  let outcomes = ref [] in
  let per_rule =
    List.map
      (fun ((r : Rule.t), vs) ->
        match List.find_opt (fun d -> d.dev_rule = r.Rule.id) deviations with
        | None -> (r, vs)
        | Some d when r.Rule.category = Rule.Mandatory ->
          outcomes := { deviation = d; suppressed = 0; residual = List.length vs;
                        rejected = true } :: !outcomes;
          (r, vs)
        | Some d ->
          let n = List.length vs in
          let allowed = Option.value ~default:n d.max_instances in
          let suppressed = Stdlib.min n allowed in
          outcomes :=
            { deviation = d; suppressed; residual = n - suppressed;
              rejected = false }
            :: !outcomes;
          (* keep only the residual (oldest-first excess) *)
          (r, List.filteri (fun i _ -> i >= suppressed) vs))
      per_rule
  in
  (per_rule, List.rev !outcomes)

(* Journal entry for one violation: the rule metadata and the violation
   site frame whatever rule-specific steps the check attached (dataflow
   path, call chain, recursion cycle), so every MISRA finding has a
   non-empty witness chain even for purely syntactic rules. *)
let finding_of_violation (r : Rule.t) (v : Rule.violation) =
  let witness =
    Provenance.step "rule" "MISRA %s (%s): %s" r.Rule.id
      (Rule.category_name r.Rule.category) r.Rule.title
    :: Provenance.step ~loc:v.Rule.loc "site" "%s" v.Rule.message
    :: v.Rule.witness
  in
  Provenance.make ~kind:"misra" ~analysis:r.Rule.id ~loc:v.Rule.loc
    ~message:v.Rule.message ~witness ()

let run ?(rules = all_rules) ?(deviations = []) ?cache_key ctx =
  Telemetry.with_span ~cat:"misra" "misra"
    ~attrs:[ ("rules", string_of_int (List.length rules)) ]
    (fun () ->
      (* One task per rule (costs vary by orders of magnitude, so no
         chunking); the context is shared read-only across domains and
         results come back in registration order, making the report
         identical at every --jobs value.  At --jobs 1 this is List.map,
         per-rule spans included. *)
      let per_rule =
        Telemetry.parallel_map ~chunk_size:1
          (fun (r : Rule.t) ->
            let vs =
              Telemetry.with_span ~cat:"misra" ("misra.rule." ^ r.Rule.id)
                (fun () ->
                  (* timed region innermost so the measured ticks are the
                     same whether the span is live (jobs=1) or suppressed
                     on a worker (jobs>1) *)
                  Telemetry.timed ("misra.rule_us." ^ r.Rule.id)
                    (fun () ->
                      (* Per-rule artifact, keyed by rule id + the
                         whole-tree content key: rules see the whole
                         project through [ctx], so any edit re-runs
                         them.  The stored value is only the violation
                         list — journaling below re-derives findings on
                         the calling domain, so the evidence journal is
                         byte-identical on hits. *)
                      match (Cache.global (), cache_key) with
                      | Some c, Some ck ->
                        Cache.memo c ~kind:"misra"
                          ~key:(Cache.key ~kind:"misra" [ r.Rule.id; ck ])
                          (fun () -> r.Rule.check ctx)
                      | _ -> r.Rule.check ctx))
            in
            Telemetry.add ("misra.violations." ^ r.Rule.id) (List.length vs);
            Telemetry.observe "misra.rule_violations"
              (float_of_int (List.length vs));
            (r, vs))
          rules
      in
      let per_rule, outcomes = apply_deviations deviations per_rule in
      (* Journal after deviations so the evidence matches the report:
         suppressed violations leave no finding.  This runs on the
         calling domain in registration order, so the journal is
         identical at every --jobs value. *)
      List.iter
        (fun (r, vs) ->
          List.iter (fun v -> Provenance.record (finding_of_violation r v)) vs)
        per_rule;
      let total_violations =
        Util.Stats.sum_int (List.map (fun (_, vs) -> List.length vs) per_rule)
      in
      Telemetry.incr "misra.runs";
      Telemetry.add "misra.rules_checked" (List.length rules);
      Telemetry.add "misra.violations" total_violations;
      {
        per_rule;
        total_violations;
        rules_violated =
          List.length (List.filter (fun (_, vs) -> vs <> []) per_rule);
        rules_checked = List.length rules;
        deviations = outcomes;
      })

let run_project ?(rules = all_rules) parsed =
  let cache_key =
    match Cache.global () with
    | None -> None
    | Some _ -> Some (Cfront.Project.content_key parsed.Cfront.Project.project)
  in
  run ~rules ?cache_key (Rule.build_context parsed)

(** Violations grouped by category. *)
let by_category report =
  List.map
    (fun cat ->
      let n =
        Util.Stats.sum_int
          (List.filter_map
             (fun ((r : Rule.t), vs) ->
               if r.Rule.category = cat then Some (List.length vs) else None)
             report.per_rule)
      in
      (cat, n))
    [ Rule.Mandatory; Rule.Required; Rule.Advisory ]

(** Compliance ratio over rules: rules with zero violations / rules
    checked.  MISRA compliance is per-rule (a deviation on any instance
    breaks the rule). *)
let rule_compliance report =
  if report.rules_checked = 0 then 1.0
  else
    float_of_int (report.rules_checked - report.rules_violated)
    /. float_of_int report.rules_checked

let render_summary report =
  let open Util in
  let t =
    Table.make ~title:"MISRA C:2012 (subset) compliance summary"
      ~header:[ "rule"; "category"; "title"; "violations" ]
      ~aligns:[ Table.Left; Table.Left; Table.Left; Table.Right ]
      ()
  in
  let t =
    List.fold_left
      (fun t ((r : Rule.t), vs) ->
        Table.add_row t
          [ r.Rule.id; Rule.category_name r.Rule.category; r.Rule.title;
            string_of_int (List.length vs) ])
      t report.per_rule
  in
  Table.render t
