(** Extended rules built directly on the dataflow engine (CFG + worklist
    fixpoint), in the spirit of the flow-sensitive commercial analyzers
    the paper ran over Apollo.  Like the CUDA-* family these carry ids
    outside the MISRA C:2012 numbering:

    - DF-1: dead store — a value assigned (or a declaration initializer)
      that no path ever reads.  Strictly wider than the dead-store arm of
      rule 2.2, which skips declaration initializers.
    - DF-2: constant controlling expression — a branch condition that
      folds to a compile-time constant through trivial constant
      propagation over reaching definitions.  Syntactic literal
      conditions are rule 14.3's findings and are excluded here, so DF-2
      reports exactly what flow-insensitive checking cannot see. *)

open Cfront

let each_defined_func (ctx : Rule.context) f =
  List.concat_map
    (fun fn -> match fn.Ast.f_body with None -> [] | Some _ -> f fn)
    ctx.Rule.functions

let df1 =
  Rule.make ~id:"DF-1" ~title:"no dead stores (liveness)"
    ~category:Rule.Advisory (fun ctx ->
      each_defined_func ctx (fun fn ->
          let cfg = Dataflow.Cfg.of_func fn in
          List.map
            (fun (d : Dataflow.Analyses.dead_store) ->
              let what =
                match d.Dataflow.Analyses.d_kind with
                | Dataflow.Analyses.Sassign -> "value assigned"
                | Dataflow.Analyses.Sdecl_init -> "initializer"
              in
              let witness =
                [
                  Provenance.step ~loc:d.Dataflow.Analyses.d_loc "store"
                    "%s to %s" what d.Dataflow.Analyses.d_var;
                  Provenance.step "liveness"
                    "%s is dead after this store on every path of %s (%d CFG nodes)"
                    d.Dataflow.Analyses.d_var (Ast.qualified_name fn)
                    (Dataflow.Cfg.n_blocks cfg);
                ]
              in
              Rule.v ~witness ~rule_id:"DF-1" ~loc:d.Dataflow.Analyses.d_loc
                "%s to %s is never read in %s" what d.Dataflow.Analyses.d_var
                (Ast.qualified_name fn))
            (Dataflow.Analyses.dead_stores cfg)))

let df2 =
  Rule.make ~id:"DF-2" ~title:"no constant controlling expressions (propagated)"
    ~category:Rule.Advisory (fun ctx ->
      each_defined_func ctx (fun fn ->
          let cfg = Dataflow.Cfg.of_func fn in
          List.filter_map
            (fun (c : Dataflow.Analyses.const_cond) ->
              if c.Dataflow.Analyses.c_propagated then
                let value = if c.Dataflow.Analyses.c_value then "true" else "false" in
                let witness =
                  [
                    Provenance.step ~loc:c.Dataflow.Analyses.c_loc "condition"
                      "controlling expression folds to %s" value;
                    Provenance.step "constant-propagation"
                      "every reaching definition yields the same constant in %s (%d CFG nodes)"
                      (Ast.qualified_name fn) (Dataflow.Cfg.n_blocks cfg);
                  ]
                in
                Some
                  (Rule.v ~witness ~rule_id:"DF-2" ~loc:c.Dataflow.Analyses.c_loc
                     "condition is always %s in %s" value (Ast.qualified_name fn))
              else None)
            (Dataflow.Analyses.constant_conditions cfg)))

let all = [ df1; df2 ]
