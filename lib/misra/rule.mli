(** Rule-engine core types for the MISRA C:2012-style checker.

    Rules are pure functions from an analysis {!context} to violations;
    the context is built once per project so individual rules stay
    cheap. *)

type category = Mandatory | Required | Advisory

val category_name : category -> string

type violation = {
  rule_id : string;
  loc : Cfront.Loc.t;
  message : string;
  witness : Provenance.step list;
      (** rule-specific extra witness steps (the dataflow path, the call
          chain, the recursion cycle); the registry prepends the rule
          and violation-site steps when it journals the finding *)
}

type context = {
  files : Cfront.Project.parsed_file list;
  functions : Cfront.Ast.func list;  (** defined functions, all files *)
  callgraph : Cfront.Callgraph.t;
}

type t = {
  id : string;  (** e.g. "15.1" (MISRA C:2012) or "CUDA-2" (extension) *)
  title : string;
  category : category;
  decidable : bool;
  check : context -> violation list;
}

val make :
  id:string ->
  title:string ->
  category:category ->
  ?decidable:bool ->
  (context -> violation list) ->
  t

val build_context : Cfront.Project.parsed -> context
val context_of_files : Cfront.Project.parsed_file list -> context

(** Printf-style violation constructor.  [witness] carries the
    rule-specific provenance steps (empty for purely syntactic rules —
    the registry's rule/site steps already make the journal chain
    non-empty). *)
val v :
  ?witness:Provenance.step list ->
  rule_id:string ->
  loc:Cfront.Loc.t ->
  ('a, unit, string, violation) format4 ->
  'a
