(** Type- and expression-level rules (MISRA C:2012 sections 7-11). *)

open Cfront

let each_func (ctx : Rule.context) f = List.concat_map f ctx.Rule.functions

(* 7.1: octal constants shall not be used. *)
let r7_1 =
  Rule.make ~id:"7.1" ~title:"octal constants shall not be used"
    ~category:Rule.Required (fun ctx ->
      List.concat_map
        (fun pf ->
          List.filter_map
            (fun (tok : Token.t) ->
              match tok.Token.kind with
              | Token.Int_lit (_, raw)
                when String.length raw > 1 && raw.[0] = '0'
                     && raw.[1] <> 'x' && raw.[1] <> 'X'
                     && Util.Strutil.for_all Util.Strutil.is_digit raw ->
                Some (Rule.v ~rule_id:"7.1" ~loc:tok.Token.loc "octal constant %s" raw)
              | _ -> None)
            pf.Project.tu.Ast.tokens)
        ctx.Rule.files)

(* 5.1: external identifiers shall be distinct within limits (we flag
   identifiers longer than 31 characters, where legacy linkers truncate). *)
let r5_1 =
  Rule.make ~id:"5.1" ~title:"identifiers shall be distinct in 31 characters"
    ~category:Rule.Required (fun ctx ->
      List.concat_map
        (fun (fn : Ast.func) ->
          if String.length fn.Ast.f_name > 31 then
            [ Rule.v ~rule_id:"5.1" ~loc:fn.Ast.f_loc "identifier %s exceeds 31 characters"
                fn.Ast.f_name ]
          else [])
        ctx.Rule.functions)

(* 5.3: an identifier in an inner scope shall not hide an outer one. *)
let r5_3 =
  Rule.make ~id:"5.3" ~title:"no identifier shadowing" ~category:Rule.Required
    (fun ctx ->
      List.map
        (fun (f : Metrics.Shadowing.finding) ->
          Rule.v ~rule_id:"5.3" ~loc:f.Metrics.Shadowing.loc "%s: %s"
            f.Metrics.Shadowing.name
            (Metrics.Shadowing.kind_name f.Metrics.Shadowing.kind))
        (Metrics.Shadowing.of_files ctx.Rule.files))

(* 10.1/10.3: implicit conversions between essential types. *)
let r10_3 =
  Rule.make ~id:"10.3" ~title:"no implicit narrowing conversions"
    ~category:Rule.Required (fun ctx ->
      List.filter_map
        (fun (c : Metrics.Casts.record) ->
          match c.Metrics.Casts.kind with
          | Metrics.Casts.Implicit_narrowing ->
            Some
              (Rule.v ~rule_id:"10.3" ~loc:c.Metrics.Casts.loc
                 "implicit float-to-int conversion in %s" c.Metrics.Casts.in_function)
          | _ -> None)
        (Metrics.Casts.of_functions ctx.Rule.functions))

(* 11.x: C-style casts between object pointers / reinterpret casts. *)
let r11_3 =
  Rule.make ~id:"11.3" ~title:"no cast between pointers to different types"
    ~category:Rule.Required (fun ctx ->
      each_func ctx (fun fn ->
          let acc = ref [] in
          Ast.iter_exprs_of_func
            (fun e ->
              match e.Ast.e with
              | Ast.C_cast (ty, _) when Ast.is_pointer_type ty ->
                acc :=
                  Rule.v ~rule_id:"11.3" ~loc:e.Ast.eloc
                    "C-style pointer cast to %s in %s" (Ast.type_to_string ty)
                    (Ast.qualified_name fn)
                  :: !acc
              | Ast.Cpp_cast (Ast.Reinterpret_cast, ty, _) ->
                acc :=
                  Rule.v ~rule_id:"11.3" ~loc:e.Ast.eloc
                    "reinterpret_cast to %s in %s" (Ast.type_to_string ty)
                    (Ast.qualified_name fn)
                  :: !acc
              | _ -> ())
            fn;
          List.rev !acc))

(* 11.8: a cast shall not remove const qualification. *)
let r11_8 =
  Rule.make ~id:"11.8" ~title:"no cast removing const" ~category:Rule.Required
    (fun ctx ->
      each_func ctx (fun fn ->
          let acc = ref [] in
          Ast.iter_exprs_of_func
            (fun e ->
              match e.Ast.e with
              | Ast.Cpp_cast (Ast.Const_cast, _, _) ->
                acc :=
                  Rule.v ~rule_id:"11.8" ~loc:e.Ast.eloc "const_cast in %s"
                    (Ast.qualified_name fn)
                  :: !acc
              | _ -> ())
            fn;
          List.rev !acc))

(* 11.9: the macro NULL / literal 0 shall not be used as a pointer
   constant — nullptr is required in C++11 style. *)
let r11_9 =
  Rule.make ~id:"11.9" ~title:"use nullptr for null pointer constants"
    ~category:Rule.Required (fun ctx ->
      each_func ctx (fun fn ->
          let acc = ref [] in
          Ast.iter_exprs_of_func
            (fun e ->
              match e.Ast.e with
              | Ast.Id "NULL" ->
                acc :=
                  Rule.v ~rule_id:"11.9" ~loc:e.Ast.eloc "NULL macro in %s"
                    (Ast.qualified_name fn)
                  :: !acc
              | Ast.C_cast (ty, { e = Ast.Int_const 0L; _ }) when Ast.is_pointer_type ty ->
                acc :=
                  Rule.v ~rule_id:"11.9" ~loc:e.Ast.eloc "(T*)0 null constant in %s"
                    (Ast.qualified_name fn)
                  :: !acc
              | _ -> ())
            fn;
          List.rev !acc))

(* 18.5: declarations shall contain at most two levels of pointer nesting. *)
let r18_5 =
  Rule.make ~id:"18.5" ~title:"at most two levels of pointer nesting"
    ~category:Rule.Advisory (fun ctx ->
      let depth ty =
        let rec go n = function
          | Ast.Tptr t -> go (n + 1) t
          | Ast.Tconst t -> go n t
          | _ -> n
        in
        go 0 ty
      in
      each_func ctx (fun fn ->
          let from_params =
            List.filter_map
              (fun (p : Ast.param) ->
                if depth p.Ast.p_type > 2 then
                  Some
                    (Rule.v ~rule_id:"18.5" ~loc:fn.Ast.f_loc
                       "parameter %s of %s has %d levels of pointers" p.Ast.p_name
                       (Ast.qualified_name fn) (depth p.Ast.p_type))
                else None)
              fn.Ast.f_params
          in
          let acc = ref [] in
          (match fn.Ast.f_body with
           | None -> ()
           | Some body ->
             Ast.iter_stmts
               (fun s ->
                 match s.Ast.s with
                 | Ast.Sdecl ds ->
                   List.iter
                     (fun (d : Ast.var_decl) ->
                       if depth d.Ast.v_type > 2 then
                         acc :=
                           Rule.v ~rule_id:"18.5" ~loc:d.Ast.v_loc
                             "local %s has %d levels of pointers" d.Ast.v_name
                             (depth d.Ast.v_type)
                           :: !acc)
                     ds
                 | _ -> ())
               body);
          from_params @ List.rev !acc))

(* 12.2: the right operand of a shift shall lie in the range 0..width-1. *)
let r12_2 =
  Rule.make ~id:"12.2" ~title:"shift amounts shall be in range"
    ~category:Rule.Required (fun ctx ->
      each_func ctx (fun fn ->
          let acc = ref [] in
          Ast.iter_exprs_of_func
            (fun e ->
              match e.Ast.e with
              | Ast.Binary ((Ast.Shl | Ast.Shr), _, { e = Ast.Int_const n; _ })
                when n < 0L || n >= 32L ->
                acc :=
                  Rule.v ~rule_id:"12.2" ~loc:e.Ast.eloc
                    "shift by %Ld in %s" n (Ast.qualified_name fn)
                  :: !acc
              | _ -> ())
            fn;
          List.rev !acc))

(* 2.2: no dead code.  Two complementary detectors:
   - an expression statement with no side effect (syntactic, as before);
   - a dead store: an assignment statement whose value is never read on
     any path (flow-sensitive, via the liveness fixpoint in
     [Dataflow.Analyses]).  This catches operations the syntactic scan
     calls effectful but whose outcome cannot influence the program —
     e.g. a store on one branch that every successor overwrites. *)
let r2_2 =
  Rule.make ~id:"2.2" ~title:"no dead code" ~category:Rule.Required (fun ctx ->
      each_func ctx (fun fn ->
          match fn.Ast.f_body with
          | None -> []
          | Some body ->
            let acc = ref [] in
            let rec has_side_effect e =
              match e.Ast.e with
              | Ast.Assign _ | Ast.Call _ | Ast.Kernel_launch _ | Ast.New _
              | Ast.Delete _ | Ast.Throw _
              | Ast.Unary ((Ast.Pre_inc | Ast.Pre_dec), _)
              | Ast.Postfix _ -> true
              | Ast.Unary (_, a) | Ast.C_cast (_, a) | Ast.Cpp_cast (_, _, a) ->
                has_side_effect a
              | Ast.Binary (_, a, b) | Ast.Index (a, b) ->
                has_side_effect a || has_side_effect b
              | Ast.Ternary (a, b, c) ->
                has_side_effect a || has_side_effect b || has_side_effect c
              | Ast.Member { obj; _ } -> has_side_effect obj
              | _ -> false
            in
            Ast.iter_stmts
              (fun s ->
                match s.Ast.s with
                | Ast.Sexpr e when not (has_side_effect e) ->
                  acc :=
                    Rule.v ~rule_id:"2.2" ~loc:s.Ast.sloc
                      "expression statement without side effect in %s"
                      (Ast.qualified_name fn)
                    :: !acc
                | _ -> ())
              body;
            let cfg = Dataflow.Cfg.of_func fn in
            let dead =
              List.map
                (fun (d : Dataflow.Analyses.dead_store) ->
                  Rule.v ~rule_id:"2.2" ~loc:d.Dataflow.Analyses.d_loc
                    "dead store to %s in %s" d.Dataflow.Analyses.d_var
                    (Ast.qualified_name fn))
                (Dataflow.Analyses.dead_stores ~include_decl_init:false cfg)
            in
            List.rev_append !acc dead))

(* 13.x: side effects inside && / || operands. *)
let r13_5 =
  Rule.make ~id:"13.5" ~title:"no side effects in && / || operands"
    ~category:Rule.Required (fun ctx ->
      each_func ctx (fun fn ->
          let acc = ref [] in
          let rec impure e =
            match e.Ast.e with
            | Ast.Assign _ | Ast.Kernel_launch _ | Ast.New _ | Ast.Delete _
            | Ast.Unary ((Ast.Pre_inc | Ast.Pre_dec), _) | Ast.Postfix _ -> true
            | Ast.Call _ -> false  (* calls tolerated: too noisy otherwise *)
            | Ast.Unary (_, a) | Ast.C_cast (_, a) | Ast.Cpp_cast (_, _, a) -> impure a
            | Ast.Binary (_, a, b) | Ast.Index (a, b) -> impure a || impure b
            | Ast.Ternary (a, b, c) -> impure a || impure b || impure c
            | Ast.Member { obj; _ } -> impure obj
            | _ -> false
          in
          Ast.iter_exprs_of_func
            (fun e ->
              match e.Ast.e with
              | Ast.Binary ((Ast.Land | Ast.Lor), _, rhs) when impure rhs ->
                acc :=
                  Rule.v ~rule_id:"13.5" ~loc:e.Ast.eloc
                    "side effect in short-circuit RHS in %s" (Ast.qualified_name fn)
                  :: !acc
              | _ -> ())
            fn;
          List.rev !acc))

let all = [ r2_2; r5_1; r5_3; r7_1; r10_3; r11_3; r11_8; r11_9; r12_2; r13_5; r18_5 ]
