(** Rule-engine core types for the MISRA C:2012-style checker.

    Rules are pure functions from an analysis {!context} to a list of
    {!violation}s.  The context is built once per project, so individual
    rules stay cheap. *)

type category = Mandatory | Required | Advisory

let category_name = function
  | Mandatory -> "mandatory"
  | Required -> "required"
  | Advisory -> "advisory"

type violation = {
  rule_id : string;
  loc : Cfront.Loc.t;
  message : string;
  witness : Provenance.step list;
      (** rule-specific extra witness steps; the registry prepends the
          rule and violation-site steps when journaling *)
}

type context = {
  files : Cfront.Project.parsed_file list;
  functions : Cfront.Ast.func list;  (** defined functions, all files *)
  callgraph : Cfront.Callgraph.t;
}

type t = {
  id : string;  (** e.g. "15.1" for MISRA C:2012 rule 15.1, or "CUDA-2" *)
  title : string;
  category : category;
  decidable : bool;
  check : context -> violation list;
}

let make ~id ~title ~category ?(decidable = true) check =
  { id; title; category; decidable; check }

let build_context (parsed : Cfront.Project.parsed) =
  let functions = Cfront.Project.all_functions parsed in
  {
    files = parsed.Cfront.Project.files;
    functions;
    callgraph = Cfront.Callgraph.build functions;
  }

let context_of_files files =
  let functions =
    List.concat_map
      (fun pf ->
        List.filter
          (fun (f : Cfront.Ast.func) -> f.Cfront.Ast.f_body <> None)
          (Cfront.Ast.functions_of_tu pf.Cfront.Project.tu))
      files
  in
  { files; functions; callgraph = Cfront.Callgraph.build functions }

let v ?(witness = []) ~rule_id ~loc fmt =
  Printf.ksprintf (fun message -> { rule_id; loc; message; witness }) fmt
