(** Extended rules built on the whole-program summary engine
    ({!Interproc.Summary}).  Like the DF-* family these carry ids
    outside the MISRA C:2012 numbering:

    - IP-1: no uninitialized value may flow through a call — [&x] passed
      to a callee that provably never initializes the pointee does not
      count as initialization of [x], closing the hole rule 9.1's
      intraprocedural analysis leaves open (address-taking
      conservatively initializes there).  Findings are disjoint from
      9.1's by construction. *)

let ip1 =
  Rule.make ~id:"IP-1" ~title:"no uninitialized values across calls"
    ~category:Rule.Required (fun ctx ->
      let t = Interproc.Summary.of_files ctx.Rule.files in
      List.map
        (fun (f : Interproc.Summary.uninit_flow) ->
          let witness =
            [
              Provenance.step ~loc:f.Interproc.Summary.ip_decl_loc "decl"
                "%s declared without an initializer in %s"
                f.Interproc.Summary.ip_var f.Interproc.Summary.ip_function;
              Provenance.step ~loc:f.Interproc.Summary.ip_call_loc "call"
                "&%s passed to %s, whose summary never initializes the pointee"
                f.Interproc.Summary.ip_var f.Interproc.Summary.ip_callee;
              Provenance.step ~loc:f.Interproc.Summary.ip_use_loc "use"
                "%s read here while still uninitialized"
                f.Interproc.Summary.ip_var;
            ]
          in
          Rule.v ~witness ~rule_id:"IP-1" ~loc:f.Interproc.Summary.ip_use_loc
            "%s may be read uninitialized in %s: &%s was passed to %s (line %d), which never initializes it"
            f.Interproc.Summary.ip_var f.Interproc.Summary.ip_function
            f.Interproc.Summary.ip_var f.Interproc.Summary.ip_callee
            f.Interproc.Summary.ip_call_loc.Cfront.Loc.line)
        t.Interproc.Summary.uninit_flows)

let all = [ ip1 ]
