(** Rule registry, whole-project runner, and deviation records. *)

(** The C-language rules (four waves, 59 rules). *)
val c_rules : Rule.t list

(** The candidate MISRA-CUDA extension (6 rules) — the subset Observation
    3 says does not exist for GPU code. *)
val cuda_rules : Rule.t list

(** Flow-sensitive extended rules (DF-1 dead store, DF-2 propagated
    constant condition) built on the dataflow engine. *)
val dataflow_rules : Rule.t list

val all_rules : Rule.t list
val find_rule : string -> Rule.t option

(** A documented deviation — the mechanism MISRA compliance uses: a rule
    may be violated up to [max_instances] times (unbounded when [None])
    given a recorded justification.  Deviations of [Mandatory] rules are
    rejected. *)
type deviation = {
  dev_rule : string;
  justification : string;
  max_instances : int option;
}

type deviation_outcome = {
  deviation : deviation;
  suppressed : int;
  residual : int;  (** violations beyond [max_instances] *)
  rejected : bool;  (** the deviation targeted a mandatory rule *)
}

type report = {
  per_rule : (Rule.t * Rule.violation list) list;  (** after deviations *)
  total_violations : int;
  rules_violated : int;
  rules_checked : int;
  deviations : deviation_outcome list;
}

(** Run the rules over a context.  [cache_key], when the global artifact
    cache is enabled, keys each rule's stored violation list (rule id +
    the caller's content key); [run_project] derives it from the whole
    source tree. *)
val run :
  ?rules:Rule.t list ->
  ?deviations:deviation list ->
  ?cache_key:string ->
  Rule.context ->
  report

val run_project : ?rules:Rule.t list -> Cfront.Project.parsed -> report

(** Violation counts per category. *)
val by_category : report -> (Rule.category * int) list

(** Rules with zero (post-deviation) violations / rules checked. *)
val rule_compliance : report -> float

val render_summary : report -> string
