(** Control-flow rules (MISRA C:2012 sections 14-16). *)

open Cfront

let each_func (ctx : Rule.context) f = List.concat_map f ctx.Rule.functions

let each_body fn k =
  match fn.Ast.f_body with None -> [] | Some body -> k body

(* 15.1: the goto statement should not be used. *)
let r15_1 =
  Rule.make ~id:"15.1" ~title:"goto shall not be used" ~category:Rule.Advisory
    (fun ctx ->
      each_func ctx (fun fn ->
          each_body fn (fun body ->
              let acc = ref [] in
              Ast.iter_stmts
                (fun s ->
                  match s.Ast.s with
                  | Ast.Sgoto label ->
                    acc :=
                      Rule.v ~rule_id:"15.1" ~loc:s.Ast.sloc "goto %s in %s" label
                        (Ast.qualified_name fn)
                      :: !acc
                  | _ -> ())
                body;
              List.rev !acc)))

(* 15.2: goto shall jump to a label declared later in the same function. *)
let r15_2 =
  Rule.make ~id:"15.2" ~title:"goto shall jump forward only" ~category:Rule.Required
    (fun ctx ->
      each_func ctx (fun fn ->
          each_body fn (fun body ->
              let labels = Hashtbl.create 4 in
              Ast.iter_stmts
                (fun s ->
                  match s.Ast.s with
                  | Ast.Slabel (l, _) -> Hashtbl.replace labels l s.Ast.sloc.Loc.line
                  | _ -> ())
                body;
              let acc = ref [] in
              Ast.iter_stmts
                (fun s ->
                  match s.Ast.s with
                  | Ast.Sgoto l ->
                    (match Hashtbl.find_opt labels l with
                     | Some line when line < s.Ast.sloc.Loc.line ->
                       acc :=
                         Rule.v ~rule_id:"15.2" ~loc:s.Ast.sloc
                           "backward goto %s in %s" l (Ast.qualified_name fn)
                         :: !acc
                     | _ -> ())
                  | _ -> ())
                body;
              List.rev !acc)))

(* 15.4: there should be at most one break or goto used to terminate a loop. *)
let r15_4 =
  Rule.make ~id:"15.4" ~title:"at most one break per loop" ~category:Rule.Advisory
    (fun ctx ->
      each_func ctx (fun fn ->
          each_body fn (fun body ->
              let acc = ref [] in
              (* count breaks directly inside each loop body, not nested in
                 an inner loop or switch *)
              let rec breaks_in s =
                match s.Ast.s with
                | Ast.Sbreak -> 1
                | Ast.Sblock ss -> Util.Stats.sum_int (List.map breaks_in ss)
                | Ast.Sif { then_; else_; _ } ->
                  breaks_in then_ + Option.fold ~none:0 ~some:breaks_in else_
                | Ast.Slabel (_, inner) -> breaks_in inner
                | Ast.Stry { body; catches } ->
                  breaks_in body
                  + Util.Stats.sum_int (List.map (fun (_, s) -> breaks_in s) catches)
                | _ -> 0
              in
              Ast.iter_stmts
                (fun s ->
                  match s.Ast.s with
                  | Ast.Swhile (_, b) | Ast.Sdo_while (b, _) | Ast.Sfor { body = b; _ } ->
                    if breaks_in b > 1 then
                      acc :=
                        Rule.v ~rule_id:"15.4" ~loc:s.Ast.sloc
                          "%d break statements terminate one loop in %s"
                          (breaks_in b) (Ast.qualified_name fn)
                        :: !acc
                  | _ -> ())
                body;
              List.rev !acc)))

(* 15.5: a function should have a single point of exit at the end. *)
let r15_5 =
  Rule.make ~id:"15.5" ~title:"single point of exit" ~category:Rule.Advisory
    (fun ctx ->
      List.filter_map
        (fun fn ->
          match Metrics.Func_shape.of_func fn with
          | Some shape when shape.Metrics.Func_shape.multi_exit ->
            Some
              (Rule.v ~rule_id:"15.5" ~loc:fn.Ast.f_loc
                 "%s has %d return statements" (Ast.qualified_name fn)
                 shape.Metrics.Func_shape.returns)
          | _ -> None)
        ctx.Rule.functions)

(* 15.6: the body of an iteration/selection statement shall be compound. *)
let r15_6 =
  Rule.make ~id:"15.6" ~title:"loop/if bodies shall be compound statements"
    ~category:Rule.Required (fun ctx ->
      each_func ctx (fun fn ->
          each_body fn (fun body ->
              let acc = ref [] in
              let is_block s = match s.Ast.s with Ast.Sblock _ -> true | _ -> false in
              let flag loc what =
                acc := Rule.v ~rule_id:"15.6" ~loc "%s body is not a compound statement in %s"
                    what (Ast.qualified_name fn) :: !acc
              in
              Ast.iter_stmts
                (fun s ->
                  match s.Ast.s with
                  | Ast.Sif { then_; else_; _ } ->
                    if not (is_block then_) then flag then_.Ast.sloc "if";
                    (match else_ with
                     | Some ({ s = Ast.Sif _; _ }) -> ()  (* else-if chain is fine *)
                     | Some e when not (is_block e) -> flag e.Ast.sloc "else"
                     | _ -> ())
                  | Ast.Swhile (_, b) -> if not (is_block b) then flag b.Ast.sloc "while"
                  | Ast.Sdo_while (b, _) -> if not (is_block b) then flag b.Ast.sloc "do"
                  | Ast.Sfor { body = b; _ } -> if not (is_block b) then flag b.Ast.sloc "for"
                  | _ -> ())
                body;
              List.rev !acc)))

(* 15.7: all if...else if constructs shall be terminated with an else. *)
let r15_7 =
  Rule.make ~id:"15.7" ~title:"if-else-if chains shall end with else"
    ~category:Rule.Required (fun ctx ->
      each_func ctx (fun fn ->
          each_body fn (fun body ->
              let acc = ref [] in
              Ast.iter_stmts
                (fun s ->
                  match s.Ast.s with
                  | Ast.Sif { else_ = Some { s = Ast.Sif { else_ = None; _ }; sloc; _ }; _ } ->
                    acc :=
                      Rule.v ~rule_id:"15.7" ~loc:sloc
                        "if-else-if without final else in %s" (Ast.qualified_name fn)
                      :: !acc
                  | _ -> ())
                body;
              List.rev !acc)))

(* 16.4: every switch statement shall have a default label. *)
let r16_4 =
  Rule.make ~id:"16.4" ~title:"every switch shall have a default"
    ~category:Rule.Required (fun ctx ->
      each_func ctx (fun fn ->
          each_body fn (fun body ->
              let acc = ref [] in
              Ast.iter_stmts
                (fun s ->
                  match s.Ast.s with
                  | Ast.Sswitch (_, sw_body) ->
                    let has_default = ref false in
                    Ast.iter_stmts
                      (fun t -> match t.Ast.s with Ast.Sdefault -> has_default := true | _ -> ())
                      sw_body;
                    if not !has_default then
                      acc :=
                        Rule.v ~rule_id:"16.4" ~loc:s.Ast.sloc
                          "switch without default in %s" (Ast.qualified_name fn)
                        :: !acc
                  | _ -> ())
                body;
              List.rev !acc)))

(* 16.6: every switch shall have at least two switch-clauses. *)
let r16_6 =
  Rule.make ~id:"16.6" ~title:"switch shall have at least two clauses"
    ~category:Rule.Required (fun ctx ->
      each_func ctx (fun fn ->
          each_body fn (fun body ->
              let acc = ref [] in
              Ast.iter_stmts
                (fun s ->
                  match s.Ast.s with
                  | Ast.Sswitch (_, sw_body) ->
                    let clauses = ref 0 in
                    Ast.iter_stmts
                      (fun t ->
                        match t.Ast.s with
                        | Ast.Scase _ | Ast.Sdefault -> incr clauses
                        | _ -> ())
                      sw_body;
                    if !clauses < 2 then
                      acc :=
                        Rule.v ~rule_id:"16.6" ~loc:s.Ast.sloc
                          "switch with %d clause(s) in %s" !clauses
                          (Ast.qualified_name fn)
                        :: !acc
                  | _ -> ())
                body;
              List.rev !acc)))

(* 16.3: an unconditional break shall terminate every switch-clause
   (fall-through detection). *)
let r16_3 =
  Rule.make ~id:"16.3" ~title:"every switch clause shall end with break"
    ~category:Rule.Required (fun ctx ->
      each_func ctx (fun fn ->
          each_body fn (fun body ->
              let acc = ref [] in
              Ast.iter_stmts
                (fun s ->
                  match s.Ast.s with
                  | Ast.Sswitch (_, { s = Ast.Sblock stmts; _ }) ->
                    (* scan clause boundaries: a case/default label reached
                       while the previous clause has statements but no
                       terminator is a fall-through *)
                    let in_clause = ref false in
                    let clause_terminated = ref true in
                    let clause_has_code = ref false in
                    List.iter
                      (fun t ->
                        match t.Ast.s with
                        | Ast.Scase _ | Ast.Sdefault ->
                          if !in_clause && !clause_has_code && not !clause_terminated then
                            acc :=
                              Rule.v ~rule_id:"16.3" ~loc:t.Ast.sloc
                                "switch clause falls through in %s"
                                (Ast.qualified_name fn)
                              :: !acc;
                          in_clause := true;
                          clause_terminated := false;
                          clause_has_code := false
                        | Ast.Sbreak | Ast.Sreturn _ | Ast.Sgoto _ | Ast.Scontinue ->
                          clause_terminated := true
                        | _ ->
                          clause_has_code := true;
                          (* a block ending in break also terminates *)
                          let rec ends_in_jump st =
                            match st.Ast.s with
                            | Ast.Sbreak | Ast.Sreturn _ | Ast.Sgoto _ | Ast.Scontinue -> true
                            | Ast.Sblock ss ->
                              (match List.rev ss with
                               | last :: _ -> ends_in_jump last
                               | [] -> false)
                            | _ -> false
                          in
                          if ends_in_jump t then clause_terminated := true)
                      stmts
                  | _ -> ())
                body;
              List.rev !acc)))

(* 14.3: controlling expressions shall not be invariant. *)
let r14_3 =
  Rule.make ~id:"14.3" ~title:"controlling expressions shall not be invariant"
    ~category:Rule.Required (fun ctx ->
      each_func ctx (fun fn ->
          each_body fn (fun body ->
              let acc = ref [] in
              let is_const_expr e =
                match e.Ast.e with
                | Ast.Int_const _ | Ast.Bool_const _ | Ast.Float_const _ -> true
                | _ -> false
              in
              Ast.iter_stmts
                (fun s ->
                  match s.Ast.s with
                  | Ast.Sif { cond; _ } when is_const_expr cond ->
                    acc :=
                      Rule.v ~rule_id:"14.3" ~loc:s.Ast.sloc
                        "constant if-condition in %s" (Ast.qualified_name fn)
                      :: !acc
                  | Ast.Sdo_while (_, c) when is_const_expr c ->
                    (match c.Ast.e with
                     | Ast.Int_const 0L | Ast.Bool_const false -> ()  (* do {...} while(0) idiom *)
                     | _ ->
                       acc :=
                         Rule.v ~rule_id:"14.3" ~loc:s.Ast.sloc
                           "constant do-while condition in %s" (Ast.qualified_name fn)
                         :: !acc)
                  | _ -> ())
                body;
              List.rev !acc)))

(* 14.1: loop counters shall not have floating type. *)
let r14_1 =
  Rule.make ~id:"14.1" ~title:"no floating-point loop counters"
    ~category:Rule.Required (fun ctx ->
      each_func ctx (fun fn ->
          each_body fn (fun body ->
              let acc = ref [] in
              Ast.iter_stmts
                (fun s ->
                  match s.Ast.s with
                  | Ast.Sfor { init = Ast.Fi_decl ds; _ } ->
                    List.iter
                      (fun (d : Ast.var_decl) ->
                        match d.Ast.v_type with
                        | Ast.Tfloat | Ast.Tdouble ->
                          acc :=
                            Rule.v ~rule_id:"14.1" ~loc:d.Ast.v_loc
                              "float loop counter %s in %s" d.Ast.v_name
                              (Ast.qualified_name fn)
                            :: !acc
                        | _ -> ())
                      ds
                  | _ -> ())
                body;
              List.rev !acc)))

(* 13.4: the result of an assignment operator should not be used
   (assignment inside a condition). *)
let r13_4 =
  Rule.make ~id:"13.4" ~title:"no assignment in controlling expressions"
    ~category:Rule.Advisory (fun ctx ->
      each_func ctx (fun fn ->
          each_body fn (fun body ->
              let acc = ref [] in
              let has_assign e =
                let found = ref false in
                Ast.iter_exprs_of_expr
                  (fun x -> match x.Ast.e with Ast.Assign _ -> found := true | _ -> ())
                  e;
                !found
              in
              Ast.iter_stmts
                (fun s ->
                  let flag loc =
                    acc :=
                      Rule.v ~rule_id:"13.4" ~loc "assignment used as condition in %s"
                        (Ast.qualified_name fn)
                      :: !acc
                  in
                  match s.Ast.s with
                  | Ast.Sif { cond; _ } when has_assign cond -> flag s.Ast.sloc
                  | Ast.Swhile (c, _) when has_assign c -> flag s.Ast.sloc
                  | Ast.Sdo_while (_, c) when has_assign c -> flag s.Ast.sloc
                  | _ -> ())
                body;
              List.rev !acc)))

(* 12.3: the comma operator should not be used. *)
let r12_3 =
  Rule.make ~id:"12.3" ~title:"comma operator shall not be used"
    ~category:Rule.Advisory (fun ctx ->
      each_func ctx (fun fn ->
          let acc = ref [] in
          Ast.iter_exprs_of_func
            (fun e ->
              match e.Ast.e with
              | Ast.Binary (Ast.Comma, _, _) ->
                acc :=
                  Rule.v ~rule_id:"12.3" ~loc:e.Ast.eloc "comma operator in %s"
                    (Ast.qualified_name fn)
                  :: !acc
              | _ -> ())
            fn;
          List.rev !acc))

(* 2.1: a project shall not contain unreachable code.  Flow-sensitive
   since the dataflow engine landed: the function body is lowered to a
   CFG and any region of blocks not reachable from the entry is flagged
   once, at its first statement.  This sees through arbitrary control
   flow — code after a branch whose arms both return, statements between
   an unconditional jump and the next label, dead switch clauses —
   while code reached only via a goto stays clean. *)
let r2_1 =
  Rule.make ~id:"2.1" ~title:"no unreachable code" ~category:Rule.Required
    (fun ctx ->
      each_func ctx (fun fn ->
          each_body fn (fun _ ->
              let cfg = Dataflow.Cfg.of_func fn in
              List.map
                (fun loc ->
                  Rule.v ~rule_id:"2.1" ~loc "unreachable statement in %s"
                    (Ast.qualified_name fn))
                (Dataflow.Analyses.unreachable_regions cfg))))

let all = [ r2_1; r12_3; r13_4; r14_1; r14_3; r15_1; r15_2; r15_4; r15_5; r15_6; r15_7; r16_3; r16_4; r16_6 ]
