(** Function- and memory-related rules (MISRA C:2012 sections 17-21). *)

open Cfront

let each_func (ctx : Rule.context) f = List.concat_map f ctx.Rule.functions

(* 17.1: the features of <stdarg.h> shall not be used. *)
let r17_1 =
  Rule.make ~id:"17.1" ~title:"no variadic functions" ~category:Rule.Required
    (fun ctx ->
      List.concat_map
        (fun (fn : Ast.func) ->
          let variadic =
            List.exists (fun p -> p.Ast.p_name = "...") fn.Ast.f_params
          in
          let uses_va =
            let found = ref false in
            Ast.iter_exprs_of_func
              (fun e ->
                match e.Ast.e with
                | Ast.Call ({ e = Ast.Id ("va_start" | "va_arg" | "va_end"); _ }, _) ->
                  found := true
                | _ -> ())
              fn;
            !found
          in
          if variadic || uses_va then
            [ Rule.v ~rule_id:"17.1" ~loc:fn.Ast.f_loc "variadic function %s"
                (Ast.qualified_name fn) ]
          else [])
        ctx.Rule.functions)

(* 17.2: functions shall not call themselves, directly or indirectly. *)
let r17_2 =
  Rule.make ~id:"17.2" ~title:"no recursion" ~category:Rule.Required (fun ctx ->
      let recursive = Callgraph.recursive_functions ctx.Rule.callgraph in
      let cycles = Callgraph.recursion_cycles ctx.Rule.callgraph in
      let cycle_of q = List.find_opt (fun c -> List.mem q c) cycles in
      let witness q =
        match cycle_of q with
        | Some [ _ ] | None -> "calls itself"
        | Some cycle ->
          Printf.sprintf "cycle: %s -> %s" (String.concat " -> " cycle)
            (List.hd cycle)
      in
      List.filter_map
        (fun (fn : Ast.func) ->
          let q = Ast.qualified_name fn in
          if List.mem q recursive then
            let steps =
              match cycle_of q with
              | Some (_ :: _ :: _ as cycle) ->
                List.mapi
                  (fun i callee ->
                    Provenance.step "call" "%s calls %s"
                      (List.nth cycle i) callee)
                  (List.tl cycle @ [ List.hd cycle ])
              | _ -> [ Provenance.step "call" "%s calls itself directly" q ]
            in
            Some
              (Rule.v ~witness:steps ~rule_id:"17.2" ~loc:fn.Ast.f_loc
                 "%s is recursive (%s)" q (witness q))
          else None)
        ctx.Rule.functions)

(* 17.7: the value returned by a non-void function shall be used. *)
let r17_7 =
  Rule.make ~id:"17.7" ~title:"return values shall be used" ~category:Rule.Required
    (fun ctx ->
      List.map
        (fun (caller, callee, loc) ->
          Rule.v ~rule_id:"17.7" ~loc "%s discards return value of %s" caller callee)
        (Metrics.Defensive.ignored_returns ~funcs:ctx.Rule.functions ctx.Rule.functions))

(* 17.8: a function parameter should not be modified. *)
let r17_8 =
  Rule.make ~id:"17.8" ~title:"function parameters shall not be modified"
    ~category:Rule.Advisory (fun ctx ->
      each_func ctx (fun fn ->
          let params = List.map (fun p -> p.Ast.p_name) fn.Ast.f_params in
          let acc = ref [] in
          Ast.iter_exprs_of_func
            (fun e ->
              match e.Ast.e with
              | Ast.Assign (_, { e = Ast.Id name; _ }, _)
              | Ast.Unary ((Ast.Pre_inc | Ast.Pre_dec), { e = Ast.Id name; _ })
              | Ast.Postfix (_, { e = Ast.Id name; _ })
                when List.mem name params ->
                acc :=
                  Rule.v ~rule_id:"17.8" ~loc:e.Ast.eloc
                    "parameter %s modified in %s" name (Ast.qualified_name fn)
                  :: !acc
              | _ -> ())
            fn;
          List.rev !acc))

(* 21.3: the memory allocation functions of <stdlib.h> shall not be used. *)
let r21_3 =
  Rule.make ~id:"21.3" ~title:"no dynamic heap allocation" ~category:Rule.Required
    (fun ctx ->
      List.map
        (fun (a : Metrics.Pointers.dyn_alloc) ->
          Rule.v ~rule_id:"21.3" ~loc:a.Metrics.Pointers.loc "%s used in %s"
            a.Metrics.Pointers.site a.Metrics.Pointers.in_function)
        (Metrics.Pointers.dyn_allocs_of_functions ctx.Rule.functions))

(* 21.6: the standard I/O functions shall not be used. *)
let r21_6 =
  Rule.make ~id:"21.6" ~title:"no standard I/O in production code"
    ~category:Rule.Required (fun ctx ->
      let stdio = [ "printf"; "fprintf"; "sprintf"; "scanf"; "fscanf"; "gets"; "puts" ] in
      each_func ctx (fun fn ->
          let acc = ref [] in
          Ast.iter_exprs_of_func
            (fun e ->
              match e.Ast.e with
              | Ast.Call ({ e = Ast.Id name; _ }, _) when List.mem name stdio ->
                acc :=
                  Rule.v ~rule_id:"21.6" ~loc:e.Ast.eloc "%s called in %s" name
                    (Ast.qualified_name fn)
                  :: !acc
              | _ -> ())
            fn;
          List.rev !acc))

(* 21.8: the termination functions of <stdlib.h> shall not be used. *)
let r21_8 =
  Rule.make ~id:"21.8" ~title:"no abort/exit/system" ~category:Rule.Required
    (fun ctx ->
      let banned = [ "abort"; "exit"; "_Exit"; "quick_exit"; "system" ] in
      each_func ctx (fun fn ->
          let acc = ref [] in
          Ast.iter_exprs_of_func
            (fun e ->
              match e.Ast.e with
              | Ast.Call ({ e = Ast.Id name; _ }, _) when List.mem name banned ->
                acc :=
                  Rule.v ~rule_id:"21.8" ~loc:e.Ast.eloc "%s called in %s" name
                    (Ast.qualified_name fn)
                  :: !acc
              | _ -> ())
            fn;
          List.rev !acc))

(* 8.10: an inline function shall also be static. *)
let r8_10 =
  Rule.make ~id:"8.10" ~title:"inline functions shall be static"
    ~category:Rule.Required (fun ctx ->
      List.filter_map
        (fun (fn : Ast.func) ->
          if List.mem Ast.Q_inline fn.Ast.f_quals
             && not (List.mem Ast.Q_static fn.Ast.f_quals)
          then
            Some
              (Rule.v ~rule_id:"8.10" ~loc:fn.Ast.f_loc
                 "inline function %s is not static" (Ast.qualified_name fn))
          else None)
        ctx.Rule.functions)

(* 2.7: there should be no unused parameters. *)
let r2_7 =
  Rule.make ~id:"2.7" ~title:"no unused parameters" ~category:Rule.Advisory
    (fun ctx ->
      each_func ctx (fun fn ->
          match fn.Ast.f_body with
          | None -> []
          | Some _ ->
            let used = Hashtbl.create 8 in
            Ast.iter_exprs_of_func
              (fun e ->
                match e.Ast.e with
                | Ast.Id name -> Hashtbl.replace used name ()
                | _ -> ())
              fn;
            List.filter_map
              (fun (p : Ast.param) ->
                if p.Ast.p_name <> "" && p.Ast.p_name <> "..."
                   && not (Hashtbl.mem used p.Ast.p_name)
                then
                  Some
                    (Rule.v ~rule_id:"2.7" ~loc:fn.Ast.f_loc
                       "unused parameter %s in %s" p.Ast.p_name
                       (Ast.qualified_name fn))
                else None)
              fn.Ast.f_params))

(* 8.9: an object should be declared at block scope if only used in one
   function. *)
let r8_9 =
  Rule.make ~id:"8.9" ~title:"globals used by a single function shall be local"
    ~category:Rule.Advisory (fun ctx ->
      let globals = Metrics.Globals.of_files ctx.Rule.files in
      let users = Hashtbl.create 64 in
      List.iter
        (fun (fn : Ast.func) ->
          Ast.iter_exprs_of_func
            (fun e ->
              match e.Ast.e with
              | Ast.Id name ->
                let cur = Option.value ~default:[] (Hashtbl.find_opt users name) in
                let q = Ast.qualified_name fn in
                if not (List.mem q cur) then Hashtbl.replace users name (q :: cur)
              | _ -> ())
            fn)
        ctx.Rule.functions;
      List.filter_map
        (fun (g : Metrics.Globals.record) ->
          match Hashtbl.find_opt users g.Metrics.Globals.name with
          | Some [ only ] ->
            Some
              (Rule.v ~rule_id:"8.9" ~loc:g.Metrics.Globals.loc
                 "global %s used only by %s" g.Metrics.Globals.name only)
          | _ -> None)
        globals)

(* 21.x addition in spirit: uninitialized reads (9.1 "the value of an
   object with automatic storage duration shall not be read before it has
   been set"). *)
let r9_1 =
  Rule.make ~id:"9.1" ~title:"no read of uninitialized automatic objects"
    ~category:Rule.Mandatory (fun ctx ->
      List.map
        (fun (f : Metrics.Uninit.finding) ->
          let witness =
            [
              Provenance.step ~loc:f.Metrics.Uninit.decl_loc "decl"
                "%s declared without an initializer in %s" f.Metrics.Uninit.var
                f.Metrics.Uninit.in_function;
              Provenance.step ~loc:f.Metrics.Uninit.use_loc "use"
                "earliest read of %s with no assignment on some path"
                f.Metrics.Uninit.var;
            ]
          in
          Rule.v ~witness ~rule_id:"9.1" ~loc:f.Metrics.Uninit.use_loc
            "%s may be read uninitialized in %s" f.Metrics.Uninit.var
            f.Metrics.Uninit.in_function)
        (Metrics.Uninit.of_functions ctx.Rule.functions))

let all = [ r2_7; r8_9; r8_10; r9_1; r17_1; r17_2; r17_7; r17_8; r21_3; r21_6; r21_8 ]
