(** Log-bucketed mergeable histogram.  See histogram.mli. *)

(* Buckets are logarithmic with [sub] sub-buckets per octave: bucket [i]
   covers [2^(i/sub), 2^((i+1)/sub)), about 19% relative resolution at
   sub = 4.  The bucket index of a sample is a pure function of the
   value, so the multiset of bucket counts is independent of observation
   and merge order — the merge proof obligation (commutativity +
   associativity) reduces to integer addition per key, exactly like
   [Coverage.Collector.merge]. *)

let sub = 4

type t = {
  mutable n : int;
  mutable sum : float;
  mutable minv : float;  (** +inf when empty *)
  mutable maxv : float;  (** -inf when empty *)
  mutable zeros : int;  (** samples <= 0, kept out of the log buckets *)
  buckets : (int, int) Hashtbl.t;
}

let create () =
  { n = 0; sum = 0.0; minv = infinity; maxv = neg_infinity; zeros = 0;
    buckets = Hashtbl.create 16 }

let copy t =
  { n = t.n; sum = t.sum; minv = t.minv; maxv = t.maxv; zeros = t.zeros;
    buckets = Hashtbl.copy t.buckets }

let bucket_of_value v =
  (* v > 0 *)
  int_of_float (Float.floor (float_of_int sub *. Float.log2 v))

let bucket_bounds i =
  ( Float.pow 2.0 (float_of_int i /. float_of_int sub),
    Float.pow 2.0 (float_of_int (i + 1) /. float_of_int sub) )

let observe t v =
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  if v < t.minv then t.minv <- v;
  if v > t.maxv then t.maxv <- v;
  if v > 0.0 then begin
    let i = bucket_of_value v in
    Hashtbl.replace t.buckets i
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.buckets i))
  end
  else t.zeros <- t.zeros + 1

let count t = t.n
let zeros t = t.zeros
let sum t = t.sum
let min_value t = if t.n = 0 then 0.0 else t.minv
let max_value t = if t.n = 0 then 0.0 else t.maxv
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let buckets t =
  List.sort compare (Hashtbl.fold (fun i c acc -> (i, c) :: acc) t.buckets [])

let merge_into ~into src =
  into.n <- into.n + src.n;
  into.sum <- into.sum +. src.sum;
  if src.minv < into.minv then into.minv <- src.minv;
  if src.maxv > into.maxv then into.maxv <- src.maxv;
  into.zeros <- into.zeros + src.zeros;
  Hashtbl.iter
    (fun i c ->
      Hashtbl.replace into.buckets i
        (c + Option.value ~default:0 (Hashtbl.find_opt into.buckets i)))
    src.buckets

let merge ts =
  let into = create () in
  List.iter (fun t -> merge_into ~into t) ts;
  into

let clamp t v = Float.max t.minv (Float.min t.maxv v)

(* Quantile estimate from the buckets: walk the cumulative counts (the
   zero bucket first, then log buckets in index order) until the rank is
   reached, and report the geometric midpoint of the winning bucket
   clamped to the observed [min, max].  Monotone in [q] by construction:
   a larger rank can only land in the same or a later bucket, and both
   the representative values and the clamp are monotone. *)
let quantile t q =
  if t.n = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int t.n))) in
    if rank <= t.zeros then clamp t 0.0
    else begin
      let rec walk cum = function
        | [] -> t.maxv
        | (i, c) :: rest ->
          let cum = cum + c in
          if rank <= cum then begin
            let lo, hi = bucket_bounds i in
            clamp t (Float.sqrt (lo *. hi))
          end
          else walk cum rest
      in
      walk t.zeros (buckets t)
    end
  end

let p50 t = quantile t 0.50
let p90 t = quantile t 0.90
let p99 t = quantile t 0.99

(* Observationally-equal check used by the property tests: same counts,
   same extrema, same bucket contents.  [sum] is compared by the caller
   when sample values make float addition exact (integer-valued
   samples); it is excluded here because float addition is not
   associative in general. *)
let equal a b =
  a.n = b.n && a.zeros = b.zeros
  && (a.n = 0 || (a.minv = b.minv && a.maxv = b.maxv))
  && buckets a = buckets b
