(** Leveled stderr logging for the CLI and bench harness.

    The level defaults to [Warn] and can be raised either
    programmatically (the CLI's [--verbose]) or through the
    [ADCHECK_LOG] environment variable ([error], [warn], [info],
    [debug]). *)

type level = Error | Warn | Info | Debug

val level_of_string : string -> level option
val level_name : level -> string

val set_level : level -> unit
val level : unit -> level

(** [true] when a message at [level] would be printed. *)
val logs : level -> bool

val error : ('a, unit, string, unit) format4 -> 'a
val warn : ('a, unit, string, unit) format4 -> 'a
val info : ('a, unit, string, unit) format4 -> 'a
val debug : ('a, unit, string, unit) format4 -> 'a
