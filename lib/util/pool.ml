(** Fixed-size domain pool.  See pool.mli. *)

(* ------------------------------------------------------------------ *)
(* Metrics plumbing                                                    *)
(*                                                                     *)
(* The pool is a util-layer module, so it cannot depend on the         *)
(* telemetry sink; instead it keeps its own counters and histograms    *)
(* and lets the telemetry layer install a clock (microseconds) and     *)
(* flip the recording gate.  Everything is off by default: with the    *)
(* gate closed, submit/worker paths pay one boolean test and no clock  *)
(* reads, so the jobs=1 oracle (which never builds a pool at all) is   *)
(* unperturbed.                                                        *)
(* ------------------------------------------------------------------ *)

let clock : (unit -> float) ref = ref (fun () -> 0.0)
let set_clock f = clock := f

let metrics_enabled = ref false
let set_metrics b = metrics_enabled := b

type worker_stat = {
  w_id : int;
  mutable w_tasks : int;
  mutable w_busy_us : float;
}

(* The executing worker's stat record; written only by that worker. *)
let worker_stat_key : worker_stat option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

type pool_metrics = {
  pm_submitted : int Atomic.t;
  pm_completed : int Atomic.t;
  pm_inline : int Atomic.t;  (** nested submits run inline on a worker *)
  pm_workers : worker_stat array;
  pm_m : Mutex.t;  (** guards the two histograms *)
  pm_wait : Histogram.t;  (** queue wait: enqueue -> dequeue, us *)
  pm_run : Histogram.t;  (** task latency: dequeue -> done, us *)
  pm_since_us : float;  (** clock reading at pool creation *)
}

(* ------------------------------------------------------------------ *)
(* Pool state                                                          *)
(* ------------------------------------------------------------------ *)

type t = {
  n_jobs : int;
  queue : (unit -> unit) Queue.t;
  m : Mutex.t;
  wake : Condition.t;  (** queue became non-empty or the pool closed *)
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  pm : pool_metrics;
}

let jobs t = t.n_jobs

(* Marks the current domain as a pool worker; submit consults it for the
   nested-submit deadlock guard. *)
let worker_flag = Domain.DLS.new_key (fun () -> false)

let inside_worker () = Domain.DLS.get worker_flag

let worker_loop pool i () =
  Domain.DLS.set worker_flag true;
  Domain.DLS.set worker_stat_key (Some pool.pm.pm_workers.(i));
  let rec next () =
    Mutex.lock pool.m;
    while Queue.is_empty pool.queue && not pool.closed do
      Condition.wait pool.wake pool.m
    done;
    match Queue.take_opt pool.queue with
    | None ->
      (* closed and drained *)
      Mutex.unlock pool.m
    | Some job ->
      Mutex.unlock pool.m;
      job ();
      next ()
  in
  next ()

let clamp_jobs j = Stdlib.max 1 (Stdlib.min 128 j)

let create ~jobs =
  let n_jobs = clamp_jobs jobs in
  let pm =
    { pm_submitted = Atomic.make 0; pm_completed = Atomic.make 0;
      pm_inline = Atomic.make 0;
      pm_workers =
        Array.init n_jobs (fun i -> { w_id = i; w_tasks = 0; w_busy_us = 0.0 });
      pm_m = Mutex.create (); pm_wait = Histogram.create ();
      pm_run = Histogram.create (); pm_since_us = !clock () }
  in
  let pool =
    { n_jobs; queue = Queue.create (); m = Mutex.create ();
      wake = Condition.create (); closed = false; workers = []; pm }
  in
  pool.workers <- List.init n_jobs (fun i -> Domain.spawn (worker_loop pool i));
  pool

let shutdown pool =
  let workers =
    Mutex.lock pool.m;
    if pool.closed then begin
      Mutex.unlock pool.m;
      []
    end
    else begin
      pool.closed <- true;
      Condition.broadcast pool.wake;
      let ws = pool.workers in
      pool.workers <- [];
      Mutex.unlock pool.m;
      ws
    end
  in
  List.iter Domain.join workers

(* ------------------------------------------------------------------ *)
(* Futures                                                             *)
(* ------------------------------------------------------------------ *)

type 'a outcome =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable outcome : 'a outcome;
}

let run_into fut f =
  let outcome =
    match f () with
    | v -> Done v
    | exception e -> Failed (e, Printexc.get_raw_backtrace ())
  in
  Mutex.lock fut.fm;
  fut.outcome <- outcome;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

(* All recording happens inside the task, *before* [run_into] resolves
   the future: a caller that awaits every future and then snapshots
   [stats] is guaranteed submitted = completed (no trailing updates race
   with the export). *)
let instrumented pm ~enq_us f () =
  let t0 = !clock () in
  Fun.protect f ~finally:(fun () ->
      let dt = !clock () -. t0 in
      (match Domain.DLS.get worker_stat_key with
       | Some w ->
         w.w_tasks <- w.w_tasks + 1;
         w.w_busy_us <- w.w_busy_us +. dt
       | None -> ());
      Atomic.incr pm.pm_completed;
      Mutex.lock pm.pm_m;
      (match enq_us with
       | Some enq -> Histogram.observe pm.pm_wait (Stdlib.max 0.0 (t0 -. enq))
       | None -> ());
      Histogram.observe pm.pm_run dt;
      Mutex.unlock pm.pm_m)

let submit pool f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); outcome = Pending } in
  if inside_worker () then begin
    if !metrics_enabled then begin
      let pm = pool.pm in
      Atomic.incr pm.pm_submitted;
      Atomic.incr pm.pm_inline;
      run_into fut (instrumented pm ~enq_us:None f)
    end
    else run_into fut f
  end
  else begin
    Mutex.lock pool.m;
    if pool.closed then begin
      Mutex.unlock pool.m;
      invalid_arg "Util.Pool.submit: pool is shut down"
    end;
    let job =
      if !metrics_enabled then begin
        let pm = pool.pm in
        Atomic.incr pm.pm_submitted;
        let enq_us = !clock () in
        fun () -> run_into fut (instrumented pm ~enq_us:(Some enq_us) f)
      end
      else fun () -> run_into fut f
    in
    Queue.add job pool.queue;
    Condition.signal pool.wake;
    Mutex.unlock pool.m
  end;
  fut

let await fut =
  Mutex.lock fut.fm;
  let rec wait () =
    match fut.outcome with
    | Pending ->
      Condition.wait fut.fc fut.fm;
      wait ()
    | Done v ->
      Mutex.unlock fut.fm;
      v
    | Failed (e, bt) ->
      Mutex.unlock fut.fm;
      Printexc.raise_with_backtrace e bt
  in
  wait ()

(* Await in submission order: the join point of the fan-out/fan-in
   pattern the pipelined audit uses.  Blocking on an early future while
   later ones complete is fine — their outcomes are retained. *)
let await_all futs = List.map await futs

(* ------------------------------------------------------------------ *)
(* Order-preserving chunked map                                        *)
(* ------------------------------------------------------------------ *)

let chunks_of size xs =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n + 1 >= size then go (List.rev (x :: cur) :: acc) [] 0 rest
      else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 xs

let map_chunked ?chunk_size pool f xs =
  match xs with
  | [] -> []
  | _ ->
    let n = List.length xs in
    let size =
      match chunk_size with
      | Some c -> Stdlib.max 1 c
      | None -> Stdlib.max 1 ((n + (4 * pool.n_jobs) - 1) / (4 * pool.n_jobs))
    in
    let futures =
      List.map (fun chunk -> submit pool (fun () -> List.map f chunk))
        (chunks_of size xs)
    in
    List.concat_map await futures

(* ------------------------------------------------------------------ *)
(* Process-wide default pool                                           *)
(* ------------------------------------------------------------------ *)

let env_default () =
  match Sys.getenv_opt "ADCHECK_JOBS" with
  | Some s -> (match int_of_string_opt (String.trim s) with
               | Some j when j >= 1 -> clamp_jobs j
               | _ -> 1)
  | None -> 1

let default = ref None  (* None until first read; then Some jobs *)
let global_pool = ref None

let default_jobs () =
  match !default with
  | Some j -> j
  | None ->
    let j = env_default () in
    default := Some j;
    j

let drop_global () =
  match !global_pool with
  | None -> ()
  | Some pool ->
    global_pool := None;
    shutdown pool

let set_default_jobs j =
  let j = clamp_jobs j in
  if !default <> Some j then begin
    default := Some j;
    drop_global ()
  end

let () = at_exit drop_global

let global () =
  if default_jobs () <= 1 then None
  else
    match !global_pool with
    | Some pool -> Some pool
    | None ->
      let pool = create ~jobs:(default_jobs ()) in
      global_pool := Some pool;
      Some pool

(* ------------------------------------------------------------------ *)
(* Metrics snapshot                                                    *)
(* ------------------------------------------------------------------ *)

type stats = {
  st_jobs : int;
  st_submitted : int;
  st_completed : int;
  st_inline : int;
  st_workers : (int * int * float) list;  (** (id, tasks, busy_us) *)
  st_queue_wait : Histogram.t;
  st_task_run : Histogram.t;
  st_since_us : float;
}

let stats pool =
  let pm = pool.pm in
  Mutex.lock pm.pm_m;
  let wait = Histogram.copy pm.pm_wait in
  let run = Histogram.copy pm.pm_run in
  Mutex.unlock pm.pm_m;
  {
    st_jobs = pool.n_jobs;
    st_submitted = Atomic.get pm.pm_submitted;
    st_completed = Atomic.get pm.pm_completed;
    st_inline = Atomic.get pm.pm_inline;
    st_workers =
      Array.to_list
        (Array.map (fun w -> (w.w_id, w.w_tasks, w.w_busy_us)) pm.pm_workers);
    st_queue_wait = wait;
    st_task_run = run;
    st_since_us = pm.pm_since_us;
  }

(* Snapshot of the running global pool without creating one: the
   metrics exporter calls this after the run, when forcing a pool into
   existence would fabricate an all-zero record. *)
let global_stats () = Option.map stats !global_pool
