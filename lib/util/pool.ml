(** Fixed-size domain pool.  See pool.mli. *)

(* ------------------------------------------------------------------ *)
(* Pool state                                                          *)
(* ------------------------------------------------------------------ *)

type t = {
  n_jobs : int;
  queue : (unit -> unit) Queue.t;
  m : Mutex.t;
  wake : Condition.t;  (** queue became non-empty or the pool closed *)
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.n_jobs

(* Marks the current domain as a pool worker; submit consults it for the
   nested-submit deadlock guard. *)
let worker_flag = Domain.DLS.new_key (fun () -> false)

let inside_worker () = Domain.DLS.get worker_flag

let worker_loop pool () =
  Domain.DLS.set worker_flag true;
  let rec next () =
    Mutex.lock pool.m;
    while Queue.is_empty pool.queue && not pool.closed do
      Condition.wait pool.wake pool.m
    done;
    match Queue.take_opt pool.queue with
    | None ->
      (* closed and drained *)
      Mutex.unlock pool.m
    | Some job ->
      Mutex.unlock pool.m;
      job ();
      next ()
  in
  next ()

let clamp_jobs j = Stdlib.max 1 (Stdlib.min 128 j)

let create ~jobs =
  let n_jobs = clamp_jobs jobs in
  let pool =
    { n_jobs; queue = Queue.create (); m = Mutex.create ();
      wake = Condition.create (); closed = false; workers = [] }
  in
  pool.workers <- List.init n_jobs (fun _ -> Domain.spawn (worker_loop pool));
  pool

let shutdown pool =
  let workers =
    Mutex.lock pool.m;
    if pool.closed then begin
      Mutex.unlock pool.m;
      []
    end
    else begin
      pool.closed <- true;
      Condition.broadcast pool.wake;
      let ws = pool.workers in
      pool.workers <- [];
      Mutex.unlock pool.m;
      ws
    end
  in
  List.iter Domain.join workers

(* ------------------------------------------------------------------ *)
(* Futures                                                             *)
(* ------------------------------------------------------------------ *)

type 'a outcome =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable outcome : 'a outcome;
}

let run_into fut f =
  let outcome =
    match f () with
    | v -> Done v
    | exception e -> Failed (e, Printexc.get_raw_backtrace ())
  in
  Mutex.lock fut.fm;
  fut.outcome <- outcome;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let submit pool f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); outcome = Pending } in
  if inside_worker () then run_into fut f
  else begin
    Mutex.lock pool.m;
    if pool.closed then begin
      Mutex.unlock pool.m;
      invalid_arg "Util.Pool.submit: pool is shut down"
    end;
    Queue.add (fun () -> run_into fut f) pool.queue;
    Condition.signal pool.wake;
    Mutex.unlock pool.m
  end;
  fut

let await fut =
  Mutex.lock fut.fm;
  let rec wait () =
    match fut.outcome with
    | Pending ->
      Condition.wait fut.fc fut.fm;
      wait ()
    | Done v ->
      Mutex.unlock fut.fm;
      v
    | Failed (e, bt) ->
      Mutex.unlock fut.fm;
      Printexc.raise_with_backtrace e bt
  in
  wait ()

(* Await in submission order: the join point of the fan-out/fan-in
   pattern the pipelined audit uses.  Blocking on an early future while
   later ones complete is fine — their outcomes are retained. *)
let await_all futs = List.map await futs

(* ------------------------------------------------------------------ *)
(* Order-preserving chunked map                                        *)
(* ------------------------------------------------------------------ *)

let chunks_of size xs =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n + 1 >= size then go (List.rev (x :: cur) :: acc) [] 0 rest
      else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 xs

let map_chunked ?chunk_size pool f xs =
  match xs with
  | [] -> []
  | _ ->
    let n = List.length xs in
    let size =
      match chunk_size with
      | Some c -> Stdlib.max 1 c
      | None -> Stdlib.max 1 ((n + (4 * pool.n_jobs) - 1) / (4 * pool.n_jobs))
    in
    let futures =
      List.map (fun chunk -> submit pool (fun () -> List.map f chunk))
        (chunks_of size xs)
    in
    List.concat_map await futures

(* ------------------------------------------------------------------ *)
(* Process-wide default pool                                           *)
(* ------------------------------------------------------------------ *)

let env_default () =
  match Sys.getenv_opt "ADCHECK_JOBS" with
  | Some s -> (match int_of_string_opt (String.trim s) with
               | Some j when j >= 1 -> clamp_jobs j
               | _ -> 1)
  | None -> 1

let default = ref None  (* None until first read; then Some jobs *)
let global_pool = ref None

let default_jobs () =
  match !default with
  | Some j -> j
  | None ->
    let j = env_default () in
    default := Some j;
    j

let drop_global () =
  match !global_pool with
  | None -> ()
  | Some pool ->
    global_pool := None;
    shutdown pool

let set_default_jobs j =
  let j = clamp_jobs j in
  if !default <> Some j then begin
    default := Some j;
    drop_global ()
  end

let () = at_exit drop_global

let global () =
  if default_jobs () <= 1 then None
  else
    match !global_pool with
    | Some pool -> Some pool
    | None ->
      let pool = create ~jobs:(default_jobs ()) in
      global_pool := Some pool;
      Some pool
