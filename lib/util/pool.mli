(** Fixed-size domain pool for CPU-parallel analysis stages.

    A pool owns [jobs] worker domains fed from a shared FIFO queue
    ([Mutex]/[Condition], no dependencies beyond the stdlib).  Work is
    submitted as thunks and collected through futures; {!map_chunked}
    builds the common fan-out/fan-in shape on top and always preserves
    input order, so parallel callers produce byte-identical results to
    the sequential code path.

    Concurrency policy for the analysis pipeline:
    - parallelism is *configuration*, never semantics: every parallel
      call site must have an exact sequential fallback at [jobs = 1]
      (the oracle the differential tests compare against);
    - tasks must not mutate shared state — results are merged on the
      caller in input order (see {!Telemetry.parallel_map} for the
      counter-merging veneer).

    The process-wide default worker count comes from the [ADCHECK_JOBS]
    environment variable and the [--jobs] CLI flag via
    {!set_default_jobs}; the shared pool in {!global} is (re)built
    lazily from that default. *)

type t

(** [create ~jobs] spawns [jobs] worker domains (clamped to [1, 128]). *)
val create : jobs:int -> t

(** Worker count the pool was created with. *)
val jobs : t -> int

(** Signal workers to exit once the queue drains and join them.
    Idempotent.  Submitting to a shut-down pool raises
    [Invalid_argument]. *)
val shutdown : t -> unit

(* ------------------------------------------------------------------ *)
(* Submit / await                                                      *)
(* ------------------------------------------------------------------ *)

type 'a future

(** Enqueue a task.  If called from inside a pool worker the task runs
    inline instead (the nested-submit deadlock guard: a saturated pool
    whose workers block on their own sub-tasks would never drain). *)
val submit : t -> (unit -> 'a) -> 'a future

(** Block until the task finishes.  Re-raises the task's exception (with
    its original backtrace) if it failed. *)
val await : 'a future -> 'a

(** Await every future, returning results in submission order — the
    fan-in half of the future-per-phase pattern (the pipelined audit
    submits independent phases from the main domain and joins here).
    Re-raises the first listed failure. *)
val await_all : 'a future list -> 'a list

(** True while executing on one of the pool's worker domains. *)
val inside_worker : unit -> bool

(* ------------------------------------------------------------------ *)
(* Order-preserving parallel map                                       *)
(* ------------------------------------------------------------------ *)

(** [map_chunked pool f xs] applies [f] to every element of [xs] across
    the pool and returns the results in input order.  Elements are
    grouped into contiguous chunks of [chunk_size] (default: spread over
    [4 * jobs] tasks) so per-task overhead amortizes over tiny work
    items.  The first failing element's exception is re-raised. *)
val map_chunked : ?chunk_size:int -> t -> ('a -> 'b) -> 'a list -> 'b list

(* ------------------------------------------------------------------ *)
(* Process-wide default                                                *)
(* ------------------------------------------------------------------ *)

(** Default worker count: the last {!set_default_jobs}, else
    [ADCHECK_JOBS], else 1 (strictly sequential). *)
val default_jobs : unit -> int

(** Override the default (the [--jobs] flag).  Changing the value
    shuts down the current global pool; the next {!global} rebuilds it. *)
val set_default_jobs : int -> unit

(** The shared pool at the current default, or [None] when the default
    is 1 — callers use [None] to select their exact sequential path. *)
val global : unit -> t option

(* ------------------------------------------------------------------ *)
(* Flight-recorder instrumentation                                     *)
(* ------------------------------------------------------------------ *)

(** Install the microsecond clock the instrumentation reads.  The
    telemetry layer installs the {e wall} clock here — never its
    pluggable tick clock: pool metrics are runtime-tier, and a pool
    clock read on a worker domain under the tick clock would perturb
    the work-tier timed regions running there.  Defaults to a constant
    0. *)
val set_clock : (unit -> float) -> unit

(** Open/close the recording gate.  Closed (the default), submit and
    worker paths pay a single boolean test and make no clock reads —
    the jobs=1 oracle never builds a pool, and a jobs>1 run with the
    gate closed is observationally identical to one without metrics. *)
val set_metrics : bool -> unit

type stats = {
  st_jobs : int;
  st_submitted : int;  (** tasks handed to {!submit} *)
  st_completed : int;
  st_inline : int;  (** nested submits run inline on a worker *)
  st_workers : (int * int * float) list;
      (** per worker domain: (id, tasks run, busy microseconds); idle
          time is [elapsed - busy] at the consumer's choice of horizon *)
  st_queue_wait : Histogram.t;  (** enqueue -> dequeue, microseconds *)
  st_task_run : Histogram.t;  (** dequeue -> completion, microseconds *)
  st_since_us : float;  (** clock reading at pool creation *)
}

(** Snapshot of a pool's counters and latency histograms (histograms
    are copies; safe to read while workers run). *)
val stats : t -> stats

(** [stats] of the running global pool, without creating one. *)
val global_stats : unit -> stats option
