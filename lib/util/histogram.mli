(** Log-bucketed, mergeable sample distributions.

    The flight-recorder metric for latencies and per-item work: samples
    land in logarithmic buckets (about 19% relative resolution), so a
    histogram is a small integer map that merges by per-bucket count sum
    — commutative and associative, the same proof-obligation shape as
    {!Coverage.Collector.merge}.  Two consequences the telemetry layer
    relies on:

    - bucket contents are independent of observation *and* merge order,
      so per-domain histograms merged in submission order are identical
      to a sequential run (the jobs differential);
    - quantile estimates ({!p50} .. {!p99}) are pure functions of the
      bucket counts and the exact extrema, hence equally deterministic.

    Samples [<= 0] are counted in a dedicated zero bucket ([zeros]) and
    contribute the representative value [0] to quantiles. *)

type t

val create : unit -> t

(** Deep copy (snapshot for concurrent readers). *)
val copy : t -> t

(** Record one sample.  O(1). *)
val observe : t -> float -> unit

val count : t -> int

(** Samples [<= 0] (kept out of the log buckets). *)
val zeros : t -> int

val sum : t -> float

(** Exact observed extrema; [0] when empty. *)
val min_value : t -> float

val max_value : t -> float
val mean : t -> float

(** Sorted [(bucket index, count)] pairs; positive samples only. *)
val buckets : t -> (int * int) list

(** Inclusive-exclusive value range [lo, hi) of a bucket index. *)
val bucket_bounds : int -> float * float

(** [merge_into ~into src] adds [src]'s counts into [into]; [src] is
    unchanged.  Commutative and associative up to float-addition
    rounding in {!sum} (exact for integer-valued samples). *)
val merge_into : into:t -> t -> unit

(** Left-to-right merge into a fresh histogram; [merge [] ] is empty. *)
val merge : t list -> t

(** Quantile estimate: geometric midpoint of the bucket holding the
    rank, clamped to the observed extrema.  Monotone in [q]. *)
val quantile : t -> float -> float

val p50 : t -> float
val p90 : t -> float
val p99 : t -> float

(** Observational equality: counts, extrema and bucket contents (not
    [sum], which is subject to float-addition rounding). *)
val equal : t -> t -> bool
