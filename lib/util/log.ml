type level = Error | Warn | Info | Debug

let rank = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let level_name = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii s with
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let current =
  ref
    (match Sys.getenv_opt "ADCHECK_LOG" with
     | Some s -> Option.value ~default:Warn (level_of_string s)
     | None -> Warn)

let set_level l = current := l
let level () = !current
let logs l = rank l <= rank !current

let log l fmt =
  Printf.ksprintf
    (fun msg ->
      if logs l then Printf.eprintf "adcheck: %s: %s\n%!" (level_name l) msg)
    fmt

let error fmt = log Error fmt
let warn fmt = log Warn fmt
let info fmt = log Info fmt
let debug fmt = log Debug fmt
